# Developer entry points; CI calls the same targets so local runs and the
# pipeline cannot drift.

.PHONY: build test race bench profile fmt vet

build:
	go build ./... && go build ./examples/...

test:
	go test ./...

race:
	go test -race ./...

# bench produces BENCH_exp.json (runner ns/op, allocs/op) and
# BENCH_eventsim.json (engine events/s, allocs/event) in one command.
bench:
	scripts/bench.sh

# profile runs the event-engine benchmark workload through cmd/eventsim
# with pprof enabled, so perf investigations start from cpu.prof/mem.prof
# (go tool pprof cpu.prof) instead of guesses.
profile:
	go run ./cmd/eventsim -bits 12 -scenario massfail -fail 0.3 -fail-time 1 \
	  -rate 20000 -duration 2 -maintain -mode event \
	  -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof — inspect with: go tool pprof cpu.prof"

fmt:
	gofmt -l .

vet:
	go vet ./... && go vet ./examples/...
