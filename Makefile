# Developer entry points; CI calls the same targets so local runs and the
# pipeline cannot drift.

.PHONY: build test race bench profile fmt vet lint fuzz-smoke cluster-smoke chaos-smoke

build:
	go build ./... && go build ./examples/...

test:
	go test ./...

race:
	go test -race ./...

# bench produces BENCH_exp.json (runner ns/op, allocs/op) and
# BENCH_eventsim.json (engine events/s, allocs/event) in one command.
bench:
	scripts/bench.sh

# profile runs the event-engine benchmark workload through cmd/eventsim
# with pprof enabled, so perf investigations start from cpu.prof/mem.prof
# (go tool pprof cpu.prof) instead of guesses.
profile:
	go run ./cmd/eventsim -bits 12 -scenario massfail -fail 0.3 -fail-time 1 \
	  -rate 20000 -duration 2 -maintain -mode event \
	  -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof — inspect with: go tool pprof cpu.prof"

# cluster-smoke boots a live in-process 64-node DHT cluster and replays
# an eventsim massfail schedule against it — the quick end-to-end check
# that the live-node layer (wire protocol, RTO failover, kill/restart)
# still routes. The test carries its own wall-clock budget; -timeout is
# the outer backstop. Set CLUSTER_METRICS_OUT=<file> to also write the
# cluster-wide metrics/histogram snapshot (CI uploads it as an
# artifact).
cluster-smoke:
	go test -run TestClusterSmoke -count=1 -timeout 120s -v ./node/cluster/

# chaos-smoke replays a lookup schedule against a live 64-node cluster
# while every node's transport runs a partition+duplication fault plan
# (rcm/fault), under the race detector. The pin is recovery: every
# lookup scheduled after the partition heals succeeds, and both fault
# kinds demonstrably fired.
chaos-smoke:
	go test -race -run TestChaosSmoke -count=1 -timeout 150s -v ./node/cluster/

fmt:
	gofmt -l .

vet:
	go vet ./... && go vet ./examples/...

# lint runs rcmlint, the in-repo analysis suite enforcing the
# determinism, loop-ownership, registry and import-boundary invariants
# (see internal/lint). Exit 0 means the module is clean.
lint:
	go run ./cmd/rcmlint ./...

# fuzz-smoke gives the wire-codec fuzz target a short budget; the target
# is build-tagged so it stays out of ordinary test runs.
fuzz-smoke:
	go test -tags fuzz -fuzz FuzzParseMessage -fuzztime 10s -run '^$$' ./node
