# Developer entry points; CI calls the same targets so local runs and the
# pipeline cannot drift.

.PHONY: build test race bench fmt vet

build:
	go build ./... && go build ./examples/...

test:
	go test ./...

race:
	go test -race ./...

# bench produces BENCH_exp.json (runner ns/op, allocs/op) and
# BENCH_eventsim.json (engine events/s, allocs/event) in one command.
bench:
	scripts/bench.sh

fmt:
	gofmt -l .

vet:
	go vet ./... && go vet ./examples/...
