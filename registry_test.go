package rcm_test

import (
	"math"
	"strings"
	"testing"

	"rcm"
	"rcm/overlay"
)

// toyGeometry is a minimal valid registrant for registry tests.
type toyGeometry struct{ name string }

func (g toyGeometry) Name() string        { return g.name }
func (toyGeometry) System() string        { return "Toy" }
func (toyGeometry) MaxDistance(d int) int { return d }
func (toyGeometry) LogNodesAt(d, h int) float64 {
	if h < 1 || h > d {
		return math.Inf(-1)
	}
	return 0
}
func (toyGeometry) PhaseFailure(d, m int, q float64) float64 { return q }

func toyFactory(name string) rcm.GeometryFactory {
	return func(rcm.Config) (rcm.Geometry, error) { return toyGeometry{name: name}, nil }
}

func TestRegisterGeometryDuplicate(t *testing.T) {
	if err := rcm.RegisterGeometry("dup-geo-test", toyFactory("dup-geo-test")); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	err := rcm.RegisterGeometry("dup-geo-test", toyFactory("dup-geo-test"))
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration err = %v", err)
	}
	// Case-insensitive: a different casing is still a duplicate.
	if err := rcm.RegisterGeometry("DUP-GEO-TEST", toyFactory("x")); err == nil {
		t.Error("case-variant duplicate accepted")
	}
}

func TestRegisterGeometryBuiltinCollisions(t *testing.T) {
	// Canonical built-in names and their aliases are all reserved, in both
	// vocabularies: "chord" is an alias of the ring geometry and the
	// canonical name of the chord protocol.
	for _, name := range []string{"tree", "plaxton", "ring", "chord", "symphony"} {
		if err := rcm.RegisterGeometry(name, toyFactory(name)); err == nil {
			t.Errorf("geometry name %q re-registered over a built-in", name)
		}
	}
	// An alias colliding with a built-in name is rejected even when the
	// canonical name is fresh — and the failed registration must not claim
	// the fresh name either.
	err := rcm.RegisterGeometry("alias-collision-test", toyFactory("a"), "ring")
	if err == nil {
		t.Fatal("alias collision with built-in \"ring\" accepted")
	}
	if _, lookupErr := rcm.ModelFor("alias-collision-test", rcm.Config{}); lookupErr == nil {
		t.Error("failed registration still resolvable by canonical name")
	}
}

func TestRegisterGeometryRejectsJunk(t *testing.T) {
	if err := rcm.RegisterGeometry("", toyFactory("")); err == nil {
		t.Error("empty name accepted")
	}
	if err := rcm.RegisterGeometry("   ", toyFactory(" ")); err == nil {
		t.Error("blank name accepted")
	}
	if err := rcm.RegisterGeometry("nil-factory-test", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := rcm.RegisterGeometry("self-alias-test", toyFactory("s"), "Self-Alias-Test"); err == nil {
		t.Error("name aliasing itself accepted")
	}
}

func TestLookupUnknownName(t *testing.T) {
	if _, err := rcm.ModelFor("pastry", rcm.Config{}); err == nil {
		t.Error("unknown geometry resolved")
	}
	if _, err := rcm.Simulate(rcm.SimConfig{Protocol: "pastry", Config: rcm.Config{Bits: 8}, Q: 0.1}); err == nil {
		t.Error("unknown protocol simulated")
	}
}

func TestRegisteredGeometryFlowsThroughModel(t *testing.T) {
	if err := rcm.RegisterGeometry("flow-test", toyFactory("flow-test"), "flow-alias-test"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flow-test", "Flow-Test", "flow-alias-test"} {
		m, err := rcm.ModelFor(name, rcm.Config{})
		if err != nil {
			t.Fatalf("ModelFor(%q): %v", name, err)
		}
		if m.Name() != "flow-test" {
			t.Errorf("ModelFor(%q).Name() = %q", name, m.Name())
		}
		// The analytic surface works end to end on the registrant.
		if _, err := m.Routability(8, 0.3); err != nil {
			t.Errorf("Routability on registered geometry: %v", err)
		}
	}
	found := false
	for _, name := range rcm.Geometries() {
		if name == "flow-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("Geometries() = %v does not list the registrant", rcm.Geometries())
	}
}

// toyProtocol is a minimal overlay: every node links to its ring successor,
// so any route over fully-alive nodes succeeds in at most N-1 hops.
type toyProtocol struct{ space overlay.Space }

func (p *toyProtocol) Name() string         { return "toyproto" }
func (p *toyProtocol) GeometryName() string { return "toy" }
func (p *toyProtocol) Space() overlay.Space { return p.space }
func (p *toyProtocol) Degree() int          { return 1 }
func (p *toyProtocol) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	cur := src
	hops := 0
	for cur != dst {
		next := overlay.ID((uint64(cur) + 1) % p.space.Size())
		if !alive.Get(int(next)) && next != dst {
			return hops, false
		}
		cur = next
		hops++
	}
	return hops, true
}
func (p *toyProtocol) Neighbors(x overlay.ID) []overlay.ID {
	return []overlay.ID{overlay.ID((uint64(x) + 1) % p.space.Size())}
}

// TestSingleHopGrammar pins the registry grammar around the single-hop
// family: every accepted spelling resolves to the same protocol, the
// spellings are reserved against later registrations (alias collision in
// both directions), and an unknown near-miss errors with the accepted
// names listed.
func TestSingleHopGrammar(t *testing.T) {
	for _, name := range []string{"singlehop", "SingleHop", "onehop", "d1ht", "D1HT"} {
		p, err := rcm.NewProtocol(name, rcm.Config{Bits: 4, Seed: 1})
		if err != nil {
			t.Errorf("NewProtocol(%q): %v", name, err)
			continue
		}
		if p.Name() != "singlehop" {
			t.Errorf("NewProtocol(%q).Name() = %q, want singlehop", name, p.Name())
		}
	}
	// The canonical name and each alias are taken, as canonical names and
	// as aliases of a fresh name alike.
	for _, taken := range []string{"singlehop", "onehop", "d1ht"} {
		if err := rcm.RegisterProtocol(taken, nil); err == nil {
			t.Errorf("protocol name %q re-registered over singlehop", taken)
		}
		if err := rcm.RegisterProtocol("fresh-"+taken+"-test", func(cfg rcm.Config) (rcm.Protocol, error) {
			s, err := overlay.NewSpace(cfg.Bits)
			if err != nil {
				return nil, err
			}
			return &toyProtocol{space: s}, nil
		}, taken); err == nil {
			t.Errorf("alias %q accepted over singlehop's spelling", taken)
		}
	}
	// A near-miss is an unknown-name error, not a silent fallback, and the
	// message lists the accepted spellings so typos are self-diagnosing.
	_, err := rcm.NewProtocol("twohop", rcm.Config{Bits: 4, Seed: 1})
	if err == nil {
		t.Fatal("unknown protocol \"twohop\" resolved")
	}
	for _, want := range []string{"singlehop", "onehop", "d1ht"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-protocol error %q does not list %q", err, want)
		}
	}
}

func TestRegisteredProtocolFlowsThroughSimulate(t *testing.T) {
	err := rcm.RegisterProtocol("toyproto-test", func(cfg rcm.Config) (rcm.Protocol, error) {
		s, err := overlay.NewSpace(cfg.Bits)
		if err != nil {
			return nil, err
		}
		return &toyProtocol{space: s}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rcm.RegisterProtocol("toyproto-test", nil); err == nil {
		t.Error("duplicate protocol with nil factory accepted")
	}
	res, err := rcm.Simulate(rcm.SimConfig{
		Protocol: "toyproto-test",
		Config:   rcm.Config{Bits: 6, Seed: 1},
		Q:        0, // no failures: the successor chain always delivers
		Pairs:    200,
		Trials:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routability != 1 {
		t.Errorf("toy protocol routability at q=0 = %v, want 1", res.Routability)
	}
}
