#!/usr/bin/env bash
# bench.sh produces both benchmark artifacts in one command:
#
#   BENCH_exp.json       — experiment-runner benchmarks (ns/op, allocs/op)
#   BENCH_eventsim.json  — event-engine benchmarks (events/s, allocs/event,
#                          plus ns/op and allocs/op)
#
# Usage: scripts/bench.sh [exp-benchtime] [eventsim-benchtime]
# Defaults: 100x for the (cheap) runner benchmarks, 5x for the (whole-run)
# event-engine benchmarks; CI uses the defaults. Also exposed as
# `make bench`.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-100x}"
eventtime="${2:-5x}"

# extract_json turns `go test -bench` output into a JSON array of
# {name, ns_per_op, allocs_per_op, events_per_s, allocs_per_event}
# objects, null where a benchmark does not report the metric.
extract_json() {
  awk 'BEGIN { print "[" ; first=1 }
       /^Benchmark/ {
         name=$1; ns=""; allocs=""; evps=""; apev=""
         for (i=2; i<=NF; i++) {
           if ($(i+1) == "ns/op") ns=$i
           if ($(i+1) == "allocs/op") allocs=$i
           if ($(i+1) == "events/s") evps=$i
           if ($(i+1) == "allocs/event") apev=$i
         }
         if (!first) printf ",\n"
         first=0
         printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"events_per_s\": %s, \"allocs_per_event\": %s}", \
           name, (ns==""?"null":ns), (allocs==""?"null":allocs), (evps==""?"null":evps), (apev==""?"null":apev)
       }
       END { print "\n]" }'
}

echo "== experiment runner (BENCH_exp.json) =="
go test -bench 'BenchmarkStreamSweep|BenchmarkExpSweep' -benchmem -benchtime "$benchtime" -run '^$' . ./exp | tee bench_exp.txt
extract_json < bench_exp.txt > BENCH_exp.json
cat BENCH_exp.json

echo "== event engine (BENCH_eventsim.json) =="
# Two invocations share one artifact: the mid-size benchmarks (including
# the {1,2,4,8} shard sweep) at the configured benchtime, and the 2^20-node
# macro-benchmark shard sweep at 2x — one million-node run per shard count
# is plenty, and the shared prebuilt overlay amortizes construction.
go test -bench 'BenchmarkEventSim$|BenchmarkEventSimShards|BenchmarkEventSimScheduler|BenchmarkEventSimObs|BenchmarkEventSimFault' \
  -benchmem -benchtime "$eventtime" -run '^$' ./eventsim | tee bench_eventsim.txt
go test -bench 'BenchmarkEventSimLarge' \
  -benchmem -benchtime 2x -run '^$' ./eventsim | tee -a bench_eventsim.txt
extract_json < bench_eventsim.txt > BENCH_eventsim.json
cat BENCH_eventsim.json

# Scheduler gate: the timing-wheel queue must be no slower than the
# binary-heap reference measured in the same run (same machine, same
# binary — immune to host-speed variation), plus an informational
# benchstat-style diff against the committed baseline snapshot.
echo "== scheduler gate: wheel vs heap (cmd/benchcmp) =="
go run ./cmd/benchcmp -file BENCH_eventsim.json \
  -base BenchmarkEventSimScheduler/heap -new BenchmarkEventSimScheduler/wheel \
  -metric events_per_s -tolerance 0.10 \
  -baseline bench/BENCH_eventsim.baseline.json

# Histogram-overhead gate: the always-on hop/latency distribution
# accumulation must cost under 2% events/s versus the same run with
# Config.NoDist (same machine, same binary).
echo "== histogram-overhead gate: obs on vs off (cmd/benchcmp) =="
go run ./cmd/benchcmp -file BENCH_eventsim.json \
  -base BenchmarkEventSimObs/off -new BenchmarkEventSimObs/on \
  -metric events_per_s -tolerance 0.02

# Fault-middleware gate: a bound fault plan whose clauses never fire on
# the benchmark workload (a partition window after the run ends) must
# cost under 2% events/s versus the bare transport (same machine, same
# binary) — fault injection is pay-for-what-you-use.
echo "== fault-middleware gate: noop plan vs off (cmd/benchcmp) =="
go run ./cmd/benchcmp -file BENCH_eventsim.json \
  -base BenchmarkEventSimFault/off -new BenchmarkEventSimFault/noop \
  -metric events_per_s -tolerance 0.02

# Shard-scaling gate: four shards must beat one shard's events/s by a
# factor that depends on what the host can physically deliver — parallel
# speedup needs parallel hardware. On >= 4 cores the persistent-worker
# engine owes a real scaling win (1.3x); on 2-3 cores a modest one; on a
# serial host no speedup is possible, so the gate instead pins the
# sharding tax near zero (the pre-rework engine was ~20% *slower* at 4
# shards even serially). The 1.30 multi-core bar is the scaling target,
# set from the serial measurements (1.06x on ONE core with the barrier
# reduced to 2xShards channel ops per epoch); if a particular runner's
# first multi-core run lands under it, recalibrate with one line here or
# override ad hoc with SHARD_GATE_FACTOR.
cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ -n "${SHARD_GATE_FACTOR:-}" ]; then
  factor="$SHARD_GATE_FACTOR"
elif [ "$cores" -ge 4 ]; then
  factor=1.30
elif [ "$cores" -ge 2 ]; then
  factor=1.05
else
  factor=0.95
fi
echo "== shard-scaling gate: Shards/4 vs Shards/1, factor $factor on $cores core(s) (cmd/benchcmp) =="
go run ./cmd/benchcmp -file BENCH_eventsim.json \
  -base BenchmarkEventSimShards/1 -new BenchmarkEventSimShards/4 \
  -metric events_per_s -min-ratio "$factor"
