// Symphony designer: the paper stresses (§1) that an asymptotically
// unscalable geometry is still deployable — "a system designer can always
// add enough sequential neighbors to achieve an acceptable routability ...
// for a maximum network size". This tool inverts the model: given a target
// routability, a worst-case failure probability and an expected maximum
// network size, it finds the cheapest (kn, ks) provisioning that meets the
// requirement.
package main

import (
	"flag"
	"fmt"
	"log"

	"rcm"
)

func main() {
	var (
		target  = flag.Float64("target", 0.95, "required routability (0,1]")
		q       = flag.Float64("q", 0.2, "worst-case node failure probability")
		maxBits = flag.Int("max-bits", 20, "maximum expected network size as log2 N")
	)
	flag.Parse()

	fmt.Printf("requirement: r >= %.0f%% at q = %.0f%% up to N = 2^%d\n\n",
		100**target, 100**q, *maxBits)
	fmt.Printf("%-4s %-4s %-7s %-14s %s\n", "kn", "ks", "links", "r% at 2^max", "meets target")

	type candidate struct {
		kn, ks int
		r      float64
	}
	var best *candidate
	for links := 2; links <= 12; links++ {
		for kn := 1; kn < links; kn++ {
			ks := links - kn
			m, err := rcm.Symphony(kn, ks)
			if err != nil {
				log.Fatal(err)
			}
			r, err := m.Routability(*maxBits, *q)
			if err != nil {
				log.Fatal(err)
			}
			ok := r >= *target
			fmt.Printf("%-4d %-4d %-7d %-14.2f %v\n", kn, ks, links, 100*r, ok)
			if ok && best == nil {
				best = &candidate{kn: kn, ks: ks, r: r}
			}
		}
		if best != nil {
			break
		}
	}

	fmt.Println()
	if best == nil {
		fmt.Println("no configuration with <= 12 links meets the requirement; raise the budget")
		return
	}
	fmt.Printf("cheapest provisioning: kn=%d ks=%d (%d links/node), r = %.2f%%\n",
		best.kn, best.ks, best.kn+best.ks, 100*best.r)
	m, err := rcm.Symphony(best.kn, best.ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nheadroom beyond the design size (the asymptotic decay never stops):")
	for _, d := range []int{*maxBits, *maxBits + 5, *maxBits + 10, *maxBits + 20, *maxBits + 40} {
		r, err := m.Routability(d, *q)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if r < *target {
			marker = "  <- requirement breached"
		}
		fmt.Printf("  N = 2^%-3d  r = %6.2f%%%s\n", d, 100*r, marker)
	}
}
