// Randchord: the "define your own geometry" walkthrough. It builds a
// ReCord-style generalized randomized Chord — every finger window
// [2^{i−1}, 2^i) holds R independently drawn random fingers instead of
// Chord's one (cf. Zeng & Hsu, arXiv:cs/0410074) — entirely against the
// public API: the Geometry and Protocol interfaces, the rcm/overlay
// substrate, the shared registry and the rcm/exp streaming runner — no
// internal package is imported.
//
// The program registers the geometry and the protocol under the name
// "randchord", classifies the geometry with the §5 numeric Knopp-test
// probe (there is no hand-derived verdict for it — that is the point),
// and then sweeps a full analytic + simulation + churn grid through
// exp.Stream, streaming CSV rows as cells complete.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"rcm"
	"rcm/exp"
	"rcm/overlay"
)

// redundancy is the R of the generalized construction: random fingers per
// halving window. R = 1 collapses to the paper's randomized-finger Chord.
const redundancy = 2

// Geometry: the RCM description (§4.1). Like the ring, n(h) = 2^{h−1}
// (identifiers at clockwise distance [2^{h−1}, 2^h) need h halving
// phases). The phase-failure probability generalizes the paper's §4.3.3
// ring derivation to R fingers per window: a phase with m phases
// remaining dead-ends only when all R·m usable fingers are down (q^{Rm}),
// discounted by the suboptimal-hop rescue series with
// β = q^R·(1 − q^{R(m−1)}); R = 1 reproduces Qring exactly. As for the
// ring, ignoring the distance covered by suboptimal hops makes the
// analytic routability a lower bound.
type geometry struct {
	R int
}

// Name implements rcm.Geometry.
func (geometry) Name() string { return "randchord" }

// System implements rcm.Geometry.
func (geometry) System() string { return "ReCord" }

// MaxDistance implements rcm.Geometry: h counts halving phases, up to d.
func (geometry) MaxDistance(d int) int { return d }

// LogNodesAt implements rcm.Geometry: n(h) = 2^{h−1}.
func (geometry) LogNodesAt(d, h int) float64 {
	if h < 1 || h > d {
		return math.Inf(-1)
	}
	return float64(h-1) * math.Ln2
}

// PhaseFailure implements rcm.Geometry.
func (g geometry) PhaseFailure(_, m int, q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	qr := math.Pow(q, float64(g.R))
	qrm := math.Pow(qr, float64(m))
	if qrm == 0 {
		return 0
	}
	beta := qr * (1 - math.Pow(qr, float64(m-1)))
	if beta == 0 {
		// m = 1: only the successor window is usable; Q = q^R.
		return clamp01(qrm)
	}
	k := math.Ldexp(1, m-1) // 2^{m−1} suboptimal hops fit in a phase
	betaK := math.Pow(beta, k)
	if math.IsInf(k, 1) {
		betaK = 0
	}
	return clamp01(qrm * (1 - betaK) / (1 - beta))
}

func clamp01(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// Protocol: the concrete overlay. Node x keeps R fingers per window
// [x+2^{i−1}, x+2^i) for i = 1..d, each drawn uniformly in the window.
// Routing is greedy clockwise without overshooting the target, exactly the
// discipline the static-resilience harness assumes.
type protocol struct {
	space overlay.Space
	r     int
	// table[(x·d + (i−1))·r ...] holds window i's fingers of node x.
	table []overlay.ID
}

func newProtocol(cfg rcm.Config) (rcm.Protocol, error) {
	s, err := overlay.NewSpace(cfg.Bits)
	if err != nil {
		return nil, err
	}
	if cfg.Bits > 20 {
		return nil, fmt.Errorf("randchord: bits=%d too large for the R=%d table", cfg.Bits, redundancy)
	}
	d := s.Bits()
	n := s.Size()
	rng := overlay.NewRNG(cfg.Seed ^ 0x72616e6463686f) // "randcho"
	p := &protocol{space: s, r: redundancy, table: make([]overlay.ID, int(n)*d*redundancy)}
	for x := uint64(0); x < n; x++ {
		for i := 1; i <= d; i++ {
			lo := uint64(1) << uint(i-1)
			base := (int(x)*d + i - 1) * p.r
			for j := 0; j < p.r; j++ {
				p.table[base+j] = overlay.ID((x + lo + rng.Uint64n(lo)) & (n - 1))
			}
		}
	}
	return p, nil
}

// Name implements rcm.Protocol.
func (p *protocol) Name() string { return "randchord" }

// GeometryName implements rcm.Protocol.
func (p *protocol) GeometryName() string { return "randchord" }

// Space implements rcm.Protocol.
func (p *protocol) Space() overlay.Space { return p.space }

// Degree implements rcm.Protocol.
func (p *protocol) Degree() int { return p.space.Bits() * p.r }

// Route implements rcm.Protocol: take the alive finger that lands closest
// to dst without passing it; fail when no alive finger makes clockwise
// progress.
func (p *protocol) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := p.space.Bits()
	cur := src
	hops := 0
	for maxHops := int(p.space.Size()) + 1; hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		remaining := p.space.RingDist(cur, dst)
		var best overlay.ID
		bestRemaining := remaining
		found := false
		base := int(cur) * d * p.r
		for i := 0; i < d*p.r; i++ {
			f := p.table[base+i]
			if p.space.RingDist(cur, f) > remaining {
				continue // overshoots dst
			}
			if !alive.Get(int(f)) {
				continue
			}
			if nr := p.space.RingDist(f, dst); nr < bestRemaining {
				bestRemaining = nr
				best = f
				found = true
			}
		}
		if !found {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// Neighbors implements rcm.Protocol.
func (p *protocol) Neighbors(x overlay.ID) []overlay.ID {
	d := p.space.Bits()
	out := make([]overlay.ID, d*p.r)
	copy(out, p.table[int(x)*d*p.r:(int(x)+1)*d*p.r])
	return out
}

// ResampleNode re-draws node x's fingers within their windows, preferring
// alive candidates. The churn engine discovers this method structurally,
// so the repair experiments work on user protocols too.
func (p *protocol) ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) {
	d := p.space.Bits()
	n := p.space.Size()
	for i := 1; i <= d; i++ {
		lo := uint64(1) << uint(i-1)
		base := (int(x)*d + i - 1) * p.r
		for j := 0; j < p.r; j++ {
			var id overlay.ID
			for attempt := 0; attempt < 16; attempt++ {
				id = overlay.ID((uint64(x) + lo + rng.Uint64n(lo)) & (n - 1))
				if alive == nil || alive.Get(int(id)) {
					break
				}
			}
			p.table[base+j] = id
		}
	}
}

// Register both halves under one name, at package-init time as the
// registry discipline demands (rcmlint's registrydiscipline analyzer):
// every name is resolvable before main starts, so no code path can
// observe a half-populated registry. After this, "randchord" resolves
// everywhere the five built-ins do.
func init() {
	if err := rcm.RegisterGeometry("randchord", func(rcm.Config) (rcm.Geometry, error) {
		return geometry{R: redundancy}, nil
	}, "record"); err != nil {
		log.Fatal(err)
	}
	if err := rcm.RegisterProtocol("randchord", newProtocol, "record"); err != nil {
		log.Fatal(err)
	}
}

func main() {
	// 1. Classify the new geometry with the numeric Knopp-test probe: no
	//    hand-derived verdict exists, so Scalability() is indeterminate and
	//    the probe is the only oracle.
	m, err := rcm.ModelFor("randchord", rcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	verdict, _ := m.Scalability()
	fmt.Printf("hand-derived verdict : %s (expected: no analysis exists)\n", verdict)
	for _, q := range []float64{0.1, 0.3, 0.5} {
		fmt.Printf("numeric probe q=%.1f  : %s\n", q, m.ClassifyNumerically(q))
	}
	r16, err := m.Routability(16, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := rcm.Ring().Routability(16, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic r(2^16,0.3) : %.4f (ring with R=1 fingers: %.4f)\n\n", r16, ring)

	// 2. Sweep the full grid — analytic, simulation and churn cells —
	//    through the public streaming runner, exactly as the built-ins do
	//    in cmd/figures. Rows stream out as cells complete.
	spec, err := exp.SpecFor("randchord", exp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	plan := exp.Plan{
		Name:  "randchord-grid",
		Specs: []exp.Spec{spec},
		Bits:  []int{10, 12},
		Qs:    exp.PaperQGrid(),
		Churn: []exp.ChurnSetting{
			{Duration: 6, MeasureEvery: 0.5, PairsPerMeasure: 1000, BurnIn: 1},
			{Duration: 6, MeasureEvery: 0.5, PairsPerMeasure: 1000, BurnIn: 1, Repair: true},
		},
	}
	err = exp.StreamCSV(os.Stdout, exp.Stream(context.Background(), plan,
		exp.WithModes(exp.ModeAnalytic, exp.ModeSim, exp.ModeChurn),
		exp.WithPairs(4000), exp.WithTrials(2),
		exp.WithSeed(1),
	))
	if err != nil {
		log.Fatal(err)
	}
}
