// Quickstart: the 60-second tour of the rcm public API — evaluate a
// geometry analytically, check its scalability verdict, and confirm the
// prediction against a concrete overlay simulation.
package main

import (
	"fmt"
	"log"

	"rcm"
)

func main() {
	// 1. Analytic model: Kademlia's XOR geometry at N = 2^16 nodes with
	//    every node failing independently with probability 0.3.
	const (
		bits = 16
		q    = 0.3
	)
	model := rcm.XOR()
	r, err := model.Routability(bits, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic  : %s keeps %.1f%% of surviving pairs routable at q=%.0f%%\n",
		model.System(), 100*r, 100*q)

	// 2. Scalability: does that hold as the network grows without bound?
	verdict, reason := model.Scalability()
	fmt.Printf("asymptotic: %s is %s (%s)\n", model.System(), verdict, reason)

	// 3. Simulation: build a real 2^14-node Kademlia overlay, fail nodes,
	//    route sampled pairs greedily with static tables.
	res, err := rcm.Simulate(rcm.SimConfig{
		Protocol: "kademlia",
		Config:   rcm.Config{Bits: 14, Seed: 1},
		Q:        q,
		Pairs:    20000,
		Trials:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	analytic14, err := model.Routability(14, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated : %.1f%% ± %.1f%% routable over %s hops on average (analysis says %.1f%%)\n",
		100*res.Routability, 100*res.StdErr, fmt.Sprintf("%.1f", res.MeanHops), 100*analytic14)

	// 4. The paper's headline: compare all five geometries at a glance.
	fmt.Printf("\n%-10s %-9s %-14s %s\n", "geometry", "system", "routability %", "verdict")
	for _, m := range rcm.Models() {
		ri, err := m.Routability(bits, q)
		if err != nil {
			log.Fatal(err)
		}
		v, _ := m.Scalability()
		fmt.Printf("%-10s %-9s %-14.2f %s\n", m.Name(), m.System(), 100*ri, v)
	}
}
