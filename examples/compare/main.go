// Compare: reproduce the shape of the paper's Fig. 7(a) from the public
// API — failed paths vs failure probability for all five geometries in the
// asymptotic regime (N = 2^100) — and render it as a terminal plot.
package main

import (
	"fmt"
	"log"
	"strings"

	"rcm"
)

func main() {
	const d = 100 // the paper's stand-in for N → ∞

	models := rcm.Models()
	fmt.Println("Fig. 7(a): percent of failed paths at N = 2^100")
	fmt.Println()

	// Terminal plot: one row per q, one column band per geometry.
	fmt.Printf("%-5s", "q%")
	for _, m := range models {
		fmt.Printf("  %-22s", m.Name())
	}
	fmt.Println()
	for q := 0.0; q <= 0.901; q += 0.1 {
		fmt.Printf("%-5.0f", 100*q)
		for _, m := range models {
			f, err := m.FailedPathPercent(d, q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s", bar(f))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("verdicts:")
	for _, m := range models {
		v, reason := m.Scalability()
		numeric := m.ClassifyNumerically(0.3)
		fmt.Printf("  %-10s %-10s (numeric probe agrees: %v) — %s\n",
			m.Name(), v, numeric == v, reason)
	}
}

// bar renders a 0–100 value as a 20-char bar with the number attached.
func bar(pct float64) string {
	filled := int(pct / 5)
	if filled > 20 {
		filled = 20
	}
	if filled < 0 {
		filled = 0
	}
	return strings.Repeat("█", filled) + strings.Repeat("·", 20-filled)
}
