// eDonkey case study: the paper's motivating deployment (§1). The
// Kademlia-powered eDonkey network grew to millions of transient nodes;
// this example asks the question the paper answers analytically — how does
// XOR routing hold up at that scale under realistic failure, and what would
// have happened had eDonkey been built on an unscalable geometry instead?
package main

import (
	"fmt"
	"log"

	"rcm"
)

func main() {
	// eDonkey-era scale: ~1–4 million concurrent nodes ≈ 2^20..2^22.
	const bits = 21 // ~2 million nodes

	fmt.Println("eDonkey-scale analysis: N = 2^21 ≈ 2.1M nodes")
	fmt.Println()
	fmt.Printf("%-6s  %-12s  %-12s  %-12s\n", "q %", "Kademlia r%", "Symphony r%", "Tree r%")
	sym, err := rcm.Symphony(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		kad, err := rcm.XOR().Routability(bits, q)
		if err != nil {
			log.Fatal(err)
		}
		sy, err := sym.Routability(bits, q)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := rcm.Tree().Routability(bits, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.0f  %-12.2f  %-12.2f  %-12.2f\n", 100*q, 100*kad, 100*sy, 100*tr)
	}

	fmt.Println()
	fmt.Println("Growth from LAN to global scale at q = 0.2 (transient P2P population):")
	fmt.Printf("%-8s  %-12s  %-12s\n", "log2 N", "Kademlia r%", "Symphony r%")
	for _, d := range []int{10, 14, 18, 22, 26, 30} {
		kad, err := rcm.XOR().Routability(d, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		sy, err := sym.Routability(d, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  %-12.2f  %-12.2f\n", d, 100*kad, 100*sy)
	}

	fmt.Println()
	fmt.Println("Conclusion: XOR routability is flat in system size — consistent with")
	fmt.Println("eDonkey scaling to millions of nodes — while the basic small-world")
	fmt.Println("geometry would have collapsed long before reaching that size.")
}
