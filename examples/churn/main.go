// Churn demo: the paper's static resilience model assumes failures happen
// faster than repairs (§1) and leaves the dynamic regime open. This example
// runs the event-driven churn engine on a Chord overlay and shows (a) that
// the no-repair steady state reproduces the static prediction at the
// equivalent failure probability, and (b) how much periodic table repair
// recovers.
package main

import (
	"fmt"
	"log"

	"rcm"
)

func main() {
	const (
		bits        = 12
		meanOnline  = 1.0
		meanOffline = 0.25 // steady-state offline fraction 20%
	)
	base := rcm.ChurnConfig{
		Protocol:        "chord",
		Config:          rcm.Config{Bits: bits, Seed: 7},
		MeanOnline:      meanOnline,
		MeanOffline:     meanOffline,
		Duration:        10,
		MeasureEvery:    0.5,
		PairsPerMeasure: 4000,
	}
	qEff := meanOffline / (meanOnline + meanOffline)

	static, err := rcm.Simulate(rcm.SimConfig{
		Protocol: "chord", Config: rcm.Config{Bits: bits, Seed: 11}, Q: qEff,
		Pairs: 20000, Trials: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	analytic, err := rcm.Ring().Routability(bits, qEff)
	if err != nil {
		log.Fatal(err)
	}

	noRepair, err := rcm.Churn(base)
	if err != nil {
		log.Fatal(err)
	}
	repairCfg := base
	repairCfg.Repair = true
	withRepair, err := rcm.Churn(repairCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Chord under churn, N=2^%d, sessions Exp(%.2f) on / Exp(%.2f) off (q_eff=%.0f%%)\n\n",
		bits, meanOnline, meanOffline, 100*qEff)
	fmt.Printf("%-6s  %-10s  %-22s  %-20s\n", "time", "offline %", "success % (no repair)", "success % (repair)")
	for i := range noRepair {
		fmt.Printf("%-6.1f  %-10.1f  %-22.2f  %-20.2f\n",
			noRepair[i].Time,
			100*noRepair[i].OfflineFraction,
			100*noRepair[i].LookupSuccess,
			100*withRepair[i].LookupSuccess,
		)
	}

	sNo, off := rcm.SteadyState(noRepair, 1)
	sRep, _ := rcm.SteadyState(withRepair, 1)
	fmt.Println()
	fmt.Printf("steady state offline fraction : %.1f%% (expected %.0f%%)\n", 100*off, 100*qEff)
	fmt.Printf("churn, static tables          : %.2f%%\n", 100*sNo)
	fmt.Printf("static-model simulation       : %.2f%%  <- the paper's model, applied at q_eff\n", 100*static.Routability)
	fmt.Printf("static-model analytic (Eq. 3) : %.2f%%  (lower bound for ring)\n", 100*analytic)
	fmt.Printf("churn with table repair       : %.2f%%  <- what maintenance buys back\n", 100*sRep)
}
