// Package fault defines deterministic, spec-parseable fault plans that
// both executors — the discrete-event engine (rcm/eventsim) and the
// live node layer (rcm/node) — inject identically, extending the
// conformance methodology from "live matches sim" to "live matches sim
// under injected adversity".
//
// A plan is a comma list of clauses in the module's name[:arg] spec
// grammar:
//
//	partition:<groups>@<t0>-<t1>   id-hash groups, cross-group blackhole
//	delayspike:<factor>@<t0>-<t1>  multiply request latency in the window
//	dup:<p>                        duplicate each request with prob. p
//	reorder:<p>                    hold a request back with prob. p
//	corrupt:<p>                    corrupt a request with prob. p
//	stall:<p>:<mean>               node alive but ignoring requests
//
// for example "partition:2@1-2,dup:0.1". Plans compose into transport
// specs as fault:<plan>/<inner-transport> (eventsim.ParseTransport) and
// into live clusters through cluster.Config.Fault; Plan.String renders
// the canonical spelling, so plans round-trip through TransportSpec.
//
// # Determinism contract
//
// Every clause applies to forward (request) traffic only, mirroring the
// lossy transport: acknowledgements and responses are never faulted.
// That keeps eventsim's ACK-ownership invariant intact and means a
// partition never needs to fault a response — a request only ever
// reaches a holder inside the sender's own group, so replies never
// cross the cut.
//
// Binding a plan (Plan.Bind) fixes its seed-derived choices. Partition
// group membership and stall episodes are pure functions of
// (seed, node), so the simulator and a live cluster bound to the same
// seed agree exactly on who is cut from whom and who stalls when; the
// Injector is stateless and safe for concurrent use. The probabilistic
// clauses (dup, reorder, corrupt) deliberately stay coin-free in the
// Injector: each executor draws those coins from its own deterministic
// stream — eventsim from the owning shard's splitmix64 stream, the node
// wrapper from a seeded per-transport stream — and only the probability
// is shared. Coin-free clauses (partition) therefore produce exactly
// equal outcomes in sim and live, and coin-driven but outcome-invariant
// clauses (dup, reorder over a lossless inner transport) produce
// exactly equal lookup outcomes too, which is what the conformance
// fault cells pin histogram for histogram.
//
// # Writing a custom plan
//
// Compose clauses programmatically or through Parse; validate before
// use:
//
//	plan := fault.Plan{
//		Partition: &fault.Partition{Groups: 2, Window: fault.Window{From: 1, To: 2}},
//		Dup:       0.1,
//	}
//	if err := plan.Validate(); err != nil { ... }
//	inj := plan.Bind(seed, duration)
//	if inj.CrossPartition(src, dst, t) { /* drop the request */ }
//
// An executor integrating a new clause kind follows three rules: fault
// requests only; report the worst-case delivered latency through
// Plan.InflateMax so retransmission-timeout validation stays safe; and
// derive every choice either from (seed, node) via the Injector or from
// the executor's own seeded stream — never from the wall clock (the
// package is lint-enforced wall-clock-free, see internal/lint).
//
// To extend the grammar itself, register a clause factory in this
// package (see fault.go's init) — the name then resolves everywhere
// plans parse: transport specs, cluster configs and the -fault flags of
// cmd/eventsim and cmd/rcmd.
package fault
