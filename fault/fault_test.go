package fault

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"partition:2@1-2",
		"partition:3@0.5-2.5",
		"delayspike:4@1-3",
		"dup:0.1",
		"reorder:0.25",
		"corrupt:0.05",
		"stall:0.1:0.5",
		"partition:2@1-2,dup:0.1",
		"partition:2@1-2,delayspike:4@1-3,dup:0.1,reorder:0.2,corrupt:0.05,stall:0.1:0.5",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if again.String() != p.String() {
			t.Errorf("round trip of %q drifted to %q", s, again.String())
		}
	}
}

func TestParseCanonicalizesAliasesAndOrder(t *testing.T) {
	p, err := Parse("dup:0.1, PART:2@1-2")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.String(), "partition:2@1-2,dup:0.1"; got != want {
		t.Errorf("String() = %q, want canonical %q", got, want)
	}
}

func TestParseExponentWindow(t *testing.T) {
	p, err := Parse("partition:2@1e-3-2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Partition.From != 1e-3 || p.Partition.To != 2 {
		t.Errorf("window = %v-%v, want 0.001-2", p.Partition.From, p.Partition.To)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"", "empty plan"},
		{"warp:0.5", "unknown clause"},
		{"partition:2", "want partition:<groups>@<from>-<to>"},
		{"partition:1@1-2", "need at least 2"},
		{"partition:2@2-1", "need 0 <= from < to"},
		{"partition:2@-1-2", "need 0 <= from < to"},
		{"delayspike:0.5@1-2", "must be a finite value >= 1"},
		{"dup", "needs a probability"},
		{"dup:1.5", "out of [0, 1]"},
		{"reorder:-0.1", "out of [0, 1]"},
		{"corrupt:nope", "invalid syntax"},
		{"stall:0.1", "want stall:<p>:<mean>"},
		{"stall:0.1:0", "positive finite duration"},
		{"dup:0.1,dup:0.2", "repeats the dup clause"},
		{"partition:2@1-2,partition:2@3-4", "repeats the partition clause"},
	} {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", tc.in, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q does not contain %q", tc.in, err, tc.want)
		}
	}
}

func TestEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero Plan should be Empty")
	}
	if (Plan{Dup: 0.1}).Empty() {
		t.Error("dup plan should not be Empty")
	}
	if got := (Plan{}).String(); got != "" {
		t.Errorf("empty plan String() = %q, want \"\"", got)
	}
}

func TestInflateMax(t *testing.T) {
	base := 0.05
	if got := (Plan{}).InflateMax(base); got != base {
		t.Errorf("no-clause InflateMax = %v, want %v", got, base)
	}
	p := Plan{Reorder: 0.5}
	if got := p.InflateMax(base); got != 2*base {
		t.Errorf("reorder InflateMax = %v, want %v", got, 2*base)
	}
	p = Plan{DelaySpike: &DelaySpike{Factor: 4, Window: Window{From: 1, To: 2}}}
	if got := p.InflateMax(base); got != 4*base {
		t.Errorf("delayspike InflateMax = %v, want %v", got, 4*base)
	}
	p = Plan{Reorder: 0.5, DelaySpike: &DelaySpike{Factor: 4, Window: Window{From: 1, To: 2}}}
	if got := p.InflateMax(base); got != 8*base {
		t.Errorf("combined InflateMax = %v, want %v", got, 8*base)
	}
}

func TestBoundaries(t *testing.T) {
	p, err := Parse("partition:2@1-2,delayspike:4@2-3")
	if err != nil {
		t.Fatal(err)
	}
	got := p.Boundaries()
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Boundaries() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Boundaries() = %v, want %v", got, want)
		}
	}
	if n := len((Plan{Dup: 0.5}).Boundaries()); n != 0 {
		t.Errorf("unwindowed plan has %d boundaries, want 0", n)
	}
}

func TestPartitionGroupsDeterministicAndBalanced(t *testing.T) {
	plan, err := Parse("partition:2@1-2")
	if err != nil {
		t.Fatal(err)
	}
	inj := plan.Bind(7, 10)
	again := plan.Bind(7, 10)
	const n = 4096
	var inGroup0 int
	for node := uint64(0); node < n; node++ {
		g := inj.Group(node)
		if g >= 2 {
			t.Fatalf("Group(%d) = %d out of range", node, g)
		}
		if g != again.Group(node) {
			t.Fatalf("Group(%d) differs between two binds of the same (plan, seed)", node)
		}
		if g == 0 {
			inGroup0++
		}
	}
	// The id-hash split should be roughly even: a 4096-trial fair coin
	// stays within 4 sigma (±128) of n/2 essentially always.
	if inGroup0 < n/2-128 || inGroup0 > n/2+128 {
		t.Errorf("group 0 holds %d of %d nodes; id-hash split badly unbalanced", inGroup0, n)
	}
	// A different seed must cut differently.
	other := plan.Bind(8, 10)
	same := 0
	for node := uint64(0); node < n; node++ {
		if inj.Group(node) == other.Group(node) {
			same++
		}
	}
	if same == n {
		t.Error("seed change did not move any node across the cut")
	}
}

func TestCrossPartitionWindowed(t *testing.T) {
	plan, err := Parse("partition:2@1-2")
	if err != nil {
		t.Fatal(err)
	}
	inj := plan.Bind(1, 10)
	// Find a cross-group pair.
	var src, dst uint64
	found := false
	for d := uint64(1); d < 256 && !found; d++ {
		if inj.Group(0) != inj.Group(d) {
			src, dst, found = 0, d, true
		}
	}
	if !found {
		t.Fatal("no cross-group pair in the first 256 ids")
	}
	if inj.CrossPartition(src, dst, 0.5) {
		t.Error("partition active before its window")
	}
	if !inj.CrossPartition(src, dst, 1.5) {
		t.Error("cross-group pair not cut inside the window")
	}
	if inj.CrossPartition(src, dst, 2.0) {
		t.Error("partition active at the half-open window end")
	}
	if inj.CrossPartition(src, src, 1.5) {
		t.Error("same-group pair cut")
	}
}

func TestDelayFactor(t *testing.T) {
	plan, err := Parse("delayspike:4@1-2")
	if err != nil {
		t.Fatal(err)
	}
	inj := plan.Bind(1, 10)
	if got := inj.DelayFactor(0.5); got != 1 {
		t.Errorf("DelayFactor outside window = %v, want 1", got)
	}
	if got := inj.DelayFactor(1.5); got != 4 {
		t.Errorf("DelayFactor inside window = %v, want 4", got)
	}
}

func TestStallEpisodes(t *testing.T) {
	plan, err := Parse("stall:0.5:1")
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 10.0
	inj := plan.Bind(3, horizon)
	stalled := 0
	const n = 2048
	for node := uint64(0); node < n; node++ {
		w, ok := inj.StallWindow(node)
		if w2, ok2 := inj.StallWindow(node); ok2 != ok || w2 != w {
			t.Fatalf("StallWindow(%d) not deterministic", node)
		}
		if !ok {
			if inj.Stalled(node, 5) {
				t.Fatalf("node %d stalled without an episode", node)
			}
			continue
		}
		stalled++
		if w.From < 0 || w.From >= horizon {
			t.Fatalf("node %d episode starts at %v outside [0, %v)", node, w.From, horizon)
		}
		if w.To <= w.From {
			t.Fatalf("node %d episode %v-%v empty", node, w.From, w.To)
		}
		if !inj.Stalled(node, w.From) || inj.Stalled(node, w.To) {
			t.Fatalf("node %d Stalled disagrees with its own window", node)
		}
	}
	// Bernoulli(0.5) over 2048 nodes: 4 sigma is ±91.
	if stalled < n/2-91 || stalled > n/2+91 {
		t.Errorf("%d of %d nodes stalled; want about half", stalled, n)
	}
	// No stall clause: nothing stalls.
	none := Plan{Dup: 0.1}.Bind(3, horizon)
	if none.Stalled(1, 5) {
		t.Error("plan without stall clause stalled a node")
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	if c.String() != "none" || c.Total() != 0 {
		t.Errorf("zero Counts = %q / %d", c.String(), c.Total())
	}
	c.Add(Counts{PartitionDrops: 2, Dups: 1})
	c.Add(Counts{Dups: 1, StallDrops: 3})
	if c.Total() != 7 {
		t.Errorf("Total = %d, want 7", c.Total())
	}
	if got, want := c.String(), "partition=2 dup=2 stall=3"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
