package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"rcm/overlay"
	"rcm/spec"
)

// Window is a half-open interval [From, To) of simulation time during
// which a windowed fault clause is active.
type Window struct {
	From, To float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.From && t < w.To }

// Partition splits the population into Groups id-hash groups and
// blackholes every cross-group request while the window is active.
// Group membership is a pure function of (seed, node), so the simulator
// and a live cluster bound to the same seed agree on the cut.
type Partition struct {
	Groups int
	Window
}

// DelaySpike multiplies the delivered latency of every request by
// Factor while the window is active.
type DelaySpike struct {
	Factor float64
	Window
}

// Stall makes each node, with probability P, unresponsive for one
// exponentially distributed episode (mean Mean) starting at a uniform
// point in the bound horizon: the node stays alive — it keeps issuing
// its own lookups and receiving acknowledgements — but silently ignores
// incoming requests, which is precisely what churn-offline is not.
type Stall struct {
	P, Mean float64
}

// Plan is one composed fault schedule: at most one clause of each kind.
// The zero Plan injects nothing. Dup, Reorder and Corrupt are per-request
// probabilities; like the lossy transport, every clause applies to
// forward (request) traffic only — acknowledgements and responses are
// never faulted, which keeps the ACK-ownership invariant intact and is
// what a live FaultTransport wrapper can reproduce exactly.
type Plan struct {
	Partition  *Partition
	DelaySpike *DelaySpike
	Dup        float64
	Reorder    float64
	Corrupt    float64
	Stall      *Stall
}

// clause is one parsed plan fragment, applied to the plan under
// construction; application fails when the clause kind repeats.
type clause func(*Plan) error

// clauses is the plan-fragment vocabulary, sharing the module's
// name[:arg] spec grammar: a plan is a comma list of clauses, each
// owning its argument text past the first ':'.
var clauses = spec.New[clause]("fault", "clause")

func init() {
	reg := []struct {
		name    string
		f       spec.Factory[clause]
		aliases []string
	}{
		{"partition", parsePartition, []string{"part"}},
		{"delayspike", parseDelaySpike, []string{"spike"}},
		{"dup", parseDup, []string{"duplicate"}},
		{"reorder", parseReorder, nil},
		{"corrupt", parseCorrupt, nil},
		{"stall", parseStall, nil},
	}
	for _, r := range reg {
		clauses.MustRegister(r.name, r.f, r.aliases...)
	}
}

// ClauseNames returns the registered clause names in registration order.
func ClauseNames() []string { return clauses.Names() }

// Parse parses a comma-separated fault plan, e.g.
// "partition:2@1-2,dup:0.1". The result is validated.
func Parse(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("fault: empty plan (have clauses %s)", strings.Join(clauses.Keys(), ", "))
	}
	for _, part := range strings.Split(s, ",") {
		c, err := clauses.Parse(part)
		if err != nil {
			return Plan{}, err
		}
		if err := c(&p); err != nil {
			return Plan{}, err
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// String renders the plan in canonical clause order; Parse(p.String())
// reproduces p exactly, which is what lets a plan ride inside a
// transport spec round trip. The empty plan renders as "".
func (p Plan) String() string {
	var parts []string
	if pt := p.Partition; pt != nil {
		parts = append(parts, fmt.Sprintf("partition:%d@%s-%s", pt.Groups, ftoa(pt.From), ftoa(pt.To)))
	}
	if ds := p.DelaySpike; ds != nil {
		parts = append(parts, fmt.Sprintf("delayspike:%s@%s-%s", ftoa(ds.Factor), ftoa(ds.From), ftoa(ds.To)))
	}
	if p.Dup > 0 {
		parts = append(parts, "dup:"+ftoa(p.Dup))
	}
	if p.Reorder > 0 {
		parts = append(parts, "reorder:"+ftoa(p.Reorder))
	}
	if p.Corrupt > 0 {
		parts = append(parts, "corrupt:"+ftoa(p.Corrupt))
	}
	if st := p.Stall; st != nil {
		parts = append(parts, fmt.Sprintf("stall:%s:%s", ftoa(st.P), ftoa(st.Mean)))
	}
	return strings.Join(parts, ",")
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return p.Partition == nil && p.DelaySpike == nil &&
		p.Dup == 0 && p.Reorder == 0 && p.Corrupt == 0 && p.Stall == nil
}

// Validate checks every clause's parameter ranges.
func (p Plan) Validate() error {
	if pt := p.Partition; pt != nil {
		if pt.Groups < 2 {
			return fmt.Errorf("fault: partition into %d groups (need at least 2)", pt.Groups)
		}
		if err := validWindow("partition", pt.Window); err != nil {
			return err
		}
	}
	if ds := p.DelaySpike; ds != nil {
		if !(ds.Factor >= 1) || math.IsInf(ds.Factor, 0) {
			return fmt.Errorf("fault: delayspike factor %v must be a finite value >= 1", ds.Factor)
		}
		if err := validWindow("delayspike", ds.Window); err != nil {
			return err
		}
	}
	for _, pr := range []struct {
		name string
		p    float64
	}{{"dup", p.Dup}, {"reorder", p.Reorder}, {"corrupt", p.Corrupt}} {
		if pr.p < 0 || pr.p > 1 || math.IsNaN(pr.p) {
			return fmt.Errorf("fault: %s probability %v out of [0, 1]", pr.name, pr.p)
		}
	}
	if st := p.Stall; st != nil {
		if st.P < 0 || st.P > 1 || math.IsNaN(st.P) {
			return fmt.Errorf("fault: stall probability %v out of [0, 1]", st.P)
		}
		if !(st.Mean > 0) || math.IsInf(st.Mean, 0) {
			return fmt.Errorf("fault: stall mean %v must be a positive finite duration", st.Mean)
		}
	}
	return nil
}

func validWindow(name string, w Window) error {
	if math.IsNaN(w.From) || math.IsNaN(w.To) || math.IsInf(w.From, 0) || math.IsInf(w.To, 0) {
		return fmt.Errorf("fault: %s window %v-%v must be finite", name, w.From, w.To)
	}
	if w.From < 0 || w.To <= w.From {
		return fmt.Errorf("fault: %s window %v-%v: need 0 <= from < to", name, w.From, w.To)
	}
	return nil
}

// InflateMax returns the worst-case delivered latency under the plan for
// a message whose fault-free latency is at most max: reorder can hold a
// request for up to one extra max, and a delay spike multiplies the
// total. Transport wrappers report this as their MaxLatency so the
// engine's RTO floor (RTO > 2 x MaxLatency) stays safe automatically.
func (p Plan) InflateMax(max float64) float64 {
	out := max
	if p.Reorder > 0 {
		out += max
	}
	if p.DelaySpike != nil {
		out *= p.DelaySpike.Factor
	}
	return out
}

// Boundaries returns the sorted, deduplicated window edges of the plan's
// globally windowed clauses (partition and delayspike). A live replay
// drains in-flight lookups before its virtual clock crosses one, so no
// lookup straddles a change of fault regime. Per-node stall episodes are
// seed-derived and not included.
func (p Plan) Boundaries() []float64 {
	var ts []float64
	if pt := p.Partition; pt != nil {
		ts = append(ts, pt.From, pt.To)
	}
	if ds := p.DelaySpike; ds != nil {
		ts = append(ts, ds.From, ds.To)
	}
	sort.Float64s(ts)
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// Bind fixes the plan's seed-derived choices — partition group
// membership and stall episodes — producing an Injector both executors
// can query. horizon is the schedule duration stall episodes are placed
// in (a non-positive horizon is treated as 1).
func (p Plan) Bind(seed uint64, horizon float64) *Injector {
	if !(horizon > 0) {
		horizon = 1
	}
	return &Injector{plan: p, seed: seed, horizon: horizon}
}

// Injector answers fault-plan queries as pure functions of
// (plan, seed, node identifiers, time): no internal state, no wall
// clock, safe for concurrent use. Probabilistic clauses (dup, reorder,
// corrupt) deliberately take no RNG here — each executor draws those
// coins from its own deterministic stream and only the *distribution*
// is shared.
type Injector struct {
	plan    Plan
	seed    uint64
	horizon float64
}

// Plan returns the bound plan.
func (in *Injector) Plan() Plan { return in.plan }

// Seed returns the seed the plan was bound with.
func (in *Injector) Seed() uint64 { return in.seed }

// Horizon returns the stall-placement horizon the plan was bound with.
func (in *Injector) Horizon() float64 { return in.horizon }

const (
	partitionSalt = 0x504152544954 // "PARTIT"
	stallSalt     = 0x5354414c4c   // "STALL"
)

// mix64 is one stateless splitmix64 output step — the same mixer
// overlay.RNG advances through, applied to a derived key so per-node
// group assignment costs no allocation on the engine's hot path.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Group returns node's partition group in [0, Groups); 0 when the plan
// has no partition clause.
func (in *Injector) Group(node uint64) uint64 {
	pt := in.plan.Partition
	if pt == nil {
		return 0
	}
	return mix64((in.seed+partitionSalt)^(node*0x9e3779b97f4a7c15)) % uint64(pt.Groups)
}

// CrossPartition reports whether a request from src to dst at time t is
// blackholed by the partition clause. It is coin-free: both executors
// compute the identical answer from (seed, src, dst, t).
func (in *Injector) CrossPartition(src, dst uint64, t float64) bool {
	pt := in.plan.Partition
	if pt == nil || !pt.Contains(t) {
		return false
	}
	return in.Group(src) != in.Group(dst)
}

// DelayFactor returns the latency multiplier at time t (1 outside the
// delay-spike window or without the clause).
func (in *Injector) DelayFactor(t float64) float64 {
	ds := in.plan.DelaySpike
	if ds == nil || !ds.Contains(t) {
		return 1
	}
	return ds.Factor
}

// StallWindow returns node's stall episode, if the stall clause selected
// it: the Bernoulli(P) pick, the uniform start in [0, horizon) and the
// Exp(Mean) duration all come from a seed-derived per-node stream, so
// sim and live agree on who stalls and when.
func (in *Injector) StallWindow(node uint64) (Window, bool) {
	st := in.plan.Stall
	if st == nil {
		return Window{}, false
	}
	r := overlay.NewRNG(mix64((in.seed + stallSalt) ^ (node * 0x9e3779b97f4a7c15)))
	if !r.Bernoulli(st.P) {
		return Window{}, false
	}
	from := r.Float64() * in.horizon
	return Window{From: from, To: from + r.Exp(st.Mean)}, true
}

// Stalled reports whether node is inside its stall episode at time t.
func (in *Injector) Stalled(node uint64, t float64) bool {
	w, ok := in.StallWindow(node)
	return ok && w.Contains(t)
}

// Counts tallies injected faults by kind. Executors accumulate one (per
// shard, per transport) and sum with Add; only faults that changed an
// actually-deliverable message are counted, so a partition drop of a
// packet the inner transport lost anyway is not double-billed.
type Counts struct {
	PartitionDrops uint64 // requests blackholed by the partition clause
	Dups           uint64 // duplicate copies delivered
	Reorders       uint64 // requests held back for extra latency
	Corrupts       uint64 // requests corrupted (rejected by the receiver's codec)
	StallDrops     uint64 // requests ignored by a stalled receiver
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.PartitionDrops += o.PartitionDrops
	c.Dups += o.Dups
	c.Reorders += o.Reorders
	c.Corrupts += o.Corrupts
	c.StallDrops += o.StallDrops
}

// Total returns the sum over every kind.
func (c Counts) Total() uint64 {
	return c.PartitionDrops + c.Dups + c.Reorders + c.Corrupts + c.StallDrops
}

// String renders the non-zero tallies in a fixed order ("none" when all
// are zero).
func (c Counts) String() string {
	var parts []string
	for _, f := range []struct {
		name string
		v    uint64
	}{
		{"partition", c.PartitionDrops},
		{"dup", c.Dups},
		{"reorder", c.Reorders},
		{"corrupt", c.Corrupts},
		{"stall", c.StallDrops},
	} {
		if f.v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.name, f.v))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// ---- clause factories ----

// cutRange splits "a-b" at the first '-' that is not an exponent sign,
// so "1e-3-2" parses as (1e-3, 2).
func cutRange(s string) (a, b string, ok bool) {
	for i := 1; i < len(s); i++ {
		if s[i] == '-' && s[i-1] != 'e' && s[i-1] != 'E' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// splitWindow parses the "<head>@<t0>-<t1>" argument shape shared by
// the windowed clauses, returning the head text and the window; headNoun
// names the head in errors ("groups", "factor").
func splitWindow(name, headNoun, arg string) (head string, w Window, err error) {
	head, rest, found := strings.Cut(arg, "@")
	if !found {
		return "", Window{}, fmt.Errorf("fault: %s argument %q: want %s:<%s>@<from>-<to>", name, arg, name, headNoun)
	}
	a, b, ok := cutRange(rest)
	if !ok {
		return "", Window{}, fmt.Errorf("fault: %s window %q: want <from>-<to>", name, rest)
	}
	w.From, err = strconv.ParseFloat(strings.TrimSpace(a), 64)
	if err != nil {
		return "", Window{}, fmt.Errorf("fault: %s window start %q: %v", name, a, err)
	}
	w.To, err = strconv.ParseFloat(strings.TrimSpace(b), 64)
	if err != nil {
		return "", Window{}, fmt.Errorf("fault: %s window end %q: %v", name, b, err)
	}
	return strings.TrimSpace(head), w, nil
}

// prob parses a clause's single-probability argument.
func prob(name, arg string) (float64, error) {
	v, ok, err := spec.Float("fault", name, arg)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("fault: %s needs a probability argument (%s:<p>)", name, name)
	}
	return v, nil
}

func parsePartition(arg string) (clause, error) {
	head, w, err := splitWindow("partition", "groups", arg)
	if err != nil {
		return nil, err
	}
	groups, err := strconv.Atoi(head)
	if err != nil {
		return nil, fmt.Errorf("fault: partition group count %q: %v", head, err)
	}
	return func(p *Plan) error {
		if p.Partition != nil {
			return fmt.Errorf("fault: plan repeats the partition clause")
		}
		p.Partition = &Partition{Groups: groups, Window: w}
		return nil
	}, nil
}

func parseDelaySpike(arg string) (clause, error) {
	head, w, err := splitWindow("delayspike", "factor", arg)
	if err != nil {
		return nil, err
	}
	factor, err := strconv.ParseFloat(head, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: delayspike factor %q: %v", head, err)
	}
	return func(p *Plan) error {
		if p.DelaySpike != nil {
			return fmt.Errorf("fault: plan repeats the delayspike clause")
		}
		p.DelaySpike = &DelaySpike{Factor: factor, Window: w}
		return nil
	}, nil
}

func parseDup(arg string) (clause, error) {
	v, err := prob("dup", arg)
	if err != nil {
		return nil, err
	}
	return func(p *Plan) error {
		if p.Dup != 0 {
			return fmt.Errorf("fault: plan repeats the dup clause")
		}
		p.Dup = v
		return nil
	}, nil
}

func parseReorder(arg string) (clause, error) {
	v, err := prob("reorder", arg)
	if err != nil {
		return nil, err
	}
	return func(p *Plan) error {
		if p.Reorder != 0 {
			return fmt.Errorf("fault: plan repeats the reorder clause")
		}
		p.Reorder = v
		return nil
	}, nil
}

func parseCorrupt(arg string) (clause, error) {
	v, err := prob("corrupt", arg)
	if err != nil {
		return nil, err
	}
	return func(p *Plan) error {
		if p.Corrupt != 0 {
			return fmt.Errorf("fault: plan repeats the corrupt clause")
		}
		p.Corrupt = v
		return nil
	}, nil
}

func parseStall(arg string) (clause, error) {
	ps, ms, found := strings.Cut(arg, ":")
	if !found {
		return nil, fmt.Errorf("fault: stall argument %q: want stall:<p>:<mean>", arg)
	}
	pv, err := strconv.ParseFloat(strings.TrimSpace(ps), 64)
	if err != nil {
		return nil, fmt.Errorf("fault: stall probability %q: %v", ps, err)
	}
	mv, err := strconv.ParseFloat(strings.TrimSpace(ms), 64)
	if err != nil {
		return nil, fmt.Errorf("fault: stall mean %q: %v", ms, err)
	}
	return func(p *Plan) error {
		if p.Stall != nil {
			return fmt.Errorf("fault: plan repeats the stall clause")
		}
		p.Stall = &Stall{P: pv, Mean: mv}
		return nil
	}, nil
}
