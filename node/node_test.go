package node

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rcm"
	"rcm/overlay"
)

// bootCluster starts one node per identifier of a bits-wide chord overlay
// on the given substrate ("mem" or "udp") and returns the nodes plus a
// cleanup function.
func bootCluster(t *testing.T, protocol string, bits int, substrate string) []*Node {
	t.Helper()
	proto, err := rcm.NewProtocol(protocol, rcm.Config{Bits: bits, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := int(proto.Space().Size())
	addrs := make([]string, n)
	transports := make([]Transport, n)
	var mem *MemNetwork
	if substrate == "mem" {
		mem = NewMemNetwork()
	}
	for i := range transports {
		if mem != nil {
			transports[i] = mem.Endpoint()
		} else {
			tr, err := ListenUDP("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			transports[i] = tr
		}
		addrs[i] = transports[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := New(Config{
			Protocol:  proto,
			ID:        overlay.ID(i),
			Transport: transports[i],
			AddrOf:    func(id overlay.ID) string { return addrs[id] },
			RTO:       20 * time.Millisecond,
			Deadline:  3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
	}
	t.Cleanup(func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *Node) { defer wg.Done(); nd.Close() }(nd)
		}
		wg.Wait()
	})
	return nodes
}

// TestLiveLookupAllPairs: on a healthy in-memory cluster every (src, dst)
// pair routes, with the hop count Route (global knowledge, nobody failed)
// would take.
func TestLiveLookupAllPairs(t *testing.T) {
	nodes := bootCluster(t, "chord", 4, "mem")
	proto, _ := rcm.NewProtocol("chord", rcm.Config{Bits: 4, Seed: 7})
	alive := overlay.NewBitset(len(nodes))
	for i := range nodes {
		alive.Set(i)
	}
	for src := range nodes {
		for dst := range nodes {
			if src == dst {
				continue
			}
			res := nodes[src].Lookup(overlay.ID(dst))
			if !res.OK() {
				t.Fatalf("lookup %d -> %d: %+v", src, dst, res)
			}
			wantHops, ok := proto.Route(overlay.ID(src), overlay.ID(dst), alive)
			if !ok {
				t.Fatalf("Route %d -> %d failed on healthy overlay", src, dst)
			}
			if res.Hops != wantHops {
				t.Errorf("lookup %d -> %d took %d hops, Route takes %d", src, dst, res.Hops, wantHops)
			}
		}
	}
}

// TestLivePutGetUDP exercises the full stack over real UDP loopback
// sockets: put a batch of keys from scattered nodes, get them back from
// other nodes, and verify owner placement.
func TestLivePutGetUDP(t *testing.T) {
	nodes := bootCluster(t, "chord", 4, "udp")
	space := overlay.MustSpace(4)
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := fmt.Sprintf("value-%d", i)
		if res := nodes[i%len(nodes)].Put(key, []byte(val)); !res.OK() {
			t.Fatalf("put %q: %+v", key, res)
		}
		got := nodes[(i+7)%len(nodes)].Get(key)
		if !got.OK() || string(got.Value) != val {
			t.Fatalf("get %q = %+v, want %q", key, got, val)
		}
		// The value lives at the key's owner, nowhere else we wrote from.
		owner := KeyID(space, key)
		if _, ok := nodes[owner].Store().Get(KeyHash(key)); !ok {
			t.Errorf("owner %d of %q does not hold the key", owner, key)
		}
	}
	// Missing keys report not-found, not an error.
	res := nodes[3].Get("never-written")
	if res.Err != nil || res.Status != StatusNotFound {
		t.Errorf("missing key = %+v, want StatusNotFound", res)
	}
	// Distinct keys folding to the same owner stay distinct: stores index
	// by the full hash, not the folded identifier. In a 16-id space a
	// handful of keys is enough to land two on one owner (birthday).
	byOwner := map[overlay.ID]string{}
	var a, b string
	for i := 0; b == ""; i++ {
		k := fmt.Sprintf("col-%d", i)
		id := KeyID(space, k)
		if prev, ok := byOwner[id]; ok && KeyHash(prev) != KeyHash(k) {
			a, b = prev, k
		}
		byOwner[id] = k
	}
	nodes[0].Put(a, []byte("A"))
	nodes[0].Put(b, []byte("B"))
	if got := nodes[5].Get(a); !got.OK() || string(got.Value) != "A" {
		t.Errorf("co-owned key %q = %+v, want A", a, got)
	}
	if got := nodes[5].Get(b); !got.OK() || string(got.Value) != "B" {
		t.Errorf("co-owned key %q = %+v, want B", b, got)
	}
}

// TestLiveFailover: kill a node on the best path; lookups still succeed
// through candidate failover (UDP substrate, real timeouts firing), and
// the killed node itself refuses work until restarted.
func TestLiveFailover(t *testing.T) {
	nodes := bootCluster(t, "chord", 4, "udp")
	// Find a (src, dst) whose first hop is some intermediate node k.
	fwd := nodes[0].fwd
	var src, dst, victim int = -1, -1, -1
	for s := 0; s < len(nodes) && victim < 0; s++ {
		for d := 0; d < len(nodes); d++ {
			if s == d {
				continue
			}
			cands := fwd.AppendCandidateHops(nil, overlay.ID(s), overlay.ID(d))
			if len(cands) >= 2 && int(cands[0]) != d {
				src, dst, victim = s, d, int(cands[0])
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no multi-candidate pair found")
	}
	nodes[victim].Kill()
	if !nodes[victim].Down() {
		t.Fatal("killed node reports up")
	}
	res := nodes[src].Lookup(overlay.ID(dst))
	if !res.OK() {
		t.Fatalf("lookup %d -> %d with %d killed: %+v", src, dst, victim, res)
	}
	// The killed node refuses local work…
	if r := nodes[victim].Lookup(overlay.ID(dst)); r.Err == nil || !strings.Contains(r.Err.Error(), "down") {
		t.Errorf("killed node accepted a lookup: %+v", r)
	}
	// …and serves again after restart.
	nodes[victim].Restart()
	if r := nodes[victim].Lookup(overlay.ID(dst)); !r.OK() {
		t.Errorf("restarted node lookup: %+v", r)
	}
}

// TestLiveConcurrentLookups drives many lookups through one node at once
// under -race: the event loop owns all state, so this must be clean.
func TestLiveConcurrentLookups(t *testing.T) {
	nodes := bootCluster(t, "kademlia", 4, "mem")
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				src := (w*3 + i) % len(nodes)
				dst := (src + 1 + i) % len(nodes)
				if src == dst {
					continue
				}
				if res := nodes[src].Lookup(overlay.ID(dst)); !res.OK() {
					errs <- fmt.Sprintf("lookup %d -> %d: %+v", src, dst, res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestNodeConfigValidation: New rejects unusable configurations.
func TestNodeConfigValidation(t *testing.T) {
	proto, _ := rcm.NewProtocol("chord", rcm.Config{Bits: 3, Seed: 1})
	mem := NewMemNetwork()
	addrOf := func(overlay.ID) string { return "" }
	for name, cfg := range map[string]Config{
		"nil protocol":  {Transport: mem.Endpoint(), AddrOf: addrOf},
		"nil transport": {Protocol: proto, AddrOf: addrOf},
		"nil directory": {Protocol: proto, Transport: mem.Endpoint()},
		"id outside space": {
			Protocol: proto, Transport: mem.Endpoint(), AddrOf: addrOf, ID: 8,
		},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
