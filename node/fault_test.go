package node

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcm"
	"rcm/fault"
	"rcm/overlay"
)

// mustPlan parses a fault plan or fails the test.
func mustPlan(t *testing.T, s string) fault.Plan {
	t.Helper()
	p, err := fault.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fakeClock is a settable plan clock for transport-level tests.
type fakeClock struct{ t atomic.Uint64 }

func (c *fakeClock) set(t float64) { c.t.Store(uint64(t * 1000)) }
func (c *fakeClock) now() float64  { return float64(c.t.Load()) / 1000 }

// recvOne pulls one packet from tr, failing the test if none arrives in
// time.
func recvOne(t *testing.T, tr Transport, within time.Duration) []byte {
	t.Helper()
	type rcv struct {
		pkt []byte
		err error
	}
	ch := make(chan rcv, 1)
	go func() {
		pkt, _, err := tr.Recv()
		ch <- rcv{pkt, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.pkt
	case <-time.After(within):
		t.Fatalf("no packet within %v", within)
		return nil
	}
}

// reqPacket encodes a minimal request datagram.
func reqPacket(t *testing.T, reqID, dst uint64, origin string) []byte {
	t.Helper()
	pkt, err := appendWire(nil, &message{
		Kind: msgReq, Op: OpLookup, Budget: 16,
		ReqID: reqID, Dst: dst, Deadline: 2000, Origin: origin,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// ackPacket encodes an ack datagram (never faulted).
func ackPacket(t *testing.T, reqID uint64) []byte {
	t.Helper()
	pkt, err := appendWire(nil, &message{Kind: msgAck, ReqID: reqID})
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestFaultTransportPartition: cross-partition requests are blackholed
// during the window — in order, so a following (unfaulted) ack overtakes
// nothing — and pass once the window closes. The wrapper's grouping must
// agree with the plan's own injector: that is the sim↔live contract.
func TestFaultTransportPartition(t *testing.T) {
	plan := mustPlan(t, "partition:2@10-20")
	inj := plan.Bind(7, 100)
	// Find two identifiers the cut separates.
	var a, b uint64
	found := false
	for i := uint64(1); i < 64 && !found; i++ {
		if inj.Group(i) != inj.Group(0) {
			a, b, found = 0, i, true
		}
	}
	if !found {
		t.Fatal("partition:2 left 64 ids in one group")
	}
	mem := NewMemNetwork()
	sender, receiver := mem.Endpoint(), mem.Endpoint()
	clk := &fakeClock{}
	ft, err := WrapFault(sender, FaultConfig{
		Plan: plan, Seed: 7, Horizon: 100, Self: a,
		IDOf: func(addr string) (uint64, bool) { return b, addr == receiver.Addr() },
		Now:  clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ft.Close() })

	clk.set(15) // inside the window
	if err := ft.Send(receiver.Addr(), reqPacket(t, 1, b, ft.Addr())); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(receiver.Addr(), ackPacket(t, 1)); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeWire(recvOne(t, receiver, time.Second)); err != nil || m.Kind != msgAck {
		t.Fatalf("first delivery should be the ack (req blackholed), got kind=%d err=%v", m.Kind, err)
	}
	if c := ft.Counts(); c.PartitionDrops != 1 {
		t.Fatalf("partition drops = %d, want 1: %s", c.PartitionDrops, c)
	}

	clk.set(25) // window closed: the partition healed
	if err := ft.Send(receiver.Addr(), reqPacket(t, 2, b, ft.Addr())); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeWire(recvOne(t, receiver, time.Second)); err != nil || m.Kind != msgReq || m.ReqID != 2 {
		t.Fatalf("post-heal request not delivered: kind=%d reqID=%d err=%v", m.Kind, m.ReqID, err)
	}
}

// TestFaultTransportCorrupt: corrupt:1 mangles every request into
// something the wire codec rejects, while acks pass untouched.
func TestFaultTransportCorrupt(t *testing.T) {
	mem := NewMemNetwork()
	sender, receiver := mem.Endpoint(), mem.Endpoint()
	ft, err := WrapFault(sender, FaultConfig{Plan: mustPlan(t, "corrupt:1"), Seed: 3, Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ft.Close() })

	if err := ft.Send(receiver.Addr(), reqPacket(t, 1, 5, ft.Addr())); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeWire(recvOne(t, receiver, time.Second)); err == nil {
		t.Fatal("corrupted request decoded cleanly")
	}
	if err := ft.Send(receiver.Addr(), ackPacket(t, 1)); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeWire(recvOne(t, receiver, time.Second)); err != nil || m.Kind != msgAck {
		t.Fatalf("ack should pass untouched: kind=%d err=%v", m.Kind, err)
	}
	if c := ft.Counts(); c.Corrupts != 1 {
		t.Fatalf("corrupts = %d, want 1", c.Corrupts)
	}
}

// TestFaultTransportDupReorder: dup:1 delivers two decodable copies of
// every request; reorder:1 holds them back but loses nothing.
func TestFaultTransportDupReorder(t *testing.T) {
	mem := NewMemNetwork()
	sender, receiver := mem.Endpoint(), mem.Endpoint()
	ft, err := WrapFault(sender, FaultConfig{
		Plan: mustPlan(t, "dup:1,reorder:1"), Seed: 9, Self: 1,
		Latency: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ft.Close() })

	if err := ft.Send(receiver.Addr(), reqPacket(t, 42, 5, ft.Addr())); err != nil {
		t.Fatal(err)
	}
	for copies := 0; copies < 2; copies++ {
		m, err := decodeWire(recvOne(t, receiver, time.Second))
		if err != nil || m.Kind != msgReq || m.ReqID != 42 {
			t.Fatalf("copy %d: kind=%d reqID=%d err=%v", copies, m.Kind, m.ReqID, err)
		}
	}
	if c := ft.Counts(); c.Dups != 1 || c.Reorders != 1 {
		t.Fatalf("counts = %s, want dup=1 reorder=1", c)
	}
}

// TestFaultTransportStall: during its stall episode a node's wrapper
// swallows inbound requests (no ack ever forms — the sender's RTO takes
// over) but still delivers acks and responses; outside the episode it is
// transparent.
func TestFaultTransportStall(t *testing.T) {
	const self = 5
	plan := mustPlan(t, "stall:1:10")
	win, ok := plan.Bind(11, 100).StallWindow(self)
	if !ok {
		t.Fatal("stall:1 placed no episode")
	}
	mem := NewMemNetwork()
	sender, receiver := mem.Endpoint(), mem.Endpoint()
	clk := &fakeClock{}
	ft, err := WrapFault(receiver, FaultConfig{
		Plan: plan, Seed: 11, Horizon: 100, Self: self, Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ft.Close() })

	clk.set((win.From + win.To) / 2) // mid-episode
	if err := sender.Send(ft.Addr(), reqPacket(t, 1, self, sender.Addr())); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(ft.Addr(), ackPacket(t, 1)); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeWire(recvOne(t, ft, time.Second)); err != nil || m.Kind != msgAck {
		t.Fatalf("stalled node should still see the ack first, got kind=%d err=%v", m.Kind, err)
	}
	if c := ft.Counts(); c.StallDrops != 1 {
		t.Fatalf("stall drops = %d, want 1", c.StallDrops)
	}

	clk.set(win.To + 1) // episode over
	if err := sender.Send(ft.Addr(), reqPacket(t, 2, self, sender.Addr())); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeWire(recvOne(t, ft, time.Second)); err != nil || m.Kind != msgReq || m.ReqID != 2 {
		t.Fatalf("post-episode request not delivered: kind=%d reqID=%d err=%v", m.Kind, m.ReqID, err)
	}
}

// TestWrapFaultValidation: the constructor rejects unusable configs.
func TestWrapFaultValidation(t *testing.T) {
	mem := NewMemNetwork()
	tr := mem.Endpoint()
	t.Cleanup(func() { tr.Close() })
	cases := map[string]struct {
		inner Transport
		fc    FaultConfig
	}{
		"nil inner":            {nil, FaultConfig{Plan: mustPlan(t, "dup:0.5")}},
		"empty plan":           {tr, FaultConfig{}},
		"invalid plan":         {tr, FaultConfig{Plan: fault.Plan{Dup: 1.5}}},
		"partition needs IDOf": {tr, FaultConfig{Plan: mustPlan(t, "partition:2@1-2")}},
	}
	for name, tc := range cases {
		if _, err := WrapFault(tc.inner, tc.fc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// bootFaultCluster is bootCluster with per-node config tweaks and fault
// wrapping: plan == "" runs plain transports.
func bootFaultCluster(t *testing.T, protocol string, bits int, plan string, tweak func(*Config)) ([]*Node, []*FaultTransport) {
	t.Helper()
	proto, err := rcm.NewProtocol(protocol, rcm.Config{Bits: bits, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := int(proto.Space().Size())
	mem := NewMemNetwork()
	addrs := make([]string, n)
	transports := make([]Transport, n)
	var wrappers []*FaultTransport
	addrToID := make(map[string]uint64, n)
	for i := range transports {
		transports[i] = mem.Endpoint()
		addrs[i] = transports[i].Addr()
		addrToID[addrs[i]] = uint64(i)
	}
	if plan != "" {
		pl := mustPlan(t, plan)
		for i := range transports {
			ft, err := WrapFault(transports[i], FaultConfig{
				Plan: pl, Seed: 7, Horizon: 3600, Self: uint64(i),
				IDOf:    func(addr string) (uint64, bool) { id, ok := addrToID[addr]; return id, ok },
				Latency: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			transports[i] = ft
			wrappers = append(wrappers, ft)
		}
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := Config{
			Protocol:  proto,
			ID:        overlay.ID(i),
			Transport: transports[i],
			AddrOf:    func(id overlay.ID) string { return addrs[id] },
			RTO:       20 * time.Millisecond,
			Deadline:  3 * time.Second,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
	}
	t.Cleanup(func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *Node) { defer wg.Done(); nd.Close() }(nd)
		}
		wg.Wait()
	})
	return nodes, wrappers
}

// TestFaultClusterDupReorder: a live cluster whose every link duplicates
// and reorders half its requests still completes all-pairs lookups —
// the dedupe window absorbs the copies (visible as DupReqs) and held
// packets are merely late, never lost.
func TestFaultClusterDupReorder(t *testing.T) {
	nodes, wrappers := bootFaultCluster(t, "chord", 3, "dup:0.5,reorder:0.5", nil)
	for src := range nodes {
		for dst := range nodes {
			if src == dst {
				continue
			}
			if r := nodes[src].Lookup(overlay.ID(dst)); !r.OK() {
				t.Fatalf("lookup %d->%d under dup+reorder: %+v", src, dst, r)
			}
		}
	}
	var c fault.Counts
	for _, ft := range wrappers {
		c.Add(ft.Counts())
	}
	if c.Dups == 0 || c.Reorders == 0 {
		t.Fatalf("dup:0.5,reorder:0.5 over 56 lookups injected nothing: %s", c)
	}
	all := make([]Metrics, len(nodes))
	for i, nd := range nodes {
		all[i] = nd.Metrics()
	}
	if agg := MergeMetrics(all...); agg.DupReqs == 0 {
		t.Errorf("injected %d dups but no node counted a duplicate delivery", c.Dups)
	}
}

// TestShedUnderOverload: a node whose forward table is at MaxInFlight
// sheds fresh relayed requests silently — no ack, so the sender's RTO
// machinery treats the hop as lossy — and counts them. Requests the
// node owns are served regardless.
func TestShedUnderOverload(t *testing.T) {
	proto, err := rcm.NewProtocol("chord", rcm.Config{Bits: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemNetwork()
	relayTr := mem.Endpoint() // node 0, the relay under test
	deadTr := mem.Endpoint()  // node 1's address: nobody acks
	probeTr := mem.Endpoint() // the test's own endpoint
	t.Cleanup(func() { deadTr.Close(); probeTr.Close() })
	addrs := []string{relayTr.Addr(), deadTr.Addr()}
	relay, err := New(Config{
		Protocol:    proto,
		ID:          0,
		Transport:   relayTr,
		AddrOf:      func(id overlay.ID) string { return addrs[id] },
		RTO:         500 * time.Millisecond, // keep the table occupied
		Deadline:    5 * time.Second,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	relay.Start()
	t.Cleanup(relay.Close)

	// First relayed request fills the table (node 1 never acks)…
	if err := probeTr.Send(relay.Addr(), reqPacket(t, 0xf1, 1, probeTr.Addr())); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeWire(recvOne(t, probeTr, time.Second)); err != nil || m.Kind != msgAck || m.ReqID != 0xf1 {
		t.Fatalf("relay should ack the accepted request: kind=%d reqID=%#x err=%v", m.Kind, m.ReqID, err)
	}
	// …so the second is shed: no ack, just a counter.
	if err := probeTr.Send(relay.Addr(), reqPacket(t, 0xf2, 1, probeTr.Addr())); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := relay.Metrics()
		if m.Shed == 1 {
			if m.InFlight != 1 {
				t.Fatalf("in-flight = %d, want the one accepted request", m.InFlight)
			}
			if m.AcksOut != 1 {
				t.Fatalf("acks out = %d: the shed request must not be acknowledged", m.AcksOut)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shed counter never fired: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A request the relay owns is never shed, even with the table full.
	if err := probeTr.Send(relay.Addr(), reqPacket(t, 0xf3, 0, probeTr.Addr())); err != nil {
		t.Fatal(err)
	}
	sawAck := false
	for !sawAck {
		m, err := decodeWire(recvOne(t, probeTr, 2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == msgAck && m.ReqID == 0xf3 {
			sawAck = true
		}
	}
}

// TestAdaptiveRTOLiveCluster: with the per-peer estimator on, a healthy
// cluster completes all-pairs lookups, and a killed destination still
// produces a timely verdict (the adaptive timeout may probe faster than
// the fixed RTO, never slower than 8x).
func TestAdaptiveRTOLiveCluster(t *testing.T) {
	nodes, _ := bootFaultCluster(t, "chord", 3, "", func(cfg *Config) {
		cfg.AdaptiveRTO = true
		cfg.Deadline = 2 * time.Second
	})
	for src := range nodes {
		for dst := range nodes {
			if src == dst {
				continue
			}
			if r := nodes[src].Lookup(overlay.ID(dst)); !r.OK() {
				t.Fatalf("lookup %d->%d with adaptive RTO: %+v", src, dst, r)
			}
		}
	}
	victim := len(nodes) - 1
	nodes[victim].Kill()
	r := nodes[0].Lookup(overlay.ID(victim))
	if r.OK() {
		t.Fatalf("lookup to killed node succeeded: %+v", r)
	}
	if r.Err == nil && r.Status != StatusNoRoute && r.Status != StatusExpired {
		t.Fatalf("unexpected verdict for killed destination: %+v", r)
	}
}

// TestKillWithInFlightRTOs is the timer-hygiene regression (run under
// -race): Kill a node while dozens of its RTO timers are in flight —
// every stale pop must be inert — then restart it and serve traffic.
func TestKillWithInFlightRTOs(t *testing.T) {
	nodes, _ := bootFaultCluster(t, "chord", 4, "", func(cfg *Config) {
		cfg.RTO = 10 * time.Millisecond
		cfg.Deadline = time.Second
	})
	victim := 1 // node 0's successor: node 0 forwards clockwise traffic through it
	nodes[victim].Kill()

	const inflight = 48
	var wg sync.WaitGroup
	results := make([]Result, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every lookup targets the dead successor, so node 0 piles up
			// pending forwards whose RTOs are ticking.
			results[i] = nodes[0].Lookup(overlay.ID(victim))
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the forwards dispatch and arm timers
	nodes[0].Kill()                  // crash with the timers in flight
	wg.Wait()
	for i, r := range results {
		if r.OK() {
			t.Fatalf("lookup %d to a dead node succeeded: %+v", i, r)
		}
	}
	nodes[0].Restart()
	nodes[victim].Restart()
	if r := nodes[0].Lookup(overlay.ID(victim)); !r.OK() {
		t.Fatalf("restarted pair cannot route: %+v", r)
	}
}
