package node

import (
	"time"

	"rcm/obs"
)

// stats is the node's instrumentation. It is loop-owned like the rest
// of the routing state — handlers increment plain fields with no
// atomics or locks, and snapshots are taken by a closure posted into
// the loop — so observing a node costs the hot path nothing beyond the
// increments themselves.
type stats struct {
	reqsIn, acksIn, respsIn    uint64
	reqsOut, acksOut, respsOut uint64
	dupReqs                    uint64 // duplicate request deliveries dropped by the dedupe window
	shed                       uint64 // relayed requests refused (unacked) because the forward table was full
	timeouts                   uint64 // RTO expiries acted on (stale timer pops excluded)
	retransmits                uint64 // re-sends to the same candidate
	failovers                  uint64 // candidate-list advances after exhausted retransmissions
	expired                    uint64 // locally-originated requests that hit the response guard

	storeGets, storeHits, storePuts uint64

	// hops records the route length of locally-originated requests that
	// completed OK; the per-op latencies record microseconds from issue
	// to verdict (any status), measured at the origin.
	hops                      obs.Histogram
	lookupLat, getLat, putLat obs.Histogram
}

// Metrics is a point-in-time snapshot of one node's instrumentation,
// taken on the event loop so it is internally consistent. Histograms
// are value copies and merge freely across nodes (cluster stats, the
// rcmd metrics endpoint).
type Metrics struct {
	// ReqsIn/AcksIn/RespsIn count messages received while alive, by
	// kind; the Out counters count messages sent.
	ReqsIn, AcksIn, RespsIn    uint64
	ReqsOut, AcksOut, RespsOut uint64
	// DupReqs counts duplicate request deliveries dropped by the
	// dedupe window (lost-ACK retransmissions arriving twice).
	DupReqs uint64
	// Shed counts relayed requests this node refused — silently, with no
	// ACK — because its forward table was at Config.MaxInFlight; the
	// sender's RTO machinery routes around the overload.
	Shed uint64
	// Timeouts counts RTO expiries that found their attempt still
	// outstanding; Retransmits the re-sends to the same candidate;
	// Failovers the advances to the next candidate.
	Timeouts, Retransmits, Failovers uint64
	// Expired counts locally-originated requests concluded by the
	// origin's response guard instead of a verdict.
	Expired uint64
	// StoreGets/StoreHits/StorePuts count owner-side store operations;
	// StoreLen is the backend's current entry count and StoreEvictions
	// its eviction total (0 unless the backend reports evictions, as
	// the LRU store does).
	StoreGets, StoreHits, StorePuts uint64
	StoreLen                        int
	StoreEvictions                  uint64
	// InFlight is the number of forward attempts awaiting a hop ACK;
	// Waiting the number of locally-originated requests awaiting a
	// verdict. Down reports the kill switch.
	InFlight, Waiting int
	Down              bool
	// Hops is the hop-count distribution of locally-originated
	// requests that completed OK. LookupLatency/GetLatency/PutLatency
	// are issue-to-verdict latency distributions in microseconds.
	Hops                                  obs.Histogram
	LookupLatency, GetLatency, PutLatency obs.Histogram
}

// evictionCounter is the optional store capability behind
// Metrics.StoreEvictions.
type evictionCounter interface{ Evictions() uint64 }

// Metrics snapshots the node's instrumentation. The snapshot is taken
// by the event loop between events, so counters and histograms are
// mutually consistent. A closed node returns the zero Metrics.
func (n *Node) Metrics() Metrics {
	var m Metrics
	done := make(chan struct{})
	if !n.post(func() {
		m = n.snapshotMetrics()
		close(done)
	}) {
		return Metrics{}
	}
	select {
	case <-done:
		return m
	case <-n.loopExit:
		// post can win its send race against Close after the loop has
		// already drained and exited; the closure will never run.
		select {
		case <-done:
			return m
		default:
			return Metrics{}
		}
	}
}

// snapshotMetrics assembles a Metrics from loop-owned state; loop
// goroutine only.
func (n *Node) snapshotMetrics() Metrics {
	m := Metrics{
		ReqsIn: n.stats.reqsIn, AcksIn: n.stats.acksIn, RespsIn: n.stats.respsIn,
		ReqsOut: n.stats.reqsOut, AcksOut: n.stats.acksOut, RespsOut: n.stats.respsOut,
		DupReqs:       n.stats.dupReqs,
		Shed:          n.stats.shed,
		Timeouts:      n.stats.timeouts,
		Retransmits:   n.stats.retransmits,
		Failovers:     n.stats.failovers,
		Expired:       n.stats.expired,
		StoreGets:     n.stats.storeGets,
		StoreHits:     n.stats.storeHits,
		StorePuts:     n.stats.storePuts,
		StoreLen:      n.store.Len(),
		InFlight:      len(n.pending),
		Waiting:       len(n.origins),
		Down:          n.downNow.Load(),
		Hops:          n.stats.hops,
		LookupLatency: n.stats.lookupLat,
		GetLatency:    n.stats.getLat,
		PutLatency:    n.stats.putLat,
	}
	if ec, ok := n.store.(evictionCounter); ok {
		m.StoreEvictions = ec.Evictions()
	}
	return m
}

// countIn tallies a received message by kind; loop goroutine only.
func (s *stats) countIn(kind uint8) {
	switch kind {
	case msgReq:
		s.reqsIn++
	case msgAck:
		s.acksIn++
	case msgResp:
		s.respsIn++
	}
}

// countOut tallies a sent message by kind; loop goroutine only.
func (s *stats) countOut(kind uint8) {
	switch kind {
	case msgReq:
		s.reqsOut++
	case msgAck:
		s.acksOut++
	case msgResp:
		s.respsOut++
	}
}

// recordVerdict records a locally-originated request's outcome; loop
// goroutine only.
func (s *stats) recordVerdict(op Op, status Status, hops int, elapsed time.Duration) {
	if status == StatusOK {
		s.hops.Observe(int64(hops))
	}
	us := elapsed.Microseconds()
	switch op {
	case OpGet:
		s.getLat.Observe(us)
	case OpPut:
		s.putLat.Observe(us)
	default:
		s.lookupLat.Observe(us)
	}
}

// MergeMetrics folds per-node snapshots into a cluster-wide aggregate:
// counters and gauges sum, histograms merge.
func MergeMetrics(ms ...Metrics) Metrics {
	var out Metrics
	for i := range ms {
		m := &ms[i]
		out.ReqsIn += m.ReqsIn
		out.AcksIn += m.AcksIn
		out.RespsIn += m.RespsIn
		out.ReqsOut += m.ReqsOut
		out.AcksOut += m.AcksOut
		out.RespsOut += m.RespsOut
		out.DupReqs += m.DupReqs
		out.Shed += m.Shed
		out.Timeouts += m.Timeouts
		out.Retransmits += m.Retransmits
		out.Failovers += m.Failovers
		out.Expired += m.Expired
		out.StoreGets += m.StoreGets
		out.StoreHits += m.StoreHits
		out.StorePuts += m.StorePuts
		out.StoreLen += m.StoreLen
		out.StoreEvictions += m.StoreEvictions
		out.InFlight += m.InFlight
		out.Waiting += m.Waiting
		out.Down = out.Down || m.Down
		out.Hops.Merge(&m.Hops)
		out.LookupLatency.Merge(&m.LookupLatency)
		out.GetLatency.Merge(&m.GetLatency)
		out.PutLatency.Merge(&m.PutLatency)
	}
	return out
}

// Snapshot renders a Metrics into an obs registry snapshot shape —
// counters, gauges, and the four histograms under the given name
// prefix — so cluster aggregates and single daemons serve the same
// /debug/vars-style document.
func (m Metrics) Snapshot(prefix string) obs.Snapshot {
	counters := []obs.NamedValue{
		{Name: prefix + "_acks_in", Value: int64(m.AcksIn)},
		{Name: prefix + "_acks_out", Value: int64(m.AcksOut)},
		{Name: prefix + "_dup_reqs", Value: int64(m.DupReqs)},
		{Name: prefix + "_expired", Value: int64(m.Expired)},
		{Name: prefix + "_failovers", Value: int64(m.Failovers)},
		{Name: prefix + "_reqs_in", Value: int64(m.ReqsIn)},
		{Name: prefix + "_reqs_out", Value: int64(m.ReqsOut)},
		{Name: prefix + "_resps_in", Value: int64(m.RespsIn)},
		{Name: prefix + "_resps_out", Value: int64(m.RespsOut)},
		{Name: prefix + "_retransmits", Value: int64(m.Retransmits)},
		{Name: prefix + "_rto_timeouts", Value: int64(m.Timeouts)},
		{Name: prefix + "_shed", Value: int64(m.Shed)},
		{Name: prefix + "_store_evictions", Value: int64(m.StoreEvictions)},
		{Name: prefix + "_store_gets", Value: int64(m.StoreGets)},
		{Name: prefix + "_store_hits", Value: int64(m.StoreHits)},
		{Name: prefix + "_store_puts", Value: int64(m.StorePuts)},
	}
	down := int64(0)
	if m.Down {
		down = 1
	}
	gauges := []obs.NamedValue{
		{Name: prefix + "_down", Value: down},
		{Name: prefix + "_inflight", Value: int64(m.InFlight)},
		{Name: prefix + "_store_len", Value: int64(m.StoreLen)},
		{Name: prefix + "_waiting", Value: int64(m.Waiting)},
	}
	hists := []obs.NamedHist{
		{Name: prefix + "_get_latency_us", Hist: m.GetLatency},
		{Name: prefix + "_hops", Hist: m.Hops},
		{Name: prefix + "_lookup_latency_us", Hist: m.LookupLatency},
		{Name: prefix + "_put_latency_us", Hist: m.PutLatency},
	}
	return obs.Snapshot{Counters: counters, Gauges: gauges, Hists: hists}
}
