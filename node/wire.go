package node

import (
	"encoding/binary"
	"fmt"
)

// The wire protocol is a compact fixed-header binary format, the same for
// every message kind; requests additionally carry a key, a value and the
// origin address. All integers are big-endian. The header is versioned so
// mixed-version clusters fail loudly instead of misparsing:
//
//	magic   uint16  0x5243 ("RC")
//	version uint8   1
//	kind    uint8   msgReq | msgAck | msgResp
//	op      uint8   OpLookup | OpGet | OpPut (requests and responses)
//	status  uint8   StatusOK | Status... (responses; 0 elsewhere)
//	hops    uint16  hops taken so far (requests) / total (responses)
//	budget  uint16  remaining hop budget (requests)
//	reqID   uint64  request identity, allocated by the origin
//	dst     uint64  destination identifier (requests)
//	key     uint64  key identifier (get/put)
//	deadline uint32 remaining time-to-live in milliseconds (requests)
//	origin  uint8 length + bytes  reply-to address (requests, <= 255 bytes)
//	value   uint16 length + bytes put payload / get result
const (
	wireMagic   uint16 = 0x5243
	wireVersion uint8  = 1

	headerLen = 2 + 1 + 1 + 1 + 1 + 2 + 2 + 8 + 8 + 8 + 4

	// MaxValueLen bounds a stored value so every message fits one UDP
	// datagram with comfortable headroom.
	MaxValueLen = 8 << 10
	// maxPacket bounds a decoded packet.
	maxPacket = headerLen + 1 + 255 + 2 + MaxValueLen
)

// Message kinds.
const (
	msgReq  uint8 = iota + 1 // a lookup/get/put request, forwarded hop by hop
	msgAck                   // per-hop acceptance, retiring the sender's attempt
	msgResp                  // final verdict, sent directly to the origin
)

// Op identifies the operation a request performs at the key's owner.
type Op uint8

// Operations.
const (
	// OpLookup routes to the destination's owner and returns success.
	OpLookup Op = iota + 1
	// OpGet fetches the value stored under the key at its owner.
	OpGet
	// OpPut stores the value under the key at its owner.
	OpPut
)

func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is the final verdict of a request.
type Status uint8

// Statuses.
const (
	// StatusOK: the request reached the key's owner (and, for get, found
	// the key).
	StatusOK Status = iota + 1
	// StatusNotFound: a get reached the owner but the key is absent.
	StatusNotFound
	// StatusNoRoute: every forwarding candidate was exhausted at some hop.
	StatusNoRoute
	// StatusHopBudget: the hop budget ran out.
	StatusHopBudget
	// StatusExpired: the per-message deadline lapsed in flight.
	StatusExpired
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not found"
	case StatusNoRoute:
		return "no route"
	case StatusHopBudget:
		return "hop budget exhausted"
	case StatusExpired:
		return "deadline expired"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// message is the decoded form of every packet; unused fields are zero for
// kinds that do not carry them.
type message struct {
	Kind     uint8
	Op       Op
	Status   Status
	Hops     uint16
	Budget   uint16
	ReqID    uint64
	Dst      uint64
	Key      uint64
	Deadline uint32 // remaining ms
	Origin   string
	Value    []byte
}

// appendWire encodes m into buf (reused across calls by the node loop).
func appendWire(buf []byte, m *message) ([]byte, error) {
	if len(m.Origin) > 255 {
		return nil, fmt.Errorf("node: origin address %q longer than 255 bytes", m.Origin)
	}
	if len(m.Value) > MaxValueLen {
		return nil, fmt.Errorf("node: value of %d bytes exceeds the %d-byte wire limit", len(m.Value), MaxValueLen)
	}
	buf = binary.BigEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, wireVersion, m.Kind, uint8(m.Op), uint8(m.Status))
	buf = binary.BigEndian.AppendUint16(buf, m.Hops)
	buf = binary.BigEndian.AppendUint16(buf, m.Budget)
	buf = binary.BigEndian.AppendUint64(buf, m.ReqID)
	buf = binary.BigEndian.AppendUint64(buf, m.Dst)
	buf = binary.BigEndian.AppendUint64(buf, m.Key)
	buf = binary.BigEndian.AppendUint32(buf, m.Deadline)
	buf = append(buf, uint8(len(m.Origin)))
	buf = append(buf, m.Origin...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Value)))
	buf = append(buf, m.Value...)
	return buf, nil
}

// decodeWire parses a packet. The value is copied out of pkt so the caller
// may reuse the receive buffer.
func decodeWire(pkt []byte) (message, error) {
	var m message
	if len(pkt) < headerLen+1+2 {
		return m, fmt.Errorf("node: packet of %d bytes shorter than the %d-byte minimum", len(pkt), headerLen+1+2)
	}
	if len(pkt) > maxPacket {
		return m, fmt.Errorf("node: packet of %d bytes exceeds the %d-byte maximum", len(pkt), maxPacket)
	}
	if got := binary.BigEndian.Uint16(pkt[0:2]); got != wireMagic {
		return m, fmt.Errorf("node: bad magic %#04x", got)
	}
	if got := pkt[2]; got != wireVersion {
		return m, fmt.Errorf("node: wire version %d, this node speaks %d", got, wireVersion)
	}
	m.Kind = pkt[3]
	if m.Kind < msgReq || m.Kind > msgResp {
		return m, fmt.Errorf("node: unknown message kind %d", m.Kind)
	}
	m.Op = Op(pkt[4])
	m.Status = Status(pkt[5])
	m.Hops = binary.BigEndian.Uint16(pkt[6:8])
	m.Budget = binary.BigEndian.Uint16(pkt[8:10])
	m.ReqID = binary.BigEndian.Uint64(pkt[10:18])
	m.Dst = binary.BigEndian.Uint64(pkt[18:26])
	m.Key = binary.BigEndian.Uint64(pkt[26:34])
	m.Deadline = binary.BigEndian.Uint32(pkt[34:38])
	rest := pkt[headerLen:]
	olen := int(rest[0])
	rest = rest[1:]
	if len(rest) < olen+2 {
		return m, fmt.Errorf("node: truncated origin (%d of %d bytes)", len(rest), olen+2)
	}
	m.Origin = string(rest[:olen])
	rest = rest[olen:]
	vlen := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if vlen > MaxValueLen {
		// maxPacket budgets for a full 255-byte origin, so a short origin
		// leaves room for an over-limit value; reject it here so every
		// decoded message can be re-encoded.
		return m, fmt.Errorf("node: value of %d bytes exceeds the %d-byte wire limit", vlen, MaxValueLen)
	}
	if len(rest) != vlen {
		return m, fmt.Errorf("node: value length %d does not match remaining %d bytes", vlen, len(rest))
	}
	if vlen > 0 {
		m.Value = append([]byte(nil), rest...)
	}
	return m, nil
}
