package node

import (
	"container/list"
	"fmt"
	"sync"

	"rcm/spec"
)

// Store is the pluggable key-value backend a node applies owner operations
// against. Implementations must be safe for concurrent use: the node's
// event loop and test harnesses may call from different goroutines. Values
// are stored as given; callers must not mutate a value after Put or the
// slice returned by Get.
type Store interface {
	// Get returns the value stored under key, reporting presence.
	Get(key uint64) ([]byte, bool)
	// Put stores value under key, overwriting any previous value.
	Put(key uint64, value []byte)
	// Len returns the number of keys currently stored.
	Len() int
}

// MemStore is the unbounded map-backed store (the default).
type MemStore struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

// NewMemStore returns an empty unbounded store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[uint64][]byte)} }

// Get implements Store.
func (s *MemStore) Get(key uint64) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	return v, ok
}

// Put implements Store.
func (s *MemStore) Put(key uint64, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = value
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// LRUStore is a bounded store evicting the least-recently-used key once
// capacity is exceeded. Both Get and Put refresh a key's recency.
type LRUStore struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recent; values are *lruEntry
	m      map[uint64]*list.Element
	evicts uint64
}

type lruEntry struct {
	key   uint64
	value []byte
}

// NewLRUStore returns an empty store bounded to capacity keys (minimum 1).
func NewLRUStore(capacity int) (*LRUStore, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("node: LRU capacity %d must be >= 1", capacity)
	}
	return &LRUStore{cap: capacity, ll: list.New(), m: make(map[uint64]*list.Element)}, nil
}

// Get implements Store, refreshing the key's recency on a hit.
func (s *LRUStore) Get(key uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Put implements Store, evicting the least-recently-used key when the
// store is full and key is new.
func (s *LRUStore) Put(key uint64, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*lruEntry).value = value
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*lruEntry).key)
		s.evicts++
	}
	s.m[key] = s.ll.PushFront(&lruEntry{key: key, value: value})
}

// Len implements Store.
func (s *LRUStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Cap returns the configured capacity.
func (s *LRUStore) Cap() int { return s.cap }

// Evictions returns the number of keys evicted since creation. It is the
// optional store capability behind Metrics.StoreEvictions: any Store
// with an Evictions() uint64 method reports through node metrics.
func (s *LRUStore) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicts
}

// stores is the name-keyed store table — an instance of the module's one
// registry-style spec grammar (rcm/spec), backing the -store flags of
// cmd/rcmd and the cluster harness.
var stores = spec.New[Store]("node", "store")

func init() {
	stores.MustRegister("mem", func(arg string) (Store, error) {
		if arg != "" {
			return nil, fmt.Errorf("node: mem store takes no argument (got %q)", arg)
		}
		return NewMemStore(), nil
	}, "map")
	stores.MustRegister("lru", func(arg string) (Store, error) {
		capacity, ok, err := spec.Int("node", "lru capacity", arg)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("node: lru store requires a capacity, e.g. lru:1024")
		}
		return NewLRUStore(capacity)
	})
	if err := stores.SetDefault("mem"); err != nil {
		panic(err) // mem was just registered; unreachable
	}
}

// RegisterStore adds a store factory under a canonical name plus optional
// aliases, with the same naming rules as every other registry in the
// module. Registered stores resolve through ParseStore everywhere the
// built-ins do, including the cmd/rcmd -store flag.
func RegisterStore(name string, f func(arg string) (Store, error), aliases ...string) error {
	return stores.Register(name, f, aliases...)
}

// StoreNames returns the canonical store names in registration order.
func StoreNames() []string { return stores.Names() }

// ParseStore builds a fresh store from its CLI spelling:
//
//	mem          the unbounded map store (also the empty spec's default)
//	lru:<cap>    a bounded LRU store, e.g. lru:1024
//
// plus anything added through RegisterStore. Each call constructs a new
// store: specs are configurations, not handles.
func ParseStore(s string) (Store, error) { return stores.Parse(s) }
