package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport is the datagram substrate a node sends and receives packets
// on: unreliable, unordered, message-boundary-preserving — UDP semantics.
// The node's retransmission machinery assumes exactly this contract, so an
// in-memory implementation must not add reliability the real network
// lacks.
type Transport interface {
	// Addr returns the transport's own address, the string other nodes
	// send to and the origin carried inside requests.
	Addr() string
	// Send transmits one packet toward addr. Best-effort: packets may be
	// dropped silently; Send errors only on misuse (closed transport,
	// unresolvable address).
	Send(addr string, pkt []byte) error
	// Recv blocks for the next packet, returning it and the sender's
	// address. It returns an error after Close.
	Recv() ([]byte, string, error)
	// Close releases the transport; pending and future Recv calls fail.
	Close() error
}

// errClosed is returned by transport operations after Close.
var errClosed = errors.New("node: transport closed")

// udpTransport is the real-socket transport.
type udpTransport struct {
	conn *net.UDPConn
	buf  []byte
}

// ListenUDP opens a UDP socket on addr ("127.0.0.1:0" picks a free port)
// and returns the transport bound to it.
func ListenUDP(addr string) (Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("node: listen %q: %w", addr, err)
	}
	return &udpTransport{conn: conn, buf: make([]byte, maxPacket+1)}, nil
}

func (t *udpTransport) Addr() string { return t.conn.LocalAddr().String() }

func (t *udpTransport) Send(addr string, pkt []byte) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("node: resolve %q: %w", addr, err)
	}
	_, err = t.conn.WriteToUDP(pkt, ua)
	return err
}

func (t *udpTransport) Recv() ([]byte, string, error) {
	n, from, err := t.conn.ReadFromUDP(t.buf)
	if err != nil {
		return nil, "", err
	}
	pkt := append([]byte(nil), t.buf[:n]...)
	return pkt, from.String(), nil
}

func (t *udpTransport) Close() error { return t.conn.Close() }

// MemNetwork is an in-memory datagram network: a set of named endpoints
// with UDP semantics (unordered across endpoints, silently dropping into
// full mailboxes), letting a whole cluster run in one process with no
// sockets. It is the substrate the conformance and smoke tests replay
// eventsim schedules on.
type MemNetwork struct {
	mu   sync.RWMutex
	next int
	eps  map[string]*memEndpoint
}

// NewMemNetwork returns an empty network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{eps: make(map[string]*memEndpoint)}
}

// memMailboxCap bounds an endpoint's receive queue; packets beyond it are
// dropped, as a kernel socket buffer would.
const memMailboxCap = 4096

type memPacket struct {
	data []byte
	from string
}

type memEndpoint struct {
	net  *MemNetwork
	addr string
	box  chan memPacket
	once sync.Once
	done chan struct{}
}

// Endpoint creates a new endpoint with a unique synthetic address.
func (n *MemNetwork) Endpoint() Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := fmt.Sprintf("mem:%d", n.next)
	n.next++
	ep := &memEndpoint{
		net:  n,
		addr: addr,
		box:  make(chan memPacket, memMailboxCap),
		done: make(chan struct{}),
	}
	n.eps[addr] = ep
	return ep
}

func (e *memEndpoint) Addr() string { return e.addr }

func (e *memEndpoint) Send(addr string, pkt []byte) error {
	select {
	case <-e.done:
		return errClosed
	default:
	}
	e.net.mu.RLock()
	dst, ok := e.net.eps[addr]
	e.net.mu.RUnlock()
	if !ok {
		return nil // unknown destination: dropped, like an unroutable datagram
	}
	p := memPacket{data: append([]byte(nil), pkt...), from: e.addr}
	select {
	case dst.box <- p:
	case <-dst.done:
	default: // full mailbox: dropped, like a full socket buffer
	}
	return nil
}

func (e *memEndpoint) Recv() ([]byte, string, error) {
	select {
	case p := <-e.box:
		return p.data, p.from, nil
	case <-e.done:
		// Drain anything already queued before reporting closure, so a
		// test that closes and re-reads sees deterministic behavior.
		select {
		case p := <-e.box:
			return p.data, p.from, nil
		default:
			return nil, "", errClosed
		}
	}
}

func (e *memEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		e.net.mu.Lock()
		delete(e.net.eps, e.addr)
		e.net.mu.Unlock()
	})
	return nil
}
