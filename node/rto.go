package node

import (
	"time"

	"rcm/overlay"
)

// rttState is the per-peer smoothed RTT estimator behind
// Config.AdaptiveRTO — the standard Jacobson/Karn machinery (RFC 6298):
// an exponentially weighted mean (srtt) and mean deviation (rttvar),
// combined as srtt + 4·rttvar to pick a retransmission timeout that
// tracks the path instead of a static worst case. The simulator runs the
// identical estimator (eventsim's peerRTT) so sim and live agree on the
// algorithm; only the floor differs (see rtoFor).
type rttState struct {
	srtt, rttvar time.Duration
}

// observeRTT feeds one RTT sample for peer into the estimator.
// rcm:loop-owned — called only from the event loop (handleAck), under
// Karn's rule: the caller samples only attempts that were never
// retransmitted.
func (n *Node) observeRTT(peer overlay.ID, r time.Duration) {
	st, ok := n.rtt[peer]
	if !ok {
		n.rtt[peer] = &rttState{srtt: r, rttvar: r / 2}
		return
	}
	// RFC 6298 §2.3: update rttvar before srtt — the deviation is
	// measured against the previous smoothed mean.
	d := st.srtt - r
	if d < 0 {
		d = -d
	}
	st.rttvar += (d - st.rttvar) / 4
	st.srtt += (r - st.srtt) / 8
}

// rtoFor returns the retransmission timeout for attempt try to peer:
// srtt + 4·rttvar, floored at max(1ms, RTO/8), doubled per retry
// (exponential backoff) and capped at 8×RTO. Unlike the simulator —
// whose floor is the configured RTO, preserving the engine's
// RTO > 2×MaxLatency arena invariant — the live floor may undercut the
// fixed RTO: a nearby responsive peer is probed faster, and dead peers
// are detected sooner. That is safe here because pending state lives in
// maps keyed by request id, not recycled arena slots.
func (n *Node) rtoFor(peer overlay.ID, try int) time.Duration {
	rto := n.cfg.RTO
	if st, ok := n.rtt[peer]; ok {
		floor := n.cfg.RTO / 8
		if floor < time.Millisecond {
			floor = time.Millisecond
		}
		if est := st.srtt + 4*st.rttvar; est > floor {
			rto = est
		} else {
			rto = floor
		}
	}
	ceil := 8 * n.cfg.RTO
	for i := 0; i < try && rto < ceil; i++ {
		rto *= 2
	}
	if rto > ceil {
		rto = ceil
	}
	return rto
}
