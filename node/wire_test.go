package node

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// TestWireRoundTrip: every message kind survives encode → decode exactly.
func TestWireRoundTrip(t *testing.T) {
	for name, m := range map[string]message{
		"lookup req": {
			Kind: msgReq, Op: OpLookup, Hops: 3, Budget: 41,
			ReqID: 0xdeadbeefcafe, Dst: 77, Deadline: 4500,
			Origin: "127.0.0.1:40001",
		},
		"put req": {
			Kind: msgReq, Op: OpPut, Budget: 56, ReqID: 1, Dst: 5, Key: 5,
			Deadline: 1, Origin: "mem:0", Value: []byte("hello world"),
		},
		"ack": {Kind: msgAck, ReqID: 42},
		"resp ok": {
			Kind: msgResp, Op: OpGet, Status: StatusOK, Hops: 7,
			ReqID: 9, Value: bytes.Repeat([]byte{0xab}, MaxValueLen),
		},
		"resp fail": {Kind: msgResp, Op: OpLookup, Status: StatusNoRoute, Hops: 2, ReqID: 9},
	} {
		pkt, err := appendWire(nil, &m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := decodeWire(pkt)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip\n got %+v\nwant %+v", name, got, m)
		}
	}
}

// TestWireRejects: malformed packets are rejected, never misparsed.
func TestWireRejects(t *testing.T) {
	good, err := appendWire(nil, &message{Kind: msgReq, Op: OpLookup, ReqID: 1, Origin: "a"})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		p := append([]byte(nil), good...)
		mutate(p)
		return p
	}
	for name, tc := range map[string]struct {
		pkt     []byte
		wantSub string
	}{
		"empty":        {nil, "shorter"},
		"truncated":    {good[:10], "shorter"},
		"bad magic":    {corrupt(func(p []byte) { p[0] = 0xff }), "magic"},
		"bad version":  {corrupt(func(p []byte) { p[2] = 9 }), "version"},
		"bad kind":     {corrupt(func(p []byte) { p[3] = 77 }), "kind"},
		"short origin": {corrupt(func(p []byte) { p[headerLen] = 200 }), "origin"},
		"oversized":    {make([]byte, maxPacket+1), "maximum"},
		// A short origin leaves headroom under maxPacket for a value
		// beyond MaxValueLen; decode must reject it so the message could
		// be re-encoded (found by FuzzParseMessage's round-trip check).
		"oversized value": {func() []byte {
			p, err := appendWire(nil, &message{Kind: msgReq, Op: OpPut, Value: make([]byte, MaxValueLen)})
			if err != nil {
				t.Fatal(err)
			}
			binary.BigEndian.PutUint16(p[headerLen+1:], MaxValueLen+1)
			return append(p, 0)
		}(), "wire limit"},
		"value length mismatch": {corrupt(func(p []byte) {
			binary.BigEndian.PutUint16(p[len(p)-2:], 9)
		}), "value length"},
	} {
		_, err := decodeWire(tc.pkt)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

// TestWireEncodeRejects: oversized fields fail at encode, before hitting
// the network.
func TestWireEncodeRejects(t *testing.T) {
	if _, err := appendWire(nil, &message{Kind: msgReq, Origin: strings.Repeat("a", 256)}); err == nil {
		t.Error("256-byte origin accepted")
	}
	if _, err := appendWire(nil, &message{Kind: msgReq, Value: make([]byte, MaxValueLen+1)}); err == nil {
		t.Error("oversized value accepted")
	}
}
