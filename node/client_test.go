package node

import (
	"strings"
	"testing"
	"time"

	"rcm/overlay"
)

// TestClientPutGetLookup drives the out-of-band client against a live
// UDP cluster: put through one entry node, get through another, and
// verify the hop accounting includes the entry delivery.
func TestClientPutGetLookup(t *testing.T) {
	nodes := bootCluster(t, "chord", 4, "udp")
	space := overlay.MustSpace(4)

	c1, err := Dial(ClientConfig{Target: nodes[2].Addr(), Space: space, RTO: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(ClientConfig{Target: nodes[9].Addr(), Space: space, RTO: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if res := c1.Put("alpha", []byte("beta")); !res.OK() {
		t.Fatalf("put: %+v", res)
	}
	got := c2.Get("alpha")
	if !got.OK() || string(got.Value) != "beta" {
		t.Fatalf("get = %+v, want beta", got)
	}
	if got.Hops < 1 {
		t.Errorf("client get took %d hops, want >= 1 (entry delivery counts)", got.Hops)
	}
	if res := c1.Get("never"); res.Err != nil || res.Status != StatusNotFound {
		t.Errorf("missing key = %+v, want StatusNotFound", res)
	}
	for dst := overlay.ID(0); dst < 16; dst++ {
		if res := c2.Lookup(dst); !res.OK() {
			t.Errorf("lookup %d: %+v", dst, res)
		}
	}
	if res := c1.Lookup(99); res.Err == nil || !strings.Contains(res.Err.Error(), "outside") {
		t.Errorf("out-of-space destination accepted: %+v", res)
	}
}

// TestClientUnresponsiveEntry: a client pointed at a dead address fails
// with the entry-node diagnosis after its retransmissions, not a hang.
func TestClientUnresponsiveEntry(t *testing.T) {
	c, err := Dial(ClientConfig{
		Target:      "127.0.0.1:1", // nothing listens there
		Space:       overlay.MustSpace(4),
		RTO:         10 * time.Millisecond,
		Retransmits: 1,
		Deadline:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.Lookup(3)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "unresponsive") {
		t.Errorf("dead entry node = %+v, want unresponsive error", res)
	}
}
