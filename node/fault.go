package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rcm/fault"
	"rcm/overlay"
)

// FaultConfig binds an rcm/fault plan to a live transport. The wrapper
// runs the same schedule the event simulator does: partition groups and
// stall episodes are pure functions of (Seed, Horizon, node id), so a
// cluster whose wrappers share Seed and Horizon reproduces eventsim's
// fault schedule exactly — the property the conformance suite pins.
type FaultConfig struct {
	// Plan is the fault schedule; it must be valid and non-empty.
	Plan fault.Plan
	// Seed fixes the plan's derived choices (partition cut, stall
	// episodes, clause coins). Use the simulation seed for conformance.
	Seed uint64
	// Horizon is the plan's time horizon in seconds — stall episodes are
	// placed inside [0, Horizon). Use the simulated duration for
	// conformance (default 3600).
	Horizon float64
	// Self is this endpoint's overlay identifier, used for partition
	// grouping of outbound requests and stall filtering of inbound ones.
	Self uint64
	// IDOf resolves a transport address to its overlay identifier —
	// the inverse of Config.AddrOf, needed to group the receiver of an
	// outbound request. Required when the plan has a partition clause.
	IDOf func(addr string) (uint64, bool)
	// Now is the plan clock in seconds; windowed clauses (partition,
	// delayspike) and stall episodes are evaluated against it. A cluster
	// replaying a simulated schedule supplies its virtual clock here.
	// Defaults to wall time since the wrapper was created.
	Now func() float64
	// Latency is the one-way latency bound of the underlying network —
	// the hold-back budget reordering and delay spikes are scaled by,
	// mirroring eventsim's use of the inner transport's MaxLatency
	// (default 10ms).
	Latency time.Duration
}

// FaultTransport wraps a Transport with deterministic fault injection.
// Like the simulator — and for the same reason — every clause faults
// requests only: acks and responses pass untouched, so the wrapper's
// damage is exactly what the engine models. Outbound requests may be
// blackholed (partition), mangled (corrupt — the receiver's wire codec
// rejects them), duplicated, held back (reorder, delayspike); inbound
// requests are dropped while this node is inside its stall episode.
// Injected faults are tallied per kind (Counts).
type FaultTransport struct {
	inner Transport
	inj   *fault.Injector
	cfg   FaultConfig
	start time.Time

	mu  sync.Mutex
	rng *overlay.RNG // clause coins; guarded by mu

	done chan struct{}
	once sync.Once

	partitionDrops, dups, reorders, corrupts, stallDrops atomic.Uint64
}

// WrapFault wraps inner with the configured fault plan.
func WrapFault(inner Transport, fc FaultConfig) (*FaultTransport, error) {
	if inner == nil {
		return nil, fmt.Errorf("node: WrapFault: nil inner transport")
	}
	if fc.Plan.Empty() {
		return nil, fmt.Errorf("node: WrapFault: empty fault plan")
	}
	if err := fc.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("node: WrapFault: %w", err)
	}
	if fc.Plan.Partition != nil && fc.IDOf == nil {
		return nil, fmt.Errorf("node: WrapFault: a partition clause needs IDOf to group receivers")
	}
	if fc.Horizon <= 0 {
		fc.Horizon = 3600
	}
	if fc.Latency <= 0 {
		fc.Latency = 10 * time.Millisecond
	}
	ft := &FaultTransport{
		inner: inner,
		inj:   fc.Plan.Bind(fc.Seed, fc.Horizon),
		cfg:   fc,
		start: time.Now(),
		// A per-endpoint coin stream, derived from (seed, self) so two
		// endpoints never share coins.
		rng:  overlay.NewRNG(fc.Seed ^ (fc.Self+1)*0x9e3779b97f4a7c15),
		done: make(chan struct{}),
	}
	return ft, nil
}

func (ft *FaultTransport) now() float64 {
	if ft.cfg.Now != nil {
		return ft.cfg.Now()
	}
	return time.Since(ft.start).Seconds()
}

// Counts returns the faults injected so far, by kind.
func (ft *FaultTransport) Counts() fault.Counts {
	return fault.Counts{
		PartitionDrops: ft.partitionDrops.Load(),
		Dups:           ft.dups.Load(),
		Reorders:       ft.reorders.Load(),
		Corrupts:       ft.corrupts.Load(),
		StallDrops:     ft.stallDrops.Load(),
	}
}

// Addr implements Transport.
func (ft *FaultTransport) Addr() string { return ft.inner.Addr() }

// Close implements Transport; held (reordered/delayed) sends become
// inert.
func (ft *FaultTransport) Close() error {
	ft.once.Do(func() { close(ft.done) })
	return ft.inner.Close()
}

// isReq reports whether pkt is a request datagram — the only kind the
// plan applies to.
func isReq(pkt []byte) bool { return len(pkt) > 3 && pkt[3] == msgReq }

// Send implements Transport, applying the plan to request packets.
func (ft *FaultTransport) Send(addr string, pkt []byte) error {
	if !isReq(pkt) {
		return ft.inner.Send(addr, pkt)
	}
	t := ft.now()
	pl := ft.inj.Plan()
	// Partition first: a blackholed request never arrives, duplicated,
	// corrupted or otherwise — matching the engine, which drops both
	// copies of a cross-partition request.
	if pl.Partition != nil {
		if dst, ok := ft.cfg.IDOf(addr); ok && ft.inj.CrossPartition(ft.cfg.Self, dst, t) {
			ft.partitionDrops.Add(1)
			return nil
		}
	}
	corrupt, reorderHold, dup := ft.coins(pl)
	if reorderHold > 0 {
		ft.reorders.Add(1)
	}
	hold := reorderHold
	if f := ft.inj.DelayFactor(t); f > 1 {
		hold += time.Duration((f - 1) * float64(ft.cfg.Latency))
	}
	out := pkt
	if corrupt {
		// Mangle a copy (the caller reuses its buffer) in the magic or
		// version bytes, which the receiving codec rejects
		// unconditionally — never the kind byte, whose bit-flips could
		// alias another valid kind.
		out = append([]byte(nil), pkt...)
		ft.mu.Lock()
		i := ft.rng.Intn(3)
		mask := byte(1 + ft.rng.Intn(255))
		ft.mu.Unlock()
		out[i] ^= mask
		ft.corrupts.Add(1)
	}
	if dup {
		// The duplicate is a faithful copy: the receiver's dedupe window
		// absorbs it (or the corrupt primary's loss is papered over).
		ft.dups.Add(1)
		ft.sendHeld(addr, append([]byte(nil), pkt...), hold)
	}
	if hold > 0 {
		if !corrupt {
			out = append([]byte(nil), pkt...) // held past the caller's buffer reuse
		}
		ft.sendHeld(addr, out, hold)
		return nil
	}
	return ft.inner.Send(addr, out)
}

// sendHeld transmits pkt (a private copy) after delay, dropping it if
// the transport closes first.
func (ft *FaultTransport) sendHeld(addr string, pkt []byte, delay time.Duration) {
	if delay <= 0 {
		ft.inner.Send(addr, pkt)
		return
	}
	time.AfterFunc(delay, func() {
		select {
		case <-ft.done:
		default:
			ft.inner.Send(addr, pkt)
		}
	})
}

// coins draws the clause coins for one outbound request under the
// wrapper's private stream.
func (ft *FaultTransport) coins(pl fault.Plan) (corrupt bool, hold time.Duration, dup bool) {
	if pl.Corrupt == 0 && pl.Reorder == 0 && pl.Dup == 0 {
		return false, 0, false
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if pl.Corrupt > 0 {
		corrupt = ft.rng.Bernoulli(pl.Corrupt)
	}
	if pl.Reorder > 0 && ft.rng.Bernoulli(pl.Reorder) {
		hold = time.Duration(ft.rng.Float64() * float64(ft.cfg.Latency))
		if hold <= 0 {
			hold = time.Millisecond
		}
	}
	if pl.Dup > 0 {
		dup = ft.rng.Bernoulli(pl.Dup)
	}
	return corrupt, hold, dup
}

// Recv implements Transport: inbound requests are dropped while this
// node is inside its stall episode — alive but unresponsive, exactly the
// engine's model (no ack, so the sender's RTO machinery takes over).
func (ft *FaultTransport) Recv() ([]byte, string, error) {
	for {
		pkt, from, err := ft.inner.Recv()
		if err != nil {
			return pkt, from, err
		}
		if isReq(pkt) && ft.inj.Stalled(ft.cfg.Self, ft.now()) {
			ft.stallDrops.Add(1)
			continue
		}
		return pkt, from, nil
	}
}
