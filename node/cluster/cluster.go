// Package cluster bootstraps and drives whole populations of live
// rcm/node DHT nodes — every identifier in the space backed by a running
// node, over in-memory datagrams (one process, no sockets) or real UDP
// loopback sockets. Its centerpiece is Replay: executing an eventsim
// schedule (the exact lifecycle and workload eventsim.Run would simulate)
// against the live cluster, so the conformance suite can pin live lookup
// outcomes to the simulator's predictions.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rcm"
	"rcm/eventsim"
	"rcm/fault"
	"rcm/node"
	"rcm/obs"
	"rcm/overlay"
	"rcm/replica"
)

// Config configures a cluster.
type Config struct {
	// Protocol names the overlay in either registry vocabulary ("chord",
	// "ring", "kademlia", ...).
	Protocol string
	// Bits is the identifier length; the cluster runs 2^Bits nodes.
	Bits int
	// Seed seeds overlay construction.
	Seed uint64
	// Transport selects the substrate: "mem" (default; in-memory
	// datagrams) or "udp" (one loopback socket per node).
	Transport string
	// Store is the per-node store spec ("mem", "lru:1024", ...); every
	// node gets its own fresh store.
	Store string
	// RTO, Retransmits, MaxHops and Deadline configure every node; see
	// node.Config. Zero selects the node defaults.
	RTO         time.Duration
	Retransmits int
	MaxHops     int
	Deadline    time.Duration
	// Replicas is the key replication factor every node operates with
	// (see node.Config.Replicas); 0 and 1 both mean no replication.
	Replicas int
	// Fault is an optional rcm/fault plan ("partition:2@1-3,dup:0.2",
	// ...); when set, every node's transport is wrapped in a
	// node.FaultTransport running the plan against the cluster's shared
	// plan clock, which Replay advances in schedule time — so the live
	// cluster suffers the same fault schedule an eventsim run of the
	// fault-wrapped transport simulates.
	Fault string
	// FaultSeed seeds the plan's derived choices (partition cut, stall
	// episodes); use the simulation seed for conformance.
	FaultSeed uint64
	// FaultHorizon is the plan's time horizon in schedule seconds
	// (stall-episode placement); use the schedule duration for
	// conformance. Defaults to 3600.
	FaultHorizon float64
	// FaultWallClock evaluates the plan against wall-clock seconds since
	// boot instead of the replay-driven schedule clock — for interactive
	// clusters, where nothing advances the schedule clock.
	FaultWallClock bool
	// AdaptiveRTO enables the per-peer adaptive retransmission timeout
	// on every node (see node.Config.AdaptiveRTO).
	AdaptiveRTO bool
	// MaxInFlight bounds every node's forward table (see
	// node.Config.MaxInFlight); 0 selects the node default.
	MaxInFlight int
}

// planClock is the cluster-wide fault-plan clock: Replay advances it to
// each event's schedule time, so windowed fault clauses fire in schedule
// time exactly as they do in simulated time.
type planClock struct{ bits atomic.Uint64 }

func (c *planClock) set(t float64) { c.bits.Store(math.Float64bits(t)) }
func (c *planClock) now() float64  { return math.Float64frombits(c.bits.Load()) }

// Cluster is a running population of live nodes, one per identifier.
type Cluster struct {
	proto  rcm.Protocol
	nodes  []*node.Node
	addrs  []string
	faults []*node.FaultTransport
	clock  planClock
	bounds []float64 // fault-plan window edges, ascending
}

// New builds the overlay, boots one node per identifier and starts them
// all. Callers own the cluster and must Close it.
func New(cfg Config) (*Cluster, error) {
	proto, err := rcm.NewProtocol(cfg.Protocol, rcm.Config{Bits: cfg.Bits, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	n := int(proto.Space().Size())
	c := &Cluster{
		proto: proto,
		nodes: make([]*node.Node, n),
		addrs: make([]string, n),
	}

	var mem *node.MemNetwork
	switch cfg.Transport {
	case "", "mem":
		mem = node.NewMemNetwork()
	case "udp":
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q (have mem, udp)", cfg.Transport)
	}

	transports := make([]node.Transport, n)
	for i := 0; i < n; i++ {
		var tr node.Transport
		if mem != nil {
			tr = mem.Endpoint()
		} else {
			tr, err = node.ListenUDP("127.0.0.1:0")
			if err != nil {
				c.closeTransports(transports[:i])
				return nil, err
			}
		}
		transports[i] = tr
		c.addrs[i] = tr.Addr()
	}

	if cfg.Fault != "" {
		plan, err := fault.Parse(cfg.Fault)
		if err != nil {
			c.closeTransports(transports)
			return nil, fmt.Errorf("cluster: %w", err)
		}
		horizon := cfg.FaultHorizon
		if horizon <= 0 {
			horizon = 3600
		}
		addrToID := make(map[string]uint64, n)
		for i, a := range c.addrs {
			addrToID[a] = uint64(i)
		}
		now := c.clock.now
		if cfg.FaultWallClock {
			now = nil // node.WrapFault defaults to wall time since creation
		}
		c.faults = make([]*node.FaultTransport, n)
		for i := 0; i < n; i++ {
			ft, err := node.WrapFault(transports[i], node.FaultConfig{
				Plan:    plan,
				Seed:    cfg.FaultSeed,
				Horizon: horizon,
				Self:    uint64(i),
				IDOf:    func(addr string) (uint64, bool) { id, ok := addrToID[addr]; return id, ok },
				Now:     now,
				// The in-memory (or loopback) substrate delivers in
				// microseconds; a small hold budget keeps reordering well
				// under any sane RTO, mirroring the engine's
				// inner-MaxLatency scaling.
				Latency: 2 * time.Millisecond,
			})
			if err != nil {
				c.closeTransports(transports)
				return nil, fmt.Errorf("cluster: %w", err)
			}
			transports[i] = ft
			c.faults[i] = ft
		}
		c.bounds = plan.Boundaries()
		sort.Float64s(c.bounds)
	}

	addrOf := func(id overlay.ID) string { return c.addrs[id] }
	for i := 0; i < n; i++ {
		store, err := node.ParseStore(cfg.Store)
		if err != nil {
			c.closeTransports(transports)
			c.closeStarted(i)
			return nil, err
		}
		nd, err := node.New(node.Config{
			Protocol:    proto,
			ID:          overlay.ID(i),
			Transport:   transports[i],
			AddrOf:      addrOf,
			Store:       store,
			RTO:         cfg.RTO,
			Retransmits: cfg.Retransmits,
			MaxHops:     cfg.MaxHops,
			Deadline:    cfg.Deadline,
			Replicas:    cfg.Replicas,
			AdaptiveRTO: cfg.AdaptiveRTO,
			MaxInFlight: cfg.MaxInFlight,
		})
		if err != nil {
			c.closeTransports(transports)
			c.closeStarted(i)
			return nil, err
		}
		c.nodes[i] = nd
		nd.Start()
	}
	return c, nil
}

func (c *Cluster) closeTransports(ts []node.Transport) {
	for _, t := range ts {
		if t != nil {
			t.Close()
		}
	}
}

func (c *Cluster) closeStarted(n int) {
	for i := 0; i < n; i++ {
		if c.nodes[i] != nil {
			c.nodes[i].Close()
		}
	}
}

// Len returns the population size.
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// Protocol returns the shared overlay.
func (c *Cluster) Protocol() rcm.Protocol { return c.proto }

// Kill crashes node i (idempotent).
func (c *Cluster) Kill(i int) { c.nodes[i].Kill() }

// Restart revives node i (idempotent).
func (c *Cluster) Restart(i int) { c.nodes[i].Restart() }

// FaultCounts sums the faults injected so far across every node's
// wrapper (all zero when the cluster runs without a fault plan).
func (c *Cluster) FaultCounts() fault.Counts {
	var out fault.Counts
	for _, ft := range c.faults {
		out.Add(ft.Counts())
	}
	return out
}

// Metrics snapshots every node's instrumentation and merges it into a
// cluster-wide aggregate (counters sum, histograms merge).
func (c *Cluster) Metrics() node.Metrics {
	ms := make([]node.Metrics, len(c.nodes))
	for i, nd := range c.nodes {
		ms[i] = nd.Metrics()
	}
	return node.MergeMetrics(ms...)
}

// Close stops every node.
func (c *Cluster) Close() {
	var wg sync.WaitGroup
	for _, nd := range c.nodes {
		wg.Add(1)
		go func(nd *node.Node) {
			defer wg.Done()
			nd.Close()
		}(nd)
	}
	wg.Wait()
}

// Outcome is the live verdict of one scheduled lookup, index-aligned with
// the schedule's Lookups.
type Outcome struct {
	// T is the lookup's scheduled time (simulated seconds, for windowing).
	T float64
	// Skipped reports the lookup was not issued: src or dst was offline at
	// its scheduled time, eventsim's surviving-pair conditioning.
	Skipped bool
	// OK reports the issued lookup reached its owner.
	OK bool
	// Hops is the delivered route length (OK only).
	Hops int
	// Latency is the issue-to-verdict wall-clock time of an issued
	// lookup (zero when skipped).
	Latency time.Duration
}

// Report aggregates a replay, window-compatible with eventsim.Result.
type Report struct {
	// Duration is the schedule's horizon.
	Duration float64
	// Outcomes has one entry per scheduled lookup.
	Outcomes []Outcome
}

// WindowSuccess returns completed/started over lookups scheduled in
// [from, to] — the live counterpart of eventsim's Result.WindowSuccess.
// NaN when the window started no lookups.
func (r *Report) WindowSuccess(from, to float64) float64 {
	started, completed := 0, 0
	for _, o := range r.Outcomes {
		if o.Skipped || o.T < from || o.T > to {
			continue
		}
		started++
		if o.OK {
			completed++
		}
	}
	if started == 0 {
		return math.NaN()
	}
	return float64(completed) / float64(started)
}

// WindowMeanHops returns the mean hop count over completed lookups
// scheduled in [from, to] (NaN when none completed).
func (r *Report) WindowMeanHops(from, to float64) float64 {
	sum, completed := 0.0, 0
	for _, o := range r.Outcomes {
		if o.Skipped || !o.OK || o.T < from || o.T > to {
			continue
		}
		completed++
		sum += float64(o.Hops)
	}
	if completed == 0 {
		return math.NaN()
	}
	return sum / float64(completed)
}

// WindowHopDist returns the hop-count distribution over completed
// lookups scheduled in [from, to] — the live counterpart of
// eventsim's Result.WindowHopDist, and directly comparable to it:
// both observe integer hop counts into the same bucket layout, so on
// identical outcome sets the histograms are identical values.
func (r *Report) WindowHopDist(from, to float64) obs.Histogram {
	var h obs.Histogram
	for _, o := range r.Outcomes {
		if o.Skipped || !o.OK || o.T < from || o.T > to {
			continue
		}
		h.Observe(int64(o.Hops))
	}
	return h
}

// WindowLatency returns the wall-clock lookup latency distribution, in
// microseconds, over issued lookups scheduled in [from, to] — every
// verdict, not just successes, mirroring eventsim's latency histogram.
func (r *Report) WindowLatency(from, to float64) obs.Histogram {
	var h obs.Histogram
	for _, o := range r.Outcomes {
		if o.Skipped || o.T < from || o.T > to {
			continue
		}
		h.Observe(o.Latency.Microseconds())
	}
	return h
}

// ReplayOptions tunes Replay.
type ReplayOptions struct {
	// Concurrency bounds simultaneously in-flight lookups (default 64).
	Concurrency int
}

// replayEvent is one schedule entry in the merged timeline.
type replayEvent struct {
	t      float64
	lookup int // index into sched.Lookups, or -1
	toggle int // index into sched.Toggles, or -1
}

// Replay executes an eventsim schedule against the live cluster: initial
// offline nodes are killed, toggles become Kill/Restart, and every
// scheduled lookup whose endpoints are up is issued as a live OpLookup
// from its source node. Events run in schedule-time order; real time is
// event-driven rather than wall-clock-scaled — before any lifecycle
// toggle applies, in-flight lookups are drained, so each lookup observes
// exactly the population state of its scheduled instant (the regime
// eventsim's own lookups see, since simulated routes complete fast
// against toggle spacing).
//
// The report's windows are in schedule time, directly comparable to the
// eventsim.Result of the same Config — which is precisely what the
// conformance suite does.
//
// When the schedule's Params carry Replicas k > 1, each lookup freezes
// the live subset of its key's k-owner replica set at issue time — the
// live analogue of the engine's start-time eligibility mask — and fails
// over across it in placement order, folding every attempt's route cost
// into the one Outcome, exactly as the engine folds prior hops into a
// replicated lookup's total.
func (c *Cluster) Replay(sched *eventsim.Schedule, opt ReplayOptions) (*Report, error) {
	if sched.Nodes != len(c.nodes) {
		return nil, fmt.Errorf("cluster: schedule population %d != cluster population %d", sched.Nodes, len(c.nodes))
	}
	conc := opt.Concurrency
	if conc <= 0 {
		conc = 64
	}
	k := sched.Params.Replicas
	var repl []overlay.ID
	if k > 1 {
		var err error
		for root := 0; root < len(c.nodes); root++ {
			repl, err = replica.For(c.proto, c.proto.Space(), repl, overlay.ID(root), k)
			if err != nil {
				return nil, fmt.Errorf("cluster: %w", err)
			}
		}
		k = len(repl) / len(c.nodes)
	}

	offline := make([]bool, len(c.nodes))
	for i, off := range sched.InitialOffline {
		if off {
			offline[i] = true
			c.Kill(i)
		}
	}

	events := make([]replayEvent, 0, len(sched.Lookups)+len(sched.Toggles))
	for i, lk := range sched.Lookups {
		events = append(events, replayEvent{t: lk.T, lookup: i, toggle: -1})
	}
	for i, tg := range sched.Toggles {
		events = append(events, replayEvent{t: tg.T, lookup: -1, toggle: i})
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].t < events[b].t })

	report := &Report{
		Duration: sched.Duration,
		Outcomes: make([]Outcome, len(sched.Lookups)),
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	drained := true

	bi := 0
	for _, ev := range events {
		// Advance the fault-plan clock, draining in-flight lookups before
		// it crosses a plan window edge: every lookup then observes one
		// side of each fault window — the regime the engine's lookups see
		// when the scenario keeps guard gaps around the edges, which is
		// what makes fault cells conformance-pinnable.
		for bi < len(c.bounds) && ev.t >= c.bounds[bi] {
			if !drained {
				wg.Wait()
				drained = true
			}
			bi++
		}
		c.clock.set(ev.t)

		if ev.toggle >= 0 {
			if !drained {
				wg.Wait()
				drained = true
			}
			tg := sched.Toggles[ev.toggle]
			if offline[tg.Node] == !tg.Up {
				continue // idempotent, like the engine's handleToggle
			}
			offline[tg.Node] = !tg.Up
			if tg.Up {
				c.Restart(tg.Node)
			} else {
				c.Kill(tg.Node)
			}
			continue
		}

		lk := sched.Lookups[ev.lookup]
		out := &report.Outcomes[ev.lookup]
		out.T = lk.T
		var owners []overlay.ID
		if k > 1 {
			for i := 0; i < k; i++ {
				if o := repl[lk.Dst*k+i]; !offline[o] {
					owners = append(owners, o)
				}
			}
		} else if !offline[lk.Dst] {
			owners = []overlay.ID{overlay.ID(lk.Dst)}
		}
		if offline[lk.Src] || len(owners) == 0 {
			out.Skipped = true
			continue
		}
		drained = false
		sem <- struct{}{}
		wg.Add(1)
		go func(src int, owners []overlay.ID, out *Outcome) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			for _, o := range owners {
				res := c.nodes[src].Lookup(o)
				out.Hops += res.Hops
				if res.OK() {
					out.OK = true
					break
				}
			}
			out.Latency = time.Since(start)
		}(lk.Src, owners, out)
	}
	wg.Wait()
	return report, nil
}
