package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"

	"rcm/eventsim"
)

// conformanceConfig is the shared eventsim configuration of the live
// conformance suite: a 2^bits-node massfail run whose post-failure window
// [2, 4] is the steady state both executors are compared over. The
// overlay seed is pinned explicitly so the simulator and the live cluster
// construct the *same* routing tables — agreement is then structural
// (identical first-alive-candidate walks), not statistical.
func conformanceConfig(protocol string, bits int, q float64, seed uint64) eventsim.Config {
	return eventsim.Config{
		Protocol: protocol,
		Overlay:  eventsim.OverlayConfig{Bits: bits, Seed: seed},
		Scenario: "massfail",
		Params:   eventsim.Params{FailFraction: q, FailTime: 1, Rate: 200},
		Duration: 4,
		Seed:     seed,
		// Lossless transports never benefit from same-candidate
		// retransmission, so disable it on both sides: dead-candidate
		// failover then costs one RTO instead of three, which keeps the
		// live replay's wall clock tight without changing any outcome.
		Retransmits: -1,
	}
}

// liveCluster boots the matching live cluster for a conformance config.
func liveCluster(t *testing.T, cfg eventsim.Config) *Cluster {
	t.Helper()
	c, err := New(Config{
		Protocol:    cfg.Protocol,
		Bits:        cfg.Overlay.Bits,
		Seed:        cfg.Overlay.Seed,
		RTO:         15 * time.Millisecond,
		Retransmits: -1,
		Deadline:    3 * time.Second,
		Replicas:    cfg.Params.Replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestConformanceLiveVsEventsim is the acceptance gate of the live-node
// layer: replay the massfail schedule on a 128-node in-process cluster
// for chord, kademlia, singlehop and 3-replicated chord at q = 0 and
// q = 0.2, and require the live steady-state lookup success within
// ±0.05 and the live mean hop count within ±0.5 of eventsim's
// prediction for the identical configuration. Both executors walk the
// same Forwarder candidate lists over the same overlay tables against
// the same failed set — and, replicated, the same frozen owner masks in
// the same placement order — so the comparison pins the whole live
// stack — wire protocol, RTO machinery, candidate failover, replica
// failover, kill semantics — to the simulator's routing discipline.
func TestConformanceLiveVsEventsim(t *testing.T) {
	const (
		bits = 7 // 128 nodes
		seed = 11
	)
	cells := []struct {
		protocol string
		replicas int
	}{
		{"chord", 0},
		{"kademlia", 0},
		{"singlehop", 0},
		{"chord", 3},
	}
	for _, cell := range cells {
		protocol := fmt.Sprintf("%s/k=%d", cell.protocol, cell.replicas)
		for _, q := range []float64{0, 0.2} {
			cfg := conformanceConfig(cell.protocol, bits, q, seed)
			cfg.Params.Replicas = cell.replicas

			res, err := eventsim.Run(cfg)
			if err != nil {
				t.Fatalf("%s q=%v: eventsim: %v", protocol, q, err)
			}
			sched, err := eventsim.BuildSchedule(cfg)
			if err != nil {
				t.Fatalf("%s q=%v: BuildSchedule: %v", protocol, q, err)
			}

			c := liveCluster(t, cfg)
			report, err := c.Replay(sched, ReplayOptions{})
			if err != nil {
				t.Fatalf("%s q=%v: replay: %v", protocol, q, err)
			}

			// Steady state: well after the t = 1 failure.
			simSucc := res.WindowSuccess(2, cfg.Duration)
			liveSucc := report.WindowSuccess(2, cfg.Duration)
			if math.IsNaN(simSucc) || math.IsNaN(liveSucc) {
				t.Fatalf("%s q=%v: empty window (sim %v, live %v)", protocol, q, simSucc, liveSucc)
			}
			if d := math.Abs(simSucc - liveSucc); d > 0.05 {
				t.Errorf("%s q=%v: live success %.4f vs eventsim %.4f (|Δ| = %.4f > 0.05)",
					protocol, q, liveSucc, simSucc, d)
			}

			simHops := windowMeanHops(res, 2, cfg.Duration)
			liveHops := report.WindowMeanHops(2, cfg.Duration)
			if d := math.Abs(simHops - liveHops); d > 0.5 {
				t.Errorf("%s q=%v: live mean hops %.3f vs eventsim %.3f (|Δ| = %.3f > 0.5)",
					protocol, q, liveHops, simHops, d)
			}

			// The strongest pin: the steady-state hop *distributions* are
			// identical histogram values, bucket for bucket — not just
			// close in the mean. Both sides walk the same candidate lists
			// over the same seed-pinned tables against the same failed
			// set, observe integer hop counts into the same obs bucket
			// layout, and the window cohort (lookups scheduled in [2, 4])
			// is closed well after the t = 1 failure, so any inequality
			// here is a routing divergence, not noise.
			simDist := res.WindowHopDist(2, cfg.Duration)
			liveDist := report.WindowHopDist(2, cfg.Duration)
			if simDist != liveDist {
				t.Errorf("%s q=%v: live hop distribution diverges from eventsim:\nlive: %s\nsim:  %s",
					protocol, q, liveDist.String(), simDist.String())
			}
			if simDist.Count() == 0 {
				t.Errorf("%s q=%v: empty steady-state hop distribution", protocol, q)
			}

			// Live latency is wall-clock, so only sanity is pinned: one
			// observation per issued (not skipped) window lookup, and a
			// positive tail.
			liveLat := report.WindowLatency(2, cfg.Duration)
			if liveLat.Count() < liveDist.Count() {
				t.Errorf("%s q=%v: latency histogram n=%d below completed n=%d",
					protocol, q, liveLat.Count(), liveDist.Count())
			}
			if liveLat.Count() > 0 && liveLat.Max() <= 0 {
				t.Errorf("%s q=%v: non-positive live latency tail", protocol, q)
			}

			// q = 0 is an identity, not an approximation: nothing failed,
			// so every lookup must succeed on both substrates.
			if q == 0 && (liveSucc != 1 || simSucc != 1) {
				t.Errorf("%s q=0: success live %.4f, sim %.4f (want exactly 1)", protocol, liveSucc, simSucc)
			}
			t.Logf("%s q=%v: success live %.4f sim %.4f; hops live %.3f sim %.3f",
				protocol, q, liveSucc, simSucc, liveHops, simHops)
		}
	}
}

// windowMeanHops mirrors Report.WindowMeanHops for an eventsim result:
// mean hop count over buckets fully inside [from, to].
func windowMeanHops(r *eventsim.Result, from, to float64) float64 {
	sum, completed := 0.0, 0
	for _, b := range r.Buckets {
		if b.Start >= from && b.End <= to {
			sum += b.SumHops
			completed += b.Completed
		}
	}
	if completed == 0 {
		return math.NaN()
	}
	return sum / float64(completed)
}

// TestReplayChurn exercises the Restart path: a small churn schedule with
// nodes cycling off and on replays without deadlock, and the report's
// cohorts are complete (every scheduled lookup is accounted skipped,
// succeeded or failed).
func TestReplayChurn(t *testing.T) {
	cfg := eventsim.Config{
		Protocol:    "chord",
		Overlay:     eventsim.OverlayConfig{Bits: 4, Seed: 3},
		Scenario:    "churn",
		Params:      eventsim.Params{Rate: 60, MeanOnline: 2, MeanOffline: 0.5},
		Duration:    3,
		Seed:        3,
		Retransmits: -1,
	}
	sched, err := eventsim.BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := liveCluster(t, cfg)
	report, err := c.Replay(sched, ReplayOptions{Concurrency: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != len(sched.Lookups) {
		t.Fatalf("report covers %d of %d lookups", len(report.Outcomes), len(sched.Lookups))
	}
	issued, ok := 0, 0
	for _, o := range report.Outcomes {
		if o.Skipped {
			continue
		}
		issued++
		if o.OK {
			ok++
		}
	}
	if issued == 0 {
		t.Fatal("churn replay issued no lookups")
	}
	// Chord under mild churn with static tables still routes most pairs.
	if frac := float64(ok) / float64(issued); frac < 0.5 {
		t.Errorf("churn replay success %.3f (%d/%d) below sanity floor 0.5", frac, ok, issued)
	}
}

// progScenario adapts a closure to eventsim.Scenario for tests.
type progScenario struct {
	name string
	prog func(*eventsim.Env) error
}

func (s progScenario) Name() string                    { return s.name }
func (s progScenario) Program(env *eventsim.Env) error { return s.prog(env) }

// TestReplayRestartWindowNoDoubleCount pins the report's windows on a
// kill-then-restart schedule with replication: during the outage,
// replicated lookups to dead roots fail over — the live replay re-issues
// the request toward the next owner — and those re-issued attempts must
// fold into their one scheduled lookup's Outcome, never inflate the
// window histograms. The pin is eventsim equality: the outage and
// post-restart windows' hop distributions match the simulator bucket for
// bucket, and the latency histogram holds exactly one observation per
// issued lookup.
func TestReplayRestartWindowNoDoubleCount(t *testing.T) {
	err := eventsim.RegisterScenario("test-kill-revive", func(p eventsim.Params) (eventsim.Scenario, error) {
		return progScenario{name: "test-kill-revive", prog: func(env *eventsim.Env) error {
			n := env.Nodes()
			for i := 0; i < n/4; i++ {
				env.FailAt(1, i)
				env.JoinAt(3, i)
			}
			// Guard gaps around each toggle instant keep every lookup's
			// flight inside one population regime: the live replay drains
			// in-flight lookups before applying a toggle, the simulator
			// does not, and lookups crossing a toggle are the one place
			// the two executors may legitimately diverge. Timeout chains
			// cost one RTO per dead candidate, so the run uses a fast
			// transport (tight RTO) and a wide gap before the revival.
			rate := env.Params().Rate
			env.PoissonLookups(0, 0.9, rate, nil)
			env.PoissonLookups(1.1, 1.5, rate, nil)
			env.PoissonLookups(3.1, env.Duration(), rate, nil)
			return nil
		}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := eventsim.Config{
		Protocol: "chord",
		Overlay:  eventsim.OverlayConfig{Bits: 6, Seed: 9},
		Scenario: "test-kill-revive",
		Params:   eventsim.Params{Rate: 200, Replicas: 3},
		Duration: 4,
		// Unit-width buckets align the simulator's windows with the
		// report's scheduled-time windows below.
		Buckets:     4,
		Seed:        9,
		Transport:   eventsim.Constant{Latency: 0.01},
		Retransmits: -1,
	}
	res, err := eventsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := eventsim.BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := liveCluster(t, cfg)
	report, err := c.Replay(sched, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range [][2]float64{{1, 2}, {3, 4}} {
		simDist := res.WindowHopDist(w[0], w[1])
		liveDist := report.WindowHopDist(w[0], w[1])
		if simDist != liveDist {
			t.Errorf("window [%v, %v]: live hop distribution diverges from eventsim:\nlive: %s\nsim:  %s",
				w[0], w[1], liveDist.String(), simDist.String())
		}
		if simDist.Count() == 0 {
			t.Errorf("window [%v, %v]: empty hop distribution", w[0], w[1])
		}
		issued := 0
		for _, o := range report.Outcomes {
			if !o.Skipped && o.T >= w[0] && o.T <= w[1] {
				issued++
			}
		}
		if liveLat := report.WindowLatency(w[0], w[1]); liveLat.Count() != uint64(issued) {
			t.Errorf("window [%v, %v]: latency histogram n=%d != issued lookups %d (re-issued attempts double-counted?)",
				w[0], w[1], liveLat.Count(), issued)
		}
	}
}

// TestReplayRejectsMismatchedPopulation: a schedule built for a different
// population is refused, not misapplied.
func TestReplayRejectsMismatchedPopulation(t *testing.T) {
	cfg := conformanceConfig("chord", 4, 0, 1)
	sched, err := eventsim.BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := liveCluster(t, conformanceConfig("chord", 3, 0, 1))
	if _, err := small.Replay(sched, ReplayOptions{}); err == nil {
		t.Error("mismatched population accepted")
	}
}
