package cluster

import (
	"fmt"
	"testing"
	"time"

	"rcm/eventsim"
)

// registerGuardedLookups registers (once) the scenario the partition
// conformance cells replay: uniform Poisson lookups with guard gaps
// around the plan's window edges at t = 1 and t = 3, so no lookup's
// flight straddles a fault boundary — the one regime change where the
// simulator (whose clock advances during a route) and the live replay
// (whose plan clock is pinned to the lookup's scheduled instant) could
// legitimately diverge. Inside each regime both executors walk the same
// candidate lists against the same deterministic partition cut, so the
// hop distributions must match histogram for histogram.
func registerGuardedLookups(t *testing.T) {
	t.Helper()
	err := eventsim.RegisterScenario("test-fault-guard", func(p eventsim.Params) (eventsim.Scenario, error) {
		return progScenario{name: "test-fault-guard", prog: func(env *eventsim.Env) error {
			rate := env.Params().Rate
			env.PoissonLookups(0, 0.8, rate, nil)
			env.PoissonLookups(1.2, 1.8, rate, nil)
			env.PoissonLookups(3.4, env.Duration(), rate, nil)
			return nil
		}}, nil
	})
	if err != nil && err.Error() != `eventsim: scenario "test-fault-guard" already registered` {
		t.Fatal(err)
	}
}

// faultConformanceConfig is the shared eventsim configuration of the
// fault conformance cells: a 64-node run on the guarded-lookup schedule
// with the given fault-wrapped transport.
func faultConformanceConfig(protocol, transport, scenario string, seed uint64) (eventsim.Config, error) {
	tr, err := eventsim.ParseTransport(transport)
	if err != nil {
		return eventsim.Config{}, err
	}
	return eventsim.Config{
		Protocol:    protocol,
		Overlay:     eventsim.OverlayConfig{Bits: 6, Seed: seed},
		Scenario:    scenario,
		Params:      eventsim.Params{Rate: 200},
		Duration:    4,
		Buckets:     4, // unit buckets align the windows below
		Seed:        seed,
		Transport:   tr,
		Retransmits: -1,
	}, nil
}

// faultLiveCluster boots the live cluster matching a fault conformance
// config: same overlay seed, same fault plan bound to the same
// (simulation seed, duration), replayed against the cluster's plan
// clock.
func faultLiveCluster(t *testing.T, cfg eventsim.Config, plan string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Protocol: cfg.Protocol,
		Bits:     cfg.Overlay.Bits,
		Seed:     cfg.Overlay.Seed,
		// Generous against wrapper hold-backs (≤ 2ms) plus race-detector
		// scheduling overhead: a spurious live timeout would re-flip
		// clause coins on the retransmission and desynchronize the
		// outcome from the simulator. Blackholed attempts pay this
		// per drop, which is the only place it costs wall clock.
		RTO:          100 * time.Millisecond,
		Retransmits:  -1,
		Deadline:     3 * time.Second,
		Replicas:     cfg.Params.Replicas,
		Fault:        plan,
		FaultSeed:    cfg.Seed,
		FaultHorizon: cfg.Duration,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestFaultConformanceLiveVsEventsim is the fault-injection acceptance
// gate: for each (plan, protocol) cell, run eventsim over the
// fault-wrapped transport and replay the identical schedule against a
// live 64-node cluster whose transports run the identical plan, and
// require the per-window hop distributions to be *equal histogram
// values* — the same exactness the fault-free conformance suite pins.
//
//   - partition:2@1-3 changes behavior: cross-cut requests blackhole on
//     both substrates under the same deterministic cut, so mid-window
//     success drops identically and heals identically.
//   - dup:0.3,reorder:0.3 must NOT change behavior: duplicates are
//     absorbed by dedupe (engine: the dup event only charges a message;
//     live: the dedupe window re-acks) and reordered requests are merely
//     late, so the distributions match the fault-free run's — while the
//     injection counters prove the faults actually fired.
func TestFaultConformanceLiveVsEventsim(t *testing.T) {
	registerGuardedLookups(t)
	const seed = 17
	cells := []struct {
		protocol string
		plan     string
		scenario string
		behaves  bool // plan changes lookup outcomes
	}{
		{"chord", "partition:2@1-3", "test-fault-guard", true},
		{"kademlia", "partition:2@1-3", "test-fault-guard", true},
		{"chord", "dup:0.3,reorder:0.3", "faultstorm", false},
		{"kademlia", "dup:0.3,reorder:0.3", "faultstorm", false},
	}
	for _, cell := range cells {
		name := fmt.Sprintf("%s/%s", cell.protocol, cell.plan)
		cfg, err := faultConformanceConfig(cell.protocol, "fault:"+cell.plan+"/constant:0.01", cell.scenario, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := eventsim.Run(cfg)
		if err != nil {
			t.Fatalf("%s: eventsim: %v", name, err)
		}
		if res.Faults.Total() == 0 {
			t.Fatalf("%s: simulator injected no faults", name)
		}
		sched, err := eventsim.BuildSchedule(cfg)
		if err != nil {
			t.Fatalf("%s: BuildSchedule: %v", name, err)
		}
		c := faultLiveCluster(t, cfg, cell.plan)
		report, err := c.Replay(sched, ReplayOptions{})
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		if c.FaultCounts().Total() == 0 {
			t.Fatalf("%s: live wrappers injected no faults", name)
		}

		windows := [][2]float64{{0, 1}, {1, 2}, {3, 4}}
		for _, w := range windows {
			simDist := res.WindowHopDist(w[0], w[1])
			liveDist := report.WindowHopDist(w[0], w[1])
			if simDist != liveDist {
				t.Errorf("%s window [%v, %v]: live hop distribution diverges from eventsim:\nlive: %s\nsim:  %s",
					name, w[0], w[1], liveDist.String(), simDist.String())
			}
			if simDist.Count() == 0 {
				t.Errorf("%s window [%v, %v]: empty hop distribution", name, w[0], w[1])
			}
			simSucc := res.WindowSuccess(w[0], w[1])
			liveSucc := report.WindowSuccess(w[0], w[1])
			if simSucc != liveSucc {
				t.Errorf("%s window [%v, %v]: live success %.4f != eventsim %.4f",
					name, w[0], w[1], liveSucc, simSucc)
			}
		}

		// Outside any fault window (or under outcome-invariant plans)
		// nothing fails; during a partition the cut makes cross-group
		// destinations unreachable on both substrates.
		if s := res.WindowSuccess(0, 1); s != 1 {
			t.Errorf("%s: pre-window success %.4f, want 1", name, s)
		}
		if s := res.WindowSuccess(3, 4); s != 1 {
			t.Errorf("%s: post-heal success %.4f, want 1", name, s)
		}
		midSim, midLive := res.WindowSuccess(1, 2), report.WindowSuccess(1, 2)
		if cell.behaves {
			if midSim >= 1 {
				t.Errorf("%s: mid-partition sim success %.4f, want < 1", name, midSim)
			}
			if c.FaultCounts().PartitionDrops == 0 || res.Faults.PartitionDrops == 0 {
				t.Errorf("%s: no partition drops (live %d, sim %d)",
					name, c.FaultCounts().PartitionDrops, res.Faults.PartitionDrops)
			}
		} else {
			if midSim != 1 || midLive != 1 {
				t.Errorf("%s: outcome-invariant plan changed success (sim %.4f, live %.4f)", name, midSim, midLive)
			}
			lc := c.FaultCounts()
			if lc.Dups == 0 || lc.Reorders == 0 || res.Faults.Dups == 0 {
				t.Errorf("%s: dup/reorder never fired (live %s, sim %s)", name, lc, res.Faults)
			}
			if m := c.Metrics(); m.DupReqs == 0 {
				t.Errorf("%s: live dedupe window absorbed no duplicates", name)
			}
		}
		t.Logf("%s: mid-window success sim %.4f live %.4f; sim faults %s; live faults %s",
			name, midSim, midLive, res.Faults, c.FaultCounts())
	}
}

// TestChaosSmoke is the `make chaos-smoke` gate: a 64-node live cluster
// replaying a uniform lookup schedule while every transport runs a
// partition-plus-duplication plan, under the race detector. The pin is
// recovery: lookups scheduled after the partition heals all succeed,
// and both fault kinds demonstrably fired.
func TestChaosSmoke(t *testing.T) {
	const budget = 90 * time.Second
	done := make(chan struct{})
	go func() {
		defer close(done)
		const plan = "partition:2@0.5-1.5,dup:0.2"
		cfg, err := faultConformanceConfig("chord", "fault:"+plan+"/constant:0.01", "faultstorm", 5)
		if err != nil {
			t.Error(err)
			return
		}
		cfg.Duration = 3
		cfg.Buckets = 3
		sched, err := eventsim.BuildSchedule(cfg)
		if err != nil {
			t.Errorf("BuildSchedule: %v", err)
			return
		}
		c := faultLiveCluster(t, cfg, plan)
		report, err := c.Replay(sched, ReplayOptions{})
		if err != nil {
			t.Errorf("replay: %v", err)
			return
		}
		counts := c.FaultCounts()
		if counts.PartitionDrops == 0 || counts.Dups == 0 {
			t.Errorf("chaos plan never fired: %s", counts)
		}
		during := report.WindowSuccess(0.5, 1.4)
		if during >= 1 {
			t.Errorf("mid-partition success %.4f, want < 1 (did the partition bite?)", during)
		}
		// Recovery: every lookup scheduled at or after the heal succeeds.
		if healed := report.WindowSuccess(1.5, cfg.Duration); healed != 1 {
			t.Errorf("post-heal success %.4f, want 1", healed)
		}
		t.Logf("chaos smoke: %d lookups, mid-partition success %.4f, faults %s",
			len(report.Outcomes), during, counts)
	}()
	select {
	case <-done:
	case <-time.After(budget):
		t.Fatalf("chaos smoke exceeded its %v budget", budget)
	}
}
