package cluster

import (
	"os"
	"testing"
	"time"

	"rcm/eventsim"
)

// TestClusterSmoke is the `make cluster-smoke` gate: boot a 64-node
// in-process cluster, replay a massfail schedule, and require a nonzero
// lookup success — all under a hard wall-clock budget enforced inside the
// test (in addition to the Makefile's `go test -timeout`). It is the
// cheap always-on signal that the live stack boots, routes, kills and
// fails over; the full tolerance comparison lives in
// TestConformanceLiveVsEventsim.
func TestClusterSmoke(t *testing.T) {
	const budget = 60 * time.Second
	done := make(chan struct{})
	go func() {
		defer close(done)

		cfg := conformanceConfig("chord", 6, 0.2, 5) // 64 nodes
		sched, err := eventsim.BuildSchedule(cfg)
		if err != nil {
			t.Errorf("BuildSchedule: %v", err)
			return
		}
		c := liveCluster(t, cfg)
		report, err := c.Replay(sched, ReplayOptions{})
		if err != nil {
			t.Errorf("replay: %v", err)
			return
		}
		succ := report.WindowSuccess(0, cfg.Duration)
		if !(succ > 0) {
			t.Errorf("smoke replay success %v, want > 0", succ)
			return
		}
		t.Logf("smoke: 64 nodes, %d lookups, success %.4f", len(report.Outcomes), succ)

		// CI artifact: when CLUSTER_METRICS_OUT names a file, write the
		// cluster-wide metrics snapshot (counters, gauges, histogram
		// percentiles) there in the registry JSON shape, so every CI run
		// keeps an inspectable record of what the live stack did.
		if out := os.Getenv("CLUSTER_METRICS_OUT"); out != "" {
			f, err := os.Create(out)
			if err != nil {
				t.Errorf("CLUSTER_METRICS_OUT: %v", err)
				return
			}
			defer f.Close()
			if err := c.Metrics().Snapshot("cluster").WriteJSON(f); err != nil {
				t.Errorf("write metrics snapshot: %v", err)
			}
			t.Logf("smoke: wrote cluster metrics snapshot to %s", out)
		}
	}()
	select {
	case <-done:
	case <-time.After(budget):
		t.Fatalf("cluster smoke exceeded the %v wall-clock budget", budget)
	}
}
