package cluster

import (
	"os"
	"testing"
	"time"

	"rcm/eventsim"
)

// TestClusterSmoke is the `make cluster-smoke` gate: boot 64-node
// in-process clusters — plain chord, single-hop, and 3-replicated chord
// — replay a massfail schedule against each, and require a nonzero
// lookup success — all under a hard wall-clock budget enforced inside the
// test (in addition to the Makefile's `go test -timeout`). It is the
// cheap always-on signal that the live stack boots, routes, kills, fails
// over (across candidates and across replica owners); the full tolerance
// comparison lives in TestConformanceLiveVsEventsim.
func TestClusterSmoke(t *testing.T) {
	const budget = 90 * time.Second
	done := make(chan struct{})
	go func() {
		defer close(done)

		for _, cell := range []struct {
			protocol string
			replicas int
		}{
			{"chord", 0},
			{"singlehop", 0},
			{"chord", 3},
		} {
			cfg := conformanceConfig(cell.protocol, 6, 0.2, 5) // 64 nodes
			cfg.Params.Replicas = cell.replicas
			sched, err := eventsim.BuildSchedule(cfg)
			if err != nil {
				t.Errorf("%s k=%d: BuildSchedule: %v", cell.protocol, cell.replicas, err)
				return
			}
			c := liveCluster(t, cfg)
			report, err := c.Replay(sched, ReplayOptions{})
			if err != nil {
				t.Errorf("%s k=%d: replay: %v", cell.protocol, cell.replicas, err)
				return
			}
			succ := report.WindowSuccess(0, cfg.Duration)
			if !(succ > 0) {
				t.Errorf("%s k=%d: smoke replay success %v, want > 0", cell.protocol, cell.replicas, succ)
				return
			}
			t.Logf("smoke: %s k=%d, 64 nodes, %d lookups, success %.4f",
				cell.protocol, cell.replicas, len(report.Outcomes), succ)

			// CI artifact: when CLUSTER_METRICS_OUT names a file, write
			// the first (plain chord) cell's cluster-wide metrics snapshot
			// (counters, gauges, histogram percentiles) there in the
			// registry JSON shape, so every CI run keeps an inspectable
			// record of what the live stack did.
			if out := os.Getenv("CLUSTER_METRICS_OUT"); out != "" && cell.protocol == "chord" && cell.replicas == 0 {
				f, err := os.Create(out)
				if err != nil {
					t.Errorf("CLUSTER_METRICS_OUT: %v", err)
					return
				}
				if err := c.Metrics().Snapshot("cluster").WriteJSON(f); err != nil {
					t.Errorf("write metrics snapshot: %v", err)
				}
				f.Close()
				t.Logf("smoke: wrote cluster metrics snapshot to %s", out)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(budget):
		t.Fatalf("cluster smoke exceeded the %v wall-clock budget", budget)
	}
}
