package cluster

import (
	"math"
	"testing"
	"time"
)

// reportFixture builds a hand-made report: two completed lookups at
// t = 1 and t = 2, one failed at t = 2.5, one skipped at t = 3.
func reportFixture() *Report {
	return &Report{
		Duration: 4,
		Outcomes: []Outcome{
			{T: 1, OK: true, Hops: 2, Latency: 100 * time.Microsecond},
			{T: 2, OK: true, Hops: 4, Latency: 300 * time.Microsecond},
			{T: 2.5, OK: false, Latency: 900 * time.Microsecond},
			{T: 3, Skipped: true},
		},
	}
}

// TestWindowAccessorsEdgeCases: empty windows, windows outside the run,
// and windows with zero completed lookups yield NaN means (never a
// panic, never an Inf or a bogus 0) and empty histograms.
func TestWindowAccessorsEdgeCases(t *testing.T) {
	r := reportFixture()

	// Inverted and out-of-run windows start nothing.
	for _, w := range [][2]float64{{3.5, 3.9}, {10, 20}, {-5, -1}, {2, 1}} {
		if s := r.WindowSuccess(w[0], w[1]); !math.IsNaN(s) {
			t.Errorf("WindowSuccess%v = %v, want NaN", w, s)
		}
		if h := r.WindowMeanHops(w[0], w[1]); !math.IsNaN(h) {
			t.Errorf("WindowMeanHops%v = %v, want NaN", w, h)
		}
		hd := r.WindowHopDist(w[0], w[1])
		if hd.Count() != 0 {
			t.Errorf("WindowHopDist%v n = %d, want empty", w, hd.Count())
		}
		lat := r.WindowLatency(w[0], w[1])
		if lat.Count() != 0 {
			t.Errorf("WindowLatency%v n = %d, want empty", w, lat.Count())
		}
	}

	// A window where everything started but nothing completed: success
	// is an exact 0, mean hops NaN (no completions to average), and the
	// latency histogram still sees the failed lookup.
	if s := r.WindowSuccess(2.4, 2.6); s != 0 {
		t.Errorf("all-failed WindowSuccess = %v, want 0", s)
	}
	if h := r.WindowMeanHops(2.4, 2.6); !math.IsNaN(h) {
		t.Errorf("all-failed WindowMeanHops = %v, want NaN", h)
	}
	failedDist := r.WindowHopDist(2.4, 2.6)
	if failedDist.Count() != 0 {
		t.Errorf("all-failed WindowHopDist n = %d, want 0", failedDist.Count())
	}
	failedLat := r.WindowLatency(2.4, 2.6)
	if failedLat.Count() != 1 || failedLat.Max() != 900 {
		t.Errorf("all-failed WindowLatency n=%d max=%d, want n=1 max=900µs", failedLat.Count(), failedLat.Max())
	}

	// A window holding only the skipped lookup is empty, not failed.
	if s := r.WindowSuccess(2.9, 3.1); !math.IsNaN(s) {
		t.Errorf("skipped-only WindowSuccess = %v, want NaN", s)
	}

	// The empty report: every accessor degrades the same way.
	empty := &Report{Duration: 4}
	if s := empty.WindowSuccess(0, 4); !math.IsNaN(s) {
		t.Errorf("empty report WindowSuccess = %v, want NaN", s)
	}
	if h := empty.WindowMeanHops(0, 4); !math.IsNaN(h) {
		t.Errorf("empty report WindowMeanHops = %v, want NaN", h)
	}
	emptyDist := empty.WindowHopDist(0, 4)
	if got := emptyDist.Mean(); !math.IsNaN(got) {
		t.Errorf("empty report hop-dist mean = %v, want NaN", got)
	}
}

// TestWindowAccessorsFullRun: over the whole run the accessors agree
// with hand counts: 2 completed of 3 started, hops {2, 4}, latencies
// {100, 300, 900}µs.
func TestWindowAccessorsFullRun(t *testing.T) {
	r := reportFixture()
	if s := r.WindowSuccess(0, 4); s != 2.0/3.0 {
		t.Errorf("WindowSuccess = %v, want 2/3", s)
	}
	if h := r.WindowMeanHops(0, 4); h != 3 {
		t.Errorf("WindowMeanHops = %v, want 3", h)
	}
	hd := r.WindowHopDist(0, 4)
	if hd.Count() != 2 || hd.Sum() != 6 || hd.Min() != 2 || hd.Max() != 4 {
		t.Errorf("WindowHopDist n=%d sum=%d min=%d max=%d, want 2/6/2/4",
			hd.Count(), hd.Sum(), hd.Min(), hd.Max())
	}
	lat := r.WindowLatency(0, 4)
	if lat.Count() != 3 || lat.Min() != 100 || lat.Max() != 900 {
		t.Errorf("WindowLatency n=%d min=%d max=%d, want 3/100/900", lat.Count(), lat.Min(), lat.Max())
	}
	// Window boundaries are inclusive on both ends.
	if hd := r.WindowHopDist(1, 2); hd.Count() != 2 {
		t.Errorf("inclusive-boundary WindowHopDist n = %d, want 2", hd.Count())
	}
}
