package node

import (
	"fmt"
	"strings"
	"testing"

	"rcm"
	"rcm/overlay"
)

// TestMetricsCounters: a healthy cluster's aggregate metrics balance —
// every sent message of each kind is received somewhere, every
// locally-originated OK lookup lands in the hop histogram, and the
// per-op latency histograms partition the verdicts by operation.
func TestMetricsCounters(t *testing.T) {
	nodes := bootCluster(t, "chord", 4, "mem")
	const perNode = 8
	lookups, puts, gets := 0, 0, 0
	for i, nd := range nodes {
		for j := 0; j < perNode; j++ {
			dst := overlay.ID((i + 3*j + 1) % len(nodes))
			if !nd.Lookup(dst).OK() {
				t.Fatalf("lookup %d->%d failed", i, dst)
			}
			lookups++
		}
	}
	key := "metrics-key"
	if !nodes[0].Put(key, []byte("v")).OK() {
		t.Fatal("put failed")
	}
	puts++
	if r := nodes[1].Get(key); !r.OK() || string(r.Value) != "v" {
		t.Fatalf("get: %+v", r)
	}
	gets++
	if r := nodes[2].Get("metrics-missing"); r.Status != StatusNotFound {
		t.Fatalf("get missing: %+v", r)
	}
	gets++

	all := make([]Metrics, len(nodes))
	for i, nd := range nodes {
		all[i] = nd.Metrics()
	}
	agg := MergeMetrics(all...)

	// The in-memory transport is lossless and nobody is down, so
	// every sent message is received.
	if agg.ReqsIn != agg.ReqsOut || agg.AcksIn != agg.AcksOut || agg.RespsIn != agg.RespsOut {
		t.Errorf("lossless cluster should balance in/out: %+v", agg)
	}
	// Every request delivery is acknowledged, attempt for attempt.
	if agg.AcksOut != agg.ReqsIn {
		t.Errorf("acks out %d != reqs in %d", agg.AcksOut, agg.ReqsIn)
	}
	// The missing-key get is NotFound, so it has a latency but no hop
	// observation.
	okVerdicts := uint64(lookups+puts+gets) - 1
	if agg.Hops.Count() != okVerdicts {
		t.Errorf("hop histogram count %d, want %d OK verdicts", agg.Hops.Count(), okVerdicts)
	}
	// All verdicts (including NotFound) land in a latency histogram.
	if n := agg.LookupLatency.Count(); n != uint64(lookups) {
		t.Errorf("lookup latency count %d, want %d", n, lookups)
	}
	if n := agg.GetLatency.Count(); n != uint64(gets) {
		t.Errorf("get latency count %d, want %d", n, gets)
	}
	if n := agg.PutLatency.Count(); n != uint64(puts) {
		t.Errorf("put latency count %d, want %d", n, puts)
	}
	if agg.StorePuts != uint64(puts) || agg.StoreGets != uint64(gets) || agg.StoreHits != 1 {
		t.Errorf("store counters: gets=%d hits=%d puts=%d", agg.StoreGets, agg.StoreHits, agg.StorePuts)
	}
	if agg.StoreLen != 1 {
		t.Errorf("aggregate store len %d, want 1", agg.StoreLen)
	}
	if agg.InFlight != 0 || agg.Waiting != 0 {
		t.Errorf("idle cluster has in-flight state: %+v", agg)
	}
	if agg.Down {
		t.Error("nobody is down")
	}
	if agg.Timeouts != 0 || agg.Retransmits != 0 || agg.Failovers != 0 || agg.Expired != 0 {
		t.Errorf("lossless cluster recovered from nothing: %+v", agg)
	}
}

// TestMetricsHopsMatchResults: the origin's hop histogram records exactly
// the per-result hop counts the caller saw.
func TestMetricsHopsMatchResults(t *testing.T) {
	nodes := bootCluster(t, "kademlia", 4, "mem")
	var want Histogramlike
	for dst := range nodes {
		r := nodes[0].Lookup(overlay.ID(dst))
		if !r.OK() {
			t.Fatalf("lookup 0->%d failed", dst)
		}
		want.observe(int64(r.Hops))
	}
	m := nodes[0].Metrics()
	if m.Hops.Count() != want.n || m.Hops.Sum() != want.sum {
		t.Errorf("hop histogram (n=%d sum=%d) != results (n=%d sum=%d)",
			m.Hops.Count(), m.Hops.Sum(), want.n, want.sum)
	}
	if got := m.Hops.Max(); got != want.max {
		t.Errorf("hop histogram max %d, want %d", got, want.max)
	}
}

// Histogramlike is a scalar shadow of the histogram for cross-checks.
type Histogramlike struct {
	n   uint64
	sum int64
	max int64
}

func (h *Histogramlike) observe(v int64) {
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// TestMetricsDownAndClosed: killed nodes report Down and count expired
// guards; a closed node returns the zero snapshot instead of hanging.
func TestMetricsDownAndClosed(t *testing.T) {
	nodes := bootCluster(t, "chord", 3, "mem")
	victim := nodes[3]
	victim.Kill()
	m := victim.Metrics()
	if !m.Down {
		t.Error("killed node does not report Down")
	}
	victim.Restart()
	if m := victim.Metrics(); m.Down {
		t.Error("restarted node still reports Down")
	}
	victim.Close()
	if m := victim.Metrics(); m != (Metrics{}) {
		t.Errorf("closed node returned non-zero metrics: %+v", m)
	}
}

// TestMetricsEvictions: a node backed by an LRU store surfaces the
// backend's eviction count through its snapshot.
func TestMetricsEvictions(t *testing.T) {
	lru, err := NewLRUStore(2)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := rcm.NewProtocol("chord", rcm.Config{Bits: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemNetwork()
	tr := mem.Endpoint()
	addr := tr.Addr()
	nd, err := New(Config{
		Protocol:  proto,
		ID:        0,
		Transport: tr,
		AddrOf:    func(overlay.ID) string { return addr },
		Store:     lru,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	t.Cleanup(nd.Close)
	// Only node 0 exists, so use keys it owns (no routing required).
	puts := 0
	for i := 0; puts < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if KeyID(proto.Space(), key) != 0 {
			continue
		}
		if !nd.Put(key, []byte("v")).OK() {
			t.Fatalf("put %q failed", key)
		}
		puts++
	}
	m := nd.Metrics()
	if m.StoreLen != 2 {
		t.Errorf("store len %d, want capacity 2", m.StoreLen)
	}
	if m.StoreEvictions != 3 {
		t.Errorf("evictions %d, want 3", m.StoreEvictions)
	}
	if m.StorePuts != 5 {
		t.Errorf("store puts %d, want 5", m.StorePuts)
	}
}

// TestMetricsSnapshotShape: the registry-shaped rendering carries every
// counter, gauge and histogram under the prefix, and its JSON form is
// valid registry output.
func TestMetricsSnapshotShape(t *testing.T) {
	nodes := bootCluster(t, "chord", 3, "mem")
	for dst := range nodes {
		nodes[0].Lookup(overlay.ID(dst))
	}
	snap := MergeMetrics(nodes[0].Metrics(), nodes[1].Metrics()).Snapshot("node")
	var sb strings.Builder
	if err := snap.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"node_reqs_out":`, `"node_store_len":`, `"node_hops":`,
		`"node_lookup_latency_us":`, `"counters"`, `"gauges"`, `"histograms"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot JSON missing %s:\n%s", want, out)
		}
	}
	var tb strings.Builder
	if err := snap.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "node_hops") {
		t.Errorf("snapshot text missing histogram line:\n%s", tb.String())
	}
}
