package node

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"rcm/overlay"
)

// Client speaks the node wire protocol from outside the overlay: it
// injects requests at an entry node and waits for the owner's response,
// which travels straight back to the client's own transport address. It
// is what `rcmd -op get|put|lookup` uses to talk to a running daemon,
// and the reference for writing other out-of-band tools.
//
// A client is not a DHT node — it holds no identifier, owns no keys and
// never forwards. Its requests enter the overlay with a full hop budget,
// so the reported hop count includes the delivery to the entry node.
type Client struct {
	cfg  ClientConfig
	tr   Transport
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	seq atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan message
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Target is the transport address of the entry node.
	Target string
	// Space is the overlay's identifier space (it must match the
	// daemons': key ownership is KeyID over this space).
	Space overlay.Space
	// Bind is the local UDP address to listen for responses on; it must
	// be reachable from the daemons (default "127.0.0.1:0").
	Bind string
	// Transport overrides the UDP socket (in-process tests); when set,
	// Bind is ignored and Close leaves the transport open.
	Transport Transport
	// MaxHops bounds route length (default 4·bits + 16, as node.Config).
	MaxHops int
	// RTO is the retransmission interval while the entry node has not
	// acknowledged the request (default 50 ms).
	RTO time.Duration
	// Retransmits is how many times an unacknowledged request is re-sent
	// before the client gives up on the entry node (default 2).
	Retransmits int
	// Deadline is the request time-to-live (default 5 s).
	Deadline time.Duration
}

// clientIDBit marks client-originated request ids: node ids occupy the
// low 62 bits (id<<32 | seq with id < 2^30), so bit 63 never collides.
// Bits 32..62 carry a hash of the client's transport address, keeping
// concurrent clients' ids distinct from each other too — overlay nodes
// dedupe deliveries by request id alone.
const clientIDBit = uint64(1) << 63

// Dial connects a client to the entry node at cfg.Target.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("node: client: empty target address")
	}
	if cfg.Space.Size() == 0 {
		return nil, fmt.Errorf("node: client: zero identifier space")
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 4*cfg.Space.Bits() + 16
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.Retransmits <= 0 {
		cfg.Retransmits = 2
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 5 * time.Second
	}
	tr := cfg.Transport
	if tr == nil {
		bind := cfg.Bind
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		var err error
		tr, err = ListenUDP(bind)
		if err != nil {
			return nil, err
		}
	}
	c := &Client{
		cfg:     cfg,
		tr:      tr,
		done:    make(chan struct{}),
		waiters: make(map[uint64]chan message),
	}
	c.wg.Add(1)
	go c.recvPump()
	return c, nil
}

// Close releases the client's socket and fails outstanding requests.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.done)
		if c.cfg.Transport == nil {
			c.tr.Close()
		}
	})
	if c.cfg.Transport == nil {
		c.wg.Wait()
	}
}

// recvPump routes acknowledgements and responses to their waiters.
func (c *Client) recvPump() {
	defer c.wg.Done()
	for {
		pkt, _, err := c.tr.Recv()
		if err != nil {
			return
		}
		m, err := decodeWire(pkt)
		if err != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.waiters[m.ReqID]
		c.mu.Unlock()
		if ok {
			select {
			case ch <- m:
			default: // waiter's buffer full (duplicate): drop
			}
		}
	}
}

// Lookup routes to the owner of dst through the entry node.
func (c *Client) Lookup(dst overlay.ID) Result {
	return c.do(OpLookup, dst, 0, nil)
}

// Get fetches the value stored under key.
func (c *Client) Get(key string) Result {
	return c.do(OpGet, KeyID(c.cfg.Space, key), KeyHash(key), nil)
}

// Put stores value under key at its owner.
func (c *Client) Put(key string, value []byte) Result {
	if len(value) > MaxValueLen {
		return Result{Err: fmt.Errorf("node: client: value of %d bytes exceeds the %d-byte wire limit", len(value), MaxValueLen)}
	}
	return c.do(OpPut, KeyID(c.cfg.Space, key), KeyHash(key), value)
}

// do issues one request: send to the entry node, re-send at RTO
// intervals until acknowledged, then wait for the owner's response.
func (c *Client) do(op Op, dst overlay.ID, key uint64, value []byte) Result {
	if !c.cfg.Space.Contains(dst) {
		return Result{Err: fmt.Errorf("node: client: destination %d outside the %d-bit identifier space", dst, c.cfg.Space.Bits())}
	}
	h := fnv.New64a()
	h.Write([]byte(c.tr.Addr()))
	reqID := clientIDBit | (h.Sum64()&0x7fffffff)<<32 | (c.seq.Add(1) & 0xffffffff)
	ch := make(chan message, 4)
	c.mu.Lock()
	c.waiters[reqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, reqID)
		c.mu.Unlock()
	}()

	m := message{
		Kind:     msgReq,
		Op:       op,
		Budget:   uint16(c.cfg.MaxHops),
		ReqID:    reqID,
		Dst:      uint64(dst),
		Key:      key,
		Deadline: uint32(c.cfg.Deadline / time.Millisecond),
		Origin:   c.tr.Addr(),
		Value:    value,
	}
	pkt, err := appendWire(nil, &m)
	if err != nil {
		return Result{Err: err}
	}
	if err := c.tr.Send(c.cfg.Target, pkt); err != nil {
		return Result{Err: err}
	}

	guard := time.NewTimer(c.cfg.Deadline + 2*c.cfg.RTO)
	defer guard.Stop()
	rto := time.NewTimer(c.cfg.RTO)
	defer rto.Stop()
	acked, sends := false, 1
	for {
		select {
		case rm := <-ch:
			switch rm.Kind {
			case msgAck:
				acked = true
			case msgResp:
				return Result{Status: rm.Status, Hops: int(rm.Hops), Value: rm.Value}
			}
		case <-rto.C:
			if !acked {
				if sends > c.cfg.Retransmits {
					return Result{Status: StatusExpired, Err: fmt.Errorf("node: client: entry node %s unresponsive after %d sends", c.cfg.Target, sends)}
				}
				sends++
				c.tr.Send(c.cfg.Target, pkt)
			}
			rto.Reset(c.cfg.RTO)
		case <-guard.C:
			return Result{Status: StatusExpired, Err: fmt.Errorf("node: client: request %#x: no response within the %v deadline", reqID, c.cfg.Deadline)}
		case <-c.done:
			return Result{Err: fmt.Errorf("node: client: closed")}
		}
	}
}
