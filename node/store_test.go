package node

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// storeContract is the shared conformance suite every Store implementation
// must pass; both built-ins run it, and it is the template a registered
// third-party store should run too.
func storeContract(t *testing.T, name string, mk func() Store) {
	t.Run(name+"/missing key", func(t *testing.T) {
		s := mk()
		if v, ok := s.Get(7); ok || v != nil {
			t.Errorf("Get on empty store = %q, %v", v, ok)
		}
		if s.Len() != 0 {
			t.Errorf("Len of empty store = %d", s.Len())
		}
	})

	t.Run(name+"/put get", func(t *testing.T) {
		s := mk()
		s.Put(1, []byte("one"))
		s.Put(2, []byte("two"))
		if v, ok := s.Get(1); !ok || string(v) != "one" {
			t.Errorf("Get(1) = %q, %v", v, ok)
		}
		if v, ok := s.Get(2); !ok || string(v) != "two" {
			t.Errorf("Get(2) = %q, %v", v, ok)
		}
		if s.Len() != 2 {
			t.Errorf("Len = %d, want 2", s.Len())
		}
	})

	t.Run(name+"/overwrite", func(t *testing.T) {
		s := mk()
		s.Put(1, []byte("old"))
		s.Put(1, []byte("new"))
		if v, ok := s.Get(1); !ok || string(v) != "new" {
			t.Errorf("Get after overwrite = %q, %v", v, ok)
		}
		if s.Len() != 1 {
			t.Errorf("Len after overwrite = %d, want 1", s.Len())
		}
	})

	t.Run(name+"/empty value", func(t *testing.T) {
		s := mk()
		s.Put(3, nil)
		if _, ok := s.Get(3); !ok {
			t.Error("nil value not stored")
		}
	})

	t.Run(name+"/concurrent", func(t *testing.T) {
		s := mk()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := uint64(i % 16)
					s.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
					s.Get(k)
					s.Len()
				}
			}(w)
		}
		wg.Wait()
		// Every surviving key must hold some complete written value.
		for k := uint64(0); k < 16; k++ {
			if v, ok := s.Get(k); ok && !strings.HasPrefix(string(v), "w") {
				t.Errorf("key %d holds torn value %q", k, v)
			}
		}
	})
}

func TestStoreContractMem(t *testing.T) {
	storeContract(t, "mem", func() Store { return NewMemStore() })
}

func TestStoreContractLRU(t *testing.T) {
	storeContract(t, "lru", func() Store {
		s, err := NewLRUStore(64) // roomy enough that the contract never evicts
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestLRUEviction pins the recency semantics: the least-recently-used key
// goes first, and both Get and Put refresh recency.
func TestLRUEviction(t *testing.T) {
	s, err := NewLRUStore(3)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(1, []byte("a"))
	s.Put(2, []byte("b"))
	s.Put(3, []byte("c"))
	s.Get(1)              // refresh 1: order now 1,3,2 (most→least recent)
	s.Put(4, []byte("d")) // evicts 2
	if _, ok := s.Get(2); ok {
		t.Error("key 2 survived eviction")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("key %d evicted, want present", k)
		}
	}
	s.Put(3, []byte("c2")) // overwrite refreshes 3: order 3,4,1
	s.Put(5, []byte("e"))  // evicts 1
	if _, ok := s.Get(1); ok {
		t.Error("key 1 survived eviction after 3 was refreshed")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if _, err := NewLRUStore(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

// TestParseStore: the -store flag spelling flows through the shared spec
// grammar.
func TestParseStore(t *testing.T) {
	if s, err := ParseStore(""); err != nil {
		t.Errorf("empty spec: %v", err)
	} else if _, ok := s.(*MemStore); !ok {
		t.Errorf("empty spec = %T, want *MemStore", s)
	}
	if s, err := ParseStore("MAP"); err != nil {
		t.Errorf("alias: %v", err)
	} else if _, ok := s.(*MemStore); !ok {
		t.Errorf("MAP = %T, want *MemStore", s)
	}
	s, err := ParseStore("lru:1024")
	if err != nil {
		t.Fatalf("lru:1024: %v", err)
	}
	lru, ok := s.(*LRUStore)
	if !ok || lru.Cap() != 1024 {
		t.Errorf("lru:1024 = %T cap %d", s, lru.Cap())
	}
	// Fresh store per parse: specs are configurations, not handles.
	s2, _ := ParseStore("lru:1024")
	if s == s2 {
		t.Error("ParseStore returned a shared store instance")
	}
	for spec, wantSub := range map[string]string{
		"warp":  "unknown store",
		"lru":   "requires a capacity",
		"lru:x": "lru capacity",
		"lru:0": "must be >= 1",
		"mem:3": "takes no argument",
		":1024": "argument but no store name",
	} {
		if _, err := ParseStore(spec); err == nil {
			t.Errorf("ParseStore(%q) accepted", spec)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("ParseStore(%q) error %q does not mention %q", spec, err, wantSub)
		}
	}
}
