package node

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"rcm"
	"rcm/overlay"
	"rcm/replica"
)

// bootReplicated is bootCluster with a replication factor: one node per
// identifier of a bits-wide overlay on in-memory datagrams, every node
// operating with the same Replicas.
func bootReplicated(t *testing.T, protocol string, bits, replicas int) []*Node {
	t.Helper()
	proto, err := rcm.NewProtocol(protocol, rcm.Config{Bits: bits, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := int(proto.Space().Size())
	addrs := make([]string, n)
	transports := make([]Transport, n)
	mem := NewMemNetwork()
	for i := range transports {
		transports[i] = mem.Endpoint()
		addrs[i] = transports[i].Addr()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := New(Config{
			Protocol:  proto,
			ID:        overlay.ID(i),
			Transport: transports[i],
			AddrOf:    func(id overlay.ID) string { return addrs[id] },
			RTO:       20 * time.Millisecond,
			Deadline:  2 * time.Second,
			Replicas:  replicas,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
	}
	t.Cleanup(func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *Node) { defer wg.Done(); nd.Close() }(nd)
		}
		wg.Wait()
	})
	return nodes
}

// TestReplicatedPutStoresAllOwners: a replicated Put lands the value in
// the store of every owner in the key's replica set, and a Get through a
// different node reads it back.
func TestReplicatedPutStoresAllOwners(t *testing.T) {
	const k = 3
	nodes := bootReplicated(t, "chord", 5, k)
	space := nodes[0].cfg.Protocol.Space()

	key, value := "alpha", []byte("v1")
	if r := nodes[3].Put(key, value); !r.OK() {
		t.Fatalf("replicated put: %+v", r)
	}
	owners, err := replica.For(nodes[0].cfg.Protocol, space, nil, KeyID(space, key), k)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != k {
		t.Fatalf("replica set has %d owners, want %d", len(owners), k)
	}
	for _, o := range owners {
		v, ok := nodes[o].Store().Get(KeyHash(key))
		if !ok || !bytes.Equal(v, value) {
			t.Errorf("owner %d: stored value %q present=%v, want %q", o, v, ok, value)
		}
	}
	if r := nodes[17].Get(key); !r.OK() || !bytes.Equal(r.Value, value) {
		t.Errorf("replicated get: %+v", r)
	}
}

// TestReplicatedGetFailsOver: with the key's root owner dead, a
// replicated Get still reads the value from a surviving owner; with the
// whole replica set dead, it fails like any unreachable key.
func TestReplicatedGetFailsOver(t *testing.T) {
	const k = 3
	nodes := bootReplicated(t, "chord", 5, k)
	space := nodes[0].cfg.Protocol.Space()

	key, value := "beta", []byte("v2")
	if r := nodes[9].Put(key, value); !r.OK() {
		t.Fatalf("replicated put: %+v", r)
	}
	owners, err := replica.For(nodes[0].cfg.Protocol, space, nil, KeyID(space, key), k)
	if err != nil {
		t.Fatal(err)
	}
	src := nodes[(int(owners[0])+7)%len(nodes)]

	nodes[owners[0]].Kill()
	if r := src.Get(key); !r.OK() || !bytes.Equal(r.Value, value) {
		t.Errorf("get with dead root owner: %+v", r)
	}
	nodes[owners[1]].Kill()
	if r := src.Get(key); !r.OK() || !bytes.Equal(r.Value, value) {
		t.Errorf("get with two dead owners: %+v", r)
	}
	nodes[owners[2]].Kill()
	if r := src.Get(key); r.OK() {
		t.Error("get succeeded with the whole replica set dead")
	}
}

// TestReplicatedGetTreatsNotFoundAsFailover: NotFound at an earlier owner
// does not end a replicated read — a value seeded only at a later owner
// (as churn-driven re-replication would leave it) is still found.
func TestReplicatedGetTreatsNotFoundAsFailover(t *testing.T) {
	const k = 3
	nodes := bootReplicated(t, "chord", 5, k)
	space := nodes[0].cfg.Protocol.Space()

	key, value := "gamma", []byte("v3")
	owners, err := replica.For(nodes[0].cfg.Protocol, space, nil, KeyID(space, key), k)
	if err != nil {
		t.Fatal(err)
	}
	nodes[owners[2]].Store().Put(KeyHash(key), value)
	if r := nodes[1].Get(key); !r.OK() || !bytes.Equal(r.Value, value) {
		t.Errorf("get of value held only by the last owner: %+v", r)
	}
}

// TestReplicasConfigValidation: a replication factor outside
// [0, replica.MaxReplicas] is rejected at construction.
func TestReplicasConfigValidation(t *testing.T) {
	proto, err := rcm.NewProtocol("chord", rcm.Config{Bits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemNetwork()
	tr := mem.Endpoint()
	defer tr.Close()
	_, err = New(Config{
		Protocol:  proto,
		ID:        0,
		Transport: tr,
		AddrOf:    func(overlay.ID) string { return "" },
		Replicas:  replica.MaxReplicas + 1,
	})
	if err == nil {
		t.Error("Replicas above the cap accepted")
	}
}
