package node

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"rcm"
	"rcm/overlay"
	"rcm/replica"
)

// Config configures one live node.
type Config struct {
	// Protocol is the overlay the node routes on; it must implement the
	// rcm.Forwarder capability. Many nodes share one Protocol value: the
	// built-in overlays' routing tables are read-only under forwarding, and
	// maintenance (when used) confines writes to the maintained node's own
	// rows per the Maintainer contract.
	Protocol rcm.Protocol
	// ID is this node's identifier in the overlay's space.
	ID overlay.ID
	// Transport is the datagram substrate (ListenUDP or MemNetwork
	// endpoints).
	Transport Transport
	// AddrOf resolves an overlay identifier to a transport address — the
	// cluster directory (a peers file for rcmd daemons, the harness's
	// table for in-process clusters).
	AddrOf func(overlay.ID) string
	// Store is the key-value backend (default: NewMemStore()).
	Store Store
	// RTO is how long a forwarding node waits for a hop acknowledgement
	// before retransmitting; it must exceed the worst-case round trip
	// (default 50 ms).
	RTO time.Duration
	// Retransmits is how many times a timed-out attempt re-sends to the
	// same candidate before failing over to the next one (0 selects the
	// default 2, mirroring eventsim; negative disables retransmission).
	Retransmits int
	// MaxHops bounds route length (default 4·bits + 16, the eventsim
	// default).
	MaxHops int
	// Deadline is the per-request time-to-live carried in every message
	// and decremented by each holder's holding time (default 5 s).
	Deadline time.Duration
	// Replicas is the key replication factor k: Put writes every owner in
	// the key's replica set (placement per rcm/replica — the protocol's
	// Replicator opt-in, or successor placement) and Get fails over across
	// the set in placement order, treating NotFound like a routing failure
	// until the last owner has answered. 0 and 1 both mean single-owner
	// operation; every node of a cluster must agree on the value.
	Replicas int
	// AdaptiveRTO replaces the fixed retransmission timeout with a
	// per-peer Jacobson/Karn estimator (RFC 6298 gains, samples from
	// un-retransmitted attempts only — Karn's rule) with exponential
	// backoff, floored at max(1ms, RTO/8) and capped at 8×RTO. The same
	// estimator eventsim runs with Config.AdaptiveRTO, except the live
	// floor may undercut the fixed RTO: a consistently fast peer is
	// declared lost sooner, which is the point. Off by default.
	AdaptiveRTO bool
	// MaxInFlight bounds the forward-attempt table: once this many
	// relayed requests await hop acknowledgements, further requests for
	// other owners are shed — dropped without an acknowledgement, so the
	// upstream sender's RTO machinery routes around this node exactly as
	// it would a lost request. Shedding is deterministic (a pure function
	// of table occupancy), never applies to requests this node owns, and
	// is counted in Metrics.Shed. 0 selects the default 4096; negative
	// disables the bound.
	MaxInFlight int
}

func (cfg Config) withDefaults() Config {
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	switch {
	case cfg.Retransmits == 0:
		cfg.Retransmits = 2
	case cfg.Retransmits < 0:
		cfg.Retransmits = 0
	}
	if cfg.MaxHops <= 0 && cfg.Protocol != nil {
		cfg.MaxHops = 4*cfg.Protocol.Space().Bits() + 16
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 5 * time.Second
	}
	switch {
	case cfg.MaxInFlight == 0:
		cfg.MaxInFlight = 4096
	case cfg.MaxInFlight < 0:
		cfg.MaxInFlight = int(^uint(0) >> 1) // unbounded
	}
	return cfg
}

// Result is the outcome of one request issued through a node.
type Result struct {
	// Status is the wire-level verdict.
	Status Status
	// Hops is the number of request deliveries the route took (0 when the
	// issuing node owns the destination).
	Hops int
	// Value is the fetched value (get only).
	Value []byte
	// Err is the local failure, if the request never produced a verdict
	// (node killed, response deadline lapsed).
	Err error
}

// OK reports whether the request reached its owner successfully.
func (r Result) OK() bool { return r.Err == nil && r.Status == StatusOK }

// pendingFwd is one in-flight forward attempt awaiting its hop
// acknowledgement — the live counterpart of eventsim's pending arena slot.
type pendingFwd struct {
	msg      message      // the request as this holder forwards it
	cands    []overlay.ID // candidate next hops, best first, enumerated once
	ci       int          // current candidate index
	try      int          // retransmissions consumed for this candidate
	attempt  uint64       // guards against stale timer firings
	timer    *time.Timer
	deadline time.Time // absolute per-message deadline at this holder
	sentAt   time.Time // this attempt's send time — the RTT sample reference
}

// originWait is one locally-originated request awaiting its verdict:
// the caller's channel plus what the origin needs to attribute the
// outcome (operation, issue time) when the response arrives.
type originWait struct {
	ch    chan Result
	op    Op
	start time.Time
}

// Node is one live DHT node: an event-loop goroutine owning all routing
// state, a receive goroutine feeding it decoded packets, and timer
// callbacks feeding it retransmission timeouts. The public methods are
// safe for concurrent use.
type Node struct {
	cfg   Config
	fwd   rcm.Forwarder
	space overlay.Space
	tr    Transport
	store Store

	cmds     chan func()
	done     chan struct{}
	loopExit chan struct{} // closed when the event loop returns
	wg       sync.WaitGroup
	once     sync.Once

	reqSeq  atomic.Uint64
	downNow atomic.Bool // read by fast paths; written only by the loop

	// Loop-owned state (no locking: only the event loop touches it).
	// The rcm:loop-owned markers are enforced by rcmlint's loopowner
	// analyzer: any read or write outside code reachable from the
	// rcm:event-loop dispatch is a lint error, not a latent race.
	pending    map[uint64]*pendingFwd   // rcm:loop-owned
	origins    map[uint64]originWait    // rcm:loop-owned
	attemptSeq uint64                   // rcm:loop-owned
	seen       map[uint64]struct{}      // rcm:loop-owned — recently handled request ids (dedupe)
	seenFIFO   []uint64                 // rcm:loop-owned
	encBuf     []byte                   // rcm:loop-owned
	candBuf    []overlay.ID             // rcm:loop-owned
	rtt        map[overlay.ID]*rttState // rcm:loop-owned — per-peer adaptive-RTO estimator (see rto.go)
	stats      stats                    // rcm:loop-owned — instrumentation (see metrics.go)
}

const seenCap = 4096

// New validates the configuration and creates the node (stopped; call
// Start).
func New(cfg Config) (*Node, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("node: nil Protocol")
	}
	fwd, ok := cfg.Protocol.(rcm.Forwarder)
	if !ok {
		return nil, fmt.Errorf("node: protocol %q does not implement the Forwarder capability required for live routing", cfg.Protocol.Name())
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: nil Transport")
	}
	if cfg.AddrOf == nil {
		return nil, fmt.Errorf("node: nil AddrOf directory")
	}
	space := cfg.Protocol.Space()
	if !space.Contains(cfg.ID) {
		return nil, fmt.Errorf("node: id %d outside the %d-bit identifier space", cfg.ID, space.Bits())
	}
	if err := replica.ValidateK(cfg.Replicas); err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		fwd:      fwd,
		space:    space,
		tr:       cfg.Transport,
		store:    cfg.Store,
		cmds:     make(chan func(), 256),
		done:     make(chan struct{}),
		loopExit: make(chan struct{}),
		pending:  make(map[uint64]*pendingFwd),
		origins:  make(map[uint64]originWait),
		seen:     make(map[uint64]struct{}),
		rtt:      make(map[overlay.ID]*rttState),
	}
	return n, nil
}

// ID returns the node's overlay identifier.
func (n *Node) ID() overlay.ID { return n.cfg.ID }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.tr.Addr() }

// Store returns the node's key-value backend.
func (n *Node) Store() Store { return n.store }

// Start launches the event loop and the receive pump.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.loop()
	go n.recvPump()
}

// Close stops the node permanently, failing callers blocked on requests.
func (n *Node) Close() {
	n.once.Do(func() {
		close(n.done)
		n.tr.Close()
	})
	n.wg.Wait()
}

// Kill simulates a crash: the node stops accepting, forwarding and
// responding, in-flight state is dropped, and local callers get an error.
// The transport stays open (packets arrive and are ignored), matching a
// live process whose DHT layer died. Kill blocks until the loop has
// applied it.
func (n *Node) Kill() { n.control(true) }

// Restart brings a killed node back (with its store intact).
func (n *Node) Restart() { n.control(false) }

// Down reports whether the node is currently killed.
func (n *Node) Down() bool { return n.downNow.Load() }

func (n *Node) control(down bool) {
	select {
	case <-n.done:
		// Kill/Restart after Close is a rejected no-op. Without this
		// deterministic check the select below is a coin flip once done is
		// closed (the buffered cmds send can still win), and the posted
		// closure would either re-arm a draining loop's downNow or — if the
		// loop has already exited — never run, hanging the ack wait.
		return
	default:
	}
	ack := make(chan struct{})
	select {
	case n.cmds <- func() {
		if down && !n.downNow.Load() {
			// Crash semantics: every in-flight responsibility dies with
			// the node.
			for _, st := range n.pending {
				st.timer.Stop()
			}
			n.pending = make(map[uint64]*pendingFwd)
			for id, w := range n.origins {
				delete(n.origins, id)
				w.ch <- Result{Err: fmt.Errorf("node %d: killed", n.cfg.ID)}
			}
		}
		n.downNow.Store(down)
		close(ack)
	}:
		select {
		case <-ack:
		case <-n.loopExit:
			// Close raced us between the check above and the send: the
			// closure may sit in cmds forever after the drain, so waiting
			// only on ack could hang. The node is closed either way.
		}
	case <-n.done:
	}
}

// loop is the event loop: every piece of routing state is owned by this
// goroutine, so handlers never lock. rcm:event-loop (the loopowner
// dispatch root: code reachable from here may touch rcm:loop-owned
// fields).
func (n *Node) loop() {
	defer n.wg.Done()
	defer close(n.loopExit)
	for {
		select {
		case f := <-n.cmds:
			f()
		case <-n.done:
			// Drain to release any control/op callers racing with Close,
			// then fail every still-waiting originator: timers posting
			// after done cannot reach the loop, so nobody else will.
			for {
				select {
				case f := <-n.cmds:
					f()
				default:
					for id, w := range n.origins {
						delete(n.origins, id)
						w.ch <- Result{Err: fmt.Errorf("node %d: closed", n.cfg.ID)}
					}
					for _, st := range n.pending {
						st.timer.Stop()
					}
					return
				}
			}
		}
	}
}

// recvPump decodes packets and posts them to the loop.
func (n *Node) recvPump() {
	defer n.wg.Done()
	for {
		pkt, from, err := n.tr.Recv()
		if err != nil {
			return
		}
		m, err := decodeWire(pkt)
		if err != nil {
			continue // malformed datagram: drop, like any UDP service
		}
		select {
		case n.cmds <- func() { n.handle(m, from) }:
		case <-n.done:
			return
		}
	}
}

// post schedules f on the loop, reporting false if the node is closed.
// rcm:loop-post (loopowner: function literals passed here run on the
// event-loop goroutine).
func (n *Node) post(f func()) bool {
	select {
	case n.cmds <- f:
		return true
	case <-n.done:
		return false
	}
}

// ---- Public operations -------------------------------------------------

// KeyHash maps a string key to its full 64-bit FNV-1a digest — the
// store key. Stores index by the full digest, not the folded
// identifier, so distinct keys owned by the same node stay distinct
// even in tiny identifier spaces.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// KeyID maps a string key to its owner's identifier — KeyHash folded
// into the space, so every node (and client) agrees on ownership.
func KeyID(space overlay.Space, key string) overlay.ID {
	return overlay.ID(KeyHash(key) & (space.Size() - 1))
}

// Lookup routes to the owner of dst and reports the hop count.
func (n *Node) Lookup(dst overlay.ID) Result {
	return n.issue(OpLookup, dst, 0, nil)
}

// Get fetches the value stored under key. With replication it tries the
// key's owners in placement order, failing over on routing failures and
// NotFound alike, and returns the first successful read; Hops accumulates
// across attempts (the route cost actually paid), matching eventsim's
// replicated-lookup hop accounting.
func (n *Node) Get(key string) Result {
	owners, err := n.owners(KeyID(n.space, key))
	if err != nil {
		return Result{Err: err}
	}
	hash := KeyHash(key)
	prior := 0
	var last Result
	for _, o := range owners {
		r := n.issue(OpGet, o, hash, nil)
		r.Hops += prior
		if r.OK() {
			return r
		}
		prior = r.Hops
		last = r
	}
	return last
}

// Put stores value under key. With replication it writes every owner in
// the key's replica set, best-effort: the result is OK if any replica
// stored the value (the first success's verdict), and Hops totals the
// route cost of all attempts.
func (n *Node) Put(key string, value []byte) Result {
	if len(value) > MaxValueLen {
		return Result{Err: fmt.Errorf("node: value of %d bytes exceeds the %d-byte wire limit", len(value), MaxValueLen)}
	}
	owners, err := n.owners(KeyID(n.space, key))
	if err != nil {
		return Result{Err: err}
	}
	hash := KeyHash(key)
	var out Result
	stored, total := false, 0
	for _, o := range owners {
		r := n.issue(OpPut, o, hash, value)
		total += r.Hops
		if r.OK() && !stored {
			out, stored = r, true
		} else if !stored {
			out = r
		}
	}
	out.Hops = total
	return out
}

// owners returns the replica set of root in placement order — just root
// when replication is off. The slice is freshly allocated: public
// operations run on caller goroutines and must not share loop-owned
// buffers.
func (n *Node) owners(root overlay.ID) ([]overlay.ID, error) {
	if n.cfg.Replicas <= 1 {
		return []overlay.ID{root}, nil
	}
	set, err := replica.For(n.cfg.Protocol, n.space, nil, root, n.cfg.Replicas)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	return set, nil
}

// issue originates a request at this node and blocks for its verdict.
func (n *Node) issue(op Op, dst overlay.ID, key uint64, value []byte) Result {
	if n.downNow.Load() {
		return Result{Err: fmt.Errorf("node %d: down", n.cfg.ID)}
	}
	reqID := uint64(n.cfg.ID)<<32 | (n.reqSeq.Add(1) & 0xffffffff)
	ch := make(chan Result, 1)
	m := message{
		Kind:     msgReq,
		Op:       op,
		Hops:     0,
		Budget:   uint16(n.cfg.MaxHops),
		ReqID:    reqID,
		Dst:      uint64(dst),
		Key:      key,
		Deadline: uint32(n.cfg.Deadline / time.Millisecond),
		Origin:   n.tr.Addr(),
		Value:    value,
	}
	ok := n.post(func() {
		if n.downNow.Load() {
			ch <- Result{Err: fmt.Errorf("node %d: down", n.cfg.ID)}
			return
		}
		n.origins[reqID] = originWait{ch: ch, op: op, start: time.Now()}
		// Local response deadline: if every downstream holder dies or the
		// response datagram is lost, the origin still concludes.
		guard := n.cfg.Deadline + 2*n.cfg.RTO
		time.AfterFunc(guard, func() {
			n.post(func() {
				if w, live := n.origins[reqID]; live {
					delete(n.origins, reqID)
					n.stats.expired++
					w.ch <- Result{Status: StatusExpired, Err: fmt.Errorf("node %d: request %#x: no response within %v", n.cfg.ID, reqID, guard)}
				}
			})
		})
		n.hold(m, time.Now())
	})
	if !ok {
		return Result{Err: fmt.Errorf("node %d: closed", n.cfg.ID)}
	}
	select {
	case r := <-ch:
		return r
	case <-n.loopExit:
		// The post slipped into cmds after Close's drain emptied it: the
		// closure never runs and no verdict is coming. Prefer a verdict
		// that did land (the drain fails registered origins before the
		// loop exits, racing this select).
		select {
		case r := <-ch:
			return r
		default:
			return Result{Err: fmt.Errorf("node %d: closed", n.cfg.ID)}
		}
	}
}

// ---- Event handlers (loop goroutine only) ------------------------------

// handle dispatches one decoded packet.
func (n *Node) handle(m message, from string) {
	if n.downNow.Load() {
		return // a dead node neither acknowledges nor routes
	}
	n.stats.countIn(m.Kind)
	switch m.Kind {
	case msgReq:
		n.handleReq(m, from)
	case msgAck:
		n.handleAck(m)
	case msgResp:
		n.handleResp(m)
	}
}

// handleReq mirrors eventsim's handleReq: acknowledge so the sender
// retires its attempt — ownership of the request transfers here with the
// message — then apply or keep forwarding. Duplicates are acknowledged
// and dropped; a fresh request that would overflow the forward table is
// shed *without* an acknowledgement, so the sender's RTO machinery
// routes around the overload exactly as it would a lost request.
func (n *Node) handleReq(m message, from string) {
	if _, dup := n.seen[m.ReqID]; dup {
		n.sendMsg(from, &message{Kind: msgAck, ReqID: m.ReqID})
		n.stats.dupReqs++
		return // duplicate delivery (our ACK was lost); already handled
	}
	if _, fwding := n.pending[m.ReqID]; fwding {
		n.sendMsg(from, &message{Kind: msgAck, ReqID: m.ReqID})
		n.stats.dupReqs++
		return // retransmission of an attempt we accepted moments ago
	}
	if overlay.ID(m.Dst) != n.cfg.ID && len(n.pending) >= n.cfg.MaxInFlight {
		// Graceful degradation: the forward table is full, so refuse
		// responsibility for relayed work (requests we own are always
		// served — they never enter the table). Deterministic, silent,
		// counted.
		n.stats.shed++
		return
	}
	n.sendMsg(from, &message{Kind: msgAck, ReqID: m.ReqID})
	n.markSeen(m.ReqID)
	m.Hops++
	n.hold(m, time.Now())
}

// hold is the holder state machine shared by origination and receipt:
// complete the request at its owner, or pick the first candidate and
// dispatch.
func (n *Node) hold(m message, arrived time.Time) {
	if overlay.ID(m.Dst) == n.cfg.ID {
		n.applyOwner(m)
		return
	}
	if m.Budget == 0 {
		n.respond(m, StatusHopBudget, nil)
		return
	}
	n.candBuf = n.fwd.AppendCandidateHops(n.candBuf[:0], n.cfg.ID, overlay.ID(m.Dst))
	if len(n.candBuf) == 0 {
		n.respond(m, StatusNoRoute, nil)
		return
	}
	st := &pendingFwd{
		msg:      m,
		cands:    append([]overlay.ID(nil), n.candBuf...),
		deadline: arrived.Add(time.Duration(m.Deadline) * time.Millisecond),
	}
	n.pending[m.ReqID] = st
	n.dispatch(st)
}

// dispatch sends the request to the current candidate and arms the RTO —
// the live counterpart of eventsim's dispatch.
func (n *Node) dispatch(st *pendingFwd) {
	remaining := time.Until(st.deadline)
	if remaining <= 0 {
		delete(n.pending, st.msg.ReqID)
		n.respond(st.msg, StatusExpired, nil)
		return
	}
	n.attemptSeq++
	st.attempt = n.attemptSeq
	out := st.msg
	out.Budget--
	out.Deadline = uint32(remaining / time.Millisecond)
	st.sentAt = time.Now()
	n.sendMsg(n.cfg.AddrOf(st.cands[st.ci]), &out)
	attempt := st.attempt
	reqID := st.msg.ReqID
	rto := n.cfg.RTO
	if n.cfg.AdaptiveRTO {
		rto = n.rtoFor(st.cands[st.ci], st.try)
	}
	st.timer = time.AfterFunc(rto, func() {
		n.post(func() { n.handleTimeout(reqID, attempt) })
	})
}

// handleAck retires the acknowledged attempt: the downstream hop has
// accepted responsibility.
func (n *Node) handleAck(m message) {
	st, ok := n.pending[m.ReqID]
	if !ok {
		return
	}
	st.timer.Stop()
	if n.cfg.AdaptiveRTO && st.try == 0 {
		// Karn's rule: only un-retransmitted attempts yield RTT samples —
		// after a retransmission the ack is ambiguous about which copy it
		// answers.
		n.observeRTT(st.cands[st.ci], time.Since(st.sentAt))
	}
	delete(n.pending, m.ReqID)
}

// handleTimeout mirrors eventsim's handleTimeout: retransmit to the same
// candidate first (a lost request must not skip the best next hop), fail
// over to the next candidate once retransmissions are exhausted, and fail
// the request when no candidates remain.
func (n *Node) handleTimeout(reqID, attempt uint64) {
	st, ok := n.pending[reqID]
	if !ok || st.attempt != attempt {
		return // acknowledged or superseded in the meantime
	}
	n.stats.timeouts++
	if st.try < n.cfg.Retransmits {
		st.try++
		n.stats.retransmits++
		n.dispatch(st)
		return
	}
	st.ci++
	st.try = 0
	n.stats.failovers++
	if st.ci >= len(st.cands) {
		delete(n.pending, reqID)
		n.respond(st.msg, StatusNoRoute, nil)
		return
	}
	n.dispatch(st)
}

// applyOwner performs the operation at the key's owner and responds to
// the origin.
func (n *Node) applyOwner(m message) {
	switch m.Op {
	case OpGet:
		n.stats.storeGets++
		if v, ok := n.store.Get(m.Key); ok {
			n.stats.storeHits++
			n.respond(m, StatusOK, v)
		} else {
			n.respond(m, StatusNotFound, nil)
		}
	case OpPut:
		n.stats.storePuts++
		n.store.Put(m.Key, m.Value)
		n.respond(m, StatusOK, nil)
	default:
		n.respond(m, StatusOK, nil)
	}
}

// respond sends the final verdict straight to the origin (or delivers
// locally when this node originated the request).
func (n *Node) respond(req message, status Status, value []byte) {
	resp := message{
		Kind:   msgResp,
		Op:     req.Op,
		Status: status,
		Hops:   req.Hops,
		ReqID:  req.ReqID,
		Value:  value,
	}
	if req.Origin == n.tr.Addr() {
		n.handleResp(resp)
		return
	}
	n.sendMsg(req.Origin, &resp)
}

// handleResp delivers a verdict to the waiting originator, deduplicating
// by request id.
func (n *Node) handleResp(m message) {
	w, ok := n.origins[m.ReqID]
	if !ok {
		return // duplicate or late response
	}
	delete(n.origins, m.ReqID)
	n.stats.recordVerdict(w.op, m.Status, int(m.Hops), time.Since(w.start))
	w.ch <- Result{Status: m.Status, Hops: int(m.Hops), Value: m.Value}
}

// sendMsg encodes and transmits one message, best-effort.
func (n *Node) sendMsg(addr string, m *message) {
	if addr == "" {
		return
	}
	buf, err := appendWire(n.encBuf[:0], m)
	if err != nil {
		return // oversized value: callers validate, so only corrupt state lands here
	}
	n.encBuf = buf[:0]
	n.stats.countOut(m.Kind)
	n.tr.Send(addr, buf)
}

// markSeen records a handled request id in the bounded dedupe window.
func (n *Node) markSeen(reqID uint64) {
	if len(n.seenFIFO) >= seenCap {
		old := n.seenFIFO[0]
		n.seenFIFO = n.seenFIFO[1:]
		delete(n.seen, old)
	}
	n.seen[reqID] = struct{}{}
	n.seenFIFO = append(n.seenFIFO, reqID)
}
