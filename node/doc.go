// Package node runs registered DHT protocols as live networked nodes —
// the framework's fifth and highest-fidelity layer. Where eventsim
// simulates hop-by-hop forwarding with virtual timers, a Node does the
// same thing with real packets and real clocks: the identical
// ACK-transfers-ownership, RTO-retransmit, candidate-failover
// discipline, driven by the same Forwarder candidate enumeration, over
// an actual datagram transport.
//
// # Anatomy of a node
//
// A Node is three goroutines around loop-owned state: an event loop
// that owns every piece of routing state (so handlers never lock), a
// receive pump decoding datagrams into loop events, and timer callbacks
// posting retransmission timeouts. Requests travel in a compact binary
// wire format (versioned header; request/ack/response kinds; hop
// budgets and millisecond deadlines carried in every message), and the
// get/put key-value API stores values at each key's owner through a
// pluggable Store (in-memory map, bounded LRU, or anything registered
// with RegisterStore).
//
// # Launching a cluster
//
// The quickest way to a running overlay is the in-process harness:
//
//	c, err := cluster.New(cluster.Config{Protocol: "chord", Bits: 6, Seed: 1})
//	if err != nil { ... }
//	defer c.Close()
//
// which boots one node per identifier (64 here) over in-memory
// datagrams — or real UDP loopback sockets with Transport: "udp". For
// multi-process deployments, cmd/rcmd launches one daemon per process
// from a shared peers file; every daemon must share the protocol, bits
// and seed, because those three determine the routing tables.
//
// # Put, get, and watching failover
//
// Any node serves as an entry point; values land at the key's owner:
//
//	if res := c.Node(3).Put("color", []byte("green")); !res.OK() { ... }
//	res := c.Node(40).Get("color") // routes to the owner, hop by hop
//
// Kill a node on the route and the path heals itself: the upstream
// holder's RTO expires, retransmission is exhausted, and the request
// fails over to the next candidate the Forwarder enumerated — exactly
// eventsim's timeout semantics, now observable with tcpdump:
//
//	c.Kill(17)                     // crash: drops all in-flight state
//	res = c.Node(40).Get("color")  // still OK, one failover later
//	c.Restart(17)                  // back, store intact
//
// Out-of-band tools use Client, which injects requests at any entry
// node and receives the owner's response directly (Dial, then
// Get/Put/Lookup) — that is what `rcmd -op get` does.
//
// # Conformance with eventsim
//
// The point of the layer is cross-validation: eventsim.BuildSchedule
// reifies a scenario's exact lifecycle toggles and lookup workload as
// data, cluster.Replay executes that schedule against live nodes, and
// the conformance suite in node/cluster compares windowed success rate
// and mean hops between the two executors. With the overlay seed
// pinned, both walk the same candidate lists over the same tables
// against the same failed set, so they agree exactly — making eventsim
// a calibrated model of a deployable system rather than a fourth
// abstraction layer, and the live stack a tested implementation of the
// simulator's semantics.
package node
