package node

import (
	"strings"
	"testing"
	"time"

	"rcm"
	"rcm/overlay"
)

// soloNode builds and starts a single in-memory node — lifecycle tests
// need no peers.
func soloNode(t *testing.T) *Node {
	t.Helper()
	proto, err := rcm.NewProtocol("chord", rcm.Config{Bits: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemNetwork()
	tr := mem.Endpoint()
	nd, err := New(Config{
		Protocol:  proto,
		ID:        3,
		Transport: tr,
		AddrOf:    func(overlay.ID) string { return tr.Addr() },
		RTO:       10 * time.Millisecond,
		Deadline:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	return nd
}

// within fails the test if fn does not return inside d — the regression
// shape for the control-after-Close hang, where the posted closure could
// land in cmds after the drain and nobody would ever close the ack.
func within(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); fn() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not return within %v", what, d)
	}
}

// TestRestartAfterCloseRejected: Restart on a closed node must return
// promptly, must not re-arm the drained loop, and the node must keep
// rejecting requests. Before the fix the control select was a coin flip
// once done closed, so the call could hang or flip downNow on a dead
// loop; many iterations make the old coin flip land on both sides.
func TestRestartAfterCloseRejected(t *testing.T) {
	nd := soloNode(t)
	nd.Kill()
	if !nd.Down() {
		t.Fatal("Kill did not mark the node down")
	}
	nd.Close()
	for i := 0; i < 50; i++ {
		within(t, 5*time.Second, "Restart after Close", nd.Restart)
		if !nd.Down() {
			t.Fatalf("iteration %d: Restart after Close re-armed the node", i)
		}
	}
	// The node was down when it closed and Restart must not have revived
	// it, so requests keep failing fast on the down check.
	res := nd.Lookup(5)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "down") {
		t.Fatalf("lookup on killed+closed node: %+v, want down error", res)
	}
}

// TestKillAfterCloseRejected: the mirror ordering — Kill on a closed (and
// never-killed) node must be a prompt no-op that leaves Down() false
// rather than posting crash cleanup at a drained loop.
func TestKillAfterCloseRejected(t *testing.T) {
	nd := soloNode(t)
	nd.Close()
	for i := 0; i < 50; i++ {
		within(t, 5*time.Second, "Kill after Close", nd.Kill)
		if nd.Down() {
			t.Fatalf("iteration %d: Kill after Close mutated a closed node", i)
		}
	}
	res := nd.Lookup(5)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "closed") {
		t.Fatalf("lookup on closed node: %+v, want closed error", res)
	}
}

// TestKillRestartCycleThenClose: the healthy ordering still works — kill,
// restart, serve, close — and a second Close is idempotent.
func TestKillRestartCycleThenClose(t *testing.T) {
	nd := soloNode(t)
	for i := 0; i < 10; i++ {
		nd.Kill()
		if !nd.Down() {
			t.Fatalf("cycle %d: not down after Kill", i)
		}
		if res := nd.Lookup(3); res.Err == nil {
			t.Fatalf("cycle %d: lookup on killed node succeeded: %+v", i, res)
		}
		nd.Restart()
		if nd.Down() {
			t.Fatalf("cycle %d: still down after Restart", i)
		}
		if res := nd.Lookup(3); !res.OK() {
			t.Fatalf("cycle %d: self-lookup after Restart: %+v", i, res)
		}
	}
	within(t, 5*time.Second, "Close", nd.Close)
	within(t, 5*time.Second, "second Close", nd.Close)
}

// TestControlConcurrentWithClose hammers Kill/Restart from many
// goroutines racing one Close: whatever interleaving wins, every call
// must return. (Run with -race this also checks the control path touches
// no loop state off-loop.)
func TestControlConcurrentWithClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		nd := soloNode(t)
		start := make(chan struct{})
		done := make(chan struct{})
		for g := 0; g < 4; g++ {
			go func(g int) {
				<-start
				for i := 0; i < 10; i++ {
					if (g+i)%2 == 0 {
						nd.Kill()
					} else {
						nd.Restart()
					}
				}
				done <- struct{}{}
			}(g)
		}
		go func() {
			<-start
			nd.Close()
			done <- struct{}{}
		}()
		close(start)
		for i := 0; i < 5; i++ {
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: lifecycle call hung racing Close", round)
			}
		}
	}
}
