//go:build fuzz

package node

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzParseMessage throws arbitrary packets at the wire codec and holds
// it to two properties: decodeWire never panics, and any packet it
// accepts round-trips — the decoded message re-encodes without error
// and decodes back to the identical message. The seed corpus is the
// malformed-packet catalogue from TestWireRejects plus one valid packet
// per message kind, so mutation starts from both sides of every length
// and range check.
//
// The file is build-tagged so the target (and its corpus) stays out of
// ordinary `go test ./...` runs; CI smokes it with:
//
//	go test -tags fuzz -fuzz FuzzParseMessage -fuzztime 10s -run '^$' ./node
func FuzzParseMessage(f *testing.F) {
	// Valid packets, one per kind, covering empty and maximal fields.
	for _, m := range []message{
		{Kind: msgReq, Op: OpLookup, Hops: 3, Budget: 41, ReqID: 0xdeadbeefcafe, Dst: 77, Deadline: 4500, Origin: "127.0.0.1:40001"},
		{Kind: msgReq, Op: OpPut, Budget: 56, ReqID: 1, Dst: 5, Key: 5, Deadline: 1, Origin: "mem:0", Value: []byte("hello world")},
		{Kind: msgAck, ReqID: 42},
		{Kind: msgResp, Op: OpGet, Status: StatusOK, Hops: 7, ReqID: 9, Value: bytes.Repeat([]byte{0xab}, MaxValueLen)},
		{Kind: msgResp, Op: OpLookup, Status: StatusNoRoute, Hops: 2, ReqID: 9},
	} {
		pkt, err := appendWire(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt)
	}

	// The malformed catalogue: each seed sits just past one validation.
	good, err := appendWire(nil, &message{Kind: msgReq, Op: OpLookup, ReqID: 1, Origin: "a"})
	if err != nil {
		f.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		p := append([]byte(nil), good...)
		mutate(p)
		return p
	}
	f.Add([]byte{})
	f.Add(good[:10])
	f.Add(corrupt(func(p []byte) { p[0] = 0xff }))        // bad magic
	f.Add(corrupt(func(p []byte) { p[2] = 9 }))           // bad version
	f.Add(corrupt(func(p []byte) { p[3] = 77 }))          // bad kind
	f.Add(corrupt(func(p []byte) { p[headerLen] = 200 })) // short origin
	f.Add(make([]byte, maxPacket+1))                      // oversized packet
	f.Add(corrupt(func(p []byte) {                        // value length mismatch
		binary.BigEndian.PutUint16(p[len(p)-2:], 9)
	}))

	f.Fuzz(func(t *testing.T, pkt []byte) {
		m, err := decodeWire(pkt)
		if err != nil {
			return // rejection is fine; panicking or misparsing is not
		}
		if len(m.Origin) > 255 || len(m.Value) > MaxValueLen {
			t.Fatalf("decode accepted out-of-range fields: origin %d bytes, value %d bytes", len(m.Origin), len(m.Value))
		}
		enc, err := appendWire(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v\nmessage: %+v", err, m)
		}
		m2, err := decodeWire(enc)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v\nmessage: %+v", err, m)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip drift:\n first %+v\nsecond %+v", m, m2)
		}
	})
}
