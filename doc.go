// Package rcm implements the reachable component method (RCM) of Kong,
// Bridgewater and Roychowdhury, "A General Framework for Scalability and
// Performance Analysis of DHT Routing Systems" (DSN 2006, arXiv:cs/0603112):
// an analytical framework that predicts how well a DHT routing geometry
// keeps routing when every node fails independently with probability q, and
// whether that ability survives as the system grows without bound.
//
// The framework is open at both ends. Two public interfaces are the
// extension points:
//
//   - Geometry — the analytic side (§4.1): the routing-distance
//     distribution n(h) and the per-phase failure probability Q(m). Every
//     closed form (routability, per-route success, expected reach) and the
//     §5 Knopp-test scalability probe derive mechanically from these two
//     ingredients, for built-in and user geometries alike.
//
//   - Protocol — the simulation side: a concrete overlay with static
//     routing tables built on package rcm/overlay, routed greedily under
//     the static-resilience failure model.
//
// RegisterGeometry and RegisterProtocol add implementations to a shared
// name-keyed registry; the paper's five geometries (Tree, Hypercube, XOR,
// Ring, Symphony) are ordinary registrants of the same tables. Everything
// downstream — ModelFor, Simulate, Churn, the rcm/exp experiment runner,
// the rcm/eventsim event simulator, and the five CLIs (cmd/rcmcalc,
// cmd/dhtsim, cmd/churnsim, cmd/eventsim, cmd/figures) — resolves names
// through that registry, so a registered geometry flows end-to-end into
// analytics, simulation, churn, event simulation and figure generation.
// See examples/randchord for a complete walkthrough.
//
// The package exposes three evaluation layers:
//
//   - Analytic models (Tree, Hypercube, XOR, Ring, Symphony, ModelFor,
//     NewModel): closed-form routability r(N,q), per-route success p(h,q),
//     and the scalable/unscalable classification, evaluated stably up to
//     N = 2^100 and beyond.
//
//   - Protocol simulation (Simulate): concrete overlays under the
//     static-resilience failure model, reproducing the experimental side
//     of the paper's validation.
//
//   - Churn simulation (Churn): an event-driven extension measuring how
//     the static model's predictions transfer to dynamic node populations
//     with and without table repair.
//
// A fourth layer lives in rcm/eventsim: message-level discrete-event
// simulation, where registry protocols run real lookup dynamics —
// hop-by-hop forwarding, timeouts, retries, joins and stabilization —
// over pluggable transports, driven by a name-registered scenario
// library and cross-validated against the static layers. Protocols opt
// in through two optional capabilities (eventsim.Forwarder,
// eventsim.Maintainer); all five built-ins implement Forwarder.
//
// Grid-shaped studies — geometry × size × failure-probability × churn
// sweeps — belong to the public experiment runner in rcm/exp: declarative
// Plans, functional options, context cancellation, and results streamed
// row by row in constant memory. All overlay construction shares one
// canonical Config type across Simulate, Churn, dht construction and the
// runner.
//
// The full experiment harness that regenerates every figure and table of
// the paper lives in cmd/figures; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded results.
package rcm
