// Package rcm implements the reachable component method (RCM) of Kong,
// Bridgewater and Roychowdhury, "A General Framework for Scalability and
// Performance Analysis of DHT Routing Systems" (DSN 2006, arXiv:cs/0603112):
// an analytical framework that predicts how well a DHT routing geometry
// keeps routing when every node fails independently with probability q, and
// whether that ability survives as the system grows without bound.
//
// The package exposes three layers:
//
//   - Analytic models (Tree, Hypercube, XOR, Ring, Symphony): closed-form
//     routability r(N,q), per-route success p(h,q), and the paper's
//     scalable/unscalable classification, evaluated stably up to N = 2^100
//     and beyond.
//
//   - Protocol simulation (Simulate): concrete Plaxton, CAN, Kademlia,
//     Chord and Symphony overlays under the static-resilience failure
//     model, reproducing the experimental side of the paper's validation.
//
//   - Churn simulation (Churn): an event-driven extension measuring how the
//     static model's predictions transfer to dynamic node populations with
//     and without table repair.
//
// Underneath the facade, internal/exp is the unified experiment-runner
// subsystem: a declarative Plan describes a (geometry × d × q × churn)
// grid, and a sharded parallel Runner executes its cells across all CPUs,
// memoizing the analytic phase-product prefixes (internal/core.Evaluator)
// and emitting deterministically-ordered CSV/JSON rows. All four CLIs —
// cmd/rcmcalc, cmd/dhtsim, cmd/churnsim and cmd/figures — construct Plans
// and delegate their sweeps to that runner.
//
// The full experiment harness that regenerates every figure and table of
// the paper lives in cmd/figures; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded results.
package rcm
