// Package obs is the framework's shared observability layer: a
// deterministic, mergeable, allocation-free histogram plus lightweight
// counter/gauge registries. Every layer of the stack records into it —
// eventsim shards at epoch barriers, the live node event loop, cluster
// replay reports, and the rcmd metrics endpoint — so the same bucket
// boundaries and the same rendering describe simulated and real runs.
//
// # Adding a custom metric
//
// The obs package has two recording disciplines, chosen by who owns
// the data:
//
// 1. Concurrent counters and gauges. Anything updated from multiple
// goroutines uses the registry's atomic types. Create on first use and
// record:
//
//	var served = obs.Default().Counter("myapp_requests_served")
//
//	func handle() {
//		served.Inc()
//		obs.Default().Gauge("myapp_queue_depth").Set(int64(len(queue)))
//	}
//
// Counters only go up; gauges move both ways. Names are flat strings —
// the convention is subsystem_metric_unit (node_msgs_in,
// node_lookup_latency_us). Everything in obs.Default() appears
// automatically at the rcmd -metrics-addr endpoint and in the
// interactive cluster's stats command.
//
// 2. Single-owner histograms. Histogram is deliberately not
// thread-safe: the deterministic pattern is that each writer (a sim
// shard, a node event loop) owns its own value, observes without
// synchronization or allocation, and merges or snapshots at a
// boundary it already owns:
//
//	type loop struct {
//		latency obs.Histogram // owned by the event loop goroutine
//	}
//
//	func (l *loop) record(us int64) { l.latency.Observe(us) }
//
// To publish it, register a snapshot provider that captures behind the
// owner's synchronization — for a node event loop, a posted closure:
//
//	obs.Default().RegisterHistogram("myapp_latency_us", func() obs.Histogram {
//		var snap obs.Histogram
//		l.post(func() { snap = l.latency }) // value copy inside the loop
//		return snap
//	})
//
// Because bucket boundaries are fixed, histograms from different
// owners Merge commutatively: fold shard copies in any order and the
// result is bit-identical. That property is load-bearing — eventsim's
// (Seed, Shards) bit-identity suite compares merged Histogram values
// with ==, so never introduce merge-order- or time-dependent state
// into a histogram.
//
// Determinism rules: obs is in rcmlint's DetPackages set, so code in
// this package (and histogram call sites in other determinism-critical
// packages) must not read wall clocks (time.Now) or the global
// math/rand source. Timestamps come from the virtual clock in
// simulation and from the caller at the live layer.
package obs
