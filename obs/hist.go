package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
)

// Bucket layout. Values 0..linearMax map to width-1 buckets, so small
// integer observations (hop counts!) are exact. Above that, each octave
// [2^k, 2^(k+1)) splits into subCount log sub-buckets (≤ ~6.25%
// relative error), up to octave maxOctave; larger values clamp into the
// final bucket. The boundaries are fixed at compile time — never
// derived from observed data — which is what makes two histograms
// filled in different orders, on different shards, or by different
// schedulers merge to bit-identical state.
const (
	subBits   = 4
	subCount  = 1 << subBits // 16 sub-buckets per octave
	minOctave = subBits + 3  // first split octave: values 128..255
	linearMax = 1<<minOctave - 1
	maxOctave = 40 // last octave: values up to ~2^41 (≈ 25 days in µs)

	numBuckets = (linearMax + 1) + (maxOctave-minOctave+1)*subCount
)

// Histogram is a fixed-boundary log-bucketed histogram of non-negative
// int64 values. The zero value is ready to use. It is a plain value
// type with no pointers, so == compares two histograms bit-for-bit and
// assignment snapshots one. Observe and Merge never allocate.
//
// Histogram is not safe for concurrent use; each writer owns its own
// and merges at a synchronization point (that is the deterministic
// pattern: integer bucket counts make Merge commutative, so any merge
// order yields identical state).
type Histogram struct {
	counts [numBuckets]uint64
	n      uint64
	sum    int64
	min    int64 // valid only when n > 0
	max    int64
}

// bucketIndex maps a value to its bucket. Negative values clamp to 0.
func bucketIndex(v int64) int {
	if v <= linearMax {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1
	if k > maxOctave {
		return numBuckets - 1
	}
	sub := int(v>>(uint(k)-subBits)) & (subCount - 1)
	return (linearMax + 1) + (k-minOctave)*subCount + sub
}

// bucketUpper returns the largest value that maps to bucket i — the
// value Quantile reports for ranks landing in that bucket.
func bucketUpper(i int) int64 {
	if i <= linearMax {
		return int64(i)
	}
	i -= linearMax + 1
	k := minOctave + i/subCount
	sub := i % subCount
	return int64(subCount+sub+1)<<(uint(k)-subBits) - 1
}

// Observe records one value. Negative values are clamped to zero (the
// framework's quantities — hops, latencies, queue depths — are
// non-negative by construction; clamping keeps a stray negative from
// corrupting bucket math).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds other into h. Because bucket boundaries are fixed and
// counts are integers, merging is commutative and associative: any
// fold order over any partition of the observations produces the same
// Histogram value.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values (after clamping).
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the upper bound of the bucket holding the
// ceil(q·n)-th smallest observation (q clamped to [0,1]). For values ≤
// 127 — every realistic hop count — buckets have width 1, so the
// result is the exact order statistic. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return h.Max() // unreachable: cum reaches n
}

// P50, P99 and P999 are the percentile accessors the rest of the
// framework quotes: median, tail, and extreme tail.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Buckets calls fn for each non-empty bucket in ascending value order
// with the bucket's inclusive upper bound and its count.
func (h *Histogram) Buckets(fn func(upper int64, count uint64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(bucketUpper(i), c)
		}
	}
}

// String renders the one-line summary used by trace output and the
// rcmd stats command, e.g. "n=100 mean=3.2 p50=3 p99=7 p999=9 max=9".
func (h *Histogram) String() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p99=%d p999=%d max=%d",
		h.n, h.Mean(), h.P50(), h.P99(), h.P999(), h.Max())
}

// MarshalJSON renders the histogram as a self-describing object with
// summary statistics and the non-empty buckets in ascending order:
//
//	{"count":3,"sum":9,"min":2,"max":4,"mean":3,
//	 "p50":3,"p99":4,"p999":4,"buckets":[[2,1],[3,1],[4,1]]}
//
// Output is deterministic: fixed key order, buckets sorted by bound.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 128)
	buf = h.appendJSON(buf)
	return buf, nil
}

func (h *Histogram) appendJSON(buf []byte) []byte {
	mean := 0.0
	if h.n > 0 {
		mean = h.Mean()
	}
	buf = append(buf, `{"count":`...)
	buf = strconv.AppendUint(buf, h.n, 10)
	buf = append(buf, `,"sum":`...)
	buf = strconv.AppendInt(buf, h.sum, 10)
	buf = append(buf, `,"min":`...)
	buf = strconv.AppendInt(buf, h.Min(), 10)
	buf = append(buf, `,"max":`...)
	buf = strconv.AppendInt(buf, h.Max(), 10)
	buf = append(buf, `,"mean":`...)
	buf = appendFloat(buf, mean)
	buf = append(buf, `,"p50":`...)
	buf = strconv.AppendInt(buf, h.P50(), 10)
	buf = append(buf, `,"p99":`...)
	buf = strconv.AppendInt(buf, h.P99(), 10)
	buf = append(buf, `,"p999":`...)
	buf = strconv.AppendInt(buf, h.P999(), 10)
	buf = append(buf, `,"buckets":[`...)
	first := true
	h.Buckets(func(upper int64, count uint64) {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, '[')
		buf = strconv.AppendInt(buf, upper, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, count, 10)
		buf = append(buf, ']')
	})
	buf = append(buf, "]}"...)
	return buf
}

// appendFloat renders a float compactly, mapping non-finite values to
// null so the output stays valid JSON.
func appendFloat(buf []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}

// WriteText writes a multi-line human-readable rendering: the summary
// line followed by one row per non-empty bucket with a proportional
// bar. Used by the rcmd stats command and trace dumps.
func (h *Histogram) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", h.String()); err != nil {
		return err
	}
	if h.n == 0 {
		return nil
	}
	var peak uint64
	h.Buckets(func(_ int64, c uint64) {
		if c > peak {
			peak = c
		}
	})
	var err error
	h.Buckets(func(upper int64, c uint64) {
		if err != nil {
			return
		}
		bar := int(c * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		_, err = fmt.Fprintf(w, "  %12d %8d %s\n", upper, c, bars[:bar])
	})
	return err
}

const bars = "########################################"

// compile-time check: Histogram must stay directly comparable so value
// equality (and reflect.DeepEqual on Result) keeps working.
var _ = Histogram{} == Histogram{}

// compile-time check: the JSON rendering is a json.Marshaler.
var _ json.Marshaler = (*Histogram)(nil)
