package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent
// use. The zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can move in both directions, safe for
// concurrent use. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a name-keyed collection of counters, gauges and
// histogram snapshot providers. Lookup methods create on first use, so
// callers write obs.Default().Counter("msgs_in").Inc() without
// registration ceremony. Rendering walks names in sorted order, so
// output is deterministic regardless of registration order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]func() Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]func() Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry served by the rcmd
// metrics endpoint.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterHistogram registers a snapshot provider for a histogram
// owned elsewhere (for example by a node event loop, which snapshots
// behind its own synchronization). The provider is called at render
// time; replacing an existing name is allowed and takes effect on the
// next snapshot.
func (r *Registry) RegisterHistogram(name string, snapshot func() Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = snapshot
}

// Snapshot is a point-in-time copy of a registry's contents with all
// names in sorted order.
type Snapshot struct {
	Counters []NamedValue
	Gauges   []NamedValue
	Hists    []NamedHist
}

// NamedValue is one counter or gauge reading.
type NamedValue struct {
	Name  string
	Value int64
}

// NamedHist is one histogram snapshot.
type NamedHist struct {
	Name string
	Hist Histogram
}

// Snapshot captures the registry. Histogram providers run outside the
// registry lock so a provider that posts into an event loop cannot
// deadlock against metric creation.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{name, int64(c.Value())})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Value()})
	}
	providers := make([]NamedHist, 0, len(r.hists))
	byName := make(map[string]func() Histogram, len(r.hists))
	for name, fn := range r.hists {
		providers = append(providers, NamedHist{Name: name})
		byName[name] = fn
	}
	r.mu.Unlock()

	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(providers, func(i, j int) bool { return providers[i].Name < providers[j].Name })
	for i := range providers {
		providers[i].Hist = byName[providers[i].Name]()
	}
	s.Hists = providers
	return s
}

// Merge returns the union of two snapshots with every section
// re-sorted by name, so a registry snapshot and a subsystem-rendered
// one (node.Metrics.Snapshot) serve as one document. Callers keep
// names disjoint via prefixes; duplicates would render as duplicate
// keys.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters: append(append([]NamedValue(nil), s.Counters...), other.Counters...),
		Gauges:   append(append([]NamedValue(nil), s.Gauges...), other.Gauges...),
		Hists:    append(append([]NamedHist(nil), s.Hists...), other.Hists...),
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	return out
}

// WriteJSON renders the snapshot as a /debug/vars-style JSON object
// with three sections and deterministic (sorted) key order:
//
//	{"counters":{...},"gauges":{...},"histograms":{...}}
func (s Snapshot) WriteJSON(w io.Writer) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"counters":{`...)
	for i, c := range s.Counters {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendQuoted(buf, c.Name)
		buf = append(buf, ':')
		buf = appendInt(buf, c.Value)
	}
	buf = append(buf, `},"gauges":{`...)
	for i, g := range s.Gauges {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendQuoted(buf, g.Name)
		buf = append(buf, ':')
		buf = appendInt(buf, g.Value)
	}
	buf = append(buf, `},"histograms":{`...)
	for i, h := range s.Hists {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendQuoted(buf, h.Name)
		buf = append(buf, ':')
		buf = h.Hist.appendJSON(buf)
	}
	buf = append(buf, "}}\n"...)
	_, err := w.Write(buf)
	return err
}

// WriteText renders the snapshot as sorted "name value" lines followed
// by one summary line per histogram — the rcmd stats format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-32s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-32s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		if _, err := fmt.Fprintf(w, "%-32s %s\n", h.Name, h.Hist.String()); err != nil {
			return err
		}
	}
	return nil
}

func appendInt(buf []byte, v int64) []byte {
	return strconv.AppendInt(buf, v, 10)
}

// appendQuoted quotes a metric name. Names are plain identifiers
// (letters, digits, '_', '.', '/'), so byte-level quoting suffices.
func appendQuoted(buf []byte, s string) []byte {
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}
