package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCreateOnFirstUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(2)
	if r.Counter("a") != c {
		t.Error("Counter(name) did not return the same instance")
	}
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("b")
	g.Set(10)
	g.Add(-4)
	if r.Gauge("b") != g {
		t.Error("Gauge(name) did not return the same instance")
	}
	if g.Value() != 6 {
		t.Errorf("gauge = %d, want 6", g.Value())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Errorf("depth = %d, want 0", got)
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register in non-sorted order; snapshot must come out sorted.
	r.Counter("zebra").Add(1)
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(-7)
	var h Histogram
	h.Observe(4)
	r.RegisterHistogram("lat_us", func() Histogram { return h })

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zebra" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Hists) != 1 || s.Hists[0].Hist.Count() != 1 {
		t.Fatalf("histogram snapshot missing: %+v", s.Hists)
	}

	var a, b strings.Builder
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two snapshots of unchanged state rendered differently")
	}
	var parsed struct {
		Counters   map[string]int64          `json:"counters"`
		Gauges     map[string]int64          `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(a.String()), &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, a.String())
	}
	if parsed.Counters["zebra"] != 1 || parsed.Counters["alpha"] != 2 || parsed.Gauges["mid"] != -7 {
		t.Errorf("parsed snapshot wrong: %+v", parsed)
	}
	if parsed.Histograms["lat_us"]["count"].(float64) != 1 {
		t.Errorf("histogram count wrong: %+v", parsed.Histograms["lat_us"])
	}

	var txt strings.Builder
	if err := s.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "alpha") || !strings.Contains(txt.String(), "lat_us") {
		t.Errorf("text snapshot missing entries:\n%s", txt.String())
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	name := "obs_test_default_counter"
	Default().Counter(name).Inc()
	if Default().Counter(name).Value() == 0 {
		t.Error("default registry did not persist counter")
	}
}
