package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it:
	// bucketUpper(idx) >= v and (idx == 0 or bucketUpper(idx-1) < v).
	vals := []int64{0, 1, 2, 63, 127, 128, 129, 255, 256, 1000, 4095, 1 << 20, 1<<41 - 1, 1 << 41, math.MaxInt64}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if v < 1<<41 { // below the clamp, containment must be exact
			if up := bucketUpper(idx); up < v {
				t.Errorf("bucketUpper(%d)=%d < v=%d", idx, up, v)
			}
			if idx > 0 && bucketUpper(idx-1) >= v {
				t.Errorf("bucketUpper(%d)=%d >= v=%d (bucket not minimal)", idx-1, bucketUpper(idx-1), v)
			}
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("bucketIndex(-5) = %d, want 0", got)
	}
}

func TestBucketUpperMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d", i, up, prev)
		}
		prev = up
	}
}

func TestExactSmallQuantiles(t *testing.T) {
	// Hop counts live far below 128, so quantiles are exact order
	// statistics there.
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 1}, {0.5, 50}, {0.99, 99}, {0.999, 100}, {1, 100}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.P50() != 50 || h.P99() != 99 || h.P999() != 100 {
		t.Errorf("P50/P99/P999 = %d/%d/%d", h.P50(), h.P99(), h.P999())
	}
	if h.Min() != 1 || h.Max() != 100 || h.Sum() != 5050 || h.Count() != 100 {
		t.Errorf("summary: min=%d max=%d sum=%d n=%d", h.Min(), h.Max(), h.Sum(), h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v, want 50.5", h.Mean())
	}
}

func TestLogBucketRelativeError(t *testing.T) {
	// Above the linear range the quantile may overestimate, but never
	// by more than one sub-bucket width (1/16 of the value's octave).
	var h Histogram
	h.Observe(100_000)
	got := h.P50()
	if got < 100_000 || float64(got) > 100_000*(1+1.0/subCount) {
		t.Errorf("P50 of {100000} = %d, want within +6.25%%", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Error("empty histogram has nonzero summary")
	}
	if !math.IsNaN(h.Mean()) {
		t.Errorf("empty Mean = %v, want NaN", h.Mean())
	}
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty Quantile = %d, want 0", h.Quantile(0.5))
	}
	if h.String() != "n=0" {
		t.Errorf("empty String = %q", h.String())
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"count":0,"sum":0,"min":0,"max":0,"mean":0,"p50":0,"p99":0,"p999":0,"buckets":[]}`; string(b) != want {
		t.Errorf("empty JSON = %s, want %s", b, want)
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	// Merging any partition of the observations, in any order, must
	// produce a bit-identical Histogram value (the property eventsim's
	// (Seed, Shards) bit-identity contract leans on).
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.ExpFloat64() * 1000)
	}

	var whole Histogram
	for _, v := range vals {
		whole.Observe(v)
	}

	var parts [4]Histogram
	for i, v := range vals {
		parts[i%4].Observe(v)
	}
	var fwd Histogram
	for i := range parts {
		fwd.Merge(&parts[i])
	}
	var rev Histogram
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(&parts[i])
	}

	if whole != fwd || whole != rev {
		t.Fatal("merge is not order-independent / partition-independent")
	}
	var empty Histogram
	fwd.Merge(&empty)
	if fwd != whole {
		t.Fatal("merging an empty histogram changed state")
	}
}

func TestObserveMergeAllocFree(t *testing.T) {
	var h, other Histogram
	other.Observe(3)
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(42)
		h.Observe(1 << 20)
		h.Merge(&other)
	}); n != 0 {
		t.Errorf("Observe/Merge allocated %.1f times per run, want 0", n)
	}
}

func TestJSONAndText(t *testing.T) {
	var h Histogram
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"count":3,"sum":9,"min":2,"max":4,"mean":3,"p50":3,"p99":4,"p999":4,"buckets":[[2,1],[3,1],[4,1]]}`
	if string(b) != want {
		t.Errorf("JSON = %s\nwant   %s", b, want)
	}
	var parsed map[string]any
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	var sb strings.Builder
	if err := h.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "n=3 mean=3.00 p50=3") || !strings.Contains(out, "#") {
		t.Errorf("WriteText output unexpected:\n%s", out)
	}
}

func TestQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(7)
	if h.Quantile(-1) != 5 {
		t.Errorf("Quantile(-1) = %d, want 5", h.Quantile(-1))
	}
	if h.Quantile(2) != 7 {
		t.Errorf("Quantile(2) = %d, want 7", h.Quantile(2))
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 1023)
	}
}
