module rcm

go 1.22
