module rcm

go 1.23
