package lifetime

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadTraceLineEndings is the regression table for trace files that
// did not come from a well-behaved unix editor: CRLF and bare-CR line
// endings, trailing blank lines, a leading UTF-8 BOM, and whitespace
// padding must all replay to the same samples an LF file yields; junk
// and non-positive lines must error naming the line and the text.
func TestLoadTraceLineEndings(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []float64
		// errSub non-empty means LoadTrace must fail and the error must
		// contain this substring.
		errSub string
	}{
		{name: "lf", body: "1.0\n2.0\n3.5\n", want: []float64{1, 2, 3.5}},
		{name: "crlf", body: "1.0\r\n2.0\r\n3.5\r\n", want: []float64{1, 2, 3.5}},
		{name: "bare cr", body: "1.0\r2.0\r3.5\r", want: []float64{1, 2, 3.5}},
		{name: "mixed endings", body: "1.0\r\n2.0\n3.5\r", want: []float64{1, 2, 3.5}},
		{name: "no final newline", body: "1.0\n2.0", want: []float64{1, 2}},
		{name: "blank trailing lines", body: "1.0\n2.0\n\n\n", want: []float64{1, 2}},
		{name: "blank crlf trailing lines", body: "1.0\r\n2.0\r\n\r\n\r\n", want: []float64{1, 2}},
		{name: "interior blanks and comments", body: "# head\n\n1.0\n# mid\r\n\r\n2.0\n", want: []float64{1, 2}},
		{name: "utf8 bom", body: "\ufeff1.0\n2.0\n", want: []float64{1, 2}},
		{name: "bom then comment", body: "\ufeff# exported\n4.0\n", want: []float64{4}},
		{name: "padded", body: "  1.0 \t\r\n\t2.0  \n", want: []float64{1, 2}},

		{name: "zero duration", body: "1.0\r\n0\r\n", errSub: "line 2: duration 0 must be positive"},
		{name: "negative duration", body: "1.0\n-2.5\n", errSub: "line 2: duration -2.5 must be positive"},
		{name: "negative with cr", body: "-1\r", errSub: "line 1: duration -1 must be positive"},
		{name: "nan", body: "NaN\n", errSub: "line 1: duration NaN must be positive"},
		{name: "inf", body: "+Inf\n", errSub: "line 1: duration +Inf must be positive"},
		{name: "junk", body: "1.0\ntwo\n", errSub: `line 2: "two" is not a duration`},
		{name: "junk quoted after crlf", body: "1.0\r\n1,5\r\n", errSub: `line 2: "1,5" is not a duration`},
		{name: "only blanks", body: "\r\n\n\r", errSub: "has no durations"},
		{name: "only comments", body: "# a\r\n# b\r\n", errSub: "has no durations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "trace.txt")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			tr, err := LoadTrace(path)
			if tc.errSub != "" {
				if err == nil {
					t.Fatalf("LoadTrace(%q) = %v, want error containing %q", tc.body, tr.Durations, tc.errSub)
				}
				if !strings.Contains(err.Error(), tc.errSub) {
					t.Fatalf("LoadTrace(%q) error = %v, want substring %q", tc.body, err, tc.errSub)
				}
				return
			}
			if err != nil {
				t.Fatalf("LoadTrace(%q): %v", tc.body, err)
			}
			if len(tr.Durations) != len(tc.want) {
				t.Fatalf("LoadTrace(%q) = %v, want %v", tc.body, tr.Durations, tc.want)
			}
			for i, v := range tc.want {
				if tr.Durations[i] != v {
					t.Fatalf("LoadTrace(%q) = %v, want %v", tc.body, tr.Durations, tc.want)
				}
			}
			// The same file must resolve through the Parse grammar too —
			// trace:<path> is the user-facing spelling.
			fam, err := Parse("trace:" + path)
			if err != nil {
				t.Fatalf("Parse(trace:%s): %v", path, err)
			}
			if got := fam.(Trace).Durations; len(got) != len(tc.want) {
				t.Fatalf("Parse(trace:...) samples = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestScanTraceLines pins the split function itself at buffer edges: a CR
// as the last byte of a non-final read must not be consumed until the
// scanner knows whether an LF follows (otherwise a CRLF pair straddling
// two reads would produce a phantom blank line — harmless here, but the
// contract should hold regardless of read sizing).
func TestScanTraceLines(t *testing.T) {
	if adv, tok, err := scanTraceLines([]byte("1.0\r"), false); adv != 0 || tok != nil || err != nil {
		t.Fatalf("CR at buffer edge: advance=%d token=%q err=%v, want request for more data", adv, tok, err)
	}
	if adv, tok, err := scanTraceLines([]byte("1.0\r"), true); adv != 4 || string(tok) != "1.0" || err != nil {
		t.Fatalf("CR at EOF: advance=%d token=%q err=%v", adv, tok, err)
	}
	if adv, tok, err := scanTraceLines([]byte("1.0\r\n2"), false); adv != 5 || string(tok) != "1.0" || err != nil {
		t.Fatalf("CRLF: advance=%d token=%q err=%v", adv, tok, err)
	}
	if adv, tok, err := scanTraceLines([]byte("1.0\r2"), false); adv != 4 || string(tok) != "1.0" || err != nil {
		t.Fatalf("bare CR: advance=%d token=%q err=%v", adv, tok, err)
	}
}
