package lifetime

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rcm/overlay"
)

// Trace replays durations measured from a real availability trace: the
// family resamples uniformly from the recorded durations, rescaled so the
// empirical mean equals the requested mean. That keeps trace replay on the
// same equal-mean-online-time axis as the parametric families; to replay a
// trace at its native time scale, request its own EmpiricalMean.
type Trace struct {
	// Source labels the trace (the file path for loaded traces).
	Source string
	// Durations are the recorded samples (all positive and finite).
	Durations []float64

	// mean caches EmpiricalMean and checked marks a passed Validate —
	// both set by LoadTrace — so Dist stays O(1) per call however often a
	// scenario re-pins the mean (the diurnal scenario does so per
	// session). Literal-constructed Traces recompute on demand.
	mean    float64
	checked bool
}

// LoadTrace reads an availability trace file: one duration per line,
// blank lines and #-comments ignored. LF, CRLF and bare-CR line endings
// all delimit lines, and a leading UTF-8 byte-order mark is skipped, so
// traces exported from spreadsheets or Windows editors replay unchanged.
// Durations are in the engine's time unit and must be positive and
// finite; an empty trace is an error.
func LoadTrace(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("lifetime: trace %q: %w", path, err)
	}
	defer f.Close()

	tr := Trace{Source: filepath.ToSlash(path)}
	sc := bufio.NewScanner(f)
	sc.Split(scanTraceLines)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			text = strings.TrimPrefix(text, "\ufeff")
		}
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("lifetime: trace %q line %d: %q is not a duration", path, line, text)
		}
		if !(v > 0) || math.IsInf(v, 0) {
			return Trace{}, fmt.Errorf("lifetime: trace %q line %d: duration %v must be positive and finite", path, line, v)
		}
		tr.Durations = append(tr.Durations, v)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("lifetime: trace %q: %w", path, err)
	}
	if len(tr.Durations) == 0 {
		return Trace{}, fmt.Errorf("lifetime: trace %q has no durations", path)
	}
	tr.mean = tr.EmpiricalMean()
	tr.checked = true
	return tr, nil
}

// scanTraceLines is bufio.ScanLines extended to accept bare-CR line
// endings: a line ends at the first LF or CR, with CRLF consumed as one
// terminator. Plain ScanLines would hand a CR-delimited file back as a
// single giant token and the parse error would quote the whole file.
func scanTraceLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	for i, b := range data {
		switch b {
		case '\n':
			return i + 1, data[:i], nil
		case '\r':
			if i+1 < len(data) {
				if data[i+1] == '\n' {
					return i + 2, data[:i], nil
				}
				return i + 1, data[:i], nil
			}
			if atEOF {
				return i + 1, data[:i], nil
			}
			// CR at the buffer edge: ask for more data to see whether an
			// LF follows before deciding how much to consume.
			return 0, nil, nil
		}
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// EmpiricalMean returns the mean of the recorded durations (NaN for an
// empty trace).
func (t Trace) EmpiricalMean() float64 {
	if t.mean != 0 {
		return t.mean
	}
	if len(t.Durations) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range t.Durations {
		sum += v
	}
	return sum / float64(len(t.Durations))
}

// Name implements Family.
func (t Trace) Name() string {
	src := t.Source
	if src == "" {
		src = fmt.Sprintf("%d samples", len(t.Durations))
	}
	return "trace(" + src + ")"
}

// Validate rejects empty or degenerate traces.
func (t Trace) Validate() error {
	if t.checked {
		return nil
	}
	if len(t.Durations) == 0 {
		return fmt.Errorf("lifetime: trace %q has no durations", t.Source)
	}
	for i, v := range t.Durations {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("lifetime: trace %q sample %d: duration %v must be positive and finite", t.Source, i, v)
		}
	}
	return nil
}

// Dist implements Family: uniform resampling of the recorded durations,
// scaled by mean/EmpiricalMean.
func (t Trace) Dist(mean float64) (Dist, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := checkMean("trace", mean); err != nil {
		return nil, err
	}
	return traceDist{t: t, scale: mean / t.EmpiricalMean(), mean: mean}, nil
}

type traceDist struct {
	t     Trace
	scale float64
	mean  float64
}

func (d traceDist) Name() string  { return d.t.Name() }
func (d traceDist) Mean() float64 { return d.mean }

func (d traceDist) Sample(rng *overlay.RNG) float64 {
	return d.scale * d.t.Durations[rng.Intn(len(d.t.Durations))]
}
