package lifetime

import (
	"fmt"

	"rcm/spec"
)

// Factory builds a Family from the argument part of a Parse spec (the text
// after the first ':', possibly empty). Factories must validate their
// argument and return descriptive errors.
type Factory = spec.Factory[Family]

// families is the name-keyed family table — an instance of the module's
// one registry-style spec grammar (rcm/spec): case-insensitive,
// alias-aware, collision-checked, with unknown names erroring against the
// sorted list of every accepted spelling.
var families = spec.New[Family]("lifetime", "family")

// Register adds a lifetime family factory under a canonical name plus
// optional aliases. Names are case-insensitive; a taken or empty name is
// an error. Registered families resolve everywhere the built-ins do:
// Parse, eventsim scenario parameters, and the cmd/eventsim -lifetime and
// -downtime flags.
func Register(name string, f Factory, aliases ...string) error {
	return families.Register(name, f, aliases...)
}

// Lookup resolves a family factory by name or alias.
func Lookup(name string) (Factory, bool) { return families.Lookup(name) }

// Names returns the canonical family names in registration order (the
// built-in five first, user registrations after).
func Names() []string { return families.Names() }

// Parse builds a lifetime family from its CLI spelling:
//
//	exp
//	pareto[:alpha]        e.g. pareto:1.5   (alpha > 1; <= 1 has no mean)
//	weibull[:shape]       e.g. weibull:0.5
//	lognormal[:sigma]     e.g. lognormal:1
//	trace:<file>          one duration per line, # comments
//
// The empty spec selects the exponential family (the memoryless default).
// Shape arguments are parsed by the named family's registered factory, so
// user-registered families get the same spelling.
func Parse(s string) (Family, error) {
	return families.Parse(s)
}

// Spec renders a family as its canonical Parse spelling — the inverse
// tested by the round-trip suite. Families built outside this package
// (user registrations) fall back to their Name, which registrants should
// keep parseable.
func Spec(f Family) string {
	switch v := f.(type) {
	case Exponential:
		return "exp"
	case Pareto:
		return fmt.Sprintf("pareto:%g", v.alpha())
	case Weibull:
		return fmt.Sprintf("weibull:%g", v.shape())
	case Lognormal:
		return fmt.Sprintf("lognormal:%g", v.sigma())
	case Trace:
		return "trace:" + v.Source
	default:
		return f.Name()
	}
}

// parseShape parses the optional single numeric argument of a parametric
// family spec; empty selects the family default (zero value).
func parseShape(family, arg string) (float64, error) {
	v, _, err := spec.Float("lifetime", family, arg)
	return v, err
}

func init() {
	for _, reg := range []struct {
		name    string
		factory Factory
		aliases []string
	}{
		{"exp", func(arg string) (Family, error) {
			if arg != "" {
				return nil, fmt.Errorf("lifetime: exp takes no argument (got %q); the mean is set by the scenario", arg)
			}
			return Exponential{}, nil
		}, []string{"exponential"}},
		{"pareto", func(arg string) (Family, error) {
			a, err := parseShape("pareto", arg)
			if err != nil {
				return nil, err
			}
			p := Pareto{Alpha: a}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return p, nil
		}, []string{"heavytail"}},
		{"weibull", func(arg string) (Family, error) {
			k, err := parseShape("weibull", arg)
			if err != nil {
				return nil, err
			}
			w := Weibull{Shape: k}
			if err := w.Validate(); err != nil {
				return nil, err
			}
			return w, nil
		}, nil},
		{"lognormal", func(arg string) (Family, error) {
			s, err := parseShape("lognormal", arg)
			if err != nil {
				return nil, err
			}
			l := Lognormal{Sigma: s}
			if err := l.Validate(); err != nil {
				return nil, err
			}
			return l, nil
		}, []string{"lognorm"}},
		{"trace", func(arg string) (Family, error) {
			if arg == "" {
				return nil, fmt.Errorf("lifetime: trace requires a file path, e.g. trace:sessions.txt")
			}
			return LoadTrace(arg)
		}, nil},
	} {
		families.MustRegister(reg.name, reg.factory, reg.aliases...)
	}
	if err := families.SetDefault("exp"); err != nil {
		panic(err) // exp was just registered; unreachable
	}
}
