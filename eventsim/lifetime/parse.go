package lifetime

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Factory builds a Family from the argument part of a Parse spec (the text
// after the first ':', possibly empty). Factories must validate their
// argument and return descriptive errors.
type Factory func(arg string) (Family, error)

// The lifetime registry mirrors the geometry/protocol/scenario registries:
// a case-insensitive name-keyed table with registration-order listing, so
// user families resolve everywhere the built-ins do (Parse, eventsim
// scenario parameters, cmd/eventsim flags).
var families = struct {
	mu    sync.RWMutex
	order []string
	index map[string]Factory
}{index: map[string]Factory{}}

// Register adds a lifetime family factory under a canonical name plus
// optional aliases. Names are case-insensitive; a taken or empty name is
// an error.
func Register(name string, f Factory, aliases ...string) error {
	if f == nil {
		return fmt.Errorf("lifetime: family %q has nil factory", name)
	}
	keys := make([]string, 0, 1+len(aliases))
	for _, n := range append([]string{name}, aliases...) {
		k := strings.ToLower(strings.TrimSpace(n))
		if k == "" {
			return fmt.Errorf("lifetime: empty family name")
		}
		keys = append(keys, k)
	}
	families.mu.Lock()
	defer families.mu.Unlock()
	for i, k := range keys {
		if _, taken := families.index[k]; taken {
			what := "name"
			if i > 0 {
				what = "alias"
			}
			return fmt.Errorf("lifetime: family %s %q already registered", what, k)
		}
		for _, prev := range keys[:i] {
			if prev == k {
				return fmt.Errorf("lifetime: family %q aliases itself", k)
			}
		}
	}
	for _, k := range keys {
		families.index[k] = f
	}
	families.order = append(families.order, keys[0])
	return nil
}

// Lookup resolves a family factory by name or alias.
func Lookup(name string) (Factory, bool) {
	families.mu.RLock()
	defer families.mu.RUnlock()
	f, ok := families.index[strings.ToLower(strings.TrimSpace(name))]
	return f, ok
}

// Names returns the canonical family names in registration order (the
// built-in five first, user registrations after).
func Names() []string {
	families.mu.RLock()
	defer families.mu.RUnlock()
	out := make([]string, len(families.order))
	copy(out, families.order)
	return out
}

func keys() []string {
	families.mu.RLock()
	defer families.mu.RUnlock()
	out := make([]string, 0, len(families.index))
	for k := range families.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Parse builds a lifetime family from its CLI spelling:
//
//	exp
//	pareto[:alpha]        e.g. pareto:1.5   (alpha > 1; <= 1 has no mean)
//	weibull[:shape]       e.g. weibull:0.5
//	lognormal[:sigma]     e.g. lognormal:1
//	trace:<file>          one duration per line, # comments
//
// The empty spec selects the exponential family (the memoryless default).
// Shape arguments are parsed by the named family's registered factory, so
// user-registered families get the same spelling.
func Parse(spec string) (Family, error) {
	name, arg, _ := strings.Cut(strings.TrimSpace(spec), ":")
	if name == "" {
		if arg != "" {
			return nil, fmt.Errorf("lifetime: spec %q has an argument but no family name", spec)
		}
		name = "exp"
	}
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("lifetime: unknown family %q (have %s)", name, strings.Join(keys(), ", "))
	}
	return f(arg)
}

// parseShape parses the optional single numeric argument of a parametric
// family spec; empty selects the family default (zero value).
func parseShape(family, arg string) (float64, error) {
	if arg == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(arg, 64)
	if err != nil {
		return 0, fmt.Errorf("lifetime: %s argument %q: %v", family, arg, err)
	}
	return v, nil
}

func init() {
	for _, reg := range []struct {
		name    string
		factory Factory
		aliases []string
	}{
		{"exp", func(arg string) (Family, error) {
			if arg != "" {
				return nil, fmt.Errorf("lifetime: exp takes no argument (got %q); the mean is set by the scenario", arg)
			}
			return Exponential{}, nil
		}, []string{"exponential"}},
		{"pareto", func(arg string) (Family, error) {
			a, err := parseShape("pareto", arg)
			if err != nil {
				return nil, err
			}
			p := Pareto{Alpha: a}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return p, nil
		}, []string{"heavytail"}},
		{"weibull", func(arg string) (Family, error) {
			k, err := parseShape("weibull", arg)
			if err != nil {
				return nil, err
			}
			w := Weibull{Shape: k}
			if err := w.Validate(); err != nil {
				return nil, err
			}
			return w, nil
		}, nil},
		{"lognormal", func(arg string) (Family, error) {
			s, err := parseShape("lognormal", arg)
			if err != nil {
				return nil, err
			}
			l := Lognormal{Sigma: s}
			if err := l.Validate(); err != nil {
				return nil, err
			}
			return l, nil
		}, []string{"lognorm"}},
		{"trace", func(arg string) (Family, error) {
			if arg == "" {
				return nil, fmt.Errorf("lifetime: trace requires a file path, e.g. trace:sessions.txt")
			}
			return LoadTrace(arg)
		}, nil},
	} {
		if err := Register(reg.name, reg.factory, reg.aliases...); err != nil {
			panic(err) // static names; unreachable
		}
	}
}
