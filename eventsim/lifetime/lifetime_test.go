package lifetime

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcm/overlay"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(t *testing.T, d Dist, n int) float64 {
	t.Helper()
	rng := overlay.NewRNG(7)
	sum := 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("%s: sample %v not positive finite", d.Name(), v)
		}
		sum += v
	}
	return sum / float64(n)
}

// TestFamiliesHitRequestedMean is the equal-mean-online-time contract:
// every family pinned to the same mean must empirically realize it. The
// Pareto tolerance is wide — at α = 1.5 the variance is infinite and
// sample means converge slowly.
func TestFamiliesHitRequestedMean(t *testing.T) {
	const mean = 2.0
	for _, tc := range []struct {
		fam Family
		tol float64
	}{
		{Exponential{}, 0.05},
		{Pareto{Alpha: 2.5}, 0.15},
		{Weibull{Shape: 0.5}, 0.1},
		{Weibull{Shape: 2}, 0.05},
		{Lognormal{Sigma: 1}, 0.1},
		{Trace{Source: "mem", Durations: []float64{1, 2, 3, 10}}, 0.05},
	} {
		d, err := tc.fam.Dist(mean)
		if err != nil {
			t.Fatalf("%s: %v", tc.fam.Name(), err)
		}
		if d.Mean() != mean {
			t.Errorf("%s: Mean() = %v, want %v", d.Name(), d.Mean(), mean)
		}
		got := sampleMean(t, d, 200000)
		if math.Abs(got-mean)/mean > tc.tol {
			t.Errorf("%s: empirical mean %v, want %v ± %v%%", d.Name(), got, mean, 100*tc.tol)
		}
	}
}

// TestParetoIsHeavyTailed: at equal mean, Pareto α = 1.5 must produce far
// more mass deep in the tail than the exponential — the property the
// heavytail scenario exists to exercise.
func TestParetoIsHeavyTailed(t *testing.T) {
	pd, err := Pareto{Alpha: 1.5}.Dist(1)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := Exponential{}.Dist(1)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 100000
	tail := func(d Dist) int {
		rng := overlay.NewRNG(11)
		n := 0
		for i := 0; i < draws; i++ {
			if d.Sample(rng) > 10 {
				n++
			}
		}
		return n
	}
	p, e := tail(pd), tail(ed)
	// P(X > 10) for exp(1) is ~4.5e-5; for Pareto(1.5, mean 1) it is
	// (1/30)^1.5 ≈ 6e-3 — over two orders of magnitude apart.
	if p < 20*e+20 {
		t.Errorf("pareto tail count %d not clearly heavier than exponential %d", p, e)
	}
}

// TestDistDeterminism: equal seeds must give identical streams.
func TestDistDeterminism(t *testing.T) {
	for _, fam := range []Family{Exponential{}, Pareto{}, Weibull{}, Lognormal{}} {
		d, err := fam.Dist(1)
		if err != nil {
			t.Fatal(err)
		}
		a, b := overlay.NewRNG(3), overlay.NewRNG(3)
		for i := 0; i < 100; i++ {
			if x, y := d.Sample(a), d.Sample(b); x != y {
				t.Fatalf("%s: diverged at draw %d: %v vs %v", d.Name(), i, x, y)
			}
		}
	}
}

// TestInvalidShapes: the degenerate parameterizations the satellite fix
// targets — Pareto α ≤ 1 (infinite mean), non-positive shapes and means —
// must be descriptive errors, not degenerate schedules.
func TestInvalidShapes(t *testing.T) {
	cases := map[string]func() error{
		"pareto alpha 1":      func() error { return Pareto{Alpha: 1}.Validate() },
		"pareto alpha 0.8":    func() error { return Pareto{Alpha: 0.8}.Validate() },
		"pareto alpha -2":     func() error { return Pareto{Alpha: -2}.Validate() },
		"pareto alpha NaN":    func() error { return Pareto{Alpha: math.NaN()}.Validate() },
		"weibull shape -1":    func() error { return Weibull{Shape: -1}.Validate() },
		"weibull shape Inf":   func() error { return Weibull{Shape: math.Inf(1)}.Validate() },
		"lognormal sigma -1":  func() error { return Lognormal{Sigma: -1}.Validate() },
		"exp mean 0":          func() error { _, err := Exponential{}.Dist(0); return err },
		"exp mean -1":         func() error { _, err := Exponential{}.Dist(-1); return err },
		"exp mean NaN":        func() error { _, err := Exponential{}.Dist(math.NaN()); return err },
		"exp mean Inf":        func() error { _, err := Exponential{}.Dist(math.Inf(1)); return err },
		"pareto mean 0":       func() error { _, err := Pareto{Alpha: 2}.Dist(0); return err },
		"empty trace":         func() error { return Trace{}.Validate() },
		"trace with zero":     func() error { return Trace{Durations: []float64{1, 0}}.Validate() },
		"trace with negative": func() error { _, err := Trace{Durations: []float64{-1}}.Dist(1); return err },
	}
	for name, f := range cases {
		if err := f(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestZeroShapesSelectDefaults: the zero value of each parametric family
// is the documented default, not an error.
func TestZeroShapesSelectDefaults(t *testing.T) {
	if got := (Pareto{}).alpha(); got != DefaultParetoAlpha {
		t.Errorf("zero Pareto alpha = %v, want %v", got, DefaultParetoAlpha)
	}
	if got := (Weibull{}).shape(); got != DefaultWeibullShape {
		t.Errorf("zero Weibull shape = %v, want %v", got, DefaultWeibullShape)
	}
	if got := (Lognormal{}).sigma(); got != float64(DefaultLognormalSigma) {
		t.Errorf("zero Lognormal sigma = %v, want %v", got, DefaultLognormalSigma)
	}
}

func writeTrace(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadTrace covers the file loader: comments and blanks skipped,
// empirical mean computed, rescaling to the requested mean.
func TestLoadTrace(t *testing.T) {
	path := writeTrace(t, "# session durations\n1.0\n\n2.0\n 3.0 \n")
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Durations) != 3 {
		t.Fatalf("loaded %d durations, want 3", len(tr.Durations))
	}
	if m := tr.EmpiricalMean(); m != 2 {
		t.Errorf("empirical mean %v, want 2", m)
	}
	d, err := tr.Dist(4) // rescale ×2
	if err != nil {
		t.Fatal(err)
	}
	rng := overlay.NewRNG(1)
	for i := 0; i < 100; i++ {
		v := d.Sample(rng)
		if v != 2 && v != 4 && v != 6 {
			t.Fatalf("rescaled sample %v not in {2,4,6}", v)
		}
	}
}

// TestLoadTraceErrors: missing file, junk lines, empty and non-positive
// traces all error descriptively.
func TestLoadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"junk line":    "1.0\nbogus\n",
		"zero value":   "0\n",
		"negative":     "-1\n",
		"inf":          "+Inf\n",
		"only comment": "# nothing\n",
		"empty":        "",
	}
	for name, body := range cases {
		if _, err := LoadTrace(writeTrace(t, body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestParseSpellings locks the CLI spellings for all built-in families.
func TestParseSpellings(t *testing.T) {
	trPath := writeTrace(t, "1\n2\n")
	good := map[string]string{
		"":                "exp",
		"exp":             "exp",
		"  Exponential ":  "exp",
		"pareto":          "pareto(a=1.5)",
		"pareto:2.5":      "pareto(a=2.5)",
		"heavytail":       "pareto(a=1.5)",
		"weibull":         "weibull(k=0.5)",
		"weibull:0.7":     "weibull(k=0.7)",
		"lognormal":       "lognormal(s=1)",
		"lognorm:2":       "lognormal(s=2)",
		"trace:" + trPath: "trace(" + filepath.ToSlash(trPath) + ")",
	}
	for spec, want := range good {
		fam, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if fam.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, fam.Name(), want)
		}
	}
}

// TestParseErrors is the table-driven error-path suite for ParseLifetime
// specs: every rejected spelling must carry a descriptive message.
func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown family":        "zipfian",
		"bare colon":            ":1.5",
		"exp with argument":     "exp:2",
		"pareto junk arg":       "pareto:xyz",
		"pareto alpha 1":        "pareto:1",
		"pareto alpha 0.5":      "pareto:0.5",
		"pareto alpha negative": "pareto:-3",
		"weibull junk arg":      "weibull:k",
		"weibull zero shape":    "weibull:-0.5",
		"lognormal junk":        "lognormal:??",
		"lognormal negative":    "lognormal:-1",
		"trace no path":         "trace",
		"trace missing file":    "trace:/definitely/not/a/file.txt",
	}
	for name, spec := range cases {
		_, err := Parse(spec)
		if err == nil {
			t.Errorf("%s: Parse(%q) accepted", name, spec)
			continue
		}
		if !strings.Contains(err.Error(), "lifetime:") {
			t.Errorf("%s: error %q lacks package context", name, err)
		}
	}
}

// TestRegisterCollisions covers the registry rules.
func TestRegisterCollisions(t *testing.T) {
	f := func(string) (Family, error) { return Exponential{}, nil }
	if err := Register("pareto", f); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := Register("fresh-name-x", f, "exp"); err == nil {
		t.Error("alias collision accepted")
	}
	if err := Register("", f); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("self", f, "self"); err == nil {
		t.Error("self-alias accepted")
	}
	if err := Register("nilfam", nil); err == nil {
		t.Error("nil factory accepted")
	}
	names := Names()
	want := []string{"exp", "pareto", "weibull", "lognormal", "trace"}
	for i, w := range want {
		if i >= len(names) || names[i] != w {
			t.Fatalf("Names() = %v, want prefix %v", names, want)
		}
	}
}
