// Package lifetime is the session/downtime distribution library behind
// rcm/eventsim's churn scenarios: a name-registered, pluggable set of
// positive-duration distribution families — exponential, Pareto, Weibull,
// lognormal, and trace replay from availability trace files — all
// parameterized by their *mean*, so heavy-tailed and memoryless models
// compare at equal mean online time.
//
// The split into Family (a shape: "Pareto with α = 1.5") and Dist (a shape
// pinned to a mean) mirrors how churn studies are designed: the paper's
// equivalent failure probability q_eff = E[off]/(E[on]+E[off]) depends only
// on the means, so sweeping the Family at fixed means isolates the effect
// of the lifetime *shape* on routing performance. Every Dist draws all of
// its randomness from the caller's overlay.RNG, keeping runs deterministic.
package lifetime

import (
	"fmt"
	"math"

	"rcm/overlay"
)

// Dist is a distribution over positive durations with a known mean. Sample
// must be pure given the RNG and must return positive finite values.
type Dist interface {
	// Name identifies the distribution (family plus shape), for rows/logs.
	Name() string
	// Mean returns the distribution's mean duration.
	Mean() float64
	// Sample draws one duration from rng.
	Sample(rng *overlay.RNG) float64
}

// Family is a lifetime shape with the mean left free: Dist pins it.
// Implementations must be immutable value types safe for concurrent use.
type Family interface {
	// Name identifies the family including shape parameters, e.g.
	// "pareto(α=1.5)".
	Name() string
	// Dist returns the family member with the given mean (> 0, finite).
	Dist(mean float64) (Dist, error)
}

func checkMean(family string, mean float64) error {
	if !(mean > 0) || math.IsInf(mean, 0) || math.IsNaN(mean) {
		return fmt.Errorf("lifetime: %s mean %v must be positive and finite", family, mean)
	}
	return nil
}

// Exponential is the memoryless baseline — the paper's churn-model
// assumption. Its equilibrium (residual-life) distribution equals the
// ordinary one, which is what makes the static q_eff summary exact for it.
type Exponential struct{}

// Name implements Family.
func (Exponential) Name() string { return "exp" }

// Dist implements Family.
func (Exponential) Dist(mean float64) (Dist, error) {
	if err := checkMean("exp", mean); err != nil {
		return nil, err
	}
	return expDist{mean: mean}, nil
}

type expDist struct{ mean float64 }

func (d expDist) Name() string                    { return "exp" }
func (d expDist) Mean() float64                   { return d.mean }
func (d expDist) Sample(rng *overlay.RNG) float64 { return rng.Exp(d.mean) }

// Pareto is the canonical heavy-tailed session model observed in deployed
// peer populations: survival (x_m/x)^α. Alpha must exceed 1 — at α ≤ 1 the
// mean is infinite and no member can be pinned to a finite mean. The scale
// x_m is derived from the requested mean: x_m = mean·(α−1)/α.
type Pareto struct {
	// Alpha is the tail exponent (> 1). DefaultParetoAlpha when zero.
	Alpha float64
}

// DefaultParetoAlpha is the tail exponent selected by a zero Pareto.Alpha:
// heavy-tailed (infinite variance) but with a finite mean.
const DefaultParetoAlpha = 1.5

func (p Pareto) alpha() float64 {
	if p.Alpha == 0 {
		return DefaultParetoAlpha
	}
	return p.Alpha
}

// Name implements Family.
func (p Pareto) Name() string { return fmt.Sprintf("pareto(a=%g)", p.alpha()) }

// Validate rejects tail exponents without a finite mean.
func (p Pareto) Validate() error {
	a := p.alpha()
	if math.IsNaN(a) || math.IsInf(a, 0) || a <= 1 {
		return fmt.Errorf("lifetime: pareto alpha %v must be > 1 (alpha <= 1 has an infinite mean, so no finite mean online time exists)", a)
	}
	return nil
}

// Dist implements Family.
func (p Pareto) Dist(mean float64) (Dist, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkMean("pareto", mean); err != nil {
		return nil, err
	}
	a := p.alpha()
	return paretoDist{alpha: a, xm: mean * (a - 1) / a, mean: mean}, nil
}

type paretoDist struct{ alpha, xm, mean float64 }

func (d paretoDist) Name() string  { return fmt.Sprintf("pareto(a=%g)", d.alpha) }
func (d paretoDist) Mean() float64 { return d.mean }

func (d paretoDist) Sample(rng *overlay.RNG) float64 {
	u := rng.Float64()
	// Inverse CDF x_m·(1−U)^(−1/α); guard the U→1 pole.
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return d.xm * math.Pow(1-u, -1/d.alpha)
}

// Weibull generalizes the exponential with a shape k: k < 1 is heavy-ish
// (subexponential tail, many short sessions), k = 1 is exponential, k > 1
// concentrates around the mean. The scale is derived from the mean through
// λ = mean/Γ(1+1/k).
type Weibull struct {
	// Shape is k (> 0). DefaultWeibullShape when zero.
	Shape float64
}

// DefaultWeibullShape is the shape selected by a zero Weibull.Shape — the
// stretched-exponential regime availability studies report.
const DefaultWeibullShape = 0.5

func (w Weibull) shape() float64 {
	if w.Shape == 0 {
		return DefaultWeibullShape
	}
	return w.Shape
}

// Name implements Family.
func (w Weibull) Name() string { return fmt.Sprintf("weibull(k=%g)", w.shape()) }

// Validate rejects non-positive shapes.
func (w Weibull) Validate() error {
	k := w.shape()
	if math.IsNaN(k) || math.IsInf(k, 0) || k <= 0 {
		return fmt.Errorf("lifetime: weibull shape %v must be positive", k)
	}
	return nil
}

// Dist implements Family.
func (w Weibull) Dist(mean float64) (Dist, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := checkMean("weibull", mean); err != nil {
		return nil, err
	}
	k := w.shape()
	return weibullDist{shape: k, scale: mean / math.Gamma(1+1/k), mean: mean}, nil
}

type weibullDist struct{ shape, scale, mean float64 }

func (d weibullDist) Name() string  { return fmt.Sprintf("weibull(k=%g)", d.shape) }
func (d weibullDist) Mean() float64 { return d.mean }

func (d weibullDist) Sample(rng *overlay.RNG) float64 {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return d.scale * math.Pow(-math.Log(u), 1/d.shape)
}

// Lognormal models multiplicative session dynamics: ln X ~ N(μ, σ²), with
// μ derived from the mean as μ = ln(mean) − σ²/2. Larger σ means heavier
// (though still light, sub-Pareto) tails at the same mean.
type Lognormal struct {
	// Sigma is the log-scale standard deviation (> 0).
	// DefaultLognormalSigma when zero.
	Sigma float64
}

// DefaultLognormalSigma is the σ selected by a zero Lognormal.Sigma.
const DefaultLognormalSigma = 1

func (l Lognormal) sigma() float64 {
	if l.Sigma == 0 {
		return DefaultLognormalSigma
	}
	return l.Sigma
}

// Name implements Family.
func (l Lognormal) Name() string { return fmt.Sprintf("lognormal(s=%g)", l.sigma()) }

// Validate rejects non-positive sigmas.
func (l Lognormal) Validate() error {
	s := l.sigma()
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
		return fmt.Errorf("lifetime: lognormal sigma %v must be positive", s)
	}
	return nil
}

// Dist implements Family.
func (l Lognormal) Dist(mean float64) (Dist, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if err := checkMean("lognormal", mean); err != nil {
		return nil, err
	}
	s := l.sigma()
	return lognormalDist{sigma: s, mu: math.Log(mean) - s*s/2, mean: mean}, nil
}

type lognormalDist struct{ sigma, mu, mean float64 }

func (d lognormalDist) Name() string  { return fmt.Sprintf("lognormal(s=%g)", d.sigma) }
func (d lognormalDist) Mean() float64 { return d.mean }

func (d lognormalDist) Sample(rng *overlay.RNG) float64 {
	return math.Exp(d.mu + d.sigma*rng.Normal())
}
