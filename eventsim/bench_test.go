package eventsim

import (
	"runtime"
	"strconv"
	"sync"
	"testing"

	"rcm/internal/dht"
	"rcm/internal/registry"
)

// benchConfig is a representative mid-size run: 4096 nodes, a massive
// failure mid-run, a dense lookup workload and maintenance on — every
// event kind on the hot path.
func benchConfig(shards int) Config {
	return Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 12},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.3, FailTime: 1, Rate: 20000},
		Duration: 2,
		Shards:   shards,
		Maintain: true,
		Seed:     1,
	}
}

// BenchmarkEventSim measures end-to-end engine throughput. Beyond the
// standard ns/op it reports the two numbers the BENCH_eventsim.json
// artifact tracks: events/s (simulation event throughput) and
// allocs/event (steady-state allocation discipline; the heaps, candidate
// buffers and accumulators are all reused, so this should stay well below
// one).
func BenchmarkEventSim(b *testing.B) {
	cfg := benchConfig(4)
	// Warm up once so one-time construction cost is excluded from the
	// allocation accounting.
	if _, err := Run(cfg); err != nil {
		b.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)

	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/s")
	}
	if events > 0 {
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(events), "allocs/event")
	}
	b.ReportAllocs()
}

// BenchmarkEventSimShards sweeps the shard count on the same workload:
// /1 is the inline single-wheel path, the rest exercise the persistent
// shard workers. The /4-vs-/1 events/s ratio is the scaling number
// scripts/bench.sh gates on — on parallel hardware shards must buy
// throughput; on a serial host they must at least not cost it.
func BenchmarkEventSimShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(shards), func(b *testing.B) {
			cfg := benchConfig(shards)
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/s")
			}
		})
	}
}

// BenchmarkEventSimObs measures the cost of the always-on hop/latency
// histogram accumulation: /off runs with Config.NoDist (the pre-obs
// engine), /on is the default. Both process the identical event
// sequence, so events/s compares apples to apples; scripts/bench.sh
// gates /on at >= 0.98x of /off from the same run.
func BenchmarkEventSimObs(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noDist bool
	}{{"off", true}, {"on", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := benchConfig(4)
			cfg.NoDist = mode.noDist
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/s")
			}
			b.ReportAllocs()
		})
	}
}

// BenchmarkEventSimFault measures the fault middleware's cost to runs
// that do not use it: /off is the plain transport, /noop wraps the same
// transport in a Faulty whose only clause is a partition windowed past
// the horizon — the injector is installed and consulted on every
// dispatch but never fires a coin or drops a request, so the event
// sequence is identical. scripts/bench.sh gates /noop at >= 0.98x the
// events/s of /off from the same run.
func BenchmarkEventSimFault(b *testing.B) {
	for _, mode := range []struct {
		name      string
		transport string
	}{{"off", "constant"}, {"noop", "fault:partition:2@100-101/constant"}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := benchConfig(4)
			tr, err := ParseTransport(mode.transport)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Transport = tr
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/s")
			}
			b.ReportAllocs()
		})
	}
}

// largeOverlay lazily builds the 2^20-node chord overlay the macro
// benchmark routes on, once per process: construction costs far more than
// a run and the overlay is read-only under massfail without maintenance,
// so every sub-benchmark shares it through RunOverlay.
var largeOverlay struct {
	once sync.Once
	p    registry.Protocol
	err  error
}

// BenchmarkEventSimLarge is the macro-benchmark: a million-node (2^20)
// overlay under massive failure, swept across shard counts {1,2,4,8} so
// the scaling curve at cache-hostile population sizes is a tracked
// artifact alongside the mid-size numbers.
func BenchmarkEventSimLarge(b *testing.B) {
	largeOverlay.once.Do(func() {
		largeOverlay.p, largeOverlay.err = dht.New("chord", dht.Config{Bits: 20, Seed: 1})
	})
	if largeOverlay.err != nil {
		b.Fatal(largeOverlay.err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(shards), func(b *testing.B) {
			cfg := Config{
				Protocol: "chord",
				Overlay:  OverlayConfig{Bits: 20},
				Scenario: "massfail",
				Params:   Params{FailFraction: 0.3, FailTime: 0.5, Rate: 20000},
				Duration: 1,
				Buckets:  4,
				Shards:   shards,
				Seed:     1,
			}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunOverlay(largeOverlay.p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/s")
			}
		})
	}
}

// churnBenchConfig is the timer-dominated workload the timing-wheel
// rewrite targets: every node cycles through exponential sessions, with
// periodic stabilization and join maintenance — the pending set is large
// (the whole pre-scheduled lifecycle plus per-node timers) and almost
// every event arms another timer.
func churnBenchConfig(scheduler string) Config {
	return Config{
		Protocol:       "chord",
		Overlay:        OverlayConfig{Bits: 12},
		Scenario:       "churn",
		Params:         Params{MeanOnline: 1, MeanOffline: 0.25, Rate: 20000},
		Duration:       2,
		Shards:         4,
		Maintain:       true,
		StabilizeEvery: 0.25,
		Seed:           1,
		Scheduler:      scheduler,
	}
}

// BenchmarkEventSimScheduler contrasts the two eventQueue implementations
// on the churn-heavy scenario. The two sub-benchmarks process the *same*
// event sequence (results are bit-identical across schedulers), so their
// events/s compare apples to apples; CI's benchcmp step asserts the wheel
// is no slower than the heap baseline from the same run's artifact.
func BenchmarkEventSimScheduler(b *testing.B) {
	for _, scheduler := range []string{SchedulerWheel, SchedulerHeap} {
		b.Run(scheduler, func(b *testing.B) {
			cfg := churnBenchConfig(scheduler)
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/s")
			}
			b.ReportAllocs()
		})
	}
}
