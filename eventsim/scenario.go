package eventsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"rcm/eventsim/lifetime"
	"rcm/overlay"
	"rcm/replica"
)

// Params is the flat knob set shared by the scenario library. Every field
// has a usable default (selected by zero); a scenario reads the fields it
// cares about and ignores the rest, so one Params value configures any
// registered scenario. User scenarios are free to reinterpret fields.
type Params struct {
	// Rate is the aggregate lookup arrival rate: lookups per time unit
	// across the whole overlay (default 500).
	Rate float64
	// ZipfS skews lookup targets: 0 (default) is uniform; s > 0 draws
	// targets from a Zipf(s) rank distribution over a random permutation
	// of the identifier space.
	ZipfS float64

	// FailFraction is the fraction of nodes that fail (massfail,
	// correlated). Unlike the other knobs it has no non-zero default:
	// zero fails nothing, making q = 0 runs directly expressible.
	FailFraction float64
	// FailTime is when the failure hits (default 30% of the duration).
	FailTime float64
	// Regions is the number of contiguous identifier regions the
	// correlated scenario kills (default 4).
	Regions int

	// MeanOnline and MeanOffline are the churn scenario's exponential
	// session parameters (defaults 1 and 0.25, the churn engine's).
	MeanOnline, MeanOffline float64

	// CrowdStart, CrowdDuration and CrowdFactor shape the flashcrowd: at
	// CrowdStart (default 30% of duration) the arrival rate multiplies by
	// CrowdFactor (default 10) for CrowdDuration (default 20% of the
	// duration), with a fraction Hot (default 0.8) of crowd lookups aimed
	// at one hot key.
	CrowdStart, CrowdDuration, CrowdFactor float64
	// Hot is the fraction of crowd-window lookups addressed to the hot key.
	Hot float64

	// Lifetime and Downtime select the session/downtime distribution
	// families of the lifetime-model scenarios (heavytail, diurnal,
	// tracechurn), as rcm/eventsim/lifetime Parse specs: "exp",
	// "pareto[:alpha]", "weibull[:shape]", "lognormal[:sigma]",
	// "trace:<file>". The scenario pins the family to MeanOnline /
	// MeanOffline, so families compare at equal mean online time. Empty
	// selects each scenario's documented default.
	Lifetime, Downtime string
	// DiurnalPeriod and DiurnalAmplitude shape the diurnal scenario:
	// session means drawn at time t are modulated by
	// 1 ± DiurnalAmplitude·sin(2πt/DiurnalPeriod) — online sessions
	// lengthen at the daily peak exactly when offline stretches shorten.
	// Defaults: period = half the duration, amplitude 0.6; the amplitude
	// must stay in [0, 1).
	DiurnalPeriod, DiurnalAmplitude float64

	// Replicas is the key replication factor k, a knob that rides on every
	// scenario rather than belonging to one: each key's copies live on the
	// k owners rcm/replica places for its root, a lookup succeeds when it
	// reaches any surviving owner (failing over in placement order), and
	// every churn toggle charges re-replication repair traffic. 0 and 1
	// both mean no replication; the cap is replica.MaxReplicas.
	Replicas int
}

// withDefaults fills zero fields with the documented defaults. Only an
// exact zero selects a default: negative and non-finite values are left
// in place so Validate rejects them descriptively instead of a bad knob
// silently becoming a default and producing a degenerate schedule.
func (p Params) withDefaults(duration float64) Params {
	if p.Rate == 0 {
		p.Rate = 500
	}
	if p.FailTime == 0 {
		p.FailTime = 0.3 * duration
	}
	if p.Regions == 0 {
		p.Regions = 4
	}
	if p.MeanOnline == 0 {
		p.MeanOnline = 1
	}
	if p.MeanOffline == 0 {
		p.MeanOffline = 0.25
	}
	if p.CrowdStart == 0 {
		p.CrowdStart = 0.3 * duration
	}
	if p.CrowdDuration == 0 {
		p.CrowdDuration = 0.2 * duration
	}
	if p.CrowdFactor == 0 {
		p.CrowdFactor = 10
	}
	if p.Hot == 0 {
		p.Hot = 0.8
	}
	if p.DiurnalPeriod == 0 {
		p.DiurnalPeriod = 0.5 * duration
	}
	if p.DiurnalAmplitude == 0 {
		p.DiurnalAmplitude = 0.6
	}
	return p
}

// Validate rejects parameter values outside their documented domains.
// Zero values are always allowed — they select the defaults.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Rate", p.Rate}, {"ZipfS", p.ZipfS}, {"FailTime", p.FailTime},
		{"MeanOnline", p.MeanOnline}, {"MeanOffline", p.MeanOffline},
		{"CrowdStart", p.CrowdStart}, {"CrowdDuration", p.CrowdDuration},
		{"CrowdFactor", p.CrowdFactor},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("eventsim: %s = %v must be a finite value >= 0 (zero selects the default)", f.name, f.v)
		}
	}
	if p.FailFraction < 0 || p.FailFraction > 1 || math.IsNaN(p.FailFraction) {
		return fmt.Errorf("eventsim: FailFraction = %v out of [0,1]", p.FailFraction)
	}
	if p.Hot < 0 || p.Hot > 1 || math.IsNaN(p.Hot) {
		return fmt.Errorf("eventsim: Hot = %v out of [0,1]", p.Hot)
	}
	if p.Regions < 0 {
		return fmt.Errorf("eventsim: Regions = %d must be >= 0", p.Regions)
	}
	if p.DiurnalPeriod < 0 || math.IsNaN(p.DiurnalPeriod) || math.IsInf(p.DiurnalPeriod, 0) {
		return fmt.Errorf("eventsim: DiurnalPeriod = %v must be a finite value >= 0 (zero selects the default)", p.DiurnalPeriod)
	}
	if p.DiurnalAmplitude < 0 || p.DiurnalAmplitude >= 1 || math.IsNaN(p.DiurnalAmplitude) {
		return fmt.Errorf("eventsim: DiurnalAmplitude = %v out of [0,1) — an amplitude of 1 or more drives session means to zero or negative", p.DiurnalAmplitude)
	}
	if err := replica.ValidateK(p.Replicas); err != nil {
		return fmt.Errorf("eventsim: Replicas: %w", err)
	}
	for _, f := range []struct {
		name, spec string
	}{{"Lifetime", p.Lifetime}, {"Downtime", p.Downtime}} {
		if f.spec == "" {
			continue
		}
		// Trace specs are checked for shape only: the scenario factory
		// loads the file exactly once at construction, so parsing it here
		// too would double the I/O and open a window for the file to
		// change between validation and use.
		if fam, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(f.spec)), ":"); fam == "trace" {
			if strings.TrimSpace(arg) == "" {
				return fmt.Errorf("eventsim: %s: lifetime: trace requires a file path, e.g. trace:sessions.txt", f.name)
			}
			continue
		}
		if _, err := ParseLifetime(f.spec); err != nil {
			return fmt.Errorf("eventsim: %s: %w", f.name, err)
		}
	}
	return nil
}

// EffectiveOffline returns the steady-state offline fraction the named
// scenario converges to after its disturbance — the static model's
// equivalent failure probability q_eff, used by rcm/exp to place analytic
// and static-simulation comparison columns next to event measurements.
// Scenarios without failures (flashcrowd, zipf, unknown names) return 0.
func (p Params) EffectiveOffline(scenario string, duration float64) float64 {
	p = p.withDefaults(duration)
	// Resolve aliases (fail, daily, pareto-churn, trace-replay, ...) to
	// canonical names so every accepted spelling yields the same q_eff.
	if canon, ok := CanonicalScenario(scenario); ok {
		scenario = canon
	}
	switch strings.ToLower(strings.TrimSpace(scenario)) {
	case "massfail", "correlated":
		if p.FailTime > duration {
			return 0
		}
		// For correlated this is the *requested* failure mass: the
		// independently-placed regions can overlap, so the realized
		// offline fraction is at most FailFraction (the expected union is
		// 1-(1-FailFraction/Regions)^Regions). The comparison columns
		// treat the requested mass as q_eff, matching how the scenario is
		// parameterized.
		return p.FailFraction
	case "churn", "heavytail", "tracechurn":
		// The long-run offline fraction of an on/off renewal process is
		// E[off]/(E[on]+E[off]) for *any* session-time distribution with
		// finite means (renewal-reward), so q_eff is shared by every
		// lifetime family at equal means — which is exactly what makes the
		// heavy-tail deviations the equilibrium conformance suite measures
		// attributable to the lifetime shape, not to a different q_eff.
		return p.MeanOffline / (p.MeanOnline + p.MeanOffline)
	case "diurnal":
		// The modulation does not average out: the instantaneous offline
		// fraction q(t) = off(t)/(on(t)+off(t)) is nonlinear in the
		// oppositely-modulated means, so by Jensen the period average
		// exceeds the unmodulated ratio. Integrate q(t) over one period
		// numerically — the quasi-static approximation, exact in the
		// fast-churn limit where sessions are short against the period.
		a := p.DiurnalAmplitude
		const steps = 512
		sum := 0.0
		for i := 0; i < steps; i++ {
			s := math.Sin(2 * math.Pi * float64(i) / steps)
			on := p.MeanOnline * (1 + a*s)
			off := p.MeanOffline * (1 - a*s)
			sum += off / (on + off)
		}
		return sum / steps
	default:
		return 0
	}
}

// Env is the scheduling surface a Scenario programs against: node
// lifecycle (initial state, failures, joins, churn processes) and workload
// (lookups). All methods must be called from Program, before the run
// starts; events scheduled outside [0, Duration] are rejected with an
// error from Run. The RNG is the scenario's own deterministic stream.
type Env struct {
	nodes    int
	duration float64
	params   Params
	rng      *overlay.RNG

	initialOffline []bool
	toggles        []scheduledToggle
	lookups        []scheduledLookup
	err            error
}

type scheduledToggle struct {
	t    float64
	node uint32
	up   bool
}

type scheduledLookup struct {
	t        float64
	src, dst uint32
}

// Nodes returns the overlay population N = 2^bits.
func (env *Env) Nodes() int { return env.nodes }

// Duration returns the total simulated time.
func (env *Env) Duration() float64 { return env.duration }

// Params returns the run's scenario parameters with defaults applied.
func (env *Env) Params() Params { return env.params }

// RNG returns the scenario's deterministic random stream.
func (env *Env) RNG() *overlay.RNG { return env.rng }

func (env *Env) checkNode(node int) bool {
	if node < 0 || node >= env.nodes {
		env.fail(fmt.Errorf("node %d out of [0,%d)", node, env.nodes))
		return false
	}
	return true
}

func (env *Env) checkTime(t float64) bool {
	if t < 0 || t > env.duration || math.IsNaN(t) {
		env.fail(fmt.Errorf("event time %v out of [0,%v]", t, env.duration))
		return false
	}
	return true
}

func (env *Env) fail(err error) {
	if env.err == nil {
		env.err = err
	}
}

// SetOffline makes node start the run offline (all nodes start online by
// default).
func (env *Env) SetOffline(node int) {
	if env.checkNode(node) {
		env.initialOffline[node] = true
	}
}

// FailAt schedules node to go offline at time t.
func (env *Env) FailAt(t float64, node int) {
	if env.checkTime(t) && env.checkNode(node) {
		env.toggles = append(env.toggles, scheduledToggle{t: t, node: uint32(node), up: false})
	}
}

// JoinAt schedules node to come online at time t (triggering Maintainer
// join maintenance when the run has maintenance enabled).
func (env *Env) JoinAt(t float64, node int) {
	if env.checkTime(t) && env.checkNode(node) {
		env.toggles = append(env.toggles, scheduledToggle{t: t, node: uint32(node), up: true})
	}
}

// ChurnNode gives node an exponential on/off lifecycle over the whole run:
// the initial state is drawn from the steady-state online fraction, and
// alternating sessions are pre-scheduled until the duration is covered.
// Because the exponential is memoryless, the resulting process is exactly
// stationary — the equilibrium regime the paper's churn model assumes.
func (env *Env) ChurnNode(node int, meanOnline, meanOffline float64) {
	if meanOnline <= 0 || meanOffline <= 0 {
		env.fail(fmt.Errorf("churn means (%v, %v) must be positive", meanOnline, meanOffline))
		return
	}
	// The exponential Dist consumes exactly one rng.Exp per session, so
	// delegating keeps the RNG stream — and therefore every existing churn
	// run — bit-identical.
	on, err := lifetime.Exponential{}.Dist(meanOnline)
	if err != nil {
		env.fail(err)
		return
	}
	off, err := lifetime.Exponential{}.Dist(meanOffline)
	if err != nil {
		env.fail(err)
		return
	}
	env.ChurnNodeDist(node, on, off)
}

// ChurnNodeDist is ChurnNode generalized over lifetime distributions: an
// alternating renewal process whose online sessions and offline stretches
// are drawn from arbitrary positive-duration distributions (see
// rcm/eventsim/lifetime). The initial state is Bernoulli on the
// steady-state online fraction E[on]/(E[on]+E[off]); the first interval is
// drawn from the ordinary (not the equilibrium residual-life)
// distribution, so heavy-tailed processes start *out* of equilibrium —
// deliberately: the slow relaxation toward the renewal-reward steady state
// is precisely the dynamics the static q_eff summary cannot see, and the
// equilibrium conformance suite measures that gap.
func (env *Env) ChurnNodeDist(node int, online, offline lifetime.Dist) {
	if !env.checkNode(node) {
		return
	}
	if online == nil || offline == nil {
		env.fail(fmt.Errorf("churn lifetime distributions must be non-nil"))
		return
	}
	mOn, mOff := online.Mean(), offline.Mean()
	if !(mOn > 0) || !(mOff > 0) || math.IsInf(mOn, 0) || math.IsInf(mOff, 0) {
		env.fail(fmt.Errorf("churn means (%v, %v) must be positive and finite", mOn, mOff))
		return
	}
	on := env.rng.Bernoulli(mOn / (mOn + mOff))
	if !on {
		env.SetOffline(node)
	}
	env.churnSchedule(node, on, func(on bool, _ float64) (float64, string) {
		if on {
			return online.Sample(env.rng), online.Name()
		}
		return offline.Sample(env.rng), offline.Name()
	})
}

// churnSchedule drives one node's alternating renewal lifecycle: draw is
// called with the current state and the session's start time and returns
// the next duration plus a label for errors. It is the shared guarded
// loop under ChurnNodeDist and the diurnal scenario's time-modulated
// variant — a non-positive or NaN duration (a misbehaving lifetime
// implementation) fails the schedule descriptively instead of spinning
// or silently truncating the node's lifecycle.
func (env *Env) churnSchedule(node int, on bool, draw func(on bool, t float64) (float64, string)) {
	t := 0.0
	for t <= env.duration {
		d, name := draw(on, t)
		if !(d > 0) || math.IsNaN(d) || math.IsInf(d, 0) {
			env.fail(fmt.Errorf("lifetime %s sampled a non-positive duration %v for node %d", name, d, node))
			return
		}
		t += d
		if t > env.duration {
			break
		}
		if on {
			env.FailAt(t, node)
		} else {
			env.JoinAt(t, node)
		}
		on = !on
	}
}

// LookupAt schedules a lookup from src for the key owned by dst, starting
// at time t. Lookups whose source or destination is offline at start time
// are recorded as skipped, mirroring the static model's conditioning on
// surviving pairs.
func (env *Env) LookupAt(t float64, src, dst int) {
	if env.checkTime(t) && env.checkNode(src) && env.checkNode(dst) {
		if src == dst {
			env.fail(fmt.Errorf("lookup src == dst == %d", src))
			return
		}
		env.lookups = append(env.lookups, scheduledLookup{t: t, src: uint32(src), dst: uint32(dst)})
	}
}

// PoissonLookups schedules lookups with exponential inter-arrival gaps of
// aggregate rate over [from, to), drawing sources uniformly and targets
// from targetOf (nil means uniform). It is the workload helper the
// built-in scenarios share.
func (env *Env) PoissonLookups(from, to, rate float64, targetOf func(rng *overlay.RNG) int) {
	if rate <= 0 || to <= from {
		return
	}
	for t := from + env.rng.Exp(1/rate); t < to; t += env.rng.Exp(1 / rate) {
		src := env.rng.Intn(env.nodes)
		var dst int
		if targetOf != nil {
			dst = targetOf(env.rng)
		} else {
			dst = env.rng.Intn(env.nodes)
		}
		// Redraw a src==dst collision from the same target distribution,
		// so skewed workloads stay skewed; fall back to uniform after a
		// few tries in case targetOf is a point mass on src.
		for tries := 0; dst == src; tries++ {
			if targetOf != nil && tries < 16 {
				dst = targetOf(env.rng)
			} else {
				dst = env.rng.Intn(env.nodes)
			}
		}
		env.LookupAt(t, src, dst)
	}
}

// ZipfTargets returns a target sampler with rank distribution Zipf(s) over
// a random permutation of the identifier space (s = 0 degenerates to
// uniform). The permutation decouples popularity rank from identifier
// structure, so hot keys land anywhere on the ring.
func (env *Env) ZipfTargets(s float64) func(rng *overlay.RNG) int {
	if s <= 0 {
		return nil
	}
	perm := make([]int32, env.nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := env.nodes - 1; i > 0; i-- {
		j := env.rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Cumulative rank weights 1/(r+1)^s, normalized.
	cdf := make([]float64, env.nodes)
	sum := 0.0
	for r := 0; r < env.nodes; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return func(rng *overlay.RNG) int {
		u := rng.Float64()
		r := sort.SearchFloat64s(cdf, u)
		if r >= env.nodes {
			r = env.nodes - 1
		}
		return int(perm[r])
	}
}

// Scenario drives one event-simulation run: Program schedules the node
// lifecycle and the lookup workload against the Env before the clock
// starts. Implementations must derive all randomness from env.RNG() so
// runs stay deterministic, and must not retain env.
type Scenario interface {
	// Name returns the scenario's registered name.
	Name() string
	// Program schedules the scenario's events.
	Program(env *Env) error
}

// ScenarioFactory builds a scenario from run parameters (already
// defaulted). Factories run once per eventsim.Run.
type ScenarioFactory func(p Params) (Scenario, error)

// The scenario registry mirrors the geometry/protocol registries: a
// case-insensitive name-keyed table with registration-order listing. Each
// key remembers its canonical name so aliases resolve everywhere,
// including q_eff computation.
type scenarioEntry struct {
	canonical string
	factory   ScenarioFactory
}

var scenarios = struct {
	mu    sync.RWMutex
	order []string
	index map[string]scenarioEntry
}{index: map[string]scenarioEntry{}}

// RegisterScenario adds a scenario factory under a canonical name plus
// optional aliases. Names are case-insensitive; a taken or empty name is
// an error.
func RegisterScenario(name string, f ScenarioFactory, aliases ...string) error {
	if f == nil {
		return fmt.Errorf("eventsim: scenario %q has nil factory", name)
	}
	keys := make([]string, 0, 1+len(aliases))
	for _, n := range append([]string{name}, aliases...) {
		k := strings.ToLower(strings.TrimSpace(n))
		if k == "" {
			return fmt.Errorf("eventsim: empty scenario name")
		}
		keys = append(keys, k)
	}
	scenarios.mu.Lock()
	defer scenarios.mu.Unlock()
	for i, k := range keys {
		if _, taken := scenarios.index[k]; taken {
			what := "name"
			if i > 0 {
				what = "alias"
			}
			return fmt.Errorf("eventsim: scenario %s %q already registered", what, k)
		}
		for _, prev := range keys[:i] {
			if prev == k {
				return fmt.Errorf("eventsim: scenario %q aliases itself", k)
			}
		}
	}
	for _, k := range keys {
		scenarios.index[k] = scenarioEntry{canonical: keys[0], factory: f}
	}
	scenarios.order = append(scenarios.order, keys[0])
	return nil
}

// LookupScenario resolves a scenario factory by name or alias.
func LookupScenario(name string) (ScenarioFactory, bool) {
	scenarios.mu.RLock()
	defer scenarios.mu.RUnlock()
	e, ok := scenarios.index[strings.ToLower(strings.TrimSpace(name))]
	return e.factory, ok
}

// CanonicalScenario resolves a scenario name or alias to its canonical
// registered name (ok is false for unknown names).
func CanonicalScenario(name string) (string, bool) {
	scenarios.mu.RLock()
	defer scenarios.mu.RUnlock()
	e, ok := scenarios.index[strings.ToLower(strings.TrimSpace(name))]
	return e.canonical, ok
}

// ScenarioNames returns the canonical scenario names in registration order
// (the built-in five first, user registrations after).
func ScenarioNames() []string {
	scenarios.mu.RLock()
	defer scenarios.mu.RUnlock()
	out := make([]string, len(scenarios.order))
	copy(out, scenarios.order)
	return out
}

func scenarioKeys() []string {
	scenarios.mu.RLock()
	defer scenarios.mu.RUnlock()
	out := make([]string, 0, len(scenarios.index))
	for k := range scenarios.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
