package eventsim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"rcm/overlay"
	"rcm/spec"
)

// Transport models the network between nodes: every message send samples a
// one-way latency and a delivery verdict. Implementations must be pure
// given the RNG (all randomness drawn from it), and must report finite
// positive latency bounds — MinLatency is the engine's conservative
// lookahead (the sharded event wheels advance in epochs of that length),
// and MaxLatency bounds the retransmission timeout so a timeout never
// fires before a genuinely-delivered acknowledgement could have arrived.
type Transport interface {
	// Name identifies the model in logs and rows.
	Name() string
	// MinLatency returns a positive lower bound on sampled latencies.
	MinLatency() float64
	// MaxLatency returns a finite upper bound on sampled latencies.
	MaxLatency() float64
	// Sample returns the one-way latency of a message and whether it is
	// delivered at all.
	Sample(rng *overlay.RNG) (latency float64, delivered bool)
}

// DefaultLatency is the constant-transport latency used when no transport
// is configured: 50 ms in the engine's unit of seconds.
const DefaultLatency = 0.05

// Constant is the fixed-latency, lossless transport.
type Constant struct {
	// Latency is the one-way message latency (DefaultLatency when zero).
	Latency float64
}

// Name implements Transport.
func (c Constant) Name() string { return "constant" }

func (c Constant) latency() float64 {
	if c.Latency <= 0 {
		return DefaultLatency
	}
	return c.Latency
}

// MinLatency implements Transport.
func (c Constant) MinLatency() float64 { return c.latency() }

// MaxLatency implements Transport.
func (c Constant) MaxLatency() float64 { return c.latency() }

// Sample implements Transport.
func (c Constant) Sample(*overlay.RNG) (float64, bool) { return c.latency(), true }

// Empirical samples latencies from a fixed quantile table — by default a
// King-style wide-area RTT profile — scaled so its median matches Median.
// Sampling inverts the empirical CDF with linear interpolation between
// quantile knots, so the distribution is continuous, bounded, and cheap.
type Empirical struct {
	// Median scales the profile; zero selects DefaultLatency.
	Median float64
	// Quantiles optionally replaces the built-in profile: ascending
	// latencies at evenly-spaced CDF knots from 0 to 1 (at least two, all
	// positive). The slice is normalized so its median knot equals 1.
	Quantiles []float64
}

// kingProfile is the built-in wide-area latency shape, normalized to a
// median of 1: a fast same-continent floor, a wide middle, and a heavy
// intercontinental tail (11 knots at CDF 0, 0.1, …, 1).
var kingProfile = []float64{0.3, 0.5, 0.65, 0.8, 0.9, 1, 1.15, 1.35, 1.7, 2.4, 4}

func (e Empirical) profile() []float64 {
	if len(e.Quantiles) >= 2 {
		return e.Quantiles
	}
	return kingProfile
}

func (e Empirical) scale() float64 {
	med := e.Median
	if med <= 0 {
		med = DefaultLatency
	}
	p := e.profile()
	mid := p[len(p)/2]
	if len(p)%2 == 0 {
		mid = (p[len(p)/2-1] + p[len(p)/2]) / 2
	}
	return med / mid
}

// Name implements Transport.
func (e Empirical) Name() string { return "empirical" }

// MinLatency implements Transport.
func (e Empirical) MinLatency() float64 { return e.scale() * e.profile()[0] }

// MaxLatency implements Transport.
func (e Empirical) MaxLatency() float64 {
	p := e.profile()
	return e.scale() * p[len(p)-1]
}

// Sample implements Transport: inverse-CDF with linear interpolation.
func (e Empirical) Sample(rng *overlay.RNG) (float64, bool) {
	p := e.profile()
	u := rng.Float64() * float64(len(p)-1)
	i := int(u)
	if i >= len(p)-1 {
		i = len(p) - 2
	}
	frac := u - float64(i)
	return e.scale() * (p[i] + frac*(p[i+1]-p[i])), true
}

// validateEmpirical rejects profiles the engine cannot bound.
func validateEmpirical(e Empirical) error {
	if e.Median < 0 || math.IsNaN(e.Median) || math.IsInf(e.Median, 0) {
		return fmt.Errorf("eventsim: empirical median %v must be a finite value >= 0 (zero selects the default)", e.Median)
	}
	p := e.profile()
	if !sort.Float64sAreSorted(p) {
		return fmt.Errorf("eventsim: empirical quantiles %v must be ascending", p)
	}
	for _, v := range p {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("eventsim: empirical quantile %v must be a positive finite value", v)
		}
	}
	return nil
}

// Lossy wraps another transport and drops each message independently with
// probability Rate. Only forward (request) messages traverse the lossy
// path in the engine; acknowledgements are modeled reliable, which keeps a
// lookup from ever being duplicated in flight (see the engine doc).
type Lossy struct {
	// Inner is the underlying latency model (Constant{} when nil).
	Inner Transport
	// Rate is the independent per-message loss probability in [0,1]; 1
	// is a total blackhole (every lookup times out and fails — useful
	// for worst-case and invariant tests).
	Rate float64
}

func (l Lossy) inner() Transport {
	if l.Inner == nil {
		return Constant{}
	}
	return l.Inner
}

// Name implements Transport.
func (l Lossy) Name() string { return "lossy+" + l.inner().Name() }

// MinLatency implements Transport.
func (l Lossy) MinLatency() float64 { return l.inner().MinLatency() }

// MaxLatency implements Transport.
func (l Lossy) MaxLatency() float64 { return l.inner().MaxLatency() }

// Sample implements Transport.
func (l Lossy) Sample(rng *overlay.RNG) (float64, bool) {
	lat, ok := l.inner().Sample(rng)
	if !ok {
		return lat, false
	}
	// Sampling order matters for determinism: latency first, then the loss
	// coin, so lossless and lossy runs share latency streams.
	return lat, !rng.Bernoulli(l.Rate)
}

// validateTransport checks the bounds the engine's sharding and timeout
// logic rely on.
func validateTransport(tr Transport) error {
	if c, ok := tr.(Constant); ok && c.Latency < 0 {
		return fmt.Errorf("eventsim: constant latency %v must be >= 0 (zero selects the default)", c.Latency)
	}
	if e, ok := tr.(Empirical); ok {
		if err := validateEmpirical(e); err != nil {
			return err
		}
	}
	if l, ok := tr.(Lossy); ok {
		if l.Rate < 0 || l.Rate > 1 || math.IsNaN(l.Rate) {
			return fmt.Errorf("eventsim: loss rate %v out of [0,1]", l.Rate)
		}
		if containsFaulty(l.inner()) {
			return fmt.Errorf("eventsim: fault transport must be outermost (wrap %s inside fault:<plan>/... instead)", l.inner().Name())
		}
		return validateTransport(l.inner())
	}
	if f, ok := tr.(Faulty); ok {
		if f.Plan.Empty() {
			return fmt.Errorf("eventsim: fault transport has an empty plan")
		}
		if err := f.Plan.Validate(); err != nil {
			return err
		}
		if containsFaulty(f.inner()) {
			return fmt.Errorf("eventsim: fault transport cannot nest another fault transport")
		}
		return validateTransport(f.inner())
	}
	lo, hi := tr.MinLatency(), tr.MaxLatency()
	switch {
	case !(lo > 0) || math.IsInf(lo, 0):
		return fmt.Errorf("eventsim: transport %s MinLatency %v must be positive and finite", tr.Name(), lo)
	case !(hi >= lo) || math.IsInf(hi, 0):
		return fmt.Errorf("eventsim: transport %s MaxLatency %v must be finite and >= MinLatency %v", tr.Name(), hi, lo)
	}
	return nil
}

// transports is the name-keyed transport table — an instance of the
// module's one registry-style spec grammar (rcm/spec): case-insensitive,
// alias-aware, collision-checked, with unknown names erroring against the
// sorted list of every accepted spelling.
var transports = spec.New[Transport]("eventsim", "transport")

func init() {
	transports.MustRegister("constant", func(arg string) (Transport, error) {
		c := Constant{}
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("eventsim: constant latency %q: %v", arg, err)
			}
			c.Latency = v
		}
		return c, validateTransport(c)
	}, "const")
	transports.MustRegister("empirical", func(arg string) (Transport, error) {
		e := Empirical{}
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("eventsim: empirical median %q: %v", arg, err)
			}
			e.Median = v
		}
		return e, validateTransport(e)
	}, "king")
	transports.MustRegister("lossy", func(arg string) (Transport, error) {
		l := Lossy{}
		rateStr, innerStr, _ := strings.Cut(arg, ":")
		if rateStr != "" {
			v, err := strconv.ParseFloat(rateStr, 64)
			if err != nil {
				return nil, fmt.Errorf("eventsim: loss rate %q: %v", rateStr, err)
			}
			l.Rate = v
		}
		if innerStr != "" {
			inner, err := ParseTransport(innerStr)
			if err != nil {
				return nil, err
			}
			if _, nested := inner.(Lossy); nested {
				return nil, fmt.Errorf("eventsim: lossy transport cannot nest another lossy transport")
			}
			l.Inner = inner
		}
		return l, validateTransport(l)
	})
	if err := transports.SetDefault("constant"); err != nil {
		panic(err) // constant was just registered; unreachable
	}
}

// RegisterTransport adds a transport factory under a canonical name plus
// optional aliases, with the same naming rules as every other registry in
// the module. The factory receives the argument text after the first ':'
// and must validate its result (validateTransport is applied to whatever
// the factory returns before the engine runs it). Registered transports
// resolve through ParseTransport everywhere the built-ins do, including
// the cmd/eventsim -transport flag and exp event settings.
func RegisterTransport(name string, f func(arg string) (Transport, error), aliases ...string) error {
	return transports.Register(name, f, aliases...)
}

// TransportNames returns the canonical transport names in registration
// order (the built-in three first, user registrations after).
func TransportNames() []string { return transports.Names() }

// ParseTransport builds a transport from its CLI spelling:
//
//	constant[:latency]
//	empirical[:median]
//	lossy[:rate[:inner]]       e.g. lossy:0.05:empirical:0.08
//
// plus anything added through RegisterTransport. Numbers are in the
// engine's time unit (seconds); the empty spec selects the default
// constant model.
func ParseTransport(s string) (Transport, error) {
	return transports.Parse(s)
}

// TransportSpec renders a transport as a canonical ParseTransport spelling
// — the inverse the round-trip suite checks (Transport.Name is a display
// label, not a spec: a Lossy names itself "lossy+constant"). Transports
// registered outside this package fall back to their Name, which
// registrants should keep parseable.
func TransportSpec(tr Transport) string {
	switch v := tr.(type) {
	case Constant:
		return fmt.Sprintf("constant:%g", v.latency())
	case Empirical:
		med := v.Median
		if med <= 0 {
			med = DefaultLatency
		}
		return fmt.Sprintf("empirical:%g", med)
	case Lossy:
		return fmt.Sprintf("lossy:%g:%s", v.Rate, TransportSpec(v.inner()))
	case Faulty:
		return fmt.Sprintf("fault:%s/%s", v.Plan.String(), TransportSpec(v.inner()))
	default:
		return tr.Name()
	}
}
