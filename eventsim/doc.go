// Package eventsim is the framework's fourth modeling layer: a
// discrete-event, message-level simulator in which registry protocols run
// real lookup dynamics — hop-by-hop request forwarding, acknowledgements,
// retransmission timeouts, joins and periodic stabilization — over a
// pluggable network transport, driven by a name-registered scenario
// library.
//
// Where the analytic layer (package rcm) evaluates closed forms and the
// graph layer (internal/sim) routes on a static failure pattern with
// global knowledge, eventsim gives every node only what a real node has:
// its own routing table and the evidence of timeouts. A forwarding node
// picks its best candidate (registry.Forwarder order), waits for an
// acknowledgement, and falls through to the next candidate when the
// timeout fires. With churn disabled and a lossless transport, the set of
// pairs that complete is exactly the set the static greedy model routes —
// the cross-validation test in crossvalidate_test.go enforces agreement —
// so everything the event layer adds (latency, loss, churn races,
// maintenance traffic) is measured against a validated baseline.
//
// # Engine design
//
// The engine is goroutine-frugal at the simulation level: no goroutine
// per node or per message — one persistent worker per shard, and none at
// all on serial hardware. The population is interleaved across a small
// number of shards (node % Shards), each owning an event queue (a
// hierarchical timing wheel by default; see Config.Scheduler), a
// deterministic splitmix64 RNG stream, its nodes' online flags and
// routing-table rows, a slice-backed free-list arena of in-flight forward
// attempts, and per-bucket metric accumulators. Every mutable per-node or
// per-attempt datum lives in its owner shard's own allocations rather
// than in globally interleaved arrays, so two shards never write the same
// cache line; the only shared mutable engine state — the alive-snapshot
// bitset and the lookup table — is written exclusively between epochs.
//
// Virtual time advances in epochs of one "lookahead" — the transport's
// minimum latency. Worker goroutines are spawned once per run and parked
// on a channel barrier: each epoch the coordinator releases every worker
// with the epoch boundary, the workers drain their local queues
// concurrently, and the coordinator joins them before running the
// barrier. (With one shard, or GOMAXPROCS=1, the shards are drained
// inline in shard order instead — bit-identical by construction, since
// shards touch disjoint mutable state within an epoch.) At the barrier,
// node lifecycle changes are folded into the global alive-snapshot
// bitset, and cross-shard messages (which always carry at least one
// lookahead of latency, so they can never arrive inside the epoch that
// sent them) are delivered by bulk-pushing each source shard's outbox, in
// source-shard order, into the destination queue. No sorting happens at
// the barrier: queue order is (arrival time, push sequence), so push
// order only decides ties between equal-time events, and sequential
// per-source delivery reproduces exactly the tie order — send order
// within a source, source-shard order across sources — that a stable
// sort by arrival time over the concatenated outboxes would have
// produced, at none of its cost.
//
// The snapshot is frozen during an epoch, which makes the one view remote
// nodes have of the population (used by lookup conditioning and
// maintenance) both deterministic and realistically stale. A lookup's
// schedule-time identity (endpoints, start time, accounting bucket) is
// read-only for the whole run; its travelling state — the hop count —
// rides inside the request messages, so ownership of a lookup passes from
// shard to shard with the message and no per-lookup record is ever
// written concurrently. Results are bit-identical for a fixed
// (Seed, Shards) pair regardless of scheduler choice, GOMAXPROCS, and how
// the host schedules the shard workers.
//
// Acknowledgements are modeled reliable (loss applies to requests), and
// the retransmission timeout must exceed the worst-case round trip, so a
// timeout never fires for a hop that actually succeeded: a lookup is
// never duplicated in flight. Each forward attempt occupies an arena slot
// addressed by the attempt id its request, acknowledgement and timeout
// events carry; the slot is recycled when the attempt's timeout event
// fires — every attempt schedules exactly one, and any acknowledgement
// provably precedes it — so slot indices are safe to reuse without
// generation tags and steady-state forwarding allocates nothing. The slot
// also stashes the chosen next hop, so retransmissions to the same
// candidate skip the Forwarder's candidate enumeration entirely.
//
// # Defining a custom Scenario
//
// A Scenario programs the run before the clock starts: it sets initial
// node states, schedules failures, joins and churn processes, and lays
// out the lookup workload. Implement the two-method interface and
// register a factory; the name then resolves everywhere the built-ins do
// (eventsim.Run, rcm/exp event plans, the cmd/eventsim -scenario flag).
//
// A minimal "blackout" scenario — a full-region outage that heals after a
// while, under a steady uniform workload:
//
//	type blackout struct{ p eventsim.Params }
//
//	func (b blackout) Name() string { return "blackout" }
//
//	func (b blackout) Program(env *eventsim.Env) error {
//		p := env.Params()
//		n := env.Nodes()
//		// Fail one contiguous quarter of the identifier space at
//		// FailTime, and bring it back halfway to the horizon.
//		start := env.RNG().Intn(n)
//		heal := (p.FailTime + env.Duration()) / 2
//		for i := 0; i < n/4; i++ {
//			env.FailAt(p.FailTime, (start+i)%n)
//			env.JoinAt(heal, (start+i)%n)
//		}
//		// Steady uniform workload for the whole run.
//		env.PoissonLookups(0, env.Duration(), p.Rate, nil)
//		return nil
//	}
//
//	func init() {
//		eventsim.RegisterScenario("blackout",
//			func(p eventsim.Params) (eventsim.Scenario, error) {
//				return blackout{p}, nil
//			})
//	}
//
// Three rules keep a scenario sound: draw every random choice from
// env.RNG() (that is what makes runs reproducible), schedule only inside
// [0, env.Duration()], and do all scheduling inside Program — the Env is
// dead once the run starts. Run it like any built-in:
//
//	res, err := eventsim.Run(eventsim.Config{
//		Protocol: "chord",
//		Overlay:  eventsim.OverlayConfig{Bits: 12},
//		Scenario: "blackout",
//		Maintain: true,
//	})
//	for _, bkt := range res.Buckets {
//		fmt.Printf("t<%.1f success=%.3f online=%.2f\n",
//			bkt.End, bkt.Success(), bkt.OnlineFraction)
//	}
//
// The joins at heal time trigger Maintainer.Join when Maintain is set, so
// the healed region rebuilds its tables toward the population the
// snapshot shows — watch MaintMessages spike in that bucket.
//
// # Defining a custom Lifetime
//
// The churn-family scenarios (churn, heavytail, diurnal, tracechurn)
// draw node session and downtime durations from the pluggable
// distribution library in rcm/eventsim/lifetime. A family is a *shape*
// with the mean left free — the scenario pins it to Params.MeanOnline /
// MeanOffline, which is what keeps every family on the same equivalent
// failure probability q_eff = E[off]/(E[on]+E[off]) and makes lifetime
// shapes comparable at equal mean online time.
//
// A custom family implements the two-method pair and registers a parse
// factory; the name then resolves everywhere the built-ins do
// (Params.Lifetime/Downtime, exp event plans, the cmd/eventsim -lifetime
// and -downtime flags). A deterministic "uniform" family, spelled
// uniform[:halfwidth-fraction]:
//
//	// uniformFam samples U[mean·(1−w), mean·(1+w)].
//	type uniformFam struct{ w float64 }
//
//	func (u uniformFam) Name() string { return fmt.Sprintf("uniform(w=%g)", u.w) }
//
//	func (u uniformFam) Dist(mean float64) (lifetime.Dist, error) {
//		if u.w < 0 || u.w >= 1 {
//			return nil, fmt.Errorf("uniform halfwidth %v out of [0,1)", u.w)
//		}
//		if !(mean > 0) {
//			return nil, fmt.Errorf("uniform mean %v must be positive", mean)
//		}
//		return uniformDist{mean: mean, w: u.w}, nil
//	}
//
//	type uniformDist struct{ mean, w float64 }
//
//	func (d uniformDist) Name() string  { return "uniform" }
//	func (d uniformDist) Mean() float64 { return d.mean }
//	func (d uniformDist) Sample(rng *overlay.RNG) float64 {
//		return d.mean * (1 - d.w + 2*d.w*rng.Float64())
//	}
//
//	func init() {
//		lifetime.Register("uniform", func(arg string) (lifetime.Family, error) {
//			w := 0.5
//			if arg != "" {
//				v, err := strconv.ParseFloat(arg, 64)
//				if err != nil {
//					return nil, err
//				}
//				w = v
//			}
//			f := uniformFam{w: w}
//			if _, err := f.Dist(1); err != nil {
//				return nil, err // validate the shape up front
//			}
//			return f, nil
//		})
//	}
//
// Run it against any churn-family scenario:
//
//	res, err := eventsim.Run(eventsim.Config{
//		Protocol: "chord",
//		Overlay:  eventsim.OverlayConfig{Bits: 12},
//		Scenario: "heavytail",
//		Params:   eventsim.Params{Lifetime: "uniform:0.2", MeanOnline: 2},
//	})
//
// Two rules: draw every sample from the rng the engine passes (runs stay
// reproducible) and return strictly positive finite durations — the
// scheduler treats a non-positive sample as a programming error. Sampling
// happens while the scenario pre-schedules lifecycles, so a Dist may be
// arbitrarily stateful per call but must not retain the RNG.
//
// # Replication
//
// Setting Params.Replicas to k > 1 places every key on k distinct owners
// instead of one. Placement comes from rcm/replica: a protocol that
// implements replica.Replicator chooses its own replica geometry
// (kademlia places XOR-adjacent identifiers), every other protocol gets
// the classic ring-successor set — root first, then k−1 clockwise
// neighbours. Because placement is a pure function of (space, root, k),
// the live layer (rcm/node with Config.Replicas) computes the same sets,
// and the conformance suite pins the two executors to exact agreement.
//
// A replicated lookup freezes its owner-eligibility mask at start time:
// the replica set is intersected with the epoch's alive snapshot once,
// and the lookup carries that bitmask for its whole life. When routing
// toward the current owner dead-ends (timeout budget exhausted or no
// candidate closer), the lookup fails over to the next eligible owner in
// placement order and keeps its accumulated hop count — failover is a
// continuation, not a fresh attempt, which is what makes mean hops rise
// with k under churn. A lookup fails only when every start-time-eligible
// owner has been tried. The freeze mirrors a real resolver working from
// a membership view sampled when the query was issued.
//
// Replication is not free, and the engine bills it: with k > 1, every
// effective churn toggle (a node actually changing liveness) charges k
// repair messages — the re-replication traffic the survivors must send
// to restore the replication factor — into that bucket's
// Bucket.RepairMessages. Result.Replicas records the effective factor.
// Compare the two sides of the bargain:
//
//	for _, k := range []int{1, 3} {
//		res, err := eventsim.Run(eventsim.Config{
//			Protocol: "chord",
//			Overlay:  eventsim.OverlayConfig{Bits: 10},
//			Scenario: "heavytail",
//			Params:   eventsim.Params{Replicas: k},
//			Maintain: true,
//		})
//		// success rises with k; RepairMessages is the price
//	}
//
// With Replicas 0 or 1 the replication path is disabled outright and
// runs are bit-identical to builds that predate the capability. Figure
// E20 (internal/figures, "frontier") tabulates the full
// latency-vs-maintenance frontier this opens, including where the
// singlehop protocol's O(1) routing claim breaks under heavy-tailed
// churn and how much of the loss k=3 replication buys back.
//
// # Fault injection and the adaptive RTO
//
// Wrapping the transport in a Faulty (spec: fault:<plan>[/<inner>],
// plans from rcm/fault) injects network faults beyond the lossy model:
// timed partitions and delay spikes, duplication, reordering, corruption
// and per-node stall episodes. Every clause faults requests only — acks
// stay reliable, like the lossy transport, and for the same reason: it
// is the model a live wrapper can reproduce exactly. Injected faults are
// billed per kind into Result.Faults, and runs stay bit-identical across
// (Seed, Shards) pairs and schedulers; without a plan the engine draws
// no extra randomness, so fault-free runs are bit-identical to builds
// that predate the capability. The faultstorm scenario (a stable
// population under steady uniform load) is the intended substrate:
// under it, every deviation from the lossless baseline is the plan's.
//
// Config.AdaptiveRTO replaces the fixed retransmission timeout with a
// per-(sender, next-hop) Jacobson/Karn estimator (RFC 6298 gains,
// samples from un-retransmitted attempts only) with exponential backoff,
// floored at Config.RTO — so the arena-recycling invariant
// RTO > 2×MaxLatency is preserved — and capped at 8×RTO. rcm/node
// implements the same estimator live, and since the estimator only moves
// timeout deadlines, a run in which no timeout fires is bit-identical
// with the estimator on or off.
package eventsim
