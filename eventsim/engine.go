package eventsim

import (
	"math"
	"runtime"

	"rcm/fault"
	"rcm/internal/registry"
	"rcm/obs"
	"rcm/overlay"
)

// Event kinds, in deterministic tie-break-irrelevant order (ordering
// between same-time events is fixed by push sequence, not kind).
const (
	evStart   uint8 = iota + 1 // a scheduled lookup begins at node
	evReq                      // a lookup request arrives at node
	evAck                      // an acknowledgement arrives back at the sender
	evTimeout                  // a pending forward attempt timed out at node
	evDown                     // scenario: node goes offline
	evUp                       // scenario: node comes online
	evStab                     // periodic stabilization timer at node
	evRetry                    // a replicated lookup fails over to its next owner at the source
	evDup                      // the later copy of a duplicated request arrives (fault injection)
)

// ev is the uniform event record, used both in per-shard queues and in
// cross-shard delivery buffers. Field meaning by kind:
//
//	evStart:   node=src, lk=lookup
//	evReq:     node=receiver, lk=lookup, a=attempt id, b=sender, hops=count so far
//	evAck:     node=sender, a=attempt id
//	evTimeout: node=sender, lk=lookup, a=attempt id
//	evRetry:   node=src, lk=lookup, ri=next owner, prior=hops already spent
//	evDown/evUp/evStab: node
//
// The lookup's mutable progress (its hop count, and under replication its
// current owner index, start-time eligibility mask and hops spent by
// earlier attempts) rides in the event rather than in a shared per-lookup
// record: ownership of a lookup passes from shard to shard with the
// message, and keeping the travelling state inside the message itself is
// what lets adjacent lookups owned by different shards share cache lines
// without write contention. All of it packs into alignment padding, so
// the record stays 40 bytes.
type ev struct {
	t     float64
	seq   uint64
	kind  uint8
	hops  uint16
	node  uint32
	lk    uint32
	a, b  uint32
	ri    uint8  // replica index of the owner this attempt targets
	mask  uint8  // owner-eligibility bitmask frozen at lookup start (k > 1)
	prior uint16 // hops spent by earlier failed attempts (replication failover)
}

// lookupMeta is the schedule-time identity of one lookup: endpoints, start
// time and the accounting bucket. It is written once while the program is
// pre-scheduled (single-threaded, before the clock starts) and read-only
// for the whole run, so every shard can read it freely — read-shared cache
// lines are never invalidated. The mutable part of a lookup is split off:
// its hop count travels inside the evReq events (see ev), and its
// started-at-most-once latch lives in the source shard's own bitset.
type lookupMeta struct {
	src, dst    uint32
	startBucket int32
	start       float64
}

// pendingHop is an arena slot for a forward attempt awaiting
// acknowledgement at the sender. next stashes the candidate chosen when
// the attempt was first sent, so a retransmission to the same candidate
// re-sends directly instead of re-running the Forwarder's candidate
// enumeration. live distinguishes an outstanding attempt from one already
// acknowledged: the slot itself is recycled only when the attempt's
// timeout event fires (every attempt schedules exactly one, and the RTO
// validation guarantees the ack, if any, arrives first), which is what
// makes bare slot indices safe to carry in events with no generation tag.
type pendingHop struct {
	lk    uint32
	node  uint32  // forwarding node
	next  uint32  // chosen next hop, reused verbatim on retransmission
	cand  uint16  // candidate index being tried
	hops  uint16  // the lookup's hop count when this attempt was sent
	try   uint8   // retransmission count for this candidate
	live  bool    // false once acknowledged; slot awaits its timeout event
	ri    uint8   // replica index of the owner this attempt targets
	mask  uint8   // owner-eligibility bitmask frozen at lookup start
	prior uint16  // hops spent by earlier failed attempts
	sent  float64 // send time, the adaptive-RTO estimator's RTT reference
}

// bucketAcc is a shard-local metrics accumulator for one time bucket.
// The histograms ride here rather than in shared engine state for the
// same reason as the counters: each shard observes into its own copy
// with no synchronization, and the barrier-free epoch stays barrier
// free — the per-bucket copies merge once, after the run (obs.Merge is
// commutative, so the fold order cannot be observed in the result).
type bucketAcc struct {
	started, completed, failed, skipped int
	timeouts, msgs, maint, repair       int
	sumHops, sumLatency                 float64
	hops, lat                           obs.Histogram
}

// shard owns an interleaved slice of the population (node % shards): its
// nodes' online flags, routing-table rows, event queue, RNG, pending
// attempt arena and metric accumulators. Within an epoch a shard runs
// single-threaded; shards only exchange messages at epoch barriers. Every
// mutable field lives in the shard's own allocations (not interleaved
// global arrays), so two shards never write the same cache line.
type shard struct {
	id  int
	eng *engine

	q   eventQueue
	seq uint64
	rng *overlay.RNG

	// online is the authoritative per-node flag for this shard's nodes,
	// indexed by global node id; only entries with node % shards == id are
	// ever touched. Full-length per-shard arrays trade a little memory for
	// division-free indexing and the absence of cross-shard write sharing
	// the old interleaved global array suffered from.
	online []bool

	// started latches each own-source lookup's at-most-once start.
	started *overlay.Bitset

	// pending is the slice-backed arena of in-flight forward attempts,
	// indexed by the attempt id carried in evReq/evAck/evTimeout events;
	// freePd is its free-list. Slots recycle when their timeout fires, so
	// the arena grows once to the peak in-flight count and steady-state
	// attempts allocate nothing — the map this replaces hashed every
	// ack and timeout on the hot path.
	pending []pendingHop
	freePd  []uint32

	outbox  [][]ev  // cross-shard sends this epoch, indexed by dest shard
	toggles []int32 // node lifecycle deltas this epoch: +node+1 up, -(node+1) down

	acc     []bucketAcc
	candBuf []overlay.ID
	events  uint64

	// faults tallies this shard's injected faults (zero without a plan);
	// summed into Result.Faults after the run.
	faults fault.Counts

	// rtt holds the per-(sender, next-hop) Jacobson/Karn estimator state
	// when Config.AdaptiveRTO is on; keyed sender<<32|next. Senders are
	// shard-owned, so the map never sees cross-shard writes, and it is
	// only ever probed by key — no iteration, no ordering hazard.
	rtt map[uint64]*peerRTT

	// traces collects this shard's events for sampled lookups (empty
	// unless Config.Trace > 0); merged deterministically after the run.
	traces []traceRec

	// work releases the shard's persistent worker for one epoch (carrying
	// the epoch boundary); the worker reports back on the engine's shared
	// done channel. Nil when the engine runs shards inline.
	work chan float64
}

// engine is one run's state. See doc.go for the synchronization design.
type engine struct {
	cfg Config
	fwd registry.Forwarder
	mnt registry.Maintainer // nil when maintenance is off or unsupported

	n      int
	shards []*shard

	// snapshot is the epoch-stale global alive view (frozen during an
	// epoch, advanced at barriers) that maintenance and lookup-start
	// conditioning read. The authoritative per-node flags live in the
	// owner shards' online arrays.
	snapshot    *overlay.Bitset
	onlineCount int

	// meta is the read-only lookup table; see lookupMeta.
	meta []lookupMeta

	// k is the effective replication factor (1 = off) and repl the
	// precomputed placement table: repl[root*k+i] is the i-th owner of
	// the key rooted at root (root itself first). Built once before the
	// clock starts and read-only for the whole run, like meta, so every
	// shard reads it freely. Empty when k == 1 — the unreplicated path
	// never touches it.
	k    int
	repl []overlay.ID

	width      float64 // bucket width
	delta      float64 // epoch length = transport lookahead
	rto        float64
	maxHops    int
	onlineFrac []float64
	nextBucket int

	dist  bool // accumulate hop/latency histograms (on unless NoDist)
	trace int  // sample every trace-th lookup's hop trace (0 = off)

	// inj is the bound fault plan when Config.Transport is a Faulty
	// (nil otherwise — the no-plan hot path draws no extra coins and is
	// bit-identical to builds without fault injection). innerMax caches
	// the unwrapped transport's MaxLatency, the bound reorder holds a
	// request back by.
	inj      *fault.Injector
	plan     fault.Plan // inj.Plan(), hoisted off the dispatch hot path
	innerMax float64

	// adaptive enables the per-peer RTO estimator (Config.AdaptiveRTO);
	// off, every attempt arms the fixed cfg-derived rto below.
	adaptive bool
}

// traced reports whether lookup lk's path is being recorded. The
// predicate depends only on the schedule index, so the sampled set is
// identical across (Seed, Shards) and schedulers.
func (e *engine) traced(lk uint32) bool {
	return e.trace > 0 && int(lk)%e.trace == 0
}

func (e *engine) shardOf(node uint32) int { return int(node) % len(e.shards) }

func (e *engine) bucketOf(t float64) int32 {
	b := int32(t / e.width)
	if b < 0 {
		b = 0
	}
	if b >= int32(e.cfg.Buckets) {
		b = int32(e.cfg.Buckets) - 1
	}
	return b
}

// push assigns the event its shard-local sequence number — the tie-break
// half of the engine's total (t, seq) event order — and hands it to the
// configured scheduler (timing wheel or binary heap; see queue.go).
func (sh *shard) push(e ev) {
	e.seq = sh.seq
	sh.seq++
	sh.q.push(e)
}

// send schedules an event at another (or the same) node, through the
// outbox when the destination lives on a different shard. Cross-shard
// events must carry t at least one lookahead ahead — guaranteed because
// every cross-shard event is a message with transport latency >= delta.
func (sh *shard) send(e ev) {
	ds := sh.eng.shardOf(e.node)
	if ds == sh.id {
		sh.push(e)
		return
	}
	sh.outbox[ds] = append(sh.outbox[ds], e)
}

// allocPending places an attempt in the arena and returns its id.
func (sh *shard) allocPending(pd pendingHop) uint32 {
	if n := len(sh.freePd); n > 0 {
		id := sh.freePd[n-1]
		sh.freePd = sh.freePd[:n-1]
		sh.pending[id] = pd
		return id
	}
	sh.pending = append(sh.pending, pd)
	return uint32(len(sh.pending) - 1)
}

// sampleLatency draws a latency ignoring the delivery verdict — the path
// acknowledgements take (modeled reliable; see doc.go).
func (e *engine) sampleLatency(rng *overlay.RNG) float64 {
	lat, _ := e.cfg.Transport.Sample(rng)
	if lat < e.delta {
		lat = e.delta
	}
	return lat
}

// worker is the body of a shard's persistent goroutine: woken once per
// epoch with the epoch boundary, it drains the local queue and reports
// completion. The channel pair is the engine's reusable barrier — the
// send into work and the receive from done are the only synchronization
// the hot loop pays, replacing a goroutine spawn and WaitGroup per shard
// per epoch.
func (sh *shard) worker(done chan<- struct{}) {
	for end := range sh.work {
		sh.runEpoch(end)
		done <- struct{}{}
	}
}

// runEpoch processes every local event with t < end.
func (sh *shard) runEpoch(end float64) {
	for {
		e, ok := sh.q.popBefore(end)
		if !ok {
			break
		}
		sh.events++
		switch e.kind {
		case evStart:
			sh.handleStart(e)
		case evReq:
			sh.handleReq(e)
		case evAck:
			// Retire the attempt; the slot itself is reclaimed when the
			// attempt's timeout event arrives.
			pd := &sh.pending[e.a]
			if sh.eng.adaptive && pd.live && pd.try == 0 {
				// Karn's rule: only un-retransmitted attempts contribute RTT
				// samples (the live node cannot tell which copy a late ack
				// answers, so the sim's estimator obeys the same restriction).
				sh.observeRTT(pd.node, pd.next, e.t-pd.sent)
			}
			pd.live = false
		case evTimeout:
			sh.handleTimeout(e)
		case evRetry:
			sh.handleRetry(e)
		case evDown:
			sh.handleToggle(e.t, e.node, false)
		case evUp:
			sh.handleToggle(e.t, e.node, true)
		case evStab:
			sh.handleStab(e)
		case evDup:
			sh.handleDup(e)
		}
	}
}

func (sh *shard) handleStart(e ev) {
	eng := sh.eng
	if sh.started.Get(int(e.lk)) {
		return // defensive: a lookup starts at most once
	}
	sh.started.Set(int(e.lk))
	m := &eng.meta[e.lk]
	// Condition on surviving endpoints, as the static model does: the
	// source authoritatively (it is local), the destination through the
	// epoch snapshot (the freshest view any node could have of a remote).
	// Under replication the destination condition generalizes: the lookup
	// is viable while ANY owner of the key survives in the snapshot, and
	// the surviving set is frozen into a bitmask the lookup carries — the
	// failover order is decided at start time, exactly the information a
	// live client holds when it issues the request.
	viable := eng.snapshot.Get(int(m.dst))
	ri, mask := uint8(0), uint8(1)
	if eng.k > 1 {
		mask = 0
		for i := 0; i < eng.k; i++ {
			if eng.snapshot.Get(int(eng.repl[int(m.dst)*eng.k+i])) {
				mask |= 1 << uint(i)
			}
		}
		viable = mask != 0
		for ri+1 < uint8(eng.k) && mask&(1<<ri) == 0 {
			ri++
		}
	}
	if !sh.online[m.src] || !viable {
		sh.acc[m.startBucket].skipped++
		if eng.traced(e.lk) {
			sh.recordTrace(e.lk, TraceEvent{T: e.t, Kind: TraceSkip, Node: int(m.src)})
		}
		return
	}
	sh.acc[m.startBucket].started++
	if eng.traced(e.lk) {
		sh.recordTrace(e.lk, TraceEvent{T: e.t, Kind: TraceStart, Node: int(m.src)})
	}
	sh.forward(e.t, e.lk, m.src, 0, ri, mask, 0)
}

// owner returns the ri-th replica owner of the key rooted at root (the
// root itself when replication is off).
func (e *engine) owner(root uint32, ri uint8) uint32 {
	if e.k <= 1 {
		return root
	}
	return uint32(e.repl[int(root)*e.k+int(ri)])
}

// forward advances the lookup held at cur: complete it at the current
// target owner, or try the first next-hop candidate. hops counts this
// attempt's deliveries (the per-attempt budget a live request carries);
// prior accumulates the deliveries of earlier failed-over attempts, so
// the completed tally is the total work a live origin would observe.
func (sh *shard) forward(t float64, lk uint32, cur uint32, hops uint16, ri, mask uint8, prior uint16) {
	eng := sh.eng
	m := &eng.meta[lk]
	if cur == eng.owner(m.dst, ri) {
		acc := &sh.acc[m.startBucket]
		total := hops + prior
		acc.completed++
		acc.sumHops += float64(total)
		acc.sumLatency += t - m.start
		if eng.dist {
			acc.hops.Observe(int64(total))
			acc.lat.Observe(latencyMicros(t - m.start))
		}
		if eng.traced(lk) {
			sh.recordTrace(lk, TraceEvent{T: t, Kind: TraceDone, Node: int(cur), Hops: int(total)})
		}
		return
	}
	sh.attempt(t, lk, cur, 0, hops, ri, mask, prior)
}

// latencyMicros converts a simulated-time latency to the integer
// microseconds the latency histograms record. Round-to-nearest keeps
// the conversion exact for the transport library's millisecond-scale
// constants.
func latencyMicros(lat float64) int64 {
	return int64(math.Round(lat * 1e6))
}

// attempt tries candidate ci of cur's next-hop preference list: enumerate
// candidates, pick the ci-th, and dispatch. An exhausted candidate list
// fails the lookup — greedy forwarding with per-hop retries but no
// backtracking, matching the paper's assumption 3. Retransmissions to the
// same candidate do not come through here: they reuse the stashed hop in
// the pending slot (see handleTimeout) and skip the Forwarder entirely.
func (sh *shard) attempt(t float64, lk uint32, cur uint32, ci int, hops uint16, ri, mask uint8, prior uint16) {
	eng := sh.eng
	m := &eng.meta[lk]
	cands := eng.fwd.AppendCandidateHops(sh.candBuf[:0], overlay.ID(cur), overlay.ID(eng.owner(m.dst, ri)))
	sh.candBuf = cands[:0]
	if ci >= len(cands) {
		sh.failAttempt(t, lk, cur, hops, ri, mask, prior)
		return
	}
	sh.dispatch(t, lk, cur, uint32(cands[ci]), ci, 0, hops, ri, mask, prior)
}

// failAttempt ends one owner-directed attempt. With replication and an
// eligible owner remaining in the start-time mask, the lookup fails over:
// a failure notice travels back to the source (one transport latency, so
// failover costs real time) and the source re-issues toward the next
// owner, carrying the failed attempt's hop bill in prior — exactly the
// retry a live client performs when an owner's route fails. Without
// replication, or with the mask exhausted, the lookup fails for good.
func (sh *shard) failAttempt(t float64, lk uint32, cur uint32, hops uint16, ri, mask uint8, prior uint16) {
	eng := sh.eng
	m := &eng.meta[lk]
	if eng.k > 1 {
		for next := ri + 1; next < uint8(eng.k); next++ {
			if mask&(1<<next) == 0 {
				continue
			}
			if eng.traced(lk) {
				sh.recordTrace(lk, TraceEvent{T: t, Kind: TraceRetry, Node: int(cur), To: int(eng.owner(m.dst, next)), Hops: int(hops + prior)})
			}
			sh.send(ev{t: t + eng.sampleLatency(sh.rng), kind: evRetry, node: m.src, lk: lk, ri: next, mask: mask, prior: hops + prior})
			return
		}
	}
	sh.acc[m.startBucket].failed++
	if eng.traced(lk) {
		sh.recordTrace(lk, TraceEvent{T: t, Kind: TraceFail, Node: int(cur), Hops: int(hops + prior)})
	}
}

// handleRetry restarts a failed replicated lookup at its source, aimed at
// the next eligible owner. The source re-checks only its own liveness
// (authoritative, local); the owner eligibility was frozen at start time,
// like the k = 1 path's destination conditioning.
func (sh *shard) handleRetry(e ev) {
	eng := sh.eng
	m := &eng.meta[e.lk]
	if !sh.online[m.src] {
		sh.acc[m.startBucket].failed++
		if eng.traced(e.lk) {
			sh.recordTrace(e.lk, TraceEvent{T: e.t, Kind: TraceFail, Node: int(m.src), Hops: int(e.prior)})
		}
		return
	}
	sh.forward(e.t, e.lk, m.src, 0, e.ri, e.mask, e.prior)
}

// dispatch sends the request for an already-chosen next hop: charge the
// message, arm the retransmission timeout, and record the attempt in the
// pending arena.
func (sh *shard) dispatch(t float64, lk, cur, next uint32, ci, try int, hops uint16, ri, mask uint8, prior uint16) {
	eng := sh.eng
	sh.acc[eng.bucketOf(t)].msgs++
	lat, delivered := eng.cfg.Transport.Sample(sh.rng)
	var dupLat float64
	dupDelivered := false
	if inj := eng.inj; inj != nil {
		// Fault clauses apply to the request only (acks stay pure, like the
		// lossy transport), in a fixed coin order — corrupt, reorder, dup —
		// so every shard's stream is deterministic; the partition check is
		// coin-free.
		pl := &eng.plan
		if pl.Corrupt > 0 && sh.rng.Bernoulli(pl.Corrupt) {
			// The receiver's wire codec rejects the mangled packet: a drop.
			if delivered {
				sh.faults.Corrupts++
			}
			delivered = false
		}
		if pl.Reorder > 0 && sh.rng.Bernoulli(pl.Reorder) {
			lat += sh.rng.Float64() * eng.innerMax
			if delivered {
				sh.faults.Reorders++
			}
		}
		if pl.Dup > 0 && sh.rng.Bernoulli(pl.Dup) {
			dupLat, dupDelivered = eng.cfg.Transport.Sample(sh.rng)
		}
		if (delivered || dupDelivered) && inj.CrossPartition(uint64(cur), uint64(next), t) {
			sh.faults.PartitionDrops++
			delivered, dupDelivered = false, false
		}
		if f := inj.DelayFactor(t); f > 1 {
			lat *= f
			dupLat *= f
		}
	}
	if lat < eng.delta {
		lat = eng.delta
	}
	rto := eng.rto
	if eng.adaptive {
		rto = sh.rtoFor(cur, next, try)
	}
	id := sh.allocPending(pendingHop{
		lk: lk, node: cur, next: next,
		cand: uint16(ci), hops: hops, try: uint8(try), live: true,
		ri: ri, mask: mask, prior: prior, sent: t,
	})
	if eng.traced(lk) {
		sh.recordTrace(lk, TraceEvent{T: t, Kind: TraceSend, Node: int(cur), To: int(next), Hops: int(hops + prior), Cand: ci, Try: try})
	}
	req := ev{t: t + lat, kind: evReq, node: next, lk: lk, a: id, b: cur, hops: hops, ri: ri, mask: mask, prior: prior}
	if dupDelivered {
		if dupLat < eng.delta {
			dupLat = eng.delta
		}
		sh.faults.Dups++
		if !delivered {
			// Only the duplicate survived: it carries the request.
			req.t = t + dupLat
			delivered = true
		} else {
			// Both copies arrive. The earlier one carries the request; the
			// later one is absorbed by the receiver's dedupe window (one
			// extra message, no second forwarding — see handleDup).
			first, second := lat, dupLat
			if second < first {
				first, second = second, first
			}
			req.t = t + first
			sh.send(ev{t: t + second, kind: evDup, node: next})
		}
	}
	if delivered {
		sh.send(req)
	}
	sh.push(ev{t: t + rto, kind: evTimeout, node: cur, lk: lk, a: id})
}

func (sh *shard) handleReq(e ev) {
	eng := sh.eng
	y := e.node
	if !sh.online[y] {
		return // dead receiver: the sender's timeout will fire
	}
	if eng.inj != nil && eng.inj.Stalled(uint64(y), e.t) {
		// Alive but unresponsive: no ack, no forwarding — the sender's
		// timeout fires exactly as if the request had been lost.
		sh.faults.StallDrops++
		return
	}
	// Acknowledge (reliable, latency-only) so the sender retires the
	// attempt, then keep forwarding — ownership of the lookup has just
	// transferred to this shard with the message.
	sh.acc[eng.bucketOf(e.t)].msgs++
	sh.send(ev{t: e.t + eng.sampleLatency(sh.rng), kind: evAck, node: e.b, a: e.a})
	hops := e.hops + 1
	if eng.traced(e.lk) {
		sh.recordTrace(e.lk, TraceEvent{T: e.t, Kind: TraceHop, Node: int(y), Hops: int(hops + e.prior)})
	}
	if int(hops) > eng.maxHops {
		// The per-attempt hop budget ran out — a terminal failure without
		// replication, a failover with (a live re-issued request carries a
		// fresh budget).
		sh.failAttempt(e.t, e.lk, y, hops, e.ri, e.mask, e.prior)
		return
	}
	sh.forward(e.t, e.lk, y, hops, e.ri, e.mask, e.prior)
}

// handleDup absorbs the later copy of a duplicated request: an online,
// unstalled receiver re-acknowledges out of its dedupe window and drops
// the payload — one extra message charged, no second forwarding. This
// mirrors the live node's seen-map exactly, which is what keeps dup
// plans outcome-invariant (and so conformance-pinnable) over a lossless
// inner transport.
func (sh *shard) handleDup(e ev) {
	eng := sh.eng
	if !sh.online[e.node] {
		return
	}
	if eng.inj != nil && eng.inj.Stalled(uint64(e.node), e.t) {
		sh.faults.StallDrops++
		return
	}
	sh.acc[eng.bucketOf(e.t)].msgs++
}

// peerRTT is one (sender, next-hop) pair's smoothed round-trip state:
// Jacobson's estimator with the RFC 6298 gains (alpha 1/8, beta 1/4).
type peerRTT struct {
	srtt, rttvar float64
}

// observeRTT feeds one round-trip sample into the pair's estimator.
// First sample initializes srtt = r, rttvar = r/2; later samples update
// rttvar before srtt, per RFC 6298.
func (sh *shard) observeRTT(cur, next uint32, r float64) {
	key := uint64(cur)<<32 | uint64(next)
	pr, ok := sh.rtt[key]
	if !ok {
		sh.rtt[key] = &peerRTT{srtt: r, rttvar: r / 2}
		return
	}
	d := pr.srtt - r
	if d < 0 {
		d = -d
	}
	pr.rttvar += (d - pr.rttvar) / 4
	pr.srtt += (r - pr.srtt) / 8
}

// rtoFor returns the retransmission timeout for one attempt when the
// adaptive estimator is on: srtt + 4*rttvar, floored at the configured
// RTO — the floor preserves the arena-recycling invariant RTO >
// 2*MaxLatency, so an adaptive timeout can never fire before a
// genuinely-delivered ack — doubled per retransmission (exponential
// backoff) and capped at 8x the configured RTO.
func (sh *shard) rtoFor(cur, next uint32, try int) float64 {
	eng := sh.eng
	rto := eng.rto
	if pr, ok := sh.rtt[uint64(cur)<<32|uint64(next)]; ok {
		if est := pr.srtt + 4*pr.rttvar; est > rto {
			rto = est
		}
	}
	ceil := 8 * eng.rto
	for i := 0; i < try && rto < ceil; i++ {
		rto *= 2
	}
	if rto > ceil {
		rto = ceil
	}
	return rto
}

func (sh *shard) handleTimeout(e ev) {
	pd := sh.pending[e.a]
	// The timeout is the attempt's last reference: recycle the slot
	// whether the attempt was acknowledged or is genuinely overdue.
	sh.freePd = append(sh.freePd, e.a)
	if !pd.live {
		return // acknowledged in the meantime
	}
	eng := sh.eng
	sh.acc[eng.bucketOf(e.t)].timeouts++
	if eng.traced(pd.lk) {
		sh.recordTrace(pd.lk, TraceEvent{T: e.t, Kind: TraceRTO, Node: int(pd.node), To: int(pd.next), Hops: int(pd.hops), Cand: int(pd.cand), Try: int(pd.try)})
	}
	// A pending timeout means the downstream hop did not accept (requests
	// that were acknowledged retire their attempt before the RTO). If the
	// holder itself died while waiting, the attempt dies with it — a dead
	// node must not keep retransmitting or routing — and replication
	// treats that like any other attempt failure: the origin's deadline
	// machinery re-issues toward the next owner.
	if !sh.online[pd.node] {
		sh.failAttempt(e.t, pd.lk, pd.node, pd.hops, pd.ri, pd.mask, pd.prior)
		return
	}
	// Retransmit to the same candidate first (a lost request must not skip
	// the best next hop) — re-sending the stashed hop directly, with no
	// second Forwarder call; fail over to the next candidate once
	// exhausted.
	if int(pd.try) < eng.cfg.Retransmits {
		sh.dispatch(e.t, pd.lk, pd.node, pd.next, int(pd.cand), int(pd.try)+1, pd.hops, pd.ri, pd.mask, pd.prior)
		return
	}
	sh.attempt(e.t, pd.lk, pd.node, int(pd.cand)+1, pd.hops, pd.ri, pd.mask, pd.prior)
}

func (sh *shard) handleToggle(t float64, node uint32, up bool) {
	eng := sh.eng
	if sh.online[node] == up {
		return // idempotent: overlapping scenario schedules are legal
	}
	sh.online[node] = up
	delta := int32(node) + 1
	if !up {
		delta = -delta
	}
	sh.toggles = append(sh.toggles, delta)
	if eng.k > 1 {
		// Churn-driven re-replication: the toggled node participates in k
		// replica groups (one as root, k−1 as a successor), and each
		// affected group restores its k-copy invariant with one transfer
		// coordinated across the survivors — k repair messages per
		// effective toggle, the repair-bandwidth bill replication adds on
		// top of routing-table maintenance.
		sh.acc[eng.bucketOf(t)].repair += eng.k
	}
	if up && eng.mnt != nil {
		cost := eng.mnt.Join(overlay.ID(node), eng.snapshot, sh.rng)
		sh.acc[eng.bucketOf(t)].maint += cost
	}
}

func (sh *shard) handleStab(e ev) {
	eng := sh.eng
	if sh.online[e.node] && eng.mnt != nil {
		cost := eng.mnt.Stabilize(overlay.ID(e.node), eng.snapshot, sh.rng)
		sh.acc[eng.bucketOf(e.t)].maint += cost
	}
	next := e.t + eng.cfg.StabilizeEvery
	if next <= eng.cfg.Duration {
		sh.push(ev{t: next, kind: evStab, node: e.node})
	}
}

// run executes the engine to completion: epochs of one lookahead each,
// with a barrier between epochs that applies lifecycle deltas to the
// alive snapshot, merges cross-shard messages into their destination
// queues, and samples per-bucket online fractions. With more than one
// shard and parallel hardware, each shard is drained by a persistent
// worker goroutine released and joined through a channel barrier; on a
// single shard, or when GOMAXPROCS is 1 and goroutines could only add
// scheduling overhead, the shards run inline. The two execution paths are
// bit-identical by construction — within an epoch shards touch disjoint
// mutable state, so the order (or concurrency) of their draining cannot
// be observed.
func (e *engine) run() {
	e.onlineFrac[0] = float64(e.onlineCount) / float64(e.n)
	e.nextBucket = 1

	parallel := len(e.shards) > 1 && runtime.GOMAXPROCS(0) > 1
	var done chan struct{}
	if parallel {
		done = make(chan struct{}, len(e.shards))
		for _, sh := range e.shards {
			sh.work = make(chan float64, 1)
			go sh.worker(done)
		}
		defer func() {
			for _, sh := range e.shards {
				close(sh.work)
			}
		}()
	}

	end := e.delta
	for {
		pendingWork := false
		for _, sh := range e.shards {
			if sh.q.size() > 0 {
				pendingWork = true
				break
			}
		}
		if !pendingWork {
			break
		}

		if parallel {
			for _, sh := range e.shards {
				sh.work <- end
			}
			for range e.shards {
				<-done
			}
		} else {
			for _, sh := range e.shards {
				sh.runEpoch(end)
			}
		}

		// Barrier: lifecycle deltas first (so merged messages and the next
		// epoch observe the post-toggle snapshot), then message delivery.
		for _, sh := range e.shards {
			for _, d := range sh.toggles {
				if d > 0 {
					e.snapshot.Set(int(d - 1))
					e.onlineCount++
				} else {
					e.snapshot.Clear(int(-d - 1))
					e.onlineCount--
				}
			}
			sh.toggles = sh.toggles[:0]
		}
		// Deliver cross-shard messages: for each destination, bulk-push
		// every source's outbox in source-shard order. No sort is needed
		// for determinism — this is the load-bearing trick that emptied
		// the old barrier's concatenate-and-stable-sort hot path:
		//
		// The queues' total order is (t, seq), with seq assigned at push.
		// Events with different arrival times are ordered by t no matter
		// which push order (and therefore which seq values) they got, so
		// seq assignment only decides ties. Pushing source 0's outbox in
		// send order, then source 1's, and so on gives equal-t events
		// exactly the tie order the former stable sort produced: send
		// order within a source, source-shard order across sources. Ties
		// against events pushed in earlier or later epochs keep their
		// order too, because the seq counter is monotonic across the whole
		// run in both schemes. Identical (t, seq)-relative order means
		// identical pop order, so results are bit-identical — enforced by
		// the determinism and scheduler-differential suites.
		for di, dst := range e.shards {
			for _, src := range e.shards {
				ob := src.outbox[di]
				for _, m := range ob {
					dst.push(m)
				}
				src.outbox[di] = ob[:0]
			}
		}

		// Sample online fractions for every bucket boundary this epoch
		// crossed (the boundary value is the first barrier at/after it).
		for e.nextBucket < e.cfg.Buckets && end >= float64(e.nextBucket)*e.width {
			e.onlineFrac[e.nextBucket] = float64(e.onlineCount) / float64(e.n)
			e.nextBucket++
		}

		// Advance; skip idle stretches (all queue tops far in the future)
		// in one hop while staying on lookahead-aligned boundaries.
		minTop := math.Inf(1)
		for _, sh := range e.shards {
			if t, ok := sh.q.minTime(); ok && t < minTop {
				minTop = t
			}
		}
		next := end + e.delta
		if jump := e.delta * math.Floor(minTop/e.delta); jump > next {
			next = jump
		}
		end = next
	}
	// Buckets the run never reached keep the last sampled online fraction.
	for e.nextBucket < e.cfg.Buckets {
		e.onlineFrac[e.nextBucket] = float64(e.onlineCount) / float64(e.n)
		e.nextBucket++
	}
}
