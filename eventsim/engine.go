package eventsim

import (
	"math"
	"sort"
	"sync"

	"rcm/internal/registry"
	"rcm/overlay"
)

// Event kinds, in deterministic tie-break-irrelevant order (ordering
// between same-time events is fixed by push sequence, not kind).
const (
	evStart   uint8 = iota + 1 // a scheduled lookup begins at node
	evReq                      // a lookup request arrives at node
	evAck                      // an acknowledgement arrives back at the sender
	evTimeout                  // a pending forward attempt timed out at node
	evDown                     // scenario: node goes offline
	evUp                       // scenario: node comes online
	evStab                     // periodic stabilization timer at node
)

// ev is the uniform event record, used both in per-shard heaps and in
// cross-shard delivery buffers. Field meaning by kind:
//
//	evStart:   node=src, lk=lookup
//	evReq:     node=receiver, lk=lookup, a=attempt id, b=sender
//	evAck:     node=sender, a=attempt id
//	evTimeout: node=sender, lk=lookup, a=attempt id
//	evDown/evUp/evStab: node
type ev struct {
	t    float64
	seq  uint64
	kind uint8
	node uint32
	lk   uint32
	a, b uint32
}

// Lookup lifecycle states.
const (
	lkScheduled uint8 = iota
	lkPending
	lkCompleted
	lkFailed
	lkSkipped
)

// lookup is the state of one scheduled lookup. Ownership passes with the
// message: only the shard of the node currently holding the lookup touches
// it, and ownership transfers ride the epoch barrier, so cross-shard
// access is sequential.
type lookup struct {
	src, dst    uint32
	startBucket int32
	state       uint8
	hops        uint16
	start       float64
}

// pendingHop is a forward attempt awaiting acknowledgement at the sender.
type pendingHop struct {
	lk   uint32
	node uint32 // forwarding node
	cand uint16 // candidate index being tried
	try  uint8  // retransmission count for this candidate
}

// bucketAcc is a shard-local metrics accumulator for one time bucket.
type bucketAcc struct {
	started, completed, failed, skipped int
	timeouts, msgs, maint               int
	sumHops, sumLatency                 float64
}

// shard owns an interleaved slice of the population (node % shards): its
// nodes' online flags, routing-table rows, event queue, RNG and metric
// accumulators. Within an epoch a shard runs single-threaded and
// goroutine-free; shards only exchange messages at epoch barriers.
type shard struct {
	id  int
	eng *engine

	q   eventQueue
	seq uint64
	rng *overlay.RNG

	pending     map[uint32]pendingHop
	nextAttempt uint32

	outbox  [][]ev  // cross-shard sends this epoch, indexed by dest shard
	toggles []int32 // node lifecycle deltas this epoch: +node+1 up, -(node+1) down

	acc     []bucketAcc
	candBuf []overlay.ID
	events  uint64
}

// engine is one run's state. See doc.go for the synchronization design.
type engine struct {
	cfg Config
	fwd registry.Forwarder
	mnt registry.Maintainer // nil when maintenance is off or unsupported

	n      int
	shards []*shard

	// online is the authoritative per-node flag, read and written only by
	// the node's owner shard. snapshot is the epoch-stale global view
	// (frozen during an epoch, advanced at barriers) that maintenance and
	// lookup-start conditioning read.
	online      []bool
	snapshot    *overlay.Bitset
	onlineCount int

	lookups []lookup

	width      float64 // bucket width
	delta      float64 // epoch length = transport lookahead
	rto        float64
	maxHops    int
	onlineFrac []float64
	nextBucket int
}

func (e *engine) shardOf(node uint32) int { return int(node) % len(e.shards) }

func (e *engine) bucketOf(t float64) int32 {
	b := int32(t / e.width)
	if b < 0 {
		b = 0
	}
	if b >= int32(e.cfg.Buckets) {
		b = int32(e.cfg.Buckets) - 1
	}
	return b
}

// push assigns the event its shard-local sequence number — the tie-break
// half of the engine's total (t, seq) event order — and hands it to the
// configured scheduler (timing wheel or binary heap; see queue.go).
func (sh *shard) push(e ev) {
	e.seq = sh.seq
	sh.seq++
	sh.q.push(e)
}

// send schedules an event at another (or the same) node, through the
// outbox when the destination lives on a different shard. Cross-shard
// events must carry t at least one lookahead ahead — guaranteed because
// every cross-shard event is a message with transport latency >= delta.
func (sh *shard) send(e ev) {
	ds := sh.eng.shardOf(e.node)
	if ds == sh.id {
		sh.push(e)
		return
	}
	sh.outbox[ds] = append(sh.outbox[ds], e)
}

// sampleLatency draws a latency ignoring the delivery verdict — the path
// acknowledgements take (modeled reliable; see doc.go).
func (e *engine) sampleLatency(rng *overlay.RNG) float64 {
	lat, _ := e.cfg.Transport.Sample(rng)
	if lat < e.delta {
		lat = e.delta
	}
	return lat
}

// runEpoch processes every local event with t < end.
func (sh *shard) runEpoch(end float64) {
	for {
		e, ok := sh.q.popBefore(end)
		if !ok {
			break
		}
		sh.events++
		switch e.kind {
		case evStart:
			sh.handleStart(e)
		case evReq:
			sh.handleReq(e)
		case evAck:
			delete(sh.pending, e.a)
		case evTimeout:
			sh.handleTimeout(e)
		case evDown:
			sh.handleToggle(e.t, e.node, false)
		case evUp:
			sh.handleToggle(e.t, e.node, true)
		case evStab:
			sh.handleStab(e)
		}
	}
}

func (sh *shard) handleStart(e ev) {
	eng := sh.eng
	l := &eng.lookups[e.lk]
	if l.state != lkScheduled {
		return // defensive: a lookup starts at most once
	}
	// Condition on surviving endpoints, as the static model does: the
	// source authoritatively (it is local), the destination through the
	// epoch snapshot (the freshest view any node could have of a remote).
	if !eng.online[l.src] || !eng.snapshot.Get(int(l.dst)) {
		l.state = lkSkipped
		sh.acc[l.startBucket].skipped++
		return
	}
	l.state = lkPending
	sh.acc[l.startBucket].started++
	sh.forward(e.t, e.lk, l.src)
}

// forward advances the lookup held at cur: complete it, or try the first
// next-hop candidate.
func (sh *shard) forward(t float64, lk uint32, cur uint32) {
	l := &sh.eng.lookups[lk]
	if cur == l.dst {
		l.state = lkCompleted
		acc := &sh.acc[l.startBucket]
		acc.completed++
		acc.sumHops += float64(l.hops)
		acc.sumLatency += t - l.start
		return
	}
	sh.attempt(t, lk, cur, 0, 0)
}

// attempt tries candidate ci (retransmission try) of cur's next-hop
// preference list: send the request, charge the message, and arm the
// retransmission timeout. An exhausted candidate list fails the lookup —
// greedy forwarding with per-hop retries but no backtracking, matching the
// paper's assumption 3.
func (sh *shard) attempt(t float64, lk uint32, cur uint32, ci, try int) {
	eng := sh.eng
	l := &eng.lookups[lk]
	cands := eng.fwd.AppendCandidateHops(sh.candBuf[:0], overlay.ID(cur), overlay.ID(l.dst))
	sh.candBuf = cands[:0]
	if ci >= len(cands) {
		l.state = lkFailed
		sh.acc[l.startBucket].failed++
		return
	}
	next := uint32(cands[ci])
	sh.acc[eng.bucketOf(t)].msgs++
	lat, delivered := eng.cfg.Transport.Sample(sh.rng)
	if lat < eng.delta {
		lat = eng.delta
	}
	attempt := sh.nextAttempt
	sh.nextAttempt++
	sh.pending[attempt] = pendingHop{lk: lk, node: cur, cand: uint16(ci), try: uint8(try)}
	if delivered {
		sh.send(ev{t: t + lat, kind: evReq, node: next, lk: lk, a: attempt, b: cur})
	}
	sh.push(ev{t: t + eng.rto, kind: evTimeout, node: cur, lk: lk, a: attempt})
}

func (sh *shard) handleReq(e ev) {
	eng := sh.eng
	y := e.node
	if !eng.online[y] {
		return // dead receiver: the sender's timeout will fire
	}
	// Acknowledge (reliable, latency-only) so the sender retires the
	// attempt, then keep forwarding — ownership of the lookup state has
	// just transferred to this shard.
	sh.acc[eng.bucketOf(e.t)].msgs++
	sh.send(ev{t: e.t + eng.sampleLatency(sh.rng), kind: evAck, node: e.b, a: e.a})
	l := &eng.lookups[e.lk]
	l.hops++
	if int(l.hops) > eng.maxHops {
		l.state = lkFailed
		sh.acc[l.startBucket].failed++
		return
	}
	sh.forward(e.t, e.lk, y)
}

func (sh *shard) handleTimeout(e ev) {
	pd, ok := sh.pending[e.a]
	if !ok {
		return // acknowledged in the meantime
	}
	delete(sh.pending, e.a)
	eng := sh.eng
	sh.acc[eng.bucketOf(e.t)].timeouts++
	// A pending timeout means the downstream hop did not accept (requests
	// that were acknowledged retire their attempt before the RTO). If the
	// holder itself died while waiting, the lookup dies with it — a dead
	// node must not keep retransmitting or routing.
	if !eng.online[pd.node] {
		l := &eng.lookups[pd.lk]
		l.state = lkFailed
		sh.acc[l.startBucket].failed++
		return
	}
	// Retransmit to the same candidate first (a lost request must not skip
	// the best next hop); fail over to the next candidate once exhausted.
	if int(pd.try) < eng.cfg.Retransmits {
		sh.attempt(e.t, pd.lk, pd.node, int(pd.cand), int(pd.try)+1)
		return
	}
	sh.attempt(e.t, pd.lk, pd.node, int(pd.cand)+1, 0)
}

func (sh *shard) handleToggle(t float64, node uint32, up bool) {
	eng := sh.eng
	if eng.online[node] == up {
		return // idempotent: overlapping scenario schedules are legal
	}
	eng.online[node] = up
	delta := int32(node) + 1
	if !up {
		delta = -delta
	}
	sh.toggles = append(sh.toggles, delta)
	if up && eng.mnt != nil {
		cost := eng.mnt.Join(overlay.ID(node), eng.snapshot, sh.rng)
		sh.acc[eng.bucketOf(t)].maint += cost
	}
}

func (sh *shard) handleStab(e ev) {
	eng := sh.eng
	if eng.online[e.node] && eng.mnt != nil {
		cost := eng.mnt.Stabilize(overlay.ID(e.node), eng.snapshot, sh.rng)
		sh.acc[eng.bucketOf(e.t)].maint += cost
	}
	next := e.t + eng.cfg.StabilizeEvery
	if next <= eng.cfg.Duration {
		sh.push(ev{t: next, kind: evStab, node: e.node})
	}
}

// run executes the engine to completion: epochs of one lookahead each,
// with a barrier between epochs that merges cross-shard messages (sorted
// by arrival time, ties by source-shard order), applies lifecycle deltas
// to the alive snapshot, and samples per-bucket online fractions. Shards
// run concurrently within an epoch; with one shard everything is inline.
func (e *engine) run() {
	e.onlineFrac[0] = float64(e.onlineCount) / float64(e.n)
	e.nextBucket = 1

	var scratch []ev
	end := e.delta
	for {
		pendingWork := false
		for _, sh := range e.shards {
			if sh.q.size() > 0 {
				pendingWork = true
				break
			}
		}
		if !pendingWork {
			break
		}

		if len(e.shards) == 1 {
			e.shards[0].runEpoch(end)
		} else {
			var wg sync.WaitGroup
			for _, sh := range e.shards {
				wg.Add(1)
				go func(sh *shard) {
					defer wg.Done()
					sh.runEpoch(end)
				}(sh)
			}
			wg.Wait()
		}

		// Barrier: lifecycle deltas first (so merged messages and the next
		// epoch observe the post-toggle snapshot), then message merge.
		for _, sh := range e.shards {
			for _, d := range sh.toggles {
				if d > 0 {
					e.snapshot.Set(int(d - 1))
					e.onlineCount++
				} else {
					e.snapshot.Clear(int(-d - 1))
					e.onlineCount--
				}
			}
			sh.toggles = sh.toggles[:0]
		}
		for di, dst := range e.shards {
			scratch = scratch[:0]
			for _, src := range e.shards {
				scratch = append(scratch, src.outbox[di]...)
				src.outbox[di] = src.outbox[di][:0]
			}
			// Stable sort by arrival time: ties keep source-shard order,
			// which is what makes merges deterministic. (Stable, not an
			// insertion sort: the buffer is a concatenation of per-source
			// runs and can be large under heavy cross-shard traffic.)
			sort.SliceStable(scratch, func(i, j int) bool { return scratch[i].t < scratch[j].t })
			for _, m := range scratch {
				dst.push(m)
			}
		}

		// Sample online fractions for every bucket boundary this epoch
		// crossed (the boundary value is the first barrier at/after it).
		for e.nextBucket < e.cfg.Buckets && end >= float64(e.nextBucket)*e.width {
			e.onlineFrac[e.nextBucket] = float64(e.onlineCount) / float64(e.n)
			e.nextBucket++
		}

		// Advance; skip idle stretches (all heap tops far in the future)
		// in one hop while staying on lookahead-aligned boundaries.
		minTop := math.Inf(1)
		for _, sh := range e.shards {
			if t, ok := sh.q.minTime(); ok && t < minTop {
				minTop = t
			}
		}
		next := end + e.delta
		if jump := e.delta * math.Floor(minTop/e.delta); jump > next {
			next = jump
		}
		end = next
	}
	// Buckets the run never reached keep the last sampled online fraction.
	for e.nextBucket < e.cfg.Buckets {
		e.onlineFrac[e.nextBucket] = float64(e.onlineCount) / float64(e.n)
		e.nextBucket++
	}
}
