package eventsim

import (
	"math"
	"reflect"
	"testing"
)

func scheduleConfig(scenario string, seed uint64) Config {
	return Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 6},
		Scenario: scenario,
		Params:   Params{Rate: 200, FailFraction: 0.2, FailTime: 1},
		Duration: 4,
		Seed:     seed,
	}
}

// TestBuildScheduleDeterministic: the schedule is a pure function of the
// config — identical across calls, different under a different seed.
func TestBuildScheduleDeterministic(t *testing.T) {
	a, err := BuildSchedule(scheduleConfig("massfail", 7))
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	b, err := BuildSchedule(scheduleConfig("massfail", 7))
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same config produced different schedules")
	}
	c, err := BuildSchedule(scheduleConfig("massfail", 8))
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	if reflect.DeepEqual(a.Lookups, c.Lookups) {
		t.Error("different seeds produced identical lookup schedules")
	}
}

// TestBuildScheduleMatchesRun: the schedule IS what Run executes — the
// run's scheduled-lookup count equals the schedule's, and the outcome
// partition (started + skipped) covers exactly that cohort. This holds
// because both paths share one scenario-programming helper; the test guards
// against the two ever diverging.
func TestBuildScheduleMatchesRun(t *testing.T) {
	for _, scenario := range []string{"massfail", "churn", "flashcrowd"} {
		cfg := scheduleConfig(scenario, 11)
		sched, err := BuildSchedule(cfg)
		if err != nil {
			t.Fatalf("%s: BuildSchedule: %v", scenario, err)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: Run: %v", scenario, err)
		}
		if res.Lookups != len(sched.Lookups) {
			t.Errorf("%s: Run scheduled %d lookups, BuildSchedule %d", scenario, res.Lookups, len(sched.Lookups))
		}
		tot := res.Totals()
		if tot.Started+tot.Skipped != len(sched.Lookups) {
			t.Errorf("%s: started %d + skipped %d != scheduled %d", scenario, tot.Started, tot.Skipped, len(sched.Lookups))
		}
		if sched.Nodes != res.Nodes {
			t.Errorf("%s: schedule population %d != run population %d", scenario, sched.Nodes, res.Nodes)
		}
		// The engine skips a lookup when src or dst is offline at start;
		// OfflineAt is the instantaneous state while the engine checks dst
		// against the per-epoch alive snapshot, so toggles landing within one
		// lookahead epoch (MinLatency) of a lookup start can be judged
		// differently. The prediction must agree up to that churn-rate ×
		// epoch-width slack.
		skipped := 0
		for _, lk := range sched.Lookups {
			if sched.OfflineAt(lk.Src, lk.T) || sched.OfflineAt(lk.Dst, lk.T) {
				skipped++
			}
		}
		slack := 2 + len(sched.Toggles)/50
		if diff := skipped - tot.Skipped; diff < -slack || diff > slack {
			t.Errorf("%s: OfflineAt predicts %d skips, engine skipped %d (slack %d)", scenario, skipped, tot.Skipped, slack)
		}
	}
}

// TestBuildScheduleMassfailShape: the massfail schedule has the documented
// structure — roughly FailFraction·N down-toggles (per-node Bernoulli, so
// binomially distributed) all at FailTime, no joins, every event inside
// the horizon.
func TestBuildScheduleMassfailShape(t *testing.T) {
	cfg := scheduleConfig("massfail", 3)
	sched, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	mean := cfg.Params.FailFraction * float64(sched.Nodes)
	tol := 4 * math.Sqrt(mean*(1-cfg.Params.FailFraction))
	downs := 0
	for _, tg := range sched.Toggles {
		if tg.Up {
			t.Errorf("massfail scheduled a join at t=%v node %d", tg.T, tg.Node)
		}
		if tg.T != cfg.Params.FailTime {
			t.Errorf("toggle at t=%v, want FailTime %v", tg.T, cfg.Params.FailTime)
		}
		downs++
	}
	if d := math.Abs(float64(downs) - mean); d > tol {
		t.Errorf("massfail killed %d nodes, want %v ± %v", downs, mean, tol)
	}
	for _, lk := range sched.Lookups {
		if lk.T < 0 || lk.T > sched.Duration {
			t.Errorf("lookup at t=%v outside [0,%v]", lk.T, sched.Duration)
		}
		if lk.Src == lk.Dst {
			t.Errorf("lookup with src == dst == %d", lk.Src)
		}
	}
	if len(sched.Lookups) == 0 {
		t.Error("massfail scheduled no lookups")
	}
}
