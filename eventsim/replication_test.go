package eventsim

import (
	"reflect"
	"testing"
)

// TestReplicasValidation covers the knob's rejection paths: the factor
// must stay within [0, replica.MaxReplicas].
func TestReplicasValidation(t *testing.T) {
	ok := Config{Protocol: "chord", Overlay: OverlayConfig{Bits: 6}, Scenario: "massfail"}
	for _, k := range []int{-1, 9, 100} {
		cfg := ok
		cfg.Params.Replicas = k
		if _, err := Run(cfg); err == nil {
			t.Errorf("Replicas=%d accepted", k)
		}
	}
}

// TestReplicasOffIsBitIdentical pins the opt-in contract: Replicas 0 and
// 1 both mean "no replication" and must leave the whole result — every
// bucket, every counter — bit-identical to a run that never heard of the
// knob. This is the guard that keeps replication from perturbing the
// RNG streams of every pre-existing golden.
func TestReplicasOffIsBitIdentical(t *testing.T) {
	base := Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.3, FailTime: 1, Rate: 800},
		Duration: 4,
		Seed:     7,
	}
	a := mustRun(t, base)
	for _, k := range []int{0, 1} {
		cfg := base
		cfg.Params.Replicas = k
		b := mustRun(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Replicas=%d diverged from the unreplicated run", k)
		}
	}
	if a.Replicas != 1 {
		t.Errorf("Result.Replicas = %d, want 1 for an unreplicated run", a.Replicas)
	}
}

// TestReplicationDeterministic extends the reproducibility contract to
// k > 1: identical configurations produce bit-identical results.
func TestReplicationDeterministic(t *testing.T) {
	cfg := Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.4, FailTime: 1, Rate: 800, Replicas: 3},
		Duration: 4,
		Seed:     13,
	}
	a, b := mustRun(t, cfg), mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical replicated runs diverged")
	}
	if a.Replicas != 3 {
		t.Errorf("Result.Replicas = %d, want 3", a.Replicas)
	}
}

// TestReplicationHealthyMatchesUnreplicated: in a failure-free run every
// lookup completes at the root (owner 0), so k = 3 must reproduce the
// k = 1 traffic and hop statistics exactly — replication costs nothing
// until churn makes it earn its keep. Repair traffic is likewise zero
// because no lifecycle toggle ever fires.
func TestReplicationHealthyMatchesUnreplicated(t *testing.T) {
	base := Config{
		Protocol: "kademlia",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0, Rate: 500},
		Duration: 3,
		Seed:     5,
	}
	repl := base
	repl.Params.Replicas = 3
	a, b := mustRun(t, base), mustRun(t, repl)
	if !reflect.DeepEqual(a.Buckets, b.Buckets) {
		t.Error("healthy replicated run diverged from unreplicated buckets")
	}
	if got := b.Totals().RepairMessages; got != 0 {
		t.Errorf("healthy run charged %d repair messages, want 0", got)
	}
}

// TestReplicationFailoverCompletes is the deterministic core of the
// feature: a lookup whose root is dead at issue time is skipped without
// replication, but with k = 3 the start-time eligibility mask routes it
// to the first live successor owner and it completes.
func TestReplicationFailoverCompletes(t *testing.T) {
	const dead = 40 // root of the looked-up key; owners are 40, 41, 42
	err := RegisterScenario("test-dead-root", func(p Params) (Scenario, error) {
		return scenarioFunc{name: "test-dead-root", program: func(env *Env) error {
			env.SetOffline(dead)
			env.LookupAt(1, 3, dead)
			return nil
		}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 6},
		Scenario: "test-dead-root",
		Duration: 3,
		Seed:     1,
	}
	plain := mustRun(t, base)
	if tot := plain.Totals(); tot.Skipped != 1 || tot.Completed != 0 {
		t.Fatalf("unreplicated: skipped=%d completed=%d, want the lookup skipped", tot.Skipped, tot.Completed)
	}
	repl := base
	repl.Params.Replicas = 3
	res := mustRun(t, repl)
	if tot := res.Totals(); tot.Completed != 1 || tot.Failed != 0 || tot.Skipped != 0 {
		t.Fatalf("replicated: %+v, want the lookup completed via a successor owner", tot)
	}
}

// TestReplicationUnderMassfail locks the aggregate behavior the knob
// exists for: with 40% of the population dead and maintenance healing
// the routing tables, the residual failures are mostly dead key roots —
// exactly what k = 3 replication repairs. It must recover a clear slice
// of the lookups the unreplicated run loses, mid-flight failovers leave
// retry events in the traces, and the repair bill — k messages per
// effective toggle — shows up in the accounting.
func TestReplicationUnderMassfail(t *testing.T) {
	base := Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.4, FailTime: 1, Rate: 1500},
		Duration: 4,
		Seed:     11,
		Trace:    400,
		Maintain: true,
	}
	repl := base
	repl.Params.Replicas = 3
	plain, res := mustRun(t, base), mustRun(t, repl)

	sPlain := plain.WindowSuccess(2, 4)
	sRepl := res.WindowSuccess(2, 4)
	if !(sRepl > sPlain+0.03) {
		t.Errorf("replication did not help: k=3 success %.4f vs k=1 %.4f", sRepl, sPlain)
	}
	if plain.Totals().RepairMessages != 0 {
		t.Errorf("unreplicated run charged %d repair messages", plain.Totals().RepairMessages)
	}
	// massfail toggles ~0.4·256 nodes once each; every one owes k messages.
	if got := res.Totals().RepairMessages; got == 0 || got%3 != 0 {
		t.Errorf("repair messages = %d, want a positive multiple of k=3", got)
	}
	retries := 0
	for _, tr := range res.Traces {
		for _, ev := range tr.Events {
			if ev.Kind == TraceRetry {
				retries++
			}
		}
	}
	if retries == 0 {
		t.Error("no retry events in traces despite mid-flight owner deaths")
	}
}
