package eventsim

import (
	"reflect"
	"strings"
	"testing"

	"rcm/fault"
)

// faultCfg is the shared fault-test substrate: a stable population
// (faultstorm) over a constant transport, so every deviation from the
// lossless baseline is attributable to the plan under test.
func faultCfg(transport string) Config {
	tr, err := ParseTransport(transport)
	if err != nil {
		panic(err)
	}
	return Config{
		Protocol:  "chord",
		Overlay:   OverlayConfig{Bits: 8},
		Scenario:  "faultstorm",
		Params:    Params{Rate: 500},
		Transport: tr,
		Duration:  4,
		Seed:      42,
	}
}

// TestFaultDeterministic locks the tentpole reproducibility contract for
// fault injection: for a fixed (Seed, Shards), a full six-clause plan
// produces bit-identical Results across repeated runs and across both
// schedulers, with every clause's counter actually exercised.
func TestFaultDeterministic(t *testing.T) {
	const plan = "partition:2@1-2,delayspike:3@2-3,dup:0.2,reorder:0.2,corrupt:0.1,stall:0.1:0.3"
	for _, shards := range []int{1, 4} {
		cfg := faultCfg("fault:" + plan + "/constant")
		cfg.Shards = shards
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: two identical fault runs diverged", shards)
		}
		cfg.Scheduler = SchedulerHeap
		h := mustRun(t, cfg)
		if !reflect.DeepEqual(a, h) {
			t.Fatalf("shards=%d: heap scheduler diverged from wheel under faults", shards)
		}
		f := a.Faults
		if f.PartitionDrops == 0 || f.Dups == 0 || f.Reorders == 0 || f.Corrupts == 0 || f.StallDrops == 0 {
			t.Fatalf("shards=%d: some clause never fired: %s", shards, f.String())
		}
	}
}

// TestPartitionWindowRoutability: during the partition window success
// drops below 1 (cross-group requests blackhole), and it recovers to
// exactly 1 for lookups issued after the heal — the property figure E21
// plots against the static model's prediction.
func TestPartitionWindowRoutability(t *testing.T) {
	cfg := faultCfg("fault:partition:2@2-4/constant")
	cfg.Duration = 8
	cfg.Buckets = 8
	res := mustRun(t, cfg)
	if res.Faults.PartitionDrops == 0 {
		t.Fatal("partition window never dropped a request")
	}
	if s := res.WindowSuccess(0, 1); s != 1 {
		t.Errorf("pre-partition success %v, want exactly 1", s)
	}
	if s := res.WindowSuccess(2, 4); !(s < 1) {
		t.Errorf("in-window success %v, want < 1", s)
	}
	if s := res.WindowSuccess(5, 8); s != 1 {
		t.Errorf("post-heal success %v, want exactly 1 (no lingering state)", s)
	}
}

// TestDupReorderOutcomeInvariant: over a lossless inner transport,
// duplication and reordering change message counts and latencies but not
// outcomes — per-bucket Started/Completed/SumHops and the hop-count
// histograms equal the fault-free baseline exactly. This is the property
// that makes dup/reorder cells conformance-pinnable histogram for
// histogram against the live cluster.
func TestDupReorderOutcomeInvariant(t *testing.T) {
	base := mustRun(t, faultCfg("constant"))
	res := mustRun(t, faultCfg("fault:dup:0.3,reorder:0.3/constant"))
	if res.Faults.Dups == 0 || res.Faults.Reorders == 0 {
		t.Fatalf("plan never fired: %s", res.Faults.String())
	}
	for i := range base.Buckets {
		b, f := base.Buckets[i], res.Buckets[i]
		if b.Started != f.Started || b.Completed != f.Completed || b.SumHops != f.SumHops {
			t.Fatalf("bucket %d outcomes drifted under dup/reorder: baseline %+v vs fault %+v", i, b, f)
		}
		if res.HopDist[i] != base.HopDist[i] {
			t.Fatalf("bucket %d hop distribution drifted under dup/reorder", i)
		}
	}
	if tot := res.Totals(); tot.LookupMessages <= base.Totals().LookupMessages {
		t.Error("duplication did not increase message count")
	}
}

// TestCorruptAndStallRecoverable: corruption and stalls drop requests a
// retransmitting sender can route around — the counters fire, timeouts
// occur, and success stays high because retransmission and candidate
// failover absorb the damage.
func TestCorruptAndStallRecoverable(t *testing.T) {
	res := mustRun(t, faultCfg("fault:corrupt:0.1,stall:0.1:0.3/constant"))
	if res.Faults.Corrupts == 0 || res.Faults.StallDrops == 0 {
		t.Fatalf("plan never fired: %s", res.Faults.String())
	}
	tot := res.Totals()
	if tot.Timeouts == 0 {
		t.Error("corrupt/stall drops produced no retransmission timeouts")
	}
	if s := tot.Start; s != 0 {
		t.Fatalf("unexpected totals window start %v", s)
	}
	if s := res.WindowSuccess(0, res.Duration); !(s > 0.9) {
		t.Errorf("success %v under mild corrupt/stall, want > 0.9", s)
	}
}

// TestLossyTotalBlackhole (the lossy:1.0 edge case): with every request
// dropped, every started lookup fails — and the run still terminates with
// the pending-arena ownership intact (no panic, no double recycling).
func TestLossyTotalBlackhole(t *testing.T) {
	cfg := faultCfg("lossy:1.0")
	cfg.Overlay.Bits = 6
	cfg.Params.Rate = 100
	cfg.Duration = 2
	res := mustRun(t, cfg)
	tot := res.Totals()
	if tot.Started == 0 {
		t.Fatal("no lookups started")
	}
	if tot.Completed != 0 || tot.Failed != tot.Started {
		t.Errorf("blackhole run completed %d and failed %d of %d started; want 0 completed, all failed",
			tot.Completed, tot.Failed, tot.Started)
	}
	if tot.Timeouts == 0 {
		t.Error("blackhole run fired no timeouts")
	}
}

// TestFaultSpecRoundTrip (nested grammar): fault plans compose over lossy
// inner transports and round-trip through TransportSpec to a canonical
// fixed point, aliases and default inners included.
func TestFaultSpecRoundTrip(t *testing.T) {
	for in, canonical := range map[string]string{
		"fault:dup:0.1/lossy:0.3:empirical:0.08": "fault:dup:0.1/lossy:0.3:empirical:0.08",
		"FAULTS:part:2@1-2,dup:0.1":              "fault:partition:2@1-2,dup:0.1/constant:0.05",
		"fault:stall:0.1:0.5/constant:0.02":      "fault:stall:0.1:0.5/constant:0.02",
	} {
		tr, err := ParseTransport(in)
		if err != nil {
			t.Errorf("ParseTransport(%q): %v", in, err)
			continue
		}
		s := TransportSpec(tr)
		if s != canonical {
			t.Errorf("TransportSpec(ParseTransport(%q)) = %q, want %q", in, s, canonical)
		}
		again, err := ParseTransport(s)
		if err != nil {
			t.Errorf("ParseTransport(%q) (canonical respelling): %v", s, err)
			continue
		}
		if TransportSpec(again) != s {
			t.Errorf("canonical spelling not a fixed point: %q -> %q", s, TransportSpec(again))
		}
	}
}

// TestFaultPlanValidatedInConfig: a hand-built Faulty with a bad or empty
// plan is rejected by Config.Validate, not silently run.
func TestFaultPlanValidatedInConfig(t *testing.T) {
	for name, tr := range map[string]Transport{
		"empty plan": Faulty{},
		"bad plan":   Faulty{Plan: fault.Plan{Dup: 1.5}},
	} {
		cfg := faultCfg("constant")
		cfg.Transport = tr
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Config.Validate accepted", name)
		} else if !strings.Contains(err.Error(), "fault") {
			t.Errorf("%s: error %q does not mention the fault transport", name, err)
		}
	}
}

// TestAdaptiveRTOQuiescentIdentical: on a lossless, fault-free run no
// timeout ever fires, so the adaptive estimator — which only moves
// timeout deadlines — must leave the Result bit-identical to the fixed
// path.
func TestAdaptiveRTOQuiescentIdentical(t *testing.T) {
	off := faultCfg("constant")
	on := off
	on.AdaptiveRTO = true
	a, b := mustRun(t, off), mustRun(t, on)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("AdaptiveRTO changed a quiescent run's Result")
	}
}

// TestAdaptiveRTODeterministicUnderFaults: the estimator path is as
// reproducible as the fixed one — bit-identical repeated runs and
// wheel/heap agreement under an empirical transport with stalls (real
// RTT variance, real timeouts, real backoff).
func TestAdaptiveRTODeterministicUnderFaults(t *testing.T) {
	cfg := faultCfg("fault:stall:0.15:0.4/empirical:0.05")
	cfg.AdaptiveRTO = true
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical adaptive-RTO runs diverged")
	}
	cfg.Scheduler = SchedulerHeap
	h := mustRun(t, cfg)
	if !reflect.DeepEqual(a, h) {
		t.Fatal("heap scheduler diverged from wheel with AdaptiveRTO on")
	}
	if a.Faults.StallDrops == 0 || a.Totals().Timeouts == 0 {
		t.Fatalf("stall plan never exercised the estimator: %s, %d timeouts", a.Faults.String(), a.Totals().Timeouts)
	}
	if s := a.WindowSuccess(0, a.Duration); !(s > 0.8) {
		t.Errorf("adaptive-RTO success %v under stalls, want > 0.8", s)
	}
}
