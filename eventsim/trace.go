package eventsim

import (
	"fmt"
	"io"
	"sort"
)

// Trace event kinds, in lifecycle order. A traced lookup's event list
// reads as a narrative: start (or skip), then for each hop a send
// (possibly repeated by rto/retransmission and candidate failover) and
// an accepting hop, ending in done or fail.
const (
	TraceStart = "start" // lookup began at Node (both endpoints online)
	TraceSkip  = "skip"  // lookup skipped: an endpoint was offline
	TraceSend  = "send"  // Node sent the request to To (candidate Cand, retransmission Try)
	TraceHop   = "hop"   // Node accepted the request; hop count is now Hops
	TraceRTO   = "rto"   // the attempt from Node to To timed out
	TraceDone  = "done"  // lookup completed at Node after Hops hops
	TraceFail  = "fail"  // lookup failed at Node (no candidates, hop bound, or dead holder)
	TraceRetry = "retry" // replicated lookup failed over at Node toward next owner To
)

// TraceEvent is one step of a traced lookup's path.
type TraceEvent struct {
	// T is the simulated time of the event.
	T float64
	// Kind is one of the Trace* constants.
	Kind string
	// Node is where the event occurred.
	Node int
	// To is the chosen next hop (send/rto events; 0 otherwise).
	To int
	// Hops is the lookup's hop count at the event.
	Hops int
	// Cand is the candidate index being tried and Try the
	// retransmission count for it (send/rto events).
	Cand, Try int
}

// Trace is the recorded path of one sampled lookup.
type Trace struct {
	// Lookup is the lookup's schedule index; Src and Dst its endpoints.
	Lookup   int
	Src, Dst int
	// Events is the path in simulated-time order.
	Events []TraceEvent
}

// traceRec tags a recorded event with its lookup for post-run merging.
type traceRec struct {
	lk uint32
	ev TraceEvent
}

func (sh *shard) recordTrace(lk uint32, ev TraceEvent) {
	sh.traces = append(sh.traces, traceRec{lk: lk, ev: ev})
}

// mergeTraces assembles the shards' trace buffers into per-lookup
// traces. Determinism across (Seed, Shards) and schedulers: the
// simulation itself is bit-identical, so the set of recorded events and
// their times are too; within one lookup, equal-time events always come
// from a single handler chain on the lookup's current owner shard, so
// concatenating buffers in shard order and stable-sorting by time
// reproduces exactly the order a single-shard run records.
func (e *engine) mergeTraces() []Trace {
	if e.trace <= 0 {
		return nil
	}
	byLookup := make(map[uint32][]TraceEvent)
	var order []uint32
	for _, sh := range e.shards {
		for _, rec := range sh.traces {
			if _, seen := byLookup[rec.lk]; !seen {
				order = append(order, rec.lk)
			}
			byLookup[rec.lk] = append(byLookup[rec.lk], rec.ev)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	traces := make([]Trace, 0, len(order))
	for _, lk := range order {
		evs := byLookup[lk]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
		m := &e.meta[lk]
		traces = append(traces, Trace{
			Lookup: int(lk), Src: int(m.src), Dst: int(m.dst),
			Events: evs,
		})
	}
	return traces
}

// WriteTraces renders a result's sampled traces deterministically, one
// block per lookup:
//
//	lookup 3 src=17 dst=92 outcome=done hops=4
//	  t=0.401000 start node=17
//	  t=0.401000 send  node=17 -> 52 hops=0 cand=0 try=0
//	  ...
func WriteTraces(w io.Writer, r *Result) error {
	for ti := range r.Traces {
		tr := &r.Traces[ti]
		outcome, hops := traceOutcome(tr)
		if _, err := fmt.Fprintf(w, "lookup %d src=%d dst=%d outcome=%s hops=%d\n",
			tr.Lookup, tr.Src, tr.Dst, outcome, hops); err != nil {
			return err
		}
		for _, ev := range tr.Events {
			var err error
			switch ev.Kind {
			case TraceRetry:
				_, err = fmt.Fprintf(w, "  t=%.6f %-5s node=%d -> %d hops=%d\n",
					ev.T, ev.Kind, ev.Node, ev.To, ev.Hops)
			case TraceSend, TraceRTO:
				_, err = fmt.Fprintf(w, "  t=%.6f %-5s node=%d -> %d hops=%d cand=%d try=%d\n",
					ev.T, ev.Kind, ev.Node, ev.To, ev.Hops, ev.Cand, ev.Try)
			case TraceHop, TraceDone, TraceFail:
				_, err = fmt.Fprintf(w, "  t=%.6f %-5s node=%d hops=%d\n", ev.T, ev.Kind, ev.Node, ev.Hops)
			default: // start, skip
				_, err = fmt.Fprintf(w, "  t=%.6f %-5s node=%d\n", ev.T, ev.Kind, ev.Node)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// traceOutcome summarizes a trace: its terminal kind (done, fail, skip,
// or "inflight" for a lookup still running at the horizon) and final
// hop count.
func traceOutcome(tr *Trace) (string, int) {
	outcome, hops := "inflight", 0
	for _, ev := range tr.Events {
		if ev.Hops > hops {
			hops = ev.Hops
		}
		switch ev.Kind {
		case TraceDone, TraceFail, TraceSkip:
			outcome = ev.Kind
		}
	}
	return outcome, hops
}
