package eventsim

import (
	"math"
	"strings"
	"testing"
)

// TestNewParamsEquivalence: the options path produces exactly the struct
// the equivalent literal would — the literal path stays the source of
// truth and NewParams is sugar plus early validation.
func TestNewParamsEquivalence(t *testing.T) {
	got, err := NewParams(
		WithRate(2000),
		WithZipfS(0.9),
		WithFailFraction(0.2),
		WithFailTime(1),
		WithRegions(8),
		WithChurnMeans(2, 0.5),
		WithCrowd(3, 2, 20),
		WithHot(0.5),
		WithLifetime("pareto:1.5"),
		WithDowntime("exp"),
		WithDiurnal(12, 0.3),
	)
	if err != nil {
		t.Fatalf("NewParams: %v", err)
	}
	want := Params{
		Rate: 2000, ZipfS: 0.9,
		FailFraction: 0.2, FailTime: 1, Regions: 8,
		MeanOnline: 2, MeanOffline: 0.5,
		CrowdStart: 3, CrowdDuration: 2, CrowdFactor: 20, Hot: 0.5,
		Lifetime: "pareto:1.5", Downtime: "exp",
		DiurnalPeriod: 12, DiurnalAmplitude: 0.3,
	}
	if got != want {
		t.Errorf("NewParams = %+v\nwant       %+v", got, want)
	}

	// No options = zero value, which validates.
	zero, err := NewParams()
	if err != nil || zero != (Params{}) {
		t.Errorf("NewParams() = %+v, %v; want zero Params", zero, err)
	}
}

// TestNewParamsValidates: construction rejects out-of-domain knobs with
// the same descriptive errors Config.Validate would raise later.
func TestNewParamsValidates(t *testing.T) {
	for name, tc := range map[string]struct {
		opts    []Option
		wantSub string
	}{
		"negative rate":   {[]Option{WithRate(-1)}, "Rate = -1"},
		"fail fraction":   {[]Option{WithFailFraction(1.5)}, "FailFraction = 1.5 out of [0,1]"},
		"hot above one":   {[]Option{WithHot(2)}, "Hot = 2 out of [0,1]"},
		"bad lifetime":    {[]Option{WithLifetime("warp")}, "unknown family"},
		"bad amplitude":   {[]Option{WithDiurnal(12, 1)}, "DiurnalAmplitude = 1 out of [0,1)"},
		"negative region": {[]Option{WithRegions(-2)}, "Regions = -2"},
	} {
		_, err := NewParams(tc.opts...)
		if err == nil {
			t.Errorf("%s: NewParams accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

// TestHotValidation: the Hot knob's domain is [0,1] — the table pins the
// boundary, interior, and every rejection class (negative, above one, NaN)
// with the descriptive error text.
func TestHotValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		hot  float64
		ok   bool
	}{
		{"zero selects default", 0, true},
		{"interior", 0.5, true},
		{"lower boundary epsilon", 1e-9, true},
		{"upper boundary", 1, true},
		{"negative", -0.1, false},
		{"above one", 1.1, false},
		{"far out", 80, false},
		{"NaN", math.NaN(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := Params{Hot: tc.hot}
			err := p.Validate()
			if tc.ok {
				if err != nil {
					t.Fatalf("Validate(Hot=%v) = %v, want nil", tc.hot, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate(Hot=%v) accepted", tc.hot)
			}
			if !strings.Contains(err.Error(), "Hot") || !strings.Contains(err.Error(), "out of [0,1]") {
				t.Errorf("Validate(Hot=%v) error %q not descriptive", tc.hot, err)
			}
			// The options path surfaces the same rejection at construction.
			if _, err := NewParams(WithHot(tc.hot)); err == nil {
				t.Errorf("NewParams(WithHot(%v)) accepted", tc.hot)
			}
		})
	}
}
