package eventsim

import (
	"math"
	"strings"
	"testing"
	"time"

	"rcm/eventsim/lifetime"
	"rcm/overlay"
)

// TestParseTransportErrorTable is the table-driven error-path suite for
// ParseTransport: every rejected spelling must fail with a descriptive,
// package-prefixed message, never a zero-value transport.
func TestParseTransportErrorTable(t *testing.T) {
	cases := map[string]struct {
		spec    string
		wantSub string
	}{
		"unknown name":       {"warp", "unknown transport"},
		"junk constant":      {"constant:x", "constant latency"},
		"negative constant":  {"constant:-0.1", "must be >= 0"},
		"junk empirical":     {"empirical:x", "empirical median"},
		"negative empirical": {"empirical:-1", "empirical median"},
		"loss rate high":     {"lossy:2", "out of [0,1]"},
		"loss rate negative": {"lossy:-0.1", "out of [0,1]"},
		"junk loss rate":     {"lossy:x", "loss rate"},
		"nested lossy":       {"lossy:0.1:lossy:0.1", "cannot nest"},
		"bad lossy inner":    {"lossy:0.1:warp", "unknown transport"},
		"fault empty plan":   {"fault:", "needs a plan"},
		"fault bad clause":   {"fault:warp:1", "unknown clause"},
		"fault bad inner":    {"fault:dup:0.1/warp", "unknown transport"},
		"nested fault":       {"fault:dup:0.1/fault:dup:0.1/constant", "cannot nest another fault"},
		"lossy over fault":   {"lossy:0.1:fault:dup:0.1/constant", "must be outermost"},
	}
	for name, tc := range cases {
		tr, err := ParseTransport(tc.spec)
		if err == nil {
			t.Errorf("%s: ParseTransport(%q) accepted (-> %v)", name, tc.spec, tr)
			continue
		}
		if !strings.Contains(err.Error(), "eventsim:") {
			t.Errorf("%s: error %q lacks package context", name, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

// TestParseLifetimeErrorTable is the matching suite for ParseLifetime:
// non-positive shapes, Pareto alpha <= 1 (infinite mean) and malformed
// trace specs must return descriptive errors instead of producing
// degenerate schedules.
func TestParseLifetimeErrorTable(t *testing.T) {
	cases := map[string]struct {
		spec    string
		wantSub string
	}{
		"unknown family":      {"cauchy", "unknown family"},
		"exp with arg":        {"exp:2", "takes no argument"},
		"pareto alpha 1":      {"pareto:1", "infinite mean"},
		"pareto alpha 0.5":    {"pareto:0.5", "infinite mean"},
		"pareto junk":         {"pareto:x", "argument"},
		"weibull negative":    {"weibull:-1", "must be positive"},
		"lognormal zero":      {"lognormal:-2", "must be positive"},
		"trace no path":       {"trace", "file path"},
		"trace missing":       {"trace:/no/such/file", "no/such/file"},
		"argument familyless": {":1.5", "no family name"},
	}
	for name, tc := range cases {
		fam, err := ParseLifetime(tc.spec)
		if err == nil {
			t.Errorf("%s: ParseLifetime(%q) accepted (-> %v)", name, tc.spec, fam)
			continue
		}
		if !strings.Contains(err.Error(), "lifetime:") {
			t.Errorf("%s: error %q lacks package context", name, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

// TestParamsLifetimeValidation: the new Params fields are validated up
// front — Run must refuse the configuration before any scheduling.
func TestParamsLifetimeValidation(t *testing.T) {
	ok := Config{Protocol: "chord", Overlay: OverlayConfig{Bits: 6}, Scenario: "heavytail"}
	for name, mutate := range map[string]func(*Config){
		"unknown lifetime":     func(c *Config) { c.Params.Lifetime = "cauchy" },
		"infinite-mean pareto": func(c *Config) { c.Params.Lifetime = "pareto:0.9" },
		"unknown downtime":     func(c *Config) { c.Params.Downtime = "nope" },
		"amplitude 1":          func(c *Config) { c.Params.DiurnalAmplitude = 1 },
		"amplitude negative":   func(c *Config) { c.Params.DiurnalAmplitude = -0.2 },
		"amplitude NaN":        func(c *Config) { c.Params.DiurnalAmplitude = math.NaN() },
		"period negative":      func(c *Config) { c.Params.DiurnalPeriod = -1 },
		"period Inf":           func(c *Config) { c.Params.DiurnalPeriod = math.Inf(1) },
	} {
		cfg := ok
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}
	if _, err := Run(ok); err != nil {
		t.Errorf("valid heavytail config rejected: %v", err)
	}
}

// TestScenarioFactoryErrors: factory-level rejections for the lifetime
// scenarios — the degenerate configurations must never reach scheduling.
func TestScenarioFactoryErrors(t *testing.T) {
	base := Config{Protocol: "chord", Overlay: OverlayConfig{Bits: 6}, Duration: 2}
	for name, cfg := range map[string]Config{
		"tracechurn without trace": func() Config {
			c := base
			c.Scenario = "tracechurn"
			return c
		}(),
		"heavytail infinite mean": func() Config {
			c := base
			c.Scenario = "heavytail"
			c.Params.Lifetime = "pareto:1"
			return c
		}(),
		"diurnal unknown downtime": func() Config {
			c := base
			c.Scenario = "diurnal"
			c.Params.Downtime = "warp"
			return c
		}(),
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestHeavytailScenarioRuns: the heavytail scenario produces a live churn
// schedule whose realized availability sits in the right neighborhood of
// 1 − q_eff, and completes lookups.
func TestHeavytailScenarioRuns(t *testing.T) {
	res := mustRun(t, Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "heavytail",
		Params:   Params{MeanOnline: 1, MeanOffline: 0.25, Rate: 800},
		Duration: 6,
		Seed:     3,
	})
	total := res.Totals()
	if total.Started == 0 || total.Completed == 0 {
		t.Fatalf("heavytail run started %d completed %d lookups", total.Started, total.Completed)
	}
	last := res.Buckets[len(res.Buckets)-1].OnlineFraction
	if last < 0.55 || last > 0.95 {
		t.Errorf("heavytail online fraction %v implausible for q_eff=0.2", last)
	}
}

// TestDiurnalOscillation: with a strong amplitude and a period shorter
// than the run, the online fraction must visibly oscillate across
// buckets — the population swing the scenario exists to model.
func TestDiurnalOscillation(t *testing.T) {
	res := mustRun(t, Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 9},
		Scenario: "diurnal",
		Params: Params{
			MeanOnline: 0.8, MeanOffline: 0.4, Rate: 500,
			DiurnalPeriod: 4, DiurnalAmplitude: 0.85,
		},
		Duration: 8,
		Buckets:  16,
		Seed:     2,
	})
	min, max := 1.0, 0.0
	for _, b := range res.Buckets[2:] {
		if b.OnlineFraction < min {
			min = b.OnlineFraction
		}
		if b.OnlineFraction > max {
			max = b.OnlineFraction
		}
	}
	if max-min < 0.08 {
		t.Errorf("diurnal online fraction barely moved: min %.4f max %.4f", min, max)
	}
}

// TestTracechurnReplays: a run driven by a trace file completes and its
// online fraction tracks the q_eff implied by the requested means (the
// trace is rescaled to MeanOnline).
func TestTracechurnReplays(t *testing.T) {
	res := mustRun(t, Config{
		Protocol: "kademlia",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "tracechurn",
		Params: Params{
			MeanOnline: 1, MeanOffline: 0.25, Rate: 500,
			Lifetime: "trace:" + testTracePath(t),
		},
		Duration: 6,
		Seed:     4,
	})
	if res.Totals().Completed == 0 {
		t.Fatal("tracechurn completed no lookups")
	}
	last := res.Buckets[len(res.Buckets)-1].OnlineFraction
	if last < 0.5 || last > 0.95 {
		t.Errorf("tracechurn online fraction %v implausible for q_eff=0.2", last)
	}
}

// TestDiurnalQEffExceedsUnmodulated: the diurnal q_eff is the period
// average of the instantaneous offline fraction, which by Jensen exceeds
// the unmodulated ratio — returning E[off]/(E[on]+E[off]) would bias the
// static-model comparison columns for diurnal runs.
func TestDiurnalQEffExceedsUnmodulated(t *testing.T) {
	p := Params{MeanOnline: 1, MeanOffline: 0.25, DiurnalAmplitude: 0.6}
	flat := p.EffectiveOffline("churn", 10)
	diurnal := p.EffectiveOffline("diurnal", 10)
	if flat != 0.2 {
		t.Fatalf("churn q_eff = %v, want 0.2", flat)
	}
	if !(diurnal > flat+0.01) || diurnal > 0.5 {
		t.Errorf("diurnal q_eff = %v, want measurably above the unmodulated %v (Jensen)", diurnal, flat)
	}
	// A small amplitude converges back to the unmodulated ratio.
	p.DiurnalAmplitude = 0.01
	if nearly := p.EffectiveOffline("diurnal", 10); math.Abs(nearly-flat) > 0.001 {
		t.Errorf("near-zero amplitude diurnal q_eff = %v, want ≈ %v", nearly, flat)
	}
}

// TestEffectiveOfflineResolvesAliases: every registered alias must yield
// the same q_eff as its canonical scenario — an alias silently mapping to
// the zero default would put the static comparison columns at the wrong q.
func TestEffectiveOfflineResolvesAliases(t *testing.T) {
	p := Params{MeanOnline: 1, MeanOffline: 0.25, FailFraction: 0.3}
	for alias, canonical := range map[string]string{
		"fail":         "massfail",
		"regions":      "correlated",
		"pareto-churn": "heavytail",
		"daily":        "diurnal",
		"trace-replay": "tracechurn",
		" CHURN ":      "churn",
	} {
		if got, want := p.EffectiveOffline(alias, 10), p.EffectiveOffline(canonical, 10); got != want {
			t.Errorf("q_eff(%q) = %v, want %v (= q_eff(%q))", alias, got, want, canonical)
		}
	}
	if got := p.EffectiveOffline("churn", 10); got != 0.2 {
		t.Errorf("q_eff(churn) = %v, want 0.2", got)
	}
}

// stuckFamily is a deliberately misbehaving lifetime implementation whose
// samples are zero — the guard in churnSchedule must turn it into a
// descriptive error in every churn-family scenario (a missing guard
// would hang the diurnal scheduling loop forever).
type stuckFamily struct{}

func (stuckFamily) Name() string                        { return "stuck" }
func (stuckFamily) Dist(mean float64) (Lifetime, error) { return stuckDist{}, nil }

type stuckDist struct{}

func (stuckDist) Name() string                    { return "stuck" }
func (stuckDist) Mean() float64                   { return 1 }
func (stuckDist) Sample(rng *overlay.RNG) float64 { return 0 }

func TestNonPositiveSamplesFailAllChurnScenarios(t *testing.T) {
	if err := lifetime.Register("stuck-test", func(string) (LifetimeFamily, error) {
		return stuckFamily{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, scenario := range []string{"heavytail", "diurnal", "tracechurn"} {
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Protocol: "chord",
				Overlay:  OverlayConfig{Bits: 6},
				Scenario: scenario,
				Params:   Params{Lifetime: "stuck-test", Rate: 50},
				Duration: 2,
			})
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s: zero-duration samples accepted", scenario)
			} else if !strings.Contains(err.Error(), "non-positive duration") {
				t.Errorf("%s: error %q does not name the non-positive duration", scenario, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: run hung on zero-duration samples (missing churnSchedule guard)", scenario)
		}
	}
}
