package eventsim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestDeterministicAcrossGOMAXPROCS locks the persistent-worker engine's
// execution-strategy independence: for a fixed (Seed, Shards) pair the
// result must be byte-identical whether the shards are drained inline
// (GOMAXPROCS=1 — the engine detects serial hardware and skips the worker
// goroutines entirely) or by persistent workers racing on however many
// cores the host offers. The scenario turns on every contention-prone
// subsystem at once — churn lifecycles, maintenance (concurrent
// routing-table reads and owner-row writes), a lossy empirical transport
// (retransmissions, arena recycling) — and CI runs this under -race, so
// the test is simultaneously the bit-identity and the data-race check for
// the worker/barrier architecture.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{
		Protocol:       "chord",
		Overlay:        OverlayConfig{Bits: 8},
		Scenario:       "churn",
		Params:         Params{MeanOnline: 1, MeanOffline: 0.25, Rate: 1500},
		Transport:      Lossy{Rate: 0.05, Inner: Empirical{Median: 0.06}},
		Duration:       4,
		Shards:         4,
		Seed:           21,
		Maintain:       true,
		StabilizeEvery: 0.5,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	procs := []int{1, 2, runtime.NumCPU()}
	results := make([]*Result, len(procs))
	for i, p := range procs {
		runtime.GOMAXPROCS(p)
		results[i] = mustRun(t, cfg)
	}
	runtime.GOMAXPROCS(prev)
	for i := 1; i < len(procs); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("GOMAXPROCS %d vs %d diverged:\n%+v\nvs\n%+v",
				procs[0], procs[i], results[0], results[i])
		}
	}
}

// TestInlineMatchesWorkers pins the single-shard inline path against the
// multi-shard worker path on the qualitative contract (the quantitative
// per-shard-count results legitimately differ — the shard count is part
// of the sampling plan): a lossless churn-free run completes every lookup
// at Shards=1 and Shards=4 alike, under whatever parallelism the host
// gives the workers.
func TestInlineMatchesWorkers(t *testing.T) {
	for _, shards := range []int{1, 4} {
		res := mustRun(t, Config{
			Protocol: "chord",
			Overlay:  OverlayConfig{Bits: 8},
			Scenario: "massfail",
			Params:   Params{FailFraction: 0, Rate: 600},
			Duration: 3,
			Shards:   shards,
			Seed:     5,
		})
		total := res.Totals()
		if total.Started == 0 || total.Completed != total.Started {
			t.Errorf("shards=%d: %d/%d lookups completed, want all", shards, total.Completed, total.Started)
		}
	}
}
