package eventsim

import (
	"math"
	"testing"

	"rcm/internal/dht"
	"rcm/internal/sim"
)

// The cross-layer equilibrium conformance suite: eventsim's churn
// dynamics measured against the paper's static churn-model summary, the
// equivalent failure probability q_eff = E[off]/(E[on]+E[off]).
//
// The static framework compresses churn into q_eff and predicts lookup
// success as the static routability r(N, q_eff). That compression is
// exact under two assumptions: lifetimes are memoryless (the on/off
// process is stationary, so the failure pattern at any instant is an
// i.i.d. Bernoulli(q_eff) draw) and churn is slow relative to routing
// (the pattern is effectively frozen while a lookup is in flight).
// TestEquilibriumConformanceExponential verifies eventsim reproduces the
// prediction under exactly those assumptions, for all five built-in
// protocols; the two deviation tests then remove one assumption each and
// lock in the measured failure mode — the scenario-diversity finding this
// layer exists to produce.

const (
	eqBits = 10
	eqSeed = 5
	// Slow churn at q_eff = 0.2: sessions are hundreds of lookup RTTs, so
	// the alive pattern is effectively static per lookup while still
	// ergodic over the run.
	eqMeanOnline  = 40.0
	eqMeanOffline = 10.0
	eqQEff        = eqMeanOffline / (eqMeanOnline + eqMeanOffline)
	eqDuration    = 12.0
	eqRate        = 3000.0
)

// eqProtocols are the five built-in protocols the acceptance criterion
// names.
var eqProtocols = []string{"chord", "kademlia", "hypercube", "plaxton", "symphony"}

// eqMeasure runs one churn-family scenario on a pre-built overlay and
// returns steady-window lookup success plus the time-averaged online
// fraction.
func eqMeasure(t *testing.T, p dht.Protocol, scenario, lifetime string, meanOn, meanOff float64) (success, online float64) {
	t.Helper()
	res, err := RunOverlay(p, Config{
		Protocol: p.Name(),
		Overlay:  OverlayConfig{Bits: eqBits},
		Scenario: scenario,
		Params: Params{
			MeanOnline:  meanOn,
			MeanOffline: meanOff,
			Rate:        eqRate,
			Lifetime:    lifetime,
		},
		Duration: eqDuration,
		Seed:     eqSeed,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", p.Name(), scenario, err)
	}
	sum, n := 0.0, 0
	for _, b := range res.Buckets[1:] {
		sum += b.OnlineFraction
		n++
	}
	return res.WindowSuccess(1, eqDuration), sum / float64(n)
}

// eqStatic measures static routability at q_eff on the same overlay the
// event runs use, so the two layers disagree only through dynamics, never
// through different table draws.
func eqStatic(t *testing.T, p dht.Protocol) float64 {
	t.Helper()
	static, err := sim.MeasureStaticResilience(p, eqQEff, sim.Options{Pairs: 10000, Trials: 3, Seed: eqSeed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return static.Routability
}

func eqOverlay(t *testing.T, proto string) dht.Protocol {
	t.Helper()
	p, err := dht.New(proto, dht.Config{Bits: eqBits, Seed: eqSeed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEquilibriumConformanceExponential is the CI-enforced conformance
// criterion: under exponential (memoryless) lifetimes at equilibrium and
// slow churn, message-level lookup success matches the static model's
// routability at q_eff within ±0.05 for all five built-in protocols at
// N = 2^10 — including the single-path tree (plaxton) and the
// probabilistically-routed symphony, whose absolute success levels differ
// by an order of magnitude. The measured online fraction must also sit at
// 1 − q_eff: the exponential process is stationary from t = 0.
func TestEquilibriumConformanceExponential(t *testing.T) {
	for _, proto := range eqProtocols {
		p := eqOverlay(t, proto)
		static := eqStatic(t, p)
		ev, online := eqMeasure(t, p, "churn", "", eqMeanOnline, eqMeanOffline)
		if math.Abs(ev-static) > 0.05 {
			t.Errorf("%s: event success %.4f vs static routability %.4f at q_eff=%.2f (want within 0.05)",
				proto, ev, static, eqQEff)
		}
		if math.Abs(online-(1-eqQEff)) > 0.02 {
			t.Errorf("%s: online fraction %.4f, want %.2f ± 0.02 (exponential churn is stationary)",
				proto, online, 1-eqQEff)
		}
	}
}

// TestEquilibriumDeviationPareto locks in the heavy-tail finding: at the
// *same* q_eff = 0.2 and the same mean online time, Pareto lifetimes
// (default α = 1.5) make the static summary measurably wrong over finite
// horizons — in the *optimistic* direction under slow churn. The
// mechanism is the Pareto hazard profile: an ordinary (non-equilibrium)
// start draws no session shorter than the scale x_m = mean·(α−1)/α, so
// for a horizon shorter than x_m no online node leaves at all while
// offline nodes keep rejoining — availability climbs above 1 − q_eff and
// lookup success rises with it, most dramatically for geometries the
// static model scores worst (tree, symphony). The static q_eff
// compression cannot express this: it has no notion of a mixing time.
func TestEquilibriumDeviationPareto(t *testing.T) {
	for _, proto := range eqProtocols {
		p := eqOverlay(t, proto)
		static := eqStatic(t, p)
		evExp, onExp := eqMeasure(t, p, "churn", "", eqMeanOnline, eqMeanOffline)
		evPar, onPar := eqMeasure(t, p, "heavytail", "pareto:1.5", eqMeanOnline, eqMeanOffline)

		// The exponential baseline conforms; Pareto availability breaks
		// upward by more than the conformance tolerance.
		if onPar-(1-eqQEff) < 0.04 {
			t.Errorf("%s: pareto online fraction %.4f does not measurably exceed 1-q_eff=%.2f (exp baseline %.4f)",
				proto, onPar, 1-eqQEff, onExp)
		}
		// Success follows availability: every protocol completes more
		// lookups under Pareto than under exponential churn at equal
		// q_eff...
		if !(evPar > evExp+0.03) {
			t.Errorf("%s: pareto success %.4f not clearly above exponential %.4f at equal q_eff",
				proto, evPar, evExp)
		}
		// ...and for the geometries the static model scores worst the
		// prediction error exceeds the exponential conformance tolerance
		// several-fold.
		if proto == "kademlia" || proto == "plaxton" || proto == "symphony" {
			if !(evPar-static > 0.05) {
				t.Errorf("%s: pareto success %.4f vs static %.4f — deviation %.4f, want > 0.05",
					proto, evPar, static, evPar-static)
			}
		}
	}
}

// TestFastChurnParetoUnderDelivers pins the other face of the same
// finding: when the horizon is *long* relative to the session timescale
// (mean online 1, duration 12), the synchronized ordinary start plus the
// Pareto hazard profile — front-loaded (hazard α/x_m ≈ 6× the
// exponential's) then vanishing — drags the realized online fraction
// measurably *below* 1 − q_eff, while exponential churn, being
// stationary, stays on it. The deviation's direction flips with the
// horizon-to-mixing-time ratio; its existence is the invariant the static
// summary misses. Lifecycle schedules are protocol-independent, so one
// protocol carries the assertion.
func TestFastChurnParetoUnderDelivers(t *testing.T) {
	p := eqOverlay(t, "chord")
	_, onExp := eqMeasure(t, p, "churn", "", 1, 0.25)
	_, onPar := eqMeasure(t, p, "heavytail", "pareto:1.3", 1, 0.25)
	if math.Abs(onExp-0.8) > 0.02 {
		t.Errorf("fast exponential churn online fraction %.4f, want 0.80 ± 0.02", onExp)
	}
	if !(onPar < 0.78) {
		t.Errorf("fast pareto churn online fraction %.4f, want measurably below 0.80", onPar)
	}
}
