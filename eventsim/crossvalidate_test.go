package eventsim

import (
	"math"
	"testing"

	"rcm/internal/dht"
	"rcm/internal/sim"
)

// TestCrossValidateStaticModel is the CI-enforced agreement check between
// the event layer and the static graph layer: with churn disabled (q = 0)
// and maintenance off, message-level lookup success must match the static
// model's measured routability within ±0.01 for chord, kademlia and the
// hypercube at n = 2^10. At q = 0 both are exactly 1 — any event-engine
// accounting bug (skipped lookups, dropped acks, premature timeouts)
// breaks the equality.
func TestCrossValidateStaticModel(t *testing.T) {
	const bits = 10
	for _, proto := range []string{"chord", "kademlia", "hypercube"} {
		res, err := Run(Config{
			Protocol: proto,
			Overlay:  OverlayConfig{Bits: bits},
			Scenario: "massfail",
			Params:   Params{FailFraction: 0, Rate: 1000},
			Duration: 5,
			Seed:     1,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		ev := res.WindowSuccess(0, res.Duration)
		p, err := dht.New(proto, dht.Config{Bits: bits, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		static, err := sim.MeasureStaticResilience(p, 0, sim.Options{Pairs: 2000, Trials: 1, Seed: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev-static.Routability) > 0.01 {
			t.Errorf("%s q=0: event success %.4f vs static routability %.4f (want within 0.01)",
				proto, ev, static.Routability)
		}
		if total := res.Totals(); total.Failed != 0 || total.Skipped != 0 {
			t.Errorf("%s q=0: %d failed, %d skipped lookups (want 0, 0)", proto, total.Failed, total.Skipped)
		}
	}
}

// TestCrossValidateUnderFailure extends the agreement check to a massive
// failure: after FailFraction q of nodes dies, the event engine's
// per-hop retry discipline (first alive candidate in Forwarder order)
// realizes exactly the static greedy-with-knowledge walk, so steady-state
// success should track measured static routability. Both sides estimate
// over independent failure draws and pair samples, so the tolerance is
// statistical, not the ±0.01 of the q = 0 identity.
func TestCrossValidateUnderFailure(t *testing.T) {
	const (
		bits = 10
		q    = 0.2
	)
	for _, proto := range []string{"chord", "kademlia", "hypercube"} {
		res, err := Run(Config{
			Protocol: proto,
			Overlay:  OverlayConfig{Bits: bits},
			Scenario: "massfail",
			Params:   Params{FailFraction: q, FailTime: 1, Rate: 4000},
			Duration: 10,
			Seed:     7,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		// Compare well after the failure settles.
		ev := res.WindowSuccess(2, res.Duration)
		p, err := dht.New(proto, dht.Config{Bits: bits, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		static, err := sim.MeasureStaticResilience(p, q, sim.Options{Pairs: 20000, Trials: 3, Seed: 7, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev-static.Routability) > 0.05 {
			t.Errorf("%s q=%.1f: event success %.4f vs static routability %.4f (want within 0.05)",
				proto, q, ev, static.Routability)
		}
	}
}
