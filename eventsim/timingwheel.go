package eventsim

import (
	"slices"
	"sort"
)

// Hierarchical timing-wheel geometry: wheelLevels levels of wheelSpan
// slots each. A level-0 slot is 1/wheelSub of an engine lookahead
// (epoch), so within an epoch events spread across wheelSub slots and a
// slot typically holds a handful of events — that is what turns ordering
// into radix bucketing with an O(k log k) touch-up sort over tiny k,
// instead of the heap's O(log n) comparisons per event against the whole
// pending set. Level k slots are wheelSpan^k level-0 slots wide; events
// beyond the top level's horizon (wheelSpan⁴/wheelSub = 131072 lookaheads
// ≈ 1.8 simulated hours at the default 50 ms) wait in an overflow list.
const (
	wheelBits   = 6
	wheelSpan   = 1 << wheelBits
	wheelMask   = wheelSpan - 1
	wheelLevels = 4
	wheelSub    = 128
)

// wev is an arena cell: the event plus an intrusive singly-linked slot
// chain. Cells are recycled through a free list, so steady-state
// scheduling allocates nothing — the arena grows once to the peak pending
// count, exactly like the heap's backing slice.
type wev struct {
	e    ev
	next int32
}

const nilCell = int32(-1)

// wheelQueue is the hierarchical timing-wheel eventQueue. Schedule is
// O(1): append/recycle an arena cell and link it into the slot addressed
// by the event's absolute sub-epoch index, cascading at most
// wheelLevels−1 times as the cursor approaches. Exact (t, seq) order — the
// property that keeps wheel runs bit-identical to the binary-heap
// reference — is restored by sorting each slot once as it is drained.
//
// Slot addressing is by bit-prefix: an event with absolute slot index s
// lives at the lowest level k where s and the cursor share their level-
// (k+1) prefix, in slot (s >> k·wheelBits) & wheelMask. That makes
// cascades collision-free by construction: when the cursor enters a new
// level-k window, exactly the events whose prefix now matches move down.
type wheelQueue struct {
	width float64 // slot width = lookahead / wheelSub
	cur   uint64  // absolute index of the next level-0 slot to drain
	n     int

	arena []wev
	free  int32 // free-list head

	levels   [wheelLevels][wheelSpan]int32 // slot list heads
	overflow int32                         // beyond-horizon list head

	// drain holds the events of the slot currently being emitted, sorted
	// by (t, seq); drainPos is the emission cursor. Late arrivals into the
	// open window (possible only through floating-point boundary rounding)
	// are inserted in order.
	drain    []ev
	drainPos int
}

// newWheelQueue returns a wheel for an engine whose conservative epochs
// are lookahead wide (the transport's minimum latency).
func newWheelQueue(lookahead float64) *wheelQueue {
	w := &wheelQueue{width: lookahead / wheelSub, free: nilCell, overflow: nilCell}
	for lvl := range w.levels {
		for i := range w.levels[lvl] {
			w.levels[lvl][i] = nilCell
		}
	}
	return w
}

func (w *wheelQueue) size() int { return w.n }

func (w *wheelQueue) slotOf(t float64) uint64 {
	if t <= 0 {
		return 0
	}
	return uint64(t / w.width)
}

func (w *wheelQueue) alloc(e ev) int32 {
	idx := w.free
	if idx != nilCell {
		w.free = w.arena[idx].next
	} else {
		w.arena = append(w.arena, wev{})
		idx = int32(len(w.arena) - 1)
	}
	w.arena[idx] = wev{e: e, next: nilCell}
	return idx
}

func (w *wheelQueue) recycle(idx int32) {
	w.arena[idx].next = w.free
	w.free = idx
}

func (w *wheelQueue) push(e ev) {
	w.place(e)
	w.n++
}

// place routes an event to its wheel position (or the open drain window).
func (w *wheelQueue) place(e ev) {
	if head := w.slotFor(e.t); head != nil {
		idx := w.alloc(e)
		w.arena[idx].next = *head
		*head = idx
	} else {
		w.insertDrain(e)
	}
}

// slotFor returns the list head the event time routes to, or nil when the
// time falls inside the already-open drain window.
func (w *wheelQueue) slotFor(t float64) *int32 {
	s := w.slotOf(t)
	if s < w.cur {
		return nil
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(wheelBits * (lvl + 1))
		if s>>shift == w.cur>>shift {
			return &w.levels[lvl][(s>>uint(wheelBits*lvl))&wheelMask]
		}
	}
	return &w.overflow
}

// insertDrain interleaves a late arrival into the sorted open window,
// keeping (t, seq) order among the not-yet-emitted events.
func (w *wheelQueue) insertDrain(e ev) {
	i := w.drainPos + sort.Search(len(w.drain)-w.drainPos, func(i int) bool {
		return evLess(e, w.drain[w.drainPos+i])
	})
	w.drain = slices.Insert(w.drain, i, e)
}

func (w *wheelQueue) popBefore(end float64) (ev, bool) {
	for {
		if w.drainPos < len(w.drain) {
			e := w.drain[w.drainPos]
			if e.t >= end {
				return ev{}, false
			}
			w.drainPos++
			w.n--
			return e, true
		}
		if w.n == 0 || float64(w.cur)*w.width >= end {
			return ev{}, false
		}
		w.load()
	}
}

// load opens the slot at the cursor for draining and advances the cursor,
// cascading higher-level windows the cursor is entering.
func (w *wheelQueue) load() {
	if w.cur&wheelMask == 0 {
		w.cascade()
	}
	idx := w.cur & wheelMask
	w.drain = w.drain[:0]
	w.drainPos = 0
	for c := w.levels[0][idx]; c != nilCell; {
		w.drain = append(w.drain, w.arena[c].e)
		next := w.arena[c].next
		w.recycle(c)
		c = next
	}
	w.levels[0][idx] = nilCell
	if len(w.drain) > 1 {
		slices.SortFunc(w.drain, func(a, b ev) int {
			if evLess(a, b) {
				return -1
			}
			if evLess(b, a) {
				return 1
			}
			return 0
		})
	}
	w.cur++
}

// cascade relinks the cells of every higher-level window the cursor is
// entering, highest level first so moved cells can land in the slots
// cascaded right after. Cells move without reallocation.
func (w *wheelQueue) cascade() {
	c := w.cur
	if c&(1<<uint(wheelBits*wheelLevels)-1) == 0 {
		head := w.overflow
		w.overflow = nilCell
		w.relink(head)
	}
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		if c&(1<<uint(wheelBits*lvl)-1) != 0 {
			continue
		}
		idx := (c >> uint(wheelBits*lvl)) & wheelMask
		head := w.levels[lvl][idx]
		w.levels[lvl][idx] = nilCell
		w.relink(head)
	}
}

// relink re-places every cell of a detached chain.
func (w *wheelQueue) relink(head int32) {
	for head != nilCell {
		next := w.arena[head].next
		if dst := w.slotFor(w.arena[head].e.t); dst != nil {
			w.arena[head].next = *dst
			*dst = head
		} else {
			w.insertDrain(w.arena[head].e)
			w.recycle(head)
		}
		head = next
	}
}

func (w *wheelQueue) minTime() (float64, bool) {
	if w.n == 0 {
		return 0, false
	}
	if w.drainPos < len(w.drain) {
		return w.drain[w.drainPos].t, true
	}
	// When the cursor rests exactly on a level boundary the entering
	// windows have not been cascaded yet (load does that lazily), so
	// level-0 and the pending higher-level slot could interleave in time.
	// Cascade now — it is idempotent — so the scan below is exact.
	if w.cur&wheelMask == 0 {
		w.cascade()
	}
	// The wheel's levels are time-ordered: every live level-0 slot
	// precedes every live level-1 slot, and so on, so the first non-empty
	// slot in scan order brackets the minimum; one linear pass inside it
	// finds the exact event time (slots are unsorted until drained).
	if t, ok := w.scanLevel(0, w.cur&wheelMask); ok {
		return t, true
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if t, ok := w.scanLevel(lvl, ((w.cur>>uint(wheelBits*lvl))&wheelMask)+1); ok {
			return t, true
		}
	}
	if w.overflow != nilCell {
		return w.chainMin(w.overflow), true
	}
	return 0, false
}

// scanLevel scans one level's live slots from index from, returning the
// minimum event time of the first non-empty slot.
func (w *wheelQueue) scanLevel(lvl int, from uint64) (float64, bool) {
	for idx := from; idx < wheelSpan; idx++ {
		if head := w.levels[lvl][idx]; head != nilCell {
			return w.chainMin(head), true
		}
	}
	return 0, false
}

func (w *wheelQueue) chainMin(head int32) float64 {
	min := w.arena[head].e.t
	for c := w.arena[head].next; c != nilCell; c = w.arena[c].next {
		if t := w.arena[c].e.t; t < min {
			min = t
		}
	}
	return min
}
