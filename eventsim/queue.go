package eventsim

// eventQueue is the per-shard scheduler behind the event engine. The
// contract all implementations share — and what keeps results
// bit-identical across them — is total (t, seq) order: popBefore emits
// pending events in exactly the order evLess defines, stopping at the
// epoch boundary. Sequence numbers are assigned by the shard before push.
// Implementations must not let push *order* leak into pop order: the
// epoch barrier bulk-pushes merged cross-shard batches in unsorted
// arrival-time order and relies on (t, seq) alone to linearize them.
//
// Two implementations exist: the hierarchical timing wheel (Config
// Scheduler "wheel", the default — O(1) schedule for the timer-dominated
// churn and stabilization workload) and the binary heap ("heap", the
// reference implementation the wheel is differentially tested and
// benchmarked against).
type eventQueue interface {
	// push schedules e (seq already assigned). Events are never scheduled
	// in the simulated past, but an event may land inside the window the
	// queue is currently draining; implementations must interleave it in
	// (t, seq) order.
	push(e ev)
	// popBefore removes and returns the least pending event with t < end,
	// reporting false when none remains below the boundary.
	popBefore(end float64) (ev, bool)
	// minTime returns the least pending event time, reporting false when
	// the queue is empty.
	minTime() (float64, bool)
	// size returns the number of pending events.
	size() int
}

// Scheduler names accepted by Config.Scheduler.
const (
	// SchedulerWheel selects the hierarchical timing-wheel queue (the
	// default).
	SchedulerWheel = "wheel"
	// SchedulerHeap selects the binary-heap reference queue.
	SchedulerHeap = "heap"
)

// evLess is the engine's total event order: time, then push sequence.
func evLess(a, b ev) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// heapQueue is a classic binary min-heap over (t, seq), slice-backed and
// allocation-free after warm-up. container/heap is avoided on this hot
// path — its interface calls box every event.
type heapQueue struct {
	h []ev
}

func (q *heapQueue) size() int { return len(q.h) }

func (q *heapQueue) minTime() (float64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].t, true
}

func (q *heapQueue) push(e ev) {
	q.h = append(q.h, e)
	h := q.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *heapQueue) popBefore(end float64) (ev, bool) {
	h := q.h
	if len(h) == 0 || h[0].t >= end {
		return ev{}, false
	}
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && evLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < last && evLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top, true
}
