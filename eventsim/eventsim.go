package eventsim

import (
	"fmt"
	"math"
	"strings"

	"rcm/fault"
	"rcm/internal/dht"
	"rcm/internal/registry"
	"rcm/obs"
	"rcm/overlay"
	"rcm/replica"
)

// OverlayConfig is the canonical overlay-construction configuration — the
// same type as rcm.Config — re-exported for building Config.Overlay.
type OverlayConfig = registry.Config

// Forwarder is the per-hop candidate-enumeration capability a protocol
// must implement to run under eventsim (the same type as the canonical
// definition shared with rcm.Protocol registrants). All five built-in
// protocols implement it.
type Forwarder = registry.Forwarder

// Maintainer is the optional join/stabilize maintenance capability; see
// Config.Maintain. The four table-based built-ins implement it.
type Maintainer = registry.Maintainer

// Config configures one event-simulation run. Protocol, Overlay.Bits and
// Scenario are required; every other field has a documented default.
type Config struct {
	// Protocol names the overlay in either registry vocabulary (system
	// names or the paper's geometry terms), including user registrations.
	// The protocol must implement the Forwarder capability.
	Protocol string
	// Overlay is the overlay-construction configuration. Bits is required;
	// a zero Seed is replaced by the run Seed.
	Overlay registry.Config
	// Scenario names the scenario in the scenario registry.
	Scenario string
	// Params tunes the scenario; see Params for the defaults.
	Params Params
	// Transport models the network (default Constant{} — 50 ms, lossless).
	Transport Transport
	// Seed drives every random stream of the run (default 1).
	Seed uint64
	// Shards is the number of event wheels the population is interleaved
	// across (node % Shards). The default is 4. Results are deterministic
	// for a fixed (Seed, Shards) pair; like sim.Options.Workers, the shard
	// count is part of the sampling plan, not a free performance knob.
	Shards int
	// Duration is the total simulated time (default 10; in-flight lookups
	// are drained to completion past it).
	Duration float64
	// Buckets is the number of equal time buckets metrics aggregate into
	// (default 10).
	Buckets int
	// Maintain enables message-level maintenance: Maintainer join on every
	// scenario join event, plus periodic per-node stabilization. It is
	// ignored (with no error) for protocols without the Maintainer
	// capability, e.g. the structural hypercube.
	Maintain bool
	// StabilizeEvery is the per-node stabilization period (default 1).
	StabilizeEvery float64
	// RTO is the retransmission timeout a forwarding node waits before
	// trying its next candidate. It must exceed the worst-case round trip
	// (2×Transport.MaxLatency()) so an acknowledged hop is never
	// duplicated; zero selects 2×max + min, the tightest safe value.
	RTO float64
	// MaxHops defensively bounds route length (default 4·Bits + 16).
	MaxHops int
	// Retransmits is how many times a forwarding node re-sends to the
	// *same* candidate after a timeout before failing over to the next
	// one (default 2; negative disables retransmission). Without it a
	// single lost request would permanently skip the best next hop.
	Retransmits int
	// AdaptiveRTO replaces the fixed retransmission timeout with a
	// per-(sender, next-hop) Jacobson/Karn estimator (RFC 6298 gains:
	// srtt + 4*rttvar, samples from un-retransmitted attempts only),
	// floored at RTO — preserving the RTO > 2×MaxLatency invariant —
	// with exponential backoff per retransmission, capped at 8×RTO.
	// Off (the default), the engine is bit-identical to builds without
	// the estimator; on, results remain deterministic across (Seed,
	// Shards) and schedulers like every other output.
	AdaptiveRTO bool
	// Scheduler selects the per-shard event-queue implementation:
	// SchedulerWheel (hierarchical timing wheels, the default — O(1)
	// schedule on the timer-dominated churn+stabilization workload) or
	// SchedulerHeap (the binary-heap reference the wheel is differentially
	// tested and benchmarked against). Results are bit-identical across
	// schedulers for a fixed (Seed, Shards); the knob exists for
	// benchmarking and differential testing, not tuning.
	Scheduler string
	// Trace samples per-lookup hop traces: every Trace-th scheduled
	// lookup (by schedule index; 1 records all) has its full path —
	// start, per-hop sends and acceptances, retransmission timeouts,
	// failovers, and the final verdict — recorded into Result.Traces.
	// Zero (the default) disables tracing. Traces are bit-identical
	// across (Seed, Shards) and schedulers, like every other output.
	Trace int
	// NoDist disables the per-bucket hop/latency distribution
	// accumulation (Result.HopDist/LatDist), which is otherwise always
	// on. It exists for the bench.sh histogram-overhead gate — the
	// baseline side of the "obs enabled >= 0.98x baseline" comparison —
	// not as a tuning knob.
	NoDist bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Transport == nil {
		cfg.Transport = Constant{}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Overlay.Seed == 0 {
		cfg.Overlay.Seed = cfg.Seed
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 10
	}
	if cfg.StabilizeEvery <= 0 {
		cfg.StabilizeEvery = 1
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 2*cfg.Transport.MaxLatency() + cfg.Transport.MinLatency()
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 4*cfg.Overlay.Bits + 16
	}
	switch {
	case cfg.Retransmits == 0:
		cfg.Retransmits = 2
	case cfg.Retransmits < 0:
		cfg.Retransmits = 0
	}
	cfg.Scheduler = strings.ToLower(strings.TrimSpace(cfg.Scheduler))
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedulerWheel
	}
	cfg.Params = cfg.Params.withDefaults(cfg.Duration)
	return cfg
}

// Validate rejects configurations the engine cannot run soundly. It is
// called by Run; exported so plans can be checked before execution.
func (cfg Config) Validate() error {
	cfg = cfg.withDefaults()
	if _, ok := LookupScenario(cfg.Scenario); !ok {
		return fmt.Errorf("eventsim: unknown scenario %q (have %s)", cfg.Scenario, strings.Join(scenarioKeys(), ", "))
	}
	if err := validateTransport(cfg.Transport); err != nil {
		return err
	}
	if err := cfg.Params.Validate(); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"Duration", cfg.Duration}, {"StabilizeEvery", cfg.StabilizeEvery}, {"RTO", cfg.RTO}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v <= 0 {
			return fmt.Errorf("eventsim: %s = %v must be positive and finite", f.name, f.v)
		}
	}
	if min := 2 * cfg.Transport.MaxLatency(); cfg.RTO <= min {
		return fmt.Errorf("eventsim: RTO = %v must exceed the worst-case round trip %v — a shorter timeout would duplicate acknowledged hops", cfg.RTO, min)
	}
	if cfg.Shards > 256 {
		return fmt.Errorf("eventsim: Shards = %d out of [1,256]", cfg.Shards)
	}
	if cfg.Trace < 0 {
		return fmt.Errorf("eventsim: Trace = %d must be >= 0 (0 off, N samples every Nth lookup)", cfg.Trace)
	}
	if cfg.Scheduler != SchedulerWheel && cfg.Scheduler != SchedulerHeap {
		return fmt.Errorf("eventsim: unknown scheduler %q (have %s, %s)", cfg.Scheduler, SchedulerWheel, SchedulerHeap)
	}
	return nil
}

// Bucket aggregates one time window of a run. Lookup outcomes (Started,
// Completed, Failed, Skipped, SumHops, SumLatency) are attributed to the
// bucket the lookup *started* in, so Success is exact per cohort; message
// and timeout tallies are attributed to the bucket they occurred in.
type Bucket struct {
	// Start and End bound the window in simulated time.
	Start, End float64
	// Started counts lookups that began with both endpoints online;
	// Skipped counts scheduled lookups that did not (the static model's
	// conditioning on surviving pairs).
	Started, Skipped int
	// Completed and Failed partition the started cohort's outcomes.
	Completed, Failed int
	// Timeouts counts retransmission-timer expiries.
	Timeouts int
	// LookupMessages counts lookup requests plus acknowledgements;
	// MaintMessages counts join/stabilization traffic. The final bucket
	// also absorbs the drain-phase traffic of lookups still in flight at
	// the horizon.
	LookupMessages, MaintMessages int
	// RepairMessages counts re-replication traffic: with Replicas k > 1,
	// every effective lifecycle toggle charges the k messages its replica
	// groups spend restoring the k-copy invariant. Zero when replication
	// is off.
	RepairMessages int
	// SumHops and SumLatency accumulate over the completed cohort.
	SumHops, SumLatency float64
	// OnlineFraction is the alive fraction at the bucket's start.
	OnlineFraction float64
}

// Success returns Completed/Started, or NaN for an empty cohort.
func (b Bucket) Success() float64 {
	if b.Started == 0 {
		return math.NaN()
	}
	return float64(b.Completed) / float64(b.Started)
}

// MeanHops returns the mean hop count over completed lookups (NaN when
// none completed).
func (b Bucket) MeanHops() float64 {
	if b.Completed == 0 {
		return math.NaN()
	}
	return b.SumHops / float64(b.Completed)
}

// MeanLatency returns the mean completion latency (NaN when none
// completed).
func (b Bucket) MeanLatency() float64 {
	if b.Completed == 0 {
		return math.NaN()
	}
	return b.SumLatency / float64(b.Completed)
}

// add accumulates counters (not the window bounds or online fraction).
func (b *Bucket) add(o Bucket) {
	b.Started += o.Started
	b.Skipped += o.Skipped
	b.Completed += o.Completed
	b.Failed += o.Failed
	b.Timeouts += o.Timeouts
	b.LookupMessages += o.LookupMessages
	b.MaintMessages += o.MaintMessages
	b.RepairMessages += o.RepairMessages
	b.SumHops += o.SumHops
	b.SumLatency += o.SumLatency
}

// Result is one run's metric series plus run identity.
type Result struct {
	// Protocol, Scenario and Transport identify the run.
	Protocol, Scenario, Transport string
	// Bits, Nodes and Shards describe the population and its sharding.
	Bits, Nodes, Shards int
	// Replicas is the effective replication factor the run placed keys
	// with (1 = no replication).
	Replicas int
	// Duration is the configured simulated time.
	Duration float64
	// Buckets is the time-bucketed metric series.
	Buckets []Bucket
	// HopDist and LatDist are the per-bucket hop-count and latency
	// distributions over each bucket's completed cohort, indexed like
	// Buckets (lookups attribute to the bucket they started in).
	// Latencies are recorded in microseconds of simulated time. Both
	// are nil when Config.NoDist is set. Like every Result field they
	// are bit-identical across (Seed, Shards) and schedulers.
	HopDist, LatDist []obs.Histogram
	// Traces holds the sampled per-lookup hop traces, ascending by
	// lookup index; empty unless Config.Trace > 0.
	Traces []Trace
	// Lookups is the number of scheduled lookups; Events the total event
	// count the engine processed.
	Lookups int
	Events  uint64
	// Faults tallies the injected faults when Config.Transport is a
	// Faulty (all zero otherwise), per kind; deterministic like every
	// other Result field.
	Faults fault.Counts
}

// Totals returns the whole-run aggregate: counters summed, the window
// spanning the run, and the final bucket's online fraction.
func (r *Result) Totals() Bucket {
	var t Bucket
	for _, b := range r.Buckets {
		t.add(b)
	}
	if n := len(r.Buckets); n > 0 {
		t.Start, t.End = r.Buckets[0].Start, r.Buckets[n-1].End
		t.OnlineFraction = r.Buckets[n-1].OnlineFraction
	}
	return t
}

// WindowSuccess aggregates lookup success over the buckets fully inside
// [from, to] — the cross-validation window helper. NaN when the window
// started no lookups.
func (r *Result) WindowSuccess(from, to float64) float64 {
	started, completed := 0, 0
	for _, b := range r.Buckets {
		if b.Start >= from && b.End <= to {
			started += b.Started
			completed += b.Completed
		}
	}
	if started == 0 {
		return math.NaN()
	}
	return float64(completed) / float64(started)
}

// WindowHopDist merges the hop-count distributions of the buckets fully
// inside [from, to] into one histogram — the distribution-level
// counterpart of WindowSuccess, and what the live-cluster conformance
// suite pins replayed hop distributions against. Empty (Count() == 0)
// when the window completed no lookups or distributions were disabled.
func (r *Result) WindowHopDist(from, to float64) obs.Histogram {
	return mergeWindow(r.Buckets, r.HopDist, from, to)
}

// WindowLatencyDist merges the latency distributions (microseconds of
// simulated time) of the buckets fully inside [from, to].
func (r *Result) WindowLatencyDist(from, to float64) obs.Histogram {
	return mergeWindow(r.Buckets, r.LatDist, from, to)
}

func mergeWindow(buckets []Bucket, dists []obs.Histogram, from, to float64) obs.Histogram {
	var h obs.Histogram
	for i := range dists {
		if buckets[i].Start >= from && buckets[i].End <= to {
			h.Merge(&dists[i])
		}
	}
	return h
}

// programScenario resolves and programs the configured scenario for a
// population of n nodes, reproducing the exact deterministic RNG stream Run
// executes: the root stream is seeded cfg.Seed ^ "EVENT" and the scenario
// consumes the first Split. The returned root has the scenario's split
// already consumed, so RunOverlay's subsequent per-shard splits see the
// same stream whether or not a schedule was built separately. cfg must
// already have defaults applied.
func programScenario(cfg Config, n int) (*Env, Scenario, *overlay.RNG, error) {
	factory, ok := LookupScenario(cfg.Scenario)
	if !ok {
		return nil, nil, nil, fmt.Errorf("eventsim: unknown scenario %q", cfg.Scenario)
	}
	scen, err := factory(cfg.Params)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("eventsim: scenario %q: %w", cfg.Scenario, err)
	}

	root := overlay.NewRNG(cfg.Seed ^ 0x4556454e54) // "EVENT"
	env := &Env{
		nodes:          n,
		duration:       cfg.Duration,
		params:         cfg.Params,
		rng:            root.Split(),
		initialOffline: make([]bool, n),
	}
	if err := scen.Program(env); err != nil {
		return nil, nil, nil, fmt.Errorf("eventsim: scenario %q: %w", cfg.Scenario, err)
	}
	if env.err != nil {
		return nil, nil, nil, fmt.Errorf("eventsim: scenario %q: %w", cfg.Scenario, env.err)
	}
	return env, scen, root, nil
}

// Run builds the named overlay through the shared registry and simulates
// the configured scenario on it, returning the bucketed metric series.
func Run(cfg Config) (*Result, error) {
	full := cfg.withDefaults()
	p, err := dht.New(full.Protocol, full.Overlay)
	if err != nil {
		return nil, fmt.Errorf("eventsim: %w", err)
	}
	return RunOverlay(p, cfg)
}

// RunOverlay is Run on a caller-constructed overlay — the hook for sharing
// an already-built (read-only) overlay across runs. The overlay must
// implement Forwarder and must not be shared with concurrent users when
// cfg.Maintain is set: maintenance mutates routing tables in place.
func RunOverlay(p registry.Protocol, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fwd, ok := p.(registry.Forwarder)
	if !ok {
		return nil, fmt.Errorf("eventsim: protocol %q does not implement the Forwarder capability required for message-level simulation", p.Name())
	}
	if _, sparse := p.(dht.Populated); sparse {
		return nil, fmt.Errorf("eventsim: protocol %q declares a sparse population; eventsim currently simulates fully-populated overlays only", p.Name())
	}
	n := int(p.Space().Size())
	if n < 2 {
		return nil, fmt.Errorf("eventsim: population %d too small", n)
	}
	shards := cfg.Shards
	if shards > n {
		shards = n
	}

	env, scen, root, err := programScenario(cfg, n)
	if err != nil {
		return nil, err
	}

	// Replication: precompute the whole placement table before the clock
	// starts — repl[root*k+i] is the i-th owner of root's key — so the hot
	// path reads it like meta (read-shared, never invalidated) and a buggy
	// Replicator opt-in fails here, loudly, not mid-run. k <= 1 leaves the
	// table empty and the engine on the exact unreplicated code path.
	k := 1
	var repl []overlay.ID
	if cfg.Params.Replicas > 1 {
		for root := 0; root < n; root++ {
			repl, err = replica.For(p, p.Space(), repl, overlay.ID(root), cfg.Params.Replicas)
			if err != nil {
				return nil, fmt.Errorf("eventsim: %w", err)
			}
		}
		k = len(repl) / n
	}

	e := &engine{
		cfg:        cfg,
		fwd:        fwd,
		n:          n,
		snapshot:   overlay.NewBitset(n),
		meta:       make([]lookupMeta, len(env.lookups)),
		k:          k,
		repl:       repl,
		width:      cfg.Duration / float64(cfg.Buckets),
		delta:      cfg.Transport.MinLatency(),
		rto:        cfg.RTO,
		maxHops:    cfg.MaxHops,
		onlineFrac: make([]float64, cfg.Buckets),
		dist:       !cfg.NoDist,
		trace:      cfg.Trace,
		adaptive:   cfg.AdaptiveRTO,
	}
	if ft, ok := cfg.Transport.(Faulty); ok {
		// Bind the fault plan to the run: seed-derived partition groups and
		// stall episodes are fixed here, once, so every shard and scheduler
		// sees the same schedule. innerMax is the unwrapped bound the
		// reorder clause holds requests back by.
		e.inj = ft.Plan.Bind(cfg.Seed, cfg.Duration)
		e.plan = e.inj.Plan()
		e.innerMax = ft.inner().MaxLatency()
	}
	if cfg.Maintain {
		if mnt, ok := p.(registry.Maintainer); ok {
			e.mnt = mnt
		}
	}
	e.shards = make([]*shard, shards)
	for i := range e.shards {
		var q eventQueue
		if cfg.Scheduler == SchedulerHeap {
			q = &heapQueue{}
		} else {
			q = newWheelQueue(e.delta)
		}
		e.shards[i] = &shard{
			id:      i,
			eng:     e,
			q:       q,
			rng:     root.Split(),
			online:  make([]bool, n),
			started: overlay.NewBitset(len(env.lookups)),
			outbox:  make([][]ev, shards),
			acc:     make([]bucketAcc, cfg.Buckets),
		}
		if cfg.AdaptiveRTO {
			e.shards[i].rtt = make(map[uint64]*peerRTT)
		}
	}

	// Initial population state: each owner shard's online array plus the
	// shared snapshot.
	for i := 0; i < n; i++ {
		if !env.initialOffline[i] {
			e.shards[i%shards].online[i] = true
			e.snapshot.Set(i)
			e.onlineCount++
		}
	}

	// Pre-schedule the scenario's program, in deterministic order: the
	// workload, then lifecycle toggles, then stabilization timers.
	for li, sl := range env.lookups {
		lk := uint32(li)
		e.meta[li] = lookupMeta{src: sl.src, dst: sl.dst, start: sl.t, startBucket: e.bucketOf(sl.t)}
		sh := e.shards[e.shardOf(sl.src)]
		sh.push(ev{t: sl.t, kind: evStart, node: sl.src, lk: lk})
	}
	for _, tg := range env.toggles {
		kind := evDown
		if tg.up {
			kind = evUp
		}
		sh := e.shards[e.shardOf(tg.node)]
		sh.push(ev{t: tg.t, kind: kind, node: tg.node})
	}
	if e.mnt != nil {
		for i := 0; i < n; i++ {
			sh := e.shards[e.shardOf(uint32(i))]
			// Jittered phase so stabilization load spreads evenly.
			sh.push(ev{t: sh.rng.Float64() * cfg.StabilizeEvery, kind: evStab, node: uint32(i)})
		}
	}

	e.run()

	res := &Result{
		Protocol:  p.Name(),
		Scenario:  scen.Name(),
		Transport: cfg.Transport.Name(),
		Bits:      p.Space().Bits(),
		Nodes:     n,
		Shards:    shards,
		Replicas:  k,
		Duration:  cfg.Duration,
		Buckets:   make([]Bucket, cfg.Buckets),
		Lookups:   len(env.lookups),
	}
	if e.dist {
		res.HopDist = make([]obs.Histogram, cfg.Buckets)
		res.LatDist = make([]obs.Histogram, cfg.Buckets)
	}
	for bi := range res.Buckets {
		b := &res.Buckets[bi]
		b.Start = float64(bi) * e.width
		b.End = float64(bi+1) * e.width
		b.OnlineFraction = e.onlineFrac[bi]
		for _, sh := range e.shards {
			acc := &sh.acc[bi]
			b.add(Bucket{
				Started: acc.started, Skipped: acc.skipped,
				Completed: acc.completed, Failed: acc.failed,
				Timeouts:       acc.timeouts,
				LookupMessages: acc.msgs, MaintMessages: acc.maint,
				RepairMessages: acc.repair,
				SumHops:        acc.sumHops, SumLatency: acc.sumLatency,
			})
			// Folding shard histograms in shard order is deterministic by
			// construction: Merge is commutative, so any order would do.
			if e.dist {
				res.HopDist[bi].Merge(&acc.hops)
				res.LatDist[bi].Merge(&acc.lat)
			}
		}
	}
	res.Traces = e.mergeTraces()
	for _, sh := range e.shards {
		res.Events += sh.events
		res.Faults.Add(sh.faults)
	}
	return res, nil
}
