package eventsim

import (
	"fmt"

	"rcm/eventsim/lifetime"
)

// Lifetime is a positive-duration session/downtime distribution — the
// same type as rcm/eventsim/lifetime.Dist — re-exported for
// Env.ChurnNodeDist callers and custom scenarios.
type Lifetime = lifetime.Dist

// LifetimeFamily is a lifetime shape with the mean left free (the same
// type as rcm/eventsim/lifetime.Family). Register custom families with
// lifetime.Register; they then resolve through ParseLifetime everywhere
// the built-ins do (Params.Lifetime/Downtime, the cmd/eventsim -lifetime
// and -downtime flags).
type LifetimeFamily = lifetime.Family

// ParseLifetime builds a lifetime family from its CLI spelling:
//
//	exp
//	pareto[:alpha]        e.g. pareto:1.5   (alpha > 1; alpha <= 1 has an
//	                      infinite mean and is rejected)
//	weibull[:shape]       e.g. weibull:0.5
//	lognormal[:sigma]     e.g. lognormal:1
//	trace:<file>          availability trace replay, one duration per line
//
// It is rcm/eventsim/lifetime.Parse re-exported next to ParseTransport so
// the two scenario-configuration vocabularies live side by side.
func ParseLifetime(spec string) (LifetimeFamily, error) {
	return lifetime.Parse(spec)
}

// lifetimeDists resolves the (Lifetime, Downtime) spec pair of a Params
// against the (MeanOnline, MeanOffline) means — the shared constructor of
// the lifetime-model scenarios. Empty specs select the given defaults.
// Both the parsed families and the mean-pinned distributions are
// returned: heavytail/tracechurn sample the distributions directly, the
// diurnal scenario re-pins the families at modulated means per session.
func lifetimeDists(p Params, defaultOn, defaultOff string) (onFam, offFam LifetimeFamily, on, off Lifetime, err error) {
	onSpec, offSpec := p.Lifetime, p.Downtime
	if onSpec == "" {
		onSpec = defaultOn
	}
	if offSpec == "" {
		offSpec = defaultOff
	}
	if onFam, err = ParseLifetime(onSpec); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("eventsim: Lifetime: %w", err)
	}
	if offFam, err = ParseLifetime(offSpec); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("eventsim: Downtime: %w", err)
	}
	if on, err = onFam.Dist(p.MeanOnline); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("eventsim: Lifetime at MeanOnline: %w", err)
	}
	if off, err = offFam.Dist(p.MeanOffline); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("eventsim: Downtime at MeanOffline: %w", err)
	}
	return onFam, offFam, on, off, nil
}
