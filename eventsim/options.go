package eventsim

// Option mutates a Params under construction. Options exist so call sites
// can name exactly the knobs they set and get domain validation at
// construction time; the plain struct-literal path (Params{...}) remains
// fully supported and is validated later, by Config.Validate.
type Option func(*Params)

// WithRate sets the aggregate lookup arrival rate (lookups per time unit).
func WithRate(rate float64) Option { return func(p *Params) { p.Rate = rate } }

// WithZipfS sets the Zipf skew of lookup targets (0 = uniform).
func WithZipfS(s float64) Option { return func(p *Params) { p.ZipfS = s } }

// WithFailFraction sets the fraction of nodes the massfail/correlated
// scenarios kill.
func WithFailFraction(q float64) Option { return func(p *Params) { p.FailFraction = q } }

// WithFailTime sets when the failure disturbance hits.
func WithFailTime(t float64) Option { return func(p *Params) { p.FailTime = t } }

// WithRegions sets how many contiguous identifier regions the correlated
// scenario kills.
func WithRegions(n int) Option { return func(p *Params) { p.Regions = n } }

// WithChurnMeans sets the exponential session parameters of the churn-style
// scenarios: mean online session and mean offline stretch.
func WithChurnMeans(meanOnline, meanOffline float64) Option {
	return func(p *Params) { p.MeanOnline, p.MeanOffline = meanOnline, meanOffline }
}

// WithCrowd shapes the flashcrowd scenario: at start the arrival rate
// multiplies by factor for the given duration.
func WithCrowd(start, duration, factor float64) Option {
	return func(p *Params) { p.CrowdStart, p.CrowdDuration, p.CrowdFactor = start, duration, factor }
}

// WithHot sets the fraction of crowd-window lookups aimed at the hot key;
// NewParams rejects values outside [0,1].
func WithHot(hot float64) Option { return func(p *Params) { p.Hot = hot } }

// WithLifetime selects the session-duration family of the lifetime-model
// scenarios, as a lifetime.Parse spec ("pareto:1.5", "weibull:0.5", ...).
func WithLifetime(spec string) Option { return func(p *Params) { p.Lifetime = spec } }

// WithDowntime selects the offline-stretch family, as a lifetime.Parse spec.
func WithDowntime(spec string) Option { return func(p *Params) { p.Downtime = spec } }

// WithDiurnal shapes the diurnal scenario's daily modulation: session means
// drawn at time t are scaled by 1 ± amplitude·sin(2πt/period).
func WithDiurnal(period, amplitude float64) Option {
	return func(p *Params) { p.DiurnalPeriod, p.DiurnalAmplitude = period, amplitude }
}

// WithReplicas sets the key replication factor k (0 and 1 both mean no
// replication); NewParams rejects values outside [0, replica.MaxReplicas].
func WithReplicas(k int) Option { return func(p *Params) { p.Replicas = k } }

// NewParams builds a Params from options and validates the result at
// construction, so a bad knob fails where it was written instead of deep in
// Config.Validate at run time. Unset fields stay zero and select the same
// documented defaults as a zero struct literal:
//
//	p, err := eventsim.NewParams(
//	    eventsim.WithRate(2000),
//	    eventsim.WithFailFraction(0.2),
//	)
//
// is equivalent to Params{Rate: 2000, FailFraction: 0.2} plus an immediate
// Validate.
func NewParams(opts ...Option) (Params, error) {
	var p Params
	for _, o := range opts {
		o(&p)
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}
