package eventsim

import (
	"runtime"
	"testing"
)

// TestMillionNodeMassfail is the scale acceptance check: a 2^20-node
// (1,048,576 ≥ 1M) chord overlay runs a massfail scenario to completion —
// including under the race detector, which CI runs — in bounded memory.
// The workload is kept modest (the point is population scale, not lookup
// volume); the memory ceiling mainly guards against the engine
// materializing anything per-node-per-event.
func TestMillionNodeMassfail(t *testing.T) {
	const bits = 20 // 2^20 = 1,048,576 nodes
	res, err := Run(Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: bits},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.3, FailTime: 0.5, Rate: 500},
		Duration: 2,
		Buckets:  4,
		Shards:   4,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 1_000_000 {
		t.Fatalf("population %d below 1M", res.Nodes)
	}
	total := res.Totals()
	if total.Started == 0 {
		t.Fatal("no lookups started")
	}
	if s := res.WindowSuccess(1, 2); !(s > 0.5) {
		t.Errorf("post-fail success %.4f implausibly low for chord at q=0.3", s)
	}
	if res.Events == 0 {
		t.Error("engine reports zero processed events")
	}

	// Bounded memory: the dominant allocation must be the overlay's own
	// O(N·d) routing table (~160 MB at d=20), not engine state.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const ceiling = 1 << 31 // 2 GiB
	if ms.HeapAlloc > ceiling {
		t.Errorf("heap in use %d bytes exceeds the %d ceiling", ms.HeapAlloc, uint64(ceiling))
	}
}
