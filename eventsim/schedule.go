package eventsim

import "fmt"

// Toggle is one scheduled node lifecycle transition of a Schedule.
type Toggle struct {
	// T is the simulated time of the transition.
	T float64
	// Node is the node index in [0, Nodes).
	Node int
	// Up reports the direction: true = join (come online), false = fail.
	Up bool
}

// Lookup is one scheduled lookup of a Schedule: at time T node Src looks up
// the key owned by node Dst.
type Lookup struct {
	T        float64
	Src, Dst int
}

// Schedule is a fully-materialized scenario program: the exact node
// lifecycle and lookup workload eventsim.Run would execute for a Config,
// with the same deterministic seeding. It exists so other executors — the
// live-node cluster harness in rcm/node, most importantly — can replay the
// *identical* event sequence against a different substrate and compare
// outcomes, turning eventsim into a prediction the conformance suite pins
// real processes against.
type Schedule struct {
	// Nodes is the population N = 2^Overlay.Bits.
	Nodes int
	// Duration is the simulated horizon; every event time lies in [0,
	// Duration].
	Duration float64
	// Params is the scenario parameter set with defaults applied.
	Params Params
	// InitialOffline flags the nodes that start the run offline.
	InitialOffline []bool
	// Toggles are the lifecycle transitions in scenario-emission order
	// (per-node chronological; across nodes interleaved as the scenario
	// generated them — sort by T for a global timeline).
	Toggles []Toggle
	// Lookups are the scheduled lookups in scenario-emission order.
	Lookups []Lookup
}

// BuildSchedule programs the configured scenario and returns its
// materialized schedule without running the simulation. The schedule is a
// pure function of (Scenario, Params, Seed, Duration, Overlay.Bits): it
// reproduces bit-for-bit the event sequence Run executes for the same
// Config, because both paths share one scenario-programming helper and the
// engine's RNG layout (root = Seed ^ "EVENT", scenario stream = first
// split).
func BuildSchedule(cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bits := cfg.Overlay.Bits
	if bits < 1 || bits > 30 {
		return nil, fmt.Errorf("eventsim: Overlay.Bits = %d out of [1,30]", bits)
	}
	n := 1 << bits

	env, _, _, err := programScenario(cfg, n)
	if err != nil {
		return nil, err
	}

	s := &Schedule{
		Nodes:          n,
		Duration:       cfg.Duration,
		Params:         cfg.Params,
		InitialOffline: env.initialOffline,
		Toggles:        make([]Toggle, len(env.toggles)),
		Lookups:        make([]Lookup, len(env.lookups)),
	}
	for i, tg := range env.toggles {
		s.Toggles[i] = Toggle{T: tg.t, Node: int(tg.node), Up: tg.up}
	}
	for i, lk := range env.lookups {
		s.Lookups[i] = Lookup{T: lk.t, Src: int(lk.src), Dst: int(lk.dst)}
	}
	return s, nil
}

// OfflineAt reports whether node is offline at time t under the schedule —
// initial state plus every toggle at or before t, applied in time order
// (ties resolved by emission order, matching the engine's stable event
// ordering). It is O(|Toggles|); replay harnesses tracking state
// incrementally should fold toggles themselves.
func (s *Schedule) OfflineAt(node int, t float64) bool {
	off := s.InitialOffline[node]
	// Toggles are per-node chronological, so a linear scan keeping the last
	// transition at or before t is exact.
	for _, tg := range s.Toggles {
		if tg.Node == node && tg.T <= t {
			off = !tg.Up
		}
	}
	return off
}
