package eventsim

import (
	"fmt"
	"math"
	"strings"

	"rcm/overlay"
)

// The built-in scenario library. Each scenario is an ordinary registrant
// of the scenario registry — a user-defined Scenario registered through
// RegisterScenario resolves everywhere these do (eventsim.Run, rcm/exp
// event cells, the cmd/eventsim -scenario flag).
func init() {
	for _, reg := range []struct {
		name    string
		factory ScenarioFactory
		aliases []string
	}{
		{"massfail", func(p Params) (Scenario, error) { return massfail{p}, nil }, []string{"fail"}},
		{"churn", func(p Params) (Scenario, error) { return churn{p}, nil }, nil},
		{"flashcrowd", func(p Params) (Scenario, error) { return flashcrowd{p}, nil }, []string{"crowd"}},
		{"correlated", func(p Params) (Scenario, error) { return correlated{p}, nil }, []string{"regions"}},
		{"zipf", func(p Params) (Scenario, error) { return zipf{p}, nil }, []string{"skewed"}},
		{"faultstorm", func(p Params) (Scenario, error) { return faultstorm{p}, nil }, []string{"storm"}},
		{"heavytail", newHeavytail, []string{"pareto-churn"}},
		{"diurnal", newDiurnal, []string{"daily"}},
		{"tracechurn", newTracechurn, []string{"trace-replay"}},
	} {
		if err := RegisterScenario(reg.name, reg.factory, reg.aliases...); err != nil {
			panic(err) // static names; unreachable
		}
	}
}

// massfail reproduces the paper's static failure model as a dynamic event:
// at FailTime, a uniformly-chosen fraction FailFraction of the population
// fails simultaneously and stays down; uniform lookups flow for the whole
// run. After the failure the overlay is exactly the static-resilience
// regime, which is what the cross-validation test exploits.
type massfail struct{ p Params }

func (s massfail) Name() string { return "massfail" }

func (s massfail) Program(env *Env) error {
	p := env.Params()
	if p.FailTime <= env.Duration() {
		rng := env.RNG()
		for node := 0; node < env.Nodes(); node++ {
			if rng.Bernoulli(p.FailFraction) {
				env.FailAt(p.FailTime, node)
			}
		}
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// churn gives every node an exponential on/off lifecycle (the dynamic
// regime §1 leaves open), with uniform lookups throughout — the
// message-level counterpart of internal/sim's churn engine.
type churn struct{ p Params }

func (s churn) Name() string { return "churn" }

func (s churn) Program(env *Env) error {
	p := env.Params()
	for node := 0; node < env.Nodes(); node++ {
		env.ChurnNode(node, p.MeanOnline, p.MeanOffline)
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// flashcrowd models a demand spike: baseline uniform lookups, then during
// [CrowdStart, CrowdStart+CrowdDuration) the arrival rate multiplies by
// CrowdFactor with a fraction Hot of lookups addressed to one hot key.
// No nodes fail; the stress is purely load concentration.
type flashcrowd struct{ p Params }

func (s flashcrowd) Name() string { return "flashcrowd" }

func (s flashcrowd) Program(env *Env) error {
	p := env.Params()
	// Clamp the crowd window into the run, as massfail does for FailTime:
	// a crowd that starts past the horizon degenerates to baseline load.
	start := p.CrowdStart
	if start > env.Duration() {
		start = env.Duration()
	}
	crowdEnd := start + p.CrowdDuration
	if crowdEnd > env.Duration() {
		crowdEnd = env.Duration()
	}
	hot := env.RNG().Intn(env.Nodes())
	hotTargets := func(rng *overlay.RNG) int {
		if rng.Bernoulli(p.Hot) {
			return hot
		}
		return rng.Intn(env.Nodes())
	}
	env.PoissonLookups(0, start, p.Rate, nil)
	env.PoissonLookups(start, crowdEnd, p.Rate*p.CrowdFactor, hotTargets)
	env.PoissonLookups(crowdEnd, env.Duration(), p.Rate, nil)
	return nil
}

// correlated kills Regions contiguous identifier ranges at FailTime —
// totalling FailFraction of the space — modeling rack, AS or data-center
// failures where identifier-adjacent nodes share fate. Structured
// geometries (ring successor chains, tree subtrees) lose whole routing
// neighborhoods at once, which independent sampling never produces.
type correlated struct{ p Params }

func (s correlated) Name() string { return "correlated" }

func (s correlated) Program(env *Env) error {
	p := env.Params()
	if p.FailTime <= env.Duration() && p.Regions > 0 && p.FailFraction > 0 {
		rng := env.RNG()
		n := env.Nodes()
		span := int(p.FailFraction * float64(n) / float64(p.Regions))
		if span < 1 {
			span = 1
		}
		for r := 0; r < p.Regions; r++ {
			start := rng.Intn(n)
			for i := 0; i < span; i++ {
				env.FailAt(p.FailTime, (start+i)%n)
			}
		}
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// faultstorm is the fault-injection substrate: the whole population stays
// online for the whole run with uniform Poisson lookups throughout, so
// every success dip, hop inflation or timeout burst is attributable to
// the transport's fault plan alone — pair it with a fault:<plan>/...
// transport (rcm/fault) rather than a churn scenario, which would
// confound node lifecycle with injected network faults. With a lossless
// plain transport it degenerates to the uniform baseline.
type faultstorm struct{ p Params }

func (s faultstorm) Name() string { return "faultstorm" }

func (s faultstorm) Program(env *Env) error {
	env.PoissonLookups(0, env.Duration(), env.Params().Rate, nil)
	return nil
}

// heavytail is churn with the memoryless assumption removed: every node's
// online sessions are drawn from a configurable lifetime family (default
// Pareto α = 1.5) and its offline stretches from another (default
// exponential), both pinned to the same MeanOnline/MeanOffline means as
// the churn scenario — so q_eff is identical and any performance gap is
// attributable purely to the lifetime *shape*. The equilibrium conformance
// suite locks in the resulting finding: the static q_eff summary, exact
// for exponential lifetimes, measurably misses for heavy tails.
type heavytail struct {
	p       Params
	on, off Lifetime
}

func newHeavytail(p Params) (Scenario, error) {
	_, _, on, off, err := lifetimeDists(p, "pareto", "exp")
	if err != nil {
		return nil, err
	}
	return heavytail{p: p, on: on, off: off}, nil
}

func (s heavytail) Name() string { return "heavytail" }

func (s heavytail) Program(env *Env) error {
	for node := 0; node < env.Nodes(); node++ {
		env.ChurnNodeDist(node, s.on, s.off)
	}
	env.PoissonLookups(0, env.Duration(), env.Params().Rate, nil)
	return nil
}

// diurnal models the daily population swing of a deployed DHT: sessions
// come from the configured lifetime families (default exponential), but
// the mean a session is drawn at is modulated by the time of "day" —
// online means scale by 1 + A·sin(2πt/P) while offline means scale by
// 1 − A·sin(2πt/P), so the online fraction oscillates around the
// long-run q_eff with period DiurnalPeriod and amplitude set by
// DiurnalAmplitude.
type diurnal struct {
	p         Params
	onF, offF LifetimeFamily
}

func newDiurnal(p Params) (Scenario, error) {
	// Parsing also pins the unmodulated means once, surfacing degenerate
	// means now rather than mid-schedule.
	onF, offF, _, _, err := lifetimeDists(p, "exp", "exp")
	if err != nil {
		return nil, err
	}
	return diurnal{p: p, onF: onF, offF: offF}, nil
}

func (s diurnal) Name() string { return "diurnal" }

func (s diurnal) Program(env *Env) error {
	p := env.Params()
	period, amp := p.DiurnalPeriod, p.DiurnalAmplitude
	day := func(t float64) float64 { return math.Sin(2 * math.Pi * t / period) }
	rng := env.RNG()
	for node := 0; node < env.Nodes(); node++ {
		on := rng.Bernoulli(p.MeanOnline / (p.MeanOnline + p.MeanOffline))
		if !on {
			env.SetOffline(node)
		}
		// The shared guarded renewal loop, with the session mean
		// re-modulated at each session's start time.
		env.churnSchedule(node, on, func(on bool, t float64) (float64, string) {
			mean := p.MeanOnline * (1 + amp*day(t))
			fam := s.onF
			if !on {
				mean = p.MeanOffline * (1 - amp*day(t))
				fam = s.offF
			}
			d, err := fam.Dist(mean)
			if err != nil {
				env.fail(err)
				return 0, fam.Name()
			}
			return d.Sample(rng), d.Name()
		})
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// tracechurn replays measured availability traces: sessions and downtimes
// are resampled from trace files (rescaled to MeanOnline/MeanOffline, so
// trace replay sits on the same equal-mean axis as the parametric
// families — request the trace's own empirical mean to replay natively).
// Params.Lifetime must name a trace or other explicit family; the
// scenario refuses to default it, because "replay" with no trace is a
// silent downgrade to synthetic churn.
type tracechurn struct {
	p       Params
	on, off Lifetime
}

func newTracechurn(p Params) (Scenario, error) {
	if strings.TrimSpace(p.Lifetime) == "" {
		return nil, fmt.Errorf("eventsim: tracechurn requires Params.Lifetime (e.g. \"trace:sessions.txt\")")
	}
	_, _, on, off, err := lifetimeDists(p, p.Lifetime, "exp")
	if err != nil {
		return nil, err
	}
	return tracechurn{p: p, on: on, off: off}, nil
}

func (s tracechurn) Name() string { return "tracechurn" }

func (s tracechurn) Program(env *Env) error {
	for node := 0; node < env.Nodes(); node++ {
		env.ChurnNodeDist(node, s.on, s.off)
	}
	env.PoissonLookups(0, env.Duration(), env.Params().Rate, nil)
	return nil
}

// zipf keeps every node online and skews the lookup workload: targets are
// drawn from a Zipf(ZipfS) rank distribution over a random permutation of
// the identifier space. A zero ZipfS selects the scenario default s = 1
// (a zipf run should be skewed without extra flags); for the uniform
// baseline use the massfail scenario with FailFraction 0.
type zipf struct{ p Params }

func (s zipf) Name() string { return "zipf" }

func (s zipf) Program(env *Env) error {
	p := env.Params()
	s_ := p.ZipfS
	if s_ <= 0 {
		s_ = 1
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, env.ZipfTargets(s_))
	return nil
}
