package eventsim

import "rcm/overlay"

// The built-in scenario library. Each scenario is an ordinary registrant
// of the scenario registry — a user-defined Scenario registered through
// RegisterScenario resolves everywhere these do (eventsim.Run, rcm/exp
// event cells, the cmd/eventsim -scenario flag).
func init() {
	for _, reg := range []struct {
		name    string
		factory ScenarioFactory
		aliases []string
	}{
		{"massfail", func(p Params) (Scenario, error) { return massfail{p}, nil }, []string{"fail"}},
		{"churn", func(p Params) (Scenario, error) { return churn{p}, nil }, nil},
		{"flashcrowd", func(p Params) (Scenario, error) { return flashcrowd{p}, nil }, []string{"crowd"}},
		{"correlated", func(p Params) (Scenario, error) { return correlated{p}, nil }, []string{"regions"}},
		{"zipf", func(p Params) (Scenario, error) { return zipf{p}, nil }, []string{"skewed"}},
	} {
		if err := RegisterScenario(reg.name, reg.factory, reg.aliases...); err != nil {
			panic(err) // static names; unreachable
		}
	}
}

// massfail reproduces the paper's static failure model as a dynamic event:
// at FailTime, a uniformly-chosen fraction FailFraction of the population
// fails simultaneously and stays down; uniform lookups flow for the whole
// run. After the failure the overlay is exactly the static-resilience
// regime, which is what the cross-validation test exploits.
type massfail struct{ p Params }

func (s massfail) Name() string { return "massfail" }

func (s massfail) Program(env *Env) error {
	p := env.Params()
	if p.FailTime <= env.Duration() {
		rng := env.RNG()
		for node := 0; node < env.Nodes(); node++ {
			if rng.Bernoulli(p.FailFraction) {
				env.FailAt(p.FailTime, node)
			}
		}
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// churn gives every node an exponential on/off lifecycle (the dynamic
// regime §1 leaves open), with uniform lookups throughout — the
// message-level counterpart of internal/sim's churn engine.
type churn struct{ p Params }

func (s churn) Name() string { return "churn" }

func (s churn) Program(env *Env) error {
	p := env.Params()
	for node := 0; node < env.Nodes(); node++ {
		env.ChurnNode(node, p.MeanOnline, p.MeanOffline)
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// flashcrowd models a demand spike: baseline uniform lookups, then during
// [CrowdStart, CrowdStart+CrowdDuration) the arrival rate multiplies by
// CrowdFactor with a fraction Hot of lookups addressed to one hot key.
// No nodes fail; the stress is purely load concentration.
type flashcrowd struct{ p Params }

func (s flashcrowd) Name() string { return "flashcrowd" }

func (s flashcrowd) Program(env *Env) error {
	p := env.Params()
	crowdEnd := p.CrowdStart + p.CrowdDuration
	if crowdEnd > env.Duration() {
		crowdEnd = env.Duration()
	}
	hot := env.RNG().Intn(env.Nodes())
	hotTargets := func(rng *overlay.RNG) int {
		if rng.Bernoulli(p.Hot) {
			return hot
		}
		return rng.Intn(env.Nodes())
	}
	env.PoissonLookups(0, p.CrowdStart, p.Rate, nil)
	env.PoissonLookups(p.CrowdStart, crowdEnd, p.Rate*p.CrowdFactor, hotTargets)
	env.PoissonLookups(crowdEnd, env.Duration(), p.Rate, nil)
	return nil
}

// correlated kills Regions contiguous identifier ranges at FailTime —
// totalling FailFraction of the space — modeling rack, AS or data-center
// failures where identifier-adjacent nodes share fate. Structured
// geometries (ring successor chains, tree subtrees) lose whole routing
// neighborhoods at once, which independent sampling never produces.
type correlated struct{ p Params }

func (s correlated) Name() string { return "correlated" }

func (s correlated) Program(env *Env) error {
	p := env.Params()
	if p.FailTime <= env.Duration() && p.Regions > 0 && p.FailFraction > 0 {
		rng := env.RNG()
		n := env.Nodes()
		span := int(p.FailFraction * float64(n) / float64(p.Regions))
		if span < 1 {
			span = 1
		}
		for r := 0; r < p.Regions; r++ {
			start := rng.Intn(n)
			for i := 0; i < span; i++ {
				env.FailAt(p.FailTime, (start+i)%n)
			}
		}
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, nil)
	return nil
}

// zipf keeps every node online and skews the lookup workload: targets are
// drawn from a Zipf(ZipfS) rank distribution over a random permutation of
// the identifier space (ZipfS = 0 is uniform — the lossless baseline).
type zipf struct{ p Params }

func (s zipf) Name() string { return "zipf" }

func (s zipf) Program(env *Env) error {
	p := env.Params()
	s_ := p.ZipfS
	if s_ <= 0 {
		s_ = 1
	}
	env.PoissonLookups(0, env.Duration(), p.Rate, env.ZipfTargets(s_))
	return nil
}
