package eventsim

import (
	"math"
	"testing"

	"rcm/eventsim/lifetime"
	"rcm/overlay"
)

// TestTransportSpecRoundTrip: TransportSpec is a parseable rendering —
// ParseTransport(TransportSpec(tr)) reconstructs an equivalent transport
// for every value the spec grammar can produce, across a generated corpus
// of latencies, medians, rates and nestings.
func TestTransportSpecRoundTrip(t *testing.T) {
	rng := overlay.NewRNG(42)
	corpus := []Transport{
		Constant{},
		Constant{Latency: 0.05},
		Empirical{},
		Empirical{Median: 0.08},
		Lossy{},
		Lossy{Rate: 0.05},
		Lossy{Rate: 0.1, Inner: Empirical{Median: 0.2}},
	}
	for i := 0; i < 50; i++ {
		lat := 0.001 + rng.Float64()
		med := 0.001 + rng.Float64()
		rate := rng.Float64() * 0.99
		var inner Transport = Constant{Latency: lat}
		if rng.Bernoulli(0.5) {
			inner = Empirical{Median: med}
		}
		corpus = append(corpus, Constant{Latency: lat}, Empirical{Median: med}, Lossy{Rate: rate, Inner: inner})
	}
	for _, tr := range corpus {
		s := TransportSpec(tr)
		got, err := ParseTransport(s)
		if err != nil {
			t.Errorf("ParseTransport(TransportSpec(%#v) = %q): %v", tr, s, err)
			continue
		}
		// Equivalence, not struct equality: the spec renders defaults
		// explicitly (Constant{} -> "constant:0.05"), so compare the
		// observable latency behavior and the display name.
		if got.Name() != tr.Name() {
			t.Errorf("%q: Name %q != %q", s, got.Name(), tr.Name())
		}
		if math.Abs(got.MinLatency()-tr.MinLatency()) > 1e-12 || math.Abs(got.MaxLatency()-tr.MaxLatency()) > 1e-12 {
			t.Errorf("%q: latency bounds [%v,%v] != [%v,%v]", s,
				got.MinLatency(), got.MaxLatency(), tr.MinLatency(), tr.MaxLatency())
		}
		// And the re-rendered spec is a fixed point.
		if again := TransportSpec(got); again != s {
			t.Errorf("TransportSpec not idempotent: %q -> %q", s, again)
		}
	}
}

// TestLifetimeSpecRoundTrip: the same property for lifetime families —
// lifetime.Parse(lifetime.Spec(f)) reconstructs an equivalent family and
// the rendered spec is a fixed point.
func TestLifetimeSpecRoundTrip(t *testing.T) {
	rng := overlay.NewRNG(7)
	corpus := []lifetime.Family{
		lifetime.Exponential{},
		lifetime.Pareto{},
		lifetime.Pareto{Alpha: 1.5},
		lifetime.Weibull{Shape: 0.5},
		lifetime.Lognormal{Sigma: 1},
	}
	for i := 0; i < 50; i++ {
		corpus = append(corpus,
			lifetime.Pareto{Alpha: 1 + 1e-6 + 3*rng.Float64()},
			lifetime.Weibull{Shape: 0.1 + 3*rng.Float64()},
			lifetime.Lognormal{Sigma: 0.1 + 3*rng.Float64()},
		)
	}
	for _, f := range corpus {
		s := lifetime.Spec(f)
		got, err := lifetime.Parse(s)
		if err != nil {
			t.Errorf("Parse(Spec(%#v) = %q): %v", f, s, err)
			continue
		}
		// The spec renders defaults explicitly (Pareto{} -> "pareto:1.5"),
		// so compare names (which encode the effective shape) and means.
		if got.Name() != f.Name() {
			t.Errorf("%q: Name %q != %q", s, got.Name(), f.Name())
		}
		if again := lifetime.Spec(got); again != s {
			t.Errorf("Spec not idempotent: %q -> %q", s, again)
		}
	}
}
