package eventsim

import (
	"math"
	"strings"
	"testing"

	"rcm/eventsim/lifetime"
	"rcm/overlay"
)

// TestTransportSpecRoundTrip: TransportSpec is a parseable rendering —
// ParseTransport(TransportSpec(tr)) reconstructs an equivalent transport
// for every value the spec grammar can produce, across a generated corpus
// of latencies, medians, rates and nestings.
func TestTransportSpecRoundTrip(t *testing.T) {
	rng := overlay.NewRNG(42)
	corpus := []Transport{
		Constant{},
		Constant{Latency: 0.05},
		Empirical{},
		Empirical{Median: 0.08},
		Lossy{},
		Lossy{Rate: 0.05},
		Lossy{Rate: 0.1, Inner: Empirical{Median: 0.2}},
	}
	for i := 0; i < 50; i++ {
		lat := 0.001 + rng.Float64()
		med := 0.001 + rng.Float64()
		rate := rng.Float64() * 0.99
		var inner Transport = Constant{Latency: lat}
		if rng.Bernoulli(0.5) {
			inner = Empirical{Median: med}
		}
		corpus = append(corpus, Constant{Latency: lat}, Empirical{Median: med}, Lossy{Rate: rate, Inner: inner})
	}
	for _, tr := range corpus {
		s := TransportSpec(tr)
		got, err := ParseTransport(s)
		if err != nil {
			t.Errorf("ParseTransport(TransportSpec(%#v) = %q): %v", tr, s, err)
			continue
		}
		// Equivalence, not struct equality: the spec renders defaults
		// explicitly (Constant{} -> "constant:0.05"), so compare the
		// observable latency behavior and the display name.
		if got.Name() != tr.Name() {
			t.Errorf("%q: Name %q != %q", s, got.Name(), tr.Name())
		}
		if math.Abs(got.MinLatency()-tr.MinLatency()) > 1e-12 || math.Abs(got.MaxLatency()-tr.MaxLatency()) > 1e-12 {
			t.Errorf("%q: latency bounds [%v,%v] != [%v,%v]", s,
				got.MinLatency(), got.MaxLatency(), tr.MinLatency(), tr.MaxLatency())
		}
		// And the re-rendered spec is a fixed point.
		if again := TransportSpec(got); again != s {
			t.Errorf("TransportSpec not idempotent: %q -> %q", s, again)
		}
	}
}

// TestNestedLossySpecStrings: the spelled-out nested grammar — a lossy
// spec whose argument is itself a full transport spec — parses, renders
// back to a canonical spelling through TransportSpec, and that spelling is
// a fixed point of parse∘render. Aliases and case fold away in the
// canonical rendering.
func TestNestedLossySpecStrings(t *testing.T) {
	for in, canonical := range map[string]string{
		"lossy:0.05:empirical:0.08": "lossy:0.05:empirical:0.08",
		"lossy:0.1:constant:0.02":   "lossy:0.1:constant:0.02",
		" LOSSY:0.2:King:0.06 ":     "lossy:0.2:empirical:0.06",
		"lossy:0.3:const:0.01":      "lossy:0.3:constant:0.01",
	} {
		tr, err := ParseTransport(in)
		if err != nil {
			t.Errorf("ParseTransport(%q): %v", in, err)
			continue
		}
		s := TransportSpec(tr)
		if s != canonical {
			t.Errorf("TransportSpec(ParseTransport(%q)) = %q, want %q", in, s, canonical)
		}
		again, err := ParseTransport(s)
		if err != nil {
			t.Errorf("ParseTransport(%q) (canonical respelling): %v", s, err)
			continue
		}
		if TransportSpec(again) != s {
			t.Errorf("canonical spelling not a fixed point: %q -> %q", s, TransportSpec(again))
		}
	}
}

// TestNestedLossySpecErrors: the nested grammar's failure modes are
// descriptive errors, not silent defaults — a doubly-nested lossy, an
// out-of-range or unparseable rate, and an unknown inner transport all
// reject with the offending part named.
func TestNestedLossySpecErrors(t *testing.T) {
	for name, tc := range map[string]struct {
		spec    string
		wantSub string
	}{
		"double nesting":   {"lossy:0.1:lossy:0.05:constant", "cannot nest another lossy"},
		"rate too high":    {"lossy:1.5", "out of [0,1]"},
		"negative rate":    {"lossy:-0.1", "out of [0,1]"},
		"unparseable rate": {"lossy:fast", `loss rate "fast"`},
		"unknown inner":    {"lossy:0.05:warp", `unknown transport "warp"`},
		"nameless inner":   {"lossy:0.05::0.1", "argument but no transport name"},
	} {
		_, err := ParseTransport(tc.spec)
		if err == nil {
			t.Errorf("%s: ParseTransport(%q) accepted", name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

// TestLifetimeSpecRoundTrip: the same property for lifetime families —
// lifetime.Parse(lifetime.Spec(f)) reconstructs an equivalent family and
// the rendered spec is a fixed point.
func TestLifetimeSpecRoundTrip(t *testing.T) {
	rng := overlay.NewRNG(7)
	corpus := []lifetime.Family{
		lifetime.Exponential{},
		lifetime.Pareto{},
		lifetime.Pareto{Alpha: 1.5},
		lifetime.Weibull{Shape: 0.5},
		lifetime.Lognormal{Sigma: 1},
	}
	for i := 0; i < 50; i++ {
		corpus = append(corpus,
			lifetime.Pareto{Alpha: 1 + 1e-6 + 3*rng.Float64()},
			lifetime.Weibull{Shape: 0.1 + 3*rng.Float64()},
			lifetime.Lognormal{Sigma: 0.1 + 3*rng.Float64()},
		)
	}
	for _, f := range corpus {
		s := lifetime.Spec(f)
		got, err := lifetime.Parse(s)
		if err != nil {
			t.Errorf("Parse(Spec(%#v) = %q): %v", f, s, err)
			continue
		}
		// The spec renders defaults explicitly (Pareto{} -> "pareto:1.5"),
		// so compare names (which encode the effective shape) and means.
		if got.Name() != f.Name() {
			t.Errorf("%q: Name %q != %q", s, got.Name(), f.Name())
		}
		if again := lifetime.Spec(got); again != s {
			t.Errorf("Spec not idempotent: %q -> %q", s, again)
		}
	}
}
