package eventsim

import (
	"math"
	"reflect"
	"testing"

	"rcm/overlay"
)

// TestWheelMatchesHeapRandomized drives the two eventQueue implementations
// with an identical randomized schedule-and-drain workload and checks they
// emit byte-for-byte the same event sequence — the differential unit test
// underneath the engine-level bit-identity guarantee. The workload pushes
// bursts at wildly different horizons (same-window, next-window, deep
// level-2, beyond the wheel horizon) to force every wheel path: in-order
// slots, cascades, overflow re-placement and late insertion into the open
// window.
func TestWheelMatchesHeapRandomized(t *testing.T) {
	const width = 0.05
	// The wheel's horizon: beyond it events park in the overflow list.
	const horizon = width / wheelSub * float64(1<<(wheelBits*wheelLevels))
	for trial := uint64(0); trial < 20; trial++ {
		rng := overlay.NewRNG(trial + 1)
		wheel := newWheelQueue(width)
		heap := &heapQueue{}
		seq := uint64(0)
		now := 0.0
		push := func(t float64) {
			e := ev{t: t, seq: seq, node: uint32(seq)}
			seq++
			wheel.push(e)
			heap.push(e)
		}
		// Pre-schedule a batch, like the scenario program does.
		for i := 0; i < 200; i++ {
			// Mix horizons: most nearby (level 0/1), some deep (level 2),
			// a few beyond the wheel horizon (overflow).
			u := rng.Float64()
			switch {
			case u < 0.6:
				push(rng.Float64() * 20)
			case u < 0.9:
				push(rng.Float64() * horizon * 0.9)
			default:
				push(horizon * (1 + rng.Float64()*3))
			}
		}
		for epoch := 0; epoch < 5000 && (wheel.size() > 0 || heap.size() > 0); epoch++ {
			if wheel.size() != heap.size() {
				t.Fatalf("trial %d: size diverged: wheel %d heap %d", trial, wheel.size(), heap.size())
			}
			// Jump like the engine: to the next event's epoch when idle.
			wt, wok := wheel.minTime()
			ht, hok := heap.minTime()
			if wok != hok || (wok && wt != ht) {
				t.Fatalf("trial %d: minTime diverged: wheel (%v,%v) heap (%v,%v)", trial, wt, wok, ht, hok)
			}
			end := now + width
			if jump := width * math.Floor(wt/width); jump > end {
				end = jump + width
			}
			for {
				we, wok := wheel.popBefore(end)
				he, hok := heap.popBefore(end)
				if wok != hok {
					t.Fatalf("trial %d: popBefore(%v) diverged: wheel ok=%v heap ok=%v", trial, end, wok, hok)
				}
				if !wok {
					break
				}
				if we != he {
					t.Fatalf("trial %d: event order diverged at %v: wheel %+v heap %+v", trial, end, we, he)
				}
				// Sometimes reschedule from inside the drain loop, as
				// handlers do: strictly future, sometimes same epoch.
				if rng.Bernoulli(0.3) && seq < 2000 {
					push(we.t + width*(0.5+rng.Float64()*40))
				}
			}
			now = end
		}
		if wheel.size() != 0 || heap.size() != 0 {
			t.Fatalf("trial %d: queues not drained: wheel %d heap %d", trial, wheel.size(), heap.size())
		}
	}
}

// TestWheelLateInsertion covers the open-window insertion path directly:
// an event landing in the slot currently being drained must interleave in
// (t, seq) order with the not-yet-emitted remainder.
func TestWheelLateInsertion(t *testing.T) {
	w := newWheelQueue(32) // slot width 1: slot k covers [k, k+1)
	for i, tt := range []float64{0.2, 0.5, 0.8} {
		w.push(ev{t: tt, seq: uint64(i)})
	}
	e, ok := w.popBefore(1)
	if !ok || e.t != 0.2 {
		t.Fatalf("first pop = %+v, %v", e, ok)
	}
	// Slot [0,1) is open mid-drain; 0.4 and 0.5 (same t, later seq) must
	// interleave before the pending 0.5 and after it respectively.
	w.push(ev{t: 0.4, seq: 10})
	w.push(ev{t: 0.5, seq: 11})
	var got []float64
	var seqs []uint64
	for {
		e, ok := w.popBefore(1)
		if !ok {
			break
		}
		got = append(got, e.t)
		seqs = append(seqs, e.seq)
	}
	wantT := []float64{0.4, 0.5, 0.5, 0.8}
	wantSeq := []uint64{10, 1, 11, 2}
	if !reflect.DeepEqual(got, wantT) || !reflect.DeepEqual(seqs, wantSeq) {
		t.Fatalf("late insertion order: t=%v seq=%v, want t=%v seq=%v", got, seqs, wantT, wantSeq)
	}
	if w.size() != 0 {
		t.Fatalf("size %d after drain", w.size())
	}
}

// TestWheelOverflowCascades exercises the beyond-horizon path: events past
// the top level's span must park in overflow and still come out in exact
// order when the cursor gets there.
func TestWheelOverflowCascades(t *testing.T) {
	const width = 1.0
	w := newWheelQueue(width)
	horizon := width / wheelSub * float64(1<<(wheelBits*wheelLevels))
	times := []float64{horizon * 2.5, 3, horizon + 7, horizon * 2.5, 0.5}
	for i, tt := range times {
		w.push(ev{t: tt, seq: uint64(i)})
	}
	if w.overflow == nilCell {
		t.Fatal("no events parked in overflow despite beyond-horizon times")
	}
	var got []ev
	end := width
	for w.size() > 0 {
		for {
			e, ok := w.popBefore(end)
			if !ok {
				break
			}
			got = append(got, e)
		}
		mt, ok := w.minTime()
		if !ok {
			break
		}
		end = width*math.Floor(mt/width) + width
	}
	want := []uint64{4, 1, 2, 0, 3} // by (t, seq)
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.seq != want[i] {
			t.Fatalf("drain order %d: seq %d, want %d (events %+v)", i, e.seq, want[i], got)
		}
	}
}

// TestSchedulersBitIdentical is the engine-level acceptance check for the
// timing-wheel rewrite: for fixed (Seed, Shards), a run scheduled by
// hierarchical timing wheels must be bit-identical to the binary-heap
// reference — same buckets, counters, hop sums, online fractions and
// event totals — across every built-in scenario, with maintenance on and
// a lossy empirical transport so all event kinds and retry paths fire.
func TestSchedulersBitIdentical(t *testing.T) {
	trace := testTracePath(t)
	for _, scenario := range ScenarioNames() {
		cfg := Config{
			Protocol:  "chord",
			Overlay:   OverlayConfig{Bits: 8},
			Scenario:  scenario,
			Params:    Params{FailFraction: 0.3, Rate: 800, ZipfS: 1.1, MeanOnline: 1, MeanOffline: 0.25},
			Transport: Lossy{Rate: 0.05, Inner: Empirical{Median: 0.06}},
			Duration:  5,
			Shards:    3,
			Seed:      99,
			Maintain:  true,
		}
		if scenario == "tracechurn" {
			cfg.Params.Lifetime = "trace:" + trace
		}
		heapCfg := cfg
		heapCfg.Scheduler = SchedulerHeap
		wheelCfg := cfg
		wheelCfg.Scheduler = SchedulerWheel
		a := mustRun(t, heapCfg)
		b := mustRun(t, wheelCfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: heap and wheel schedulers diverged:\nheap:  %+v\nwheel: %+v", scenario, a, b)
		}
	}
}
