package eventsim

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rcm/fault"
	"rcm/overlay"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testTracePath writes a small availability trace usable by the
// tracechurn scenario and the trace lifetime family in tests.
func testTracePath(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sessions.txt")
	if err := os.WriteFile(path, []byte("# test trace\n0.4\n0.9\n1.6\n3.1\n0.2\n1.1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDeterministic locks the core reproducibility contract: identical
// (seed, shards) configurations produce bit-identical results regardless
// of host scheduling, for every built-in scenario.
func TestDeterministic(t *testing.T) {
	trace := testTracePath(t)
	for _, scenario := range ScenarioNames() {
		cfg := Config{
			Protocol: "chord",
			Overlay:  OverlayConfig{Bits: 8},
			Scenario: scenario,
			Params:   Params{FailFraction: 0.3, Rate: 500, ZipfS: 1.1},
			Duration: 4,
			Seed:     42,
			Maintain: true,
		}
		if scenario == "tracechurn" {
			cfg.Params.Lifetime = "trace:" + trace
		}
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two identical runs diverged:\n%+v\nvs\n%+v", scenario, a, b)
		}
	}
}

// TestShardCountIsSamplingPlan documents that the shard count changes RNG
// streams (like sim worker counts) but not the qualitative outcome: a
// lossless, churn-free run succeeds fully at any shard count, including
// the inline single-shard path.
func TestShardCountIsSamplingPlan(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		res := mustRun(t, Config{
			Protocol: "kademlia",
			Overlay:  OverlayConfig{Bits: 8},
			Scenario: "massfail",
			Params:   Params{FailFraction: 0, Rate: 400},
			Duration: 3,
			Shards:   shards,
		})
		if res.Shards != shards {
			t.Fatalf("shards = %d, want %d", res.Shards, shards)
		}
		total := res.Totals()
		if total.Started == 0 || total.Completed != total.Started {
			t.Errorf("shards=%d: %d/%d lookups completed, want all", shards, total.Completed, total.Started)
		}
	}
}

// TestMassfailDropsOnline checks the scenario/lifecycle plumbing: after
// the failure the online fraction matches 1−FailFraction, lookups from
// dead sources are skipped, and success drops below 1 while never dipping
// to the pre-fail buckets.
func TestMassfailDropsOnline(t *testing.T) {
	res := mustRun(t, Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 9},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.4, FailTime: 2, Rate: 2000},
		Duration: 8,
		Buckets:  8,
	})
	first, last := res.Buckets[0], res.Buckets[len(res.Buckets)-1]
	if first.OnlineFraction != 1 {
		t.Errorf("pre-fail online fraction %v, want 1", first.OnlineFraction)
	}
	if math.Abs(last.OnlineFraction-0.6) > 0.08 {
		t.Errorf("post-fail online fraction %v, want ≈0.6", last.OnlineFraction)
	}
	if s := first.Success(); s != 1 {
		t.Errorf("pre-fail success %v, want 1", s)
	}
	if s := last.Success(); !(s < 1) || math.IsNaN(s) {
		t.Errorf("post-fail success %v, want < 1", s)
	}
	if res.Totals().Skipped == 0 {
		t.Error("no skipped lookups despite 40% of sources being dead")
	}
	if res.Totals().Timeouts == 0 {
		t.Error("no timeouts despite dead next hops")
	}
}

// TestMaintenanceHealsChurn is the headline dynamic result the static
// layers cannot express: under churn, join+stabilize maintenance buys
// back a substantial fraction of failed lookups, at a measurable message
// cost.
func TestMaintenanceHealsChurn(t *testing.T) {
	base := Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 9},
		Scenario: "churn",
		Params:   Params{MeanOnline: 1, MeanOffline: 0.5, Rate: 2000},
		Duration: 8,
		Seed:     3,
	}
	static := mustRun(t, base)
	maintained := base
	maintained.Maintain = true
	maintained.StabilizeEvery = 0.25
	healed := mustRun(t, maintained)

	sStatic := static.WindowSuccess(2, 8)
	sHealed := healed.WindowSuccess(2, 8)
	if !(sHealed > sStatic+0.02) {
		t.Errorf("maintenance did not help: healed %.4f vs static %.4f", sHealed, sStatic)
	}
	if healed.Totals().MaintMessages == 0 {
		t.Error("maintained run reports zero maintenance messages")
	}
	if static.Totals().MaintMessages != 0 {
		t.Errorf("unmaintained run reports %d maintenance messages", static.Totals().MaintMessages)
	}
}

// TestLossyTransportRetries: per-hop retransmission absorbs moderate
// request loss in a healthy overlay — success stays high — while timeouts
// and extra messages show up in the accounting.
func TestLossyTransportRetries(t *testing.T) {
	res := mustRun(t, Config{
		Protocol:  "chord",
		Overlay:   OverlayConfig{Bits: 8},
		Scenario:  "massfail",
		Params:    Params{FailFraction: 0, Rate: 500},
		Transport: Lossy{Rate: 0.1},
		Duration:  4,
	})
	total := res.Totals()
	if total.Timeouts == 0 {
		t.Error("10% request loss produced no timeouts")
	}
	if s := res.WindowSuccess(0, 4); s < 0.97 {
		t.Errorf("success %.4f under 10%% loss, want ≥ 0.97 (retries should absorb it)", s)
	}
}

// TestFlashcrowdLoadSpike: the crowd window multiplies message volume
// without failing nodes.
func TestFlashcrowdLoadSpike(t *testing.T) {
	res := mustRun(t, Config{
		Protocol: "symphony",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "flashcrowd",
		Params:   Params{Rate: 200, CrowdStart: 2, CrowdDuration: 2, CrowdFactor: 8},
		Duration: 8,
		Buckets:  8,
	})
	quiet := res.Buckets[0].LookupMessages + res.Buckets[1].LookupMessages
	crowd := res.Buckets[2].LookupMessages + res.Buckets[3].LookupMessages
	if !(crowd > 3*quiet) {
		t.Errorf("crowd window messages %d not a spike over quiet %d", crowd, quiet)
	}
	if on := res.Buckets[7].OnlineFraction; on != 1 {
		t.Errorf("flashcrowd failed nodes: online fraction %v", on)
	}
}

// TestCorrelatedMilderThanIndependent locks in a finding only the event
// layer can produce: killing the same failure mass as contiguous
// identifier regions is *milder* for survivor-to-survivor routing than
// independent sampling — survivors keep most of their table entries (only
// those pointing into the dead regions are lost), and dead-region
// destinations are excluded by the surviving-pair conditioning, whereas
// independent failure degrades every node's table uniformly. The paper's
// independent-failure model is therefore conservative for spatially
// correlated outages. The gap is dramatic for geometries with structural
// neighbors (symphony near links, plaxton prefix levels) and present for
// all five; symphony and kademlia carry the assertion with wide margins.
func TestCorrelatedMilderThanIndependent(t *testing.T) {
	for _, proto := range []string{"symphony", "kademlia"} {
		shared := Params{FailFraction: 0.3, FailTime: 1, Rate: 3000, Regions: 2}
		base := Config{
			Protocol: proto,
			Overlay:  OverlayConfig{Bits: 9},
			Scenario: "correlated",
			Params:   shared,
			Duration: 6,
			Seed:     11,
		}
		corr := mustRun(t, base)
		indep := base
		indep.Scenario = "massfail"
		ind := mustRun(t, indep)

		sCorr := corr.WindowSuccess(2, 6)
		sInd := ind.WindowSuccess(2, 6)
		if !(sCorr > sInd+0.1) {
			t.Errorf("%s: correlated success %.4f not clearly milder than independent %.4f",
				proto, sCorr, sInd)
		}
		// The same failure mass went down either way.
		if on := corr.Buckets[len(corr.Buckets)-1].OnlineFraction; math.Abs(on-0.7) > 0.1 {
			t.Errorf("%s: correlated online fraction %v, want ≈0.7", proto, on)
		}
	}
}

// TestZipfSkew: the zipf scenario completes and remains fully successful
// in a healthy overlay — skew concentrates load, it must not lose lookups.
func TestZipfSkew(t *testing.T) {
	res := mustRun(t, Config{
		Protocol: "kademlia",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "zipf",
		Params:   Params{Rate: 500, ZipfS: 1.2},
		Duration: 4,
	})
	total := res.Totals()
	if total.Started == 0 || total.Completed != total.Started {
		t.Errorf("zipf run: %d/%d completed", total.Completed, total.Started)
	}
}

// TestZipfTargetsSkewed checks the sampler itself: under s = 1.2, the most
// popular target must receive far more than the uniform share.
func TestZipfTargetsSkewed(t *testing.T) {
	env := &Env{nodes: 256, duration: 1, rng: overlay.NewRNG(5), initialOffline: make([]bool, 256)}
	sample := env.ZipfTargets(1.2)
	counts := make(map[int]int)
	rng := overlay.NewRNG(6)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[sample(rng)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if uniform := draws / 256; max < 10*uniform {
		t.Errorf("hottest target drawn %d times, want ≥ 10× the uniform share %d", max, uniform)
	}
	if env.ZipfTargets(0) != nil {
		t.Error("ZipfTargets(0) should be nil (uniform)")
	}
}

// TestConfigValidation covers the rejection paths.
func TestConfigValidation(t *testing.T) {
	ok := Config{Protocol: "chord", Overlay: OverlayConfig{Bits: 6}, Scenario: "massfail"}
	for name, mutate := range map[string]func(*Config){
		"unknown scenario":    func(c *Config) { c.Scenario = "nope" },
		"unknown protocol":    func(c *Config) { c.Protocol = "nope" },
		"rto below rtt":       func(c *Config) { c.RTO = 0.05 },
		"negative fail":       func(c *Config) { c.Params.FailFraction = -1 },
		"fail above one":      func(c *Config) { c.Params.FailFraction = 1.5 },
		"nan rate":            func(c *Config) { c.Params.Rate = math.NaN() },
		"loss rate above 1":   func(c *Config) { c.Transport = Lossy{Rate: 1.5} },
		"lossy over faulty":   func(c *Config) { c.Transport = Lossy{Rate: 0.1, Inner: Faulty{Plan: fault.Plan{Dup: 0.1}}} },
		"bad empirical order": func(c *Config) { c.Transport = Empirical{Quantiles: []float64{2, 1}} },
		"too many shards":     func(c *Config) { c.Shards = 1000 },
		"zero bits":           func(c *Config) { c.Overlay.Bits = 0 },
	} {
		cfg := ok
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Run(ok); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestScenarioRegistry covers the registry's collision rules.
func TestScenarioRegistry(t *testing.T) {
	factory := func(Params) (Scenario, error) { return massfail{}, nil }
	if err := RegisterScenario("massfail", factory); err == nil {
		t.Error("duplicate canonical name accepted")
	}
	if err := RegisterScenario("brandnew-x", factory, "fail"); err == nil {
		t.Error("alias colliding with existing name accepted")
	}
	if err := RegisterScenario("", factory); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterScenario("self-alias", factory, "self-alias"); err == nil {
		t.Error("self-alias accepted")
	}
	if err := RegisterScenario("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	names := ScenarioNames()
	want := []string{"massfail", "churn", "flashcrowd", "correlated", "zipf"}
	for i, w := range want {
		if i >= len(names) || names[i] != w {
			t.Fatalf("ScenarioNames() = %v, want prefix %v", names, want)
		}
	}
	if _, ok := LookupScenario("  CROWD "); !ok {
		t.Error("alias lookup with case/space noise failed")
	}
}

// TestTransportParsing locks the CLI spellings.
func TestTransportParsing(t *testing.T) {
	for spec, want := range map[string]string{
		"constant":             "constant",
		"constant:0.1":         "constant",
		"empirical":            "empirical",
		"empirical:0.08":       "empirical",
		"lossy":                "lossy+constant",
		"lossy:0.05":           "lossy+constant",
		"lossy:0.05:empirical": "lossy+empirical",
	} {
		tr, err := ParseTransport(spec)
		if err != nil {
			t.Errorf("ParseTransport(%q): %v", spec, err)
			continue
		}
		if tr.Name() != want {
			t.Errorf("ParseTransport(%q).Name() = %q, want %q", spec, tr.Name(), want)
		}
		if !(tr.MinLatency() > 0) || !(tr.MaxLatency() >= tr.MinLatency()) {
			t.Errorf("ParseTransport(%q): bad latency bounds [%v, %v]", spec, tr.MinLatency(), tr.MaxLatency())
		}
	}
	for _, bad := range []string{"warp", "constant:x", "lossy:2", "lossy:0.1:lossy:0.1", "empirical:-1"} {
		if _, err := ParseTransport(bad); err == nil {
			t.Errorf("ParseTransport(%q) accepted", bad)
		}
	}
}

// TestEmpiricalTransportBounds: samples stay inside the declared bounds
// and the median scaling lands where asked.
func TestEmpiricalTransportBounds(t *testing.T) {
	e := Empirical{Median: 0.08}
	rng := overlay.NewRNG(9)
	sum := 0.0
	const draws = 5000
	for i := 0; i < draws; i++ {
		lat, ok := e.Sample(rng)
		if !ok {
			t.Fatal("empirical transport dropped a message")
		}
		if lat < e.MinLatency()-1e-12 || lat > e.MaxLatency()+1e-12 {
			t.Fatalf("sample %v outside [%v, %v]", lat, e.MinLatency(), e.MaxLatency())
		}
		sum += lat
	}
	if mean := sum / draws; mean < 0.05 || mean > 0.2 {
		t.Errorf("mean latency %v wildly off the 0.08 median profile", mean)
	}
}

// TestCustomScenarioEndToEnd registers the doc.go walkthrough scenario and
// runs it: healing must restore the online fraction and maintenance must
// spike in the heal bucket.
func TestCustomScenarioEndToEnd(t *testing.T) {
	err := RegisterScenario("test-blackout", func(p Params) (Scenario, error) {
		return scenarioFunc{name: "test-blackout", program: func(env *Env) error {
			n := env.Nodes()
			start := env.RNG().Intn(n)
			heal := (env.Params().FailTime + env.Duration()) / 2
			for i := 0; i < n/4; i++ {
				env.FailAt(env.Params().FailTime, (start+i)%n)
				env.JoinAt(heal, (start+i)%n)
			}
			env.PoissonLookups(0, env.Duration(), env.Params().Rate, nil)
			return nil
		}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 8},
		Scenario: "test-blackout",
		Params:   Params{FailTime: 2, Rate: 1000},
		Duration: 8,
		Buckets:  8,
		Maintain: true,
	})
	mid := res.Buckets[3].OnlineFraction
	end := res.Buckets[7].OnlineFraction
	if !(mid < 0.8) {
		t.Errorf("blackout did not take nodes down: online %v at t=3", mid)
	}
	if end != 1 {
		t.Errorf("blackout did not heal: online %v at t=7", end)
	}
	if res.Totals().MaintMessages == 0 {
		t.Error("healing joins produced no maintenance traffic")
	}
}

// scenarioFunc adapts a closure to Scenario for tests.
type scenarioFunc struct {
	name    string
	program func(*Env) error
}

func (s scenarioFunc) Name() string           { return s.name }
func (s scenarioFunc) Program(env *Env) error { return s.program(env) }
