package eventsim

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// obsConfig is a small lossy churn run that exercises retransmission,
// failover and failure paths, so distributions and traces see every
// event kind.
func obsConfig() Config {
	return Config{
		Protocol: "chord",
		Overlay:  OverlayConfig{Bits: 7},
		Scenario: "massfail",
		Params:   Params{FailFraction: 0.3, FailTime: 1, Rate: 400},
		Duration: 3,
		Seed:     9,
	}
}

// TestHistogramsMatchScalarAggregates pins the distributions to the
// scalar accounting that predates them: per bucket, the histogram's
// count equals Completed, its hop sum equals SumHops, and its mean
// latency (µs) matches SumLatency/Completed.
func TestHistogramsMatchScalarAggregates(t *testing.T) {
	res := mustRun(t, obsConfig())
	if res.HopDist == nil || res.LatDist == nil {
		t.Fatal("distributions nil without NoDist")
	}
	if len(res.HopDist) != len(res.Buckets) || len(res.LatDist) != len(res.Buckets) {
		t.Fatalf("distribution series length %d/%d, want %d", len(res.HopDist), len(res.LatDist), len(res.Buckets))
	}
	for bi, b := range res.Buckets {
		hd, ld := &res.HopDist[bi], &res.LatDist[bi]
		if int(hd.Count()) != b.Completed || int(ld.Count()) != b.Completed {
			t.Errorf("bucket %d: histogram counts %d/%d, want Completed=%d", bi, hd.Count(), ld.Count(), b.Completed)
		}
		if float64(hd.Sum()) != b.SumHops {
			t.Errorf("bucket %d: hop histogram sum %d, want %v", bi, hd.Sum(), b.SumHops)
		}
		if b.Completed > 0 {
			// Latency values are rounded to integer µs per observation, so
			// the means agree to within a microsecond.
			if got, want := ld.Mean()/1e6, b.MeanLatency(); math.Abs(got-want) > 1e-6 {
				t.Errorf("bucket %d: latency histogram mean %v s, want %v s", bi, got, want)
			}
		}
	}
}

// TestNoDistDisables checks the overhead-gate escape hatch leaves the
// scalar series untouched.
func TestNoDistDisables(t *testing.T) {
	cfg := obsConfig()
	with := mustRun(t, cfg)
	cfg.NoDist = true
	without := mustRun(t, cfg)
	if without.HopDist != nil || without.LatDist != nil {
		t.Error("NoDist run still produced distributions")
	}
	if !reflect.DeepEqual(with.Buckets, without.Buckets) {
		t.Error("NoDist changed the scalar bucket series")
	}
	withDist := with.WindowHopDist(0, cfg.Duration)
	if withDist.Count() == 0 {
		t.Error("default run produced an empty hop distribution")
	}
	withoutDist := without.WindowHopDist(0, cfg.Duration)
	if withoutDist.Count() != 0 {
		t.Error("WindowHopDist on a NoDist run is not empty")
	}
}

// TestWindowDistAccessors checks window merging: the full window equals
// the fold of all buckets, and sub-windows sum to it.
func TestWindowDistAccessors(t *testing.T) {
	res := mustRun(t, obsConfig())
	full := res.WindowHopDist(0, res.Duration)
	var sum uint64
	for bi := range res.HopDist {
		sum += res.HopDist[bi].Count()
	}
	if full.Count() != sum {
		t.Errorf("full-window count %d, want %d", full.Count(), sum)
	}
	mid := res.Duration / 2
	a := res.WindowHopDist(0, mid)
	b := res.WindowHopDist(mid, res.Duration)
	if a.Count()+b.Count() != full.Count() {
		t.Errorf("split windows %d+%d != %d", a.Count(), b.Count(), full.Count())
	}
	lat := res.WindowLatencyDist(0, res.Duration)
	if lat.Count() != full.Count() {
		t.Errorf("latency window count %d, want %d", lat.Count(), full.Count())
	}
	// Latencies are at least one transport hop: >= min latency in µs.
	if lat.Count() > 0 && lat.Min() < 1000 {
		t.Errorf("latency min %d µs implausibly small", lat.Min())
	}
}

// TestTraceSamplesLookups checks the recorder: sampling picks exactly
// the lookups with index % Trace == 0, every trace is a well-formed
// narrative, and the sampled fraction of hop counts agrees with the
// result's accounting.
func TestTraceSamplesLookups(t *testing.T) {
	cfg := obsConfig()
	cfg.Trace = 7
	res := mustRun(t, cfg)
	if len(res.Traces) == 0 {
		t.Fatal("no traces recorded")
	}
	for _, tr := range res.Traces {
		if tr.Lookup%cfg.Trace != 0 {
			t.Errorf("lookup %d traced but not a multiple of %d", tr.Lookup, cfg.Trace)
		}
		if len(tr.Events) == 0 {
			t.Errorf("lookup %d: empty trace", tr.Lookup)
			continue
		}
		first := tr.Events[0]
		if first.Kind != TraceStart && first.Kind != TraceSkip {
			t.Errorf("lookup %d: first event %q, want start/skip", tr.Lookup, first.Kind)
		}
		prev := math.Inf(-1)
		for _, ev := range tr.Events {
			if ev.T < prev {
				t.Errorf("lookup %d: events out of time order", tr.Lookup)
				break
			}
			prev = ev.T
		}
		// A completed trace's final hop count must match its done event.
		if last := tr.Events[len(tr.Events)-1]; last.Kind == TraceDone {
			if last.Node != tr.Dst {
				t.Errorf("lookup %d: done at node %d, want dst %d", tr.Lookup, last.Node, tr.Dst)
			}
		}
	}
	// Untraced run records nothing.
	cfg.Trace = 0
	if res := mustRun(t, cfg); len(res.Traces) != 0 {
		t.Error("Trace=0 run recorded traces")
	}
}

// TestTraceDeterministic locks traces into the reproducibility
// contract: identical (Seed, Shards) configs yield identical traces on
// both schedulers, including the rendered text.
func TestTraceDeterministic(t *testing.T) {
	cfg := obsConfig()
	cfg.Trace = 5
	var renders []string
	for _, sched := range []string{SchedulerWheel, SchedulerHeap} {
		cfg.Scheduler = sched
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if !reflect.DeepEqual(a.Traces, b.Traces) {
			t.Fatalf("%s: two identical runs produced different traces", sched)
		}
		var sb strings.Builder
		if err := WriteTraces(&sb, a); err != nil {
			t.Fatal(err)
		}
		renders = append(renders, sb.String())
	}
	if renders[0] != renders[1] {
		t.Error("wheel and heap schedulers rendered different traces")
	}
	if !strings.Contains(renders[0], "outcome=") || !strings.Contains(renders[0], "send") {
		t.Errorf("trace rendering unexpectedly sparse:\n%.400s", renders[0])
	}
}

// TestTraceValidation rejects a negative sampling interval.
func TestTraceValidation(t *testing.T) {
	cfg := obsConfig()
	cfg.Trace = -1
	if _, err := Run(cfg); err == nil {
		t.Error("Trace=-1 accepted")
	}
}
