package eventsim

import (
	"fmt"
	"strings"

	"rcm/fault"
	"rcm/overlay"
)

// Faulty wraps another transport with a fault plan (rcm/fault). The
// wrapper itself only models the inner latency/loss process — Sample
// delegates verbatim, so latency streams match the unwrapped transport
// draw for draw — while the engine, which knows each request's
// endpoints and send time, applies the plan's clauses itself: partition
// blackholes, delay spikes, duplication, reordering, corruption and
// per-node stalls, all billed into Result.Faults.
//
// Like the lossy transport, every clause faults forward (request)
// traffic only. MaxLatency reports the plan-inflated worst case
// (Plan.InflateMax), so the default retransmission timeout and the
// RTO > 2 x MaxLatency validation stay safe with no extra
// configuration.
//
// A Faulty must be the outermost transport (it may wrap a Lossy, not
// the other way around): the engine finds the plan by inspecting
// Config.Transport. The spec spelling is
//
//	fault:<plan>[/<inner-transport>]
//
// e.g. fault:partition:2@1-2,dup:0.1/lossy:0.05:empirical — the '/'
// separates the comma-joined plan clauses (rcm/fault grammar) from the
// nested transport spec, which defaults to constant.
type Faulty struct {
	// Inner is the underlying latency model (Constant{} when nil).
	Inner Transport
	// Plan is the fault schedule; it must be valid and non-empty.
	Plan fault.Plan
}

func (f Faulty) inner() Transport {
	if f.Inner == nil {
		return Constant{}
	}
	return f.Inner
}

// Name implements Transport.
func (f Faulty) Name() string { return "fault+" + f.inner().Name() }

// MinLatency implements Transport: faults only ever add latency, so the
// inner bound stands and the engine's lookahead is unchanged.
func (f Faulty) MinLatency() float64 { return f.inner().MinLatency() }

// MaxLatency implements Transport: the inner bound inflated by the
// plan's worst case (reorder hold-back, delay-spike factor).
func (f Faulty) MaxLatency() float64 { return f.Plan.InflateMax(f.inner().MaxLatency()) }

// Sample implements Transport by delegating to the inner model; the
// engine layers the plan's clauses on top.
func (f Faulty) Sample(rng *overlay.RNG) (float64, bool) { return f.inner().Sample(rng) }

// containsFaulty reports whether tr is, or wraps, a Faulty transport —
// the engine only honors an outermost plan, so any other position is a
// configuration error.
func containsFaulty(tr Transport) bool {
	switch v := tr.(type) {
	case Faulty:
		return true
	case Lossy:
		return containsFaulty(v.inner())
	}
	return false
}

func init() {
	transports.MustRegister("fault", func(arg string) (Transport, error) {
		planStr, innerStr, _ := strings.Cut(arg, "/")
		if strings.TrimSpace(planStr) == "" {
			return nil, fmt.Errorf("eventsim: fault transport needs a plan (fault:<plan>[/<inner>])")
		}
		plan, err := fault.Parse(planStr)
		if err != nil {
			return nil, fmt.Errorf("eventsim: %w", err)
		}
		f := Faulty{Plan: plan}
		if strings.TrimSpace(innerStr) != "" {
			inner, err := ParseTransport(innerStr)
			if err != nil {
				return nil, err
			}
			f.Inner = inner
		}
		return f, validateTransport(f)
	}, "faults")
}
