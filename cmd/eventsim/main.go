// Command eventsim runs the message-level discrete-event simulator on a
// concrete DHT overlay: a scenario from the pluggable library (massfail,
// churn, flashcrowd, correlated, zipf, or anything registered through
// rcm/eventsim) drives node lifecycles and a lookup workload over a
// configurable transport, and the time-bucketed metrics stream through
// the experiment runner in rcm/exp. With analytic/sim mode flags the
// static-model predictions at the scenario's equivalent failure
// probability q_eff are printed alongside, scoring the paper's static
// framework against real protocol dynamics.
//
// Examples:
//
//	eventsim -protocol chord -bits 12 -scenario massfail -fail 0.3
//	eventsim -protocol kademlia -bits 10 -scenario churn -maintain
//	eventsim -protocol chord -scenario heavytail -lifetime pareto:1.5
//	eventsim -protocol chord -scenario tracechurn -lifetime trace:sessions.txt
//	eventsim -protocol chord -scenario flashcrowd -transport lossy:0.05:empirical
//	eventsim -protocol symphony -scenario zipf -zipf 1.2 -format csv
//
// For performance work, -cpuprofile and -memprofile write pprof profiles
// of the run (`make profile` wraps the benchmark workload), so
// optimization PRs start from a profile instead of a guess:
//
//	eventsim -bits 12 -scenario massfail -rate 20000 -duration 2 \
//	  -mode event -cpuprofile cpu.prof -memprofile mem.prof
//
// For debugging routing behavior, -trace N prints the full hop trace
// (sends, per-hop progress, RTO retransmissions, candidate failovers,
// verdict) of every Nth lookup after the table:
//
//	eventsim -bits 8 -scenario massfail -fail 0.3 -duration 2 -trace 100
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rcm/eventsim"
	"rcm/exp"
	"rcm/fault"
	"rcm/internal/table"
)

// faultClauseNames lists the plan clauses for the -fault usage string.
func faultClauseNames() []string { return fault.ClauseNames() }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eventsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eventsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "chord", "protocol: plaxton|can|kademlia|chord|symphony|singlehop")
		bits     = fs.Int("bits", 12, "identifier length d (N = 2^d)")
		scenario = fs.String("scenario", "massfail", "scenario: "+strings.Join(eventsim.ScenarioNames(), "|"))
		duration = fs.Float64("duration", 10, "total simulated time")
		buckets  = fs.Int("buckets", 10, "metric windows per run")
		rate     = fs.Float64("rate", 500, "aggregate lookup arrivals per time unit")

		failFrac = fs.Float64("fail", 0.3, "massfail/correlated: fraction of nodes that fail")
		failTime = fs.Float64("fail-time", 0, "when the failure hits (0: 30% of duration)")
		regions  = fs.Int("regions", 0, "correlated: contiguous regions to kill (0: default 4)")

		meanOnline  = fs.Float64("mean-online", 0, "churn: mean online session (0: default 1)")
		meanOffline = fs.Float64("mean-offline", 0, "churn: mean offline duration (0: default 0.25)")

		lifetime   = fs.String("lifetime", "", "heavytail/diurnal/tracechurn: session distribution: exp | pareto[:alpha] | weibull[:shape] | lognormal[:sigma] | trace:<file>")
		downtime   = fs.String("downtime", "", "heavytail/diurnal/tracechurn: offline distribution (same spellings as -lifetime)")
		diurnalPer = fs.Float64("diurnal-period", 0, "diurnal: day length (0: half the duration)")
		diurnalAmp = fs.Float64("diurnal-amplitude", 0, "diurnal: session-mean modulation amplitude in [0,1) (0: default 0.6)")

		zipfS      = fs.Float64("zipf", 0, "zipf: target skew s (0: scenario default)")
		hot        = fs.Float64("hot", 0, "flashcrowd: fraction of crowd lookups on the hot key (0: default 0.8)")
		crowdStart = fs.Float64("crowd-start", 0, "flashcrowd: crowd onset (0: 30% of duration)")
		crowdDur   = fs.Float64("crowd-duration", 0, "flashcrowd: crowd length (0: 20% of duration)")
		crowdMul   = fs.Float64("crowd-factor", 0, "flashcrowd: rate multiplier (0: default 10)")

		transport = fs.String("transport", "constant", "transport: constant[:lat] | empirical[:median] | lossy[:rate[:inner]]")
		faultPlan = fs.String("fault", "", `fault plan wrapped around the transport, e.g. "partition:2@2-4,dup:0.1" (see rcm/fault; clauses: `+strings.Join(faultClauseNames(), "|")+`)`)
		replicas  = fs.Int("replicas", 0, "replicate each key across k successive owners with failover reads (0 or 1: no replication)")
		maintain  = fs.Bool("maintain", false, "enable join/stabilize maintenance")
		stabilize = fs.Float64("stabilize-every", 0, "per-node stabilization period (0: default 1)")
		shards    = fs.Int("shards", 0, "event wheels to shard the population across (0: default 4)")
		scheduler = fs.String("scheduler", "", "event queue: wheel (timing wheels, default) | heap (reference)")
		seed      = fs.Uint64("seed", 1, "deterministic seed")
		kn        = fs.Int("kn", 1, "symphony near neighbors")
		ks        = fs.Int("ks", 1, "symphony shortcuts")
		modeFlag  = fs.String("mode", "event+analytic", `measurements, "+"-joined: event|event+analytic|event+analytic+sim`)
		format    = fs.String("format", "ascii", "output format: ascii|csv")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with: go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the run to this file")

		traceEvery = fs.Int("trace", 0, "print the full hop trace of every Nth lookup after the table (0 disables; ascii format only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "ascii" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	mode, err := exp.ParseMode(*modeFlag)
	if err != nil {
		return err
	}
	if mode&exp.ModeEvent == 0 {
		return fmt.Errorf("-mode %q does not include event (this is the event simulator)", *modeFlag)
	}
	if *kn < 1 {
		return fmt.Errorf("-kn %d must be >= 1", *kn)
	}
	if *ks < 1 {
		return fmt.Errorf("-ks %d must be >= 1", *ks)
	}

	// Profiles bracket the whole measurement (overlay construction,
	// scenario programming and the event loop), so a perf investigation
	// starts from the same command it will optimize. The heap-profile
	// defer is registered before CPU profiling starts: defers run LIFO,
	// so the CPU profile stops *before* the forced GC and heap encoding —
	// neither pollutes cpu.prof's tail.
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			// Collect garbage first so the profile shows live engine state,
			// not transient epoch litter.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "eventsim: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	spec, err := exp.SpecFor(*protocol, exp.Config{SymphonyNear: *kn, SymphonyShortcuts: *ks})
	if err != nil {
		return err
	}
	tspec := *transport
	if *faultPlan != "" {
		// -fault composes with -transport: the plan wraps whatever inner
		// transport was picked, in the same spec grammar the engine parses.
		tspec = "fault:" + *faultPlan + "/" + tspec
	}
	setting := exp.EventSetting{
		Scenario: *scenario,
		Params: exp.EventParams{
			Rate:             *rate,
			ZipfS:            *zipfS,
			FailFraction:     *failFrac,
			FailTime:         *failTime,
			Regions:          *regions,
			MeanOnline:       *meanOnline,
			MeanOffline:      *meanOffline,
			CrowdStart:       *crowdStart,
			CrowdDuration:    *crowdDur,
			CrowdFactor:      *crowdMul,
			Hot:              *hot,
			Lifetime:         *lifetime,
			Downtime:         *downtime,
			DiurnalPeriod:    *diurnalPer,
			DiurnalAmplitude: *diurnalAmp,
			Replicas:         *replicas,
		},
		Transport:      tspec,
		Duration:       *duration,
		Buckets:        *buckets,
		Maintain:       *maintain,
		StabilizeEvery: *stabilize,
		Shards:         *shards,
		Scheduler:      *scheduler,
	}
	plan := exp.Plan{
		Name:   "eventsim",
		Specs:  []exp.Spec{spec},
		Bits:   []int{*bits},
		Events: []exp.EventSetting{setting},
	}

	if *traceEvery < 0 {
		return fmt.Errorf("-trace %d must be >= 0", *traceEvery)
	}
	if *traceEvery > 0 && *format != "ascii" {
		return fmt.Errorf("-trace mixes trace text into the output; use -format ascii")
	}

	if *format == "csv" {
		return exp.StreamCSV(out, exp.Stream(context.Background(), plan,
			exp.WithModes(mode), exp.WithSeed(*seed), exp.WithSimWorkers(1)))
	}

	rows, err := exp.Run(context.Background(), plan,
		exp.WithModes(mode), exp.WithSeed(*seed), exp.WithSimWorkers(1))
	if err != nil {
		return err
	}
	if err := renderASCII(out, setting, mode, rows); err != nil {
		return err
	}
	if *traceEvery > 0 {
		return renderTraces(out, setting, *protocol,
			exp.Config{Bits: *bits, SymphonyNear: *kn, SymphonyShortcuts: *ks}, *seed, *traceEvery)
	}
	return nil
}

// renderTraces re-runs the identical configuration with trace sampling
// enabled and prints each sampled lookup's event-by-event route. A
// second run is fine for a debug flag: the engine is deterministic, so
// the traced run is the run the table came from.
func renderTraces(out io.Writer, setting exp.EventSetting, protocol string, overlay exp.Config, seed uint64, every int) error {
	cfg, err := setting.SimConfig(protocol, overlay, seed)
	if err != nil {
		return err
	}
	cfg.Trace = every
	res, err := eventsim.Run(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "hop traces (every %d%s lookup, %d sampled):\n",
		every, ordinal(every), len(res.Traces)); err != nil {
		return err
	}
	return eventsim.WriteTraces(out, res)
}

// ordinal returns the English ordinal suffix for n.
func ordinal(n int) string {
	switch {
	case n%100 >= 11 && n%100 <= 13:
		return "th"
	case n%10 == 1:
		return "st"
	case n%10 == 2:
		return "nd"
	case n%10 == 3:
		return "rd"
	}
	return "th"
}

// renderASCII prints the bucket series as a table, plus a summary of the
// static-model comparison when analytic/sim columns were computed.
func renderASCII(out io.Writer, setting exp.EventSetting, mode exp.Mode, rows []exp.Row) error {
	if len(rows) == 0 {
		return fmt.Errorf("no rows produced")
	}
	first := rows[0]
	cols := []string{"t", "started", "success %", "mean hops", "hops p99", "latency", "lat p99", "msgs/node/s", "maint/node/s", "online %"}
	replicated := setting.Params.Replicas > 1
	if replicated {
		cols = append(cols, "repair/node/s")
	}
	title := fmt.Sprintf("%s · %s scenario, N=2^%d, transport %s, q_eff=%.3g",
		first.Protocol, first.Scenario, first.Bits, displayTransport(setting.Transport), first.Q)
	if replicated {
		title += fmt.Sprintf(", k=%d", setting.Params.Replicas)
	}
	t := table.New(title, cols...)
	for _, r := range rows {
		cells := []string{
			table.F(r.Time, 1),
			fmt.Sprintf("%d", r.EventStarted),
			table.Pct(r.EventSuccess, 2),
			table.F(r.EventMeanHops, 2),
			table.F(r.EventHopsP99, 0),
			table.F(r.EventMeanLatency, 3),
			table.F(r.EventLatencyP99, 3),
			table.F(r.EventMsgsNodeS, 3),
			table.F(r.EventMaintNodeS, 3),
			table.Pct(r.EventOnline, 1),
		}
		if replicated {
			cells = append(cells, table.F(r.EventRepairNodeS, 3))
		}
		t.AddRow(cells...)
	}
	if _, err := fmt.Fprintln(out, t.ASCII()); err != nil {
		return err
	}
	if mode&(exp.ModeAnalytic|exp.ModeSim) != 0 {
		s := table.New(fmt.Sprintf("static model at q_eff=%.3g", first.Q), "source", "routability %")
		if mode&exp.ModeAnalytic != 0 {
			s.AddRow("analytic (RCM)", table.Pct(first.AnalyticRoutability, 2))
		}
		if mode&exp.ModeSim != 0 {
			s.AddRow("static simulation", table.Pct(first.SimRoutability, 2))
		}
		last := rows[len(rows)-1]
		s.AddRow("event steady state", table.Pct(last.EventSuccess, 2))
		if _, err := fmt.Fprintln(out, s.ASCII()); err != nil {
			return err
		}
	}
	return nil
}

// displayTransport echoes the transport spelling, defaulting the empty
// string for display.
func displayTransport(s string) string {
	if s == "" {
		return "constant"
	}
	return s
}
