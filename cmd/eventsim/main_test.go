package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

var quick = []string{"-bits", "8", "-duration", "3", "-buckets", "3", "-rate", "400"}

func TestMassfailASCII(t *testing.T) {
	out := runCapture(t, append([]string{"-protocol", "chord", "-scenario", "massfail", "-fail", "0.3", "-mode", "event+analytic+sim"}, quick...)...)
	for _, want := range []string{
		"chord · massfail scenario, N=2^8",
		"q_eff=0.3",
		"success %",
		"static model at q_eff=0.3",
		"analytic (RCM)",
		"static simulation",
		"event steady state",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestChurnWithMaintenance(t *testing.T) {
	out := runCapture(t, append([]string{"-protocol", "kademlia", "-scenario", "churn", "-maintain", "-mode", "event"}, quick...)...)
	if !strings.Contains(out, "kademlia · churn scenario") {
		t.Errorf("missing title:\n%s", out)
	}
	// The maintenance column must show nonzero traffic somewhere.
	if !strings.Contains(out, "maint/node/s") {
		t.Errorf("missing maintenance column:\n%s", out)
	}
}

func TestCSVFormat(t *testing.T) {
	out := runCapture(t, append([]string{"-scenario", "zipf", "-zipf", "1.1", "-format", "csv", "-mode", "event"}, quick...)...)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 buckets
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "plan,kind,") || !strings.Contains(lines[0], "scenario") {
		t.Errorf("bad CSV header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",event,") || !strings.Contains(lines[1], "zipf") {
		t.Errorf("bad CSV row: %s", lines[1])
	}
}

func TestDeterministicOutput(t *testing.T) {
	args := append([]string{"-scenario", "flashcrowd", "-seed", "9", "-mode", "event"}, quick...)
	if a, b := runCapture(t, args...), runCapture(t, args...); a != b {
		t.Errorf("two identical invocations differ:\n%s\nvs\n%s", a, b)
	}
}

func TestLossyEmpiricalTransport(t *testing.T) {
	out := runCapture(t, append([]string{"-transport", "lossy:0.05:empirical:0.08", "-mode", "event"}, quick...)...)
	if !strings.Contains(out, "transport lossy:0.05:empirical:0.08") {
		t.Errorf("missing transport in title:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown scenario":    {"-scenario", "nope"},
		"unknown protocol":    {"-protocol", "nope"},
		"unknown transport":   {"-transport", "warp"},
		"unknown format":      {"-format", "pdf"},
		"mode without event":  {"-mode", "analytic+sim"},
		"unparseable mode":    {"-mode", "warp"},
		"zero kn":             {"-kn", "0"},
		"fail out of range":   {"-fail", "1.5"},
		"unknown lifetime":    {"-scenario", "heavytail", "-lifetime", "cauchy"},
		"infinite-mean alpha": {"-scenario", "heavytail", "-lifetime", "pareto:0.9"},
		"trace without file":  {"-scenario", "tracechurn"},
		"amplitude too big":   {"-scenario", "diurnal", "-diurnal-amplitude", "1.5"},
		"unknown scheduler":   {"-scheduler", "fifo"},
		"negative trace":      {"-trace", "-1"},
		"trace into csv":      {"-trace", "5", "-format", "csv"},
		"negative replicas":   {"-replicas", "-1"},
		"replicas over cap":   {"-replicas", "99"},
	} {
		var sb strings.Builder
		if err := run(append(args, quick...), &sb); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReplicatedSingleHop: -protocol singlehop resolves through the
// registry grammar and -replicas k adds the repair column plus the k
// annotation to the table title.
func TestReplicatedSingleHop(t *testing.T) {
	out := runCapture(t, append([]string{
		"-protocol", "singlehop", "-scenario", "massfail", "-fail", "0.3",
		"-replicas", "3", "-mode", "event"}, quick...)...)
	for _, want := range []string{
		"singlehop · massfail scenario",
		"k=3",
		"repair/node/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestProfileFlags: -cpuprofile/-memprofile write non-empty pprof files
// alongside a normal run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	out := runCapture(t, append([]string{
		"-scenario", "massfail", "-mode", "event",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, quick...)...)
	if !strings.Contains(out, "massfail scenario") {
		t.Errorf("profiled run lost its output:\n%s", out)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// The heap profile must be a well-formed gzipped proto, not a
	// truncated write: main runs runtime.GC() first so the profile
	// reflects post-run live objects, then WriteHeapProfile emits one
	// complete gzip stream.
	raw, err := os.ReadFile(mem)
	if err != nil {
		t.Fatalf("read heap profile: %v", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("heap profile is not gzip: %v", err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("heap profile gzip stream truncated: %v", err)
	}
	if len(body) == 0 {
		t.Error("heap profile decompressed to nothing")
	}
	// An unwritable profile path must error instead of silently profiling
	// nowhere.
	var sb strings.Builder
	if err := run(append([]string{"-cpuprofile", filepath.Join(dir, "no", "such", "dir.prof")}, quick...), &sb); err == nil {
		t.Error("unwritable -cpuprofile accepted")
	}
}

// TestTraceFlag: -trace N appends sampled per-lookup hop traces after
// the ascii table, and two invocations agree byte for byte.
func TestTraceFlag(t *testing.T) {
	args := append([]string{"-scenario", "massfail", "-fail", "0.3", "-seed", "5",
		"-mode", "event", "-trace", "50"}, quick...)
	out := runCapture(t, args...)
	for _, want := range []string{
		"hops p99", "lat p99", // percentile columns in the table
		"hop traces (every 50th lookup,",
		"lookup 0 src=", // the first sampled lookup's header line
		"start",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if again := runCapture(t, args...); again != out {
		t.Errorf("traced run is not deterministic:\n%s\nvs\n%s", out, again)
	}
}

// TestHeavytailScenario drives the lifetime-model path end to end through
// the CLI: a Pareto session distribution at churn's q_eff, with the
// static-model comparison columns alongside.
func TestHeavytailScenario(t *testing.T) {
	out := runCapture(t, append([]string{
		"-protocol", "chord", "-scenario", "heavytail",
		"-lifetime", "pareto:1.5", "-mean-online", "2", "-mean-offline", "0.5",
		"-mode", "event+analytic",
	}, quick...)...)
	for _, want := range []string{"chord · heavytail scenario", "q_eff=0.2", "static model at q_eff=0.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestDiurnalScenario checks the diurnal flags reach the engine.
func TestDiurnalScenario(t *testing.T) {
	out := runCapture(t, append([]string{
		"-scenario", "diurnal", "-diurnal-period", "1.5", "-diurnal-amplitude", "0.8",
		"-mode", "event",
	}, quick...)...)
	if !strings.Contains(out, "diurnal scenario") {
		t.Errorf("missing title:\n%s", out)
	}
}

// TestSchedulerFlagBitIdentical: the -scheduler flag selects the queue
// implementation without changing a byte of output.
func TestSchedulerFlagBitIdentical(t *testing.T) {
	base := append([]string{"-scenario", "churn", "-maintain", "-seed", "7", "-mode", "event"}, quick...)
	wheel := runCapture(t, append(base, "-scheduler", "wheel")...)
	heap := runCapture(t, append(base, "-scheduler", "heap")...)
	if wheel != heap {
		t.Errorf("scheduler changed output:\nwheel:\n%s\nheap:\n%s", wheel, heap)
	}
}

// TestFaultFlag: -fault composes a fault plan over the -transport spec
// (visible in the title), stays deterministic, and rejects bad plans.
func TestFaultFlag(t *testing.T) {
	args := append([]string{"-protocol", "chord", "-fault", "partition:2@1-2", "-seed", "4", "-mode", "event"}, quick...)
	out := runCapture(t, args...)
	if !strings.Contains(out, "transport fault:partition:2@1-2/constant") {
		t.Errorf("title missing composed fault transport:\n%s", out)
	}
	if again := runCapture(t, args...); again != out {
		t.Errorf("faulted run not deterministic:\n%s\nvs\n%s", out, again)
	}
	if err := run(append([]string{"-fault", "bogus:1"}, quick...), &strings.Builder{}); err == nil {
		t.Error("bogus fault plan accepted")
	}
}
