// Command rcmcalc evaluates the RCM analytic model: routability, failed-path
// percentage, expected reachable-component size and scalability verdicts for
// any of the paper's five geometries at arbitrary system size and failure
// probability. Sweeps are declarative experiment plans executed by the
// parallel runner in rcm/exp.
//
// Examples:
//
//	rcmcalc -geometry xor -bits 20 -q 0.1
//	rcmcalc -geometry all -bits 16 -q 0.3
//	rcmcalc -geometry tree -bits 16 -sweep-q
//	rcmcalc -geometry symphony -kn 2 -ks 3 -q 0.1 -sweep-n
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/exp"
	"rcm/internal/core"
	"rcm/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcmcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcmcalc", flag.ContinueOnError)
	var (
		geometry = fs.String("geometry", "all", "geometry: tree|hypercube|xor|ring|symphony|all")
		bits     = fs.Int("bits", 16, "identifier length d (N = 2^d)")
		q        = fs.Float64("q", 0.1, "node failure probability")
		kn       = fs.Int("kn", 1, "symphony near neighbors")
		ks       = fs.Int("ks", 1, "symphony shortcuts")
		base     = fs.Int("base", 2, "identifier radix for the tree geometry (§3 footnote)")
		sweepQ   = fs.Bool("sweep-q", false, "sweep q over 0..0.9 instead of a single point")
		sweepN   = fs.Bool("sweep-n", false, "sweep system size at fixed q instead of a single point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base != 2 {
		if *geometry != "tree" {
			return fmt.Errorf("-base applies only to -geometry tree")
		}
		return renderTreeBase(out, *base, *bits, *q)
	}

	specs, err := selectSpecs(*geometry, *kn, *ks)
	if err != nil {
		return err
	}
	switch {
	case *sweepQ:
		return renderSweepQ(out, specs, *bits)
	case *sweepN:
		return renderSweepN(out, specs, *q)
	default:
		return renderPoint(out, specs, *bits, *q)
	}
}

func selectSpecs(name string, kn, ks int) ([]exp.Spec, error) {
	// The flags default to 1, so zero or negative values are explicit user
	// errors — the registry factory would otherwise read 0 as "default".
	// (A kn=0 analytic model is still expressible via rcm.Symphony.)
	if kn < 1 {
		return nil, fmt.Errorf("-kn %d must be >= 1", kn)
	}
	if ks < 1 {
		return nil, fmt.Errorf("-ks %d must be >= 1", ks)
	}
	cfg := exp.Config{SymphonyNear: kn, SymphonyShortcuts: ks}
	if name == "all" {
		specs := exp.AllSpecs()
		if kn != 1 || ks != 1 {
			sym, err := exp.SpecFor("symphony", cfg)
			if err != nil {
				return nil, err
			}
			specs[len(specs)-1] = sym
		}
		return specs, nil
	}
	s, err := exp.SpecFor(name, cfg)
	if err != nil {
		return nil, err
	}
	return []exp.Spec{s}, nil
}

// analyticRows executes an analytic-only plan over specs × bits × qs and
// returns its rows in plan order (spec-major, then bits, then q).
func analyticRows(name string, specs []exp.Spec, bits []int, qs []float64) ([]exp.Row, error) {
	plan := exp.Plan{
		Name:  name,
		Specs: specs,
		Bits:  bits,
		Qs:    qs,
	}
	return exp.Run(context.Background(), plan, exp.WithModes(exp.ModeAnalytic))
}

// renderTreeBase evaluates the base-b tree (E15): N = base^bits nodes.
func renderTreeBase(out io.Writer, base, digits int, q float64) error {
	g, err := core.NewGeneralizedTree(base)
	if err != nil {
		return err
	}
	r, err := core.RoutabilityBaseB(g, base, digits, q)
	if err != nil {
		return err
	}
	t := table.New(fmt.Sprintf("RCM base-%d tree at N=%d^%d, q=%.3f", base, base, digits, q),
		"geometry", "routability %", "failed paths %", "verdict")
	t.AddRow(g.Name(), table.Pct(r, 3), table.F(100*(1-r), 3), core.Unscalable.String())
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}

func renderPoint(out io.Writer, specs []exp.Spec, bits int, q float64) error {
	rows, err := analyticRows("rcmcalc-point", specs, []int{bits}, []float64{q})
	if err != nil {
		return err
	}
	t := table.New(fmt.Sprintf("RCM at N=2^%d, q=%.3f", bits, q),
		"geometry", "system", "routability %", "failed paths %", "E[S]", "verdict")
	for i, row := range rows {
		v, _ := core.TheoreticalVerdict(specs[i].Geometry)
		t.AddRow(row.Geometry, row.System,
			table.Pct(row.AnalyticRoutability, 3),
			table.F(row.AnalyticFailedPct, 3),
			table.E(row.AnalyticReach, 4),
			v.String())
	}
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}

func renderSweepQ(out io.Writer, specs []exp.Spec, bits int) error {
	qs := exp.PaperQGrid()
	rows, err := analyticRows("rcmcalc-sweep-q", specs, []int{bits}, qs)
	if err != nil {
		return err
	}
	cols := []string{"q %"}
	for _, s := range specs {
		cols = append(cols, s.Geometry.Name()+" r%")
	}
	t := table.New(fmt.Sprintf("routability %% vs q at N=2^%d", bits), cols...)
	for qi, q := range qs {
		row := []string{table.Pct(q, 0)}
		for gi := range specs {
			row = append(row, table.Pct(rows[gi*len(qs)+qi].AnalyticRoutability, 2))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}

func renderSweepN(out io.Writer, specs []exp.Spec, q float64) error {
	ds := []int{8, 12, 16, 20, 24, 28, 32, 40, 50, 64, 80, 100}
	rows, err := analyticRows("rcmcalc-sweep-n", specs, ds, []float64{q})
	if err != nil {
		return err
	}
	cols := []string{"log2 N"}
	for _, s := range specs {
		cols = append(cols, s.Geometry.Name()+" r%")
	}
	t := table.New(fmt.Sprintf("routability %% vs system size at q=%.3f", q), cols...)
	for di, d := range ds {
		row := []string{table.I(d)}
		for gi := range specs {
			row = append(row, table.Pct(rows[gi*len(ds)+di].AnalyticRoutability, 2))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}
