// Command rcmcalc evaluates the RCM analytic model: routability, failed-path
// percentage, expected reachable-component size and scalability verdicts for
// any of the paper's five geometries at arbitrary system size and failure
// probability.
//
// Examples:
//
//	rcmcalc -geometry xor -bits 20 -q 0.1
//	rcmcalc -geometry all -bits 16 -q 0.3
//	rcmcalc -geometry tree -bits 16 -sweep-q
//	rcmcalc -geometry symphony -kn 2 -ks 3 -q 0.1 -sweep-n
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/internal/core"
	"rcm/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcmcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcmcalc", flag.ContinueOnError)
	var (
		geometry = fs.String("geometry", "all", "geometry: tree|hypercube|xor|ring|symphony|all")
		bits     = fs.Int("bits", 16, "identifier length d (N = 2^d)")
		q        = fs.Float64("q", 0.1, "node failure probability")
		kn       = fs.Int("kn", 1, "symphony near neighbors")
		ks       = fs.Int("ks", 1, "symphony shortcuts")
		base     = fs.Int("base", 2, "identifier radix for the tree geometry (§3 footnote)")
		sweepQ   = fs.Bool("sweep-q", false, "sweep q over 0..0.9 instead of a single point")
		sweepN   = fs.Bool("sweep-n", false, "sweep system size at fixed q instead of a single point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base != 2 {
		if *geometry != "tree" {
			return fmt.Errorf("-base applies only to -geometry tree")
		}
		return renderTreeBase(out, *base, *bits, *q)
	}

	geoms, err := selectGeometries(*geometry, *kn, *ks)
	if err != nil {
		return err
	}
	switch {
	case *sweepQ:
		return renderSweepQ(out, geoms, *bits)
	case *sweepN:
		return renderSweepN(out, geoms, *q)
	default:
		return renderPoint(out, geoms, *bits, *q)
	}
}

func selectGeometries(name string, kn, ks int) ([]core.Geometry, error) {
	if name == "all" {
		gs := core.AllGeometries()
		if kn != 1 || ks != 1 {
			sym, err := core.NewSymphony(kn, ks)
			if err != nil {
				return nil, err
			}
			gs[len(gs)-1] = sym
		}
		return gs, nil
	}
	switch name {
	case "tree":
		return []core.Geometry{core.Tree{}}, nil
	case "hypercube":
		return []core.Geometry{core.Hypercube{}}, nil
	case "xor":
		return []core.Geometry{core.XOR{}}, nil
	case "ring":
		return []core.Geometry{core.Ring{}}, nil
	case "symphony":
		sym, err := core.NewSymphony(kn, ks)
		if err != nil {
			return nil, err
		}
		return []core.Geometry{sym}, nil
	default:
		return nil, fmt.Errorf("unknown geometry %q", name)
	}
}

// renderTreeBase evaluates the base-b tree (E15): N = base^bits nodes.
func renderTreeBase(out io.Writer, base, digits int, q float64) error {
	g, err := core.NewGeneralizedTree(base)
	if err != nil {
		return err
	}
	r, err := core.RoutabilityBaseB(g, base, digits, q)
	if err != nil {
		return err
	}
	t := table.New(fmt.Sprintf("RCM base-%d tree at N=%d^%d, q=%.3f", base, base, digits, q),
		"geometry", "routability %", "failed paths %", "verdict")
	t.AddRow(g.Name(), table.Pct(r, 3), table.F(100*(1-r), 3), core.Unscalable.String())
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}

func renderPoint(out io.Writer, geoms []core.Geometry, bits int, q float64) error {
	t := table.New(fmt.Sprintf("RCM at N=2^%d, q=%.3f", bits, q),
		"geometry", "system", "routability %", "failed paths %", "E[S]", "verdict")
	for _, g := range geoms {
		r, err := core.Routability(g, bits, q)
		if err != nil {
			return err
		}
		es, err := core.ExpectedReach(g, bits, q)
		if err != nil {
			return err
		}
		v, _ := core.TheoreticalVerdict(g)
		t.AddRow(g.Name(), g.System(), table.Pct(r, 3), table.F(100*(1-r), 3), table.E(es, 4), v.String())
	}
	_, err := fmt.Fprintln(out, t.ASCII())
	return err
}

func renderSweepQ(out io.Writer, geoms []core.Geometry, bits int) error {
	cols := []string{"q %"}
	for _, g := range geoms {
		cols = append(cols, g.Name()+" r%")
	}
	t := table.New(fmt.Sprintf("routability %% vs q at N=2^%d", bits), cols...)
	for q := 0.0; q <= 0.901; q += 0.05 {
		row := []string{table.Pct(q, 0)}
		for _, g := range geoms {
			r, err := core.Routability(g, bits, q)
			if err != nil {
				return err
			}
			row = append(row, table.Pct(r, 2))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprintln(out, t.ASCII())
	return err
}

func renderSweepN(out io.Writer, geoms []core.Geometry, q float64) error {
	cols := []string{"log2 N"}
	for _, g := range geoms {
		cols = append(cols, g.Name()+" r%")
	}
	t := table.New(fmt.Sprintf("routability %% vs system size at q=%.3f", q), cols...)
	for _, d := range []int{8, 12, 16, 20, 24, 28, 32, 40, 50, 64, 80, 100} {
		row := []string{table.I(d)}
		for _, g := range geoms {
			r, err := core.Routability(g, d, q)
			if err != nil {
				return err
			}
			row = append(row, table.Pct(r, 2))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprintln(out, t.ASCII())
	return err
}
