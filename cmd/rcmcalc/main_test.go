package main

import (
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestPointAllGeometries(t *testing.T) {
	out := runCapture(t, "-geometry", "all", "-bits", "16", "-q", "0.3")
	for _, want := range []string{"tree", "hypercube", "xor", "ring", "symphony", "scalable", "unscalable"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "N=2^16") {
		t.Errorf("output missing size header:\n%s", out)
	}
}

func TestPointSingleGeometry(t *testing.T) {
	out := runCapture(t, "-geometry", "xor", "-bits", "20", "-q", "0.1")
	if !strings.Contains(out, "Kademlia") {
		t.Errorf("missing system name:\n%s", out)
	}
	if strings.Contains(out, "Plaxton") {
		t.Errorf("unexpected geometry in single-geometry output:\n%s", out)
	}
}

func TestSweepQ(t *testing.T) {
	out := runCapture(t, "-geometry", "tree", "-bits", "12", "-sweep-q")
	lines := strings.Count(out, "\n")
	if lines < 20 { // title + header + sep + 19 rows
		t.Errorf("sweep produced %d lines:\n%s", lines, out)
	}
	if !strings.Contains(out, "90") {
		t.Errorf("sweep missing q=90%% row:\n%s", out)
	}
}

func TestSweepN(t *testing.T) {
	out := runCapture(t, "-geometry", "symphony", "-q", "0.1", "-sweep-n")
	if !strings.Contains(out, "100") { // d=100 row
		t.Errorf("sweep-n missing d=100 row:\n%s", out)
	}
}

func TestSymphonyParams(t *testing.T) {
	out1 := runCapture(t, "-geometry", "symphony", "-bits", "16", "-q", "0.1", "-kn", "1", "-ks", "1")
	out3 := runCapture(t, "-geometry", "symphony", "-bits", "16", "-q", "0.1", "-kn", "1", "-ks", "3")
	if out1 == out3 {
		t.Error("ks parameter had no effect on output")
	}
}

func TestUnknownGeometryError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-geometry", "pastry"}, &sb); err == nil {
		t.Error("unknown geometry accepted")
	}
}

func TestBadSymphonyParamsError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-geometry", "symphony", "-ks", "0"}, &sb); err == nil {
		t.Error("ks=0 accepted")
	}
}

func TestBadFlagError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-no-such-flag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestTreeBaseFlag(t *testing.T) {
	out := runCapture(t, "-geometry", "tree", "-base", "16", "-bits", "4", "-q", "0.1")
	if !strings.Contains(out, "tree-b16") {
		t.Errorf("missing base-16 geometry name:\n%s", out)
	}
	if !strings.Contains(out, "N=16^4") {
		t.Errorf("missing radix header:\n%s", out)
	}
}

func TestTreeBaseFlagRejectsOtherGeometries(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-geometry", "ring", "-base", "16"}, &sb); err == nil {
		t.Error("-base accepted for non-tree geometry")
	}
}

func TestTreeBaseFlagRejectsBadRadix(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-geometry", "tree", "-base", "1"}, &sb); err == nil {
		t.Error("base 1 accepted")
	}
}
