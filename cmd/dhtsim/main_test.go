package main

import (
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestSinglePoint(t *testing.T) {
	out := runCapture(t, "-protocol", "chord", "-bits", "10", "-q", "0.3",
		"-pairs", "2000", "-trials", "2")
	if !strings.Contains(out, "chord static resilience") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "N=2^10") {
		t.Errorf("missing size:\n%s", out)
	}
	// Exactly one data row (title, header, separator, row).
	if rows := strings.Count(strings.TrimSpace(out), "\n"); rows != 3 {
		t.Errorf("expected 4 lines, got %d:\n%s", rows+1, out)
	}
}

func TestCompareColumnPresent(t *testing.T) {
	out := runCapture(t, "-protocol", "kademlia", "-bits", "10", "-q", "0.2",
		"-pairs", "2000", "-trials", "2", "-compare")
	if !strings.Contains(out, "analytic r%") {
		t.Errorf("missing analytic column:\n%s", out)
	}
}

func TestSweepRowCount(t *testing.T) {
	out := runCapture(t, "-protocol", "can", "-bits", "10", "-sweep",
		"-pairs", "1000", "-trials", "1")
	// 19 q points plus 3 header lines.
	if rows := strings.Count(strings.TrimSpace(out), "\n") + 1; rows != 22 {
		t.Errorf("sweep line count = %d, want 22:\n%s", rows, out)
	}
}

func TestSymphonyFlags(t *testing.T) {
	out := runCapture(t, "-protocol", "symphony", "-bits", "10", "-q", "0.1",
		"-pairs", "2000", "-trials", "2", "-ks", "3", "-compare")
	if !strings.Contains(out, "symphony") {
		t.Errorf("missing protocol name:\n%s", out)
	}
}

func TestUnknownProtocolError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-protocol", "pastry"}, &sb); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestBadBitsError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-protocol", "chord", "-bits", "0"}, &sb); err == nil {
		t.Error("bits=0 accepted")
	}
}

func TestMatchingGeometryCoversAll(t *testing.T) {
	for _, name := range []string{"plaxton", "can", "kademlia", "chord", "symphony"} {
		out := runCapture(t, "-protocol", name, "-bits", "8", "-q", "0.1",
			"-pairs", "500", "-trials", "1", "-compare")
		if !strings.Contains(out, "analytic") {
			t.Errorf("%s: compare output missing analytic column:\n%s", name, out)
		}
	}
}

// TestModeFlag: -mode is parsed by exp.ParseMode, so "analytic+sim" is
// equivalent to -compare and bad spellings are rejected.
func TestModeFlag(t *testing.T) {
	withMode := runCapture(t, "-protocol", "chord", "-bits", "8", "-q", "0.1",
		"-pairs", "500", "-trials", "1", "-mode", "analytic+sim")
	if !strings.Contains(withMode, "analytic") {
		t.Errorf("-mode analytic+sim output missing analytic column:\n%s", withMode)
	}
	withCompare := runCapture(t, "-protocol", "chord", "-bits", "8", "-q", "0.1",
		"-pairs", "500", "-trials", "1", "-compare")
	if withMode != withCompare {
		t.Errorf("-mode analytic+sim differs from -compare:\n%s\nvs\n%s", withMode, withCompare)
	}
	var sb strings.Builder
	if err := run([]string{"-mode", "warp"}, &sb); err == nil {
		t.Error("bad -mode accepted")
	}
}

// TestModeFlagRejectsOtherEngines: dhtsim has no churn/event settings, so
// those modes must be rejected at the flag with a pointer to the right CLI.
func TestModeFlagRejectsOtherEngines(t *testing.T) {
	for _, mode := range []string{"churn", "event", "sim+churn", "analytic"} {
		var sb strings.Builder
		if err := run([]string{"-mode", mode}, &sb); err == nil {
			t.Errorf("-mode %s accepted", mode)
		}
	}
}
