// Command dhtsim runs the static-resilience experiment on a concrete DHT
// overlay: build routing tables for 2^bits nodes, fail nodes independently
// with probability q, route sampled pairs greedily with static tables and
// no back-tracking, and report the surviving routability. With -compare the
// matching RCM analytic prediction is printed alongside. The sweep is a
// declarative experiment plan executed by the parallel runner in
// rcm/exp.
//
// Examples:
//
//	dhtsim -protocol chord -bits 16 -q 0.3
//	dhtsim -protocol kademlia -bits 14 -sweep -compare
//	dhtsim -protocol symphony -bits 12 -ks 3 -q 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/exp"
	"rcm/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "chord", "protocol: plaxton|can|kademlia|chord|symphony")
		bits     = fs.Int("bits", 14, "identifier length d (N = 2^d)")
		q        = fs.Float64("q", 0.3, "node failure probability")
		pairs    = fs.Int("pairs", 20000, "sampled pairs per trial")
		trials   = fs.Int("trials", 3, "independent failure patterns")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		kn       = fs.Int("kn", 1, "symphony near neighbors")
		ks       = fs.Int("ks", 1, "symphony shortcuts")
		sweep    = fs.Bool("sweep", false, "sweep q over 0..0.9 instead of a single point")
		compare  = fs.Bool("compare", false, "print the analytic RCM prediction alongside (shorthand for -mode sim+analytic)")
		modeFlag = fs.String("mode", "sim", `measurements to run, "+"-joined: sim|analytic+sim`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The flags default to 1; explicit zero or negative values would be
	// silently replaced by the registry factory's defaults, so reject them.
	if *kn < 1 {
		return fmt.Errorf("-kn %d must be >= 1", *kn)
	}
	if *ks < 1 {
		return fmt.Errorf("-ks %d must be >= 1", *ks)
	}
	spec, err := exp.SpecFor(*protocol, exp.Config{SymphonyNear: *kn, SymphonyShortcuts: *ks})
	if err != nil {
		return err
	}
	qs := []float64{*q}
	if *sweep {
		qs = exp.PaperQGrid()
	}
	mode, err := exp.ParseMode(*modeFlag)
	if err != nil {
		return err
	}
	if *compare {
		mode |= exp.ModeAnalytic
	}
	// dhtsim builds no churn or event settings and its table is shaped
	// around the static measurement; point users at the dedicated CLIs.
	if mode&^(exp.ModeAnalytic|exp.ModeSim) != 0 {
		return fmt.Errorf("-mode %q: dhtsim runs sim and analytic measurements only (use churnsim or eventsim for the others)", *modeFlag)
	}
	if mode&exp.ModeSim == 0 {
		return fmt.Errorf("-mode %q must include sim (use rcmcalc for analytic-only evaluation)", *modeFlag)
	}
	compareCols := mode&exp.ModeAnalytic != 0
	rows, err := exp.Run(context.Background(), exp.Plan{
		Name:  "dhtsim",
		Specs: []exp.Spec{spec},
		Bits:  []int{*bits},
		Qs:    qs,
	},
		exp.WithModes(mode),
		exp.WithPairs(*pairs), exp.WithTrials(*trials),
		exp.WithSeed(*seed),
	)
	if err != nil {
		return err
	}

	cols := []string{"q %", "routability %", "failed %", "stderr %", "mean hops", "alive %"}
	if compareCols {
		cols = append(cols, "analytic r%", "analytic failed %")
	}
	t := table.New(fmt.Sprintf("%s static resilience, N=2^%d, %d pairs × %d trials",
		spec.Protocol, *bits, *pairs, *trials), cols...)
	for _, r := range rows {
		row := []string{
			table.Pct(r.Q, 0),
			table.Pct(r.SimRoutability, 2),
			table.F(r.SimFailedPct, 2),
			table.F(100*r.SimStdErr, 2),
			table.F(r.SimMeanHops, 2),
			table.Pct(r.SimAlive, 1),
		}
		if compareCols {
			row = append(row, table.Pct(r.AnalyticRoutability, 2), table.F(r.AnalyticFailedPct, 2))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}
