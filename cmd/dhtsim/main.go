// Command dhtsim runs the static-resilience experiment on a concrete DHT
// overlay: build routing tables for 2^bits nodes, fail nodes independently
// with probability q, route sampled pairs greedily with static tables and
// no back-tracking, and report the surviving routability. With -compare the
// matching RCM analytic prediction is printed alongside.
//
// Examples:
//
//	dhtsim -protocol chord -bits 16 -q 0.3
//	dhtsim -protocol kademlia -bits 14 -sweep -compare
//	dhtsim -protocol symphony -bits 12 -ks 3 -q 0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "chord", "protocol: plaxton|can|kademlia|chord|symphony")
		bits     = fs.Int("bits", 14, "identifier length d (N = 2^d)")
		q        = fs.Float64("q", 0.3, "node failure probability")
		pairs    = fs.Int("pairs", 20000, "sampled pairs per trial")
		trials   = fs.Int("trials", 3, "independent failure patterns")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		kn       = fs.Int("kn", 1, "symphony near neighbors")
		ks       = fs.Int("ks", 1, "symphony shortcuts")
		sweep    = fs.Bool("sweep", false, "sweep q over 0..0.9 instead of a single point")
		compare  = fs.Bool("compare", false, "print the analytic RCM prediction alongside")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := dht.New(*protocol, dht.Config{
		Bits:              *bits,
		Seed:              *seed,
		SymphonyNear:      *kn,
		SymphonyShortcuts: *ks,
	})
	if err != nil {
		return err
	}
	geom, err := matchingGeometry(p, *kn, *ks)
	if err != nil {
		return err
	}

	qs := []float64{*q}
	if *sweep {
		qs = qs[:0]
		for v := 0.0; v <= 0.901; v += 0.05 {
			qs = append(qs, v)
		}
	}
	opt := sim.Options{Pairs: *pairs, Trials: *trials, Seed: *seed}
	results, err := sim.Sweep(p, qs, opt)
	if err != nil {
		return err
	}

	cols := []string{"q %", "routability %", "failed %", "stderr %", "mean hops", "alive %"}
	if *compare {
		cols = append(cols, "analytic r%", "analytic failed %")
	}
	t := table.New(fmt.Sprintf("%s static resilience, N=2^%d, %d pairs × %d trials",
		p.Name(), *bits, *pairs, *trials), cols...)
	for _, r := range results {
		row := []string{
			table.Pct(r.Q, 0),
			table.Pct(r.Routability, 2),
			table.F(r.FailedPathPct, 2),
			table.F(100*r.StdErr, 2),
			table.F(r.MeanHops, 2),
			table.Pct(r.AliveFraction, 1),
		}
		if *compare {
			a, err := core.Routability(geom, *bits, r.Q)
			if err != nil {
				return err
			}
			row = append(row, table.Pct(a, 2), table.F(100*(1-a), 2))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprintln(out, t.ASCII())
	return err
}

// matchingGeometry returns the analytic model for a protocol's geometry.
func matchingGeometry(p dht.Protocol, kn, ks int) (core.Geometry, error) {
	switch p.GeometryName() {
	case "tree":
		return core.Tree{}, nil
	case "hypercube":
		return core.Hypercube{}, nil
	case "xor":
		return core.XOR{}, nil
	case "ring":
		return core.Ring{}, nil
	case "symphony":
		return core.NewSymphony(kn, ks)
	default:
		return nil, fmt.Errorf("no analytic model for geometry %q", p.GeometryName())
	}
}
