package main

import (
	"strings"
	"testing"

	"rcm/exp"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestChurnEndToEnd(t *testing.T) {
	out := runCapture(t,
		"-protocol", "kademlia",
		"-bits", "9",
		"-duration", "4",
		"-pairs", "1000",
	)
	if !strings.Contains(out, "churn time series") {
		t.Errorf("missing series title:\n%s", out)
	}
	if !strings.Contains(out, "steady state vs the static model") {
		t.Errorf("missing summary table:\n%s", out)
	}
	if !strings.Contains(out, "q_eff=0.200") {
		t.Errorf("missing q_eff in title:\n%s", out)
	}
}

func TestChurnAllProtocols(t *testing.T) {
	for _, name := range []string{"plaxton", "can", "chord", "symphony"} {
		out := runCapture(t,
			"-protocol", name,
			"-bits", "8",
			"-duration", "2",
			"-pairs", "400",
		)
		if !strings.Contains(out, name+" churn") {
			t.Errorf("%s: missing protocol in title:\n%s", name, out)
		}
	}
}

func TestChurnUnknownProtocol(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-protocol", "pastry"}, &sb); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestProtocolAliases(t *testing.T) {
	for _, name := range []string{"plaxton", "tree", "can", "hypercube", "kademlia", "xor", "chord", "ring", "symphony"} {
		if _, err := exp.SpecFor(name, exp.Config{}); err != nil {
			t.Errorf("SpecFor(%q): %v", name, err)
		}
	}
	if _, err := exp.SpecFor("pastry", exp.Config{}); err == nil {
		t.Error("SpecFor accepted unknown protocol")
	}
}
