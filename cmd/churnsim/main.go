// Command churnsim runs the churn extension (experiment E11): an
// event-driven population where nodes alternate online/offline with
// exponential sessions. It prints the lookup-success time series, the
// steady-state summary, and the static-model predictions at the equivalent
// failure probability q_eff, with and without table repair. Both churn
// variants and the static comparison are one experiment plan executed by
// the parallel runner in rcm/exp.
//
// Example:
//
//	churnsim -protocol kademlia -bits 12 -mean-online 1 -mean-offline 0.25
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/exp"
	"rcm/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("churnsim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "kademlia", "protocol: plaxton|can|kademlia|chord|symphony")
		bits        = fs.Int("bits", 12, "identifier length d (N = 2^d)")
		meanOnline  = fs.Float64("mean-online", 1.0, "mean online session duration")
		meanOffline = fs.Float64("mean-offline", 0.25, "mean offline duration")
		duration    = fs.Float64("duration", 10, "total simulated time")
		every       = fs.Float64("measure-every", 0.5, "measurement interval")
		pairs       = fs.Int("pairs", 4000, "lookups per measurement")
		seed        = fs.Uint64("seed", 1, "deterministic seed")
		burnIn      = fs.Float64("burn-in", 1, "discard measurements before this time")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := exp.SpecFor(*protocol, exp.Config{})
	if err != nil {
		return err
	}
	scenario := exp.ChurnSetting{
		MeanOnline:      *meanOnline,
		MeanOffline:     *meanOffline,
		Duration:        *duration,
		MeasureEvery:    *every,
		PairsPerMeasure: *pairs,
		BurnIn:          *burnIn,
	}
	repaired := scenario
	repaired.Repair = true
	rows, err := exp.Run(context.Background(), exp.Plan{
		Name:  "churnsim",
		Specs: []exp.Spec{spec},
		Bits:  []int{*bits},
		Churn: []exp.ChurnSetting{scenario, repaired},
	},
		exp.WithModes(exp.ModeAnalytic, exp.ModeSim, exp.ModeChurn),
		exp.WithPairs(4**pairs), exp.WithTrials(3),
		exp.WithSeed(*seed),
	)
	if err != nil {
		return err
	}
	noRepair, withRepair := rows[0], rows[1]

	series := table.New(fmt.Sprintf("%s churn time series, N=2^%d, q_eff=%.3f", spec.Protocol, *bits, noRepair.Q),
		"time", "offline %", "success % (static tables)", "success % (repair)")
	for i := range noRepair.Series {
		series.AddRow(
			table.F(noRepair.Series[i].Time, 2),
			table.Pct(noRepair.Series[i].OfflineFraction, 1),
			table.Pct(noRepair.Series[i].LookupSuccess, 2),
			table.Pct(withRepair.Series[i].LookupSuccess, 2),
		)
	}
	fmt.Fprintln(stdout, series.ASCII())

	summary := table.New("steady state vs the static model",
		"churn success %", "churn+repair success %", "static sim %", "static analytic %", "offline %")
	summary.AddRow(
		table.Pct(noRepair.ChurnSuccess, 2),
		table.Pct(withRepair.ChurnSuccess, 2),
		table.Pct(noRepair.SimRoutability, 2),
		table.Pct(noRepair.AnalyticRoutability, 2),
		table.Pct(noRepair.ChurnOffline, 2),
	)
	fmt.Fprintln(stdout, summary.ASCII())
	return nil
}
