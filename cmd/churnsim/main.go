// Command churnsim runs the churn extension (experiment E11): an
// event-driven population where nodes alternate online/offline with
// exponential sessions. It prints the lookup-success time series, the
// steady-state summary, and the static-model predictions at the equivalent
// failure probability q_eff, with and without table repair.
//
// Example:
//
//	churnsim -protocol kademlia -bits 12 -mean-online 1 -mean-offline 0.25
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("churnsim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "kademlia", "protocol: plaxton|can|kademlia|chord|symphony")
		bits        = fs.Int("bits", 12, "identifier length d (N = 2^d)")
		meanOnline  = fs.Float64("mean-online", 1.0, "mean online session duration")
		meanOffline = fs.Float64("mean-offline", 0.25, "mean offline duration")
		duration    = fs.Float64("duration", 10, "total simulated time")
		every       = fs.Float64("measure-every", 0.5, "measurement interval")
		pairs       = fs.Int("pairs", 4000, "lookups per measurement")
		seed        = fs.Uint64("seed", 1, "deterministic seed")
		burnIn      = fs.Float64("burn-in", 1, "discard measurements before this time")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := sim.ChurnOptions{
		MeanOnline:      *meanOnline,
		MeanOffline:     *meanOffline,
		Duration:        *duration,
		MeasureEvery:    *every,
		PairsPerMeasure: *pairs,
		Seed:            *seed,
	}
	qEff := base.QEff()

	runOne := func(repair bool) ([]sim.ChurnPoint, error) {
		p, err := dht.New(*protocol, dht.Config{Bits: *bits, Seed: *seed})
		if err != nil {
			return nil, err
		}
		opt := base
		if repair {
			opt.RepairOnRejoin = true
			opt.RepairEvery = *every
		}
		return sim.SimulateChurn(p, opt)
	}

	noRepair, err := runOne(false)
	if err != nil {
		return err
	}
	withRepair, err := runOne(true)
	if err != nil {
		return err
	}

	series := table.New(fmt.Sprintf("%s churn time series, N=2^%d, q_eff=%.3f", *protocol, *bits, qEff),
		"time", "offline %", "success % (static tables)", "success % (repair)")
	for i := range noRepair {
		series.AddRow(
			table.F(noRepair[i].Time, 2),
			table.Pct(noRepair[i].OfflineFraction, 1),
			table.Pct(noRepair[i].LookupSuccess, 2),
			table.Pct(withRepair[i].LookupSuccess, 2),
		)
	}
	fmt.Fprintln(stdout, series.ASCII())

	sNo, off := sim.SteadyState(noRepair, *burnIn)
	sRep, _ := sim.SteadyState(withRepair, *burnIn)
	p, err := dht.New(*protocol, dht.Config{Bits: *bits, Seed: *seed})
	if err != nil {
		return err
	}
	static, err := sim.MeasureStaticResilience(p, qEff, sim.Options{Pairs: 4 * *pairs, Trials: 3, Seed: *seed + 1})
	if err != nil {
		return err
	}
	geom, err := geometryFor(*protocol)
	if err != nil {
		return err
	}
	analytic, err := core.Routability(geom, *bits, qEff)
	if err != nil {
		return err
	}
	summary := table.New("steady state vs the static model",
		"churn success %", "churn+repair success %", "static sim %", "static analytic %", "offline %")
	summary.AddRow(
		table.Pct(sNo, 2),
		table.Pct(sRep, 2),
		table.Pct(static.Routability, 2),
		table.Pct(analytic, 2),
		table.Pct(off, 2),
	)
	fmt.Fprintln(stdout, summary.ASCII())
	return nil
}

func geometryFor(protocol string) (core.Geometry, error) {
	switch protocol {
	case "plaxton", "tree":
		return core.Tree{}, nil
	case "can", "hypercube":
		return core.Hypercube{}, nil
	case "kademlia", "xor":
		return core.XOR{}, nil
	case "chord", "ring":
		return core.Ring{}, nil
	case "symphony":
		return core.DefaultSymphony(), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
