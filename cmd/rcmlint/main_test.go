package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for the duration of the test. run()
// resolves packages relative to the working directory, so these tests
// are necessarily serial.
func chdir(t *testing.T, dir string) {
	t.Helper()
	prev, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(prev); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule materializes a throwaway module: files maps
// module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"boundary", "detsource", "loopowner", "registrydiscipline"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestRunCleanModule drives the binary end to end over a synthetic
// module with nothing to report.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module rcm\n\ngo 1.23\n",
		"eventsim/clean.go": `package eventsim

// Tick is deterministic arithmetic; nothing here draws entropy.
func Tick(now, step int64) int64 { return now + step }
`,
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("clean module exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean module printed findings:\n%s", stdout.String())
	}
}

// TestRunDirtyModule seeds a wall-clock read in a determinism-critical
// package and expects exit 1 with a detsource finding on stdout.
func TestRunDirtyModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module rcm\n\ngo 1.23\n",
		"eventsim/dirty.go": `package eventsim

import "time"

// Stamp leaks wall-clock time into the engine.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("dirty module exited %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "detsource") || !strings.Contains(stdout.String(), "time.Now") {
		t.Errorf("expected a detsource time.Now finding, got:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("expected summary on stderr, got: %s", stderr.String())
	}
}

// TestRunLoadFailure: an unloadable pattern is a usage error, not a
// finding.
func TestRunLoadFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module rcm\n\ngo 1.23\n",
	})
	chdir(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unloadable pattern exited %d, want 2\nstderr: %s", code, stderr.String())
	}
}
