// Command rcmlint statically enforces the framework's cross-cutting
// invariants — the ones the runtime suites can only probe:
//
//	detsource          no wall clocks, global math/rand, env reads or
//	                   order-sensitive map iteration in
//	                   determinism-critical packages
//	loopowner          rcm:loop-owned node state is touched only by the
//	                   event-loop goroutine
//	registrydiscipline Register* calls complete during package init
//	boundary           imports respect the module's layer contract
//
// Usage:
//
//	rcmlint [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 findings reported, 2 usage or load failure.
// Suppress a single finding with a justified marker on (or directly
// above) the offending line:
//
//	//lint:allow <analyzer> <reason>
//
// See rcm/internal/lint for the invariant behind each analyzer and its
// link to the bit-identity contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rcm/internal/lint"
)

// analyzers is the rcmlint suite, defined next to the engine so the
// repo-conformance test holds the module to exactly what this binary
// runs.
var analyzers = lint.All

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams/args so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rcmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rcmlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "rcmlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(wd, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "rcmlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "rcmlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "rcmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
