package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sample = `[
  {"name": "BenchmarkEventSimScheduler/wheel-8", "ns_per_op": 200, "allocs_per_op": 10, "events_per_s": 3000000, "allocs_per_event": null},
  {"name": "BenchmarkEventSimScheduler/heap-8", "ns_per_op": 240, "allocs_per_op": 10, "events_per_s": 2500000, "allocs_per_event": null}
]`

func TestGatePasses(t *testing.T) {
	file := writeArtifact(t, sample)
	var sb strings.Builder
	err := run([]string{
		"-file", file,
		"-base", "BenchmarkEventSimScheduler/heap",
		"-new", "BenchmarkEventSimScheduler/wheel",
		"-metric", "events_per_s", "-tolerance", "0.1",
	}, &sb)
	if err != nil {
		t.Fatalf("gate failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "goodness ratio = 1.200") {
		t.Errorf("missing ratio line:\n%s", sb.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	file := writeArtifact(t, sample)
	var sb strings.Builder
	// Reverse roles: "wheel as base, heap as new" is a 17% shortfall.
	err := run([]string{
		"-file", file,
		"-base", "BenchmarkEventSimScheduler/wheel",
		"-new", "BenchmarkEventSimScheduler/heap",
		"-tolerance", "0.1",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "below the gate") {
		t.Fatalf("err = %v, want regression failure", err)
	}
}

// TestMinRatioGate: -min-ratio turns the gate into a required-speedup
// check — the shard-scaling gate's mode. wheel/heap is a 1.2 ratio, so a
// 1.1 bar passes and a 1.3 bar fails.
func TestMinRatioGate(t *testing.T) {
	file := writeArtifact(t, sample)
	base := []string{
		"-file", file,
		"-base", "BenchmarkEventSimScheduler/heap",
		"-new", "BenchmarkEventSimScheduler/wheel",
		"-metric", "events_per_s",
	}
	var sb strings.Builder
	if err := run(append(base, "-min-ratio", "1.1"), &sb); err != nil {
		t.Fatalf("1.2 ratio failed a 1.1 bar: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "required: >= 1.100") {
		t.Errorf("missing required-ratio line:\n%s", sb.String())
	}
	if err := run(append(base, "-min-ratio", "1.3"), &sb); err == nil || !strings.Contains(err.Error(), "ratio 1.200 < required 1.300") {
		t.Fatalf("1.2 ratio passed a 1.3 bar: %v", err)
	}
	// -min-ratio overrides -tolerance: a permissive tolerance must not
	// weaken an explicit bar.
	if err := run(append(base, "-tolerance", "0.99", "-min-ratio", "1.3"), &sb); err == nil {
		t.Fatal("min-ratio was weakened by tolerance")
	}
}

// TestCostMetricDirection: for lower-is-better metrics the gate must
// fail slowdowns and pass speedups — the inverse of the throughput rule.
func TestCostMetricDirection(t *testing.T) {
	file := writeArtifact(t, sample)
	var sb strings.Builder
	// wheel ns_per_op 200 vs heap 240: taking heap as base, wheel is
	// faster (goodness 1.2) — must pass.
	if err := run([]string{
		"-file", file,
		"-base", "BenchmarkEventSimScheduler/heap", "-new", "BenchmarkEventSimScheduler/wheel",
		"-metric", "ns_per_op", "-tolerance", "0.1",
	}, &sb); err != nil {
		t.Fatalf("faster candidate failed the cost gate: %v", err)
	}
	// Reversed, wheel as base: heap is 20% slower — must fail.
	if err := run([]string{
		"-file", file,
		"-base", "BenchmarkEventSimScheduler/wheel", "-new", "BenchmarkEventSimScheduler/heap",
		"-metric", "ns_per_op", "-tolerance", "0.1",
	}, &sb); err == nil || !strings.Contains(err.Error(), "below the gate") {
		t.Fatalf("slower candidate passed the cost gate: %v", err)
	}
}

func TestBaselineDiffInformational(t *testing.T) {
	file := writeArtifact(t, sample)
	baseline := writeArtifact(t, `[
  {"name": "BenchmarkEventSimScheduler/wheel-8", "ns_per_op": 100, "allocs_per_op": 10, "events_per_s": 6000000, "allocs_per_event": null},
  {"name": "BenchmarkGone-8", "ns_per_op": 1, "allocs_per_op": 0, "events_per_s": null, "allocs_per_event": null}
]`)
	var sb strings.Builder
	// A 2× baseline shortfall must NOT fail the command — cross-machine
	// numbers are informational.
	if err := run([]string{"-file", file, "-baseline", baseline}, &sb); err != nil {
		t.Fatalf("informational diff failed: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"vs committed baseline", "-50.0%", "only in baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	file := writeArtifact(t, sample)
	for name, args := range map[string][]string{
		"no file":          {},
		"missing file":     {"-file", "/no/such.json"},
		"base without new": {"-file", file, "-base", "x"},
		"unknown base":     {"-file", file, "-base", "Nope", "-new", "BenchmarkEventSimScheduler/wheel"},
		"unknown new":      {"-file", file, "-base", "BenchmarkEventSimScheduler/heap", "-new", "Nope"},
		"missing metric": {"-file", file, "-base", "BenchmarkEventSimScheduler/heap",
			"-new", "BenchmarkEventSimScheduler/wheel", "-metric", "allocs_per_event"},
		"bad json": {"-file", writeArtifact(t, "{not json]")},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFindIsNotOrderDependent: a benchmark whose name extends another's
// prefix must never shadow it, whatever the artifact order.
func TestFindIsNotOrderDependent(t *testing.T) {
	file := writeArtifact(t, `[
  {"name": "BenchmarkEventSimShards/1-8", "ns_per_op": 1, "allocs_per_op": 0, "events_per_s": 111, "allocs_per_event": null},
  {"name": "BenchmarkEventSim-8", "ns_per_op": 2, "allocs_per_op": 0, "events_per_s": 222, "allocs_per_event": null}
]`)
	var sb strings.Builder
	err := run([]string{
		"-file", file,
		"-base", "BenchmarkEventSim", "-new", "BenchmarkEventSimShards/1",
		"-tolerance", "0.99",
	}, &sb)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "base BenchmarkEventSim-8") || !strings.Contains(out, "222") {
		t.Errorf("bare prefix resolved to the wrong benchmark:\n%s", out)
	}
}
