// Command benchcmp compares benchmark metrics from the BENCH_*.json
// artifacts scripts/bench.sh emits, and gates CI on them.
//
// Two comparisons in one invocation:
//
//   - Same-run gate (-base/-new): two benchmarks from the *same* artifact
//     — e.g. BenchmarkEventSimScheduler/heap vs .../wheel — are compared
//     on -metric, and the command exits non-zero when the new value falls
//     more than -tolerance below the base, or below an explicit required
//     ratio given with -min-ratio (which may exceed 1: the shard-scaling
//     gate demands Shards/4 beat Shards/1 by a configured factor on
//     parallel hardware). Because both numbers come from one process on
//     one machine, the gate is immune to host-speed variation; this is
//     how CI asserts the timing-wheel scheduler is no slower than the
//     binary-heap reference and that shards buy throughput.
//
//   - Baseline diff (-baseline): every benchmark shared with a committed
//     baseline artifact is tabulated with its relative change —
//     benchstat-style visibility, informational only, since the baseline
//     was recorded on a different machine.
//
// Example (the CI invocation):
//
//	benchcmp -file BENCH_eventsim.json \
//	  -base BenchmarkEventSimScheduler/heap -new BenchmarkEventSimScheduler/wheel \
//	  -metric events_per_s -tolerance 0.10 \
//	  -baseline bench/BENCH_eventsim.baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

// entry mirrors the object shape scripts/bench.sh extracts from `go test
// -bench` output. Metrics a benchmark does not report are null.
type entry struct {
	Name          string   `json:"name"`
	NsPerOp       *float64 `json:"ns_per_op"`
	AllocsPerOp   *float64 `json:"allocs_per_op"`
	EventsPerS    *float64 `json:"events_per_s"`
	AllocsPerEvnt *float64 `json:"allocs_per_event"`
}

func (e entry) metric(name string) (float64, bool) {
	var v *float64
	switch name {
	case "ns_per_op":
		v = e.NsPerOp
	case "allocs_per_op":
		v = e.AllocsPerOp
	case "events_per_s":
		v = e.EventsPerS
	case "allocs_per_event":
		v = e.AllocsPerEvnt
	}
	if v == nil {
		return 0, false
	}
	return *v, true
}

func load(path string) ([]entry, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []entry
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// find returns the entry named prefix, tolerating go test's -GOMAXPROCS
// suffix: the name must either match exactly or continue with '-'.
// A bare prefix match would be order-dependent — "BenchmarkEventSim"
// must not resolve to BenchmarkEventSimShards/1.
func find(entries []entry, prefix string) (entry, bool) {
	for _, e := range entries {
		if rest, ok := strings.CutPrefix(e.Name, prefix); ok && (rest == "" || rest[0] == '-') {
			return e, true
		}
	}
	return entry{}, false
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		file      = fs.String("file", "", "benchmark artifact to read (required)")
		base      = fs.String("base", "", "same-run gate: baseline benchmark name prefix")
		newName   = fs.String("new", "", "same-run gate: candidate benchmark name prefix")
		metric    = fs.String("metric", "events_per_s", "metric to compare: ns_per_op|allocs_per_op|events_per_s|allocs_per_event")
		tolerance = fs.Float64("tolerance", 0.05, "allowed relative shortfall of new vs base before failing")
		minRatio  = fs.Float64("min-ratio", 0, "required goodness ratio of new vs base (overrides -tolerance when > 0); values above 1 demand a speedup, e.g. 1.3 gates a 1.3x scaling win")
		baseline  = fs.String("baseline", "", "optional committed baseline artifact for an informational diff")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("-file is required")
	}
	if (*base == "") != (*newName == "") {
		return fmt.Errorf("-base and -new must be given together")
	}
	entries, err := load(*file)
	if err != nil {
		return err
	}

	if *baseline != "" {
		baseEntries, err := load(*baseline)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "## %s vs committed baseline %s (informational; different machines differ)\n", *file, *baseline)
		shared := 0
		for _, b := range baseEntries {
			cur, ok := find(entries, b.Name)
			if !ok {
				fmt.Fprintf(out, "  %-50s only in baseline\n", b.Name)
				continue
			}
			shared++
			for _, m := range []string{"ns_per_op", "events_per_s", "allocs_per_event"} {
				bv, bok := b.metric(m)
				cv, cok := cur.metric(m)
				if !bok || !cok || bv == 0 {
					continue
				}
				fmt.Fprintf(out, "  %-50s %-16s %14.4g -> %14.4g  (%+.1f%%)\n",
					b.Name, m, bv, cv, 100*(cv-bv)/bv)
			}
		}
		if shared == 0 {
			fmt.Fprintln(out, "  (no shared benchmarks)")
		}
	}

	if *base != "" {
		b, ok := find(entries, *base)
		if !ok {
			return fmt.Errorf("no benchmark matching %q in %s", *base, *file)
		}
		n, ok := find(entries, *newName)
		if !ok {
			return fmt.Errorf("no benchmark matching %q in %s", *newName, *file)
		}
		bv, ok := b.metric(*metric)
		if !ok {
			return fmt.Errorf("%s reports no %s", b.Name, *metric)
		}
		nv, ok := n.metric(*metric)
		if !ok {
			return fmt.Errorf("%s reports no %s", n.Name, *metric)
		}
		if bv <= 0 {
			return fmt.Errorf("%s %s = %v is not positive", b.Name, *metric, bv)
		}
		// events_per_s is a throughput (higher is better); the other
		// metrics are costs (lower is better). Normalize so "goodness"
		// always reads as ratio >= 1.
		ratio := nv / bv
		if *metric != "events_per_s" {
			if nv <= 0 {
				return fmt.Errorf("%s %s = %v is not positive", n.Name, *metric, nv)
			}
			ratio = bv / nv
		}
		// The pass bar: a plain regression tolerance by default, or an
		// explicit required ratio — which may exceed 1, turning the gate
		// from "no slower than" into "at least this much faster than"
		// (the shard-scaling gate).
		need := 1 - *tolerance
		if *minRatio > 0 {
			need = *minRatio
		}
		fmt.Fprintf(out, "## same-run gate: %s on %s\n", *metric, *file)
		fmt.Fprintf(out, "  base %-48s %14.4g\n", b.Name, bv)
		fmt.Fprintf(out, "  new  %-48s %14.4g\n", n.Name, nv)
		fmt.Fprintf(out, "  goodness ratio = %.3f (required: >= %.3f)\n", ratio, need)
		if ratio < need {
			return fmt.Errorf("%s %s below the gate: %.4g vs base %.4g (ratio %.3f < required %.3f)",
				n.Name, *metric, nv, bv, ratio, need)
		}
	}
	return nil
}
