package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcm/internal/figures"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestFig7aASCII(t *testing.T) {
	out := runCapture(t, "-fig", "7a")
	if !strings.Contains(out, "Fig. 7(a)") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "tree failed %") {
		t.Errorf("missing tree column:\n%s", out)
	}
}

func TestFig7bCSV(t *testing.T) {
	out := runCapture(t, "-fig", "7b", "-format", "csv")
	if !strings.Contains(out, "# Fig. 7(b)") {
		t.Errorf("missing CSV comment title:\n%s", out)
	}
	if !strings.Contains(out, "N,log2 N") {
		t.Errorf("missing CSV header:\n%s", out)
	}
}

func TestScalabilityReducedSize(t *testing.T) {
	out := runCapture(t, "-fig", "scalability", "-bits", "10", "-pairs", "500", "-trials", "1")
	if !strings.Contains(out, "unscalable") {
		t.Errorf("missing verdicts:\n%s", out)
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	out := runCapture(t, "-fig", "3", "-out", dir)
	if !strings.Contains(out, "wrote") {
		t.Errorf("no write confirmations:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // fig3 emits two tables
		t.Fatalf("wrote %d files, want 2", len(entries))
	}
	body, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Error("empty figure file")
	}
}

func TestOutDirCSV(t *testing.T) {
	dir := t.TempDir()
	runCapture(t, "-fig", "7a", "-out", dir, "-format", "csv")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".csv") {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
}

func TestUnknownFigureError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "99z"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestUnknownFormatError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "7a", "-format", "pdf"}, &sb); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestSlug(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Fig. 7(a) — failed paths", "fig-7-a-failed-paths"},
		{"ALL CAPS 123", "all-caps-123"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := slug(tt.in); got != tt.want {
			t.Errorf("slug(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	long := slug(strings.Repeat("abc ", 40))
	if len(long) > 48 {
		t.Errorf("slug not truncated: %d chars", len(long))
	}
}

func TestDotChainExport(t *testing.T) {
	dir := t.TempDir()
	out := runCapture(t, "-fig", "7a", "-dot", dir)
	if !strings.Contains(out, "fig5b_xor.dot") {
		t.Errorf("missing dot confirmation:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("wrote %d dot files, want 5", len(entries))
	}
	body, err := os.ReadFile(filepath.Join(dir, "fig4a_tree.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "digraph chain") {
		t.Errorf("not a dot file:\n%s", body)
	}
}

// TestAllFiguresSmoke renders every registered figure to a temp dir at
// reduced size, twice, and checks each produced non-empty, byte-identical
// output — the determinism contract the figure generators advertise
// ("pure given options and seed"), enforced figure by figure.
func TestAllFiguresSmoke(t *testing.T) {
	render := func(fig string) map[string][]byte {
		t.Helper()
		dir := t.TempDir()
		runCapture(t, "-fig", fig, "-bits", "8", "-pairs", "200", "-trials", "1", "-out", dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, e := range entries {
			body, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = body
		}
		return out
	}
	for _, fig := range figures.Names() {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			first := render(fig)
			if len(first) == 0 {
				t.Fatalf("%s produced no files", fig)
			}
			for name, body := range first {
				if len(body) == 0 {
					t.Errorf("%s: empty figure file %s", fig, name)
				}
			}
			second := render(fig)
			if len(second) != len(first) {
				t.Fatalf("%s: %d files on rerun, want %d", fig, len(second), len(first))
			}
			for name, body := range first {
				if !bytes.Equal(second[name], body) {
					t.Errorf("%s: %s not deterministic across reruns", fig, name)
				}
			}
		})
	}
}
