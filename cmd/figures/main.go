// Command figures regenerates the paper's tables and figures (and the
// extension experiments) as ASCII tables or CSV files. See DESIGN.md for
// the experiment index mapping figure names to paper artifacts. The
// grid-shaped experiments construct declarative plans executed by the
// parallel runner in rcm/exp.
//
// Examples:
//
//	figures -fig 6a                  # Fig. 6(a) at the paper's N=2^16
//	figures -fig 7b -format csv      # Fig. 7(b) as CSV on stdout
//	figures -fig churngrid           # E16: geometry × churn-repair grid
//	figures -fig all -bits 12        # everything, at reduced size
//	figures -fig all -out results/   # write one file per table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rcm/internal/figures"
	"rcm/internal/markov"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "all", "figure to regenerate: "+strings.Join(figures.Names(), "|")+"|all")
		format = fs.String("format", "ascii", "output format: ascii|csv")
		bits   = fs.Int("bits", 0, "override identifier length for simulation figures (default: paper's 16)")
		pairs  = fs.Int("pairs", 0, "override sampled pairs per point")
		trials = fs.Int("trials", 0, "override trials per point")
		seed   = fs.Uint64("seed", 0, "override seed")
		outDir = fs.String("out", "", "write one file per table into this directory instead of stdout")
		dotDir = fs.String("dot", "", "also write the Fig. 4/5/8 chain diagrams as Graphviz .dot files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "ascii" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *dotDir != "" {
		if err := writeChainDots(*dotDir, stdout); err != nil {
			return err
		}
	}

	opt := figures.Options{Bits: *bits, Pairs: *pairs, Trials: *trials, Seed: *seed}
	tables, err := figures.Generate(*fig, opt)
	if err != nil {
		return err
	}
	if *outDir == "" {
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintf(stdout, "# %s\n%s\n", t.Title(), t.CSV())
			} else {
				fmt.Fprintln(stdout, t.ASCII())
			}
		}
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		ext := ".txt"
		body := t.ASCII()
		if *format == "csv" {
			ext = ".csv"
			body = t.CSV()
		}
		name := fmt.Sprintf("%s_%02d_%s%s", *fig, i, slug(t.Title()), ext)
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
	}
	return nil
}

// writeChainDots renders the five routing chains of Fig. 4(a,b), 5(b),
// 8(a,b) at a representative operating point (h=4, q=0.3) as Graphviz dot
// files.
func writeChainDots(dir string, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	const h, q = 4, 0.3
	chains := []struct {
		file  string
		title string
		build func() (*markov.Chain, markov.Endpoints, error)
	}{
		{"fig4a_tree.dot", "Fig. 4(a) tree chain, h=4 q=0.3",
			func() (*markov.Chain, markov.Endpoints, error) { return markov.TreeChain(h, q) }},
		{"fig4b_hypercube.dot", "Fig. 4(b) hypercube chain, h=4 q=0.3",
			func() (*markov.Chain, markov.Endpoints, error) { return markov.HypercubeChain(h, q) }},
		{"fig5b_xor.dot", "Fig. 5(b) XOR chain, h=4 q=0.3",
			func() (*markov.Chain, markov.Endpoints, error) { return markov.XORChain(h, q) }},
		{"fig8a_ring.dot", "Fig. 8(a) ring chain, h=4 q=0.3",
			func() (*markov.Chain, markov.Endpoints, error) { return markov.RingChain(h, q) }},
		{"fig8b_symphony.dot", "Fig. 8(b) symphony chain, h=4 d=16 q=0.3",
			func() (*markov.Chain, markov.Endpoints, error) { return markov.SymphonyChain(h, 16, q, 1, 1) }},
	}
	for _, spec := range chains {
		c, _, err := spec.build()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, spec.file)
		if err := os.WriteFile(path, []byte(c.DOT(spec.title)), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
	}
	return nil
}

// slug turns a table title into a safe file-name fragment.
func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}
