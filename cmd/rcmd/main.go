// Command rcmd launches and drives live rcm DHT nodes — the deployable
// face of the framework's Layer 5. It has three modes:
//
// Daemon: run one node of an overlay over real UDP sockets. Every
// daemon of a deployment shares the -protocol/-bits/-seed triple (they
// determine the routing tables) and a peers file mapping identifiers to
// addresses:
//
//	rcmd -protocol chord -bits 4 -id 5 -listen 127.0.0.1:4005 \
//	  -peers peers.txt -store lru:4096
//
// where peers.txt holds one "id addr" pair per line (# comments):
//
//	0 127.0.0.1:4000
//	1 127.0.0.1:4001
//	...
//
// Client: issue one operation against a running deployment through any
// daemon's address:
//
//	rcmd -protocol chord -bits 4 -connect 127.0.0.1:4005 -op put -key color -value green
//	rcmd -protocol chord -bits 4 -connect 127.0.0.1:4000 -op get -key color
//	rcmd -protocol chord -bits 4 -connect 127.0.0.1:4000 -op lookup -key 9
//
// Cluster: boot an in-process cluster of N nodes (N a power of two) and
// drive it interactively from stdin — the quickest way to watch
// candidate failover happen:
//
//	rcmd -cluster 64 -protocol kademlia
//	> put color green
//	> kill 12
//	> get color
//	> restart 12
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rcm"
	"rcm/node"
	"rcm/node/cluster"
	"rcm/obs"
	"rcm/overlay"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcmd:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("rcmd", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "chord", "overlay protocol: "+strings.Join(rcm.Protocols(), "|"))
		bits     = fs.Int("bits", 4, "identifier length d (N = 2^d)")
		seed     = fs.Uint64("seed", 1, "overlay construction seed (identical across a deployment)")
		storeSpc = fs.String("store", "mem", "store spec: "+strings.Join(node.StoreNames(), "|")+" (e.g. lru:4096)")

		id     = fs.Int("id", -1, "daemon: this node's identifier")
		listen = fs.String("listen", "", "daemon: UDP address to listen on")
		peers  = fs.String("peers", "", "daemon: peers file mapping id to addr, one \"id addr\" per line")

		connect = fs.String("connect", "", "client: address of any daemon")
		op      = fs.String("op", "", "client: operation get|put|lookup")
		key     = fs.String("key", "", "client: key (or identifier, for lookup)")
		value   = fs.String("value", "", "client: value for put")
		timeout = fs.Duration("timeout", 0, "client: bound the whole operation — an unreachable or dead deployment fails within this instead of the -deadline default (0: use -deadline)")

		clusterN  = fs.Int("cluster", 0, "interactive: boot an in-process cluster of N nodes (power of two)")
		faultSpec = fs.String("fault", "", `cluster: fault plan every node's transport runs, e.g. "partition:2@10-20,dup:0.1" (see rcm/fault; windows in seconds since boot)`)

		replicas = fs.Int("replicas", 0, "daemon/cluster: replicate each key across k owners with failover reads (0 or 1: single-owner; every node of a deployment must agree)")

		rto         = fs.Duration("rto", 50*time.Millisecond, "per-hop acknowledgement timeout")
		retransmits = fs.Int("retransmits", 2, "re-sends per candidate before failover (-1 disables)")
		deadline    = fs.Duration("deadline", 5*time.Second, "per-request time to live")

		metricsAddr = fs.String("metrics-addr", "", "daemon/cluster: serve metrics JSON, text and pprof on this HTTP address (e.g. 127.0.0.1:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *clusterN > 0:
		return runCluster(*clusterN, *protocol, *seed, *storeSpc, *replicas, *rto, *retransmits, *deadline, *faultSpec, *metricsAddr, in, out)
	case *op != "":
		if *timeout > 0 {
			// -timeout caps the whole operation: the request deadline
			// shrinks to it, so the client's response guard (deadline plus
			// one ack exchange) concludes promptly even against a target
			// that never answers.
			*deadline = *timeout
		}
		return runClient(*connect, *protocol, *bits, *op, *key, *value, *rto, *retransmits, *deadline, out)
	case *listen != "":
		return runDaemon(*protocol, *bits, *seed, *id, *listen, *peers, *storeSpc, *replicas, *rto, *retransmits, *deadline, *metricsAddr, out)
	default:
		return fmt.Errorf("pick a mode: -listen (daemon), -op (client) or -cluster N (interactive); see -h")
	}
}

// ---- Daemon mode -------------------------------------------------------

// loadPeers parses a peers file into an id-indexed address slice.
func loadPeers(path string, n int) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	addrs := make([]string, n)
	for lineno, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"id addr\", got %q", path, lineno+1, line)
		}
		pid, err := strconv.Atoi(fields[0])
		if err != nil || pid < 0 || pid >= n {
			return nil, fmt.Errorf("%s:%d: id %q outside [0, %d)", path, lineno+1, fields[0], n)
		}
		addrs[pid] = fields[1]
	}
	return addrs, nil
}

func runDaemon(protocol string, bits int, seed uint64, id int, listen, peersPath, storeSpec string, replicas int, rto time.Duration, retransmits int, deadline time.Duration, metricsAddr string, out io.Writer) error {
	if peersPath == "" {
		return fmt.Errorf("daemon mode needs -peers")
	}
	proto, err := rcm.NewProtocol(protocol, rcm.Config{Bits: bits, Seed: seed})
	if err != nil {
		return err
	}
	n := int(proto.Space().Size())
	if id < 0 || id >= n {
		return fmt.Errorf("-id %d outside [0, %d)", id, n)
	}
	addrs, err := loadPeers(peersPath, n)
	if err != nil {
		return err
	}
	store, err := node.ParseStore(storeSpec)
	if err != nil {
		return err
	}
	tr, err := node.ListenUDP(listen)
	if err != nil {
		return err
	}
	nd, err := node.New(node.Config{
		Protocol:    proto,
		ID:          overlay.ID(id),
		Transport:   tr,
		AddrOf:      func(x overlay.ID) string { return addrs[x] },
		Store:       store,
		Replicas:    replicas,
		RTO:         rto,
		Retransmits: retransmits,
		Deadline:    deadline,
	})
	if err != nil {
		tr.Close()
		return err
	}
	nd.Start()
	fmt.Fprintf(out, "rcmd: node %d/%d of %s overlay up on %s\n", id, n, proto.Name(), nd.Addr())

	if metricsAddr != "" {
		ms, err := startMetricsServer(metricsAddr, func() obs.Snapshot {
			return obs.Default().Snapshot().Merge(nd.Metrics().Snapshot("node"))
		}, out)
		if err != nil {
			nd.Close()
			return err
		}
		defer ms.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(out, "rcmd: node %d shutting down\n", id)
	nd.Close()
	return nil
}

// ---- Client mode -------------------------------------------------------

func runClient(connect, protocol string, bits int, op, key, value string, rto time.Duration, retransmits int, deadline time.Duration, out io.Writer) error {
	if connect == "" {
		return fmt.Errorf("client mode needs -connect")
	}
	if key == "" {
		return fmt.Errorf("-op %s needs -key", op)
	}
	// The client only routes by identifier space; the protocol flag is
	// accepted for symmetry with the daemon command lines.
	_ = protocol
	space, err := overlay.NewSpace(bits)
	if err != nil {
		return err
	}
	c, err := node.Dial(node.ClientConfig{
		Target:      connect,
		Space:       space,
		RTO:         rto,
		Retransmits: retransmits,
		Deadline:    deadline,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	var res node.Result
	switch op {
	case "put":
		res = c.Put(key, []byte(value))
	case "get":
		res = c.Get(key)
	case "lookup":
		dst, err := strconv.ParseUint(key, 10, 64)
		if err != nil {
			return fmt.Errorf("-op lookup needs a numeric identifier as -key: %v", err)
		}
		res = c.Lookup(overlay.ID(dst))
	default:
		return fmt.Errorf("unknown -op %q (have get, put, lookup)", op)
	}
	return printResult(out, op, key, res)
}

func printResult(out io.Writer, op, key string, res node.Result) error {
	if res.Err != nil {
		return res.Err
	}
	switch {
	case res.OK() && op == "get":
		fmt.Fprintf(out, "%s = %q (%d hops)\n", key, res.Value, res.Hops)
	case res.OK():
		fmt.Fprintf(out, "%s %s: ok (%d hops)\n", op, key, res.Hops)
	default:
		fmt.Fprintf(out, "%s %s: %s (%d hops)\n", op, key, res.Status, res.Hops)
	}
	return nil
}

// ---- Interactive cluster mode ------------------------------------------

func runCluster(n int, protocol string, seed uint64, storeSpec string, replicas int, rto time.Duration, retransmits int, deadline time.Duration, faultSpec string, metricsAddr string, in io.Reader, out io.Writer) error {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		return fmt.Errorf("-cluster %d: population must be a power of two", n)
	}
	c, err := cluster.New(cluster.Config{
		Protocol:    protocol,
		Bits:        bits,
		Seed:        seed,
		Store:       storeSpec,
		Replicas:    replicas,
		RTO:         rto,
		Retransmits: retransmits,
		Deadline:    deadline,
		// Interactive clusters run the plan against wall time since
		// boot: windowed clauses fire while you type.
		Fault:          faultSpec,
		FaultSeed:      seed,
		FaultWallClock: true,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(out, "rcmd: %d-node in-process %s cluster up\n", c.Len(), c.Protocol().Name())
	if faultSpec != "" {
		fmt.Fprintf(out, "rcmd: fault plan %s armed (windows in seconds since boot; see `stats` and `faults`)\n", faultSpec)
	}
	if metricsAddr != "" {
		ms, err := startMetricsServer(metricsAddr, func() obs.Snapshot {
			return obs.Default().Snapshot().Merge(c.Metrics().Snapshot("cluster"))
		}, out)
		if err != nil {
			return err
		}
		defer ms.Close()
	}
	fmt.Fprintln(out, "commands: put <key> <value> | get <key> | lookup <dst> | kill <id> | restart <id> | status | stats | faults | quit")

	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := clusterCommand(c, fields, out); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Fprintln(out, "error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// entry picks a live node to issue an operation from.
func entry(c *cluster.Cluster) (*node.Node, error) {
	for i := 0; i < c.Len(); i++ {
		if !c.Node(i).Down() {
			return c.Node(i), nil
		}
	}
	return nil, fmt.Errorf("every node is down")
}

func clusterCommand(c *cluster.Cluster, fields []string, out io.Writer) error {
	parseID := func(s string) (int, error) {
		id, err := strconv.Atoi(s)
		if err != nil || id < 0 || id >= c.Len() {
			return 0, fmt.Errorf("id %q outside [0, %d)", s, c.Len())
		}
		return id, nil
	}
	switch cmd := fields[0]; cmd {
	case "quit", "exit":
		return errQuit
	case "status":
		down := 0
		for i := 0; i < c.Len(); i++ {
			if c.Node(i).Down() {
				down++
			}
		}
		fmt.Fprintf(out, "%d nodes, %d down\n", c.Len(), down)
		return nil
	case "stats":
		// Cluster-wide instrumentation: merged counters plus hop and
		// latency histogram summaries, in the same shape the
		// -metrics-addr endpoint serves.
		return c.Metrics().Snapshot("cluster").WriteText(out)
	case "faults":
		// Faults injected so far, by kind ("none" without a -fault plan).
		fmt.Fprintln(out, c.FaultCounts())
		return nil
	case "kill", "restart":
		if len(fields) != 2 {
			return fmt.Errorf("usage: %s <id>", cmd)
		}
		id, err := parseID(fields[1])
		if err != nil {
			return err
		}
		if cmd == "kill" {
			c.Kill(id)
		} else {
			c.Restart(id)
		}
		fmt.Fprintf(out, "node %d %sed\n", id, cmd)
		return nil
	case "put", "get", "lookup":
		nd, err := entry(c)
		if err != nil {
			return err
		}
		var res node.Result
		key := ""
		switch {
		case cmd == "put" && len(fields) == 3:
			key = fields[1]
			res = nd.Put(key, []byte(fields[2]))
		case cmd == "get" && len(fields) == 2:
			key = fields[1]
			res = nd.Get(key)
		case cmd == "lookup" && len(fields) == 2:
			id, err := parseID(fields[1])
			if err != nil {
				return err
			}
			key = fields[1]
			res = nd.Lookup(overlay.ID(id))
		default:
			return fmt.Errorf("usage: put <key> <value> | get <key> | lookup <dst>")
		}
		return printResult(out, cmd, key, res)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
