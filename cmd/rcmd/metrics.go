package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"

	"rcm/obs"
)

// metricsServer is the -metrics-addr HTTP listener: the process's
// observability surface, served without touching the DHT's UDP plane.
//
//	/debug/vars    registry + node snapshot as JSON (counters, gauges,
//	               histogram percentiles and buckets)
//	/metrics       the same snapshot as sorted text lines
//	/debug/pprof/  live CPU/heap/goroutine profiles
type metricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// startMetricsServer binds addr and serves snapshots from the given
// provider. The provider is called once per request, so every response
// is a fresh, internally-consistent reading.
func startMetricsServer(addr string, snapshot func() obs.Snapshot, out io.Writer) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics-addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snapshot().WriteText(w)
	})
	// pprof registers on the default mux; re-home its handlers on ours
	// so nothing else in the process leaks onto this listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms := &metricsServer{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = ms.srv.Serve(ln) }()
	fmt.Fprintf(out, "rcmd: metrics on http://%s/debug/vars (text at /metrics, profiles at /debug/pprof/)\n", ln.Addr())
	return ms, nil
}

// Addr returns the bound address (useful with -metrics-addr :0).
func (ms *metricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (ms *metricsServer) Close() error { return ms.srv.Close() }
