package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe to read while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var metricsURLRe = regexp.MustCompile(`metrics on http://([^/]+)/`)

// TestMetricsEndpoint is the observability e2e: boot the interactive
// cluster with -metrics-addr :0, do work, and require the HTTP surface
// to serve (1) valid /debug/vars JSON with message counters and
// histogram percentiles, (2) the text rendering, (3) live pprof
// profiles — plus the in-band `stats` command.
func TestMetricsEndpoint(t *testing.T) {
	pr, pw := io.Pipe()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-cluster", "16", "-protocol", "chord", "-rto", "20ms",
			"-metrics-addr", "127.0.0.1:0"}, pr, out)
	}()

	// The server prints its bound address before the prompt appears.
	var addr string
	for deadline := time.Now().Add(10 * time.Second); addr == ""; {
		if m := metricsURLRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never announced:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	write := func(cmd string) {
		t.Helper()
		if _, err := io.WriteString(pw, cmd+"\n"); err != nil {
			t.Fatalf("write %q: %v", cmd, err)
		}
	}
	write("put color green")
	write("get color")
	write("lookup 7")
	write("stats")

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// /debug/vars: valid JSON, three sections, node counters under the
	// cluster prefix, histograms with percentile fields.
	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if vars.Counters["cluster_reqs_out"] <= 0 {
		t.Errorf("cluster_reqs_out = %d, want > 0 after three routed ops", vars.Counters["cluster_reqs_out"])
	}
	if _, ok := vars.Gauges["cluster_store_len"]; !ok {
		t.Errorf("gauges missing cluster_store_len: %v", vars.Gauges)
	}
	var hops struct {
		Count uint64 `json:"count"`
		P50   int64  `json:"p50"`
		P99   int64  `json:"p99"`
		P999  int64  `json:"p999"`
	}
	if err := json.Unmarshal(vars.Histograms["cluster_hops"], &hops); err != nil {
		t.Fatalf("cluster_hops histogram: %v\n%s", err, vars.Histograms["cluster_hops"])
	}
	if hops.Count < 3 || hops.P99 < hops.P50 {
		t.Errorf("cluster_hops percentiles implausible: %+v", hops)
	}

	// /metrics: the same snapshot as text.
	code, body = get("/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "cluster_hops") {
		t.Errorf("/metrics status %d, body:\n%s", code, body)
	}

	// pprof: the index and a live heap profile.
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body := get("/debug/pprof/heap"); code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/heap status %d, %d bytes", code, len(body))
	}

	write("quit")
	if err := <-done; err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	// The in-band stats command rendered the same counters.
	if text := out.String(); !strings.Contains(text, "cluster_reqs_out") || !strings.Contains(text, "cluster_hops") {
		t.Errorf("stats command output missing counters/histograms:\n%s", text)
	}
}
