package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rcm"
	"rcm/node"
	"rcm/overlay"
)

// TestClusterInteractive scripts the in-process cluster mode through its
// stdin grammar: put, get through failover, kill, restart, status, quit.
func TestClusterInteractive(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"put color green",
		"get color",
		"kill 3",
		"status",
		"get color",
		"restart 3",
		"lookup 7",
		"bogus",
		"quit",
	}, "\n"))
	var out strings.Builder
	err := run([]string{"-cluster", "16", "-protocol", "chord", "-rto", "20ms"}, in, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"16-node in-process chord cluster up",
		`color = "green"`,
		"node 3 killed",
		"16 nodes, 1 down",
		"node 3 restarted",
		"lookup 7: ok",
		`unknown command "bogus"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestClusterRejectsNonPowerOfTwo: the population flag is validated.
func TestClusterRejectsNonPowerOfTwo(t *testing.T) {
	err := run([]string{"-cluster", "12"}, strings.NewReader(""), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("cluster 12: %v", err)
	}
}

// TestClientAgainstLiveNodes boots a small UDP deployment through the
// node API (standing in for rcmd daemons) and drives the client mode's
// full op set against it.
func TestClientAgainstLiveNodes(t *testing.T) {
	const bits = 3
	proto, err := rcm.NewProtocol("chord", rcm.Config{Bits: bits, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := int(proto.Space().Size())
	addrs := make([]string, n)
	nodes := make([]*node.Node, n)
	transports := make([]node.Transport, n)
	for i := range nodes {
		tr, err := node.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	for i := range nodes {
		nd, err := node.New(node.Config{
			Protocol:  proto,
			ID:        overlay.ID(i),
			Transport: transports[i],
			AddrOf:    func(id overlay.ID) string { return addrs[id] },
			RTO:       20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
		defer nd.Close()
	}

	base := []string{"-protocol", "chord", "-bits", fmt.Sprint(bits), "-connect", addrs[2], "-rto", "20ms"}
	var out strings.Builder
	if err := run(append(base, "-op", "put", "-key", "k", "-value", "v"), nil, &out); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := run(append(base, "-op", "get", "-key", "k"), nil, &out); err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := run(append(base, "-op", "lookup", "-key", "5"), nil, &out); err != nil {
		t.Fatalf("lookup: %v", err)
	}
	text := out.String()
	for _, want := range []string{"put k: ok", `k = "v"`, "lookup 5: ok"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if err := run(append(base, "-op", "frob", "-key", "k"), nil, &out); err == nil || !strings.Contains(err.Error(), "unknown -op") {
		t.Errorf("frob: %v", err)
	}
	if err := run(append(base, "-op", "lookup", "-key", "pear"), nil, &out); err == nil || !strings.Contains(err.Error(), "numeric identifier") {
		t.Errorf("lookup pear: %v", err)
	}
}

// TestLoadPeers pins the peers-file grammar: comments, blank lines,
// malformed rows, out-of-range ids.
func TestLoadPeers(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.txt", "# deployment map\n0 127.0.0.1:4000\n\n1 127.0.0.1:4001\n")
	addrs, err := loadPeers(good, 4)
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != "127.0.0.1:4000" || addrs[1] != "127.0.0.1:4001" || addrs[2] != "" {
		t.Errorf("addrs = %q", addrs)
	}
	for name, content := range map[string]string{
		"range.txt": "9 127.0.0.1:4009",
		"row.txt":   "0 127.0.0.1:4000 extra",
	} {
		if _, err := loadPeers(write(name, content), 4); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := loadPeers(filepath.Join(dir, "absent.txt"), 4); err == nil {
		t.Error("missing file accepted")
	}
}

// TestModeValidation: flag combinations that select no mode, or a
// client op without its key, are refused with guidance.
func TestModeValidation(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "pick a mode") {
		t.Errorf("no mode: %v", err)
	}
	if err := run([]string{"-op", "get", "-connect", "x"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "needs -key") {
		t.Errorf("missing key: %v", err)
	}
	if err := run([]string{"-op", "get", "-key", "k"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "needs -connect") {
		t.Errorf("missing connect: %v", err)
	}
	if err := run([]string{"-listen", "127.0.0.1:0"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "needs -peers") {
		t.Errorf("missing peers: %v", err)
	}
}

// TestClientTimeoutUnreachable: -timeout bounds the whole client
// operation against a deployment that never answers — the bound UDP
// socket below swallows packets, standing in for a dead daemon.
func TestClientTimeoutUnreachable(t *testing.T) {
	tr, err := node.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	start := time.Now()
	var out strings.Builder
	err = run([]string{
		"-protocol", "chord", "-bits", "3", "-connect", tr.Addr(),
		"-op", "lookup", "-key", "1", "-timeout", "200ms", "-rto", "20ms", "-retransmits", "1",
	}, nil, &out)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("lookup against a silent endpoint succeeded:\n%s", out.String())
	}
	// The guard is -timeout plus a couple of RTOs, far under the 5s
	// -deadline default the flag overrides.
	if elapsed > 2*time.Second {
		t.Errorf("client took %v to give up, want well under the 5s default deadline", elapsed)
	}
}

// TestClusterFaultInteractive: -fault arms every node's transport in
// cluster mode and the faults command reports what fired.
func TestClusterFaultInteractive(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"lookup 5",
		"lookup 2",
		"faults",
		"quit",
	}, "\n"))
	var out strings.Builder
	err := run([]string{"-cluster", "8", "-protocol", "chord", "-rto", "20ms", "-fault", "dup:1.0"}, in, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"fault plan dup:1.0 armed",
		"lookup 5: ok",
		"dup=", // every request duplicated, so the counter is nonzero
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"-cluster", "8", "-fault", "bogus:1"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("bogus fault plan accepted")
	}
}
