package markov

import (
	"math"
	"testing"
)

func TestExpectedStepsTreeExact(t *testing.T) {
	// The tree chain has no suboptimal states: every successful walk takes
	// exactly h transitions.
	for h := 1; h <= 10; h++ {
		c, ep, err := TreeChain(h, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(h)) > 1e-12 {
			t.Errorf("tree h=%d: expected steps %v, want %d", h, got, h)
		}
	}
}

func TestExpectedStepsHypercubeExact(t *testing.T) {
	c, ep, err := HypercubeChain(7, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-7) > 1e-12 {
		t.Errorf("hypercube: expected steps %v, want 7", got)
	}
}

func TestExpectedStepsXORInflatesWithQ(t *testing.T) {
	// Suboptimal hops lengthen successful XOR walks under failure. (The
	// inflation is not globally monotone in q — at extreme q the surviving
	// walks are the lucky all-optimal ones — so compare moderate q to q=0.)
	steps := func(q float64) float64 {
		c, ep, err := XORChain(8, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	base := steps(0)
	if math.Abs(base-8) > 1e-12 {
		t.Fatalf("q=0 steps = %v, want exactly 8", base)
	}
	for _, q := range []float64{0.2, 0.5, 0.8} {
		if got := steps(q); got < base+0.1 {
			t.Errorf("q=%v: steps %v show no inflation over %v", q, got, base)
		}
	}
}

func TestExpectedStepsXORAtZeroFailure(t *testing.T) {
	c, ep, err := XORChain(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-12 {
		t.Errorf("q=0: steps %v, want exactly 6", got)
	}
}

func TestExpectedStepsSymphonyManyHopsPerPhase(t *testing.T) {
	// Symphony advances a phase only via shortcuts (probability ks/d per
	// hop): expected steps per phase is much larger than 1 — the O(log² N)
	// latency signature.
	c, ep, err := SymphonyChain(1, 32, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	if got < 5 {
		t.Errorf("symphony steps per phase = %v, want >> 1", got)
	}
}

func TestExpectedStepsMonteCarloAgreement(t *testing.T) {
	// Monte Carlo estimate of E[steps|success] must match the exact value.
	c, ep, err := XORChain(6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	rng := &testRNG{state: 9}
	const walks = 100000
	var totalSteps, successes int
	for w := 0; w < walks; w++ {
		s := ep.Start
		steps := 0
		for !c.Absorbing(s) && steps < 1000 {
			u := rng.Float64()
			var acc float64
			out := c.Edges(s)
			next := out[len(out)-1].To
			for _, e := range out {
				acc += e.P
				if u < acc {
					next = e.To
					break
				}
			}
			s = next
			steps++
		}
		if s == ep.Success {
			successes++
			totalSteps += steps
		}
	}
	mc := float64(totalSteps) / float64(successes)
	if math.Abs(mc-exact) > 0.05 {
		t.Errorf("Monte Carlo steps %v vs exact %v", mc, exact)
	}
}

func TestStepDistributionTreePointMass(t *testing.T) {
	// No suboptimal states: the successful-walk length is deterministic,
	// so the distribution is a point mass at h.
	c, ep, err := TreeChain(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := c.StepDistribution(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 6 {
		t.Fatalf("dist length %d, want 6 (indices 0..5)", len(dist))
	}
	for k, p := range dist {
		want := 0.0
		if k == 5 {
			want = 1
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", k, p, want)
		}
	}
}

func TestStepDistributionMatchesExpectedSteps(t *testing.T) {
	// The distribution's mean must equal ExpectedStepsGivenSuccess, and
	// its mass must sum to one — for every geometry, at a failure level
	// that exercises the suboptimal states.
	chains := map[string]func() (*Chain, Endpoints, error){
		"tree":      func() (*Chain, Endpoints, error) { return TreeChain(6, 0.4) },
		"hypercube": func() (*Chain, Endpoints, error) { return HypercubeChain(6, 0.4) },
		"xor":       func() (*Chain, Endpoints, error) { return XORChain(6, 0.4) },
		"ring":      func() (*Chain, Endpoints, error) { return RingChain(6, 0.4) },
		"symphony":  func() (*Chain, Endpoints, error) { return SymphonyChain(3, 12, 0.2, 1, 1) },
	}
	for name, build := range chains {
		c, ep, err := build()
		if err != nil {
			t.Fatal(err)
		}
		dist, err := c.StepDistribution(ep.Start, ep.Success)
		if err != nil {
			t.Fatal(err)
		}
		var total, mean float64
		for k, p := range dist {
			if p < 0 {
				t.Errorf("%s: dist[%d] = %v < 0", name, k, p)
			}
			total += p
			mean += float64(k) * p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: mass sums to %v, want 1", name, total)
		}
		exact, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-exact) > 1e-9 {
			t.Errorf("%s: distribution mean %v != expected steps %v", name, mean, exact)
		}
	}
}

func TestStepDistributionUnreachableTarget(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	a := b.AddState("A")
	island := b.AddState("ISLAND")
	b.AddEdge(s0, a, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist, err := c.StepDistribution(s0, island)
	if err != nil {
		t.Fatal(err)
	}
	if dist != nil {
		t.Errorf("unreachable target dist = %v, want nil", dist)
	}
}

func TestExpectedStepsUnreachableTarget(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	a := b.AddState("A")
	island := b.AddState("ISLAND")
	b.AddEdge(s0, a, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExpectedStepsGivenSuccess(s0, island)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("unreachable target steps = %v, want 0", got)
	}
}
