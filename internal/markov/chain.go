// Package markov implements the absorbing discrete-time Markov chains the
// paper uses to model DHT routing under failure (Fig. 4(a,b), Fig. 5(b),
// Fig. 8(a,b)), together with three independent solvers (DAG forward
// propagation, dense linear solve, and Monte Carlo simulation).
//
// The chains built here are the ground truth against which the closed-form
// phase-failure expressions Q(m) in internal/core are verified: for every
// geometry, the chain's absorption probability into the success state from
// S0 must equal p(h,q) = Π_{m=1..h} (1 − Q(m)) (Eq. 5).
package markov

import (
	"errors"
	"fmt"
	"math"
)

// StateID identifies a state within a chain.
type StateID int

// Edge is an outgoing transition with probability P.
type Edge struct {
	To StateID
	P  float64
}

// probTol is the tolerance for validating that outgoing probabilities of a
// non-absorbing state sum to one.
const probTol = 1e-9

// Builder incrementally constructs a Chain. The zero value is ready to use.
type Builder struct {
	names []string
	edges [][]Edge
}

// AddState registers a new state and returns its ID.
func (b *Builder) AddState(name string) StateID {
	b.names = append(b.names, name)
	b.edges = append(b.edges, nil)
	return StateID(len(b.names) - 1)
}

// AddEdge adds a transition from → to with probability p. Zero-probability
// edges are dropped; negative probabilities are recorded and rejected at
// Build time.
func (b *Builder) AddEdge(from, to StateID, p float64) {
	if p == 0 {
		return
	}
	b.edges[from] = append(b.edges[from], Edge{To: to, P: p})
}

// Build validates the transition structure and returns the chain. States
// with no outgoing edges are absorbing; all others must have outgoing
// probabilities summing to 1 within tolerance.
func (b *Builder) Build() (*Chain, error) {
	n := len(b.names)
	if n == 0 {
		return nil, errors.New("markov: chain has no states")
	}
	edges := make([][]Edge, n)
	for s := 0; s < n; s++ {
		out := b.edges[s]
		if len(out) == 0 {
			continue // absorbing
		}
		var sum float64
		for _, e := range out {
			if e.P < 0 || math.IsNaN(e.P) {
				return nil, fmt.Errorf("markov: state %q has invalid probability %v", b.names[s], e.P)
			}
			if int(e.To) < 0 || int(e.To) >= n {
				return nil, fmt.Errorf("markov: state %q has edge to unknown state %d", b.names[s], e.To)
			}
			sum += e.P
		}
		if math.Abs(sum-1) > probTol {
			return nil, fmt.Errorf("markov: state %q outgoing probability sums to %v, want 1", b.names[s], sum)
		}
		edges[s] = append([]Edge(nil), out...)
	}
	return &Chain{names: append([]string(nil), b.names...), edges: edges}, nil
}

// Chain is an immutable absorbing Markov chain.
type Chain struct {
	names []string
	edges [][]Edge
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return len(c.names) }

// Name returns the state's registered name.
func (c *Chain) Name(s StateID) string { return c.names[s] }

// Absorbing reports whether s has no outgoing transitions.
func (c *Chain) Absorbing(s StateID) bool { return len(c.edges[s]) == 0 }

// Edges returns the outgoing edges of s. The returned slice must not be
// modified.
func (c *Chain) Edges(s StateID) []Edge { return c.edges[s] }

// topoOrder returns a topological order of the states, or an error if the
// chain contains a cycle among transient states.
func (c *Chain) topoOrder() ([]StateID, error) {
	n := c.NumStates()
	indeg := make([]int, n)
	for s := 0; s < n; s++ {
		for _, e := range c.edges[s] {
			indeg[e.To]++
		}
	}
	queue := make([]StateID, 0, n)
	for s := 0; s < n; s++ {
		if indeg[s] == 0 {
			queue = append(queue, StateID(s))
		}
	}
	order := make([]StateID, 0, n)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		for _, e := range c.edges[s] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("markov: chain contains a cycle; use AbsorptionProbLinear")
	}
	return order, nil
}

// AbsorptionProb returns the probability that a walk started at start is
// eventually absorbed at target, using forward propagation over a
// topological order. All routing chains in the paper are DAGs, so this is
// exact and O(V+E). Returns an error when the chain has a cycle.
func (c *Chain) AbsorptionProb(start, target StateID) (float64, error) {
	order, err := c.topoOrder()
	if err != nil {
		return 0, err
	}
	mass := make([]float64, c.NumStates())
	mass[start] = 1
	for _, s := range order {
		m := mass[s]
		if m == 0 || c.Absorbing(s) {
			continue
		}
		for _, e := range c.edges[s] {
			mass[e.To] += m * e.P
		}
	}
	return mass[target], nil
}

// AbsorptionProbLinear returns absorption probabilities into target for
// every state by solving the standard first-step equations
//
//	x_s = Σ_e P(s,e) · x_e,  x_target = 1,  x_absorbing≠target = 0
//
// with dense Gaussian elimination. It works on cyclic chains and serves as
// an independent oracle for AbsorptionProb in tests. O(n^3) — use on small
// chains only.
func (c *Chain) AbsorptionProbLinear(target StateID) ([]float64, error) {
	n := c.NumStates()
	// Build A x = b where A = I - T restricted appropriately.
	a := make([][]float64, n)
	bvec := make([]float64, n)
	for s := 0; s < n; s++ {
		a[s] = make([]float64, n)
		if c.Absorbing(StateID(s)) {
			a[s][s] = 1
			if StateID(s) == target {
				bvec[s] = 1
			}
			continue
		}
		a[s][s] = 1
		for _, e := range c.edges[s] {
			a[s][e.To] -= e.P
		}
	}
	x, err := solveDense(a, bvec)
	if err != nil {
		return nil, err
	}
	return x, nil
}

// solveDense performs in-place Gaussian elimination with partial pivoting.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, errors.New("markov: singular absorption system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// rngSource is the minimal randomness dependency for Simulate, satisfied by
// *overlay.RNG. Declared locally so markov does not import overlay.
type rngSource interface {
	Float64() float64
}

// Simulate runs walks independent random walks from start and returns the
// fraction absorbed at target. Walks are capped at maxSteps transitions;
// walks hitting the cap count as not absorbed at target.
func (c *Chain) Simulate(start, target StateID, walks, maxSteps int, rng rngSource) float64 {
	hits := 0
	for w := 0; w < walks; w++ {
		s := start
		for step := 0; step < maxSteps && !c.Absorbing(s); step++ {
			u := rng.Float64()
			var acc float64
			out := c.edges[s]
			next := out[len(out)-1].To // rounding residue falls on the last edge
			for _, e := range out {
				acc += e.P
				if u < acc {
					next = e.To
					break
				}
			}
			s = next
		}
		if s == target {
			hits++
		}
	}
	return float64(hits) / float64(walks)
}
