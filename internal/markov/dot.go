package markov

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the chain in Graphviz dot syntax, reproducing the paper's
// chain diagrams (Fig. 4(a,b), 5(b), 8(a,b)) as machine-readable artifacts.
// Absorbing states are drawn as double circles; edges carry their
// transition probabilities. Output is deterministic (states in ID order,
// edges in declaration order).
func (c *Chain) DOT(title string) string {
	var b strings.Builder
	b.WriteString("digraph chain {\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", title)
	}
	b.WriteString("  rankdir=LR;\n")
	for s := 0; s < c.NumStates(); s++ {
		shape := "circle"
		if c.Absorbing(StateID(s)) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", s, c.names[s], shape)
	}
	for s := 0; s < c.NumStates(); s++ {
		for _, e := range c.edges[s] {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.4g\"];\n", s, e.To, e.P)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a compact, deterministic textual description of the
// chain: state count, absorbing states, and the out-degree histogram.
// Useful in tests and documentation.
func (c *Chain) Summary() string {
	absorbing := make([]string, 0, 2)
	histogram := map[int]int{}
	edges := 0
	for s := 0; s < c.NumStates(); s++ {
		out := len(c.edges[s])
		edges += out
		histogram[out]++
		if out == 0 {
			absorbing = append(absorbing, c.names[s])
		}
	}
	degrees := make([]int, 0, len(histogram))
	for d := range histogram {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	var parts []string
	for _, d := range degrees {
		parts = append(parts, fmt.Sprintf("%d:%d", d, histogram[d]))
	}
	return fmt.Sprintf("states=%d edges=%d absorbing=[%s] outdegree={%s}",
		c.NumStates(), edges, strings.Join(absorbing, ","), strings.Join(parts, " "))
}
