package markov

import (
	"math"
	"strings"
	"testing"
)

// testRNG is a tiny deterministic generator for Simulate tests.
type testRNG struct{ state uint64 }

func (r *testRNG) Float64() float64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z^(z>>31))>>11) / (1 << 53)
}

func TestBuilderEmptyChain(t *testing.T) {
	var b Builder
	if _, err := b.Build(); err == nil {
		t.Error("empty chain built without error")
	}
}

func TestBuilderBadProbabilitySum(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	s1 := b.AddState("S1")
	b.AddEdge(s0, s1, 0.5) // sums to 0.5, not 1
	if _, err := b.Build(); err == nil {
		t.Error("chain with probability sum 0.5 built without error")
	} else if !strings.Contains(err.Error(), "sums to") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBuilderNegativeProbability(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	s1 := b.AddState("S1")
	b.AddEdge(s0, s1, -0.5)
	b.AddEdge(s0, s1, 1.5)
	if _, err := b.Build(); err == nil {
		t.Error("chain with negative probability built without error")
	}
}

func TestBuilderNaNProbability(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	s1 := b.AddState("S1")
	b.AddEdge(s0, s1, math.NaN())
	if _, err := b.Build(); err == nil {
		t.Error("chain with NaN probability built without error")
	}
}

func TestBuilderDropsZeroEdges(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	s1 := b.AddState("S1")
	b.AddEdge(s0, s1, 0)
	b.AddEdge(s0, s1, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Edges(s0)); got != 1 {
		t.Errorf("zero edge retained: %d edges", got)
	}
}

func buildTwoState(t *testing.T, p float64) (*Chain, StateID, StateID, StateID) {
	t.Helper()
	var b Builder
	s0 := b.AddState("S0")
	win := b.AddState("WIN")
	lose := b.AddState("LOSE")
	b.AddEdge(s0, win, p)
	b.AddEdge(s0, lose, 1-p)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, s0, win, lose
}

func TestAbsorptionProbTwoState(t *testing.T) {
	c, s0, win, lose := buildTwoState(t, 0.3)
	got, err := c.AbsorptionProb(s0, win)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("P(win) = %v, want 0.3", got)
	}
	gotL, err := c.AbsorptionProb(s0, lose)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotL-0.7) > 1e-12 {
		t.Errorf("P(lose) = %v, want 0.7", gotL)
	}
}

func TestAbsorbingDetection(t *testing.T) {
	c, s0, win, _ := buildTwoState(t, 0.5)
	if c.Absorbing(s0) {
		t.Error("S0 reported absorbing")
	}
	if !c.Absorbing(win) {
		t.Error("WIN not reported absorbing")
	}
}

func TestAbsorptionProbChainedSteps(t *testing.T) {
	// S0 -> S1 -> S2 with survival 0.9 each step, else F.
	var b Builder
	states := make([]StateID, 3)
	for i := range states {
		states[i] = b.AddState("S")
	}
	f := b.AddState("F")
	for i := 0; i < 2; i++ {
		b.AddEdge(states[i], states[i+1], 0.9)
		b.AddEdge(states[i], f, 0.1)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.AbsorptionProb(states[0], states[2])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.81) > 1e-12 {
		t.Errorf("two-step survival = %v, want 0.81", got)
	}
}

func TestAbsorptionProbCycleError(t *testing.T) {
	var b Builder
	s0 := b.AddState("S0")
	s1 := b.AddState("S1")
	end := b.AddState("END")
	b.AddEdge(s0, s1, 1)
	b.AddEdge(s1, s0, 0.5)
	b.AddEdge(s1, end, 0.5)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AbsorptionProb(s0, end); err == nil {
		t.Error("cyclic chain did not return error from DAG solver")
	}
	// The linear solver must handle the cycle: P(end from S0) = 1.
	x, err := c.AbsorptionProbLinear(end)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[s0]-1) > 1e-9 {
		t.Errorf("linear solve on cycle = %v, want 1", x[s0])
	}
}

func TestLinearSolverMatchesForwardOnDAG(t *testing.T) {
	for _, q := range []float64{0.1, 0.5, 0.8} {
		c, ep, err := XORChain(6, q)
		if err != nil {
			t.Fatal(err)
		}
		fwd, err := c.AbsorptionProb(ep.Start, ep.Success)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := c.AbsorptionProbLinear(ep.Success)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fwd-lin[ep.Start]) > 1e-9 {
			t.Errorf("q=%v: forward %v vs linear %v", q, fwd, lin[ep.Start])
		}
	}
}

func TestProbabilityConservation(t *testing.T) {
	// Success + failure absorption must sum to 1 for every chain family.
	builders := map[string]func(h int, q float64) (*Chain, Endpoints, error){
		"tree":      TreeChain,
		"hypercube": HypercubeChain,
		"xor":       XORChain,
		"ring":      RingChain,
		"symphony": func(h int, q float64) (*Chain, Endpoints, error) {
			return SymphonyChain(h, 16, q, 1, 1)
		},
	}
	for name, build := range builders {
		for _, q := range []float64{0, 0.2, 0.5, 0.8} {
			c, ep, err := build(5, q)
			if err != nil {
				t.Fatalf("%s q=%v: %v", name, q, err)
			}
			ps, err := c.AbsorptionProb(ep.Start, ep.Success)
			if err != nil {
				t.Fatal(err)
			}
			pf, err := c.AbsorptionProb(ep.Start, ep.Failure)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ps+pf-1) > 1e-9 {
				t.Errorf("%s q=%v: success %v + failure %v != 1", name, q, ps, pf)
			}
		}
	}
}

func TestSimulateMatchesExact(t *testing.T) {
	c, ep, err := HypercubeChain(6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.AbsorptionProb(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Simulate(ep.Start, ep.Success, 200000, 1000, &testRNG{state: 42})
	if math.Abs(got-exact) > 0.01 {
		t.Errorf("Monte Carlo %v vs exact %v", got, exact)
	}
}

func TestSimulateRespectsStepCap(t *testing.T) {
	// A long deterministic corridor: with maxSteps=1 the walk cannot reach
	// the end, so the absorbed fraction must be 0.
	var b Builder
	s0 := b.AddState("S0")
	s1 := b.AddState("S1")
	end := b.AddState("END")
	b.AddEdge(s0, s1, 1)
	b.AddEdge(s1, end, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Simulate(s0, end, 100, 1, &testRNG{}); got != 0 {
		t.Errorf("step-capped walk absorbed fraction = %v, want 0", got)
	}
	if got := c.Simulate(s0, end, 100, 10, &testRNG{}); got != 1 {
		t.Errorf("uncapped walk absorbed fraction = %v, want 1", got)
	}
}

func TestChainNames(t *testing.T) {
	c, ep, err := TreeChain(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Name(ep.Start); got != "S0" {
		t.Errorf("start name = %q", got)
	}
	if got := c.Name(ep.Failure); got != "F" {
		t.Errorf("failure name = %q", got)
	}
	if c.NumStates() != 5 { // S0..S3 + F
		t.Errorf("tree h=3 states = %d, want 5", c.NumStates())
	}
}
