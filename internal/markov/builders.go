package markov

import (
	"fmt"
	"math"
)

// Endpoints names the distinguished states of a routing chain: the start
// state S0, the success absorbing state Sh, the failure absorbing state F,
// and the phase-boundary states Phases[i] = Si. Because the routing chains
// are DAGs, Chain.AbsorptionProb(S0, Phases[i]) is the probability the walk
// ever advances i phases, so per-phase success ratios G(S_{i-1}, S_i)
// (paper §4.3) are recoverable from a single chain.
type Endpoints struct {
	Start   StateID
	Success StateID
	Failure StateID
	Phases  []StateID
}

// TreeChain builds the Fig. 4(a) chain for routing to a target h ordered
// bits away in the tree (Plaxton) geometry: at each step exactly one
// neighbor can correct the leftmost differing bit, so each phase advances
// with probability 1−q and fails with probability q.
func TreeChain(h int, q float64) (*Chain, Endpoints, error) {
	if err := checkHQ(h, q); err != nil {
		return nil, Endpoints{}, err
	}
	var b Builder
	phases := make([]StateID, h+1)
	for i := 0; i <= h; i++ {
		phases[i] = b.AddState(fmt.Sprintf("S%d", i))
	}
	f := b.AddState("F")
	for i := 0; i < h; i++ {
		b.AddEdge(phases[i], phases[i+1], 1-q)
		b.AddEdge(phases[i], f, q)
	}
	c, err := b.Build()
	if err != nil {
		return nil, Endpoints{}, err
	}
	return c, Endpoints{Start: phases[0], Success: phases[h], Failure: f, Phases: phases}, nil
}

// HypercubeChain builds the Fig. 4(b) chain: with i bits already corrected
// there are h−i neighbors that each correct one remaining bit, so the phase
// fails only when all h−i have failed (probability q^{h−i}).
func HypercubeChain(h int, q float64) (*Chain, Endpoints, error) {
	if err := checkHQ(h, q); err != nil {
		return nil, Endpoints{}, err
	}
	var b Builder
	phases := make([]StateID, h+1)
	for i := 0; i <= h; i++ {
		phases[i] = b.AddState(fmt.Sprintf("S%d", i))
	}
	f := b.AddState("F")
	for i := 0; i < h; i++ {
		remaining := h - i
		fail := math.Pow(q, float64(remaining))
		b.AddEdge(phases[i], phases[i+1], 1-fail)
		b.AddEdge(phases[i], f, fail)
	}
	c, err := b.Build()
	if err != nil {
		return nil, Endpoints{}, err
	}
	return c, Endpoints{Start: phases[0], Success: phases[h], Failure: f, Phases: phases}, nil
}

// XORChain builds the Fig. 5(b) chain for XOR (Kademlia) routing to a target
// h phases away. State (i,j) means i phases advanced and j suboptimal hops
// taken within the current phase; with m = h−i phases remaining:
//
//	advance:    (i,j) → S_{i+1}      with probability 1−q
//	fail:       (i,j) → F            with probability q^{m−j}
//	suboptimal: (i,j) → (i,j+1)      with probability q·(1−q^{m−j−1}), j < m−1
//
// Correcting a lower-order bit consumes one of the phase's options, which is
// why the failure exponent drops with each suboptimal hop — the structural
// difference from ring routing (§4.3.3).
func XORChain(h int, q float64) (*Chain, Endpoints, error) {
	if err := checkHQ(h, q); err != nil {
		return nil, Endpoints{}, err
	}
	var b Builder
	phases := make([]StateID, h+1)
	// sub[i][j] includes j=0 as the phase-entry state (i,0) == Phases[i].
	sub := make([][]StateID, h)
	for i := 0; i < h; i++ {
		m := h - i
		sub[i] = make([]StateID, m)
		for j := 0; j < m; j++ {
			sub[i][j] = b.AddState(fmt.Sprintf("(%d,%d)", i, j))
		}
		phases[i] = sub[i][0]
	}
	phases[h] = b.AddState(fmt.Sprintf("S%d", h))
	f := b.AddState("F")
	for i := 0; i < h; i++ {
		m := h - i
		for j := 0; j < m; j++ {
			b.AddEdge(sub[i][j], phases[i+1], 1-q)
			b.AddEdge(sub[i][j], f, math.Pow(q, float64(m-j)))
			if j < m-1 {
				b.AddEdge(sub[i][j], sub[i][j+1], q*(1-math.Pow(q, float64(m-j-1))))
			}
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, Endpoints{}, err
	}
	return c, Endpoints{Start: phases[0], Success: phases[h], Failure: f, Phases: phases}, nil
}

// RingChain builds the Fig. 8(a) chain for ring (Chord) routing. Unlike XOR,
// a suboptimal hop does not consume options: the failure probability stays
// q^m throughout the phase, and up to 2^{m−1} suboptimal hops may be taken.
// Matching Qring (§4.3.3), a walk that survives the maximum number of
// suboptimal hops is credited to the advancing transition (the truncated
// geometric series in the paper assigns the residual mass to progress).
//
// The state count is Σ 2^{m−1} = 2^h − 1, so h is capped at RingChainMaxH.
func RingChain(h int, q float64) (*Chain, Endpoints, error) {
	if err := checkHQ(h, q); err != nil {
		return nil, Endpoints{}, err
	}
	if h > RingChainMaxH {
		return nil, Endpoints{}, fmt.Errorf("markov: ring chain with h=%d exceeds max %d (2^h state blowup)", h, RingChainMaxH)
	}
	var b Builder
	phases := make([]StateID, h+1)
	sub := make([][]StateID, h)
	for i := 0; i < h; i++ {
		m := h - i
		k := 1 << uint(m-1) // max suboptimal hops in this phase
		sub[i] = make([]StateID, k)
		for j := 0; j < k; j++ {
			sub[i][j] = b.AddState(fmt.Sprintf("(%d,%d)", i, j))
		}
		phases[i] = sub[i][0]
	}
	phases[h] = b.AddState(fmt.Sprintf("S%d", h))
	f := b.AddState("F")
	for i := 0; i < h; i++ {
		m := h - i
		k := len(sub[i])
		fail := math.Pow(q, float64(m))
		subopt := q * (1 - math.Pow(q, float64(m-1)))
		for j := 0; j < k; j++ {
			advance := 1 - q
			if j == k-1 {
				advance += subopt // residual mass credited to progress
			} else {
				b.AddEdge(sub[i][j], sub[i][j+1], subopt)
			}
			b.AddEdge(sub[i][j], phases[i+1], advance)
			b.AddEdge(sub[i][j], f, fail)
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, Endpoints{}, err
	}
	return c, Endpoints{Start: phases[0], Success: phases[h], Failure: f, Phases: phases}, nil
}

// RingChainMaxH caps the ring chain's exponential state count (2^h − 1
// states) at about one million states.
const RingChainMaxH = 20

// SymphonyChain builds the Fig. 8(b) chain for Symphony routing to a target
// h phases away in a system with d-bit identifiers and kn near neighbors and
// ks shortcuts per node. Per §3.5, with x = ks/d and y = q^{kn+ks}:
//
//	advance:    → S_{i+1}   with probability x   (a shortcut lands in the phase)
//	fail:       → F         with probability y   (all links dead)
//	suboptimal: → (i,j+1)   with probability 1−x−y
//
// The maximum number of suboptimal hops is J = ⌈d/(1−q)⌉; as with the ring
// chain, the residual mass at (i,J) is credited to the advancing transition
// so the chain reproduces Eq. 7 exactly.
func SymphonyChain(h, d int, q float64, kn, ks int) (*Chain, Endpoints, error) {
	if err := checkHQ(h, q); err != nil {
		return nil, Endpoints{}, err
	}
	if d < 1 || kn < 0 || ks < 1 {
		return nil, Endpoints{}, fmt.Errorf("markov: invalid symphony parameters d=%d kn=%d ks=%d", d, kn, ks)
	}
	x := float64(ks) / float64(d)
	y := math.Pow(q, float64(kn+ks))
	if x+y > 1 {
		return nil, Endpoints{}, fmt.Errorf("markov: symphony parameters give ks/d + q^(kn+ks) = %v > 1; d too small for this q", x+y)
	}
	bigJ := int(math.Ceil(float64(d) / (1 - q)))
	var b Builder
	phases := make([]StateID, h+1)
	sub := make([][]StateID, h)
	for i := 0; i < h; i++ {
		sub[i] = make([]StateID, bigJ+1)
		for j := 0; j <= bigJ; j++ {
			sub[i][j] = b.AddState(fmt.Sprintf("(%d,%d)", i, j))
		}
		phases[i] = sub[i][0]
	}
	phases[h] = b.AddState(fmt.Sprintf("S%d", h))
	f := b.AddState("F")
	for i := 0; i < h; i++ {
		for j := 0; j <= bigJ; j++ {
			advance := x
			if j == bigJ {
				advance += 1 - x - y
			} else {
				b.AddEdge(sub[i][j], sub[i][j+1], 1-x-y)
			}
			b.AddEdge(sub[i][j], phases[i+1], advance)
			b.AddEdge(sub[i][j], f, y)
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, Endpoints{}, err
	}
	return c, Endpoints{Start: phases[0], Success: phases[h], Failure: f, Phases: phases}, nil
}

func checkHQ(h int, q float64) error {
	if h < 1 {
		return fmt.Errorf("markov: routing distance h=%d must be >= 1", h)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return fmt.Errorf("markov: failure probability q=%v out of [0,1]", q)
	}
	return nil
}

// PhaseSuccess returns the per-phase success probabilities
// G(S_{i-1}, S_i) for i = 1..h recovered from the chain: the ratio of the
// probabilities of ever reaching consecutive phase boundaries. This is the
// chain-side counterpart of 1 − Q(m) with m = h−i+1 (Eq. 5).
func PhaseSuccess(c *Chain, ep Endpoints) ([]float64, error) {
	h := len(ep.Phases) - 1
	reach := make([]float64, h+1)
	for i := 0; i <= h; i++ {
		p, err := c.AbsorptionProb(ep.Start, ep.Phases[i])
		if err != nil {
			return nil, err
		}
		reach[i] = p
	}
	out := make([]float64, h)
	for i := 1; i <= h; i++ {
		if reach[i-1] == 0 {
			out[i-1] = 0
			continue
		}
		out[i-1] = reach[i] / reach[i-1]
	}
	return out, nil
}
