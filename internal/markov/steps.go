package markov

// ExpectedStepsGivenSuccess returns E[number of transitions | walk from
// start is absorbed at target] for a DAG chain, by forward-propagating the
// pair (probability mass, probability-weighted step count) over a
// topological order:
//
//	mass'[to]  += P(edge)·mass[s]
//	steps'[to] += P(edge)·(steps[s] + mass[s])
//
// so steps[v] = Σ_{paths start→v} P(path)·len(path), and the conditional
// expectation is steps[target]/mass[target].
//
// This quantifies routing latency under failure: for the tree and hypercube
// chains the answer is exactly h (no suboptimal states), while XOR, ring
// and Symphony walks lengthen as q grows — Symphony's expected hops per
// phase is what makes its total latency O(log² N) (§3.5).
func (c *Chain) ExpectedStepsGivenSuccess(start, target StateID) (float64, error) {
	order, err := c.topoOrder()
	if err != nil {
		return 0, err
	}
	mass := make([]float64, c.NumStates())
	steps := make([]float64, c.NumStates())
	mass[start] = 1
	for _, s := range order {
		if mass[s] == 0 || c.Absorbing(s) {
			continue
		}
		for _, e := range c.edges[s] {
			mass[e.To] += e.P * mass[s]
			steps[e.To] += e.P * (steps[s] + mass[s])
		}
	}
	if mass[target] == 0 {
		return 0, nil
	}
	return steps[target] / mass[target], nil
}

// StepDistribution returns the full conditional law of the walk length:
// dist[k] = P(walk takes exactly k transitions | absorbed at target).
// It forward-propagates a per-step mass vector over a topological order:
//
//	dist'[to][k+1] += P(edge)·dist[s][k]
//
// then normalizes the target's vector by its total absorption mass. A
// nil slice means the target is unreachable from start. On a DAG every
// path visits each state at most once, so vectors stay bounded by the
// state count and the propagation is O(E·n).
//
// This is the distributional refinement of ExpectedStepsGivenSuccess —
// the hop-count histogram the routing model predicts, comparable bucket
// for bucket against eventsim's and a live cluster's hop distributions.
func (c *Chain) StepDistribution(start, target StateID) ([]float64, error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	dist := make([][]float64, c.NumStates())
	dist[start] = []float64{1}
	for _, s := range order {
		ds := dist[s]
		if len(ds) == 0 || c.Absorbing(s) {
			continue
		}
		for _, e := range c.edges[s] {
			dt := dist[e.To]
			if len(dt) < len(ds)+1 {
				grown := make([]float64, len(ds)+1)
				copy(grown, dt)
				dt = grown
				dist[e.To] = dt
			}
			for k, m := range ds {
				if m != 0 {
					dt[k+1] += e.P * m
				}
			}
		}
	}
	at := dist[target]
	var total float64
	for _, m := range at {
		total += m
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]float64, len(at))
	for k, m := range at {
		out[k] = m / total
	}
	return out, nil
}
