package markov

// ExpectedStepsGivenSuccess returns E[number of transitions | walk from
// start is absorbed at target] for a DAG chain, by forward-propagating the
// pair (probability mass, probability-weighted step count) over a
// topological order:
//
//	mass'[to]  += P(edge)·mass[s]
//	steps'[to] += P(edge)·(steps[s] + mass[s])
//
// so steps[v] = Σ_{paths start→v} P(path)·len(path), and the conditional
// expectation is steps[target]/mass[target].
//
// This quantifies routing latency under failure: for the tree and hypercube
// chains the answer is exactly h (no suboptimal states), while XOR, ring
// and Symphony walks lengthen as q grows — Symphony's expected hops per
// phase is what makes its total latency O(log² N) (§3.5).
func (c *Chain) ExpectedStepsGivenSuccess(start, target StateID) (float64, error) {
	order, err := c.topoOrder()
	if err != nil {
		return 0, err
	}
	mass := make([]float64, c.NumStates())
	steps := make([]float64, c.NumStates())
	mass[start] = 1
	for _, s := range order {
		if mass[s] == 0 || c.Absorbing(s) {
			continue
		}
		for _, e := range c.edges[s] {
			mass[e.To] += e.P * mass[s]
			steps[e.To] += e.P * (steps[s] + mass[s])
		}
	}
	if mass[target] == 0 {
		return 0, nil
	}
	return steps[target] / mass[target], nil
}
