package markov

import (
	"math"
	"testing"
)

func absorb(t *testing.T, c *Chain, ep Endpoints) float64 {
	t.Helper()
	p, err := c.AbsorptionProb(ep.Start, ep.Success)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTreeChainClosedForm(t *testing.T) {
	// Fig. 4(a): p(h,q) = (1-q)^h exactly.
	for h := 1; h <= 10; h++ {
		for _, q := range []float64{0, 0.1, 0.3, 0.7, 1} {
			c, ep, err := TreeChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			got := absorb(t, c, ep)
			want := math.Pow(1-q, float64(h))
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("tree h=%d q=%v: %v, want %v", h, q, got, want)
			}
		}
	}
}

func TestHypercubeChainClosedForm(t *testing.T) {
	// Fig. 4(b) / Eq. 2: p(h,q) = Π_{m=1..h} (1-q^m).
	for h := 1; h <= 10; h++ {
		for _, q := range []float64{0, 0.25, 0.5, 0.9} {
			c, ep, err := HypercubeChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			got := absorb(t, c, ep)
			want := 1.0
			for m := 1; m <= h; m++ {
				want *= 1 - math.Pow(q, float64(m))
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("hypercube h=%d q=%v: %v, want %v", h, q, got, want)
			}
		}
	}
}

func TestXORChainFirstPhaseFailure(t *testing.T) {
	// Absorption into F from the first phase alone must equal Eq. 6.
	// With h=m the first phase's failure probability is Qxor(m):
	// verify via 1 - P(ever reach S1).
	for _, m := range []int{1, 2, 3, 5, 8} {
		for _, q := range []float64{0.1, 0.4, 0.8} {
			c, ep, err := XORChain(m, q)
			if err != nil {
				t.Fatal(err)
			}
			reachS1, err := c.AbsorptionProb(ep.Start, ep.Phases[1])
			if err != nil {
				t.Fatal(err)
			}
			// Eq. 6 computed directly.
			qm := math.Pow(q, float64(m))
			sum, prod := 1.0, 1.0
			for k := 1; k <= m-1; k++ {
				prod *= 1 - math.Pow(q, float64(m-k))
				sum += prod
			}
			want := 1 - qm*sum
			if math.Abs(reachS1-want) > 1e-12 {
				t.Errorf("xor m=%d q=%v: G(S0,S1)=%v, want %v", m, q, reachS1, want)
			}
		}
	}
}

func TestXORChainProductForm(t *testing.T) {
	// Eq. 5: total success = Π per-phase successes.
	for _, q := range []float64{0.2, 0.5, 0.75} {
		h := 7
		c, ep, err := XORChain(h, q)
		if err != nil {
			t.Fatal(err)
		}
		total := absorb(t, c, ep)
		phase, err := PhaseSuccess(c, ep)
		if err != nil {
			t.Fatal(err)
		}
		prod := 1.0
		for _, g := range phase {
			prod *= g
		}
		if math.Abs(total-prod) > 1e-10 {
			t.Errorf("q=%v: total %v vs phase product %v", q, total, prod)
		}
	}
}

func TestRingChainMatchesQringFormula(t *testing.T) {
	// First-phase failure must equal Qring(m) = q^m (1-β^{2^{m-1}})/(1-β).
	for _, m := range []int{1, 2, 3, 6, 10} {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			c, ep, err := RingChain(m, q)
			if err != nil {
				t.Fatal(err)
			}
			reachS1, err := c.AbsorptionProb(ep.Start, ep.Phases[1])
			if err != nil {
				t.Fatal(err)
			}
			qm := math.Pow(q, float64(m))
			beta := q * (1 - math.Pow(q, float64(m-1)))
			var want float64
			if beta == 0 {
				want = 1 - qm
			} else {
				k := math.Pow(2, float64(m-1))
				want = 1 - qm*(1-math.Pow(beta, k))/(1-beta)
			}
			if math.Abs(reachS1-want) > 1e-10 {
				t.Errorf("ring m=%d q=%v: G(S0,S1)=%v, want %v", m, q, reachS1, want)
			}
		}
	}
}

func TestRingChainStateCap(t *testing.T) {
	if _, _, err := RingChain(RingChainMaxH+1, 0.5); err == nil {
		t.Error("oversized ring chain built without error")
	}
}

func TestRingBeatsXOR(t *testing.T) {
	// §5.4: ring's suboptimal transition probabilities dominate XOR's, so
	// ring success must be >= XOR success at every (h, q).
	for h := 1; h <= 10; h++ {
		for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			rc, rep, err := RingChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			xc, xep, err := XORChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			ring := absorb(t, rc, rep)
			xor := absorb(t, xc, xep)
			if ring < xor-1e-12 {
				t.Errorf("h=%d q=%v: ring %v < xor %v", h, q, ring, xor)
			}
		}
	}
}

func TestSymphonyChainMatchesQsym(t *testing.T) {
	for _, tc := range []struct {
		d      int
		q      float64
		kn, ks int
	}{
		{16, 0.1, 1, 1},
		{16, 0.5, 1, 1},
		{16, 0.3, 2, 3},
		{32, 0.7, 1, 2},
	} {
		c, ep, err := SymphonyChain(3, tc.d, tc.q, tc.kn, tc.ks)
		if err != nil {
			t.Fatal(err)
		}
		reachS1, err := c.AbsorptionProb(ep.Start, ep.Phases[1])
		if err != nil {
			t.Fatal(err)
		}
		// Eq. 7 summed directly.
		y := math.Pow(tc.q, float64(tc.kn+tc.ks))
		x := float64(tc.ks) / float64(tc.d)
		alpha := 1 - x - y
		bigJ := int(math.Ceil(float64(tc.d) / (1 - tc.q)))
		sum := 0.0
		ap := 1.0
		for j := 0; j <= bigJ; j++ {
			sum += ap
			ap *= alpha
		}
		want := 1 - y*sum
		if math.Abs(reachS1-want) > 1e-10 {
			t.Errorf("%+v: G(S0,S1)=%v, want %v", tc, reachS1, want)
		}
	}
}

func TestSymphonyChainConstantPhases(t *testing.T) {
	// Qsym is phase-independent: all per-phase successes must be equal.
	c, ep, err := SymphonyChain(5, 16, 0.4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	phase, err := PhaseSuccess(c, ep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(phase); i++ {
		if math.Abs(phase[i]-phase[0]) > 1e-10 {
			t.Errorf("phase %d success %v differs from phase 0 %v", i, phase[i], phase[0])
		}
	}
}

func TestSymphonyChainParamValidation(t *testing.T) {
	if _, _, err := SymphonyChain(3, 0, 0.5, 1, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, _, err := SymphonyChain(3, 16, 0.5, -1, 1); err == nil {
		t.Error("kn=-1 accepted")
	}
	if _, _, err := SymphonyChain(3, 16, 0.5, 1, 0); err == nil {
		t.Error("ks=0 accepted")
	}
	// x + y > 1: d=2, ks=2 gives x=1; q>0 pushes the mass over 1.
	if _, _, err := SymphonyChain(3, 2, 0.5, 1, 2); err == nil {
		t.Error("x+y>1 accepted")
	}
}

func TestChainInputValidation(t *testing.T) {
	if _, _, err := TreeChain(0, 0.5); err == nil {
		t.Error("h=0 accepted")
	}
	if _, _, err := TreeChain(3, -0.1); err == nil {
		t.Error("q<0 accepted")
	}
	if _, _, err := HypercubeChain(3, 1.1); err == nil {
		t.Error("q>1 accepted")
	}
	if _, _, err := XORChain(3, math.NaN()); err == nil {
		t.Error("q=NaN accepted")
	}
}

func TestPhaseSuccessTreeUniform(t *testing.T) {
	c, ep, err := TreeChain(6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	phase, err := PhaseSuccess(c, ep)
	if err != nil {
		t.Fatal(err)
	}
	if len(phase) != 6 {
		t.Fatalf("phase count = %d, want 6", len(phase))
	}
	for i, g := range phase {
		if math.Abs(g-0.75) > 1e-12 {
			t.Errorf("tree phase %d success = %v, want 0.75", i, g)
		}
	}
}

func TestHypercubeChainPhaseOrdering(t *testing.T) {
	// Early phases (more options) succeed with higher probability than the
	// last phase (single neighbor): G(S0,S1) = 1-q^h >= ... >= G(Sh-1,Sh) = 1-q.
	c, ep, err := HypercubeChain(8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	phase, err := PhaseSuccess(c, ep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(phase); i++ {
		if phase[i] > phase[i-1]+1e-12 {
			t.Errorf("phase success increased from %v to %v at phase %d", phase[i-1], phase[i], i)
		}
	}
	if math.Abs(phase[len(phase)-1]-(1-0.6)) > 1e-12 {
		t.Errorf("last phase success = %v, want 0.4", phase[len(phase)-1])
	}
}
