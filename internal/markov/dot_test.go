package markov

import (
	"strings"
	"testing"
)

func TestDOTStructure(t *testing.T) {
	c, ep, err := TreeChain(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	dot := c.DOT("tree h=3")
	if !strings.HasPrefix(dot, "digraph chain {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("malformed DOT:\n%s", dot)
	}
	if !strings.Contains(dot, `label="tree h=3"`) {
		t.Errorf("missing title:\n%s", dot)
	}
	// Absorbing states (S3, F) rendered as double circles.
	if got := strings.Count(dot, "doublecircle"); got != 2 {
		t.Errorf("doublecircle count = %d, want 2", got)
	}
	// Edge count: 3 transient states × 2 edges each.
	if got := strings.Count(dot, "->"); got != 6 {
		t.Errorf("edge count = %d, want 6", got)
	}
	if !strings.Contains(dot, `"0.75"`) {
		t.Errorf("missing 1-q edge label:\n%s", dot)
	}
	_ = ep
}

func TestDOTDeterministic(t *testing.T) {
	c1, _, err := XORChain(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := XORChain(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if c1.DOT("x") != c2.DOT("x") {
		t.Error("DOT output not deterministic")
	}
}

func TestDOTNoTitle(t *testing.T) {
	c, _, err := TreeChain(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.DOT(""), "label=\"\"") {
		t.Error("empty title rendered")
	}
}

func TestSummary(t *testing.T) {
	c, _, err := TreeChain(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	for _, want := range []string{"states=5", "edges=6", "absorbing=[S3,F]", "0:2", "2:3"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestSummaryStateCounts(t *testing.T) {
	// XOR chain at h: Σ_{m=1..h} m + success + failure states.
	for h := 2; h <= 8; h++ {
		c, _, err := XORChain(h, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := h*(h+1)/2 + 2
		if c.NumStates() != want {
			t.Errorf("h=%d: states=%d, want %d", h, c.NumStates(), want)
		}
	}
	// Ring chain: 2^h − 1 + 2.
	for h := 2; h <= 8; h++ {
		c, _, err := RingChain(h, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := (1 << h) - 1 + 2
		if c.NumStates() != want {
			t.Errorf("ring h=%d: states=%d, want %d", h, c.NumStates(), want)
		}
	}
}

// TestDOTEscaping: titles and state names containing quotes, backslashes
// and newlines must render through Go's %q escaping into valid DOT string
// literals, never raw.
func TestDOTEscaping(t *testing.T) {
	var b Builder
	s0 := b.AddState(`state "zero"`)
	s1 := b.AddState("line\nbreak")
	s2 := b.AddState(`back\slash`)
	b.AddEdge(s0, s1, 0.5)
	b.AddEdge(s0, s2, 0.5)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dot := c.DOT(`a "quoted" title`)

	if !strings.Contains(dot, `label="a \"quoted\" title";`) {
		t.Errorf("title quotes not escaped:\n%s", dot)
	}
	if !strings.Contains(dot, `label="state \"zero\""`) {
		t.Errorf("state-name quotes not escaped:\n%s", dot)
	}
	if !strings.Contains(dot, `label="line\nbreak"`) {
		t.Errorf("newline not escaped:\n%s", dot)
	}
	if !strings.Contains(dot, `label="back\\slash"`) {
		t.Errorf("backslash not escaped:\n%s", dot)
	}
	// No raw (unescaped) newline may survive inside any label attribute:
	// every line of the output must be a complete statement.
	for _, line := range strings.Split(strings.TrimSuffix(dot, "\n"), "\n") {
		if strings.Count(line, `"`)%2 != 0 {
			t.Errorf("line with unbalanced quotes (raw newline leaked into a label): %q", line)
		}
	}
}

// TestDOTEmptyTitle: an empty title omits the label line entirely.
func TestDOTEmptyTitle(t *testing.T) {
	var b Builder
	b.AddState("only")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dot := c.DOT("")
	if strings.Contains(dot, "label=") && strings.Contains(strings.SplitN(dot, "\n", 2)[1], "  label=") {
		t.Errorf("empty title still rendered a graph label:\n%s", dot)
	}
	if !strings.Contains(dot, `n0 [label="only", shape=doublecircle];`) {
		t.Errorf("missing absorbing singleton node:\n%s", dot)
	}
}
