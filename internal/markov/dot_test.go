package markov

import (
	"strings"
	"testing"
)

func TestDOTStructure(t *testing.T) {
	c, ep, err := TreeChain(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	dot := c.DOT("tree h=3")
	if !strings.HasPrefix(dot, "digraph chain {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("malformed DOT:\n%s", dot)
	}
	if !strings.Contains(dot, `label="tree h=3"`) {
		t.Errorf("missing title:\n%s", dot)
	}
	// Absorbing states (S3, F) rendered as double circles.
	if got := strings.Count(dot, "doublecircle"); got != 2 {
		t.Errorf("doublecircle count = %d, want 2", got)
	}
	// Edge count: 3 transient states × 2 edges each.
	if got := strings.Count(dot, "->"); got != 6 {
		t.Errorf("edge count = %d, want 6", got)
	}
	if !strings.Contains(dot, `"0.75"`) {
		t.Errorf("missing 1-q edge label:\n%s", dot)
	}
	_ = ep
}

func TestDOTDeterministic(t *testing.T) {
	c1, _, err := XORChain(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := XORChain(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if c1.DOT("x") != c2.DOT("x") {
		t.Error("DOT output not deterministic")
	}
}

func TestDOTNoTitle(t *testing.T) {
	c, _, err := TreeChain(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.DOT(""), "label=\"\"") {
		t.Error("empty title rendered")
	}
}

func TestSummary(t *testing.T) {
	c, _, err := TreeChain(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	for _, want := range []string{"states=5", "edges=6", "absorbing=[S3,F]", "0:2", "2:3"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestSummaryStateCounts(t *testing.T) {
	// XOR chain at h: Σ_{m=1..h} m + success + failure states.
	for h := 2; h <= 8; h++ {
		c, _, err := XORChain(h, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := h*(h+1)/2 + 2
		if c.NumStates() != want {
			t.Errorf("h=%d: states=%d, want %d", h, c.NumStates(), want)
		}
	}
	// Ring chain: 2^h − 1 + 2.
	for h := 2; h <= 8; h++ {
		c, _, err := RingChain(h, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := (1 << h) - 1 + 2
		if c.NumStates() != want {
			t.Errorf("ring h=%d: states=%d, want %d", h, c.NumStates(), want)
		}
	}
}
