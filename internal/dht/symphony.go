package dht

import (
	"rcm/overlay"
)

// Symphony is the small-world ring geometry (§3.5): each node keeps kn
// nearest clockwise neighbors plus ks long-range shortcuts whose clockwise
// distance follows the harmonic (∝ 1/distance) distribution. Routing is
// greedy clockwise without overshooting. With constant degree, an average
// of O(log N) hops passes each distance-halving phase, giving the protocol
// its O(log² N) expected path length.
type Symphony struct {
	space overlay.Space
	kn    int
	ks    int
	// table[x*deg ... (x+1)*deg) holds kn near links then ks shortcuts.
	table []overlay.ID
}

var (
	_ Protocol   = (*Symphony)(nil)
	_ Forwarder  = (*Symphony)(nil)
	_ Maintainer = (*Symphony)(nil)
)

// NewSymphony builds the overlay. kn and ks default to 1 (the paper's
// Fig. 7 configuration) when left zero in cfg.
func NewSymphony(cfg Config) (*Symphony, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	kn, ks := cfg.SymphonyNear, cfg.SymphonyShortcuts
	if kn <= 0 {
		kn = 1
	}
	if ks <= 0 {
		ks = 1
	}
	n := s.Size()
	deg := kn + ks
	rng := overlay.NewRNG(cfg.Seed ^ 0x73796d70686f6e79) // "symphony"
	table := make([]overlay.ID, int(n)*deg)
	for x := uint64(0); x < n; x++ {
		base := int(x) * deg
		for j := 1; j <= kn; j++ {
			table[base+j-1] = overlay.ID((x + uint64(j)) & (n - 1))
		}
		for j := 0; j < ks; j++ {
			dist := rng.Harmonic(n - 1)
			table[base+kn+j] = overlay.ID((x + dist) & (n - 1))
		}
	}
	return &Symphony{space: s, kn: kn, ks: ks, table: table}, nil
}

// Name implements Protocol.
func (sy *Symphony) Name() string { return "symphony" }

// GeometryName implements Protocol.
func (sy *Symphony) GeometryName() string { return "symphony" }

// Space implements Protocol.
func (sy *Symphony) Space() overlay.Space { return sy.space }

// Degree implements Protocol.
func (sy *Symphony) Degree() int { return sy.kn + sy.ks }

// NearNeighbors returns kn.
func (sy *Symphony) NearNeighbors() int { return sy.kn }

// Shortcuts returns ks.
func (sy *Symphony) Shortcuts() int { return sy.ks }

// Route implements Protocol: greedy clockwise over alive links without
// overshooting; fail when no alive link makes progress.
func (sy *Symphony) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	deg := sy.Degree()
	cur := src
	hops := 0
	for maxHops := hopCap(sy.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		remaining := sy.space.RingDist(cur, dst)
		var best overlay.ID
		bestRemaining := remaining
		found := false
		base := int(cur) * deg
		for i := 0; i < deg; i++ {
			l := sy.table[base+i]
			if sy.space.RingDist(cur, l) > remaining {
				continue
			}
			if !alive.Get(int(l)) {
				continue
			}
			if nr := sy.space.RingDist(l, dst); nr < bestRemaining {
				bestRemaining = nr
				best = l
				found = true
			}
		}
		if !found {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// AppendCandidateHops implements Forwarder: the non-overshooting links of
// x, deduplicated, ordered by resulting clockwise distance to dst (ties
// keep link order) — the first alive candidate is Route's greedy choice.
func (sy *Symphony) AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID {
	remaining := sy.space.RingDist(x, dst)
	if remaining == 0 {
		return buf
	}
	deg := sy.Degree()
	start := len(buf)
	base := int(x) * deg
outer:
	for i := 0; i < deg; i++ {
		l := sy.table[base+i]
		if l == x || sy.space.RingDist(x, l) > remaining {
			continue
		}
		for _, prev := range buf[start:] {
			if prev == l {
				continue outer
			}
		}
		nr := sy.space.RingDist(l, dst)
		buf = append(buf, l)
		j := len(buf) - 1
		for j > start && sy.space.RingDist(buf[j-1], dst) > nr {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = l
	}
	return buf
}

// Join implements Maintainer: a (re)joining node re-draws its ks shortcuts
// toward alive nodes (near links are structural), returning the modeled
// message cost.
func (sy *Symphony) Join(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	n := sy.space.Size()
	base := int(x) * sy.Degree()
	cost := 0
	for j := 0; j < sy.ks; j++ {
		id, attempts := drawAliveCost(alive, func() overlay.ID {
			return overlay.ID((uint64(x) + rng.Harmonic(n-1)) & (n - 1))
		})
		sy.table[base+sy.kn+j] = id
		cost += probeCost(attempts)
	}
	return cost
}

// Stabilize implements Maintainer: one periodic round re-draws a single
// uniformly-chosen shortcut from the harmonic distribution.
func (sy *Symphony) Stabilize(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	n := sy.space.Size()
	j := rng.Intn(sy.ks)
	id, attempts := drawAliveCost(alive, func() overlay.ID {
		return overlay.ID((uint64(x) + rng.Harmonic(n-1)) & (n - 1))
	})
	sy.table[int(x)*sy.Degree()+sy.kn+j] = id
	return probeCost(attempts)
}

// ResampleNode implements Resampler: re-draws x's shortcuts from the
// harmonic distribution (near links are structural and stay), preferring
// alive candidates. Not safe concurrently with Route.
func (sy *Symphony) ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) {
	n := sy.space.Size()
	base := int(x) * sy.Degree()
	for j := 0; j < sy.ks; j++ {
		sy.table[base+sy.kn+j] = drawAlive(alive, func() overlay.ID {
			return overlay.ID((uint64(x) + rng.Harmonic(n-1)) & (n - 1))
		})
	}
}

// Neighbors implements Protocol.
func (sy *Symphony) Neighbors(x overlay.ID) []overlay.ID {
	deg := sy.Degree()
	out := make([]overlay.ID, deg)
	copy(out, sy.table[int(x)*deg:int(x)*deg+deg])
	return out
}
