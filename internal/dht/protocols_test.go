package dht

import (
	"testing"

	"rcm/overlay"
)

// Protocol-specific structural invariants.

func TestPlaxtonNeighborLevels(t *testing.T) {
	p, err := NewPlaxton(Config{Bits: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	rng := overlay.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		x := overlay.ID(rng.Uint64n(s.Size()))
		nbs := p.Neighbors(x)
		for i := 1; i <= s.Bits(); i++ {
			nb := nbs[i-1]
			// Level-i neighbor: shares exactly i−1 leading bits (differs at i).
			if got := s.FirstDifferingBit(x, nb); got != i {
				t.Fatalf("node %s level %d neighbor %s: first differing bit %d",
					s.String(x), i, s.String(nb), got)
			}
		}
	}
}

func TestPlaxtonFailsWhenLevelNeighborDead(t *testing.T) {
	p, err := NewPlaxton(Config{Bits: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	src, dst := overlay.ID(0), overlay.ID(0b1000_0000)
	alive := allAlive(s)
	// Kill the unique level-1 neighbor of src: the route must fail (no
	// fallback in the tree geometry).
	lvl1 := p.Neighbors(src)[0]
	if lvl1 == dst {
		t.Skip("random tail landed on dst; level-1 neighbor is the target")
	}
	alive.Clear(int(lvl1))
	if _, ok := p.Route(src, dst, alive); ok {
		t.Error("tree route succeeded despite dead level-1 neighbor")
	}
}

func TestHypercubeNeighborsAreHammingOne(t *testing.T) {
	p, err := NewHypercubeCAN(Config{Bits: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	for _, x := range []overlay.ID{0, 1, 100, 511} {
		for _, nb := range p.Neighbors(x) {
			if s.HammingDist(x, nb) != 1 {
				t.Errorf("neighbor %s of %s at Hamming distance %d",
					s.String(nb), s.String(x), s.HammingDist(x, nb))
			}
		}
	}
}

func TestHypercubeHopsEqualHammingDistance(t *testing.T) {
	p, err := NewHypercubeCAN(Config{Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	alive := allAlive(s)
	rng := overlay.NewRNG(3)
	for trial := 0; trial < 500; trial++ {
		src := overlay.ID(rng.Uint64n(s.Size()))
		dst := overlay.ID(rng.Uint64n(s.Size()))
		hops, ok := p.Route(src, dst, alive)
		if !ok {
			t.Fatal("route failed with all alive")
		}
		if want := s.HammingDist(src, dst); hops != want {
			t.Fatalf("route %s->%s took %d hops, Hamming distance %d",
				s.String(src), s.String(dst), hops, want)
		}
	}
}

func TestHypercubeTwoNodeReachability(t *testing.T) {
	// With only src and dst alive, routing succeeds iff Hamming distance 1.
	p, err := NewHypercubeCAN(Config{Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	src := overlay.ID(0)
	for dst := overlay.ID(1); uint64(dst) < s.Size(); dst++ {
		alive := overlay.NewBitset(int(s.Size()))
		alive.Set(int(src))
		alive.Set(int(dst))
		_, ok := p.Route(src, dst, alive)
		want := s.HammingDist(src, dst) == 1
		if ok != want {
			t.Errorf("dst=%s: routed=%v, want %v", s.String(dst), ok, want)
		}
	}
}

func TestKademliaBucketStructure(t *testing.T) {
	k, err := NewKademlia(Config{Bits: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := k.Space()
	rng := overlay.NewRNG(13)
	for trial := 0; trial < 200; trial++ {
		x := overlay.ID(rng.Uint64n(s.Size()))
		for i, nb := range k.Neighbors(x) {
			// Bucket i+1 contact lies at XOR distance [2^{d-i-1}, 2^{d-i}).
			dist := s.XORDist(x, nb)
			lo := uint64(1) << uint(s.Bits()-i-1)
			if dist < lo || dist >= lo<<1 {
				t.Fatalf("node %s bucket %d contact %s at XOR distance %d, want [%d,%d)",
					s.String(x), i+1, s.String(nb), dist, lo, lo<<1)
			}
		}
	}
}

func TestKademliaFallbackBeatsTree(t *testing.T) {
	// Same failure pattern, same seed-aligned construction: whenever the
	// tree route survives, XOR greedy routing must also survive (it can use
	// the identical highest-order contact chain), and it must additionally
	// survive some patterns the tree cannot. Statistical check at q=0.3.
	const bits = 12
	kad, err := NewKademlia(Config{Bits: bits, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewPlaxton(Config{Bits: bits, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := kad.Space()
	rng := overlay.NewRNG(17)
	alive := overlay.NewBitset(int(s.Size()))
	alive.FillRandomAlive(0.3, rng)
	kadOK, treeOK := 0, 0
	const pairs = 4000
	for trial := 0; trial < pairs; trial++ {
		src := overlay.ID(rng.Uint64n(s.Size()))
		dst := overlay.ID(rng.Uint64n(s.Size()))
		if src == dst || !alive.Get(int(src)) || !alive.Get(int(dst)) {
			continue
		}
		if _, ok := kad.Route(src, dst, alive); ok {
			kadOK++
		}
		if _, ok := tree.Route(src, dst, alive); ok {
			treeOK++
		}
	}
	if kadOK <= treeOK {
		t.Errorf("kademlia survived %d routes, tree %d: fallback should help", kadOK, treeOK)
	}
}

func TestChordFingerDistances(t *testing.T) {
	c, err := NewChord(Config{Bits: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space()
	rng := overlay.NewRNG(19)
	for trial := 0; trial < 200; trial++ {
		x := overlay.ID(rng.Uint64n(s.Size()))
		for i, f := range c.Neighbors(x) {
			dist := s.RingDist(x, f)
			lo := uint64(1) << uint(i)
			if dist < lo || dist >= lo<<1 {
				t.Fatalf("node %d finger %d at distance %d, want [%d,%d)", x, i+1, dist, lo, lo<<1)
			}
		}
	}
}

func TestChordFingerOneIsSuccessor(t *testing.T) {
	c, err := NewChord(Config{Bits: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space()
	for x := overlay.ID(0); uint64(x) < s.Size(); x++ {
		if f := c.Neighbors(x)[0]; s.RingDist(x, f) != 1 {
			t.Fatalf("node %d finger 1 = %d, not the successor", x, f)
		}
	}
}

func TestChordSuccessorOnlyWalk(t *testing.T) {
	// With all fingers dead except successors, greedy routing degenerates
	// to a ring walk: hops == ring distance.
	c, err := NewChord(Config{Bits: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space()
	// Build an alive set containing a contiguous arc from src to dst so
	// only successor hops survive: kill everything outside the arc.
	src, dst := overlay.ID(10), overlay.ID(20)
	alive := overlay.NewBitset(int(s.Size()))
	for v := uint64(10); v <= 20; v++ {
		alive.Set(int(v))
	}
	hops, ok := c.Route(src, dst, alive)
	if !ok {
		t.Fatal("arc walk failed")
	}
	// Fingers within the arc may shortcut; hops must be between 1 and 10.
	if hops < 1 || hops > 10 {
		t.Errorf("arc walk hops = %d, want within [1,10]", hops)
	}
}

func TestChordNoOvershoot(t *testing.T) {
	// Greedy must never pass the destination: route from x to x+1 with all
	// alive always takes exactly 1 hop (the successor), never wrapping.
	c, err := NewChord(Config{Bits: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space()
	alive := allAlive(s)
	for x := uint64(0); x < 64; x++ {
		src := overlay.ID(x)
		dst := overlay.ID((x + 1) & (s.Size() - 1))
		hops, ok := c.Route(src, dst, alive)
		if !ok || hops != 1 {
			t.Fatalf("route to successor = (%d, %v), want (1, true)", hops, ok)
		}
	}
}

func TestSymphonyLinkStructure(t *testing.T) {
	sy, err := NewSymphony(Config{Bits: 12, Seed: 5, SymphonyNear: 2, SymphonyShortcuts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sy.NearNeighbors() != 2 || sy.Shortcuts() != 3 || sy.Degree() != 5 {
		t.Fatalf("kn=%d ks=%d degree=%d", sy.NearNeighbors(), sy.Shortcuts(), sy.Degree())
	}
	s := sy.Space()
	for _, x := range []overlay.ID{0, 77, 4095} {
		nbs := sy.Neighbors(x)
		// First kn links are consecutive successors.
		for j := 0; j < 2; j++ {
			if got := s.RingDist(x, nbs[j]); got != uint64(j+1) {
				t.Errorf("node %d near link %d at distance %d, want %d", x, j, got, j+1)
			}
		}
		// Shortcuts stay within the ring.
		for j := 2; j < 5; j++ {
			if d := s.RingDist(x, nbs[j]); d < 1 || d > s.Size()-1 {
				t.Errorf("node %d shortcut at distance %d", x, d)
			}
		}
	}
}

func TestSymphonyDefaultsKnKs(t *testing.T) {
	sy, err := NewSymphony(Config{Bits: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sy.NearNeighbors() != 1 || sy.Shortcuts() != 1 {
		t.Errorf("defaults kn=%d ks=%d, want 1,1", sy.NearNeighbors(), sy.Shortcuts())
	}
}

func TestSymphonyShortcutHarmonicShape(t *testing.T) {
	// Shortcut distances follow p(l) ∝ 1/l: about half the mass below
	// sqrt(N). Aggregate over all nodes of a 2^12 overlay.
	sy, err := NewSymphony(Config{Bits: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := sy.Space()
	low, total := 0, 0
	for x := uint64(0); x < s.Size(); x++ {
		nbs := sy.Neighbors(overlay.ID(x))
		dist := s.RingDist(overlay.ID(x), nbs[len(nbs)-1])
		if dist < 64 { // sqrt(4096)
			low++
		}
		total++
	}
	frac := float64(low) / float64(total)
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("harmonic shortcut mass below sqrt(N) = %.3f, want ~0.5", frac)
	}
}

func TestSymphonyRouteDegradesGracefully(t *testing.T) {
	// Greedy routing over the ring with only near links (all shortcuts
	// dead would need distinct kill sets; instead verify a pure ring walk
	// bound): route between nodes 0 and 5 with only the arc alive.
	sy, err := NewSymphony(Config{Bits: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := sy.Space()
	alive := overlay.NewBitset(int(s.Size()))
	for v := 0; v <= 5; v++ {
		alive.Set(v)
	}
	hops, ok := sy.Route(0, 5, alive)
	if !ok {
		t.Fatal("arc walk failed")
	}
	if hops < 1 || hops > 5 {
		t.Errorf("arc walk hops = %d, want within [1,5]", hops)
	}
}
