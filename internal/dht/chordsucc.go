package dht

import (
	"fmt"

	"rcm/overlay"
)

// ChordWithSuccessors is Chord extended with a successor list — the
// standard fault-tolerance option the paper's §1 points at: "the designer
// can always add enough sequential neighbors to achieve an acceptable
// routability ... for a maximum network size". Each node keeps its d
// randomized fingers plus the s nodes immediately following it on the ring.
// Routing is the same greedy-without-overshoot rule over the union.
//
// With s = 1 this is exactly Chord (finger 1 is already the successor).
type ChordWithSuccessors struct {
	space      overlay.Space
	successors int
	// table[x*deg ... (x+1)*deg) holds s successors then d fingers.
	table []overlay.ID
}

var _ Protocol = (*ChordWithSuccessors)(nil)

// NewChordWithSuccessors builds the overlay with s >= 1 sequential
// neighbors per node.
func NewChordWithSuccessors(cfg Config, s int) (*ChordWithSuccessors, error) {
	sp, err := space(cfg)
	if err != nil {
		return nil, err
	}
	if s < 1 || uint64(s) >= sp.Size() {
		return nil, fmt.Errorf("dht: successor list length %d out of range [1, %d)", s, sp.Size())
	}
	d := sp.Bits()
	n := sp.Size()
	deg := s + d
	rng := overlay.NewRNG(cfg.Seed ^ 0x63686f72647363) // "chordsc"
	table := make([]overlay.ID, int(n)*deg)
	for x := uint64(0); x < n; x++ {
		base := int(x) * deg
		for j := 1; j <= s; j++ {
			table[base+j-1] = overlay.ID((x + uint64(j)) & (n - 1))
		}
		for i := 1; i <= d; i++ {
			lo := uint64(1) << uint(i-1)
			dist := lo + rng.Uint64n(lo)
			table[base+s+i-1] = overlay.ID((x + dist) & (n - 1))
		}
	}
	return &ChordWithSuccessors{space: sp, successors: s, table: table}, nil
}

// Name implements Protocol.
func (c *ChordWithSuccessors) Name() string { return "chord+succ" }

// GeometryName implements Protocol.
func (c *ChordWithSuccessors) GeometryName() string { return "ring" }

// Space implements Protocol.
func (c *ChordWithSuccessors) Space() overlay.Space { return c.space }

// Degree implements Protocol.
func (c *ChordWithSuccessors) Degree() int { return c.successors + c.space.Bits() }

// Successors returns the successor-list length s.
func (c *ChordWithSuccessors) Successors() int { return c.successors }

// Route implements Protocol: greedy clockwise over alive successors and
// fingers without overshooting.
func (c *ChordWithSuccessors) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	deg := c.Degree()
	cur := src
	hops := 0
	for maxHops := hopCap(c.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		remaining := c.space.RingDist(cur, dst)
		var best overlay.ID
		bestRemaining := remaining
		found := false
		base := int(cur) * deg
		for i := 0; i < deg; i++ {
			f := c.table[base+i]
			if c.space.RingDist(cur, f) > remaining {
				continue
			}
			if !alive.Get(int(f)) {
				continue
			}
			if nr := c.space.RingDist(f, dst); nr < bestRemaining {
				bestRemaining = nr
				best = f
				found = true
			}
		}
		if !found {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// Neighbors implements Protocol.
func (c *ChordWithSuccessors) Neighbors(x overlay.ID) []overlay.ID {
	deg := c.Degree()
	out := make([]overlay.ID, deg)
	copy(out, c.table[int(x)*deg:int(x)*deg+deg])
	return out
}

// ResampleNode implements Resampler: re-draws the randomized fingers
// (successors are structural). Not safe concurrently with Route.
func (c *ChordWithSuccessors) ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) {
	d := c.space.Bits()
	n := c.space.Size()
	base := int(x)*c.Degree() + c.successors
	for i := 1; i <= d; i++ {
		lo := uint64(1) << uint(i-1)
		c.table[base+i-1] = drawAlive(alive, func() overlay.ID {
			return overlay.ID((uint64(x) + lo + rng.Uint64n(lo)) & (n - 1))
		})
	}
}
