package dht

import (
	"testing"
	"testing/quick"

	"rcm/overlay"
)

// Property-based tests (testing/quick) over random failure patterns and
// random pairs: structural invariants every protocol must uphold.

func TestRouteNeverExceedsHopCap(t *testing.T) {
	for _, name := range ProtocolNames() {
		p, err := New(name, Config{Bits: 9, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Space()
		capHops := int(s.Size()) + 1
		f := func(seed uint64, a, b uint16) bool {
			alive := overlay.NewBitset(int(s.Size()))
			alive.FillRandomAlive(0.4, overlay.NewRNG(seed))
			src := overlay.ID(uint64(a) & (s.Size() - 1))
			dst := overlay.ID(uint64(b) & (s.Size() - 1))
			alive.Set(int(src))
			alive.Set(int(dst))
			hops, _ := p.Route(src, dst, alive)
			return hops >= 0 && hops <= capHops
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRouteSuccessIsExactlyReachingDst(t *testing.T) {
	// ok == true ⇔ zero remaining distance: a route reporting success from
	// src==dst must take 0 hops, and distinct alive pairs must take >= 1.
	for _, name := range ProtocolNames() {
		p, err := New(name, Config{Bits: 9, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Space()
		f := func(seed uint64, a, b uint16) bool {
			alive := overlay.NewBitset(int(s.Size()))
			alive.FillRandomAlive(0.3, overlay.NewRNG(seed))
			src := overlay.ID(uint64(a) & (s.Size() - 1))
			dst := overlay.ID(uint64(b) & (s.Size() - 1))
			alive.Set(int(src))
			alive.Set(int(dst))
			hops, ok := p.Route(src, dst, alive)
			if src == dst {
				return ok && hops == 0
			}
			return !ok || hops >= 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMoreFailuresNeverHelpOnAverage(t *testing.T) {
	// Coupling property: for nested failure sets (kill set A ⊂ B), routes
	// that survive B's failures form a subset in expectation. Checked
	// statistically: success count under heavier failure never exceeds the
	// lighter one by more than noise.
	for _, name := range ProtocolNames() {
		p, err := New(name, Config{Bits: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Space()
		n := int(s.Size())
		rng := overlay.NewRNG(41)
		light := overlay.NewBitset(n)
		heavy := overlay.NewBitset(n)
		light.SetAll()
		heavy.SetAll()
		// Nested kills: heavy kills everything light kills plus more.
		for i := 0; i < n; i++ {
			u := rng.Float64()
			if u < 0.2 {
				light.Clear(i)
				heavy.Clear(i)
			} else if u < 0.45 {
				heavy.Clear(i)
			}
		}
		okLight, okHeavy := 0, 0
		pairRNG := overlay.NewRNG(43)
		for trial := 0; trial < 3000; trial++ {
			src := overlay.ID(pairRNG.Uint64n(s.Size()))
			dst := overlay.ID(pairRNG.Uint64n(s.Size()))
			if src == dst || !heavy.Get(int(src)) || !heavy.Get(int(dst)) {
				continue
			}
			if _, ok := p.Route(src, dst, light); ok {
				okLight++
			}
			if _, ok := p.Route(src, dst, heavy); ok {
				okHeavy++
			}
		}
		if okHeavy > okLight {
			t.Errorf("%s: heavier failures helped: %d > %d", name, okHeavy, okLight)
		}
	}
}

func TestGreedyRoutesAreLoopFree(t *testing.T) {
	// Strict-progress protocols can never revisit a node. Track visited
	// sets by re-walking the route via the same greedy rules, using hops as
	// the budget: if the route claims success in k hops, walking k steps
	// must reach dst without revisits. Verified indirectly: success hop
	// counts are bounded by the number of alive nodes.
	for _, name := range ProtocolNames() {
		p, err := New(name, Config{Bits: 9, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Space()
		alive := overlay.NewBitset(int(s.Size()))
		alive.FillRandomAlive(0.3, overlay.NewRNG(47))
		rng := overlay.NewRNG(53)
		for trial := 0; trial < 1500; trial++ {
			src := overlay.ID(rng.Uint64n(s.Size()))
			dst := overlay.ID(rng.Uint64n(s.Size()))
			alive.Set(int(src))
			alive.Set(int(dst))
			hops, ok := p.Route(src, dst, alive)
			if ok && hops > alive.Count() {
				t.Fatalf("%s: %d hops exceed %d alive nodes — a loop", name, hops, alive.Count())
			}
		}
	}
}

func TestResamplePreservesStructuralInvariants(t *testing.T) {
	// After repair, table entries must still satisfy each protocol's
	// structural constraints.
	alive := overlay.NewBitset(1 << 10)
	alive.FillRandomAlive(0.3, overlay.NewRNG(59))
	rng := overlay.NewRNG(61)

	pl, err := NewPlaxton(Config{Bits: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := pl.Space()
	for x := overlay.ID(0); x < 50; x++ {
		pl.ResampleNode(x, alive, rng)
		for i, nb := range pl.Neighbors(x) {
			if got := s.FirstDifferingBit(x, nb); got != i+1 {
				t.Fatalf("plaxton resample broke level %d: differs at %d", i+1, got)
			}
		}
	}

	ch, err := NewChord(Config{Bits: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for x := overlay.ID(0); x < 50; x++ {
		ch.ResampleNode(x, alive, rng)
		for i, f := range ch.Neighbors(x) {
			dist := s.RingDist(x, f)
			lo := uint64(1) << uint(i)
			if dist < lo || dist >= lo<<1 {
				t.Fatalf("chord resample broke finger %d: distance %d", i+1, dist)
			}
		}
	}

	sy, err := NewSymphony(Config{Bits: 10, Seed: 3, SymphonyNear: 2, SymphonyShortcuts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for x := overlay.ID(0); x < 50; x++ {
		sy.ResampleNode(x, alive, rng)
		nbs := sy.Neighbors(x)
		for j := 0; j < 2; j++ {
			if s.RingDist(x, nbs[j]) != uint64(j+1) {
				t.Fatalf("symphony resample broke near link %d", j)
			}
		}
	}
}

func TestResamplePrefersAliveCandidates(t *testing.T) {
	// With plenty of alive candidates per slot, repaired entries should be
	// overwhelmingly alive (each slot retries up to resampleAttempts).
	k, err := NewKademlia(Config{Bits: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	alive := overlay.NewBitset(1 << 12)
	alive.FillRandomAlive(0.5, overlay.NewRNG(67))
	rng := overlay.NewRNG(71)
	total, aliveCount := 0, 0
	for x := overlay.ID(0); x < 200; x++ {
		k.ResampleNode(x, alive, rng)
		// High-order buckets have huge candidate sets; the last bucket has
		// exactly one candidate. Check the first 8 buckets.
		for _, nb := range k.Neighbors(x)[:8] {
			total++
			if alive.Get(int(nb)) {
				aliveCount++
			}
		}
	}
	if frac := float64(aliveCount) / float64(total); frac < 0.95 {
		t.Errorf("repaired contacts alive fraction %v, want ~1 given retries", frac)
	}
}
