package dht

import (
	"testing"
	"testing/quick"

	"rcm/overlay"
)

// Property-based tests for the Forwarder capability of all five registry
// protocols: candidate lists must be non-empty and acyclic, every
// candidate must make strict progress under the protocol's ID-space
// distance metric (so routes never move away from the target and retry
// chains terminate), the first-alive-candidate walk must replay Route's
// global-knowledge greedy walk exactly, and failure-free hop counts must
// respect each protocol's analytic bound. Each property runs both under
// testing/quick's randomized seeds and over a fixed-seed regression
// corpus of (bits, seed) overlays, so a regression reproduces exactly.

// forwarderCorpus is the fixed-seed regression corpus: overlay sizes and
// construction seeds replayed deterministically on every test run.
var forwarderCorpus = []struct {
	bits int
	seed uint64
}{
	{6, 1}, {7, 101}, {8, 3}, {9, 7}, {10, 11},
}

// forwarderProtocols enumerates the five built-ins by registry name.
var forwarderProtocols = []string{"plaxton", "can", "kademlia", "chord", "symphony"}

// routeMetric returns the protocol's ID-space distance to the target —
// the quantity the Forwarder contract requires every candidate to
// strictly decrease.
func routeMetric(p Protocol) func(a, b overlay.ID) uint64 {
	s := p.Space()
	switch p.GeometryName() {
	case "ring", "symphony":
		return func(a, b overlay.ID) uint64 { return s.RingDist(a, b) }
	case "xor":
		return func(a, b overlay.ID) uint64 { return s.XORDist(a, b) }
	case "hypercube":
		return func(a, b overlay.ID) uint64 { return uint64(s.HammingDist(a, b)) }
	case "tree":
		// Leftmost-differing-bit depth: correcting digit i moves the
		// first differing bit right, shrinking d+1-i monotonically.
		return func(a, b overlay.ID) uint64 {
			i := s.FirstDifferingBit(a, b)
			if i == 0 {
				return 0
			}
			return uint64(s.Bits() + 1 - i)
		}
	default:
		return nil
	}
}

func mustForwarder(t *testing.T, name string, bits int, seed uint64) (Protocol, Forwarder) {
	t.Helper()
	p, err := New(name, Config{Bits: bits, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	fwd, ok := p.(Forwarder)
	if !ok {
		t.Fatalf("%s does not implement Forwarder", name)
	}
	return p, fwd
}

// checkCandidates verifies the candidate-list invariants at one (x, dst)
// pair: non-empty, no self, no duplicates (acyclic), strict progress.
func checkCandidates(t *testing.T, name string, p Protocol, fwd Forwarder, x, dst overlay.ID) bool {
	t.Helper()
	metric := routeMetric(p)
	cands := fwd.AppendCandidateHops(nil, x, dst)
	if x == dst {
		if len(cands) != 0 {
			t.Errorf("%s: candidates at x==dst: %v", name, cands)
			return false
		}
		return true
	}
	if len(cands) == 0 {
		t.Errorf("%s: empty candidate list for x=%d dst=%d on a full population", name, x, dst)
		return false
	}
	cur := metric(x, dst)
	seen := map[overlay.ID]bool{}
	for _, c := range cands {
		if c == x {
			t.Errorf("%s: candidate list for x=%d contains x itself", name, x)
			return false
		}
		if seen[c] {
			t.Errorf("%s: candidate list for x=%d dst=%d has duplicate %d", name, x, dst, c)
			return false
		}
		seen[c] = true
		if got := metric(c, dst); got >= cur {
			t.Errorf("%s: candidate %d does not make strict progress: metric %d -> %d (x=%d dst=%d)",
				name, c, cur, got, x, dst)
			return false
		}
	}
	return true
}

// TestForwarderCandidateInvariants runs the candidate-list invariants over
// the fixed corpus plus randomized pairs per overlay.
func TestForwarderCandidateInvariants(t *testing.T) {
	for _, name := range forwarderProtocols {
		for _, c := range forwarderCorpus {
			p, fwd := mustForwarder(t, name, c.bits, c.seed)
			size := p.Space().Size()
			rng := overlay.NewRNG(c.seed ^ 0xF0F0)
			for trial := 0; trial < 300; trial++ {
				x := overlay.ID(rng.Uint64n(size))
				dst := overlay.ID(rng.Uint64n(size))
				if !checkCandidates(t, name, p, fwd, x, dst) {
					return
				}
			}
		}
	}
}

// firstAliveWalk replays the event engine's forwarding discipline with an
// oracle alive set: at each hop take the first alive candidate; fail when
// none is alive. Returns hops and success, plus whether the walk stayed
// monotone and loop-free (it must, by the strict-progress invariant).
func firstAliveWalk(p Protocol, fwd Forwarder, src, dst overlay.ID, alive *overlay.Bitset) (hops int, ok, sound bool) {
	metric := routeMetric(p)
	cur := src
	last := metric(src, dst)
	var buf []overlay.ID
	for n := int(p.Space().Size()); hops <= n; hops++ {
		if cur == dst {
			return hops, true, true
		}
		buf = fwd.AppendCandidateHops(buf[:0], cur, dst)
		next := overlay.ID(0)
		found := false
		for _, c := range buf {
			if alive.Get(int(c)) {
				next = c
				found = true
				break
			}
		}
		if !found {
			return hops, false, true
		}
		d := metric(next, dst)
		if d >= last || next == cur {
			return hops, false, false // moved away or looped: unsound
		}
		last = d
		cur = next
	}
	return hops, false, false // exceeded population size: a loop
}

// TestFirstAliveWalkReplaysRoute is the Forwarder contract from the
// registry documentation, enforced exhaustively: against any alive set,
// hop-by-hop forwarding through the first alive candidate must reproduce
// Route's global-knowledge greedy walk — same outcome, same hop count —
// while never increasing the ID-space distance to the target.
func TestFirstAliveWalkReplaysRoute(t *testing.T) {
	for _, name := range forwarderProtocols {
		// Randomized overlays and alive patterns (quick), plus the corpus.
		p, fwd := mustForwarder(t, name, 9, 3)
		size := p.Space().Size()
		f := func(seed uint64, a, b uint16, qSel uint8) bool {
			alive := overlay.NewBitset(int(size))
			q := 0.1 + 0.8*float64(qSel)/255
			alive.FillRandomAlive(1-q, overlay.NewRNG(seed))
			src := overlay.ID(uint64(a) & (size - 1))
			dst := overlay.ID(uint64(b) & (size - 1))
			alive.Set(int(src))
			alive.Set(int(dst))
			wHops, wOK, sound := firstAliveWalk(p, fwd, src, dst, alive)
			rHops, rOK := p.Route(src, dst, alive)
			return sound && wOK == rOK && (!wOK || wHops == rHops)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for _, c := range forwarderCorpus {
			p, fwd := mustForwarder(t, name, c.bits, c.seed)
			size := p.Space().Size()
			alive := overlay.NewBitset(int(size))
			alive.FillRandomAlive(0.7, overlay.NewRNG(c.seed*7919+1))
			rng := overlay.NewRNG(c.seed ^ 0xBEEF)
			for trial := 0; trial < 200; trial++ {
				src := overlay.ID(rng.Uint64n(size))
				dst := overlay.ID(rng.Uint64n(size))
				alive.Set(int(src))
				alive.Set(int(dst))
				wHops, wOK, sound := firstAliveWalk(p, fwd, src, dst, alive)
				rHops, rOK := p.Route(src, dst, alive)
				if !sound {
					t.Fatalf("%s bits=%d seed=%d: walk src=%d dst=%d increased distance or looped",
						name, c.bits, c.seed, src, dst)
				}
				if wOK != rOK || (wOK && wHops != rHops) {
					t.Fatalf("%s bits=%d seed=%d: walk (%d,%v) != Route (%d,%v) for src=%d dst=%d",
						name, c.bits, c.seed, wHops, wOK, rHops, rOK, src, dst)
				}
			}
		}
	}
}

// TestHopCountsRespectAnalyticBound checks failure-free routes against
// each protocol's analytic hop bound: on a full population, the four
// deterministic-progress geometries resolve one identifier digit (or
// halve the remaining ring distance) per hop, so hops never exceed
// MaxDistance(d) = d; Symphony's probabilistic routing has no d bound,
// but strict ring progress bounds its hops by the initial clockwise
// distance (and therefore by N − 1).
func TestHopCountsRespectAnalyticBound(t *testing.T) {
	for _, name := range forwarderProtocols {
		for _, c := range forwarderCorpus {
			p, fwd := mustForwarder(t, name, c.bits, c.seed)
			size := p.Space().Size()
			alive := overlay.NewBitset(int(size))
			alive.SetAll()
			rng := overlay.NewRNG(c.seed ^ 0xD15C)
			for trial := 0; trial < 200; trial++ {
				src := overlay.ID(rng.Uint64n(size))
				dst := overlay.ID(rng.Uint64n(size))
				hops, ok, sound := firstAliveWalk(p, fwd, src, dst, alive)
				if !ok || !sound {
					t.Fatalf("%s bits=%d: failure-free route src=%d dst=%d failed", name, c.bits, src, dst)
				}
				bound := c.bits
				if name == "symphony" {
					bound = int(p.Space().RingDist(src, dst))
				}
				if hops > bound {
					t.Fatalf("%s bits=%d: %d hops exceed the analytic bound %d (src=%d dst=%d)",
						name, c.bits, hops, bound, src, dst)
				}
			}
		}
	}
}
