package dht

import (
	"rcm/overlay"
)

// Plaxton is the tree routing geometry (§3.1): node x keeps one neighbor
// per prefix level, the i-th matching x's first i−1 bits, differing at bit
// i, with a uniformly random tail. Routing corrects the leftmost differing
// bit at every step; under failure there is no fallback — if the single
// neighbor that corrects the highest-order differing bit is dead, the
// message is dropped (Fig. 4(a)).
type Plaxton struct {
	space overlay.Space
	// table[x*d + (i-1)] is node x's level-i neighbor.
	table []overlay.ID
}

var (
	_ Protocol   = (*Plaxton)(nil)
	_ Forwarder  = (*Plaxton)(nil)
	_ Maintainer = (*Plaxton)(nil)
)

// NewPlaxton builds the overlay with randomized per-level neighbors.
func NewPlaxton(cfg Config) (*Plaxton, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	d := s.Bits()
	n := s.Size()
	rng := overlay.NewRNG(cfg.Seed ^ 0x706c6178746f6e) // "plaxton"
	table := make([]overlay.ID, int(n)*d)
	for x := uint64(0); x < n; x++ {
		id := overlay.ID(x)
		for i := 1; i <= d; i++ {
			// Flip bit i, then randomize everything to its right: a uniform
			// choice among the 2^{d-i} level-i candidates.
			table[int(x)*d+i-1] = s.RandomTail(s.FlipBit(id, i), i, rng)
		}
	}
	return &Plaxton{space: s, table: table}, nil
}

// Name implements Protocol.
func (p *Plaxton) Name() string { return "plaxton" }

// GeometryName implements Protocol.
func (p *Plaxton) GeometryName() string { return "tree" }

// Space implements Protocol.
func (p *Plaxton) Space() overlay.Space { return p.space }

// Degree implements Protocol.
func (p *Plaxton) Degree() int { return p.space.Bits() }

// Route implements Protocol. Each hop must correct the current leftmost
// differing bit; the unique neighbor able to do so being dead is fatal.
func (p *Plaxton) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := p.space.Bits()
	cur := src
	hops := 0
	for maxHops := hopCap(p.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		i := p.space.FirstDifferingBit(cur, dst)
		next := p.table[int(cur)*d+i-1]
		if !alive.Get(int(next)) {
			return hops, false
		}
		cur = next
		hops++
	}
	return hops, false
}

// AppendCandidateHops implements Forwarder: tree routing has exactly one
// legal next hop — the neighbor correcting the leftmost differing bit
// (Fig. 4(a)'s no-fallback property).
func (p *Plaxton) AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID {
	i := p.space.FirstDifferingBit(x, dst)
	if i == 0 {
		return buf
	}
	return append(buf, p.table[int(x)*p.space.Bits()+i-1])
}

// Join implements Maintainer: a (re)joining node rebuilds every per-level
// neighbor toward alive nodes, returning the modeled message cost.
func (p *Plaxton) Join(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	return prefixJoin(p.space, p.table, x, alive, rng)
}

// Stabilize implements Maintainer: one periodic round refreshes a single
// uniformly-chosen prefix level.
func (p *Plaxton) Stabilize(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	return prefixRefresh(p.space, p.table, x, 1+rng.Intn(p.space.Bits()), alive, rng)
}

// ResampleNode implements Resampler: re-draws every per-level neighbor of
// x, preferring alive candidates. Not safe concurrently with Route.
func (p *Plaxton) ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) {
	d := p.space.Bits()
	for i := 1; i <= d; i++ {
		i := i
		p.table[int(x)*d+i-1] = drawAlive(alive, func() overlay.ID {
			return p.space.RandomTail(p.space.FlipBit(x, i), i, rng)
		})
	}
}

// Neighbors implements Protocol.
func (p *Plaxton) Neighbors(x overlay.ID) []overlay.ID {
	d := p.space.Bits()
	out := make([]overlay.ID, d)
	copy(out, p.table[int(x)*d:int(x)*d+d])
	return out
}
