// Package dht implements the five DHT routing protocols analyzed in the
// paper — Plaxton tree (§3.1), CAN hypercube (§3.2), Kademlia XOR (§3.3),
// Chord ring (§3.4) and Symphony small-world (§3.5) — as concrete overlay
// networks over a fully-populated d-bit identifier space.
//
// These simulators are the substrate for the Gummadi-style static-resilience
// experiments that the paper validates against (Fig. 6): routing tables are
// built once, nodes fail independently with probability q, tables stay
// static, and routing is greedy with no back-tracking (§4.1 assumption 3).
// A route fails the moment the current node has no alive neighbor that makes
// progress toward the target.
package dht

import (
	"fmt"
	"strings"

	"rcm/internal/registry"
	"rcm/overlay"
)

// Protocol is a DHT overlay with static routing tables: the canonical
// interface defined in internal/registry and re-exported publicly as
// rcm.Protocol. Implementations are safe for concurrent Route calls once
// constructed (tables are read-only).
type Protocol = registry.Protocol

// Populated is implemented by overlays that occupy only part of their
// identifier space (the paper's §6 "non-fully-populated" future-work
// regime). Harnesses must sample sources and targets from Nodes rather than
// from the whole space.
type Populated interface {
	// Nodes returns the participating identifiers in ascending order. The
	// returned slice must not be modified.
	Nodes() []overlay.ID
}

// Forwarder is the per-hop candidate-enumeration capability used by the
// message-level event simulator (canonical definition in internal/registry,
// re-exported publicly as rcm/eventsim.Forwarder). All five built-in
// protocols implement it.
type Forwarder = registry.Forwarder

// Maintainer is the join/stabilize maintenance capability used by the
// event simulator (canonical definition in internal/registry). The four
// table-based protocols implement it; the hypercube's neighbor set is
// structural, so it has nothing to maintain.
type Maintainer = registry.Maintainer

// Resampler is implemented by overlays whose randomized table entries can
// be re-drawn in place — the repair step of the churn experiment (E11).
// Repair mimics a live node re-establishing connections: each entry is
// re-drawn until it lands on an alive node (bounded retries, since some
// table slots have a single legal candidate). A nil alive set disables the
// aliveness filter. ResampleNode is NOT safe to call concurrently with
// Route.
type Resampler interface {
	// ResampleNode re-draws node x's randomized routing-table entries,
	// preferring alive candidates.
	ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG)
}

// resampleAttempts bounds the retry loop when repairing a table entry: a
// slot whose candidate set is mostly dead keeps its final draw.
const resampleAttempts = 16

// drawAlive retries draw() until it returns an alive identifier, up to
// resampleAttempts times, returning the final draw regardless.
func drawAlive(alive *overlay.Bitset, draw func() overlay.ID) overlay.ID {
	id, _ := drawAliveCost(alive, draw)
	return id
}

// drawAliveCost is drawAlive, additionally reporting the number of draws
// performed — the probe count that Maintainer implementations charge as
// messages (each draw models one probe/response exchange, 2 messages).
func drawAliveCost(alive *overlay.Bitset, draw func() overlay.ID) (overlay.ID, int) {
	var id overlay.ID
	attempts := 0
	for attempts < resampleAttempts {
		id = draw()
		attempts++
		if alive == nil || alive.Get(int(id)) {
			break
		}
	}
	return id, attempts
}

// probeCost converts maintenance draw attempts to modeled messages: one
// probe and one response per attempted candidate.
func probeCost(attempts int) int { return 2 * attempts }

// prefixRefresh re-draws table entry i of node x in a prefix-corrected
// table (entry i flips bit i of x with a uniform random tail), preferring
// alive candidates, and returns the modeled message cost. Kademlia and
// Plaxton tables share this structure, so both protocols' Maintainer
// methods delegate here.
func prefixRefresh(s overlay.Space, tbl []overlay.ID, x overlay.ID, i int, alive *overlay.Bitset, rng *overlay.RNG) int {
	id, attempts := drawAliveCost(alive, func() overlay.ID {
		return s.RandomTail(s.FlipBit(x, i), i, rng)
	})
	tbl[int(x)*s.Bits()+i-1] = id
	return probeCost(attempts)
}

// prefixJoin is the full-table prefixRefresh: the Maintainer.Join body
// shared by Kademlia and Plaxton.
func prefixJoin(s overlay.Space, tbl []overlay.ID, x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	cost := 0
	for i := 1; i <= s.Bits(); i++ {
		cost += prefixRefresh(s, tbl, x, i, alive, rng)
	}
	return cost
}

// Config is the canonical overlay-construction configuration shared across
// the module (defined in internal/registry, re-exported publicly as
// rcm.Config).
type Config = registry.Config

// MaxSimBits caps overlay sizes: routing tables are O(N·d), so d=22 is
// roughly 350 MB of table and already far past the paper's N = 2^16.
const MaxSimBits = 22

func space(c Config) (overlay.Space, error) {
	if c.Bits < 1 || c.Bits > MaxSimBits {
		return overlay.Space{}, fmt.Errorf("dht: bits=%d out of range [1,%d]", c.Bits, MaxSimBits)
	}
	return overlay.NewSpace(c.Bits)
}

// The five paper protocols are ordinary registrants of the shared
// name-keyed registry, under the system names with the paper's geometry
// terms as aliases — mirroring the geometry registrations in internal/core.
func init() {
	wrap := func(f func(Config) (Protocol, error)) registry.ProtocolFactory {
		return registry.ProtocolFactory(f)
	}
	for _, reg := range []struct {
		name    string
		factory registry.ProtocolFactory
		aliases []string
	}{
		{"plaxton", wrap(asProtocol(NewPlaxton)), []string{"tree"}},
		{"can", wrap(asProtocol(NewHypercubeCAN)), []string{"hypercube"}},
		{"kademlia", wrap(asProtocol(NewKademlia)), []string{"xor"}},
		{"chord", wrap(asProtocol(NewChord)), []string{"ring"}},
		{"symphony", wrap(asProtocol(NewSymphony)), []string{"smallworld", "small-world"}},
		// Beyond the paper's five: the full-membership one-hop overlay,
		// registered under the same name as its geometry in internal/core.
		{"singlehop", wrap(asProtocol(NewSingleHop)), []string{"onehop", "d1ht"}},
	} {
		if err := registry.RegisterProtocol(reg.name, reg.factory, reg.aliases...); err != nil {
			panic(err) // static names; unreachable
		}
	}
}

// asProtocol adapts a concrete constructor to the registry factory
// signature without letting a typed nil pointer escape into the interface.
func asProtocol[P Protocol](f func(Config) (P, error)) func(Config) (Protocol, error) {
	return func(cfg Config) (Protocol, error) {
		p, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
}

// New constructs a protocol by name through the shared registry. Accepted
// names (case-insensitive) include both the system names and the paper's
// geometry terms — plaxton/tree, can/hypercube, kademlia/xor, chord/ring,
// symphony — plus anything registered through rcm.RegisterProtocol.
func New(name string, cfg Config) (Protocol, error) {
	e, ok := registry.LookupProtocol(name)
	if !ok {
		return nil, fmt.Errorf("dht: unknown protocol %q (have %s)", name, strings.Join(registry.ProtocolKeys(), ", "))
	}
	return e.New(cfg)
}

// ProtocolNames lists the canonical protocol names accepted by New in
// registration order: the paper's five in presentation order, then any
// user registrations.
func ProtocolNames() []string {
	return registry.ProtocolNames()
}

// hopCap bounds route lengths defensively. Every protocol here makes strict
// progress per hop, so the cap is unreachable in correct operation; it
// guards against latent bugs turning into infinite loops.
func hopCap(s overlay.Space) int {
	return int(s.Size()) + 1
}
