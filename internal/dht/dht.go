// Package dht implements the five DHT routing protocols analyzed in the
// paper — Plaxton tree (§3.1), CAN hypercube (§3.2), Kademlia XOR (§3.3),
// Chord ring (§3.4) and Symphony small-world (§3.5) — as concrete overlay
// networks over a fully-populated d-bit identifier space.
//
// These simulators are the substrate for the Gummadi-style static-resilience
// experiments that the paper validates against (Fig. 6): routing tables are
// built once, nodes fail independently with probability q, tables stay
// static, and routing is greedy with no back-tracking (§4.1 assumption 3).
// A route fails the moment the current node has no alive neighbor that makes
// progress toward the target.
package dht

import (
	"fmt"
	"strings"

	"rcm/internal/overlay"
)

// Protocol is a DHT overlay with static routing tables. Implementations are
// safe for concurrent Route calls once constructed (tables are read-only).
type Protocol interface {
	// Name returns the protocol name (e.g. "chord").
	Name() string
	// GeometryName returns the paper's geometry term for the protocol
	// (e.g. "ring" for Chord), linking simulators to analytic models.
	GeometryName() string
	// Space returns the identifier space the overlay populates.
	Space() overlay.Space
	// Degree returns the number of routing-table entries per node.
	Degree() int
	// Route attempts to deliver a message from src to dst using only alive
	// nodes. src and dst are assumed alive (the static-resilience harness
	// conditions on surviving pairs). It reports the number of hops taken
	// and whether the destination was reached.
	Route(src, dst overlay.ID, alive *overlay.Bitset) (hops int, ok bool)
	// Neighbors returns a copy of node x's routing-table entries, used by
	// the percolation analysis to build the overlay graph.
	Neighbors(x overlay.ID) []overlay.ID
}

// Populated is implemented by overlays that occupy only part of their
// identifier space (the paper's §6 "non-fully-populated" future-work
// regime). Harnesses must sample sources and targets from Nodes rather than
// from the whole space.
type Populated interface {
	// Nodes returns the participating identifiers in ascending order. The
	// returned slice must not be modified.
	Nodes() []overlay.ID
}

// Resampler is implemented by overlays whose randomized table entries can
// be re-drawn in place — the repair step of the churn experiment (E11).
// Repair mimics a live node re-establishing connections: each entry is
// re-drawn until it lands on an alive node (bounded retries, since some
// table slots have a single legal candidate). A nil alive set disables the
// aliveness filter. ResampleNode is NOT safe to call concurrently with
// Route.
type Resampler interface {
	// ResampleNode re-draws node x's randomized routing-table entries,
	// preferring alive candidates.
	ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG)
}

// resampleAttempts bounds the retry loop when repairing a table entry: a
// slot whose candidate set is mostly dead keeps its final draw.
const resampleAttempts = 16

// drawAlive retries draw() until it returns an alive identifier, up to
// resampleAttempts times, returning the final draw regardless.
func drawAlive(alive *overlay.Bitset, draw func() overlay.ID) overlay.ID {
	var id overlay.ID
	for attempt := 0; attempt < resampleAttempts; attempt++ {
		id = draw()
		if alive == nil || alive.Get(int(id)) {
			break
		}
	}
	return id
}

// Config carries common construction parameters.
type Config struct {
	// Bits is the identifier length d; the overlay has 2^d nodes.
	Bits int
	// Seed seeds the deterministic RNG used for randomized table entries.
	Seed uint64
	// SymphonyNear and SymphonyShortcuts set kn and ks for Symphony
	// overlays; both default to 1 (the paper's Fig. 7 setting) when zero.
	SymphonyNear      int
	SymphonyShortcuts int
}

// MaxSimBits caps overlay sizes: routing tables are O(N·d), so d=22 is
// roughly 350 MB of table and already far past the paper's N = 2^16.
const MaxSimBits = 22

func (c Config) space() (overlay.Space, error) {
	if c.Bits < 1 || c.Bits > MaxSimBits {
		return overlay.Space{}, fmt.Errorf("dht: bits=%d out of range [1,%d]", c.Bits, MaxSimBits)
	}
	return overlay.NewSpace(c.Bits)
}

// New constructs a protocol by name. Accepted names (case-insensitive)
// include both the system names and the paper's geometry terms:
// plaxton/tree, can/hypercube, kademlia/xor, chord/ring, symphony.
func New(name string, cfg Config) (Protocol, error) {
	switch strings.ToLower(name) {
	case "plaxton", "tree":
		return NewPlaxton(cfg)
	case "can", "hypercube":
		return NewHypercubeCAN(cfg)
	case "kademlia", "xor":
		return NewKademlia(cfg)
	case "chord", "ring":
		return NewChord(cfg)
	case "symphony", "smallworld", "small-world":
		return NewSymphony(cfg)
	default:
		return nil, fmt.Errorf("dht: unknown protocol %q", name)
	}
}

// ProtocolNames lists the canonical protocol names accepted by New, in the
// paper's presentation order.
func ProtocolNames() []string {
	return []string{"plaxton", "can", "kademlia", "chord", "symphony"}
}

// hopCap bounds route lengths defensively. Every protocol here makes strict
// progress per hop, so the cap is unreachable in correct operation; it
// guards against latent bugs turning into infinite loops.
func hopCap(s overlay.Space) int {
	return int(s.Size()) + 1
}
