package dht

import (
	"rcm/overlay"
)

// Chord is the ring routing geometry (§3.4), randomized-finger variant:
// finger i of node x points to a node at uniform clockwise distance in
// [2^{i−1}, 2^i). Finger 1 is therefore always the immediate successor.
// Routing is greedy clockwise without overshooting the target; progress
// made by suboptimal hops is preserved (the structural property that makes
// the paper's ring analysis a lower bound, §4.3.3).
type Chord struct {
	space overlay.Space
	// table[x*d + (i-1)] is node x's finger i.
	table []overlay.ID
}

var (
	_ Protocol   = (*Chord)(nil)
	_ Forwarder  = (*Chord)(nil)
	_ Maintainer = (*Chord)(nil)
)

// NewChord builds the overlay with randomized fingers.
func NewChord(cfg Config) (*Chord, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	d := s.Bits()
	n := s.Size()
	rng := overlay.NewRNG(cfg.Seed ^ 0x63686f7264) // "chord"
	table := make([]overlay.ID, int(n)*d)
	for x := uint64(0); x < n; x++ {
		for i := 1; i <= d; i++ {
			lo := uint64(1) << uint(i-1)
			span := lo // window [2^{i-1}, 2^i) has width 2^{i-1}
			dist := lo + rng.Uint64n(span)
			table[int(x)*d+i-1] = overlay.ID((x + dist) & (n - 1))
		}
	}
	return &Chord{space: s, table: table}, nil
}

// Name implements Protocol.
func (c *Chord) Name() string { return "chord" }

// GeometryName implements Protocol.
func (c *Chord) GeometryName() string { return "ring" }

// Space implements Protocol.
func (c *Chord) Space() overlay.Space { return c.space }

// Degree implements Protocol.
func (c *Chord) Degree() int { return c.space.Bits() }

// Route implements Protocol: take the alive finger that lands closest to
// dst without passing it; fail when no alive finger makes clockwise
// progress. The successor finger guarantees progress whenever it is alive.
func (c *Chord) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := c.space.Bits()
	cur := src
	hops := 0
	for maxHops := hopCap(c.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		remaining := c.space.RingDist(cur, dst)
		var best overlay.ID
		bestRemaining := remaining
		found := false
		base := int(cur) * d
		for i := 0; i < d; i++ {
			f := c.table[base+i]
			// Overshooting fingers (past dst clockwise) are not eligible.
			if c.space.RingDist(cur, f) > remaining {
				continue
			}
			if !alive.Get(int(f)) {
				continue
			}
			if nr := c.space.RingDist(f, dst); nr < bestRemaining {
				bestRemaining = nr
				best = f
				found = true
			}
		}
		if !found {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// AppendCandidateHops implements Forwarder: the non-overshooting fingers of
// x, deduplicated, ordered by resulting clockwise distance to dst (ties keep
// finger order) — so the first alive candidate is exactly Route's greedy
// choice.
func (c *Chord) AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID {
	remaining := c.space.RingDist(x, dst)
	if remaining == 0 {
		return buf
	}
	d := c.space.Bits()
	start := len(buf)
	base := int(x) * d
outer:
	for i := 0; i < d; i++ {
		f := c.table[base+i]
		if f == x || c.space.RingDist(x, f) > remaining {
			continue // self or overshooting: no eligible progress
		}
		for _, prev := range buf[start:] {
			if prev == f {
				continue outer
			}
		}
		// Stable insertion by resulting distance (ascending).
		nr := c.space.RingDist(f, dst)
		buf = append(buf, f)
		j := len(buf) - 1
		for j > start && c.space.RingDist(buf[j-1], dst) > nr {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = f
	}
	return buf
}

// Join implements Maintainer: a (re)joining node rebuilds all d fingers
// toward alive nodes, returning the modeled message cost.
func (c *Chord) Join(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	d := c.space.Bits()
	n := c.space.Size()
	cost := 0
	for i := 1; i <= d; i++ {
		lo := uint64(1) << uint(i-1)
		id, attempts := drawAliveCost(alive, func() overlay.ID {
			return overlay.ID((uint64(x) + lo + rng.Uint64n(lo)) & (n - 1))
		})
		c.table[int(x)*d+i-1] = id
		cost += probeCost(attempts)
	}
	return cost
}

// Stabilize implements Maintainer: one periodic round refreshes a single
// uniformly-chosen finger (Chord's fix_fingers).
func (c *Chord) Stabilize(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	d := c.space.Bits()
	n := c.space.Size()
	i := 1 + rng.Intn(d)
	lo := uint64(1) << uint(i-1)
	id, attempts := drawAliveCost(alive, func() overlay.ID {
		return overlay.ID((uint64(x) + lo + rng.Uint64n(lo)) & (n - 1))
	})
	c.table[int(x)*d+i-1] = id
	return probeCost(attempts)
}

// ResampleNode implements Resampler: re-draws every finger of x within its
// window, preferring alive candidates. Not safe concurrently with Route.
func (c *Chord) ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) {
	d := c.space.Bits()
	n := c.space.Size()
	for i := 1; i <= d; i++ {
		lo := uint64(1) << uint(i-1)
		c.table[int(x)*d+i-1] = drawAlive(alive, func() overlay.ID {
			return overlay.ID((uint64(x) + lo + rng.Uint64n(lo)) & (n - 1))
		})
	}
}

// Neighbors implements Protocol.
func (c *Chord) Neighbors(x overlay.ID) []overlay.ID {
	d := c.space.Bits()
	out := make([]overlay.ID, d)
	copy(out, c.table[int(x)*d:int(x)*d+d])
	return out
}
