package dht

import (
	"rcm/overlay"
)

// Kademlia is the XOR routing geometry (§3.3): node x keeps one contact per
// bucket, the i-th chosen uniformly at random from XOR distance
// [2^{d−i}, 2^{d−i+1}) — equivalently matching x's first i−1 bits, flipping
// bit i, with a random tail. Routing is greedy in XOR distance: any alive
// contact strictly closer to the target may be used, so a dead
// highest-order contact can be bypassed by correcting a lower-order bit
// (Fig. 5(a)), at the cost of progress that is not preserved across phases.
type Kademlia struct {
	space overlay.Space
	// table[x*d + (i-1)] is node x's bucket-i contact.
	table []overlay.ID
}

var (
	_ Protocol   = (*Kademlia)(nil)
	_ Forwarder  = (*Kademlia)(nil)
	_ Maintainer = (*Kademlia)(nil)
)

// NewKademlia builds the overlay with one random contact per bucket.
func NewKademlia(cfg Config) (*Kademlia, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	d := s.Bits()
	n := s.Size()
	rng := overlay.NewRNG(cfg.Seed ^ 0x6b61646d6c6961) // "kadmlia"
	table := make([]overlay.ID, int(n)*d)
	for x := uint64(0); x < n; x++ {
		id := overlay.ID(x)
		for i := 1; i <= d; i++ {
			table[int(x)*d+i-1] = s.RandomTail(s.FlipBit(id, i), i, rng)
		}
	}
	return &Kademlia{space: s, table: table}, nil
}

// Name implements Protocol.
func (k *Kademlia) Name() string { return "kademlia" }

// GeometryName implements Protocol.
func (k *Kademlia) GeometryName() string { return "xor" }

// Space implements Protocol.
func (k *Kademlia) Space() overlay.Space { return k.space }

// Degree implements Protocol.
func (k *Kademlia) Degree() int { return k.space.Bits() }

// Route implements Protocol: greedy descent in XOR distance over alive
// contacts; fail when no alive contact is strictly closer to dst.
func (k *Kademlia) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := k.space.Bits()
	cur := src
	hops := 0
	for maxHops := hopCap(k.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		curDist := k.space.XORDist(cur, dst)
		bestDist := curDist
		best := cur
		base := int(cur) * d
		for i := 0; i < d; i++ {
			nb := k.table[base+i]
			if !alive.Get(int(nb)) {
				continue
			}
			if nd := k.space.XORDist(nb, dst); nd < bestDist {
				bestDist = nd
				best = nb
			}
		}
		if best == cur {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// AppendCandidateHops implements Forwarder: the contacts strictly closer to
// dst in XOR distance, deduplicated, ordered by resulting distance (ties
// keep bucket order) — the first alive candidate is Route's greedy choice.
func (k *Kademlia) AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID {
	curDist := k.space.XORDist(x, dst)
	if curDist == 0 {
		return buf
	}
	d := k.space.Bits()
	start := len(buf)
	base := int(x) * d
outer:
	for i := 0; i < d; i++ {
		nb := k.table[base+i]
		nd := k.space.XORDist(nb, dst)
		if nd >= curDist {
			continue // no strict progress
		}
		for _, prev := range buf[start:] {
			if prev == nb {
				continue outer
			}
		}
		buf = append(buf, nb)
		j := len(buf) - 1
		for j > start && k.space.XORDist(buf[j-1], dst) > nd {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = nb
	}
	return buf
}

// Join implements Maintainer: a (re)joining node refreshes every bucket
// contact toward alive nodes, returning the modeled message cost.
func (k *Kademlia) Join(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	return prefixJoin(k.space, k.table, x, alive, rng)
}

// Stabilize implements Maintainer: one periodic round refreshes a single
// uniformly-chosen bucket (Kademlia's bucket refresh).
func (k *Kademlia) Stabilize(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	return prefixRefresh(k.space, k.table, x, 1+rng.Intn(k.space.Bits()), alive, rng)
}

// ResampleNode implements Resampler: re-draws every bucket contact of x,
// preferring alive candidates. Not safe concurrently with Route.
func (k *Kademlia) ResampleNode(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) {
	d := k.space.Bits()
	for i := 1; i <= d; i++ {
		i := i
		k.table[int(x)*d+i-1] = drawAlive(alive, func() overlay.ID {
			return k.space.RandomTail(k.space.FlipBit(x, i), i, rng)
		})
	}
}

// Neighbors implements Protocol.
func (k *Kademlia) Neighbors(x overlay.ID) []overlay.ID {
	d := k.space.Bits()
	out := make([]overlay.ID, d)
	copy(out, k.table[int(x)*d:int(x)*d+d])
	return out
}

// AppendReplicaSet implements the rcm/replica.Replicator capability
// (structurally — no import needed): copies of a key live on the XOR-
// adjacent identifiers root^0, root^1, root^2, …, Kademlia's natural
// replica neighborhood (the k closest ids under the XOR metric). The
// root is first, the set is distinct by construction, and the placement
// is a pure function of (root, k) per the capability contract.
func (k *Kademlia) AppendReplicaSet(buf []overlay.ID, root overlay.ID, n int) []overlay.ID {
	if n < 1 {
		n = 1
	}
	if sz := k.space.Size(); uint64(n) > sz {
		n = int(sz)
	}
	for i := 0; i < n; i++ {
		buf = append(buf, root^overlay.ID(i))
	}
	return buf
}
