package dht

import (
	"strings"
	"testing"

	"rcm/overlay"
)

// allAlive returns a bitset with every node alive.
func allAlive(s overlay.Space) *overlay.Bitset {
	b := overlay.NewBitset(int(s.Size()))
	b.SetAll()
	return b
}

// buildAll constructs one instance of each protocol at the given size.
func buildAll(t *testing.T, bits int) []Protocol {
	t.Helper()
	out := make([]Protocol, 0, len(ProtocolNames()))
	for _, name := range ProtocolNames() {
		p, err := New(name, Config{Bits: bits, Seed: 42})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out = append(out, p)
	}
	return out
}

func TestNewAliases(t *testing.T) {
	aliases := map[string]string{
		"plaxton":   "plaxton",
		"tree":      "plaxton",
		"CAN":       "can",
		"hypercube": "can",
		"kademlia":  "kademlia",
		"XOR":       "kademlia",
		"chord":     "chord",
		"ring":      "chord",
		"symphony":  "symphony",
	}
	for alias, want := range aliases {
		p, err := New(alias, Config{Bits: 4, Seed: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", alias, err)
		}
		if p.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", alias, p.Name(), want)
		}
	}
}

func TestNewUnknownProtocol(t *testing.T) {
	if _, err := New("pastry", Config{Bits: 4}); err == nil {
		t.Error("unknown protocol accepted")
	} else if !strings.Contains(err.Error(), "pastry") {
		t.Errorf("error does not name the protocol: %v", err)
	}
}

func TestNewBadBits(t *testing.T) {
	for _, name := range ProtocolNames() {
		if _, err := New(name, Config{Bits: 0}); err == nil {
			t.Errorf("%s: bits=0 accepted", name)
		}
		if _, err := New(name, Config{Bits: MaxSimBits + 1}); err == nil {
			t.Errorf("%s: bits over cap accepted", name)
		}
	}
}

func TestGeometryNameMapping(t *testing.T) {
	want := map[string]string{
		"plaxton":   "tree",
		"can":       "hypercube",
		"kademlia":  "xor",
		"chord":     "ring",
		"symphony":  "symphony",
		"singlehop": "singlehop",
	}
	for _, p := range buildAll(t, 4) {
		if got := p.GeometryName(); got != want[p.Name()] {
			t.Errorf("%s: geometry %q, want %q", p.Name(), got, want[p.Name()])
		}
	}
}

func TestRouteToSelf(t *testing.T) {
	for _, p := range buildAll(t, 6) {
		alive := allAlive(p.Space())
		hops, ok := p.Route(5, 5, alive)
		if !ok || hops != 0 {
			t.Errorf("%s: route to self = (%d, %v), want (0, true)", p.Name(), hops, ok)
		}
	}
}

func TestAllPairsRoutableWithoutFailures(t *testing.T) {
	// With every node alive, every ordered pair must be routable — the
	// perfect-topology precondition of §4.1. Exhaustive at d=6 (4032 pairs).
	for _, p := range buildAll(t, 6) {
		s := p.Space()
		alive := allAlive(s)
		n := int(s.Size())
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				hops, ok := p.Route(overlay.ID(src), overlay.ID(dst), alive)
				if !ok {
					t.Fatalf("%s: route %d->%d failed with all nodes alive", p.Name(), src, dst)
				}
				if hops < 1 {
					t.Fatalf("%s: route %d->%d took %d hops", p.Name(), src, dst, hops)
				}
			}
		}
	}
}

func TestHopBoundsWithoutFailures(t *testing.T) {
	// Prefix-correcting protocols take at most d hops; Chord takes O(d) and
	// Symphony O(d²) in expectation — generous caps catch runaway routes.
	bounds := map[string]int{
		"plaxton":   10,      // exactly <= d
		"can":       10,      // exactly <= d (Hamming distance)
		"kademlia":  10,      // one prefix bit per hop
		"chord":     4 * 10,  // greedy fingers
		"symphony":  40 * 10, // O(log² N) expected
		"singlehop": 1,       // full table: exactly one hop
	}
	for _, p := range buildAll(t, 10) {
		s := p.Space()
		alive := allAlive(s)
		rng := overlay.NewRNG(7)
		maxSeen := 0
		for trial := 0; trial < 3000; trial++ {
			src := overlay.ID(rng.Uint64n(s.Size()))
			dst := overlay.ID(rng.Uint64n(s.Size()))
			if src == dst {
				continue
			}
			hops, ok := p.Route(src, dst, alive)
			if !ok {
				t.Fatalf("%s: route failed with all alive", p.Name())
			}
			if hops > maxSeen {
				maxSeen = hops
			}
		}
		if maxSeen > bounds[p.Name()] {
			t.Errorf("%s: max hops %d exceeds bound %d", p.Name(), maxSeen, bounds[p.Name()])
		}
	}
}

func TestDegreeAndNeighborCount(t *testing.T) {
	for _, p := range buildAll(t, 8) {
		nbs := p.Neighbors(3)
		if len(nbs) != p.Degree() {
			t.Errorf("%s: %d neighbors, degree %d", p.Name(), len(nbs), p.Degree())
		}
		for _, nb := range nbs {
			if !p.Space().Contains(nb) {
				t.Errorf("%s: neighbor %d outside space", p.Name(), nb)
			}
		}
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	for _, p := range buildAll(t, 6) {
		a := p.Neighbors(1)
		a[0] = overlay.ID(63)
		b := p.Neighbors(1)
		if len(a) > 0 && len(b) > 0 && b[0] == overlay.ID(63) && a[0] == b[0] {
			// Only fails if mutation leaked AND original differs; re-check
			// against a fresh protocol to be strict.
			p2, err := New(p.Name(), Config{Bits: 6, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if p2.Neighbors(1)[0] != overlay.ID(63) {
				t.Errorf("%s: Neighbors exposes internal table", p.Name())
			}
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	for _, name := range ProtocolNames() {
		p1, err := New(name, Config{Bits: 8, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := New(name, Config{Bits: 8, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for x := overlay.ID(0); x < 256; x++ {
			n1, n2 := p1.Neighbors(x), p2.Neighbors(x)
			for i := range n1 {
				if n1[i] != n2[i] {
					t.Fatalf("%s: same seed built different tables at node %d", name, x)
				}
			}
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	// Randomized protocols must produce different tables for different
	// seeds (the hypercube is deterministic and exempt).
	for _, name := range []string{"plaxton", "kademlia", "chord", "symphony"} {
		p1, err := New(name, Config{Bits: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := New(name, Config{Bits: 10, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		diff := 0
		for x := overlay.ID(0); x < 1024; x++ {
			n1, n2 := p1.Neighbors(x), p2.Neighbors(x)
			for i := range n1 {
				if n1[i] != n2[i] {
					diff++
				}
			}
		}
		if diff == 0 {
			t.Errorf("%s: seeds 1 and 2 built identical tables", name)
		}
	}
}
