package dht

import (
	"testing"

	"rcm/overlay"
)

// Targeted failure-injection tests: kill specific structural neighbors and
// verify each protocol's failure semantics match its geometry's Markov
// model (which fallbacks exist, which do not).

func TestHypercubeSurvivesAnySingleNeighborDeath(t *testing.T) {
	// With m >= 2 differing bits there are m correcting neighbors; killing
	// any one must never fail the route (Fig. 4(b): fail prob q^m).
	h, err := NewHypercubeCAN(Config{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := h.Space()
	src, dst := overlay.ID(0), overlay.ID(0b11000000) // Hamming distance 2
	for i := 1; i <= 8; i++ {
		if s.Bit(src, i) == s.Bit(dst, i) {
			continue
		}
		alive := allAlive(s)
		alive.Clear(int(s.FlipBit(src, i))) // kill one correcting neighbor
		if _, ok := h.Route(src, dst, alive); !ok {
			t.Errorf("route failed with only neighbor bit%d dead", i)
		}
	}
}

func TestHypercubeDiesWhenAllCorrectingNeighborsDead(t *testing.T) {
	h, err := NewHypercubeCAN(Config{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := h.Space()
	src, dst := overlay.ID(0), overlay.ID(0b11000000)
	alive := allAlive(s)
	alive.Clear(int(s.FlipBit(src, 1)))
	alive.Clear(int(s.FlipBit(src, 2)))
	if _, ok := h.Route(src, dst, alive); ok {
		t.Error("route survived with every correcting neighbor dead")
	}
}

func TestKademliaFallsBackToLowerOrderContact(t *testing.T) {
	// Fig. 5(a)'s scenario: the optimal (highest-order) contact is dead but
	// a lower-order contact still reduces XOR distance; the route must
	// survive via the fallback whenever one exists.
	k, err := NewKademlia(Config{Bits: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s := k.Space()
	rng := overlay.NewRNG(5)
	survived, fellBack := 0, 0
	for trial := 0; trial < 2000; trial++ {
		src := overlay.ID(rng.Uint64n(s.Size()))
		dst := overlay.ID(rng.Uint64n(s.Size()))
		if src == dst {
			continue
		}
		i := s.FirstDifferingBit(src, dst)
		optimal := k.Neighbors(src)[i-1]
		if optimal == dst {
			continue // no intermediate to kill
		}
		alive := allAlive(s)
		alive.Clear(int(optimal))
		if hops, ok := k.Route(src, dst, alive); ok {
			survived++
			if hops > 0 {
				fellBack++
			}
		}
	}
	if survived == 0 {
		t.Fatal("no route survived an optimal-contact death")
	}
	// The overwhelming majority should survive via fallback at q≈0.
	if float64(survived) < 0.9*2000*0.9 {
		t.Errorf("only %d/2000 routes survived optimal-contact death", survived)
	}
	if fellBack == 0 {
		t.Error("no route used the fallback path")
	}
}

func TestPlaxtonHasNoFallback(t *testing.T) {
	// The tree geometry drops the message the moment the unique
	// leftmost-correcting neighbor is dead — no matter how healthy the rest
	// of the system is (Fig. 4(a)).
	p, err := NewPlaxton(Config{Bits: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	rng := overlay.NewRNG(6)
	killed, failures := 0, 0
	for trial := 0; trial < 2000; trial++ {
		src := overlay.ID(rng.Uint64n(s.Size()))
		dst := overlay.ID(rng.Uint64n(s.Size()))
		if src == dst {
			continue
		}
		i := s.FirstDifferingBit(src, dst)
		next := p.Neighbors(src)[i-1]
		if next == dst {
			continue
		}
		alive := allAlive(s)
		alive.Clear(int(next))
		killed++
		if _, ok := p.Route(src, dst, alive); !ok {
			failures++
		}
	}
	if killed == 0 {
		t.Fatal("no applicable trials")
	}
	if failures != killed {
		t.Errorf("tree survived %d/%d dead-next-hop routes; geometry allows none", killed-failures, killed)
	}
}

func TestChordSurvivesFingerDeathViaSuboptimalHop(t *testing.T) {
	// Ring routing takes a suboptimal finger when the best one died; the
	// progress is preserved (§4.3.3). Killing the single best finger must
	// almost never fail a route in an otherwise-healthy ring.
	c, err := NewChord(Config{Bits: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space()
	rng := overlay.NewRNG(7)
	attempts, survived := 0, 0
	for trial := 0; trial < 2000; trial++ {
		src := overlay.ID(rng.Uint64n(s.Size()))
		dst := overlay.ID(rng.Uint64n(s.Size()))
		if src == dst || s.RingDist(src, dst) < 4 {
			continue
		}
		// Find the greedy first hop and kill it.
		alive := allAlive(s)
		remaining := s.RingDist(src, dst)
		var best overlay.ID
		bestRem := remaining
		for _, f := range c.Neighbors(src) {
			if s.RingDist(src, f) > remaining {
				continue
			}
			if nr := s.RingDist(f, dst); nr < bestRem {
				bestRem = nr
				best = f
			}
		}
		if best == dst || bestRem == remaining {
			continue
		}
		alive.Clear(int(best))
		attempts++
		if _, ok := c.Route(src, dst, alive); ok {
			survived++
		}
	}
	if attempts == 0 {
		t.Fatal("no applicable trials")
	}
	if float64(survived)/float64(attempts) < 0.99 {
		t.Errorf("ring survived only %d/%d best-finger deaths", survived, attempts)
	}
}

func TestSymphonyDiesOnlyWhenAllLinksDead(t *testing.T) {
	// §3.5: routing fails when all kn+ks links of the current node are
	// dead. Killing all links of the source must fail any non-adjacent
	// route; killing all but one must not (the survivor makes progress if
	// it does not overshoot).
	sy, err := NewSymphony(Config{Bits: 10, Seed: 21, SymphonyNear: 2, SymphonyShortcuts: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := sy.Space()
	src := overlay.ID(0)
	dst := overlay.ID(512)
	nbs := sy.Neighbors(src)

	alive := allAlive(s)
	for _, nb := range nbs {
		alive.Clear(int(nb))
	}
	if _, ok := sy.Route(src, dst, alive); ok {
		t.Error("symphony routed with every link of the source dead")
	}

	// Revive just the first near link (the successor: never overshoots).
	alive.Set(int(nbs[0]))
	if _, ok := sy.Route(src, dst, alive); !ok {
		t.Error("symphony failed with a live successor available")
	}
}

func TestRouteDeterministicUnderFixedFailurePattern(t *testing.T) {
	// Same overlay + same alive set ⇒ identical hop counts, every protocol.
	for _, name := range ProtocolNames() {
		p, err := New(name, Config{Bits: 10, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Space()
		alive := overlay.NewBitset(int(s.Size()))
		alive.FillRandomAlive(0.3, overlay.NewRNG(17))
		rng := overlay.NewRNG(23)
		for trial := 0; trial < 300; trial++ {
			src := overlay.ID(rng.Uint64n(s.Size()))
			dst := overlay.ID(rng.Uint64n(s.Size()))
			h1, ok1 := p.Route(src, dst, alive)
			h2, ok2 := p.Route(src, dst, alive)
			if h1 != h2 || ok1 != ok2 {
				t.Fatalf("%s: route %d->%d nondeterministic: (%d,%v) vs (%d,%v)",
					name, src, dst, h1, ok1, h2, ok2)
			}
		}
	}
}
