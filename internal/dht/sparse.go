package dht

import (
	"fmt"
	"sort"

	"rcm/overlay"
)

// This file implements non-fully-populated overlays — the regime the paper
// defers to future work (§6: "analytical results for real world DHTs with
// non-fully-populated identifier spaces can be similarly derived"). A
// population of n nodes is sampled uniformly without replacement from the
// 2^d identifier space; table entries point at the *occupied* node closest
// to the ideal (fully-populated) target, exactly as deployed Chord and
// Kademlia resolve their finger/bucket targets.

// sparsePopulation draws n distinct identifiers from the space, ascending.
func sparsePopulation(s overlay.Space, n int, rng *overlay.RNG) ([]overlay.ID, error) {
	if n < 2 || uint64(n) > s.Size() {
		return nil, fmt.Errorf("dht: sparse population %d out of range [2, %d]", n, s.Size())
	}
	if uint64(n) == s.Size() {
		out := make([]overlay.ID, n)
		for i := range out {
			out[i] = overlay.ID(i)
		}
		return out, nil
	}
	seen := make(map[overlay.ID]struct{}, n)
	out := make([]overlay.ID, 0, n)
	for len(out) < n {
		id := overlay.ID(rng.Uint64n(s.Size()))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// successorOf returns the first occupied identifier at or clockwise after
// target, given the ascending population.
func successorOf(nodes []overlay.ID, target overlay.ID) overlay.ID {
	i := sort.Search(len(nodes), func(i int) bool { return nodes[i] >= target })
	if i == len(nodes) {
		return nodes[0] // wrap around the ring
	}
	return nodes[i]
}

// SparseChord is Chord over a non-fully-populated ring: n nodes at random
// identifiers, finger i of node x pointing at successor(x + 2^{i−1})
// (deployed Chord's deterministic finger definition — randomization is
// unnecessary because the population itself is random).
type SparseChord struct {
	space overlay.Space
	nodes []overlay.ID
	// table[k*d + (i-1)] is finger i of nodes[k].
	table []overlay.ID
	index map[overlay.ID]int
}

var (
	_ Protocol  = (*SparseChord)(nil)
	_ Populated = (*SparseChord)(nil)
)

// NewSparseChord builds a Chord overlay with n nodes in a 2^cfg.Bits space.
func NewSparseChord(cfg Config, n int) (*SparseChord, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	rng := overlay.NewRNG(cfg.Seed ^ 0x73706368) // "spch"
	nodes, err := sparsePopulation(s, n, rng)
	if err != nil {
		return nil, err
	}
	d := s.Bits()
	table := make([]overlay.ID, len(nodes)*d)
	index := make(map[overlay.ID]int, len(nodes))
	for k, x := range nodes {
		index[x] = k
		for i := 1; i <= d; i++ {
			target := overlay.ID((uint64(x) + (uint64(1) << uint(i-1))) & (s.Size() - 1))
			table[k*d+i-1] = successorOf(nodes, target)
		}
	}
	return &SparseChord{space: s, nodes: nodes, table: table, index: index}, nil
}

// Name implements Protocol.
func (c *SparseChord) Name() string { return "sparse-chord" }

// GeometryName implements Protocol.
func (c *SparseChord) GeometryName() string { return "ring" }

// Space implements Protocol.
func (c *SparseChord) Space() overlay.Space { return c.space }

// Degree implements Protocol.
func (c *SparseChord) Degree() int { return c.space.Bits() }

// Nodes implements Populated.
func (c *SparseChord) Nodes() []overlay.ID { return c.nodes }

// Route implements Protocol: greedy clockwise over alive fingers without
// overshooting, as in the dense overlay.
func (c *SparseChord) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := c.space.Bits()
	cur := src
	hops := 0
	for maxHops := hopCap(c.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		k, ok := c.index[cur]
		if !ok {
			return hops, false
		}
		remaining := c.space.RingDist(cur, dst)
		var best overlay.ID
		bestRemaining := remaining
		found := false
		for i := 0; i < d; i++ {
			f := c.table[k*d+i]
			if f == cur || c.space.RingDist(cur, f) > remaining {
				continue
			}
			if !alive.Get(int(f)) {
				continue
			}
			if nr := c.space.RingDist(f, dst); nr < bestRemaining {
				bestRemaining = nr
				best = f
				found = true
			}
		}
		if !found {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// Neighbors implements Protocol.
func (c *SparseChord) Neighbors(x overlay.ID) []overlay.ID {
	k, ok := c.index[x]
	if !ok {
		return nil
	}
	d := c.space.Bits()
	out := make([]overlay.ID, d)
	copy(out, c.table[k*d:(k+1)*d])
	return out
}

// SparseKademlia is Kademlia over a non-fully-populated space: bucket i of
// node x holds the occupied node XOR-closest to a random ideal contact in
// the bucket's range (bucket size 1, matching the basic geometry of §3.3).
type SparseKademlia struct {
	space overlay.Space
	nodes []overlay.ID
	table []overlay.ID
	index map[overlay.ID]int
}

var (
	_ Protocol  = (*SparseKademlia)(nil)
	_ Populated = (*SparseKademlia)(nil)
)

// NewSparseKademlia builds a Kademlia overlay with n nodes in a 2^cfg.Bits
// space.
func NewSparseKademlia(cfg Config, n int) (*SparseKademlia, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	rng := overlay.NewRNG(cfg.Seed ^ 0x73706b61) // "spka"
	nodes, err := sparsePopulation(s, n, rng)
	if err != nil {
		return nil, err
	}
	d := s.Bits()
	table := make([]overlay.ID, len(nodes)*d)
	index := make(map[overlay.ID]int, len(nodes))
	for k, x := range nodes {
		index[x] = k
	}
	for k, x := range nodes {
		for i := 1; i <= d; i++ {
			ideal := s.RandomTail(s.FlipBit(x, i), i, rng)
			table[k*d+i-1] = xorClosest(s, nodes, ideal)
		}
	}
	return &SparseKademlia{space: s, nodes: nodes, table: table, index: index}, nil
}

// xorClosest returns the occupied node minimizing XOR distance to target.
// The ascending sort order doubles as an XOR-prefix order, but a linear
// scan is kept for clarity; construction is one-off.
func xorClosest(s overlay.Space, nodes []overlay.ID, target overlay.ID) overlay.ID {
	best := nodes[0]
	bestDist := s.XORDist(best, target)
	for _, nd := range nodes[1:] {
		if d := s.XORDist(nd, target); d < bestDist {
			bestDist = d
			best = nd
		}
	}
	return best
}

// Name implements Protocol.
func (k *SparseKademlia) Name() string { return "sparse-kademlia" }

// GeometryName implements Protocol.
func (k *SparseKademlia) GeometryName() string { return "xor" }

// Space implements Protocol.
func (k *SparseKademlia) Space() overlay.Space { return k.space }

// Degree implements Protocol.
func (k *SparseKademlia) Degree() int { return k.space.Bits() }

// Nodes implements Populated.
func (k *SparseKademlia) Nodes() []overlay.ID { return k.nodes }

// Route implements Protocol: greedy XOR descent over alive contacts.
func (k *SparseKademlia) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := k.space.Bits()
	cur := src
	hops := 0
	for maxHops := hopCap(k.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		ki, ok := k.index[cur]
		if !ok {
			return hops, false
		}
		curDist := k.space.XORDist(cur, dst)
		best := cur
		bestDist := curDist
		for i := 0; i < d; i++ {
			nb := k.table[ki*d+i]
			if !alive.Get(int(nb)) {
				continue
			}
			if nd := k.space.XORDist(nb, dst); nd < bestDist {
				bestDist = nd
				best = nb
			}
		}
		if best == cur {
			return hops, false
		}
		cur = best
		hops++
	}
	return hops, false
}

// Neighbors implements Protocol.
func (k *SparseKademlia) Neighbors(x overlay.ID) []overlay.ID {
	ki, ok := k.index[x]
	if !ok {
		return nil
	}
	d := k.space.Bits()
	out := make([]overlay.ID, d)
	copy(out, k.table[ki*d:(ki+1)*d])
	return out
}
