package dht

import (
	"sort"
	"testing"

	"rcm/overlay"
)

func TestSparsePopulationProperties(t *testing.T) {
	s := overlay.MustSpace(12)
	rng := overlay.NewRNG(3)
	nodes, err := sparsePopulation(s, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 500 {
		t.Fatalf("population size %d", len(nodes))
	}
	if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i] < nodes[j] }) {
		t.Error("population not sorted")
	}
	seen := make(map[overlay.ID]bool, len(nodes))
	for _, id := range nodes {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		if !s.Contains(id) {
			t.Fatalf("id %d outside space", id)
		}
		seen[id] = true
	}
}

func TestSparsePopulationFull(t *testing.T) {
	s := overlay.MustSpace(6)
	nodes, err := sparsePopulation(s, 64, overlay.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range nodes {
		if int(id) != i {
			t.Fatalf("full population not identity at %d: %d", i, id)
		}
	}
}

func TestSparsePopulationValidation(t *testing.T) {
	s := overlay.MustSpace(4)
	if _, err := sparsePopulation(s, 1, overlay.NewRNG(1)); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := sparsePopulation(s, 17, overlay.NewRNG(1)); err == nil {
		t.Error("n > space accepted")
	}
}

func TestSuccessorOf(t *testing.T) {
	nodes := []overlay.ID{3, 10, 200}
	tests := []struct {
		target overlay.ID
		want   overlay.ID
	}{
		{0, 3},
		{3, 3},
		{4, 10},
		{10, 10},
		{11, 200},
		{201, 3}, // wraps
	}
	for _, tt := range tests {
		if got := successorOf(nodes, tt.target); got != tt.want {
			t.Errorf("successorOf(%d) = %d, want %d", tt.target, got, tt.want)
		}
	}
}

func TestSparseChordStructure(t *testing.T) {
	sc, err := NewSparseChord(Config{Bits: 12, Seed: 3}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sc.Nodes()); got != 300 {
		t.Fatalf("Nodes() = %d", got)
	}
	s := sc.Space()
	occupied := make(map[overlay.ID]bool, 300)
	for _, id := range sc.Nodes() {
		occupied[id] = true
	}
	for _, x := range sc.Nodes()[:20] {
		for i, f := range sc.Neighbors(x) {
			if !occupied[f] {
				t.Fatalf("node %d finger %d points at unoccupied %d", x, i+1, f)
			}
			_ = s
		}
	}
}

func TestSparseChordAllPairsRoutableNoFailure(t *testing.T) {
	sc, err := NewSparseChord(Config{Bits: 12, Seed: 3}, 200)
	if err != nil {
		t.Fatal(err)
	}
	alive := overlay.NewBitset(int(sc.Space().Size()))
	for _, id := range sc.Nodes() {
		alive.Set(int(id))
	}
	nodes := sc.Nodes()
	for _, src := range nodes[:40] {
		for _, dst := range nodes[:40] {
			if src == dst {
				continue
			}
			if _, ok := sc.Route(src, dst, alive); !ok {
				t.Fatalf("sparse chord route %d->%d failed with all alive", src, dst)
			}
		}
	}
}

func TestSparseKademliaAllPairsRoutableNoFailure(t *testing.T) {
	sk, err := NewSparseKademlia(Config{Bits: 12, Seed: 3}, 200)
	if err != nil {
		t.Fatal(err)
	}
	alive := overlay.NewBitset(int(sk.Space().Size()))
	for _, id := range sk.Nodes() {
		alive.Set(int(id))
	}
	nodes := sk.Nodes()
	for _, src := range nodes[:40] {
		for _, dst := range nodes[:40] {
			if src == dst {
				continue
			}
			if _, ok := sk.Route(src, dst, alive); !ok {
				t.Fatalf("sparse kademlia route %d->%d failed with all alive", src, dst)
			}
		}
	}
}

func TestSparseRouteFromUnknownNode(t *testing.T) {
	sc, err := NewSparseChord(Config{Bits: 10, Seed: 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	alive := overlay.NewBitset(int(sc.Space().Size()))
	alive.SetAll()
	// Find an identifier that is NOT in the population.
	occupied := make(map[overlay.ID]bool)
	for _, id := range sc.Nodes() {
		occupied[id] = true
	}
	var ghost overlay.ID
	for v := overlay.ID(0); ; v++ {
		if !occupied[v] {
			ghost = v
			break
		}
	}
	if _, ok := sc.Route(ghost, sc.Nodes()[0], alive); ok {
		t.Error("route from unoccupied identifier succeeded")
	}
	if nbs := sc.Neighbors(ghost); nbs != nil {
		t.Error("Neighbors of unoccupied identifier non-nil")
	}
}

func TestSparseKademliaNeighborsUnknownNode(t *testing.T) {
	sk, err := NewSparseKademlia(Config{Bits: 10, Seed: 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	occupied := make(map[overlay.ID]bool)
	for _, id := range sk.Nodes() {
		occupied[id] = true
	}
	var ghost overlay.ID
	for v := overlay.ID(0); ; v++ {
		if !occupied[v] {
			ghost = v
			break
		}
	}
	if nbs := sk.Neighbors(ghost); nbs != nil {
		t.Error("Neighbors of unoccupied identifier non-nil")
	}
	alive := overlay.NewBitset(int(sk.Space().Size()))
	alive.SetAll()
	if _, ok := sk.Route(ghost, sk.Nodes()[0], alive); ok {
		t.Error("route from unoccupied identifier succeeded")
	}
}

func TestChordWithSuccessorsStructure(t *testing.T) {
	c, err := NewChordWithSuccessors(Config{Bits: 10, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Successors() != 4 {
		t.Fatalf("Successors() = %d", c.Successors())
	}
	if c.Degree() != 14 {
		t.Fatalf("Degree() = %d, want 4+10", c.Degree())
	}
	s := c.Space()
	nbs := c.Neighbors(7)
	for j := 0; j < 4; j++ {
		if got := s.RingDist(7, nbs[j]); got != uint64(j+1) {
			t.Errorf("successor %d at distance %d", j, got)
		}
	}
	for i := 0; i < 10; i++ {
		dist := s.RingDist(7, nbs[4+i])
		lo := uint64(1) << uint(i)
		if dist < lo || dist >= lo<<1 {
			t.Errorf("finger %d at distance %d, want [%d,%d)", i+1, dist, lo, lo<<1)
		}
	}
}

func TestChordWithSuccessorsValidation(t *testing.T) {
	if _, err := NewChordWithSuccessors(Config{Bits: 4, Seed: 1}, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewChordWithSuccessors(Config{Bits: 4, Seed: 1}, 16); err == nil {
		t.Error("s >= N accepted")
	}
}

func TestChordWithSuccessorsAllPairsRoutable(t *testing.T) {
	c, err := NewChordWithSuccessors(Config{Bits: 8, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	alive := overlay.NewBitset(int(c.Space().Size()))
	alive.SetAll()
	for src := overlay.ID(0); src < 64; src++ {
		for dst := overlay.ID(0); dst < 64; dst++ {
			if src == dst {
				continue
			}
			if _, ok := c.Route(src, dst, alive); !ok {
				t.Fatalf("route %d->%d failed with all alive", src, dst)
			}
		}
	}
}

func TestSuccessorListImprovesResilience(t *testing.T) {
	// The §1 knob: more sequential neighbors, better routability under the
	// same failure pattern.
	const bits = 11
	const q = 0.5
	rng := overlay.NewRNG(17)
	alive := overlay.NewBitset(1 << bits)
	alive.FillRandomAlive(q, rng)

	success := func(p Protocol) int {
		s := p.Space()
		local := overlay.NewRNG(23)
		ok := 0
		for trial := 0; trial < 4000; trial++ {
			src := overlay.ID(local.Uint64n(s.Size()))
			dst := overlay.ID(local.Uint64n(s.Size()))
			if src == dst || !alive.Get(int(src)) || !alive.Get(int(dst)) {
				continue
			}
			if _, routed := p.Route(src, dst, alive); routed {
				ok++
			}
		}
		return ok
	}

	s1, err := NewChordWithSuccessors(Config{Bits: bits, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := NewChordWithSuccessors(Config{Bits: bits, Seed: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ok1, ok8 := success(s1), success(s8)
	if ok8 <= ok1 {
		t.Errorf("8 successors (%d routes) did not beat 1 successor (%d routes)", ok8, ok1)
	}
}

func TestChordWithSuccessorsResample(t *testing.T) {
	c, err := NewChordWithSuccessors(Config{Bits: 8, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Neighbors(5)
	alive := overlay.NewBitset(int(c.Space().Size()))
	alive.SetAll()
	c.ResampleNode(5, alive, overlay.NewRNG(99))
	after := c.Neighbors(5)
	// Successors unchanged, fingers re-drawn (some should differ).
	for j := 0; j < 2; j++ {
		if before[j] != after[j] {
			t.Errorf("successor %d changed by resample", j)
		}
	}
	diff := 0
	for i := 2; i < len(before); i++ {
		if before[i] != after[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("resample left all fingers identical")
	}
}
