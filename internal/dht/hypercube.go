package dht

import (
	"rcm/overlay"
)

// HypercubeCAN is the hypercube routing geometry the paper uses to model CAN
// (§3.2): node identifiers are corners of the d-cube, each node's neighbors
// are the d identifiers at Hamming distance one, and greedy routing corrects
// any remaining differing bit. The neighbor set is deterministic, so no
// tables are stored; neighbors are computed by flipping bits.
//
// Under failure the route proceeds if any alive neighbor reduces the
// Hamming distance to the target, matching the Fig. 4(b) chain where a
// phase with m bits left has m usable neighbors. Ties are broken toward the
// highest-order differing bit for reproducibility.
type HypercubeCAN struct {
	space overlay.Space
}

var (
	_ Protocol  = (*HypercubeCAN)(nil)
	_ Forwarder = (*HypercubeCAN)(nil)
)

// NewHypercubeCAN builds the overlay.
func NewHypercubeCAN(cfg Config) (*HypercubeCAN, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	return &HypercubeCAN{space: s}, nil
}

// Name implements Protocol.
func (h *HypercubeCAN) Name() string { return "can" }

// GeometryName implements Protocol.
func (h *HypercubeCAN) GeometryName() string { return "hypercube" }

// Space implements Protocol.
func (h *HypercubeCAN) Space() overlay.Space { return h.space }

// Degree implements Protocol.
func (h *HypercubeCAN) Degree() int { return h.space.Bits() }

// Route implements Protocol: correct the leftmost differing bit whose
// flip-neighbor is alive; fail when every differing bit's neighbor is dead.
func (h *HypercubeCAN) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	d := h.space.Bits()
	cur := src
	hops := 0
	for maxHops := hopCap(h.space); hops < maxHops; {
		if cur == dst {
			return hops, true
		}
		progressed := false
		for i := 1; i <= d; i++ {
			if h.space.Bit(cur, i) == h.space.Bit(dst, i) {
				continue
			}
			next := h.space.FlipBit(cur, i)
			if alive.Get(int(next)) {
				cur = next
				hops++
				progressed = true
				break
			}
		}
		if !progressed {
			return hops, false
		}
	}
	return hops, false
}

// AppendCandidateHops implements Forwarder: the flip-neighbors of every
// differing bit, leftmost first — each reduces the Hamming distance by one,
// and the first alive candidate is Route's choice. The hypercube's neighbor
// set is structural (no tables), so there is no Maintainer to implement.
func (h *HypercubeCAN) AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID {
	d := h.space.Bits()
	for i := 1; i <= d; i++ {
		if h.space.Bit(x, i) != h.space.Bit(dst, i) {
			buf = append(buf, h.space.FlipBit(x, i))
		}
	}
	return buf
}

// Neighbors implements Protocol: the d Hamming-1 identifiers.
func (h *HypercubeCAN) Neighbors(x overlay.ID) []overlay.ID {
	d := h.space.Bits()
	out := make([]overlay.ID, d)
	for i := 1; i <= d; i++ {
		out[i-1] = h.space.FlipBit(x, i)
	}
	return out
}
