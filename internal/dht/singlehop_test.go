package dht

import (
	"strings"
	"testing"

	"rcm/overlay"
)

func TestSingleHopRouteIsOneHop(t *testing.T) {
	p, err := NewSingleHop(Config{Bits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alive := allAlive(p.Space())
	for src := overlay.ID(0); src < 64; src++ {
		for dst := overlay.ID(0); dst < 64; dst++ {
			hops, ok := p.Route(src, dst, alive)
			want := 1
			if src == dst {
				want = 0
			}
			if !ok || hops != want {
				t.Fatalf("route %d->%d = (%d,%v), want (%d,true)", src, dst, hops, ok, want)
			}
		}
	}
}

func TestSingleHopDeadTargetFailsImmediately(t *testing.T) {
	p, err := NewSingleHop(Config{Bits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alive := allAlive(p.Space())
	alive.Clear(9)
	if hops, ok := p.Route(3, 9, alive); ok || hops != 0 {
		t.Fatalf("route to dead target = (%d,%v), want (0,false)", hops, ok)
	}
	// Everything else still routes: dead nodes are not intermediates in a
	// one-hop overlay, so one death removes exactly one destination.
	if _, ok := p.Route(3, 10, alive); !ok {
		t.Fatal("unrelated route failed")
	}
}

func TestSingleHopForwarderMatchesRoute(t *testing.T) {
	p, err := NewSingleHop(Config{Bits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := p.AppendCandidateHops(nil, 5, 11)
	if len(cands) != 1 || cands[0] != 11 {
		t.Fatalf("candidates = %v, want [11]", cands)
	}
	if got := p.AppendCandidateHops(nil, 5, 5); len(got) != 0 {
		t.Fatalf("self candidates = %v, want none", got)
	}
}

func TestSingleHopStaleViewBreaksRouting(t *testing.T) {
	// The one-hop failure mode: node 9 dies, node 3 sweeps past it (view
	// marks it dead), 9 rejoins — 3 still cannot route to it until a sweep
	// passes again, even though 9 is alive. This is the stale-view window
	// figure E20 measures under heavy-tailed churn.
	p, err := NewSingleHop(Config{Bits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alive := allAlive(p.Space())
	alive.Clear(9)
	rng := overlay.NewRNG(1)
	// Full sweep of node 3's view: sweepFraction rounds cover all slots.
	for i := 0; i < sweepFraction; i++ {
		p.Stabilize(3, alive, rng)
	}
	alive.Set(9) // 9 rejoins
	if _, ok := p.Route(3, 9, alive); ok {
		t.Fatal("route succeeded through a stale-dead view entry")
	}
	if cands := p.AppendCandidateHops(nil, 3, 9); len(cands) != 0 {
		t.Fatalf("stale-dead target still enumerated: %v", cands)
	}
	// Another full sweep repairs the entry.
	for i := 0; i < sweepFraction; i++ {
		p.Stabilize(3, alive, rng)
	}
	if hops, ok := p.Route(3, 9, alive); !ok || hops != 1 {
		t.Fatalf("route after repair sweep = (%d,%v), want (1,true)", hops, ok)
	}
	// Other nodes' views were never touched (writes confined to row 3).
	if _, ok := p.Route(4, 9, alive); !ok {
		t.Fatal("stabilizing node 3 mutated node 4's view")
	}
}

func TestSingleHopJoinRebuildsOwnView(t *testing.T) {
	p, err := NewSingleHop(Config{Bits: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alive := allAlive(p.Space())
	alive.Clear(7)
	rng := overlay.NewRNG(1)
	cost := p.Join(2, alive, rng)
	if wantMin := int(p.Space().Size()); cost < wantMin {
		t.Fatalf("join cost %d, want >= %d (O(N) membership transfer)", cost, wantMin)
	}
	if _, ok := p.Route(2, 7, alive); ok {
		t.Fatal("join copied a dead node as alive")
	}
	alive.Set(7)
	// 2's view has 7 dead (snapshot at join); other views unaffected.
	if _, ok := p.Route(2, 7, alive); ok {
		t.Fatal("view entry revived without maintenance")
	}
	if _, ok := p.Route(3, 7, alive); !ok {
		t.Fatal("join of node 2 mutated node 3's view")
	}
}

func TestSingleHopMaintenanceCostScalesWithN(t *testing.T) {
	small, _ := NewSingleHop(Config{Bits: 6, Seed: 1})
	big, _ := NewSingleHop(Config{Bits: 10, Seed: 1})
	rng := overlay.NewRNG(1)
	js, jb := small.Join(0, nil, rng), big.Join(0, nil, rng)
	if jb < 8*js {
		t.Errorf("join costs %d (2^6) vs %d (2^10): want ~16x scaling", js, jb)
	}
	ss, sb := small.Stabilize(0, nil, rng), big.Stabilize(0, nil, rng)
	if sb < 8*ss {
		t.Errorf("stabilize costs %d (2^6) vs %d (2^10): want ~16x scaling", ss, sb)
	}
}

func TestSingleHopBitsCap(t *testing.T) {
	if _, err := NewSingleHop(Config{Bits: MaxSingleHopBits + 1, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "singlehop") {
		t.Fatalf("bits over the one-hop cap accepted: %v", err)
	}
	if _, err := New("singlehop", Config{Bits: MaxSingleHopBits, Seed: 1}); err != nil {
		t.Fatalf("bits at the cap rejected: %v", err)
	}
}

func TestSingleHopAliases(t *testing.T) {
	for _, alias := range []string{"singlehop", "onehop", "D1HT"} {
		p, err := New(alias, Config{Bits: 4, Seed: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", alias, err)
		}
		if p.Name() != "singlehop" {
			t.Errorf("New(%q).Name() = %q", alias, p.Name())
		}
	}
}

func TestKademliaReplicaSet(t *testing.T) {
	k, err := NewKademlia(Config{Bits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := k.AppendReplicaSet(nil, 12, 4)
	want := []overlay.ID{12, 13, 14, 15} // 12^0, 12^1, 12^2, 12^3
	if len(got) != len(want) {
		t.Fatalf("replica set = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica set = %v, want %v", got, want)
		}
	}
	if got := k.AppendReplicaSet(nil, 12, 0); len(got) != 1 || got[0] != 12 {
		t.Fatalf("k=0 replica set = %v, want the bare root", got)
	}
}
