package dht

import (
	"fmt"

	"rcm/overlay"
)

// SingleHop is the full-membership one-hop overlay (the D1HT family from
// Monnerat & Amorim, retrieved in PAPERS.md): every node's routing table
// is the complete membership view, so a lookup either reaches its target
// in a single hop or fails outright — there is no multi-hop detour to
// route around stale knowledge. The interesting behavior is therefore
// entirely in the *view dynamics*: a join rebuilds the joiner's whole
// O(N) view, a stabilization round sweeps an N/32 slice of it, and a
// lookup toward a node that rejoined since the source's sweep last passed
// it fails even though the target is alive. That stale-view failure mode
// is exactly where the O(1)-lookup claim breaks down under heavy-tailed
// churn (long downtimes age everyone's views), and it is what figure E20
// tabulates against the O(N) maintenance bill.
//
// Views start complete (the static-resilience precondition: a perfect
// topology), so under the static model SingleHop routes any alive pair —
// the latency-optimal corner of the latency-vs-maintenance frontier.
type SingleHop struct {
	space overlay.Space
	// view[x] is node x's membership row: bit y set means x believes y is
	// a live member. The Maintainer contract confines writes to row x, so
	// distinct nodes maintain concurrently without sharing rows.
	view []*overlay.Bitset
	// sweep[x] is x's stabilization cursor: the next identifier its
	// periodic round will re-probe. Owned by row x like the view.
	sweep []uint32
}

var (
	_ Protocol   = (*SingleHop)(nil)
	_ Forwarder  = (*SingleHop)(nil)
	_ Maintainer = (*SingleHop)(nil)
)

// MaxSingleHopBits caps the one-hop overlay: membership views are O(N²)
// bits total, so d=14 (32 MB of view) is the ceiling — far past the
// population sizes where a full-membership DHT is deployable anyway.
const MaxSingleHopBits = 14

// sweepFraction divides the population into per-round stabilization
// batches: each round re-probes ceil(N/sweepFraction) slots, so a full
// view refresh takes sweepFraction rounds — the staleness window that
// churn races against.
const sweepFraction = 32

// NewSingleHop builds the overlay with complete membership views.
func NewSingleHop(cfg Config) (*SingleHop, error) {
	s, err := space(cfg)
	if err != nil {
		return nil, err
	}
	if s.Bits() > MaxSingleHopBits {
		return nil, fmt.Errorf("dht: singlehop bits=%d out of range [1,%d]: full membership views are O(N²) bits", s.Bits(), MaxSingleHopBits)
	}
	n := int(s.Size())
	view := make([]*overlay.Bitset, n)
	for x := range view {
		row := overlay.NewBitset(n)
		row.SetAll()
		view[x] = row
	}
	return &SingleHop{space: s, view: view, sweep: make([]uint32, n)}, nil
}

// Name implements Protocol.
func (p *SingleHop) Name() string { return "singlehop" }

// GeometryName implements Protocol.
func (p *SingleHop) GeometryName() string { return "singlehop" }

// Space implements Protocol.
func (p *SingleHop) Space() overlay.Space { return p.space }

// Degree implements Protocol: the full membership view.
func (p *SingleHop) Degree() int { return int(p.space.Size()) - 1 }

// Route implements Protocol: one hop to dst when the source's view still
// lists it and it is alive; otherwise the route fails immediately —
// full-table routing has no intermediate node to detour through.
func (p *SingleHop) Route(src, dst overlay.ID, alive *overlay.Bitset) (int, bool) {
	if src == dst {
		return 0, true
	}
	if p.view[src].Get(int(dst)) && alive.Get(int(dst)) {
		return 1, true
	}
	return 0, false
}

// AppendCandidateHops implements Forwarder: the only identifier that makes
// progress toward dst in a one-hop metric is dst itself, and only while
// the holder's view lists it. The first (and only) alive candidate is
// exactly Route's hop, per the Forwarder contract.
func (p *SingleHop) AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID {
	if x == dst || !p.view[x].Get(int(dst)) {
		return buf
	}
	return append(buf, dst)
}

// Join implements Maintainer: a (re)joining node downloads the current
// membership into its view — one request plus one record per peer, the
// O(N) transfer that makes one-hop DHTs maintenance-bound. Writes touch
// only row x.
func (p *SingleHop) Join(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	row := p.view[int(x)]
	n := int(p.space.Size())
	for y := 0; y < n; y++ {
		if alive == nil || alive.Get(y) {
			row.Set(y)
		} else {
			row.Clear(y)
		}
	}
	p.sweep[int(x)] = 0
	return 2 + n
}

// Stabilize implements Maintainer: one periodic round re-probes the next
// ceil(N/32) identifiers after x's sweep cursor, correcting the view
// against the current membership at two messages (probe + reply) per
// slot. Cost scales with N — the bandwidth half of the one-hop bargain.
func (p *SingleHop) Stabilize(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int {
	n := int(p.space.Size())
	batch := (n + sweepFraction - 1) / sweepFraction
	row := p.view[int(x)]
	cur := int(p.sweep[int(x)])
	for i := 0; i < batch; i++ {
		y := (cur + i) % n
		if alive == nil || alive.Get(y) {
			row.Set(y)
		} else {
			row.Clear(y)
		}
	}
	p.sweep[int(x)] = uint32((cur + batch) % n)
	return probeCost(batch)
}

// Neighbors implements Protocol: every peer the view currently lists.
func (p *SingleHop) Neighbors(x overlay.ID) []overlay.ID {
	row := p.view[int(x)]
	n := int(p.space.Size())
	out := make([]overlay.ID, 0, n-1)
	for y := 0; y < n; y++ {
		if y != int(x) && row.Get(y) {
			out = append(out, overlay.ID(y))
		}
	}
	return out
}
