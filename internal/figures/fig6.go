package figures

import (
	"context"
	"rcm/exp"
	"rcm/internal/table"
)

func init() {
	register("6a", Fig6a)
	register("6b", Fig6b)
}

// fig6Series computes one protocol's full q-grid — analytic failed-path
// percentage from the RCM model against the simulated percentage from the
// static-resilience harness — as a single experiment plan.
//
// Note: delegating to the runner unified the per-q measurement seeds on
// the sim.Sweep schedule (Seed + i·0x9e37); the pre-runner generator used
// Seed + i·7919, so simulated columns differ from older recorded output by
// sampling noise (well inside the trial stderr).
func fig6Series(protocol string, opt Options) (*table.Table, error) {
	spec, err := exp.SpecFor(protocol, exp.Config{})
	if err != nil {
		return nil, err
	}
	rows, err := exp.Run(context.Background(), exp.Plan{
		Name:  "fig6-" + protocol,
		Specs: []exp.Spec{spec},
		Bits:  []int{opt.Bits},
		Qs:    exp.PaperQGrid(),
	},
		exp.WithModes(exp.ModeAnalytic, exp.ModeSim),
		exp.WithPairs(opt.Pairs), exp.WithTrials(opt.Trials),
		exp.WithSeed(opt.Seed),
	)
	if err != nil {
		return nil, err
	}
	t := table.New("", "q %", "analytic failed %", "simulated failed %", "stderr %", "mean hops")
	for _, r := range rows {
		t.AddRow(
			table.Pct(r.Q, 0),
			table.F(r.AnalyticFailedPct, 2),
			table.F(r.SimFailedPct, 2),
			table.F(100*r.SimStdErr, 2),
			table.F(r.SimMeanHops, 2),
		)
	}
	return t, nil
}

// Fig6a reproduces Fig. 6(a): percentage of failed paths vs node failure
// probability at N = 2^Bits for the tree, hypercube and XOR geometries,
// analysis against simulation. The paper overlays Gummadi et al.'s
// simulation data; here the simulation is regenerated from scratch by the
// static-resilience harness (see DESIGN.md §5, substitution 1).
func Fig6a(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	series := []struct {
		protocol string
		label    string
	}{
		{"plaxton", "Tree (Plaxton)"},
		{"can", "Hypercube (CAN)"},
		{"kademlia", "XOR (Kademlia)"},
	}
	out := make([]*table.Table, 0, len(series))
	for _, s := range series {
		t, err := fig6Series(s.protocol, opt)
		if err != nil {
			return nil, err
		}
		titled := table.New("Fig. 6(a) — "+s.label+" failed paths, analysis vs simulation, N=2^"+table.I(opt.Bits), t.Columns()...)
		for i := 0; i < t.NumRows(); i++ {
			titled.AddRow(t.Row(i)...)
		}
		out = append(out, titled)
	}
	return out, nil
}

// Fig6b reproduces Fig. 6(b): the ring (Chord) geometry, where the analytic
// expression is a lower bound on routability — the analytic failed-path
// column upper-bounds the simulated one, tightly below q ≈ 20%.
func Fig6b(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	t, err := fig6Series("chord", opt)
	if err != nil {
		return nil, err
	}
	titled := table.New("Fig. 6(b) — Ring (Chord) failed paths, analysis (upper bound) vs simulation, N=2^"+table.I(opt.Bits), t.Columns()...)
	for i := 0; i < t.NumRows(); i++ {
		titled.AddRow(t.Row(i)...)
	}
	return []*table.Table{titled}, nil
}
