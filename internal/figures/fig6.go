package figures

import (
	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func init() {
	register("6a", Fig6a)
	register("6b", Fig6b)
}

// fig6Row computes one (protocol, q) point: analytic failed-path percentage
// from the RCM model and simulated percentage from the static-resilience
// harness.
func fig6Series(protocol string, g core.Geometry, opt Options) (*table.Table, error) {
	p, err := dht.New(protocol, dht.Config{Bits: opt.Bits, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	t := table.New("", "q %", "analytic failed %", "simulated failed %", "stderr %", "mean hops")
	for i, q := range qGridPaper() {
		analytic, err := core.FailedPathPercent(g, opt.Bits, q)
		if err != nil {
			return nil, err
		}
		res, err := sim.MeasureStaticResilience(p, q, sim.Options{
			Pairs:  opt.Pairs,
			Trials: opt.Trials,
			Seed:   opt.Seed + uint64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			table.Pct(q, 0),
			table.F(analytic, 2),
			table.F(res.FailedPathPct, 2),
			table.F(100*res.StdErr, 2),
			table.F(res.MeanHops, 2),
		)
	}
	return t, nil
}

// Fig6a reproduces Fig. 6(a): percentage of failed paths vs node failure
// probability at N = 2^Bits for the tree, hypercube and XOR geometries,
// analysis against simulation. The paper overlays Gummadi et al.'s
// simulation data; here the simulation is regenerated from scratch by the
// static-resilience harness (see DESIGN.md §5, substitution 1).
func Fig6a(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	series := []struct {
		protocol string
		geom     core.Geometry
		label    string
	}{
		{"plaxton", core.Tree{}, "Tree (Plaxton)"},
		{"can", core.Hypercube{}, "Hypercube (CAN)"},
		{"kademlia", core.XOR{}, "XOR (Kademlia)"},
	}
	out := make([]*table.Table, 0, len(series))
	for _, s := range series {
		t, err := fig6Series(s.protocol, s.geom, opt)
		if err != nil {
			return nil, err
		}
		titled := table.New("Fig. 6(a) — "+s.label+" failed paths, analysis vs simulation, N=2^"+table.I(opt.Bits), t.Columns()...)
		for i := 0; i < t.NumRows(); i++ {
			titled.AddRow(t.Row(i)...)
		}
		out = append(out, titled)
	}
	return out, nil
}

// Fig6b reproduces Fig. 6(b): the ring (Chord) geometry, where the analytic
// expression is a lower bound on routability — the analytic failed-path
// column upper-bounds the simulated one, tightly below q ≈ 20%.
func Fig6b(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	t, err := fig6Series("chord", core.Ring{}, opt)
	if err != nil {
		return nil, err
	}
	titled := table.New("Fig. 6(b) — Ring (Chord) failed paths, analysis (upper bound) vs simulation, N=2^"+table.I(opt.Bits), t.Columns()...)
	for i := 0; i < t.NumRows(); i++ {
		titled.AddRow(t.Row(i)...)
	}
	return []*table.Table{titled}, nil
}
