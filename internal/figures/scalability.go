package figures

import (
	"rcm/internal/core"
	"rcm/internal/numeric"
	"rcm/internal/table"
)

func init() {
	register("scalability", Scalability)
}

// Scalability reproduces the paper's §5 classification. For each geometry
// it shows the Knopp-test evidence — partial sums of Σ Q(m) at doubling
// horizons, and the asymptotic per-route success limit p(∞,q) — alongside
// the numeric classifier's verdict and the paper's hand-derived verdict.
func Scalability(opt Options) ([]*table.Table, error) {
	const q = 0.3
	checkpoints := []int{64, 256, 1024, 4096}

	t1 := table.New("§5 — partial sums of Σ Q(m) at q=0.3 (Knopp's theorem: product > 0 iff sum converges)",
		"geometry", "S(64)", "S(256)", "S(1024)", "S(4096)", "p(∞,q)")
	t2 := table.New("§5 — scalability verdicts",
		"geometry", "system", "numeric verdict", "paper verdict", "reason")
	for _, g := range core.AllGeometries() {
		sums := make([]float64, 0, len(checkpoints))
		for _, d := range checkpoints {
			var acc numeric.KahanSum
			for m := 1; m <= d; m++ {
				acc.Add(g.PhaseFailure(d, m, q))
			}
			sums = append(sums, acc.Sum())
		}
		limit := core.AsymptoticSuccess(g, q, 4096)
		t1.AddRow(
			g.Name(),
			table.F(sums[0], 4),
			table.F(sums[1], 4),
			table.F(sums[2], 4),
			table.F(sums[3], 4),
			table.E(limit, 3),
		)
		numericVerdict := core.Classify(g, q, core.ClassifyOptions{})
		paperVerdict, reason := core.TheoreticalVerdict(g)
		t2.AddRow(g.Name(), g.System(), numericVerdict.String(), paperVerdict.String(), reason)
	}
	return []*table.Table{t1, t2}, nil
}
