package figures

import (
	"context"
	"fmt"

	"rcm/exp"
	"rcm/internal/table"
)

func init() {
	register("lifetimecmp", LifetimeCompare)
}

// lifetimeFamilies are the session-distribution shapes E18 sweeps, all
// pinned to the same mean online time so q_eff is identical across rows
// and any spread is attributable purely to the lifetime shape.
var lifetimeFamilies = []struct {
	label, spec string
}{
	{"exp", "exp"},
	{"pareto a=1.5", "pareto:1.5"},
	{"weibull k=0.5", "weibull:0.5"},
	{"lognormal s=1.5", "lognormal:1.5"},
}

// LifetimeCompare is experiment E18: the paper's q_eff churn summary
// scored against lifetime *shape* at equal mean online time. For chord
// and kademlia, every node churns with mean online 4 and mean offline 1
// (q_eff = 0.2, slow relative to lookups) under four session-time
// families — memoryless exponential, heavy-tailed Pareto, stretched-
// exponential Weibull and lognormal — with join/stabilize maintenance on.
// Columns report steady-window lookup success, the gap to the static
// simulation at q_eff, mean hops, maintenance traffic and realized
// availability.
//
// The static summary depends on the means only, so its prediction is one
// number per protocol; the spread down each protocol's block is the
// modeling error of compressing churn into q_eff. With the horizon a
// small multiple of the mean session (the regime here), the heavy-tailed
// families' front-loaded hazard — many sessions far shorter than the
// mean, balanced by rare huge ones — drags realized availability and
// lookup success measurably below the exponential row at identical
// q_eff, and maintenance traffic up with the extra join churn. (In the
// opposite, slow-churn regime the deviation flips sign; rcm/eventsim's
// equilibrium conformance suite locks both directions in as tests.)
func LifetimeCompare(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 10 {
		bits = 10 // event cells run full message dynamics; 2^10 keeps E18 quick
	}
	const (
		duration    = 8.0
		meanOnline  = 4.0
		meanOffline = 1.0
		burnIn      = 1.0
	)
	settings := make([]exp.EventSetting, 0, len(lifetimeFamilies))
	for _, fam := range lifetimeFamilies {
		scenario := "churn"
		if fam.spec != "exp" {
			scenario = "heavytail"
		}
		settings = append(settings, exp.EventSetting{
			Scenario: scenario,
			Params: exp.EventParams{
				MeanOnline:  meanOnline,
				MeanOffline: meanOffline,
				Rate:        float64(opt.Pairs),
				Lifetime:    fam.spec,
			},
			Duration: duration,
			Buckets:  8,
			Maintain: true,
		})
	}
	specs := []exp.Spec{exp.MustSpec("chord"), exp.MustSpec("kademlia")}
	plan := exp.Plan{Name: "lifetimecmp", Specs: specs, Bits: []int{bits}, Events: settings}

	rows, err := exp.Run(context.Background(), plan,
		exp.WithModes(exp.ModeEvent, exp.ModeSim),
		exp.WithPairs(opt.Pairs), exp.WithTrials(opt.Trials),
		exp.WithSeed(opt.Seed), exp.WithSimWorkers(1),
	)
	if err != nil {
		return nil, err
	}

	// Aggregate each (geometry, setting) block's post-burn-in steady
	// window, weighted by cohort size. Rows arrive in plan order —
	// settings-major within each spec, buckets in time order — so a cell
	// is exactly the next 8 rows of its geometry.
	const bucketsPerCell = 8
	type agg struct {
		started, completed int
		sumHops, sumMaint  float64
		sumOnline          float64
		buckets            int
		static             float64
	}
	groups := map[string]*agg{}
	key := func(geometry string, setting int) string { return fmt.Sprintf("%s/%d", geometry, setting) }
	rowsSeen := map[string]int{}
	for _, r := range rows {
		k := key(r.Geometry, rowsSeen[r.Geometry]/bucketsPerCell)
		rowsSeen[r.Geometry]++
		g, ok := groups[k]
		if !ok {
			g = &agg{static: r.SimRoutability}
			groups[k] = g
		}
		if r.Time-duration/bucketsPerCell >= burnIn-1e-9 {
			if r.EventStarted > 0 {
				g.started += r.EventStarted
				// EventMeanHops is a completed-cohort mean, so it must be
				// weighted by the completed count (and skipped when the
				// bucket completed nothing — the mean is NaN there).
				completed := int(r.EventSuccess*float64(r.EventStarted) + 0.5)
				g.completed += completed
				if completed > 0 {
					g.sumHops += r.EventMeanHops * float64(completed)
				}
			}
			g.sumMaint += r.EventMaintNodeS
			g.sumOnline += r.EventOnline
			g.buckets++
		}
	}
	t := table.New(fmt.Sprintf("E18: lookup performance vs lifetime family at equal mean online time, churn q_eff=0.2, N=2^%d", bits),
		"geometry", "lifetime", "event r%", "static sim r%", "event-static", "mean hops", "maint/node/s", "online %")
	for _, s := range specs {
		name := s.Geometry.Name()
		for i, fam := range lifetimeFamilies {
			g, ok := groups[key(name, i)]
			if !ok || g.started == 0 || g.completed == 0 || g.buckets == 0 {
				return nil, fmt.Errorf("figures: lifetimecmp missing group %s/%s", name, fam.label)
			}
			event := float64(g.completed) / float64(g.started)
			t.AddRow(
				name,
				fam.label,
				table.Pct(event, 2),
				table.Pct(g.static, 2),
				fmt.Sprintf("%+.4f", event-g.static),
				table.F(g.sumHops/float64(g.completed), 2),
				table.F(g.sumMaint/float64(g.buckets), 3),
				table.Pct(g.sumOnline/float64(g.buckets), 1),
			)
		}
	}
	return []*table.Table{t}, nil
}
