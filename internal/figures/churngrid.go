package figures

import (
	"context"
	"rcm/exp"
	"rcm/internal/table"
)

func init() {
	register("churngrid", ChurnGrid)
}

// ChurnGrid is experiment E16: the full geometry × churn-repair
// cross-product, a scenario only the unified experiment runner makes cheap
// — one declarative plan expands to every (protocol, repair, churn-rate)
// cell, executes them in parallel, and scores the paper's static model
// against each churn steady state at the equivalent failure probability
// q_eff.
//
// Two churn regimes are swept (q_eff = 0.2, the moderate rate of E11, and
// q_eff = 1/3, an aggressive rate), each with static tables and with
// repair. The static model should track the static-tables column at both
// rates (transfer of the paper's §4 predictions to dynamic equilibria);
// the repair columns quantify how much table maintenance buys back, which
// grows with the churn rate.
func ChurnGrid(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 12 {
		bits = 12 // churn is event-driven; 2^12 nodes keep the grid quick
	}
	regimes := []struct {
		label       string
		meanOffline float64
	}{
		{"q_eff=0.20", 0.25}, // mean online 1
		{"q_eff=0.33", 0.5},
	}
	var settings []exp.ChurnSetting
	for _, reg := range regimes {
		for _, repair := range []bool{false, true} {
			settings = append(settings, exp.ChurnSetting{
				MeanOnline:      1,
				MeanOffline:     reg.meanOffline,
				Duration:        8,
				MeasureEvery:    0.5,
				PairsPerMeasure: opt.Pairs / 5,
				Repair:          repair,
				BurnIn:          1,
			})
		}
	}
	rows, err := exp.Run(context.Background(), exp.Plan{
		Name:  "churngrid",
		Specs: exp.AllSpecs(),
		Bits:  []int{bits},
		Churn: settings,
	},
		exp.WithModes(exp.ModeAnalytic, exp.ModeSim, exp.ModeChurn),
		exp.WithPairs(opt.Pairs), exp.WithTrials(opt.Trials),
		exp.WithSeed(opt.Seed),
	)
	if err != nil {
		return nil, err
	}

	t := table.New("E16 — geometry × churn-repair cross-product vs the static model (N=2^"+table.I(bits)+")",
		"protocol", "q_eff %", "repair", "churn success %", "static sim %", "static analytic %", "offline %")
	for _, r := range rows {
		repair := "off"
		if r.ChurnRepair {
			repair = "on"
		}
		t.AddRow(
			r.Protocol,
			table.Pct(r.Q, 0),
			repair,
			table.Pct(r.ChurnSuccess, 2),
			table.Pct(r.SimRoutability, 2),
			table.Pct(r.AnalyticRoutability, 2),
			table.Pct(r.ChurnOffline, 2),
		)
	}
	return []*table.Table{t}, nil
}
