package figures

import (
	"context"
	"fmt"

	"rcm/exp"
	"rcm/internal/table"
)

func init() {
	register("eventcmp", EventCompare)
}

// EventCompare is experiment E17: the paper's static framework scored
// against message-level protocol dynamics. For chord, kademlia and the
// hypercube, a massfail scenario kills a fraction q of the population
// mid-run and the steady-state lookup success of the event simulator
// (hop-by-hop forwarding, acknowledgements, retransmission timeouts — no
// global knowledge) is tabulated next to the analytic routability r(N,q)
// and the static graph simulation at the same q.
//
// The event column should track the static simulation closely (the
// event engine's per-hop retry discipline realizes the same greedy walk,
// cross-validated in rcm/eventsim's tests), with the analytic column a
// lower bound for ring geometries — transferring the paper's Fig. 6
// agreement to an actual message-passing protocol.
func EventCompare(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 10 {
		bits = 10 // event cells run full message dynamics; 2^10 keeps E17 quick
	}
	const (
		duration = 6.0
		failTime = 1.5
	)
	qs := []float64{0, 0.15, 0.3, 0.45}
	settings := make([]exp.EventSetting, 0, len(qs))
	for _, q := range qs {
		settings = append(settings, exp.EventSetting{
			Scenario: "massfail",
			Params: exp.EventParams{
				FailFraction: q,
				FailTime:     failTime,
				Rate:         float64(opt.Pairs),
			},
			Duration: duration,
			Buckets:  6,
		})
	}
	specs := []exp.Spec{exp.MustSpec("chord"), exp.MustSpec("kademlia"), exp.MustSpec("can")}
	plan := exp.Plan{Name: "eventcmp", Specs: specs, Bits: []int{bits}, Events: settings}

	rows, err := exp.Run(context.Background(), plan,
		exp.WithModes(exp.ModeEvent, exp.ModeAnalytic, exp.ModeSim),
		exp.WithPairs(opt.Pairs), exp.WithTrials(opt.Trials),
		exp.WithSeed(opt.Seed), exp.WithSimWorkers(1),
	)
	if err != nil {
		return nil, err
	}

	// Aggregate each (geometry, q_eff) group's post-fail steady state:
	// buckets starting after the failure has settled, weighted by cohort
	// size.
	type key struct {
		geometry string
		q        float64
	}
	type agg struct {
		started, completed int
		analytic, static   float64
	}
	groups := map[key]*agg{}
	for _, r := range rows {
		k := key{r.Geometry, r.Q}
		g, ok := groups[k]
		if !ok {
			g = &agg{analytic: r.AnalyticRoutability, static: r.SimRoutability}
			groups[k] = g
		}
		// Bucket start at/after the failure; EventSuccess is NaN for an
		// empty cohort, so only tally buckets that started lookups.
		if r.Time-duration/6 >= failTime && r.EventStarted > 0 {
			g.started += r.EventStarted
			g.completed += int(r.EventSuccess*float64(r.EventStarted) + 0.5)
		}
	}

	t := table.New(fmt.Sprintf("E17: static model vs message-level event simulation, massfail, N=2^%d", bits),
		"geometry", "q", "analytic r%", "static sim r%", "event r%", "event-static")
	for _, s := range specs {
		name := s.Geometry.Name()
		for _, q := range qs {
			g, ok := groups[key{name, q}]
			if !ok || g.started == 0 {
				return nil, fmt.Errorf("figures: eventcmp missing group %s q=%v", name, q)
			}
			event := float64(g.completed) / float64(g.started)
			t.AddRow(
				name,
				table.F(q, 2),
				table.Pct(g.analytic, 2),
				table.Pct(g.static, 2),
				table.Pct(event, 2),
				table.F(100*(event-g.static), 2),
			)
		}
	}
	return []*table.Table{t}, nil
}
