package figures

import (
	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/markov"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func init() {
	register("pathlen", PathLength)
}

// PathLength is experiment E12: routing latency. The paper's §1/§3 claims —
// O(log N) hops for the prefix/finger geometries, O(log² N) for Symphony —
// are checked three ways: the analytic mean routing distance Σ h·n(h)/(N−1),
// the Markov-chain expected steps per successful route under failure, and
// the simulated mean hop count of the concrete overlays.
func PathLength(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 12 {
		bits = 12
	}
	geoms := map[string]core.Geometry{
		"plaxton":   core.Tree{},
		"can":       core.Hypercube{},
		"kademlia":  core.XOR{},
		"chord":     core.Ring{},
		"symphony":  core.DefaultSymphony(),
		"singlehop": core.SingleHop{},
	}

	t1 := table.New("E12 — path lengths: analytic distance vs simulated hops (N=2^"+table.I(bits)+")",
		"protocol", "mean distance (phases)", "sim hops q=0", "sim hops q=0.3", "E[h|success] q=0.3")
	for _, name := range dht.ProtocolNames() {
		p, err := dht.New(name, dht.Config{Bits: bits, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		g := geoms[name]
		r0, err := sim.MeasureStaticResilience(p, 0, sim.Options{Pairs: opt.Pairs, Trials: 1, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		r3, err := sim.MeasureStaticResilience(p, 0.3, sim.Options{Pairs: opt.Pairs, Trials: opt.Trials, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		cond, err := core.MeanSuccessfulRouteLength(g, bits, 0.3)
		if err != nil {
			return nil, err
		}
		t1.AddRow(
			name,
			table.F(core.MeanDistance(g, bits), 2),
			table.F(r0.MeanHops, 2),
			table.F(r3.MeanHops, 2),
			table.F(cond, 2),
		)
	}

	// Chain-level hop inflation: expected transitions per successful walk
	// to a target h phases away, per geometry, at two failure levels. For
	// tree and hypercube the walk length is exactly h; the fallback
	// geometries pay suboptimal hops, Symphony by far the most (its
	// per-phase cost is what turns d phases into O(d²) hops).
	const h = 8
	const symD = 16
	t2 := table.New("E12 — Markov-chain expected steps per successful route (target h=8 phases away)",
		"geometry", "steps q=0.1", "steps q=0.4", "inflation at q=0.4")
	chainOf := map[string]func(q float64) (*markov.Chain, markov.Endpoints, error){
		"tree":      func(q float64) (*markov.Chain, markov.Endpoints, error) { return markov.TreeChain(h, q) },
		"hypercube": func(q float64) (*markov.Chain, markov.Endpoints, error) { return markov.HypercubeChain(h, q) },
		"xor":       func(q float64) (*markov.Chain, markov.Endpoints, error) { return markov.XORChain(h, q) },
		"ring":      func(q float64) (*markov.Chain, markov.Endpoints, error) { return markov.RingChain(h, q) },
		"symphony": func(q float64) (*markov.Chain, markov.Endpoints, error) {
			return markov.SymphonyChain(h, symD, q, 1, 1)
		},
	}
	for _, name := range []string{"tree", "hypercube", "xor", "ring", "symphony"} {
		steps := make([]float64, 0, 2)
		for _, q := range []float64{0.1, 0.4} {
			c, ep, err := chainOf[name](q)
			if err != nil {
				return nil, err
			}
			s, err := c.ExpectedStepsGivenSuccess(ep.Start, ep.Success)
			if err != nil {
				return nil, err
			}
			steps = append(steps, s)
		}
		t2.AddRow(
			name,
			table.F(steps[0], 3),
			table.F(steps[1], 3),
			table.F(steps[1]/float64(h), 2)+"x",
		)
	}
	return []*table.Table{t1, t2}, nil
}
