package figures

import (
	"testing"
)

// TestPartitionShape pins E21's load-bearing comparisons: success is
// essentially perfect outside the partition window (and snaps back after
// the heal without repair traffic), drops hard while the cut is up, and
// k=3 replica failover recovers a clear share of the cross-cut loss.
func TestPartitionShape(t *testing.T) {
	ts, err := Generate("partition", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 4 { // 2 protocols × k∈{1,3}
		t.Fatalf("rows = %d, want 4", tb.NumRows())
	}
	type key struct{ proto, k string }
	rows := map[key]int{}
	for r := 0; r < tb.NumRows(); r++ {
		rows[key{cell(t, tb, r, "protocol"), cell(t, tb, r, "k")}] = r
	}
	at := func(proto, k, col string) float64 {
		r, ok := rows[key{proto, k}]
		if !ok {
			t.Fatalf("no row for %s/k=%s", proto, k)
		}
		return cellF(t, tb, r, col)
	}
	for _, proto := range []string{"chord", "kademlia"} {
		for _, k := range []string{"1", "3"} {
			// Healthy before the cut; healed after — routing state is never
			// torn down, so recovery needs no repair round.
			if pre := at(proto, k, "pre %"); pre < 97 {
				t.Errorf("%s k=%s pre-window success %v, want ≈100", proto, k, pre)
			}
			if post := at(proto, k, "post %"); post < 97 {
				t.Errorf("%s k=%s post-heal success %v, want ≈100", proto, k, post)
			}
			// During the cut half the keyspace is behind the blackhole.
			if during := at(proto, k, "during %"); during >= 95 {
				t.Errorf("%s k=%s mid-partition success %v, want a real dent", proto, k, during)
			}
		}
		// Replica failover converts the cut into a modest dent, tracking
		// the static model's ordering (k=3 prediction above k=1's).
		k1, k3 := at(proto, "1", "during %"), at(proto, "3", "during %")
		if k3 <= k1+5 {
			t.Errorf("%s: k=3 mid-partition success %v not clearly above k=1 %v", proto, k3, k1)
		}
		p1, p3 := at(proto, "1", "static pred %"), at(proto, "3", "static pred %")
		if p3 <= p1 {
			t.Errorf("%s: static predictions not ordered (k=3 %v vs k=1 %v)", proto, p3, p1)
		}
	}
}
