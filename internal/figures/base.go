package figures

import (
	"math"

	"rcm/internal/core"
	"rcm/internal/table"
)

func init() {
	register("base", RadixAblation)
}

// RadixAblation is experiment E15: the paper's §3 footnote that identifier
// bases other than 2 work identically. At equal population N = 2^16, a
// larger radix shortens tree routes (d = log_b N digits) and buys real
// routability at moderate q — but Q(m) = q is radix-independent, so the
// unscalability verdict is immutable: the decay merely starts later.
func RadixAblation(opt Options) ([]*table.Table, error) {
	// Equal-N comparison: b^d = 2^16.
	configs := []struct {
		base, digits int
	}{
		{2, 16},
		{4, 8},
		{16, 4},
		{256, 2},
	}
	t1 := table.New("E15 — tree radix ablation at N=2^16: failed paths % vs q",
		"q %", "base 2 (d=16)", "base 4 (d=8)", "base 16 (d=4)", "base 256 (d=2)")
	for _, q := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7} {
		row := []string{table.Pct(q, 0)}
		for _, cfg := range configs {
			g, err := core.NewGeneralizedTree(cfg.base)
			if err != nil {
				return nil, err
			}
			r, err := core.RoutabilityBaseB(g, cfg.base, cfg.digits, q)
			if err != nil {
				return nil, err
			}
			row = append(row, table.F(100*(1-r), 2))
		}
		t1.AddRow(row...)
	}

	// Scaling at fixed radix: the decay persists at any base.
	t2 := table.New("E15 — base-16 tree routability % vs system size at q=0.1 (still unscalable)",
		"digits d", "N", "routability %", "verdict")
	g16, err := core.NewGeneralizedTree(16)
	if err != nil {
		return nil, err
	}
	for _, d := range []int{2, 4, 8, 16, 25} {
		r, err := core.RoutabilityBaseB(g16, 16, d, 0.1)
		if err != nil {
			return nil, err
		}
		t2.AddRow(
			table.I(d),
			table.E(math.Pow(16, float64(d)), 1),
			table.Pct(r, 2),
			core.Unscalable.String(),
		)
	}
	return []*table.Table{t1, t2}, nil
}
