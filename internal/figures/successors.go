package figures

import (
	"rcm/internal/dht"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func init() {
	register("successors", SuccessorAblation)
}

// SuccessorAblation is experiment E13: the paper's §1 escape hatch for
// unscalable or failure-prone deployments — "the designer can always add
// enough sequential neighbors to achieve an acceptable routability". The
// table sweeps Chord's successor-list length s across failure probabilities
// on the concrete overlay; each doubling of s buys a visible routability
// recovery at high q, at a per-node state cost of s extra links.
func SuccessorAblation(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 12 {
		bits = 12
	}
	qs := []float64{0.3, 0.5, 0.7, 0.85}
	cols := []string{"successors s", "links/node"}
	for _, q := range qs {
		cols = append(cols, "r% at q="+table.F(q, 2))
	}
	t := table.New("E13 — Chord successor-list ablation (N=2^"+table.I(bits)+")", cols...)
	for _, s := range []int{1, 2, 4, 8, 16} {
		p, err := dht.NewChordWithSuccessors(dht.Config{Bits: bits, Seed: opt.Seed}, s)
		if err != nil {
			return nil, err
		}
		row := []string{table.I(s), table.I(p.Degree())}
		for i, q := range qs {
			res, err := sim.MeasureStaticResilience(p, q, sim.Options{
				Pairs:  opt.Pairs / 2,
				Trials: opt.Trials,
				Seed:   opt.Seed + uint64(i)*31,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, table.Pct(res.Routability, 2))
		}
		t.AddRow(row...)
	}
	return []*table.Table{t}, nil
}
