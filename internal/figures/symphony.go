package figures

import (
	"rcm/internal/core"
	"rcm/internal/table"
)

func init() {
	register("symphony", SymphonyDesign)
}

// SymphonyDesign is the kn/ks ablation (E9). The paper notes (§1) that a
// Symphony deployment, though asymptotically unscalable, can always be
// provisioned with enough near neighbors and shortcuts to reach an
// acceptable routability at a target maximum size. This experiment maps
// that design space: routability across (kn, ks) at the paper's simulation
// size and at eDonkey scale, plus the largest d sustaining r ≥ 90%.
func SymphonyDesign(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	const q = 0.1
	t1 := table.New("Symphony design space — routability % at q=0.1 for kn near neighbors × ks shortcuts",
		"kn", "ks", "Qsym", "r% (N=2^16)", "r% (N=2^20)", "r% (N=2^30)", "max d with r>=90%")
	for kn := 1; kn <= 4; kn++ {
		for ks := 1; ks <= 4; ks++ {
			g, err := core.NewSymphony(kn, ks)
			if err != nil {
				return nil, err
			}
			r16, err := core.Routability(g, 16, q)
			if err != nil {
				return nil, err
			}
			r20, err := core.Routability(g, 20, q)
			if err != nil {
				return nil, err
			}
			r30, err := core.Routability(g, 30, q)
			if err != nil {
				return nil, err
			}
			t1.AddRow(
				table.I(kn),
				table.I(ks),
				table.E(g.PhaseFailure(16, 1, q), 3),
				table.Pct(r16, 2),
				table.Pct(r20, 2),
				table.Pct(r30, 2),
				table.I(maxDimensionFor(g, q, 0.90)),
			)
		}
	}
	return []*table.Table{t1}, nil
}

// maxDimensionFor returns the largest identifier length d (up to 512) for
// which the geometry's routability stays at or above target, or 0 when even
// d=1 falls below. Routability is monotone in d for Symphony (the per-phase
// failure constant bites once per phase), so a binary search suffices.
func maxDimensionFor(g core.Geometry, q, target float64) int {
	lo, hi := 0, 512
	for lo < hi {
		mid := (lo + hi + 1) / 2
		r, err := core.Routability(g, mid, q)
		if err != nil || r < target {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo
}
