package figures

import (
	"math"

	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/table"
	"rcm/overlay"
)

func init() {
	register("3", Fig3)
}

// Fig3 reproduces the paper's worked example (Fig. 1–3): the RCM method on
// the 8-node hypercube. It emits the Fig. 3 table (distance distribution and
// per-hop success probabilities) and then validates the analytic E[S] and
// p(3,q) against an exact enumeration over all failure patterns of the
// concrete 3-cube overlay — the hypercube's per-phase candidate sets are
// disjoint along any greedy route, so the RCM expressions are exact and the
// two columns must agree to machine precision.
func Fig3(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	const d = 3
	g := core.Hypercube{}

	// The Fig. 3 table itself, at a reference q.
	const qRef = 0.3
	t1 := table.New("Fig. 3 — RCM on the 8-node hypercube (q=0.3)",
		"h", "n(h)", "Pr(S_h->S_h+1)=1-q^(3-h)", "p(h,q)")
	dist := core.DistanceDistribution(g, d)
	for h := 1; h <= d; h++ {
		p, err := core.SuccessProb(g, d, h, qRef)
		if err != nil {
			return nil, err
		}
		t1.AddRow(
			table.I(h),
			table.F(dist[h-1], 0),
			table.F(1-math.Pow(qRef, float64(d-h+1)), 6),
			table.F(p, 6),
		)
	}

	// Exact enumeration: root node 000 alive; the remaining 7 nodes take
	// every alive/dead pattern; E[S] = Σ_patterns w · |reachable(pattern)|.
	cube, err := dht.NewHypercubeCAN(dht.Config{Bits: d})
	if err != nil {
		return nil, err
	}
	t2 := table.New("Fig. 3 validation — analytic vs exact enumeration (root 000, all 2^7 failure patterns)",
		"q", "E[S] analytic", "E[S] exact", "|diff|", "p(3,q) analytic", "p(3,q) exact")
	root := overlay.ID(0)
	far := overlay.ID(7) // 111: the h=3 target
	for _, q := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		esAnalytic, err := core.ExpectedReach(g, d, q)
		if err != nil {
			return nil, err
		}
		p3Analytic, err := core.SuccessProb(g, d, d, q)
		if err != nil {
			return nil, err
		}
		var esExact, p3Exact float64
		for pattern := 0; pattern < 1<<7; pattern++ {
			alive := overlay.NewBitset(8)
			alive.Set(int(root))
			w := 1.0
			for j := 1; j <= 7; j++ {
				if pattern&(1<<(j-1)) != 0 {
					alive.Set(j)
					w *= 1 - q
				} else {
					w *= q
				}
			}
			reach := 0
			for dst := overlay.ID(1); dst < 8; dst++ {
				if !alive.Get(int(dst)) {
					continue
				}
				if _, ok := cube.Route(root, dst, alive); ok {
					reach++
					if dst == far {
						p3Exact += w
					}
				}
			}
			esExact += w * float64(reach)
		}
		// Note p(h,q) includes the destination's own survival (the final
		// phase's single candidate IS the destination), so p3Exact is the
		// plain delivery probability — no conditioning needed.
		t2.AddRow(
			table.F(q, 2),
			table.F(esAnalytic, 10),
			table.F(esExact, 10),
			table.E(math.Abs(esAnalytic-esExact), 2),
			table.F(p3Analytic, 10),
			table.F(p3Exact, 10),
		)
	}
	return []*table.Table{t1, t2}, nil
}
