package figures

import (
	"testing"
)

func TestChurnGridCrossProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("churn grid is slow")
	}
	ts, err := Generate("churngrid", Options{Bits: 8, Pairs: 1500, Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("tables = %d, want 1", len(ts))
	}
	tb := ts[0]
	// 5 protocols × 2 churn rates × {repair off, on}.
	if tb.NumRows() != 20 {
		t.Fatalf("rows = %d, want 20", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r += 2 {
		proto := cell(t, tb, r, "protocol")
		if cell(t, tb, r, "repair") != "off" || cell(t, tb, r+1, "repair") != "on" {
			t.Fatalf("rows %d/%d: repair columns not off/on", r, r+1)
		}
		static := cellF(t, tb, r, "churn success %")
		repaired := cellF(t, tb, r+1, "churn success %")
		// Repair heals tables: steady-state success must not collapse below
		// the static-tables variant (noise head-room of 5 points).
		if repaired < static-5 {
			t.Errorf("%s: repair success %v well below static %v", proto, repaired, static)
		}
		// The static model's prediction tracks the static-tables churn
		// steady state (the paper's model transfers to churn equilibria).
		analytic := cellF(t, tb, r, "static analytic %")
		if diff := analytic - static; diff > 20 || diff < -20 {
			t.Errorf("%s: analytic %v vs churn static-tables %v", proto, analytic, static)
		}
		// Offline fraction should sit near the regime's q_eff.
		qeff := cellF(t, tb, r, "q_eff %")
		off := cellF(t, tb, r, "offline %")
		if diff := off - qeff; diff > 10 || diff < -10 {
			t.Errorf("%s: offline %v far from q_eff %v", proto, off, qeff)
		}
	}
}
