package figures

import (
	"strings"
	"testing"
)

func TestPathLengthTables(t *testing.T) {
	ts, err := Generate("pathlen", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want 2", len(ts))
	}
	overlays := ts[0]
	if overlays.NumRows() != 6 {
		t.Fatalf("overlay rows = %d", overlays.NumRows())
	}
	var symHops, chordHops float64
	for r := 0; r < overlays.NumRows(); r++ {
		name := cell(t, overlays, r, "protocol")
		hops := cellF(t, overlays, r, "sim hops q=0")
		dist := cellF(t, overlays, r, "mean distance (phases)")
		if hops <= 0 {
			t.Errorf("%s: non-positive hops", name)
		}
		switch name {
		case "symphony":
			symHops = hops
			// Symphony's hops far exceed its phase count (O(log²N)).
			if hops < 1.5*dist {
				t.Errorf("symphony hops %v not >> phases %v", hops, dist)
			}
		case "chord":
			chordHops = hops
			// Chord hops sit near (below) the phase-distance d−1.
			if hops > dist+2 {
				t.Errorf("chord hops %v far above phases %v", hops, dist)
			}
		case "can":
			// Hypercube hops equal Hamming distance = d/2 on average.
			if diff := hops - dist; diff > 0.2 || diff < -0.2 {
				t.Errorf("hypercube hops %v vs distance %v", hops, dist)
			}
		}
	}
	if symHops <= chordHops {
		t.Errorf("symphony hops %v not above chord %v", symHops, chordHops)
	}

	chain := ts[1]
	for r := 0; r < chain.NumRows(); r++ {
		name := cell(t, chain, r, "geometry")
		s1 := cellF(t, chain, r, "steps q=0.1")
		s4 := cellF(t, chain, r, "steps q=0.4")
		switch name {
		case "tree", "hypercube":
			if s1 != 8 || s4 != 8 {
				t.Errorf("%s: steps (%v, %v), want exactly 8", name, s1, s4)
			}
		case "symphony":
			if s1 < 20 {
				t.Errorf("symphony steps %v, want >> 8", s1)
			}
		default: // xor, ring: mild inflation
			if s1 < 8 || s4 < s1 {
				t.Errorf("%s: steps (%v, %v) not inflating", name, s1, s4)
			}
		}
	}
}

func TestHopDistribution(t *testing.T) {
	ts, err := Generate("hopdist", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want 2 (chord, kademlia)", len(ts))
	}
	for _, tb := range ts {
		last := tb.NumRows() - 1
		if got := cell(t, tb, last, "hops"); got != "mean" {
			t.Fatalf("%s: last row label %q, want mean", tb.Title(), got)
		}
		for _, q := range []string{"0", "0.2"} {
			// Each empirical pmf column sums to 100% over the hop rows.
			for _, src := range []string{"analytic", "event", "live"} {
				col := src + " q=" + q + " %"
				var sum float64
				for r := 0; r < last; r++ {
					sum += cellF(t, tb, r, col)
				}
				if sum < 99.5 || sum > 100.5 {
					t.Errorf("%s: %s mass sums to %v%%", tb.Title(), col, sum)
				}
			}
			// The live cluster's distribution is the event simulator's,
			// bucket for bucket (the conformance suite pins the histograms
			// equal), so every rendered cell matches exactly.
			for r := 0; r <= last; r++ {
				ev := cell(t, tb, r, "event q="+q+" %")
				lv := cell(t, tb, r, "live q="+q+" %")
				if ev != lv {
					t.Errorf("%s: row %d event %s != live %s at q=%s", tb.Title(), r, ev, lv, q)
				}
			}
			// The Markov mixture tracks the sampled empirical mean.
			am := cellF(t, tb, last, "analytic q="+q+" %")
			em := cellF(t, tb, last, "event q="+q+" %")
			t.Logf("%s q=%s: analytic mean %v, event mean %v", tb.Title(), q, am, em)
			if d := am - em; d > 1 || d < -1 {
				t.Errorf("%s: analytic mean %v vs event mean %v (|Δ| > 1) at q=%s", tb.Title(), am, em, q)
			}
		}
	}
}

func TestSuccessorAblationMonotone(t *testing.T) {
	ts, err := Generate("successors", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", tb.NumRows())
	}
	// At high q, more successors must help substantially; allow tiny noise
	// regressions between adjacent rows but require overall improvement.
	col := "r% at q=0.70"
	first := cellF(t, tb, 0, col)
	last := cellF(t, tb, tb.NumRows()-1, col)
	if last < first+10 {
		t.Errorf("s=16 (%v%%) did not materially beat s=1 (%v%%) at q=0.7", last, first)
	}
	for r := 1; r < tb.NumRows(); r++ {
		prev := cellF(t, tb, r-1, col)
		cur := cellF(t, tb, r, col)
		if cur < prev-3 {
			t.Errorf("row %d: routability dropped from %v to %v with more successors", r, prev, cur)
		}
	}
}

func TestSparseSpacesMatchesEffectiveDimension(t *testing.T) {
	ts, err := Generate("sparse", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.NumRows())
	}
	if cellF(t, tb, 0, "sparse chord r%") != 100 {
		t.Errorf("sparse chord at q=0 not perfect")
	}
	for r := 0; r < tb.NumRows(); r++ {
		sparse := cellF(t, tb, r, "sparse chord r%")
		dense := cellF(t, tb, r, "dense chord r% (d=12)")
		if diff := sparse - dense; diff > 6 || diff < -6 {
			t.Errorf("row %d: sparse %v vs dense %v", r, sparse, dense)
		}
	}
}

func TestRadixAblation(t *testing.T) {
	ts, err := Generate("base", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want 2", len(ts))
	}
	equalN := ts[0]
	// At every q, larger radix means fewer failed paths (shorter routes).
	for r := 0; r < equalN.NumRows(); r++ {
		b2 := cellF(t, equalN, r, "base 2 (d=16)")
		b16 := cellF(t, equalN, r, "base 16 (d=4)")
		b256 := cellF(t, equalN, r, "base 256 (d=2)")
		if !(b2 >= b16 && b16 >= b256) {
			t.Errorf("row %d: failed paths not decreasing in radix: %v %v %v", r, b2, b16, b256)
		}
	}
	scaling := ts[1]
	prev := -1.0
	for r := 0; r < scaling.NumRows(); r++ {
		f := cellF(t, scaling, r, "routability %")
		if prev >= 0 && f > prev {
			t.Errorf("row %d: base-16 routability rose with size: %v after %v", r, f, prev)
		}
		prev = f
	}
}

func TestExtensionTitlesMentionExperimentIDs(t *testing.T) {
	for name, wantFragment := range map[string]string{
		"pathlen":    "E12",
		"successors": "E13",
		"sparse":     "E14",
	} {
		ts, err := Generate(name, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(ts[0].Title(), wantFragment) {
			t.Errorf("%s title %q missing %q", name, ts[0].Title(), wantFragment)
		}
	}
}
