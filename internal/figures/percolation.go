package figures

import (
	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/percolation"
	"rcm/internal/sim"
	"rcm/internal/table"
	"rcm/overlay"
)

func init() {
	register("percolation", Percolation)
}

// Percolation is experiment E10: the paper's §1 argument that connectivity
// is necessary but not sufficient for routing. For each geometry the table
// shows, across q, the survivors' giant-component fraction (the percolation
// ceiling) against the simulated routability — routability must sit below
// the ceiling, and the gap is the part percolation theory cannot see (the
// reason RCM exists). A second table samples reachable-vs-connected
// component sizes directly.
func Percolation(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 12 {
		bits = 12 // component analysis touches every node; keep it snappy
	}
	qs := []float64{0.1, 0.3, 0.5, 0.7}

	t1 := table.New("§1 — connectivity ceiling vs realized routability (N=2^"+table.I(bits)+")",
		"protocol", "q", "giant component %", "simulated routability %", "gap %")
	t2 := table.New("§4.1 — mean reachable vs connected component of surviving roots (q=0.3)",
		"protocol", "mean reachable", "mean connected", "reachable/connected %")
	for _, name := range dht.ProtocolNames() {
		p, err := dht.New(name, dht.Config{Bits: bits, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		n := int(p.Space().Size())
		nodes := make([]overlay.ID, n)
		for i := range nodes {
			nodes[i] = overlay.ID(i)
		}
		pts := percolation.ThresholdScan(p, nodes, qs, percolation.ScanOptions{Trials: opt.Trials, Seed: opt.Seed})
		for i, q := range qs {
			res, err := sim.MeasureStaticResilience(p, q, sim.Options{
				Pairs:  opt.Pairs / 2,
				Trials: opt.Trials,
				Seed:   opt.Seed + uint64(i),
			})
			if err != nil {
				return nil, err
			}
			giant := pts[i].GiantFraction
			t1.AddRow(
				name,
				table.F(q, 1),
				table.Pct(giant, 2),
				table.Pct(res.Routability, 2),
				table.Pct(giant-res.Routability, 2),
			)
		}

		alive := overlay.NewBitset(n)
		rng := overlay.NewRNG(opt.Seed ^ 0xE10)
		alive.FillRandomAlive(0.3, rng)
		reach, conn := percolation.ReachableVsConnected(p, nodes, alive, 25, rng)
		ratio := 0.0
		if conn > 0 {
			ratio = reach / conn
		}
		t2.AddRow(name, table.F(reach, 1), table.F(conn, 1), table.Pct(ratio, 1))
	}
	// Context row: analytic routability of the matching geometries.
	t3 := table.New("§1 — analytic RCM routability at the same operating points (N=2^"+table.I(bits)+")",
		"geometry", "q=0.1", "q=0.3", "q=0.5", "q=0.7")
	for _, g := range core.AllGeometries() {
		row := []string{g.Name()}
		for _, q := range qs {
			r, err := core.Routability(g, bits, q)
			if err != nil {
				return nil, err
			}
			row = append(row, table.Pct(r, 2))
		}
		t3.AddRow(row...)
	}
	return []*table.Table{t1, t2, t3}, nil
}
