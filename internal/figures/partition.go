package figures

import (
	"context"
	"fmt"

	"rcm/exp"
	"rcm/internal/core"
	"rcm/internal/table"
)

func init() {
	register("partition", Partition)
}

// Partition is experiment E21: routability through a network partition,
// scored against the static framework's prediction. A 2-way partition
// splits the population down a deterministic cut for the middle third of
// the run (rcm/fault's partition clause, injected at the transport);
// from any source's viewpoint the other half of the population is
// unreachable, which the static model summarizes as a failed fraction
// q = 1/2. The predicted lookup success is then (1−q)·r(N,q) — the
// destination must sit on the source's side of the cut AND the greedy
// path must avoid it — and, with k independent replicas, one minus that
// failing k times.
//
// The event columns measure the same three regimes with full message
// dynamics: before the cut (healthy baseline), during it (cross-cut
// requests blackhole and burn their retransmission budgets), and after
// it heals (recovery — routing state was never torn down, so success
// snaps back without repair traffic). The k = 3 row is the graceful-
// degradation claim in one line: replica failover converts the cut from
// "half the keyspace is gone" into a modest dent.
func Partition(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 8 {
		bits = 8 // full message dynamics; 2^8 keeps E21 quick
	}
	const (
		duration = 6.0
		buckets  = 6
		from, to = 2.0, 4.0
		q        = 0.5 // a 2-way cut hides half the population from any source
	)
	transport := fmt.Sprintf("fault:partition:2@%g-%g/constant:0.01", from, to)
	ks := []int{1, 3}
	settings := make([]exp.EventSetting, 0, len(ks))
	for _, k := range ks {
		settings = append(settings, exp.EventSetting{
			Scenario:  "faultstorm",
			Transport: transport,
			Params: exp.EventParams{
				Rate:     float64(opt.Pairs),
				Replicas: k,
			},
			Duration: duration,
			Buckets:  buckets,
		})
	}
	specs := []exp.Spec{exp.MustSpec("chord"), exp.MustSpec("kademlia")}
	plan := exp.Plan{Name: "partition", Specs: specs, Bits: []int{bits}, Events: settings}

	rows, err := exp.Run(context.Background(), plan,
		exp.WithModes(exp.ModeEvent),
		exp.WithPairs(opt.Pairs), exp.WithTrials(opt.Trials),
		exp.WithSeed(opt.Seed), exp.WithSimWorkers(1),
	)
	if err != nil {
		return nil, err
	}

	// Static predictions per geometry: r(N, 1/2) from the paper's
	// framework, then success = (1−q)·r and its k-replica extension.
	pred := map[string][2]float64{} // geometry name → {k=1, k=3}
	for _, g := range core.AllGeometries() {
		r, err := core.Routability(g, bits, q)
		if err != nil {
			continue // geometries without an analytic form don't appear here
		}
		single := (1 - q) * r
		pred[g.Name()] = [2]float64{single, 1 - (1-single)*(1-single)*(1-single)}
	}

	// Aggregate each (geometry, k) block's lookups into the three
	// regimes by bucket start time. Rows arrive in plan order —
	// settings-major within each spec, buckets in time order — so a cell
	// is exactly the next `buckets` rows of its geometry.
	type agg struct {
		started, completed [3]int // pre, during, post
	}
	groups := map[string]*agg{}
	key := func(geometry string, setting int) string { return fmt.Sprintf("%s/%d", geometry, setting) }
	rowsSeen := map[string]int{}
	width := duration / buckets
	for _, r := range rows {
		k := key(r.Geometry, rowsSeen[r.Geometry]/buckets)
		rowsSeen[r.Geometry]++
		g, ok := groups[k]
		if !ok {
			g = &agg{}
			groups[k] = g
		}
		if r.EventStarted == 0 {
			continue
		}
		start := r.Time - width // lookups are bucketed by start time
		regime := 0
		switch {
		case start >= to-1e-9:
			regime = 2
		case start >= from-1e-9:
			regime = 1
		}
		g.started[regime] += r.EventStarted
		g.completed[regime] += int(r.EventSuccess*float64(r.EventStarted) + 0.5)
	}

	t := table.New(fmt.Sprintf("E21 — routability through a 2-way partition (window [%g, %g)) vs static model at q=%.2g (N=2^%d)", from, to, q, bits),
		"protocol", "k", "pre %", "during %", "post %", "static pred %")
	for _, s := range specs {
		name := s.Geometry.Name()
		for i, k := range ks {
			g, ok := groups[key(name, i)]
			if !ok {
				return nil, fmt.Errorf("figures: partition missing group %s k=%d", name, k)
			}
			cells := []string{s.Protocol, table.I(k)}
			for regime := 0; regime < 3; regime++ {
				if g.started[regime] == 0 {
					return nil, fmt.Errorf("figures: partition %s k=%d regime %d started no lookups", name, k, regime)
				}
				cells = append(cells, table.Pct(float64(g.completed[regime])/float64(g.started[regime]), 2))
			}
			p, ok := pred[name]
			if !ok {
				return nil, fmt.Errorf("figures: partition has no static prediction for %s", name)
			}
			cells = append(cells, table.Pct(p[i], 2))
			t.AddRow(cells...)
		}
	}
	return []*table.Table{t}, nil
}
