package figures

import (
	"math"

	"rcm/internal/core"
	"rcm/internal/table"
)

func init() {
	register("qxor", QxorApproximation)
}

// QxorApproximation reproduces the Eq. 6 approximation study (E8): the
// paper derives a closed-form approximation of the exact Qxor(m) via
// 1−x ≈ e^{−x} and uses it for the scalability argument. The table
// quantifies the approximation error over the (m, q) plane.
func QxorApproximation(opt Options) ([]*table.Table, error) {
	g := core.XOR{}
	t := table.New("Eq. 6 — exact Qxor(m) vs the paper's closed-form approximation",
		"m", "q", "exact", "approx", "abs err", "rel err %")
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		for _, q := range []float64{0.05, 0.1, 0.2, 0.4} {
			exact := g.PhaseFailure(64, m, q)
			approx := g.PhaseFailureApprox(m, q)
			absErr := math.Abs(exact - approx)
			relPct := 0.0
			if exact > 0 {
				relPct = 100 * absErr / exact
			}
			t.AddRow(
				table.I(m),
				table.F(q, 2),
				table.E(exact, 4),
				table.E(approx, 4),
				table.E(absErr, 2),
				table.F(relPct, 1),
			)
		}
	}
	return []*table.Table{t}, nil
}
