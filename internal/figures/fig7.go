package figures

import (
	"context"
	"math"

	"rcm/exp"
	"rcm/internal/table"
)

func init() {
	register("7a", Fig7a)
	register("7b", Fig7b)
}

// Fig7a reproduces Fig. 7(a): percentage of failed paths for varying q in
// the asymptotic limit, evaluated — as the paper does — at N = 2^100. The
// unscalable geometries (tree, Symphony) are expected to be near-step
// functions; the scalable three stay close to their N = 2^16 curves.
// Symphony uses kn = ks = 1 per the figure's footnote.
func Fig7a(opt Options) ([]*table.Table, error) {
	specs := exp.AllSpecs()
	qs := exp.PaperQGrid()
	rows, err := exp.Run(context.Background(), exp.Plan{
		Name:  "fig7a",
		Specs: specs,
		Bits:  []int{100},
		Qs:    qs,
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"q %"}
	for _, s := range specs {
		cols = append(cols, s.Geometry.Name()+" failed %")
	}
	t := table.New("Fig. 7(a) — failed paths in the asymptotic limit, N=2^100", cols...)
	for qi, q := range qs {
		row := []string{table.Pct(q, 0)}
		for gi := range specs {
			row = append(row, table.F(rows[gi*len(qs)+qi].AnalyticFailedPct, 3))
		}
		t.AddRow(row...)
	}
	return []*table.Table{t}, nil
}

// Fig7b reproduces Fig. 7(b): routability (%) for varying system size at
// fixed q = 0.1. The paper plots N from ~10^5 to 10^10; the table extends
// to 2^100 to make the tree/Symphony decay and the scalable plateaus
// unmistakable.
func Fig7b(opt Options) ([]*table.Table, error) {
	const q = 0.1
	specs := exp.AllSpecs()
	ds := []int{10, 14, 17, 20, 24, 27, 30, 34, 40, 50, 70, 100}
	rows, err := exp.Run(context.Background(), exp.Plan{
		Name:  "fig7b",
		Specs: specs,
		Bits:  ds,
		Qs:    []float64{q},
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"N", "log2 N"}
	for _, s := range specs {
		cols = append(cols, s.Geometry.Name()+" r%")
	}
	t := table.New("Fig. 7(b) — routability vs system size at q=0.1", cols...)
	for di, d := range ds {
		row := []string{table.E(math.Pow(2, float64(d)), 1), table.I(d)}
		for gi := range specs {
			row = append(row, table.Pct(rows[gi*len(ds)+di].AnalyticRoutability, 2))
		}
		t.AddRow(row...)
	}
	return []*table.Table{t}, nil
}
