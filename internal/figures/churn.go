package figures

import (
	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func init() {
	register("churn", Churn)
}

// Churn is experiment E11: the dynamic-failure regime the paper leaves
// "currently under study" (§1). Nodes alternate online/offline with
// exponential sessions giving steady-state offline fraction q_eff; the
// table compares, per protocol:
//
//   - the churn steady-state lookup success with static tables (the
//     paper's assumption carried into the dynamic setting),
//   - the same with repair (rejoin + periodic table refresh), and
//   - the static-model predictions (simulated and analytic) at q = q_eff.
//
// Agreement between column 2 and the static predictions shows the static
// model transfers to churn equilibria; the repair column quantifies how
// much real maintenance recovers.
func Churn(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 12 {
		bits = 12
	}
	geoms := map[string]core.Geometry{
		"plaxton":   core.Tree{},
		"can":       core.Hypercube{},
		"kademlia":  core.XOR{},
		"chord":     core.Ring{},
		"symphony":  core.DefaultSymphony(),
		"singlehop": core.SingleHop{},
	}
	churnOpt := sim.ChurnOptions{
		MeanOnline:      1,
		MeanOffline:     0.25, // q_eff = 0.2
		Duration:        8,
		MeasureEvery:    0.5,
		PairsPerMeasure: opt.Pairs / 5,
		Seed:            opt.Seed,
	}
	qEff := churnOpt.QEff()
	t := table.New("E11 — churn steady state vs static model (N=2^"+table.I(bits)+", q_eff="+table.F(qEff, 2)+")",
		"protocol", "churn success %", "churn+repair success %", "static sim %", "static analytic %", "offline %")
	for _, name := range dht.ProtocolNames() {
		pStatic, err := dht.New(name, dht.Config{Bits: bits, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		pts, err := sim.SimulateChurn(pStatic, churnOpt)
		if err != nil {
			return nil, err
		}
		noRepair, offline := sim.SteadyState(pts, 1)

		pRepair, err := dht.New(name, dht.Config{Bits: bits, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		repairOpt := churnOpt
		repairOpt.RepairOnRejoin = true
		repairOpt.RepairEvery = 0.5
		ptsRep, err := sim.SimulateChurn(pRepair, repairOpt)
		if err != nil {
			return nil, err
		}
		withRepair, _ := sim.SteadyState(ptsRep, 1)

		static, err := sim.MeasureStaticResilience(pStatic, qEff, sim.Options{
			Pairs:  opt.Pairs,
			Trials: opt.Trials,
			Seed:   opt.Seed + 99,
		})
		if err != nil {
			return nil, err
		}
		analytic, err := core.Routability(geoms[name], bits, qEff)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			name,
			table.Pct(noRepair, 2),
			table.Pct(withRepair, 2),
			table.Pct(static.Routability, 2),
			table.Pct(analytic, 2),
			table.Pct(offline, 2),
		)
	}
	return []*table.Table{t}, nil
}
