package figures

import (
	"strconv"
	"strings"
	"testing"

	"rcm/internal/table"
)

// fastOpts keeps generator tests quick while exercising every code path.
func fastOpts() Options {
	return Options{Bits: 10, Pairs: 2000, Trials: 2, Seed: 1}
}

func cell(t *testing.T, tb *table.Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns() {
		if c == col {
			return tb.Row(row)[i]
		}
	}
	t.Fatalf("table %q has no column %q (have %v)", tb.Title(), col, tb.Columns())
	return ""
}

func cellF(t *testing.T, tb *table.Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("cell %q/%q = %q not a float: %v", tb.Title(), col, cell(t, tb, row, col), err)
	}
	return v
}

func TestNamesComplete(t *testing.T) {
	want := []string{"3", "6a", "6b", "7a", "7b", "base", "chains", "churn", "churngrid", "eventcmp", "frontier", "hopdist", "lifetimecmp", "partition", "pathlen", "percolation", "qxor", "scalability", "sparse", "successors", "symphony"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", fastOpts()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFig3ExactAgreement(t *testing.T) {
	ts, err := Generate("3", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("fig3 produced %d tables", len(ts))
	}
	// The validation table's |diff| column must be at numeric noise level.
	valid := ts[1]
	for r := 0; r < valid.NumRows(); r++ {
		if diff := cellF(t, valid, r, "|diff|"); diff > 1e-12 {
			t.Errorf("row %d: exact enumeration differs from analytic by %v", r, diff)
		}
		ea := cellF(t, valid, r, "E[S] analytic")
		ee := cellF(t, valid, r, "E[S] exact")
		if ea != ee {
			t.Errorf("row %d: printed E[S] differ: %v vs %v", r, ea, ee)
		}
	}
}

func TestChainsAgreement(t *testing.T) {
	ts, err := Generate("chains", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 5*3*2 {
		t.Fatalf("chains rows = %d, want 30", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		if diff := cellF(t, tb, r, "|diff|"); diff > 1e-8 {
			t.Errorf("row %d: chain vs closed form diff %v", r, diff)
		}
	}
}

func TestFig6aShapes(t *testing.T) {
	ts, err := Generate("6a", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("fig6a tables = %d, want 3 (tree, hypercube, xor)", len(ts))
	}
	for _, tb := range ts {
		if tb.NumRows() != 19 { // q = 0..90% step 5
			t.Errorf("%s: rows = %d, want 19", tb.Title(), tb.NumRows())
		}
		// Failed paths start at 0 and end high; analytic within 12 points of
		// simulation everywhere (the paper's "great fit", plus noise head-room).
		for r := 0; r < tb.NumRows(); r++ {
			a := cellF(t, tb, r, "analytic failed %")
			s := cellF(t, tb, r, "simulated failed %")
			if diff := a - s; diff > 12 || diff < -12 {
				t.Errorf("%s row %d: analytic %v vs simulated %v", tb.Title(), r, a, s)
			}
		}
		first := cellF(t, tb, 0, "simulated failed %")
		last := cellF(t, tb, tb.NumRows()-1, "simulated failed %")
		if first != 0 {
			t.Errorf("%s: failed paths at q=0 is %v", tb.Title(), first)
		}
		if last < 50 {
			t.Errorf("%s: failed paths at q=0.9 only %v", tb.Title(), last)
		}
	}
}

func TestFig6bBoundRegimes(t *testing.T) {
	ts, err := Generate("6b", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	for r := 0; r < tb.NumRows(); r++ {
		q := cellF(t, tb, r, "q %")
		a := cellF(t, tb, r, "analytic failed %")
		s := cellF(t, tb, r, "simulated failed %")
		switch {
		case q <= 20:
			if d := a - s; d < -6 || d > 6 {
				t.Errorf("q=%v%%: tight regime violated: analytic %v vs sim %v", q, a, s)
			}
		case q >= 40 && q <= 80:
			// Analytic failed-paths is an upper bound here.
			if a < s-4 {
				t.Errorf("q=%v%%: analytic %v not an upper bound of sim %v", q, a, s)
			}
		}
	}
}

func TestFig7aStepFunctions(t *testing.T) {
	ts, err := Generate("7a", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 19 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// At q=5% (row 1) tree has failed >90% of paths at N=2^100 and is
	// effectively at 100% by q=10% (row 2) — the near-step shape of the
	// paper's curve. Symphony is even sharper.
	r := 1
	if v := cellF(t, tb, r, "tree failed %"); v < 90 {
		t.Errorf("tree at q=5%%: %v, want near 100 (step function)", v)
	}
	if v := cellF(t, tb, 2, "tree failed %"); v < 99 {
		t.Errorf("tree at q=10%%: %v, want >99", v)
	}
	if v := cellF(t, tb, r, "symphony failed %"); v < 95 {
		t.Errorf("symphony at q=5%%: %v, want near 100", v)
	}
	for _, col := range []string{"hypercube failed %", "xor failed %", "ring failed %"} {
		if v := cellF(t, tb, r, col); v > 15 {
			t.Errorf("%s at q=5%%: %v, want small", col, v)
		}
	}
}

func TestFig7bDecayAndPlateau(t *testing.T) {
	ts, err := Generate("7b", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	last := tb.NumRows() - 1
	if v := cellF(t, tb, last, "tree r%"); v > 5 {
		t.Errorf("tree at 2^100: %v%%, want decay to ~0", v)
	}
	if v := cellF(t, tb, last, "symphony r%"); v > 1 {
		t.Errorf("symphony at 2^100: %v%%, want ~0", v)
	}
	for _, col := range []string{"hypercube r%", "xor r%", "ring r%"} {
		first := cellF(t, tb, 0, col)
		end := cellF(t, tb, last, col)
		if end < 90 {
			t.Errorf("%s at 2^100: %v%%, want plateau >90%%", col, end)
		}
		if first-end > 5 {
			t.Errorf("%s decayed from %v to %v", col, first, end)
		}
	}
}

func TestScalabilityVerdictsAgree(t *testing.T) {
	ts, err := Generate("scalability", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tables = %d", len(ts))
	}
	verdicts := ts[1]
	for r := 0; r < verdicts.NumRows(); r++ {
		num := cell(t, verdicts, r, "numeric verdict")
		paper := cell(t, verdicts, r, "paper verdict")
		if num != paper {
			t.Errorf("row %d: numeric %q vs paper %q", r, num, paper)
		}
	}
}

func TestQxorApproxTable(t *testing.T) {
	ts, err := Generate("qxor", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 24 {
		t.Fatalf("rows = %d, want 24", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		if e := cellF(t, tb, r, "exact"); e < 0 || e > 1 {
			t.Errorf("row %d: exact Q out of range: %v", r, e)
		}
	}
}

func TestSymphonyDesignMonotone(t *testing.T) {
	ts, err := Generate("symphony", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 16 {
		t.Fatalf("rows = %d, want 16", tb.NumRows())
	}
	// More shortcuts at fixed kn must not reduce max sustainable d.
	// Rows are ordered kn-major, ks-minor.
	for kn := 0; kn < 4; kn++ {
		prev := -1.0
		for ks := 0; ks < 4; ks++ {
			v := cellF(t, tb, kn*4+ks, "max d with r>=90%")
			if v < prev {
				t.Errorf("kn=%d ks=%d: max d %v below previous %v", kn+1, ks+1, v, prev)
			}
			prev = v
		}
	}
}

func TestPercolationCeiling(t *testing.T) {
	ts, err := Generate("percolation", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("tables = %d", len(ts))
	}
	ceiling := ts[0]
	for r := 0; r < ceiling.NumRows(); r++ {
		giant := cellF(t, ceiling, r, "giant component %")
		routed := cellF(t, ceiling, r, "simulated routability %")
		if routed > giant+2 { // sampling noise allowance
			t.Errorf("row %d: routability %v above connectivity ceiling %v", r, routed, giant)
		}
	}
	reach := ts[1]
	for r := 0; r < reach.NumRows(); r++ {
		re := cellF(t, reach, r, "mean reachable")
		co := cellF(t, reach, r, "mean connected")
		if re > co+1e-9 {
			t.Errorf("row %d: reachable %v exceeds connected %v", r, re, co)
		}
	}
}

func TestChurnTable(t *testing.T) {
	ts, err := Generate("churn", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.NumRows())
	}
	for r := 0; r < tb.NumRows(); r++ {
		churn := cellF(t, tb, r, "churn success %")
		static := cellF(t, tb, r, "static sim %")
		repair := cellF(t, tb, r, "churn+repair success %")
		if diff := churn - static; diff > 8 || diff < -8 {
			t.Errorf("row %d: churn %v vs static %v", r, churn, static)
		}
		if repair < churn-3 {
			t.Errorf("row %d: repair %v worse than none %v", r, repair, churn)
		}
		off := cellF(t, tb, r, "offline %")
		if off < 15 || off > 25 {
			t.Errorf("row %d: offline fraction %v, want ~20", r, off)
		}
	}
}

func TestGenerateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("generating every figure is slow")
	}
	ts, err := Generate("all", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) < 11 {
		t.Errorf("all produced %d tables", len(ts))
	}
	for _, tb := range ts {
		if tb.NumRows() == 0 {
			t.Errorf("table %q is empty", tb.Title())
		}
		if !strings.Contains(tb.ASCII(), "\n") {
			t.Errorf("table %q renders empty", tb.Title())
		}
	}
}
