package figures

import (
	"math"

	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/internal/sim"
	"rcm/internal/table"
)

func init() {
	register("sparse", SparseSpaces)
}

// SparseSpaces is experiment E14: the paper's §6 future work — DHTs whose
// identifier space is only partially populated, as every deployed system
// is. n nodes are placed at random identifiers in a 2^16 space and the
// overlays resolve table targets to the nearest occupied node, exactly as
// deployed Chord/Kademlia do. The working hypothesis (which the paper's
// closing remark invites) is that the fully-populated analysis carries over
// with the effective dimension d_eff = log2 n; the table tests it against
// simulation.
func SparseSpaces(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	const spaceBits = 16
	const n = 4096 // d_eff = 12
	dEff := int(math.Round(math.Log2(n)))

	sc, err := dht.NewSparseChord(dht.Config{Bits: spaceBits, Seed: opt.Seed}, n)
	if err != nil {
		return nil, err
	}
	sk, err := dht.NewSparseKademlia(dht.Config{Bits: spaceBits, Seed: opt.Seed}, n)
	if err != nil {
		return nil, err
	}
	dense, err := dht.New("chord", dht.Config{Bits: dEff, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}

	t := table.New("E14 — non-fully-populated spaces: n=4096 nodes in a 2^16 space vs d_eff=12 predictions",
		"q", "sparse chord r%", "dense chord r% (d=12)", "ring analytic r% (d=12)", "sparse kademlia r%", "xor analytic r% (d=12)")
	for i, q := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7} {
		simOpt := sim.Options{Pairs: opt.Pairs / 2, Trials: opt.Trials, Seed: opt.Seed + uint64(i)*17}
		rsc, err := sim.MeasureStaticResilience(sc, q, simOpt)
		if err != nil {
			return nil, err
		}
		rdense, err := sim.MeasureStaticResilience(dense, q, simOpt)
		if err != nil {
			return nil, err
		}
		rsk, err := sim.MeasureStaticResilience(sk, q, simOpt)
		if err != nil {
			return nil, err
		}
		aRing, err := core.Routability(core.Ring{}, dEff, q)
		if err != nil {
			return nil, err
		}
		aXOR, err := core.Routability(core.XOR{}, dEff, q)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			table.F(q, 2),
			table.Pct(rsc.Routability, 2),
			table.Pct(rdense.Routability, 2),
			table.Pct(aRing, 2),
			table.Pct(rsk.Routability, 2),
			table.Pct(aXOR, 2),
		)
	}
	return []*table.Table{t}, nil
}
