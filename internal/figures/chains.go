package figures

import (
	"math"

	"rcm/internal/core"
	"rcm/internal/markov"
	"rcm/internal/table"
)

func init() {
	register("chains", Chains)
}

// Chains realizes the paper's Markov-chain diagrams (Fig. 4(a), 4(b), 5(b),
// 8(a), 8(b)) as executable models and cross-checks each chain's absorption
// probability against the closed-form p(h,q) = Π(1−Q(m)) used by the
// analytic core. The |diff| column demonstrates the two derivations agree
// to solver precision.
func Chains(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	const symD = 16
	sym := core.DefaultSymphony()
	build := map[string]func(h int, q float64) (*markov.Chain, markov.Endpoints, error){
		"tree":      markov.TreeChain,
		"hypercube": markov.HypercubeChain,
		"xor":       markov.XORChain,
		"ring":      markov.RingChain,
		"symphony": func(h int, q float64) (*markov.Chain, markov.Endpoints, error) {
			return markov.SymphonyChain(h, symD, q, sym.KN, sym.KS)
		},
	}
	geoms := map[string]core.Geometry{
		"tree":      core.Tree{},
		"hypercube": core.Hypercube{},
		"xor":       core.XOR{},
		"ring":      core.Ring{},
		"symphony":  sym,
	}
	t := table.New("Fig. 4/5/8 — routing Markov chains vs closed-form p(h,q)",
		"geometry", "h", "q", "states", "p chain", "p closed form", "|diff|")
	for _, name := range []string{"tree", "hypercube", "xor", "ring", "symphony"} {
		for _, h := range []int{2, 5, 8} {
			for _, q := range []float64{0.1, 0.5} {
				c, ep, err := build[name](h, q)
				if err != nil {
					return nil, err
				}
				pChain, err := c.AbsorptionProb(ep.Start, ep.Success)
				if err != nil {
					return nil, err
				}
				g := geoms[name]
				d := symD
				if name != "symphony" {
					d = h
				}
				pClosed, err := core.SuccessProb(g, maxInt(d, h), h, q)
				if err != nil {
					return nil, err
				}
				t.AddRow(
					name,
					table.I(h),
					table.F(q, 2),
					table.I(c.NumStates()),
					table.F(pChain, 10),
					table.F(pClosed, 10),
					table.E(math.Abs(pChain-pClosed), 2),
				)
			}
		}
	}
	return []*table.Table{t}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
