package figures

import (
	"fmt"
	"math"
	"time"

	"rcm/eventsim"
	"rcm/internal/core"
	"rcm/internal/markov"
	"rcm/internal/table"
	"rcm/node/cluster"
	"rcm/obs"
)

func init() {
	register("hopdist", HopDistribution)
}

// HopDistribution is experiment E19: the full hop-count *distribution*,
// three ways, per protocol. The Markov chains predict not just the mean
// route length but its entire law — StepDistribution mixed over the
// target distance h with weights n(h)·p(h,q) (the probability the
// target sits h hops away and the route survives). That analytic
// distribution is tabulated bucket for bucket against the event
// simulator's steady-state hop histogram and against a live in-process
// cluster replaying the identical schedule over the same seed-pinned
// tables. The event and live columns agree exactly (the conformance
// suite pins their histograms equal); the analytic column tracks them
// statistically, since the simulator samples concrete (src, dst) pairs
// from one overlay realization. A side-product visible across the two
// tables: chord and kademlia share the same wire hop law even though
// their phase-level geometries differ.
func HopDistribution(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 7 {
		bits = 7 // live replay boots 2^bits real nodes; 128 keeps E19 quick
	}
	qs := []float64{0, 0.2}
	// The analytic column needs the *hop-granular* law, and for both
	// protocols that is the XOR/binomial one: a kademlia hop clears one
	// set bit of the XOR distance, and a chord hop clears one set bit of
	// the clockwise offset — popcount either way, so n(h) = C(d,h)
	// targets need h hops. (The ring geometry's n(h) = 2^{h−1} counts
	// *phases* — bit positions below the highest set bit — which
	// upper-bounds hops: zero bits are crossed for free. Ring phases are
	// the right currency for routability, not for the wire histogram.)
	protocols := []struct {
		name  string
		geom  core.Geometry
		chain func(h int, q float64) (*markov.Chain, markov.Endpoints, error)
	}{
		{"chord", core.XOR{}, markov.XORChain},
		{"kademlia", core.XOR{}, markov.XORChain},
	}

	tables := make([]*table.Table, 0, len(protocols))
	for _, p := range protocols {
		// dists[qi] = {analytic, event, live} hop pmfs for qs[qi].
		dists := make([][3][]float64, len(qs))
		for qi, q := range qs {
			analytic, err := analyticHopDist(p.geom, p.chain, bits, q)
			if err != nil {
				return nil, err
			}

			cfg := eventsim.Config{
				Protocol: p.name,
				Overlay:  eventsim.OverlayConfig{Bits: bits, Seed: opt.Seed},
				Scenario: "massfail",
				Params:   eventsim.Params{FailFraction: q, FailTime: 1, Rate: 200},
				Duration: 4,
				Seed:     opt.Seed,
				// Lossless transport on both sides: same-candidate
				// retransmission never helps, and disabling it keeps the
				// live replay's RTO wall clock tight.
				Retransmits: -1,
			}
			res, err := eventsim.Run(cfg)
			if err != nil {
				return nil, err
			}
			simHist := res.WindowHopDist(2, cfg.Duration)

			sched, err := eventsim.BuildSchedule(cfg)
			if err != nil {
				return nil, err
			}
			// RTO well above scheduling jitter: on a loaded single-core
			// host a tight timeout fires spuriously, and the resulting
			// failover changes a hop count — which would break the
			// figure's render-twice determinism contract. The transport
			// is lossless in-memory, so a large RTO only slows genuine
			// dead-candidate failovers.
			c, err := cluster.New(cluster.Config{
				Protocol:    cfg.Protocol,
				Bits:        cfg.Overlay.Bits,
				Seed:        cfg.Overlay.Seed,
				RTO:         75 * time.Millisecond,
				Retransmits: -1,
				Deadline:    10 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			report, err := c.Replay(sched, cluster.ReplayOptions{})
			c.Close()
			if err != nil {
				return nil, err
			}
			liveHist := report.WindowHopDist(2, cfg.Duration)
			if simHist.Count() == 0 || liveHist.Count() == 0 {
				return nil, fmt.Errorf("figures: hopdist %s q=%v: empty steady-state window", p.name, q)
			}

			dists[qi] = [3][]float64{analytic, histPMF(simHist), histPMF(liveHist)}
		}

		cols := []string{"hops"}
		maxK := 0
		for qi, q := range qs {
			for src, label := range []string{"analytic", "event", "live"} {
				cols = append(cols, fmt.Sprintf("%s q=%v %%", label, q))
				if n := len(dists[qi][src]); n-1 > maxK {
					maxK = n - 1
				}
			}
		}
		t := table.New(fmt.Sprintf("E19 — %s hop-count distribution: Markov mixture vs eventsim vs live cluster (N=2^%d)",
			p.name, bits), cols...)
		for k := 0; k <= maxK; k++ {
			row := []string{table.I(k)}
			for qi := range qs {
				for src := 0; src < 3; src++ {
					row = append(row, table.F(100*massAt(dists[qi][src], k), 2))
				}
			}
			t.AddRow(row...)
		}
		meanRow := []string{"mean"}
		for qi := range qs {
			for src := 0; src < 3; src++ {
				meanRow = append(meanRow, table.F(pmfMean(dists[qi][src]), 3))
			}
		}
		t.AddRow(meanRow...)
		tables = append(tables, t)
	}
	return tables, nil
}

// analyticHopDist mixes the chain-level walk-length law over the target
// distance: P(hops = k | success) = Σ_h w(h)·P_h(k) / Σ_h w(h) with
// w(h) = n(h)·p(h,q) — Roos-style: the distributional refinement of
// core.MeanSuccessfulRouteLength.
func analyticHopDist(g core.Geometry, chain func(h int, q float64) (*markov.Chain, markov.Endpoints, error), d int, q float64) ([]float64, error) {
	maxH := g.MaxDistance(d)
	var mix []float64
	var totalW float64
	logp := 0.0
	for h := 1; h <= maxH; h++ {
		logp += math.Log1p(-g.PhaseFailure(d, h, q))
		w := math.Exp(g.LogNodesAt(d, h) + logp)
		if w == 0 {
			continue
		}
		c, ep, err := chain(h, q)
		if err != nil {
			return nil, err
		}
		dist, err := c.StepDistribution(ep.Start, ep.Success)
		if err != nil {
			return nil, err
		}
		if len(dist) > len(mix) {
			grown := make([]float64, len(dist))
			copy(grown, mix)
			mix = grown
		}
		for k, pk := range dist {
			mix[k] += w * pk
		}
		totalW += w
	}
	if totalW == 0 {
		return nil, fmt.Errorf("figures: analytic hop distribution has no surviving mass (d=%d q=%v)", d, q)
	}
	for k := range mix {
		mix[k] /= totalW
	}
	return mix, nil
}

// histPMF converts a hop histogram to a normalized pmf indexed by hop
// count. Hop counts are far below the histogram's exact range (≤ 127),
// so every bucket upper bound is the hop value itself.
func histPMF(h obs.Histogram) []float64 {
	out := make([]float64, h.Max()+1)
	n := float64(h.Count())
	h.Buckets(func(upper int64, count uint64) {
		out[upper] = float64(count) / n
	})
	return out
}

func massAt(pmf []float64, k int) float64 {
	if k >= len(pmf) {
		return 0
	}
	return pmf[k]
}

func pmfMean(pmf []float64) float64 {
	var m float64
	for k, p := range pmf {
		m += float64(k) * p
	}
	return m
}
