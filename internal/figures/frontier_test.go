package figures

import (
	"testing"
)

// TestFrontierShape pins E20's load-bearing comparisons: singlehop owns
// the latency corner (one hop) while paying an order of magnitude more
// maintenance than the multi-hop rows; heavy-tailed churn knocks its
// lookup success below its own exponential row while driving maintenance
// further up; and k=3 replication recovers the heavy-tail loss at a
// nonzero repair cost that the unreplicated rows never pay.
func TestFrontierShape(t *testing.T) {
	ts, err := Generate("frontier", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.NumRows() != 9 { // 3 protocols × (exp, pareto, pareto k=3)
		t.Fatalf("rows = %d, want 9", tb.NumRows())
	}

	// Index rows by (protocol, churn, k).
	type key struct {
		proto, churn, k string
	}
	rows := map[key]int{}
	for r := 0; r < tb.NumRows(); r++ {
		rows[key{cell(t, tb, r, "protocol"), cell(t, tb, r, "churn"), cell(t, tb, r, "k")}] = r
	}
	at := func(proto, churn, k, col string) float64 {
		r, ok := rows[key{proto, churn, k}]
		if !ok {
			t.Fatalf("no row for %s/%s/k=%s", proto, churn, k)
		}
		return cellF(t, tb, r, col)
	}

	// The latency corner: one-hop lookups, several-hop multi-hop routes.
	if h := at("singlehop", "exp", "1", "mean hops"); h > 1.05 {
		t.Errorf("singlehop mean hops %v, want ~1", h)
	}
	if h := at("chord", "exp", "1", "mean hops"); h < 2 {
		t.Errorf("chord mean hops %v, want multi-hop", h)
	}
	if sl, ch := at("singlehop", "exp", "1", "latency"), at("chord", "exp", "1", "latency"); sl >= ch/2 {
		t.Errorf("singlehop latency %v not well below chord %v", sl, ch)
	}

	// The maintenance corner: full-membership upkeep costs the one-hop
	// family an order of magnitude more than the multi-hop rows.
	if sl, ch := at("singlehop", "exp", "1", "maint/node/s"), at("chord", "exp", "1", "maint/node/s"); sl < 5*ch {
		t.Errorf("singlehop maintenance %v not dominating chord %v", sl, ch)
	}

	// Heavy-tailed churn is where O(1) breaks down: success sags below the
	// exponential row and the O(N) join traffic drives maintenance up.
	expR := at("singlehop", "exp", "1", "event r%")
	heavyR := at("singlehop", "pareto a=1.2", "1", "event r%")
	if heavyR >= expR-3 {
		t.Errorf("singlehop heavy-tail success %v not clearly below exp %v", heavyR, expR)
	}
	if hm, em := at("singlehop", "pareto a=1.2", "1", "maint/node/s"), at("singlehop", "exp", "1", "maint/node/s"); hm <= em {
		t.Errorf("singlehop heavy-tail maintenance %v not above exp %v", hm, em)
	}

	// Replica failover buys the loss back, paid in repair bandwidth.
	replR := at("singlehop", "pareto a=1.2", "3", "event r%")
	if replR <= heavyR+3 {
		t.Errorf("k=3 heavy-tail success %v not clearly above unreplicated %v", replR, heavyR)
	}
	for _, proto := range []string{"chord", "kademlia", "singlehop"} {
		if rep := at(proto, "pareto a=1.2", "3", "repair/node/s"); rep <= 0 {
			t.Errorf("%s k=3 repair rate %v, want positive", proto, rep)
		}
		for _, churn := range []string{"exp", "pareto a=1.2"} {
			if rep := at(proto, churn, "1", "repair/node/s"); rep != 0 {
				t.Errorf("%s/%s unreplicated repair rate %v, want 0", proto, churn, rep)
			}
		}
	}
}
