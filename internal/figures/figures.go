// Package figures regenerates every table and figure of the paper's
// evaluation (plus the extension experiments catalogued in DESIGN.md) as
// textual tables. Each generator is pure given its options and seed, so the
// harness output is reproducible; cmd/figures renders the results and
// bench_test.go times them.
//
// Experiment index (see DESIGN.md §3):
//
//	E1  Fig. 1–3   worked 8-node hypercube example + exact enumeration
//	E2  Fig. 4/5/8 Markov chains vs closed forms
//	E3  Fig. 6(a)  analysis vs simulation: tree, hypercube, xor
//	E4  Fig. 6(b)  analysis vs simulation: ring
//	E5  Fig. 7(a)  asymptotic failed paths at N = 2^100
//	E6  Fig. 7(b)  routability vs system size at q = 0.1
//	E7  §5         scalability classification
//	E8  Eq. 6      Qxor exact vs approximation
//	E9  §1/§4.3.4  Symphony kn/ks design ablation
//	E10 §1         percolation: connectivity vs routability
//	E11 §1/§6      churn vs the static model
//	E16 §1/§6      geometry × churn-repair cross-product (rcm/exp grid)
//	E17 §1/§6      analytic vs static-sim vs message-level event simulation
//	E18 §1/§6      lookup performance vs lifetime family at equal q_eff
//	E20 §1/§5      latency-vs-maintenance frontier: multi-hop vs single-hop
//	               vs k-replication under exponential and heavy-tailed churn
//	E21 §1/§4      routability during/after a deterministic 2-way partition
//	               vs the static model at q=1/2, per protocol × k∈{1,3}
//
// The grid-shaped experiments (E3–E6, E11, E16) construct declarative
// experiment plans and delegate execution to the public streaming runner
// in rcm/exp.
package figures

import (
	"fmt"
	"sort"

	"rcm/internal/table"
)

// Options tunes the expensive generators. The zero value reproduces the
// paper's operating points (N = 2^16 for Fig. 6) — see DefaultOptions.
type Options struct {
	// Bits is the identifier length for simulation experiments (default 16,
	// the paper's N = 2^16).
	Bits int
	// Pairs is the number of sampled pairs per simulated point (default 20000).
	Pairs int
	// Trials is the number of failure patterns per simulated point (default 3).
	Trials int
	// Seed drives all randomness (default 1).
	Seed uint64
}

// DefaultOptions returns the paper's operating points.
func DefaultOptions() Options {
	return Options{Bits: 16, Pairs: 20000, Trials: 3, Seed: 1}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Bits <= 0 {
		o.Bits = d.Bits
	}
	if o.Pairs <= 0 {
		o.Pairs = d.Pairs
	}
	if o.Trials <= 0 {
		o.Trials = d.Trials
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Generator produces the tables for one experiment.
type Generator func(Options) ([]*table.Table, error)

// registry maps figure names to generators. Populated in init functions of
// the per-experiment files.
var registry = map[string]Generator{}

func register(name string, g Generator) {
	registry[name] = g
}

// Names returns the registered figure names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generate runs the named experiment ("all" runs every one in name order).
func Generate(name string, opt Options) ([]*table.Table, error) {
	if name == "all" {
		var all []*table.Table
		for _, n := range Names() {
			ts, err := registry[n](opt)
			if err != nil {
				return nil, fmt.Errorf("figures: %s: %w", n, err)
			}
			all = append(all, ts...)
		}
		return all, nil
	}
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("figures: unknown figure %q (have %v)", name, Names())
	}
	ts, err := g(opt)
	if err != nil {
		return nil, fmt.Errorf("figures: %s: %w", name, err)
	}
	return ts, nil
}
