package figures

import (
	"context"
	"fmt"

	"rcm/exp"
	"rcm/internal/table"
)

func init() {
	register("frontier", Frontier)
}

// frontierCells are E20's churn × replication settings, run for every
// protocol. The exponential row is the friendly regime every DHT quotes;
// the Pareto rows front-load the session hazard (PR 4's heavy-tailed
// churn) at the same mean online/offline times, and the k=3 row buys back
// lost lookups with replica failover paid for in repair bandwidth.
var frontierCells = []struct {
	label, scenario, lifetime string
	replicas                  int
}{
	{"exp", "churn", "", 0},
	{"pareto a=1.2", "heavytail", "pareto:1.2", 0},
	{"pareto a=1.2", "heavytail", "pareto:1.2", 3},
}

// Frontier is experiment E20: the latency-vs-maintenance frontier that
// motivates the whole geometry comparison, measured with full message
// dynamics. Chord and Kademlia sit at the multi-hop corner — O(log N)
// lookup hops for O(log N) routing state and cheap stabilization — while
// singlehop (the D1HT family) sits at the opposite corner: every lookup
// is one hop, paid for with O(N) membership views whose join transfers
// and sweep probes dominate the maintenance column.
//
// The heavy-tailed rows are where single-hop's O(1) claim breaks down:
// a Pareto session distribution at the same mean online time front-loads
// the hazard into many short sessions, so nodes die and rejoin far more
// often than the exponential row. Every rejoin leaves the rejoiner
// invisible to any peer whose stabilization sweep cleared it while it was
// down — and with a full view refresh taking sweepFraction rounds, those
// stale-dead entries outlive the run. One-hop routing has no detour
// around a stale view (the lookup fails outright), so singlehop's success
// sags below the multi-hop rows under the same churn summary q_eff,
// while its maintenance bill grows with the extra O(N) join transfers.
// The k=3 row shows the repair half of the tentpole: replica failover
// restores most of the lost lookups at a visible repair/node/s cost.
func Frontier(opt Options) ([]*table.Table, error) {
	opt = opt.withDefaults()
	bits := opt.Bits
	if bits > 9 {
		bits = 9 // 2^9 nodes: O(N) singlehop maintenance stays tractable
	}
	const (
		duration    = 6.0
		meanOnline  = 4.0
		meanOffline = 1.0
		burnIn      = 1.0
		buckets     = 6
	)
	settings := make([]exp.EventSetting, 0, len(frontierCells))
	for _, cell := range frontierCells {
		settings = append(settings, exp.EventSetting{
			Scenario: cell.scenario,
			Params: exp.EventParams{
				MeanOnline:  meanOnline,
				MeanOffline: meanOffline,
				Rate:        float64(opt.Pairs),
				Lifetime:    cell.lifetime,
				Replicas:    cell.replicas,
			},
			Duration: duration,
			Buckets:  buckets,
			Maintain: true,
		})
	}
	specs := []exp.Spec{exp.MustSpec("chord"), exp.MustSpec("kademlia"), exp.MustSpec("singlehop")}
	plan := exp.Plan{Name: "frontier", Specs: specs, Bits: []int{bits}, Events: settings}

	rows, err := exp.Run(context.Background(), plan,
		exp.WithModes(exp.ModeEvent),
		exp.WithPairs(opt.Pairs), exp.WithTrials(opt.Trials),
		exp.WithSeed(opt.Seed), exp.WithSimWorkers(1),
	)
	if err != nil {
		return nil, err
	}

	// Aggregate each (geometry, setting) block's post-burn-in steady
	// window, weighted by cohort size. Rows arrive in plan order —
	// settings-major within each spec, buckets in time order — so a cell
	// is exactly the next `buckets` rows of its geometry.
	type agg struct {
		started, completed  int
		sumHops, sumLatency float64
		sumMaint, sumRepair float64
		sumOnline           float64
		buckets             int
	}
	groups := map[string]*agg{}
	key := func(geometry string, setting int) string { return fmt.Sprintf("%s/%d", geometry, setting) }
	rowsSeen := map[string]int{}
	for _, r := range rows {
		k := key(r.Geometry, rowsSeen[r.Geometry]/buckets)
		rowsSeen[r.Geometry]++
		g, ok := groups[k]
		if !ok {
			g = &agg{}
			groups[k] = g
		}
		if r.Time-duration/buckets >= burnIn-1e-9 {
			if r.EventStarted > 0 {
				g.started += r.EventStarted
				// Mean hops and latency are completed-cohort means, so they
				// weight by the completed count (both are NaN when a bucket
				// completed nothing).
				completed := int(r.EventSuccess*float64(r.EventStarted) + 0.5)
				g.completed += completed
				if completed > 0 {
					g.sumHops += r.EventMeanHops * float64(completed)
					g.sumLatency += r.EventMeanLatency * float64(completed)
				}
			}
			g.sumMaint += r.EventMaintNodeS
			g.sumRepair += r.EventRepairNodeS
			g.sumOnline += r.EventOnline
			g.buckets++
		}
	}

	t := table.New(fmt.Sprintf("E20 — latency-vs-maintenance frontier: multi-hop vs single-hop vs k-replication under churn (N=2^%d)", bits),
		"protocol", "churn", "k", "event r%", "mean hops", "latency", "maint/node/s", "repair/node/s", "online %")
	for _, s := range specs {
		name := s.Geometry.Name() // Row.Geometry carries the geometry vocabulary
		for i, cell := range frontierCells {
			g, ok := groups[key(name, i)]
			if !ok || g.started == 0 || g.completed == 0 || g.buckets == 0 {
				return nil, fmt.Errorf("figures: frontier missing group %s/%s k=%d", name, cell.label, cell.replicas)
			}
			k := cell.replicas
			if k == 0 {
				k = 1
			}
			event := float64(g.completed) / float64(g.started)
			t.AddRow(
				s.Protocol,
				cell.label,
				table.I(k),
				table.Pct(event, 2),
				table.F(g.sumHops/float64(g.completed), 2),
				table.F(g.sumLatency/float64(g.completed), 3),
				table.F(g.sumMaint/float64(g.buckets), 3),
				table.F(g.sumRepair/float64(g.buckets), 3),
				table.Pct(g.sumOnline/float64(g.buckets), 1),
			)
		}
	}
	return []*table.Table{t}, nil
}
