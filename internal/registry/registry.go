// Package registry is the canonical home of the framework's two extension
// points — the analytic Geometry interface (§3/§4 of the paper) and the
// concrete Protocol overlay interface — together with the name-keyed
// registries that resolve either vocabulary (the paper's geometry terms or
// the DHT system names) to implementations.
//
// The package sits below every consumer: internal/core aliases Geometry,
// internal/dht aliases Protocol and Config and resolves dht.New through
// LookupProtocol, and the public surfaces (package rcm and rcm/exp)
// re-export the types and the Register functions. The five built-in
// geometries and protocols are ordinary registrants (internal/core and
// internal/dht register them in their init functions), so a user-registered
// geometry is indistinguishable from a built-in: it flows through the
// analytic evaluators, the simulator factory, the experiment runner, the
// CLIs and the figure generators by name.
//
// Protocols additionally expose optional *capabilities* — interfaces the
// event layer (rcm/eventsim) discovers by type assertion: Forwarder
// (per-hop candidate enumeration; required to run under eventsim) and
// Maintainer (join/stabilize maintenance). Two sibling name-keyed
// registries with the same registration rules live beside this one:
// eventsim's scenario registry (RegisterScenario) and the lifetime
// distribution registry (rcm/eventsim/lifetime.Register) that supplies
// session/downtime models to the churn-family scenarios.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rcm/overlay"
)

// Geometry is the RCM description of a DHT routing geometry (§4.1, steps
// 2–3): the routing-distance distribution n(h) and the per-phase failure
// probability Q(m). Implementations must be immutable value types safe for
// concurrent use; every analytic quantity — p(h,q), E[S], r(N,q) and the
// §5 scalability classification — derives mechanically from these two
// ingredients.
type Geometry interface {
	// Name returns the geometry's name as used in the paper's figures
	// (e.g. "tree", "hypercube", "xor", "ring", "symphony").
	Name() string
	// System returns the DHT system associated with the geometry
	// (e.g. Plaxton, CAN, Kademlia, Chord, Symphony).
	System() string
	// MaxDistance returns the maximum routing distance (in hops or phases)
	// to any node in a fully-populated d-bit identifier space.
	MaxDistance(d int) int
	// LogNodesAt returns ln n(h): the natural log of the number of nodes at
	// routing distance h from a root node in a fully-populated d-bit space.
	// It returns -Inf when h is outside [1, MaxDistance(d)].
	LogNodesAt(d, h int) float64
	// PhaseFailure returns Q(m): the probability that the routing process is
	// absorbed into the failure state during a phase with m phases
	// remaining, under node-failure probability q. d is the identifier
	// length (only d-dependent geometries like Symphony use it).
	PhaseFailure(d, m int, q float64) float64
}

// Protocol is a concrete DHT overlay with static routing tables — the
// simulation counterpart of a Geometry. Implementations are safe for
// concurrent Route calls once constructed (tables are read-only).
type Protocol interface {
	// Name returns the protocol name (e.g. "chord").
	Name() string
	// GeometryName returns the paper's geometry term for the protocol
	// (e.g. "ring" for Chord), linking simulators to analytic models.
	GeometryName() string
	// Space returns the identifier space the overlay populates.
	Space() overlay.Space
	// Degree returns the number of routing-table entries per node.
	Degree() int
	// Route attempts to deliver a message from src to dst using only alive
	// nodes. src and dst are assumed alive (the static-resilience harness
	// conditions on surviving pairs). It reports the number of hops taken
	// and whether the destination was reached.
	Route(src, dst overlay.ID, alive *overlay.Bitset) (hops int, ok bool)
	// Neighbors returns a copy of node x's routing-table entries, used by
	// the percolation analysis to build the overlay graph.
	Neighbors(x overlay.ID) []overlay.ID
}

// Config is the one canonical overlay-construction configuration, shared by
// the simulator factory (dht.New), the experiment runner (rcm/exp) and the
// public facade (package rcm) — there is exactly one copy of these fields
// in the module.
type Config struct {
	// Bits is the identifier length d; the overlay has 2^d nodes.
	Bits int
	// Seed seeds the deterministic RNG used for randomized table entries.
	Seed uint64
	// SymphonyNear and SymphonyShortcuts set kn and ks for Symphony
	// overlays; both default to 1 (the paper's Fig. 7 setting) when zero.
	// Other registrants are free to ignore or reinterpret them.
	SymphonyNear      int
	SymphonyShortcuts int
}

// Forwarder is an optional Protocol capability used by the message-level
// event simulator (rcm/eventsim): per-hop candidate enumeration, the
// decision a real node can make locally. AppendCandidateHops appends to buf
// the next-hop candidates node x would try for a message addressed to dst,
// in preference order, and returns the extended slice (callers reuse buf
// across hops to stay allocation-free).
//
// The contract that makes event-level routing agree with Route's
// global-knowledge greedy walk: every candidate must make strict progress
// toward dst under the protocol's distance metric (so retry chains
// terminate), and the first *alive* candidate in the returned order must be
// exactly the hop Route would take against the same alive set. dst itself
// is a legal candidate; x and non-progressing entries are not.
type Forwarder interface {
	AppendCandidateHops(buf []overlay.ID, x, dst overlay.ID) []overlay.ID
}

// Maintainer is an optional Protocol capability: a protocol that can
// (re)build one node's routing state from a known-alive population,
// enabling join and periodic-stabilization dynamics in rcm/eventsim. Both
// methods return the number of protocol messages the operation models
// (probes plus responses), which the event engine charges to the node's
// maintenance budget. A nil alive set disables the aliveness filter.
//
// Implementations must confine their writes to node x's own table rows:
// the event engine calls Maintainer methods for x only from the shard that
// owns x, concurrently with other shards maintaining and reading *their*
// nodes' rows.
type Maintainer interface {
	// Join (re)initializes every routing-table entry of x toward alive
	// nodes — the table build-out a node performs when it (re)enters the
	// overlay.
	Join(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int
	// Stabilize performs one periodic maintenance round for x, refreshing
	// a single routing-table entry toward the alive population.
	Stabilize(x overlay.ID, alive *overlay.Bitset, rng *overlay.RNG) int
}

// GeometryFactory builds an analytic geometry from a configuration. Most
// geometries ignore the configuration entirely; Symphony reads kn/ks.
type GeometryFactory func(Config) (Geometry, error)

// ProtocolFactory builds a concrete overlay from a configuration.
type ProtocolFactory func(Config) (Protocol, error)

// GeometryEntry is a resolved geometry registration.
type GeometryEntry struct {
	// Name is the canonical registered name.
	Name string
	// New builds the geometry.
	New GeometryFactory
}

// ProtocolEntry is a resolved protocol registration.
type ProtocolEntry struct {
	// Name is the canonical registered name.
	Name string
	// New builds the overlay.
	New ProtocolFactory
}

// registryT is one name-keyed table: canonical names in registration order
// plus a case-insensitive index over names and aliases.
type registryT[E any] struct {
	mu    sync.RWMutex
	order []string
	index map[string]E
}

func (r *registryT[E]) register(kind, name string, entry E, aliases []string) error {
	keys := make([]string, 0, 1+len(aliases))
	for _, n := range append([]string{name}, aliases...) {
		k := strings.ToLower(strings.TrimSpace(n))
		if k == "" {
			return fmt.Errorf("registry: empty %s name", kind)
		}
		keys = append(keys, k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.index == nil {
		r.index = make(map[string]E)
	}
	for i, k := range keys {
		if _, taken := r.index[k]; taken {
			what := "name"
			if i > 0 {
				what = "alias"
			}
			return fmt.Errorf("registry: %s %s %q already registered", kind, what, k)
		}
		for _, prev := range keys[:i] {
			if prev == k {
				return fmt.Errorf("registry: %s %q aliases itself", kind, k)
			}
		}
	}
	for _, k := range keys {
		r.index[k] = entry
	}
	r.order = append(r.order, keys[0])
	return nil
}

func (r *registryT[E]) lookup(name string) (E, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.index[strings.ToLower(strings.TrimSpace(name))]
	return e, ok
}

func (r *registryT[E]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

func (r *registryT[E]) keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.index))
	for k := range r.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var (
	geometries registryT[GeometryEntry]
	protocols  registryT[ProtocolEntry]
)

// RegisterGeometry adds an analytic geometry under a canonical name plus
// optional aliases. Names are case-insensitive; registering a name or alias
// that is already taken (by either a canonical name or an alias) is an
// error, as is an empty name.
func RegisterGeometry(name string, f GeometryFactory, aliases ...string) error {
	if f == nil {
		return fmt.Errorf("registry: geometry %q has nil factory", name)
	}
	return geometries.register("geometry", name, GeometryEntry{Name: strings.ToLower(strings.TrimSpace(name)), New: f}, aliases)
}

// RegisterProtocol adds a concrete overlay factory under a canonical name
// plus optional aliases, with the same collision rules as RegisterGeometry.
func RegisterProtocol(name string, f ProtocolFactory, aliases ...string) error {
	if f == nil {
		return fmt.Errorf("registry: protocol %q has nil factory", name)
	}
	return protocols.register("protocol", name, ProtocolEntry{Name: strings.ToLower(strings.TrimSpace(name)), New: f}, aliases)
}

// LookupGeometry resolves a geometry by canonical name or alias.
func LookupGeometry(name string) (GeometryEntry, bool) { return geometries.lookup(name) }

// LookupProtocol resolves a protocol by canonical name or alias.
func LookupProtocol(name string) (ProtocolEntry, bool) { return protocols.lookup(name) }

// GeometryNames returns the canonical geometry names in registration order
// (the five paper geometries first, user registrations after).
func GeometryNames() []string { return geometries.names() }

// ProtocolNames returns the canonical protocol names in registration order.
func ProtocolNames() []string { return protocols.names() }

// GeometryKeys returns every accepted geometry name and alias, sorted; it
// backs "unknown name" error messages.
func GeometryKeys() []string { return geometries.keys() }

// ProtocolKeys returns every accepted protocol name and alias, sorted.
func ProtocolKeys() []string { return protocols.keys() }
