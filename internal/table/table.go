// Package table renders small result tables as aligned ASCII or CSV — the
// output format of the figure/table regeneration harness (cmd/figures and
// the benchmarks). Only formatting lives here; no experiment logic.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is an ordered collection of rows under named columns.
type Table struct {
	title   string
	columns []string
	rows    [][]string
}

// New returns an empty table with the given title and column names.
func New(title string, columns ...string) *Table {
	return &Table{
		title:   title,
		columns: append([]string(nil), columns...),
	}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Columns returns a copy of the column names.
func (t *Table) Columns() []string {
	return append([]string(nil), t.columns...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	return append([]string(nil), t.rows[i]...)
}

// AddRow appends a row; missing cells are blank, surplus cells are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "## %s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.columns)
	sep := make([]string, len(t.columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes, or newlines). The title is not included.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given number of decimals, trimming NaN/Inf to
// readable markers.
func F(x float64, decimals int) string {
	s := strconv.FormatFloat(x, 'f', decimals, 64)
	switch s {
	case "NaN":
		return "nan"
	case "+Inf", "Inf":
		return "inf"
	case "-Inf":
		return "-inf"
	}
	return s
}

// E formats a float in scientific notation with the given precision.
func E(x float64, decimals int) string {
	return strconv.FormatFloat(x, 'e', decimals, 64)
}

// I formats an int.
func I(x int) string { return strconv.Itoa(x) }

// Pct formats a probability as a percentage with the given decimals.
func Pct(p float64, decimals int) string {
	return F(100*p, decimals)
}
