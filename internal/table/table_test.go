package table

import (
	"math"
	"strings"
	"testing"
)

func TestASCIIAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.ASCII()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "## demo") {
		t.Errorf("missing title line: %q", lines[0])
	}
	// All data lines should have equal padded width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and separator widths differ: %q vs %q", lines[1], lines[2])
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4")
	if got := tb.Row(0); got[1] != "" || got[2] != "" {
		t.Errorf("short row not padded: %v", got)
	}
	if got := tb.Row(1); len(got) != 3 {
		t.Errorf("long row not truncated: %v", got)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := New("t", "x", "y")
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `\"hi\"`) && !strings.Contains(csv, `""hi""`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	if strings.Contains(csv, "## t") {
		t.Error("CSV contains title")
	}
}

func TestCSVStructure(t *testing.T) {
	tb := New("", "q", "r")
	tb.AddRow("0.1", "0.9")
	tb.AddRow("0.2", "0.8")
	lines := strings.Split(strings.TrimRight(tb.CSV(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "q,r" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.1,0.9" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestAccessors(t *testing.T) {
	tb := New("title", "c1", "c2")
	if tb.Title() != "title" {
		t.Errorf("Title = %q", tb.Title())
	}
	cols := tb.Columns()
	cols[0] = "mutated"
	if tb.Columns()[0] != "c1" {
		t.Error("Columns leaked internal slice")
	}
	tb.AddRow("a", "b")
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	row := tb.Row(0)
	row[0] = "mutated"
	if tb.Row(0)[0] != "a" {
		t.Error("Row leaked internal slice")
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{F(1.23456, 2), "1.23"},
		{F(math.NaN(), 2), "nan"},
		{F(math.Inf(1), 2), "inf"},
		{F(math.Inf(-1), 2), "-inf"},
		{I(42), "42"},
		{Pct(0.1234, 1), "12.3"},
		{Pct(1, 0), "100"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("formatter got %q, want %q", tt.got, tt.want)
		}
	}
	if e := E(12345.678, 2); !strings.Contains(e, "e+04") {
		t.Errorf("E() = %q", e)
	}
}
