package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"rcm/internal/core"
)

func TestPhaseFailureBoundsAllGeometries(t *testing.T) {
	for _, g := range core.AllGeometries() {
		g := g
		f := func(m8 uint8, qRaw float64) bool {
			m := int(m8%64) + 1
			q := math.Abs(math.Mod(qRaw, 1))
			Q := g.PhaseFailure(64, m, q)
			return Q >= 0 && Q <= 1 && !math.IsNaN(Q)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

func TestPhaseFailureAtExtremes(t *testing.T) {
	for _, g := range core.AllGeometries() {
		for m := 1; m <= 8; m++ {
			if Q := g.PhaseFailure(16, m, 0); Q != 0 {
				t.Errorf("%s m=%d: Q(q=0) = %v, want 0", g.Name(), m, Q)
			}
			if Q := g.PhaseFailure(16, m, 1); Q != 1 {
				t.Errorf("%s m=%d: Q(q=1) = %v, want 1", g.Name(), m, Q)
			}
		}
	}
}

func TestPhaseFailureLastPhaseIsQ(t *testing.T) {
	// With one phase remaining every geometry needs its single relevant
	// neighbor alive... except Symphony, whose phase structure differs.
	for _, g := range core.AllGeometries() {
		if g.Name() == "symphony" {
			continue
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if Q := g.PhaseFailure(16, 1, q); math.Abs(Q-q) > 1e-12 {
				t.Errorf("%s: Q(m=1, q=%v) = %v, want q", g.Name(), q, Q)
			}
		}
	}
}

func TestTreePhaseFailureConstant(t *testing.T) {
	g := core.Tree{}
	for m := 1; m <= 32; m++ {
		if Q := g.PhaseFailure(32, m, 0.37); Q != 0.37 {
			t.Errorf("tree Q(m=%d) = %v, want 0.37", m, Q)
		}
	}
}

func TestHypercubePhaseFailureGeometric(t *testing.T) {
	g := core.Hypercube{}
	for _, q := range []float64{0.2, 0.6} {
		for m := 1; m <= 20; m++ {
			want := math.Pow(q, float64(m))
			if Q := g.PhaseFailure(32, m, q); math.Abs(Q-want) > 1e-15 {
				t.Errorf("hypercube Q(%d, %v) = %v, want %v", m, q, Q, want)
			}
		}
	}
}

func TestQxorHandComputed(t *testing.T) {
	g := core.XOR{}
	// m=2: Q = q² + q²(1-q).
	for _, q := range []float64{0.1, 0.5, 0.9} {
		want := q*q + q*q*(1-q)
		if Q := g.PhaseFailure(16, 2, q); math.Abs(Q-want) > 1e-14 {
			t.Errorf("Qxor(2, %v) = %v, want %v", q, Q, want)
		}
	}
	// m=3: Q = q³(1 + (1-q²) + (1-q²)(1-q)).
	q := 0.5
	want := q * q * q * (1 + (1 - q*q) + (1-q*q)*(1-q))
	if Q := g.PhaseFailure(16, 3, q); math.Abs(Q-want) > 1e-14 {
		t.Errorf("Qxor(3, 0.5) = %v, want %v", Q, want)
	}
}

func TestQxorDecreasingInM(t *testing.T) {
	// Deeper phases have more fallback options; failure probability shrinks.
	g := core.XOR{}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		prev := 2.0
		for m := 1; m <= 30; m++ {
			Q := g.PhaseFailure(32, m, q)
			if Q > prev+1e-12 {
				t.Errorf("Qxor increased at m=%d, q=%v: %v > %v", m, q, Q, prev)
			}
			prev = Q
		}
	}
}

func TestQxorApproximationQuality(t *testing.T) {
	// E8: the paper's e^{-x} approximation of Eq. 6 is derived for small q;
	// it is visibly loose at m=1 (where the exact value is just q) and
	// tightens as m grows.
	g := core.XOR{}
	for _, tc := range []struct {
		q   float64
		tol float64
	}{
		{0.05, 0.01},
		{0.1, 0.02},
		{0.2, 0.07},
	} {
		for m := 1; m <= 16; m++ {
			exact := g.PhaseFailure(32, m, tc.q)
			approx := g.PhaseFailureApprox(m, tc.q)
			if math.Abs(exact-approx) > tc.tol {
				t.Errorf("q=%v m=%d: exact %v vs approx %v", tc.q, m, exact, approx)
			}
		}
	}
}

func TestQringHandComputed(t *testing.T) {
	g := core.Ring{}
	// m=2, q=0.5: β = 0.25, K = 2: Q = 0.25·(1+0.25) = 0.3125.
	if Q := g.PhaseFailure(16, 2, 0.5); math.Abs(Q-0.3125) > 1e-14 {
		t.Errorf("Qring(2, 0.5) = %v, want 0.3125", Q)
	}
	// m=3, q=0.5: β = 0.375, K = 4: Q = 0.125·(1-0.375⁴)/0.625.
	want := 0.125 * (1 - math.Pow(0.375, 4)) / 0.625
	if Q := g.PhaseFailure(16, 3, 0.5); math.Abs(Q-want) > 1e-14 {
		t.Errorf("Qring(3, 0.5) = %v, want %v", Q, want)
	}
}

func TestQringBelowQxor(t *testing.T) {
	// §5.4's structural comparison at the Q level.
	ring, xor := core.Ring{}, core.XOR{}
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for m := 1; m <= 32; m++ {
			Qr := ring.PhaseFailure(32, m, q)
			Qx := xor.PhaseFailure(32, m, q)
			if Qr > Qx+1e-12 {
				t.Errorf("m=%d q=%v: Qring %v > Qxor %v", m, q, Qr, Qx)
			}
		}
	}
}

func TestQringLargeMUnderflowsCleanly(t *testing.T) {
	g := core.Ring{}
	for _, m := range []int{100, 1000, 4000} {
		Q := g.PhaseFailure(4096, m, 0.5)
		if math.IsNaN(Q) || Q < 0 {
			t.Errorf("Qring(m=%d) = %v", m, Q)
		}
		if Q > 1e-20 {
			t.Errorf("Qring(m=%d, q=0.5) = %v, expected deep underflow", m, Q)
		}
	}
}

func TestQsymConstantInM(t *testing.T) {
	g := core.DefaultSymphony()
	base := g.PhaseFailure(100, 1, 0.3)
	for m := 2; m <= 100; m++ {
		if Q := g.PhaseFailure(100, m, 0.3); Q != base {
			t.Errorf("Qsym(m=%d) = %v, differs from Qsym(1) = %v", m, Q, base)
		}
	}
}

func TestQsymHandComputed(t *testing.T) {
	// d=16, kn=ks=1, q=0.5: y=0.25, x=1/16, α=1-1/16-0.25=0.6875,
	// J=⌈16/0.5⌉=32; Q = 0.25·(1-α^33)/(1-α).
	g := core.DefaultSymphony()
	alpha := 1 - 1.0/16 - 0.25
	want := 0.25 * (1 - math.Pow(alpha, 33)) / (1 - alpha)
	if Q := g.PhaseFailure(16, 1, 0.5); math.Abs(Q-want) > 1e-12 {
		t.Errorf("Qsym(d=16, q=0.5) = %v, want %v", Q, want)
	}
}

func TestQsymMoreShortcutsHelp(t *testing.T) {
	// Adding shortcuts strictly reduces the per-phase failure probability.
	for _, q := range []float64{0.2, 0.5, 0.8} {
		prev := 2.0
		for ks := 1; ks <= 6; ks++ {
			g := core.Symphony{KN: 1, KS: ks}
			Q := g.PhaseFailure(64, 1, q)
			if Q > prev+1e-15 {
				t.Errorf("ks=%d q=%v: Q=%v not below %v", ks, q, Q, prev)
			}
			prev = Q
		}
	}
}

func TestQsymMoreNearNeighborsHelp(t *testing.T) {
	for _, q := range []float64{0.3, 0.7} {
		prev := 2.0
		for kn := 0; kn <= 6; kn++ {
			g := core.Symphony{KN: kn, KS: 1}
			Q := g.PhaseFailure(64, 1, q)
			if Q > prev+1e-15 {
				t.Errorf("kn=%d q=%v: Q=%v not below %v", kn, q, Q, prev)
			}
			prev = Q
		}
	}
}

func TestQsymDenseLinkRegime(t *testing.T) {
	// Small d with large q pushes ks/d + q^{kn+ks} past 1 (negative α);
	// the alternating-sum branch must stay within [0,1].
	g := core.Symphony{KN: 1, KS: 2}
	for _, q := range []float64{0.9, 0.95, 0.99} {
		Q := g.PhaseFailure(3, 1, q)
		if Q < 0 || Q > 1 || math.IsNaN(Q) {
			t.Errorf("dense regime Qsym(q=%v) = %v", q, Q)
		}
	}
}

func TestQsymSaneDefaultsOnZeroValue(t *testing.T) {
	// The zero value (KN=0, KS=0) must not divide by zero; KS is floored at 1.
	var g core.Symphony
	Q := g.PhaseFailure(16, 1, 0.5)
	if math.IsNaN(Q) || Q < 0 || Q > 1 {
		t.Errorf("zero-value Symphony Q = %v", Q)
	}
}
