package core

import (
	"math"

	"rcm/internal/numeric"
)

// Ring is the Chord ring routing geometry (§3.4, §4.3.3), randomized-finger
// variant: finger i sits at clockwise distance [2^{i−1}, 2^i). Greedy
// clockwise routing never loses progress: a suboptimal hop keeps all m
// finger options open (failure probability stays q^m through a phase), and
// up to 2^{m−1} suboptimal hops fit inside a phase.
//
// The paper's chain deliberately ignores the distance covered by suboptimal
// hops (tracking it blows up the state space), so the resulting routability
// is a tight LOWER bound — equivalently, the failed-path percentage is an
// upper bound, visibly conservative above q ≈ 20% (Fig. 6(b)).
type Ring struct{}

var _ Geometry = Ring{}

// Name implements Geometry.
func (Ring) Name() string { return "ring" }

// System implements Geometry.
func (Ring) System() string { return "Chord" }

// MaxDistance implements Geometry.
func (Ring) MaxDistance(d int) int { return d }

// LogNodesAt implements Geometry: n(h) = 2^{h−1}, the identifiers at
// clockwise distance [2^{h−1}, 2^h) that need h phases of halving.
func (Ring) LogNodesAt(d, h int) float64 {
	if h < 1 || h > d {
		return numeric.NegInf
	}
	return float64(h-1) * math.Ln2
}

// PhaseFailure implements Geometry using §4.3.3:
//
//	Qring(m) = q^m · (1 − β^{2^{m−1}}) / (1 − β),  β = q·(1 − q^{m−1})
//
// β^{2^{m−1}} is evaluated with a guarded power so the astronomically large
// exponent underflows cleanly for large m.
func (Ring) PhaseFailure(_, m int, q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	qm := math.Pow(q, float64(m))
	if qm == 0 {
		return 0
	}
	beta := q * (1 - math.Pow(q, float64(m-1)))
	if beta == 0 {
		// m = 1: a single usable finger (the successor); Q = q.
		return numeric.Clamp01(qm)
	}
	k := math.Ldexp(1, m-1) // 2^{m−1}, +Inf for very large m is fine
	betaK := numeric.GuardedPow(beta, k)
	return numeric.Clamp01(qm * (1 - betaK) / (1 - beta))
}
