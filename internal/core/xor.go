package core

import (
	"math"

	"rcm/internal/numeric"
)

// XOR is the Kademlia XOR routing geometry (§3.3, §4.3.2). Neighbor i is a
// random node at XOR distance [2^{d−i}, 2^{d−i+1}) — equivalently: matching
// the first i−1 bits, flipping bit i, with a random tail. Under failure a
// node may fall back to neighbors that correct lower-order bits, but that
// progress is consumed within the phase (Fig. 5(a)): the failure exponent
// decreases with every suboptimal hop.
type XOR struct{}

var _ Geometry = XOR{}

// Name implements Geometry.
func (XOR) Name() string { return "xor" }

// System implements Geometry.
func (XOR) System() string { return "Kademlia" }

// MaxDistance implements Geometry.
func (XOR) MaxDistance(d int) int { return d }

// LogNodesAt implements Geometry: the neighbor construction mirrors the
// Plaxton tree, so n(h) = C(d,h) (§4.3.2), for h >= 1.
func (XOR) LogNodesAt(d, h int) float64 {
	if h < 1 {
		return numeric.NegInf
	}
	return numeric.LogBinomial(d, h)
}

// PhaseFailure implements Geometry using the exact Eq. 6:
//
//	Qxor(m) = q^m + Σ_{k=1..m−1} q^m · Π_{j=m−k..m−1} (1 − q^j)
//
// The k-th term is the probability of taking k suboptimal (lower-order-bit)
// hops and then finding all remaining options dead. Evaluation is O(m) with
// an incrementally maintained product.
func (XOR) PhaseFailure(_, m int, q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	qm := math.Pow(q, float64(m))
	if qm == 0 {
		return 0
	}
	sum := 1.0  // k = 0 term's coefficient (empty product)
	prod := 1.0 // Π_{j=m−k..m−1}(1−q^j), maintained incrementally
	for k := 1; k <= m-1; k++ {
		prod *= 1 - math.Pow(q, float64(m-k))
		sum += prod
	}
	return numeric.Clamp01(qm * sum)
}

// PhaseFailureApprox returns the paper's closed-form approximation to Eq. 6
// (obtained via 1−x ≈ e^{−x}):
//
//	Qxor(m) ≈ q^m · ( m + q/(1−q) · ( q^{m−1}(m−1) − (1 − q^{m+1})/(1−q) ) )
//
// It is reproduced for experiment E8, which measures the approximation error
// against the exact expression.
func (XOR) PhaseFailureApprox(m int, q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	qm := math.Pow(q, float64(m))
	inner := math.Pow(q, float64(m-1))*float64(m-1) - (1-math.Pow(q, float64(m+1)))/(1-q)
	approx := qm * (float64(m) + q/(1-q)*inner)
	return numeric.Clamp01(approx)
}
