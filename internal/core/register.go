package core

import "rcm/internal/registry"

// The five paper geometries are ordinary registrants of the shared
// name-keyed registry, under the paper's geometry terms with the system
// names as aliases — the same two vocabularies the protocol registrations
// in internal/dht accept, mirrored. A user-defined geometry registered
// through rcm.RegisterGeometry resolves through exactly the same table.
func init() {
	static := func(g Geometry) registry.GeometryFactory {
		return func(registry.Config) (Geometry, error) { return g, nil }
	}
	for _, reg := range []struct {
		name    string
		factory registry.GeometryFactory
		aliases []string
	}{
		{"tree", static(Tree{}), []string{"plaxton"}},
		{"hypercube", static(Hypercube{}), []string{"can"}},
		{"xor", static(XOR{}), []string{"kademlia"}},
		{"ring", static(Ring{}), []string{"chord"}},
		// Per the Config contract, zero kn/ks select the paper's kn = ks = 1
		// default (matching the dht overlay's behavior, so the analytic and
		// simulated halves of a spec always agree). A kn = 0 analytic model
		// remains expressible through core.NewSymphony / rcm.Symphony.
		{"symphony", func(cfg registry.Config) (Geometry, error) {
			kn, ks := cfg.SymphonyNear, cfg.SymphonyShortcuts
			if kn == 0 {
				kn = 1
			}
			if ks == 0 {
				ks = 1
			}
			return NewSymphony(kn, ks)
		}, []string{"smallworld", "small-world"}},
		// Beyond the paper's five: the full-membership one-hop geometry
		// (see SingleHop), registered under the same name as its protocol
		// so an exp.SpecFor("singlehop") resolves both halves.
		{"singlehop", static(SingleHop{}), []string{"onehop", "d1ht"}},
	} {
		if err := registry.RegisterGeometry(reg.name, reg.factory, reg.aliases...); err != nil {
			panic(err) // static names; unreachable
		}
	}
}
