package core

import (
	"math"

	"rcm/internal/numeric"
)

// Verdict classifies a geometry's asymptotic behavior per Definition 2:
// scalable iff routability converges to a nonzero value as N → ∞ for
// 0 < q < 1 − pc. Verdicts start at 1 so the zero value is invalid.
type Verdict int

const (
	// Scalable: lim_{N→∞} r(N,q) > 0.
	Scalable Verdict = iota + 1
	// Unscalable: lim_{N→∞} r(N,q) = 0.
	Unscalable
	// Indeterminate: the numeric probe could not classify the geometry.
	Indeterminate
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Scalable:
		return "scalable"
	case Unscalable:
		return "unscalable"
	case Indeterminate:
		return "indeterminate"
	default:
		return "invalid"
	}
}

// TheoreticalVerdict returns the paper's §5 classification for the five
// known geometries, derived by hand from Knopp's theorem, along with the
// one-line reason. Unknown geometries return Indeterminate.
func TheoreticalVerdict(g Geometry) (Verdict, string) {
	switch g.Name() {
	case "tree":
		return Unscalable, "p(h,q) = (1−q)^h → 0 for any q > 0 (§5.1)"
	case "hypercube":
		return Scalable, "Σ q^m is a convergent geometric series (§5.2)"
	case "xor":
		return Scalable, "Qxor(m) involves only q^m and m·q^m terms; Σ converges (§5.3)"
	case "ring":
		return Scalable, "ring p(h,q) dominates the XOR lower bound (§5.4)"
	case "symphony":
		return Unscalable, "Qsym is a positive constant per phase; Σ diverges (§5.5)"
	case "singlehop":
		return Scalable, "one phase with Q(1) = q: Σ Q = q converges trivially; the cost moves to maintenance bandwidth"
	default:
		return Indeterminate, "no closed-form analysis available"
	}
}

// ClassifyOptions configures the numeric scalability probe. The zero value
// probes d ∈ {128, 256, 512, 1024, 2048, 4096} at relative tolerance 1e-6.
type ClassifyOptions struct {
	// Dims are the increasing identifier lengths at which Σ_{m≤d} Q_d(m) is
	// evaluated.
	Dims []int
	// Tol is the relative tolerance for declaring the partial sums converged.
	Tol float64
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if len(o.Dims) == 0 {
		o.Dims = []int{128, 256, 512, 1024, 2048, 4096}
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// Classify numerically probes the scalability condition of §5 (Eq. 8):
// lim_{h→∞} p(h,q) > 0 iff Σ Q(m) converges (Knopp's theorem, Theorem 1).
// It evaluates S(d) = Σ_{m=1..d} Q_d(m) at increasing d and inspects the
// growth of the partial sums. Because Q may depend on d (Symphony), the sum
// is recomputed in full at every probed dimension rather than extended
// incrementally.
func Classify(g Geometry, q float64, opt ClassifyOptions) Verdict {
	if q <= 0 {
		return Scalable // no failures: routability is identically 1
	}
	if q >= 1 {
		return Unscalable
	}
	opt = opt.withDefaults()
	sums := make([]float64, len(opt.Dims))
	for i, d := range opt.Dims {
		var acc numeric.KahanSum
		for m := 1; m <= d; m++ {
			t := g.PhaseFailure(d, m, q)
			if t < 0 || t > 1 || math.IsNaN(t) {
				return Indeterminate
			}
			acc.Add(t)
		}
		sums[i] = acc.Sum()
	}
	n := len(sums)
	if n < 3 {
		return Indeterminate
	}
	last, prev, prev2 := sums[n-1], sums[n-2], sums[n-3]
	if last == 0 {
		return Scalable
	}
	if (last-prev)/last < opt.Tol {
		return Scalable
	}
	// Divergence: increments keep pace with the doubling horizons.
	inc1, inc2 := last-prev, prev-prev2
	if inc2 > 0 && inc1 >= inc2 {
		return Unscalable
	}
	return Indeterminate
}

// AsymptoticSuccess estimates lim_{h→∞} p(h,q) — the left side of the
// scalability condition Eq. 8 — by evaluating the phase product at a large
// horizon (h = d = horizon). For scalable geometries this converges to a
// positive constant; for unscalable ones it underflows toward zero.
func AsymptoticSuccess(g Geometry, q float64, horizon int) float64 {
	if horizon <= 0 {
		horizon = 4096
	}
	logp := 0.0
	for m := 1; m <= horizon; m++ {
		logp += math.Log1p(-g.PhaseFailure(horizon, m, q))
		if math.IsInf(logp, -1) {
			return 0
		}
	}
	return numeric.Clamp01(math.Exp(logp))
}
