package core_test

import (
	"errors"
	"math"
	"testing"

	"rcm/internal/core"
)

func TestGeometryIdentities(t *testing.T) {
	tests := []struct {
		g      core.Geometry
		name   string
		system string
	}{
		{core.Tree{}, "tree", "Plaxton"},
		{core.Hypercube{}, "hypercube", "CAN"},
		{core.XOR{}, "xor", "Kademlia"},
		{core.Ring{}, "ring", "Chord"},
		{core.DefaultSymphony(), "symphony", "Symphony"},
	}
	for _, tt := range tests {
		if got := tt.g.Name(); got != tt.name {
			t.Errorf("Name() = %q, want %q", got, tt.name)
		}
		if got := tt.g.System(); got != tt.system {
			t.Errorf("System() = %q, want %q", got, tt.system)
		}
		if got := tt.g.MaxDistance(16); got != 16 {
			t.Errorf("%s MaxDistance(16) = %d, want 16", tt.name, got)
		}
	}
}

func TestAllGeometriesComplete(t *testing.T) {
	gs := core.AllGeometries()
	if len(gs) != 5 {
		t.Fatalf("AllGeometries returned %d geometries, want 5", len(gs))
	}
	seen := map[string]bool{}
	for _, g := range gs {
		seen[g.Name()] = true
	}
	for _, want := range []string{"tree", "hypercube", "xor", "ring", "symphony"} {
		if !seen[want] {
			t.Errorf("AllGeometries missing %q", want)
		}
	}
}

func TestDistanceDistributionSumsToNMinus1(t *testing.T) {
	// Σ_h n(h) = 2^d − 1 for every geometry (all other nodes are at some
	// distance in a fully-populated space).
	for _, g := range core.AllGeometries() {
		for _, d := range []int{1, 2, 3, 8, 16} {
			n := core.DistanceDistribution(g, d)
			var sum float64
			for _, v := range n {
				sum += v
			}
			want := math.Pow(2, float64(d)) - 1
			if math.Abs(sum-want) > 1e-6*want+1e-9 {
				t.Errorf("%s d=%d: Σn(h) = %v, want %v", g.Name(), d, sum, want)
			}
		}
	}
}

func TestDistanceDistributionShapes(t *testing.T) {
	// Fig. 3: d=3 hypercube has n = [C(3,1), C(3,2), C(3,3)] = [3,3,1].
	n := core.DistanceDistribution(core.Hypercube{}, 3)
	want := []float64{3, 3, 1}
	for i := range want {
		if n[i] != want[i] {
			t.Errorf("hypercube d=3 n(%d) = %v, want %v", i+1, n[i], want[i])
		}
	}
	// Ring d=4: n = [1, 2, 4, 8].
	n = core.DistanceDistribution(core.Ring{}, 4)
	want = []float64{1, 2, 4, 8}
	for i := range want {
		if n[i] != want[i] {
			t.Errorf("ring d=4 n(%d) = %v, want %v", i+1, n[i], want[i])
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g := core.Hypercube{}
	if _, err := core.Routability(g, 0, 0.5); !errors.Is(err, core.ErrBadDimension) {
		t.Errorf("d=0: err = %v, want ErrBadDimension", err)
	}
	if _, err := core.Routability(g, core.MaxDimension+1, 0.5); !errors.Is(err, core.ErrBadDimension) {
		t.Errorf("d too large: err = %v, want ErrBadDimension", err)
	}
	if _, err := core.Routability(g, 8, -0.1); !errors.Is(err, core.ErrBadProbability) {
		t.Errorf("q<0: err = %v, want ErrBadProbability", err)
	}
	if _, err := core.Routability(g, 8, 1.5); !errors.Is(err, core.ErrBadProbability) {
		t.Errorf("q>1: err = %v, want ErrBadProbability", err)
	}
	if _, err := core.Routability(g, 8, math.NaN()); !errors.Is(err, core.ErrBadProbability) {
		t.Errorf("q=NaN: err = %v, want ErrBadProbability", err)
	}
	if _, err := core.SuccessProb(g, 8, 0, 0.5); !errors.Is(err, core.ErrBadDistance) {
		t.Errorf("h=0: err = %v, want ErrBadDistance", err)
	}
	if _, err := core.SuccessProb(g, 8, 9, 0.5); !errors.Is(err, core.ErrBadDistance) {
		t.Errorf("h>d: err = %v, want ErrBadDistance", err)
	}
}

func TestNewSymphonyValidation(t *testing.T) {
	if _, err := core.NewSymphony(-1, 1); err == nil {
		t.Error("kn=-1 accepted")
	}
	if _, err := core.NewSymphony(1, 0); err == nil {
		t.Error("ks=0 accepted")
	}
	s, err := core.NewSymphony(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.KN != 2 || s.KS != 3 {
		t.Errorf("NewSymphony(2,3) = %+v", s)
	}
}

func TestVerdictString(t *testing.T) {
	tests := []struct {
		v    core.Verdict
		want string
	}{
		{core.Scalable, "scalable"},
		{core.Unscalable, "unscalable"},
		{core.Indeterminate, "indeterminate"},
		{core.Verdict(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}
