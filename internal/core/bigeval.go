package core

import (
	"math"
	"math/big"

	"rcm/internal/numeric"
)

// RoutabilityBig computes Eq. 3 with arbitrary-precision arithmetic — an
// independent oracle used by tests to validate the float64 log-space
// pipeline. Q(m) values remain float64 (they are plain probabilities); the
// oracle exercises the accumulation: the phase products, the n(h)-weighted
// sum, and the final division.
//
// n(h) is reconstructed exactly from the geometry family: binomial for the
// prefix-style geometries (tree, hypercube, xor) and 2^{h−1} for the ring
// family (ring, symphony).
func RoutabilityBig(g Geometry, d int, q float64, prec uint) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if q == 0 {
		return 1, nil
	}
	if q == 1 {
		return 0, nil
	}
	e := numeric.NewBigEval(prec)
	maxH := g.MaxDistance(d)
	es := new(big.Float).SetPrec(prec)
	prod := new(big.Float).SetPrec(prec).SetInt64(1)
	for h := 1; h <= maxH; h++ {
		oneMinusQ := e.OneMinus(new(big.Float).SetPrec(prec).SetFloat64(g.PhaseFailure(d, h, q)))
		prod = e.Mul(prod, oneMinusQ)
		es = e.Add(es, e.Mul(bigNodesAt(e, g, d, h), prod))
	}
	den := e.Mul(e.Pow2(d), new(big.Float).SetPrec(prec).SetFloat64(1-q))
	den = e.Add(den, new(big.Float).SetPrec(prec).SetInt64(-1))
	if den.Sign() <= 0 {
		return 0, nil
	}
	r := e.Float64(e.Quo(es, den))
	if math.IsNaN(r) {
		return 0, nil
	}
	return numeric.Clamp01(r), nil
}

// bigNodesAt returns n(h) exactly as a big float by geometry family.
func bigNodesAt(e *numeric.BigEval, g Geometry, d, h int) *big.Float {
	switch g.Name() {
	case "ring", "symphony":
		return e.Pow2(h - 1)
	default:
		return e.Binomial(d, h)
	}
}
