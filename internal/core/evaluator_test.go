package core

import (
	"math"
	"sync"
	"testing"
)

// TestEvaluatorMatchesDirect verifies the memoized evaluator is bit-identical
// to the package-level functions over a (geometry × d × q) grid, regardless
// of evaluation order.
func TestEvaluatorMatchesDirect(t *testing.T) {
	e := NewEvaluator()
	ds := []int{4, 8, 16, 32, 64}
	qs := []float64{0, 0.05, 0.1, 0.3, 0.5, 0.9, 1}
	for _, g := range AllGeometries() {
		// Descending d exercises prefix reuse: the series is built at d=64
		// and every smaller d reads a prefix of it.
		for i := len(ds) - 1; i >= 0; i-- {
			d := ds[i]
			for _, q := range qs {
				want, err := Routability(g, d, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Routability(g, d, q)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s d=%d q=%v: evaluator %v != direct %v", g.Name(), d, q, got, want)
				}
				wantES, err := ExpectedReach(g, d, q)
				if err != nil {
					t.Fatal(err)
				}
				gotES, err := e.ExpectedReach(g, d, q)
				if err != nil {
					t.Fatal(err)
				}
				if gotES != wantES && !(math.IsNaN(gotES) && math.IsNaN(wantES)) {
					t.Errorf("%s d=%d q=%v: E[S] %v != %v", g.Name(), d, q, gotES, wantES)
				}
			}
		}
	}
}

// TestEvaluatorSuccessProb checks the memoized p(h,q) against the direct
// computation, including series extension (h grows across calls).
func TestEvaluatorSuccessProb(t *testing.T) {
	e := NewEvaluator()
	for _, g := range AllGeometries() {
		for _, h := range []int{1, 3, 7, 16, 12, 2} { // non-monotone on purpose
			want, err := SuccessProb(g, 16, h, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.SuccessProb(g, 16, h, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s h=%d: %v != %v", g.Name(), h, got, want)
			}
		}
	}
}

// TestEvaluatorSymphonyKeying ensures d-dependent geometries (Symphony) do
// not share cached series across system sizes or configurations.
func TestEvaluatorSymphonyKeying(t *testing.T) {
	e := NewEvaluator()
	s11 := DefaultSymphony()
	s13 := Symphony{KN: 1, KS: 3}
	for _, d := range []int{16, 32} {
		for _, g := range []Geometry{s11, s13} {
			want, err := Routability(g, d, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Routability(g, d, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("symphony kn=%d ks=%d d=%d: %v != %v", g.(Symphony).KN, g.(Symphony).KS, d, got, want)
			}
		}
	}
}

// TestEvaluatorConcurrent hammers one shared evaluator from many goroutines
// and checks every result against the direct path (run with -race).
func TestEvaluatorConcurrent(t *testing.T) {
	e := NewEvaluator()
	geoms := AllGeometries()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				g := geoms[(w+i)%len(geoms)]
				d := 8 + (i%4)*8
				q := 0.1 + 0.1*float64(w%5)
				got, err := e.Routability(g, d, q)
				if err != nil {
					errs <- err.Error()
					return
				}
				want, _ := Routability(g, d, q)
				if got != want {
					errs <- g.Name()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Errorf("concurrent mismatch: %s", msg)
	}
}

// TestEvaluatorValidation checks the memoized paths reject the same inputs
// as the direct ones.
func TestEvaluatorValidation(t *testing.T) {
	e := NewEvaluator()
	if _, err := e.Routability(Tree{}, 0, 0.5); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := e.Routability(Tree{}, 16, -0.1); err == nil {
		t.Error("q<0 accepted")
	}
	if _, err := e.SuccessProb(Tree{}, 16, 0, 0.5); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := e.SuccessProb(Tree{}, 16, 17, 0.5); err == nil {
		t.Error("h>d accepted")
	}
}
