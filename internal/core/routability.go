package core

import (
	"fmt"
	"math"

	"rcm/internal/numeric"
)

// SuccessProb returns p(h,q) = Π_{m=1..h} (1 − Q(m)) (Eq. 5): the
// probability of successfully routing to a target h hops/phases from the
// root under node-failure probability q.
func SuccessProb(g Geometry, d, h int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if h < 1 || h > g.MaxDistance(d) {
		return 0, fmt.Errorf("%w: h=%d not in [1,%d]", ErrBadDistance, h, g.MaxDistance(d))
	}
	logp := 0.0
	for m := 1; m <= h; m++ {
		logp += math.Log1p(-g.PhaseFailure(d, m, q))
	}
	return numeric.Clamp01(math.Exp(logp)), nil
}

// LogExpectedReach returns ln E[S] where E[S] = Σ_h n(h)·p(h,q) is the
// expected size of a root's reachable component (§4.1 step 4). The value is
// returned in log space because E[S] itself overflows float64 beyond
// d ≈ 1024.
func LogExpectedReach(g Geometry, d int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	maxH := g.MaxDistance(d)
	terms := make([]float64, 0, maxH)
	logp := 0.0
	for h := 1; h <= maxH; h++ {
		// p(h) = p(h−1)·(1 − Q(h)): the phase products share prefixes, so a
		// single incremental pass covers every h.
		logp += math.Log1p(-g.PhaseFailure(d, h, q))
		terms = append(terms, g.LogNodesAt(d, h)+logp)
	}
	return numeric.LogSumExp(terms), nil
}

// ExpectedReach returns E[S] in linear space. It overflows to +Inf for very
// large d; use LogExpectedReach in that regime.
func ExpectedReach(g Geometry, d int, q float64) (float64, error) {
	logES, err := LogExpectedReach(g, d, q)
	if err != nil {
		return 0, err
	}
	return math.Exp(logES), nil
}

// Routability returns r(N,q) for N = 2^d per Eq. 1/Eq. 3:
//
//	r = E[S] / ((1−q)·2^d − 1)
//
// i.e. the expected fraction of surviving ordered pairs that remain
// routable. By convention r = 1 at q = 0 and r = 0 once the expected number
// of survivors drops below one (the denominator becomes non-positive).
func Routability(g Geometry, d int, q float64) (float64, error) {
	return routabilityFromLogES(d, q, func() (float64, error) {
		return LogExpectedReach(g, d, q)
	})
}

// routabilityFromLogES evaluates Eq. 3 given a source of ln E[S] — the
// single implementation behind both the direct path and the memoized
// Evaluator, so their edge-case handling cannot drift apart.
func routabilityFromLogES(d int, q float64, logReach func() (float64, error)) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if q == 0 {
		return 1, nil
	}
	if q == 1 {
		return 0, nil
	}
	logSurvivors := float64(d)*math.Ln2 + math.Log(1-q)
	if logSurvivors <= 0 {
		return 0, nil
	}
	logDen := numeric.LogExpm1(logSurvivors)
	logES, err := logReach()
	if err != nil {
		return 0, err
	}
	if math.IsInf(logES, -1) {
		return 0, nil
	}
	return numeric.Clamp01(math.Exp(logES - logDen)), nil
}

// FailedPathPercent returns 100·(1 − r(N,q)): the percentage of failed
// paths, the y-axis of Fig. 6 and Fig. 7(a).
func FailedPathPercent(g Geometry, d int, q float64) (float64, error) {
	r, err := Routability(g, d, q)
	if err != nil {
		return 0, err
	}
	return 100 * (1 - r), nil
}

// DistanceDistribution returns n(h) for h = 1..MaxDistance(d) in linear
// space. Intended for small d (worked examples, tests, figures); overflows
// to +Inf for d beyond ~1000. Values below 2^52 are rounded to the nearest
// integer, since every n(h) is an exact count.
func DistanceDistribution(g Geometry, d int) []float64 {
	maxH := g.MaxDistance(d)
	out := make([]float64, maxH)
	for h := 1; h <= maxH; h++ {
		v := math.Exp(g.LogNodesAt(d, h))
		if v < 1<<52 {
			v = math.Round(v)
		}
		out[h-1] = v
	}
	return out
}
