package core_test

import (
	"math"
	"testing"

	"rcm/internal/core"
	"rcm/internal/numeric"
)

func TestGeneralizedTreeValidation(t *testing.T) {
	if _, err := core.NewGeneralizedTree(1); err == nil {
		t.Error("base 1 accepted")
	}
	g, err := core.NewGeneralizedTree(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "tree-b16" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestGeneralizedTreeBase2MatchesTree(t *testing.T) {
	g2, err := core.NewGeneralizedTree(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{3, 8, 16} {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			want, err := core.Routability(core.Tree{}, d, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.RoutabilityBaseB(g2, 2, d, q)
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelDiff(got, want) > 1e-10 {
				t.Errorf("d=%d q=%v: base-2 %v vs binary tree %v", d, q, got, want)
			}
		}
	}
}

func TestGeneralizedTreeDistanceSum(t *testing.T) {
	// Σ_h n(h) = b^d − 1.
	for _, base := range []int{2, 4, 16} {
		g, err := core.NewGeneralizedTree(base)
		if err != nil {
			t.Fatal(err)
		}
		d := 5
		var sum float64
		for h := 1; h <= d; h++ {
			sum += math.Exp(g.LogNodesAt(d, h))
		}
		want := math.Pow(float64(base), float64(d)) - 1
		if numeric.RelDiff(sum, want) > 1e-9 {
			t.Errorf("base %d: Σn(h) = %v, want %v", base, sum, want)
		}
	}
}

func TestGeneralizedTreeClosedFormMatchesPipeline(t *testing.T) {
	for _, base := range []int{2, 4, 16} {
		g, err := core.NewGeneralizedTree(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int{4, 8, 20} {
			for _, q := range []float64{0, 0.1, 0.4, 0.8, 1} {
				closed, err := g.ClosedFormRoutability(d, q)
				if err != nil {
					t.Fatal(err)
				}
				generic, err := core.RoutabilityBaseB(g, base, d, q)
				if err != nil {
					t.Fatal(err)
				}
				if numeric.RelDiff(closed, generic) > 1e-9 {
					t.Errorf("base %d d=%d q=%v: closed %v vs pipeline %v",
						base, d, q, closed, generic)
				}
			}
		}
	}
}

func TestLargerBaseHelpsButNotAsymptotically(t *testing.T) {
	// At equal N = 2^16: base 16 uses d=4 digits instead of 16, so routes
	// are shorter and routability higher — but Q(m) = q still diverges, so
	// the verdict cannot change.
	q := 0.3
	r2, err := core.RoutabilityBaseB(core.Tree{}, 2, 16, q)
	if err != nil {
		t.Fatal(err)
	}
	g16, err := core.NewGeneralizedTree(16)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := core.RoutabilityBaseB(g16, 16, 4, q) // 16^4 = 2^16
	if err != nil {
		t.Fatal(err)
	}
	if r16 <= r2 {
		t.Errorf("base 16 (%v) did not beat base 2 (%v) at equal N", r16, r2)
	}
	// Unscalable regardless of radix.
	if v := core.Classify(g16, q, core.ClassifyOptions{}); v != core.Unscalable {
		t.Errorf("base-16 tree classified %v, want unscalable", v)
	}
	// And the decay with d persists at any base.
	prev := 1.0
	for _, d := range []int{4, 8, 16, 32} {
		r, err := core.RoutabilityBaseB(g16, 16, d, q)
		if err != nil {
			t.Fatal(err)
		}
		if r >= prev {
			t.Errorf("base-16 routability did not decay at d=%d: %v >= %v", d, r, prev)
		}
		prev = r
	}
}

func TestRoutabilityBaseBValidation(t *testing.T) {
	if _, err := core.RoutabilityBaseB(core.Tree{}, 1, 8, 0.1); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := core.RoutabilityBaseB(core.Tree{}, 2, 0, 0.1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestGeneralizedTreeZeroValueSafe(t *testing.T) {
	var g core.GeneralizedTree // Base 0 → floored to 2
	if got := g.Name(); got != "tree-b2" {
		t.Errorf("zero-value Name = %q", got)
	}
	if got := math.Exp(g.LogNodesAt(4, 1)); math.Abs(got-4) > 1e-12 {
		t.Errorf("zero-value n(1) = %v, want 4", got)
	}
}
