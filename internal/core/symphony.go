package core

import (
	"fmt"
	"math"

	"rcm/internal/numeric"
)

// Symphony is the small-world ring geometry (§3.5, §4.3.4): a ring where
// each node keeps kn near neighbors and ks long-range shortcuts drawn from
// the harmonic (1/distance) distribution. A phase completes only when some
// shortcut happens to land in the desired half-distance range (probability
// ks/d per hop), so the per-phase failure probability does not decay with m
// — the root cause of Symphony's unscalability (§5.5).
type Symphony struct {
	// KN is the number of near (sequential) neighbors per node.
	KN int
	// KS is the number of long-range shortcuts per node.
	KS int
}

var _ Geometry = Symphony{}

// DefaultSymphony returns the configuration used in the paper's Fig. 7
// plots: one near neighbor and one shortcut.
func DefaultSymphony() Symphony { return Symphony{KN: 1, KS: 1} }

// NewSymphony validates and returns a Symphony geometry. kn must be >= 0
// and ks >= 1 (routing phases only ever complete via shortcuts).
func NewSymphony(kn, ks int) (Symphony, error) {
	if kn < 0 {
		return Symphony{}, fmt.Errorf("core: symphony kn=%d must be >= 0", kn)
	}
	if ks < 1 {
		return Symphony{}, fmt.Errorf("core: symphony ks=%d must be >= 1", ks)
	}
	return Symphony{KN: kn, KS: ks}, nil
}

// Name implements Geometry.
func (Symphony) Name() string { return "symphony" }

// System implements Geometry.
func (Symphony) System() string { return "Symphony" }

// MaxDistance implements Geometry: h counts distance-halving phases, up to d.
func (Symphony) MaxDistance(d int) int { return d }

// LogNodesAt implements Geometry: as for the ring, n(h) = 2^{h−1} nodes
// require h halving phases (§4.3.4).
func (Symphony) LogNodesAt(d, h int) float64 {
	if h < 1 || h > d {
		return numeric.NegInf
	}
	return float64(h-1) * math.Ln2
}

// PhaseFailure implements Geometry using Eq. 7:
//
//	Qsym = q^{kn+ks} · Σ_{j=0..J} α^j,  α = 1 − ks/d − q^{kn+ks},  J = ⌈d/(1−q)⌉
//
// The expression is independent of m — a constant per-phase failure
// probability, which by Knopp's theorem forces Π(1−Q) → 0 (§5.5).
func (s Symphony) PhaseFailure(d, _ int, q float64) float64 {
	return s.phaseFailure(d, q)
}

func (s Symphony) phaseFailure(d int, q float64) float64 {
	kn, ks := s.KN, s.KS
	if kn < 0 {
		kn = 0
	}
	if ks < 1 {
		ks = 1
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	y := math.Pow(q, float64(kn+ks))
	x := float64(ks) / float64(d)
	alpha := 1 - x - y
	bigJ := int(math.Ceil(float64(d) / (1 - q)))
	var geom float64
	switch {
	case alpha <= 0:
		// Dense-links regime (x+y >= 1): only the j=0 term survives in
		// expectation; the alternating tail is negligible, sum via PowInt.
		geom = 0
		ap := 1.0
		for j := 0; j <= bigJ && math.Abs(ap) > 1e-18; j++ {
			geom += ap
			ap *= alpha
		}
	case alpha >= 1:
		geom = float64(bigJ + 1)
	default:
		geom = (1 - numeric.GuardedPow(alpha, float64(bigJ+1))) / (1 - alpha)
	}
	return numeric.Clamp01(y * geom)
}
