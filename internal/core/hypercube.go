package core

import (
	"math"

	"rcm/internal/numeric"
)

// Hypercube is the CAN-style hypercube routing geometry (§3.2, §4.2). Node
// identifiers are corners of the d-cube, distance is Hamming distance, and
// greedy routing corrects any remaining differing bit, so a phase with m
// bits left to correct has m usable neighbors.
type Hypercube struct{}

var _ Geometry = Hypercube{}

// Name implements Geometry.
func (Hypercube) Name() string { return "hypercube" }

// System implements Geometry.
func (Hypercube) System() string { return "CAN" }

// MaxDistance implements Geometry.
func (Hypercube) MaxDistance(d int) int { return d }

// LogNodesAt implements Geometry: n(h) = C(d,h) ways to place the h
// differing bits (Fig. 2), for h >= 1.
func (Hypercube) LogNodesAt(d, h int) float64 {
	if h < 1 {
		return numeric.NegInf
	}
	return numeric.LogBinomial(d, h)
}

// PhaseFailure implements Geometry. With m bits remaining there are m
// neighbors that each correct one of them; the phase fails only when all m
// have failed: Q(m) = q^m (Fig. 4(b), Eq. 2).
func (Hypercube) PhaseFailure(_, m int, q float64) float64 {
	return math.Pow(q, float64(m))
}
