package core

import (
	"math"

	"rcm/internal/numeric"
)

// MeanDistance returns the expected routing distance (in hops or phases) to
// a uniformly random other node in a failure-free, fully-populated system:
//
//	E[h] = Σ_h h·n(h) / (2^d − 1)
//
// For the binomial geometries (tree, hypercube, xor) this is d/2 · 2^d/(2^d−1)
// ≈ d/2; for the ring family it approaches d − 1. This is the "O(log N)
// hops" quantity of §1 — except for Symphony, whose phases each cost
// ~d/ks actual hops (see markov.ExpectedStepsGivenSuccess), giving its
// O(log² N) total latency.
func MeanDistance(g Geometry, d int) float64 {
	maxH := g.MaxDistance(d)
	// Compute in log space to support very large d: E = exp(logNum - logDen).
	num := make([]float64, 0, maxH)
	den := make([]float64, 0, maxH)
	for h := 1; h <= maxH; h++ {
		ln := g.LogNodesAt(d, h)
		num = append(num, ln+math.Log(float64(h)))
		den = append(den, ln)
	}
	return math.Exp(numeric.LogSumExp(num) - numeric.LogSumExp(den))
}

// MeanSuccessfulRouteLength returns the expected number of phases of a
// successful route to a random surviving target under failure probability
// q, weighting each distance by its survival probability:
//
//	E[h | success] = Σ_h h·n(h)·p(h,q) / Σ_h n(h)·p(h,q)
//
// Under failure this SHRINKS relative to MeanDistance — distant targets are
// disproportionately unreachable, so the surviving routes are short ones
// (survivorship bias; the extra suboptimal hops within phases are accounted
// separately by the Markov chains).
func MeanSuccessfulRouteLength(g Geometry, d int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	maxH := g.MaxDistance(d)
	num := make([]float64, 0, maxH)
	den := make([]float64, 0, maxH)
	logp := 0.0
	for h := 1; h <= maxH; h++ {
		logp += math.Log1p(-g.PhaseFailure(d, h, q))
		term := g.LogNodesAt(d, h) + logp
		num = append(num, term+math.Log(float64(h)))
		den = append(den, term)
	}
	logDen := numeric.LogSumExp(den)
	if math.IsInf(logDen, -1) {
		return 0, nil
	}
	return math.Exp(numeric.LogSumExp(num) - logDen), nil
}
