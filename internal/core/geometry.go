// Package core implements the paper's primary contribution: the reachable
// component method (RCM, §4) for computing the routability of DHT routing
// geometries under uniform random node failure, and the scalability
// classification of §5.
//
// A geometry is described by two ingredients (§4.1, steps 2–3):
//
//	n(h)  — the routing-distance distribution: how many nodes sit at
//	        distance h (hops or phases) from any root node, and
//	Q(m)  — the probability that routing fails during a phase with m
//	        phases remaining, extracted from the geometry's Markov chain.
//
// From these, p(h,q) = Π_{m=1..h}(1−Q(m)) (Eq. 5), the expected reachable
// component E[S] = Σ_h n(h)·p(h,q) (step 4), and the routability
// r = E[S]/((1−q)·2^d − 1) (Eq. 1/Eq. 3) follow mechanically. Everything is
// evaluated in log space so the asymptotic regime of Fig. 7(a) (N = 2^100)
// is computed directly rather than extrapolated.
package core

import (
	"errors"
	"fmt"
	"math"

	"rcm/internal/registry"
)

// Geometry is the RCM description of a DHT routing geometry: the canonical
// interface defined in internal/registry and re-exported publicly as
// rcm.Geometry. Implementations must be immutable value types safe for
// concurrent use. For all five geometries in the paper MaxDistance(d) is d,
// and only Symphony's PhaseFailure depends on d.
type Geometry = registry.Geometry

// Errors returned by the evaluation entry points.
var (
	// ErrBadDimension indicates an identifier length outside [1, MaxDimension].
	ErrBadDimension = errors.New("core: identifier length out of range")
	// ErrBadProbability indicates a failure probability outside [0, 1].
	ErrBadProbability = errors.New("core: failure probability out of [0,1]")
	// ErrBadDistance indicates a routing distance outside [1, MaxDistance].
	ErrBadDistance = errors.New("core: routing distance out of range")
)

// MaxDimension bounds the identifier length accepted by the evaluators.
// Fig. 7(a) uses d=100; the log-space pipeline stays accurate well past
// that, and the cap keeps the O(d²) XOR evaluation bounded.
const MaxDimension = 8192

func validateDQ(d int, q float64) error {
	if d < 1 || d > MaxDimension {
		return fmt.Errorf("%w: d=%d not in [1,%d]", ErrBadDimension, d, MaxDimension)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return fmt.Errorf("%w: q=%v", ErrBadProbability, q)
	}
	return nil
}

// Default instances of the five geometries analyzed in the paper. Symphony
// uses the Fig. 7 footnote setting kn = ks = 1.
func AllGeometries() []Geometry {
	return []Geometry{Tree{}, Hypercube{}, XOR{}, Ring{}, DefaultSymphony()}
}
