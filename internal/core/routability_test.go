package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"rcm/internal/core"
	"rcm/internal/markov"
	"rcm/internal/numeric"
)

var qGrid = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.99, 1}

func TestRoutabilityPerfectAtZeroFailure(t *testing.T) {
	for _, g := range core.AllGeometries() {
		for _, d := range []int{2, 8, 16, 64, 100} {
			r, err := core.Routability(g, d, 0)
			if err != nil {
				t.Fatalf("%s d=%d: %v", g.Name(), d, err)
			}
			if r != 1 {
				t.Errorf("%s d=%d: r(q=0) = %v, want 1", g.Name(), d, r)
			}
		}
	}
}

func TestRoutabilityZeroAtFullFailure(t *testing.T) {
	for _, g := range core.AllGeometries() {
		r, err := core.Routability(g, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r != 0 {
			t.Errorf("%s: r(q=1) = %v, want 0", g.Name(), r)
		}
	}
}

func TestRoutabilityInUnitInterval(t *testing.T) {
	for _, g := range core.AllGeometries() {
		g := g
		f := func(d8 uint8, qRaw float64) bool {
			d := int(d8%100) + 2
			q := math.Abs(math.Mod(qRaw, 1))
			r, err := core.Routability(g, d, q)
			return err == nil && r >= 0 && r <= 1 && !math.IsNaN(r)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

func TestRoutabilityMonotoneInQ(t *testing.T) {
	// More failures can only hurt: r must be non-increasing in q. Symphony's
	// analytic expression leaves its validity region once ks/d + q^{kn+ks}
	// exceeds 1 (q ≳ 0.93 at d=16), where routability is ~1e-5 anyway; a
	// small absolute slack keeps the check meaningful without tripping on
	// that extrapolated tail.
	const slack = 1e-4
	for _, g := range core.AllGeometries() {
		prev := math.Inf(1)
		for _, q := range qGrid {
			r, err := core.Routability(g, 16, q)
			if err != nil {
				t.Fatal(err)
			}
			if r > prev+slack {
				t.Errorf("%s: r increased from %v to %v at q=%v", g.Name(), prev, r, q)
			}
			prev = r
		}
	}
}

func TestSuccessProbProductRecurrence(t *testing.T) {
	// p(h) = p(h-1)·(1 − Q(h)) directly from Eq. 5.
	for _, g := range core.AllGeometries() {
		d := 16
		for _, q := range []float64{0.1, 0.4, 0.8} {
			prev := 1.0
			for h := 1; h <= d; h++ {
				p, err := core.SuccessProb(g, d, h, q)
				if err != nil {
					t.Fatal(err)
				}
				want := prev * (1 - g.PhaseFailure(d, h, q))
				if math.Abs(p-want) > 1e-9 {
					t.Errorf("%s q=%v h=%d: p=%v, want %v", g.Name(), q, h, p, want)
				}
				prev = p
			}
		}
	}
}

func TestSuccessProbMonotoneInH(t *testing.T) {
	for _, g := range core.AllGeometries() {
		for _, q := range []float64{0.2, 0.6} {
			prev := 1.0
			for h := 1; h <= 16; h++ {
				p, err := core.SuccessProb(g, 16, h, q)
				if err != nil {
					t.Fatal(err)
				}
				if p > prev+1e-12 {
					t.Errorf("%s q=%v: p increased at h=%d (%v > %v)", g.Name(), q, h, p, prev)
				}
				prev = p
			}
		}
	}
}

// Chain agreement: the generic RCM pipeline must match the explicit Markov
// chains of Fig. 4/5/8 for every geometry.

func TestSuccessProbMatchesTreeChain(t *testing.T) {
	for h := 1; h <= 8; h++ {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			c, ep, err := markov.TreeChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.AbsorptionProb(ep.Start, ep.Success)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.SuccessProb(core.Tree{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("tree h=%d q=%v: core %v vs chain %v", h, q, got, want)
			}
		}
	}
}

func TestSuccessProbMatchesHypercubeChain(t *testing.T) {
	for h := 1; h <= 8; h++ {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			c, ep, err := markov.HypercubeChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.AbsorptionProb(ep.Start, ep.Success)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.SuccessProb(core.Hypercube{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("hypercube h=%d q=%v: core %v vs chain %v", h, q, got, want)
			}
		}
	}
}

func TestSuccessProbMatchesXORChain(t *testing.T) {
	for h := 1; h <= 8; h++ {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			c, ep, err := markov.XORChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.AbsorptionProb(ep.Start, ep.Success)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.SuccessProb(core.XOR{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("xor h=%d q=%v: core %v vs chain %v", h, q, got, want)
			}
		}
	}
}

func TestSuccessProbMatchesRingChain(t *testing.T) {
	for h := 1; h <= 10; h++ {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			c, ep, err := markov.RingChain(h, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.AbsorptionProb(ep.Start, ep.Success)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.SuccessProb(core.Ring{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("ring h=%d q=%v: core %v vs chain %v", h, q, got, want)
			}
		}
	}
}

func TestSuccessProbMatchesSymphonyChain(t *testing.T) {
	for _, tc := range []struct {
		d      int
		kn, ks int
	}{
		{16, 1, 1},
		{16, 2, 2},
		{32, 1, 3},
	} {
		sym := core.Symphony{KN: tc.kn, KS: tc.ks}
		for h := 1; h <= 4; h++ {
			for _, q := range []float64{0.1, 0.4, 0.7} {
				c, ep, err := markov.SymphonyChain(h, tc.d, q, tc.kn, tc.ks)
				if err != nil {
					t.Fatal(err)
				}
				want, err := c.AbsorptionProb(ep.Start, ep.Success)
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.SuccessProb(sym, tc.d, h, q)
				if err != nil {
					t.Fatal(err)
				}
				if numeric.RelDiff(got, want) > 1e-9 {
					t.Errorf("symphony d=%d kn=%d ks=%d h=%d q=%v: core %v vs chain %v",
						tc.d, tc.kn, tc.ks, h, q, got, want)
				}
			}
		}
	}
}

func TestTreeClosedFormMatchesPipeline(t *testing.T) {
	// §4.3.1: r = ((2−q)^d − 1)/((1−q)2^d − 1) must equal the generic
	// pipeline's output exactly (both are the same sum, different orders).
	tree := core.Tree{}
	for _, d := range []int{2, 4, 8, 16, 32, 64, 100} {
		for _, q := range qGrid {
			closed, err := tree.ClosedFormRoutability(d, q)
			if err != nil {
				t.Fatal(err)
			}
			generic, err := core.Routability(tree, d, q)
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelDiff(closed, generic) > 1e-9 {
				t.Errorf("tree d=%d q=%v: closed %v vs pipeline %v", d, q, closed, generic)
			}
		}
	}
}

func TestExpectedReachTreeBinomialIdentity(t *testing.T) {
	// E[S]_tree = Σ C(d,h)(1−q)^h = (2−q)^d − 1.
	for _, d := range []int{3, 8, 16, 50} {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			es, err := core.ExpectedReach(core.Tree{}, d, q)
			if err != nil {
				t.Fatal(err)
			}
			want := math.Pow(2-q, float64(d)) - 1
			if numeric.RelDiff(es, want) > 1e-10 {
				t.Errorf("tree d=%d q=%v: E[S]=%v, want %v", d, q, es, want)
			}
		}
	}
}

func TestExpectedReachBruteForceHypercube(t *testing.T) {
	// Direct double loop in plain float64 against the log-space pipeline.
	d := 12
	for _, q := range []float64{0.15, 0.45, 0.85} {
		var want float64
		p := 1.0
		for h := 1; h <= d; h++ {
			p *= 1 - math.Pow(q, float64(h))
			want += numeric.Binomial(d, h) * p
		}
		got, err := core.ExpectedReach(core.Hypercube{}, d, q)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.RelDiff(got, want) > 1e-10 {
			t.Errorf("hypercube d=%d q=%v: E[S]=%v, want %v", d, q, got, want)
		}
	}
}

func TestFailedPathPercentComplement(t *testing.T) {
	for _, g := range core.AllGeometries() {
		for _, q := range []float64{0, 0.3, 0.8} {
			r, err := core.Routability(g, 16, q)
			if err != nil {
				t.Fatal(err)
			}
			f, err := core.FailedPathPercent(g, 16, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(f-100*(1-r)) > 1e-9 {
				t.Errorf("%s q=%v: failed%%=%v, r=%v", g.Name(), q, f, r)
			}
		}
	}
}

func TestRoutabilityBigOracleAgreement(t *testing.T) {
	// The float64 log-space pipeline vs the 256-bit big.Float oracle.
	for _, g := range core.AllGeometries() {
		for _, d := range []int{4, 16, 64, 100} {
			for _, q := range []float64{0.05, 0.3, 0.6, 0.9} {
				want, err := core.RoutabilityBig(g, d, q, 256)
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.Routability(g, d, q)
				if err != nil {
					t.Fatal(err)
				}
				// Absolute tolerance: both are probabilities; log-space
				// round-off accumulates over d terms.
				if math.Abs(got-want) > 1e-8 {
					t.Errorf("%s d=%d q=%v: pipeline %v vs big oracle %v",
						g.Name(), d, q, got, want)
				}
			}
		}
	}
}

func TestRoutabilityHugeDimension(t *testing.T) {
	// Fig. 7(a) regime: d=100 and beyond must stay finite and ordered.
	for _, g := range core.AllGeometries() {
		for _, d := range []int{100, 500, 1000} {
			r, err := core.Routability(g, d, 0.1)
			if err != nil {
				t.Fatalf("%s d=%d: %v", g.Name(), d, err)
			}
			if math.IsNaN(r) || r < 0 || r > 1 {
				t.Errorf("%s d=%d: r = %v", g.Name(), d, r)
			}
		}
	}
}

func TestRingRoutabilityDominatesXOR(t *testing.T) {
	// §5.4's comparison holds at the routability level too (same n(h)? no —
	// n differs; compare p(h,q) instead at equal h).
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7} {
		for h := 1; h <= 16; h++ {
			pr, err := core.SuccessProb(core.Ring{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			px, err := core.SuccessProb(core.XOR{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if pr < px-1e-12 {
				t.Errorf("q=%v h=%d: ring p=%v < xor p=%v", q, h, pr, px)
			}
		}
	}
}

func TestHypercubeDominatesTree(t *testing.T) {
	// More per-phase options can only help: q^m <= q for m >= 1.
	for _, q := range []float64{0.1, 0.5, 0.9} {
		for h := 1; h <= 16; h++ {
			ph, err := core.SuccessProb(core.Hypercube{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := core.SuccessProb(core.Tree{}, 16, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if ph < pt-1e-12 {
				t.Errorf("q=%v h=%d: hypercube p=%v < tree p=%v", q, h, ph, pt)
			}
		}
	}
}

func TestLogExpectedReachFiniteEverywhere(t *testing.T) {
	f := func(d8 uint8, qRaw float64) bool {
		d := int(d8%120) + 1
		q := math.Abs(math.Mod(qRaw, 1))
		for _, g := range core.AllGeometries() {
			logES, err := core.LogExpectedReach(g, d, q)
			if err != nil {
				return false
			}
			if math.IsNaN(logES) {
				return false
			}
			// Reachable component can never exceed N−1 nodes.
			if logES > float64(d)*math.Ln2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
