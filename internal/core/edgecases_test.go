package core_test

import (
	"math"
	"testing"

	"rcm/internal/core"
)

// Edge-case tests covering the less-traveled branches of the analytic core.

func TestLogNodesAtOutOfRange(t *testing.T) {
	gt, err := core.NewGeneralizedTree(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range append(core.AllGeometries(), core.Geometry(gt)) {
		for _, h := range []int{0, -1, 17} {
			if got := g.LogNodesAt(16, h); !math.IsInf(got, -1) {
				t.Errorf("%s: LogNodesAt(16, %d) = %v, want -Inf", g.Name(), h, got)
			}
		}
	}
}

func TestGeneralizedTreeSystem(t *testing.T) {
	g, err := core.NewGeneralizedTree(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.System() != "Plaxton" {
		t.Errorf("System = %q", g.System())
	}
}

func TestRoutabilityBigEdgeCases(t *testing.T) {
	// q=0 and q=1 short-circuit; denominator <= 0 regime returns 0.
	g := core.Hypercube{}
	if r, err := core.RoutabilityBig(g, 8, 0, 128); err != nil || r != 1 {
		t.Errorf("big r(q=0) = %v, %v", r, err)
	}
	if r, err := core.RoutabilityBig(g, 8, 1, 128); err != nil || r != 0 {
		t.Errorf("big r(q=1) = %v, %v", r, err)
	}
	// d=1, q close to 1: (1-q)*2 - 1 <= 0 → no expected pairs.
	if r, err := core.RoutabilityBig(g, 1, 0.9, 128); err != nil || r != 0 {
		t.Errorf("big r under-populated = %v, %v", r, err)
	}
	if _, err := core.RoutabilityBig(g, 0, 0.5, 128); err == nil {
		t.Error("big r accepted d=0")
	}
}

func TestRoutabilityUnderPopulatedRegime(t *testing.T) {
	// (1−q)·2^d ≤ 1: fewer than one expected survivor, r defined as 0.
	for _, g := range core.AllGeometries() {
		r, err := core.Routability(g, 1, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if r != 0 {
			t.Errorf("%s: under-populated r = %v, want 0", g.Name(), r)
		}
	}
}

func TestTreeClosedFormEdgeCases(t *testing.T) {
	tree := core.Tree{}
	if r, err := tree.ClosedFormRoutability(16, 0); err != nil || r != 1 {
		t.Errorf("closed form q=0: %v, %v", r, err)
	}
	if r, err := tree.ClosedFormRoutability(16, 1); err != nil || r != 0 {
		t.Errorf("closed form q=1: %v, %v", r, err)
	}
	if r, err := tree.ClosedFormRoutability(1, 0.9); err != nil || r != 0 {
		t.Errorf("closed form under-populated: %v, %v", r, err)
	}
	if _, err := tree.ClosedFormRoutability(0, 0.5); err == nil {
		t.Error("closed form accepted d=0")
	}
	g4, err := core.NewGeneralizedTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := g4.ClosedFormRoutability(2, 0.99); err != nil || r != 0 {
		t.Errorf("base-4 closed form under-populated: %v, %v", r, err)
	}
	if _, err := g4.ClosedFormRoutability(8, math.NaN()); err == nil {
		t.Error("base-4 closed form accepted NaN")
	}
}

func TestExpectedReachErrorPropagation(t *testing.T) {
	if _, err := core.ExpectedReach(core.Hypercube{}, -1, 0.5); err == nil {
		t.Error("ExpectedReach accepted d=-1")
	}
	if _, err := core.FailedPathPercent(core.Hypercube{}, 8, 2); err == nil {
		t.Error("FailedPathPercent accepted q=2")
	}
}

func TestPhaseFailureApproxEdges(t *testing.T) {
	g := core.XOR{}
	if got := g.PhaseFailureApprox(5, 0); got != 0 {
		t.Errorf("approx q=0: %v", got)
	}
	if got := g.PhaseFailureApprox(5, 1); got != 1 {
		t.Errorf("approx q=1: %v", got)
	}
	// The raw approximation can stray outside [0,1] at large q; it must be
	// clamped.
	for _, q := range []float64{0.7, 0.9, 0.99} {
		for m := 1; m <= 8; m++ {
			got := g.PhaseFailureApprox(m, q)
			if got < 0 || got > 1 || math.IsNaN(got) {
				t.Errorf("approx(m=%d, q=%v) = %v outside [0,1]", m, q, got)
			}
		}
	}
}

func TestClassifyCustomOptions(t *testing.T) {
	// Non-default dims and tolerance paths.
	v := core.Classify(core.Hypercube{}, 0.4, core.ClassifyOptions{
		Dims: []int{32, 64, 128, 256},
		Tol:  1e-4,
	})
	if v != core.Scalable {
		t.Errorf("custom-dims hypercube verdict = %v", v)
	}
	// Too few dims → indeterminate.
	v = core.Classify(core.Hypercube{}, 0.4, core.ClassifyOptions{Dims: []int{16, 32}})
	if v != core.Indeterminate {
		t.Errorf("two-dim probe verdict = %v, want indeterminate", v)
	}
}

func TestClassifyRejectsBrokenGeometry(t *testing.T) {
	v := core.Classify(badGeometry{}, 0.3, core.ClassifyOptions{})
	if v != core.Indeterminate {
		t.Errorf("broken geometry verdict = %v, want indeterminate", v)
	}
}

// badGeometry returns an out-of-range Q to exercise the classifier's guard.
type badGeometry struct{ core.Hypercube }

func (badGeometry) PhaseFailure(_, _ int, _ float64) float64 { return 2 }

func TestRingLogNodesAtBounds(t *testing.T) {
	g := core.Ring{}
	if got := g.LogNodesAt(8, 1); got != 0 { // 2^0 = 1 node at h=1
		t.Errorf("ring n(1) log = %v, want 0", got)
	}
	if got := math.Exp(g.LogNodesAt(8, 8)); math.Abs(got-128) > 1e-9 {
		t.Errorf("ring n(8) = %v, want 128", got)
	}
}
