package core_test

import (
	"math"
	"testing"

	"rcm/internal/core"
)

func TestTheoreticalVerdicts(t *testing.T) {
	// §5's classification of the five geometries.
	want := map[string]core.Verdict{
		"tree":      core.Unscalable,
		"hypercube": core.Scalable,
		"xor":       core.Scalable,
		"ring":      core.Scalable,
		"symphony":  core.Unscalable,
	}
	for _, g := range core.AllGeometries() {
		v, reason := core.TheoreticalVerdict(g)
		if v != want[g.Name()] {
			t.Errorf("%s: verdict %v, want %v", g.Name(), v, want[g.Name()])
		}
		if reason == "" {
			t.Errorf("%s: empty reason", g.Name())
		}
	}
}

func TestTheoreticalVerdictUnknownGeometry(t *testing.T) {
	v, _ := core.TheoreticalVerdict(unknownGeometry{})
	if v != core.Indeterminate {
		t.Errorf("unknown geometry verdict = %v, want indeterminate", v)
	}
}

type unknownGeometry struct{ core.Hypercube }

func (unknownGeometry) Name() string { return "mystery" }

func TestNumericClassifierMatchesTheory(t *testing.T) {
	// The Knopp-probe classifier must recover §5's dichotomy across the
	// whole practical failure range.
	for _, g := range core.AllGeometries() {
		want, _ := core.TheoreticalVerdict(g)
		for _, q := range []float64{0.05, 0.1, 0.3, 0.5, 0.7} {
			got := core.Classify(g, q, core.ClassifyOptions{})
			if got != want {
				t.Errorf("%s q=%v: Classify = %v, want %v", g.Name(), q, got, want)
			}
		}
	}
}

func TestClassifyEdgeProbabilities(t *testing.T) {
	g := core.Hypercube{}
	if got := core.Classify(g, 0, core.ClassifyOptions{}); got != core.Scalable {
		t.Errorf("q=0: %v, want scalable", got)
	}
	if got := core.Classify(g, 1, core.ClassifyOptions{}); got != core.Unscalable {
		t.Errorf("q=1: %v, want unscalable", got)
	}
}

func TestAsymptoticSuccessDichotomy(t *testing.T) {
	// Eq. 8: lim p(h,q) > 0 for scalable geometries, = 0 for unscalable.
	const q = 0.3
	for _, g := range core.AllGeometries() {
		limit := core.AsymptoticSuccess(g, q, 4096)
		verdict, _ := core.TheoreticalVerdict(g)
		switch verdict {
		case core.Scalable:
			if limit <= 0 {
				t.Errorf("%s: asymptotic p = %v, want > 0", g.Name(), limit)
			}
		case core.Unscalable:
			if limit > 1e-12 {
				t.Errorf("%s: asymptotic p = %v, want ~0", g.Name(), limit)
			}
		}
	}
}

func TestAsymptoticSuccessHypercubeEulerProduct(t *testing.T) {
	// For the hypercube, lim p = Π_{m>=1}(1-q^m) — the Euler function φ(q).
	// Spot-check against a directly computed partial product.
	for _, q := range []float64{0.1, 0.5, 0.9} {
		want := 1.0
		for m := 1; m <= 10000; m++ {
			want *= 1 - math.Pow(q, float64(m))
		}
		got := core.AsymptoticSuccess(core.Hypercube{}, q, 10000)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("q=%v: asymptotic p = %v, want %v", q, got, want)
		}
	}
}

func TestAsymptoticSuccessDefaultHorizon(t *testing.T) {
	if got := core.AsymptoticSuccess(core.Hypercube{}, 0.5, 0); got <= 0 || got >= 1 {
		t.Errorf("default horizon result = %v", got)
	}
}

func TestRoutabilityDecaysForUnscalable(t *testing.T) {
	// Fig. 7(b): at q=0.1, tree and symphony routability decays
	// monotonically toward 0 as d grows; the scalable three stay bounded
	// away from zero.
	const q = 0.1
	dims := []int{8, 16, 32, 64, 128, 256}
	for _, g := range core.AllGeometries() {
		rs := make([]float64, len(dims))
		for i, d := range dims {
			r, err := core.Routability(g, d, q)
			if err != nil {
				t.Fatal(err)
			}
			rs[i] = r
		}
		verdict, _ := core.TheoreticalVerdict(g)
		switch verdict {
		case core.Unscalable:
			for i := 1; i < len(rs); i++ {
				if rs[i] > rs[i-1]+1e-9 {
					t.Errorf("%s: routability rose from %v to %v at d=%d", g.Name(), rs[i-1], rs[i], dims[i])
				}
			}
			if last := rs[len(rs)-1]; last > 0.05 {
				t.Errorf("%s: routability at d=256 is %v, expected near-zero decay", g.Name(), last)
			}
		case core.Scalable:
			if last := rs[len(rs)-1]; last < 0.5 {
				t.Errorf("%s: routability at d=256 is %v, expected to stay high at q=0.1", g.Name(), last)
			}
		}
	}
}

func TestScalableTrioOrderingAtModerateFailure(t *testing.T) {
	// Fig. 7(a) visual ordering at moderate q: hypercube routes best, then
	// ring, then xor (failed-paths ordering reversed).
	const d = 100
	for _, q := range []float64{0.1, 0.2, 0.3} {
		rh, err := core.Routability(core.Hypercube{}, d, q)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := core.Routability(core.Ring{}, d, q)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := core.Routability(core.XOR{}, d, q)
		if err != nil {
			t.Fatal(err)
		}
		if !(rh >= rr-1e-9 && rr >= rx-1e-9) {
			t.Errorf("q=%v: ordering violated: hypercube %v, ring %v, xor %v", q, rh, rr, rx)
		}
	}
}
