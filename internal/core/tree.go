package core

import (
	"math"

	"rcm/internal/numeric"
)

// Tree is the Plaxton-style tree routing geometry (§3.1, §4.3.1). Each node
// has d neighbors, the i-th matching the first i−1 identifier bits and
// differing on the i-th; routing must correct the leftmost differing bit at
// every step, so exactly one neighbor is usable per phase.
type Tree struct{}

var _ Geometry = Tree{}

// Name implements Geometry.
func (Tree) Name() string { return "tree" }

// System implements Geometry.
func (Tree) System() string { return "Plaxton" }

// MaxDistance implements Geometry: a target can differ in up to d bits.
func (Tree) MaxDistance(d int) int { return d }

// LogNodesAt implements Geometry: n(h) = C(d,h) — the number of identifiers
// differing from the root in exactly h bit positions (h >= 1; the root
// itself is not a routing target).
func (Tree) LogNodesAt(d, h int) float64 {
	if h < 1 {
		return numeric.NegInf
	}
	return numeric.LogBinomial(d, h)
}

// PhaseFailure implements Geometry. Only the single neighbor correcting the
// leftmost differing bit can make progress, so Q(m) = q regardless of m
// (Fig. 4(a)).
func (Tree) PhaseFailure(_, _ int, q float64) float64 { return q }

// ClosedFormRoutability returns the paper's closed-form tree routability
// r = ((2−q)^d − 1) / ((1−q)·2^d − 1) (§4.3.1), evaluated in log space. It
// is used as an independent oracle for the generic RCM pipeline.
func (Tree) ClosedFormRoutability(d int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if q == 0 {
		return 1, nil
	}
	if q == 1 {
		return 0, nil
	}
	logNum := numeric.LogExpm1(float64(d) * math.Log(2-q))
	a := float64(d)*math.Ln2 + math.Log(1-q)
	if a <= 0 {
		// Fewer than one expected survivor: routability is defined as 0.
		return 0, nil
	}
	logDen := numeric.LogExpm1(a)
	return numeric.Clamp01(math.Exp(logNum - logDen)), nil
}
