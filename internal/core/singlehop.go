package core

import "math"

// SingleHop is the full-membership one-hop geometry (Monnerat & Amorim's
// D1HT family): every node's routing table holds every other node, so the
// routing-distance distribution is a single phase covering all 2^d − 1
// peers and the only way a route fails is the target itself being dead —
// Q(1) = q. Routability is therefore ~1 for every q, the latency-optimal
// corner of the latency-vs-maintenance frontier; what the static model
// cannot see is the price, O(N) maintenance bandwidth per join and
// N-proportional stabilization, which the event layer (rcm/eventsim) and
// figure E20 measure.
type SingleHop struct{}

// Name implements Geometry.
func (SingleHop) Name() string { return "singlehop" }

// System implements Geometry.
func (SingleHop) System() string { return "D1HT" }

// MaxDistance implements Geometry: every target is one hop away.
func (SingleHop) MaxDistance(int) int { return 1 }

// LogNodesAt implements Geometry: all 2^d − 1 other nodes sit at distance
// 1. Computed in log space so Fig. 7(a)-scale dimensions (d = 100+) stay
// finite.
func (SingleHop) LogNodesAt(d, h int) float64 {
	if h != 1 {
		return math.Inf(-1)
	}
	if d < 53 {
		return math.Log(float64((uint64(1) << uint(d)) - 1))
	}
	// ln(2^d − 1) = d·ln2 + ln(1 − 2^−d); the correction underflows.
	return float64(d) * math.Ln2
}

// PhaseFailure implements Geometry: the single phase fails exactly when
// the target is dead. Σ_m Q(m) = q independent of d, so the Knopp probe
// (§5) classifies the geometry scalable at every q.
func (SingleHop) PhaseFailure(d, m int, q float64) float64 {
	if m != 1 {
		return 0
	}
	return q
}
