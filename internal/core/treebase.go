package core

import (
	"fmt"
	"math"

	"rcm/internal/numeric"
)

// GeneralizedTree is the tree (Plaxton) geometry over base-b identifier
// digits — the paper's §3 remark that "we will use binary strings as
// identifiers although any other base besides 2 can be used", made
// concrete. A system of N = b^d nodes uses d base-b digits; a node at
// routing distance h differs from the root in exactly h digit positions,
// of which there are C(d,h)·(b−1)^h. Exactly one neighbor corrects the
// leftmost differing digit, so Q(m) = q regardless of base: changing the
// radix trades path length for table size but cannot rescue the tree's
// unscalability.
type GeneralizedTree struct {
	// Base is the identifier radix b >= 2. Base 2 coincides with Tree.
	Base int
}

var _ Geometry = GeneralizedTree{}

// NewGeneralizedTree validates the radix and returns the geometry.
func NewGeneralizedTree(base int) (GeneralizedTree, error) {
	if base < 2 {
		return GeneralizedTree{}, fmt.Errorf("core: tree base %d must be >= 2", base)
	}
	return GeneralizedTree{Base: base}, nil
}

// Name implements Geometry.
func (g GeneralizedTree) Name() string { return fmt.Sprintf("tree-b%d", g.base()) }

// System implements Geometry.
func (g GeneralizedTree) System() string { return "Plaxton" }

// MaxDistance implements Geometry: up to d digits can differ.
func (g GeneralizedTree) MaxDistance(d int) int { return d }

func (g GeneralizedTree) base() int {
	if g.Base < 2 {
		return 2
	}
	return g.Base
}

// LogNodesAt implements Geometry: n(h) = C(d,h)·(b−1)^h.
func (g GeneralizedTree) LogNodesAt(d, h int) float64 {
	if h < 1 || h > d {
		return numeric.NegInf
	}
	return numeric.LogBinomial(d, h) + float64(h)*math.Log(float64(g.base()-1))
}

// PhaseFailure implements Geometry: one usable neighbor per phase, Q(m) = q.
func (g GeneralizedTree) PhaseFailure(_, _ int, q float64) float64 { return q }

// ClosedFormRoutability evaluates the base-b analogue of §4.3.1:
//
//	E[S] = Σ C(d,h)(b−1)^h (1−q)^h = (1 + (b−1)(1−q))^d − 1
//	r    = E[S] / ((1−q)·b^d − 1)
//
// computed in log space.
func (g GeneralizedTree) ClosedFormRoutability(d int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if q == 0 {
		return 1, nil
	}
	if q == 1 {
		return 0, nil
	}
	b := float64(g.base())
	logNum := numeric.LogExpm1(float64(d) * math.Log(1+(b-1)*(1-q)))
	a := float64(d)*math.Log(b) + math.Log(1-q)
	if a <= 0 {
		return 0, nil
	}
	return numeric.Clamp01(math.Exp(logNum - numeric.LogExpm1(a))), nil
}

// RoutabilityBaseB evaluates the generic RCM pipeline for a base-b
// geometry: identical to Routability but with the survivor denominator
// (1−q)·b^d − 1 instead of the binary 2^d. Geometries whose n(h) sums to
// b^d − 1 (such as GeneralizedTree) must be evaluated through this entry
// point for d digits of radix b.
func RoutabilityBaseB(g Geometry, base, d int, q float64) (float64, error) {
	if base < 2 {
		return 0, fmt.Errorf("core: base %d must be >= 2", base)
	}
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if q == 0 {
		return 1, nil
	}
	if q == 1 {
		return 0, nil
	}
	logSurvivors := float64(d)*math.Log(float64(base)) + math.Log(1-q)
	if logSurvivors <= 0 {
		return 0, nil
	}
	logES, err := LogExpectedReach(g, d, q)
	if err != nil {
		return 0, err
	}
	if math.IsInf(logES, -1) {
		return 0, nil
	}
	return numeric.Clamp01(math.Exp(logES - numeric.LogExpm1(logSurvivors))), nil
}
