package core

import (
	"fmt"
	"math"
	"sync"

	"rcm/internal/numeric"
)

// Evaluator memoizes the log-success prefix products
//
//	cum(h) = Σ_{m=1..h} ln(1 − Q(m))
//
// that every analytic quantity — SuccessProb (Eq. 5), LogExpectedReach
// (§4.1 step 4) and Routability (Eq. 3) — is built from. The products share
// prefixes not just across h within one evaluation but across the whole
// (d, q) grid of a sweep: for the d-invariant geometries (tree, hypercube,
// XOR, ring) the series at a given q is the same for every system size, so
// a d-sweep pays the O(maxD²) XOR phase cost once instead of Σ O(d²). The
// final ln E[S] per cell is cached too, so Routability and ExpectedReach at
// the same grid point share a single pass.
//
// An Evaluator is safe for concurrent use; the zero value is NOT usable,
// call NewEvaluator. Results are bit-identical to the package-level
// functions: the cached series is accumulated in exactly the same order.
type Evaluator struct {
	mu     sync.Mutex
	series map[seriesKey]*phaseSeries
	reach  map[reachKey]float64
	nodes  map[nodesKey][]float64
}

// seriesKey identifies one cached prefix-product series. dim is 0 for
// geometries whose PhaseFailure is independent of d.
type seriesKey struct {
	geom string
	dim  int
	q    float64
}

// reachKey identifies one cached ln E[S] value.
type reachKey struct {
	geom string
	dim  int
	q    float64
}

// nodesKey identifies one cached ln n(h) vector; the distance distribution
// is independent of q, so it is shared across a plan's whole q-grid.
type nodesKey struct {
	geom string
	dim  int
}

// phaseSeries holds cum[h-1] = Σ_{m=1..h} ln(1 − Q(m)), grown lazily. Each
// series has its own lock so concurrent workers extending different grid
// columns do not serialize on the Evaluator.
type phaseSeries struct {
	mu  sync.Mutex
	cum []float64
}

// NewEvaluator returns an empty memoizing evaluator.
func NewEvaluator() *Evaluator {
	return &Evaluator{
		series: make(map[seriesKey]*phaseSeries),
		reach:  make(map[reachKey]float64),
		nodes:  make(map[nodesKey][]float64),
	}
}

// geomID returns a stable identity string for a geometry value. Geometries
// are immutable value types, so the formatted type+fields pair is a faithful
// cache key (e.g. Symphony kn/ks configurations key separately).
func geomID(g Geometry) string {
	return fmt.Sprintf("%T%+v", g, g)
}

// phaseDependsOnD reports whether g's Q(m) depends on the identifier
// length. Only Symphony's does among the paper's geometries; unknown
// geometries are treated conservatively as d-dependent.
func phaseDependsOnD(g Geometry) bool {
	switch g.(type) {
	case Tree, Hypercube, XOR, Ring, GeneralizedTree:
		return false
	}
	return true
}

// phaseConstantInM reports whether g's Q(m) is the same for every phase m
// (tree: Q = q; Symphony: Eq. 7 is m-free). Series extension then
// evaluates Q once instead of once per phase — the summation order and
// values are unchanged, so results stay bit-identical.
func phaseConstantInM(g Geometry) bool {
	switch g.(type) {
	case Tree, GeneralizedTree, Symphony:
		return true
	}
	return false
}

// prefix returns cum(1..h) for the geometry at (d, q), extending the cached
// series as needed. The returned slice must not be modified.
func (e *Evaluator) prefix(g Geometry, d, h int, q float64) []float64 {
	key := seriesKey{geom: geomID(g), q: q}
	if phaseDependsOnD(g) {
		key.dim = d
	}
	e.mu.Lock()
	s, ok := e.series[key]
	if !ok {
		s = &phaseSeries{}
		e.series[key] = s
	}
	e.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cum) < h && phaseConstantInM(g) {
		inc := math.Log1p(-g.PhaseFailure(d, len(s.cum)+1, q))
		for m := len(s.cum) + 1; m <= h; m++ {
			prev := 0.0
			if m > 1 {
				prev = s.cum[m-2]
			}
			s.cum = append(s.cum, prev+inc)
		}
	}
	for m := len(s.cum) + 1; m <= h; m++ {
		prev := 0.0
		if m > 1 {
			prev = s.cum[m-2]
		}
		s.cum = append(s.cum, prev+math.Log1p(-g.PhaseFailure(d, m, q)))
	}
	return s.cum[:h]
}

// logNodes returns ln n(h) for h = 1..maxH, cached per (geometry, d): the
// distance distribution does not depend on q, so one vector serves the
// whole q-grid. The returned slice must not be modified.
func (e *Evaluator) logNodes(g Geometry, d, maxH int) []float64 {
	key := nodesKey{geom: geomID(g), dim: d}
	e.mu.Lock()
	if v, ok := e.nodes[key]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()

	v := make([]float64, maxH)
	for h := 1; h <= maxH; h++ {
		v[h-1] = g.LogNodesAt(d, h)
	}
	e.mu.Lock()
	e.nodes[key] = v
	e.mu.Unlock()
	return v
}

// SuccessProb is the memoized equivalent of the package-level SuccessProb.
func (e *Evaluator) SuccessProb(g Geometry, d, h int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	if h < 1 || h > g.MaxDistance(d) {
		return 0, fmt.Errorf("%w: h=%d not in [1,%d]", ErrBadDistance, h, g.MaxDistance(d))
	}
	cum := e.prefix(g, d, h, q)
	return numeric.Clamp01(math.Exp(cum[h-1])), nil
}

// LogExpectedReach is the memoized equivalent of the package-level
// LogExpectedReach.
func (e *Evaluator) LogExpectedReach(g Geometry, d int, q float64) (float64, error) {
	if err := validateDQ(d, q); err != nil {
		return 0, err
	}
	key := reachKey{geom: geomID(g), dim: d, q: q}
	e.mu.Lock()
	if v, ok := e.reach[key]; ok {
		e.mu.Unlock()
		return v, nil
	}
	e.mu.Unlock()

	maxH := g.MaxDistance(d)
	cum := e.prefix(g, d, maxH, q)
	logN := e.logNodes(g, d, maxH)
	terms := make([]float64, 0, maxH)
	for h := 1; h <= maxH; h++ {
		terms = append(terms, logN[h-1]+cum[h-1])
	}
	v := numeric.LogSumExp(terms)

	e.mu.Lock()
	e.reach[key] = v
	e.mu.Unlock()
	return v, nil
}

// ExpectedReach is the memoized equivalent of the package-level
// ExpectedReach.
func (e *Evaluator) ExpectedReach(g Geometry, d int, q float64) (float64, error) {
	logES, err := e.LogExpectedReach(g, d, q)
	if err != nil {
		return 0, err
	}
	return math.Exp(logES), nil
}

// Routability is the memoized equivalent of the package-level Routability.
func (e *Evaluator) Routability(g Geometry, d int, q float64) (float64, error) {
	return routabilityFromLogES(d, q, func() (float64, error) {
		return e.LogExpectedReach(g, d, q)
	})
}

// FailedPathPercent is the memoized equivalent of the package-level
// FailedPathPercent.
func (e *Evaluator) FailedPathPercent(g Geometry, d int, q float64) (float64, error) {
	r, err := e.Routability(g, d, q)
	if err != nil {
		return 0, err
	}
	return 100 * (1 - r), nil
}
