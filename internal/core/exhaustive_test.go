package core_test

import (
	"math"
	"testing"

	"rcm/internal/core"
	"rcm/internal/dht"
	"rcm/overlay"
)

// TestHypercubeExactByEnumerationD4 enumerates ALL 2^15 failure patterns of
// a 16-node hypercube (root conditioned alive) and checks the analytic
// E[S] and every p(h,q) against exact expectations computed on the real
// overlay. The hypercube's greedy candidate sets are disjoint along any
// route, so RCM is exact here — agreement must be at machine precision.
func TestHypercubeExactByEnumerationD4(t *testing.T) {
	const d = 4
	cube, err := dht.NewHypercubeCAN(dht.Config{Bits: d})
	if err != nil {
		t.Fatal(err)
	}
	g := core.Hypercube{}
	space := cube.Space()
	root := overlay.ID(0)
	n := int(space.Size())

	for _, q := range []float64{0.2, 0.5, 0.8} {
		// Exact delivery probability per destination.
		deliverProb := make([]float64, n)
		var esExact float64
		for pattern := 0; pattern < 1<<(n-1); pattern++ {
			alive := overlay.NewBitset(n)
			alive.Set(int(root))
			w := 1.0
			for j := 1; j < n; j++ {
				if pattern&(1<<(j-1)) != 0 {
					alive.Set(j)
					w *= 1 - q
				} else {
					w *= q
				}
			}
			for dst := 1; dst < n; dst++ {
				if !alive.Get(dst) {
					continue
				}
				if _, ok := cube.Route(root, overlay.ID(dst), alive); ok {
					deliverProb[dst] += w
					esExact += w
				}
			}
		}
		esAnalytic, err := core.ExpectedReach(g, d, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(esAnalytic-esExact) > 1e-9 {
			t.Errorf("q=%v: E[S] analytic %v vs exact %v", q, esAnalytic, esExact)
		}
		// Per-distance delivery probability must equal p(h,q) for every
		// destination at Hamming distance h.
		for dst := 1; dst < n; dst++ {
			h := space.HammingDist(root, overlay.ID(dst))
			want, err := core.SuccessProb(g, d, h, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(deliverProb[dst]-want) > 1e-9 {
				t.Errorf("q=%v dst=%s (h=%d): delivery %v, p(h,q) %v",
					q, space.String(overlay.ID(dst)), h, deliverProb[dst], want)
			}
		}
	}
}

// TestTreeEnumerationMatchesClosedForm does the same for the tree geometry
// at d=3, where the Plaxton table is randomized: averaged over many table
// instances, the exact per-pattern delivery probability to the farthest
// target must approach (1−q)^H with H the realized hop count — and the
// aggregate E[S] must approach the closed form (2−q)^d − 1.
func TestTreeEnumerationMatchesClosedForm(t *testing.T) {
	const d = 3
	const tables = 200
	g := core.Tree{}
	q := 0.3
	var esSum float64
	n := 8
	for seed := uint64(0); seed < tables; seed++ {
		p, err := dht.NewPlaxton(dht.Config{Bits: d, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		root := overlay.ID(0)
		for pattern := 0; pattern < 1<<(n-1); pattern++ {
			alive := overlay.NewBitset(n)
			alive.Set(int(root))
			w := 1.0
			for j := 1; j < n; j++ {
				if pattern&(1<<(j-1)) != 0 {
					alive.Set(j)
					w *= 1 - q
				} else {
					w *= q
				}
			}
			for dst := 1; dst < n; dst++ {
				if !alive.Get(dst) {
					continue
				}
				if _, ok := p.Route(root, overlay.ID(dst), alive); ok {
					esSum += w
				}
			}
		}
	}
	esMean := esSum / tables
	want, err := core.ExpectedReach(g, d, q)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged over random tables the match is statistical, not exact: the
	// paper's tree model treats hop counts as the bit-difference count,
	// while real Plaxton tails re-randomize. At d=3 the discrepancy is
	// within a few percent.
	if math.Abs(esMean-want)/want > 0.05 {
		t.Errorf("tree E[S] enumerated %v vs closed form %v", esMean, want)
	}
}
