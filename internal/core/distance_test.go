package core_test

import (
	"math"
	"testing"

	"rcm/internal/core"
)

func TestMeanDistanceBinomialGeometries(t *testing.T) {
	// Σ h·C(d,h) / (2^d − 1) = d·2^{d-1}/(2^d − 1) ≈ d/2.
	for _, g := range []core.Geometry{core.Tree{}, core.Hypercube{}, core.XOR{}} {
		for _, d := range []int{4, 10, 16, 32} {
			got := core.MeanDistance(g, d)
			want := float64(d) * math.Pow(2, float64(d-1)) / (math.Pow(2, float64(d)) - 1)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s d=%d: mean distance %v, want %v", g.Name(), d, got, want)
			}
		}
	}
}

func TestMeanDistanceRingFamily(t *testing.T) {
	// Σ h·2^{h-1} = (d-1)·2^d + 1, so E[h] = ((d-1)·2^d + 1)/(2^d − 1) ≈ d−1.
	for _, g := range []core.Geometry{core.Ring{}, core.DefaultSymphony()} {
		for _, d := range []int{4, 10, 16} {
			got := core.MeanDistance(g, d)
			want := (float64(d-1)*math.Pow(2, float64(d)) + 1) / (math.Pow(2, float64(d)) - 1)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s d=%d: mean distance %v, want %v", g.Name(), d, got, want)
			}
		}
	}
}

func TestMeanDistanceLargeD(t *testing.T) {
	// Log-space evaluation must hold at Fig. 7(a) scale.
	got := core.MeanDistance(core.Hypercube{}, 1000)
	if math.Abs(got-500) > 0.01 {
		t.Errorf("mean distance at d=1000 = %v, want ~500", got)
	}
}

func TestMeanSuccessfulRouteLengthAtZeroFailure(t *testing.T) {
	// With no failures the conditional and unconditional means coincide.
	for _, g := range core.AllGeometries() {
		uncond := core.MeanDistance(g, 16)
		cond, err := core.MeanSuccessfulRouteLength(g, 16, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(uncond-cond) > 1e-9 {
			t.Errorf("%s: conditional %v vs unconditional %v at q=0", g.Name(), cond, uncond)
		}
	}
}

func TestSurvivorshipBiasShortensRoutes(t *testing.T) {
	// Distant targets die first: E[h | success] decreases with q.
	for _, g := range core.AllGeometries() {
		prev := math.Inf(1)
		for _, q := range []float64{0, 0.2, 0.4, 0.6} {
			got, err := core.MeanSuccessfulRouteLength(g, 16, q)
			if err != nil {
				t.Fatal(err)
			}
			if got > prev+1e-9 {
				t.Errorf("%s: conditional route length rose from %v to %v at q=%v",
					g.Name(), prev, got, q)
			}
			prev = got
		}
	}
}

func TestMeanSuccessfulRouteLengthDegenerate(t *testing.T) {
	// q=1: no successful routes at all; defined as 0.
	got, err := core.MeanSuccessfulRouteLength(core.Tree{}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("q=1 conditional length = %v, want 0", got)
	}
}

func TestMeanSuccessfulRouteLengthValidation(t *testing.T) {
	if _, err := core.MeanSuccessfulRouteLength(core.Tree{}, 0, 0.5); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := core.MeanSuccessfulRouteLength(core.Tree{}, 8, -1); err == nil {
		t.Error("q=-1 accepted")
	}
}
