// Package percolation provides the site-percolation machinery behind the
// paper's §1 framing: under node-failure probability q the overlay graph
// fragments (percolation theory bounds when), but connectivity alone
// overstates what greedy DHT routing can use — the reachable component of a
// node is a subset of its connected component. This package measures both
// sides of that inequality on the concrete overlays in internal/dht.
package percolation

// UnionFind is a weighted quick-union structure with path halving, used to
// extract connected components of the failed overlay graph.
type UnionFind struct {
	parent []int32
	size   []int32
	count  int
}

// NewUnionFind returns a structure over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Find returns the representative of x's component.
func (u *UnionFind) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]] // path halving
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the components of a and b, reporting whether a merge
// happened (false when already connected).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	u.size[ra] += u.size[rb]
	u.count--
	return true
}

// Connected reports whether a and b share a component.
func (u *UnionFind) Connected(a, b int) bool {
	return u.Find(a) == u.Find(b)
}

// ComponentSize returns the size of x's component.
func (u *UnionFind) ComponentSize(x int) int {
	return int(u.size[u.Find(x)])
}

// Count returns the number of components (including singletons).
func (u *UnionFind) Count() int { return u.count }
